// Ablation A3: interconnect choice. The paper leaves the network
// "intentionally unspecified" but evaluates on a multistage Omega network;
// this bench quantifies how much the conclusions depend on that choice by
// replaying the Figure-4 style work-queue comparison on an ideal
// fixed-latency network, a crossbar, and the Omega network.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace bcsim;
using namespace bcsim::bench;

double run_q(core::MachineConfig cfg, core::NetworkKind net) {
  cfg.network = net;
  workload::WorkQueueConfig wq;
  wq.total_tasks = 192;
  wq.grain = 100;
  return static_cast<double>(run_work_queue(cfg, wq).completion);
}

}  // namespace

int main() {
  std::printf("Ablation: interconnection network (work-queue, grain 100, 192 tasks)\n");
  const std::vector<std::uint32_t> nodes = {4, 16, 64};
  std::vector<std::string> labels;
  std::vector<std::vector<double>> cells;
  const auto rows = sim::parallel_map<std::vector<double>>(
      nodes.size(), std::function<std::vector<double>(std::size_t)>([&](std::size_t i) {
        const std::uint32_t n = nodes[i];
        return std::vector<double>{
            run_q(wbi_machine(n, core::LockImpl::kTts), core::NetworkKind::kIdeal),
            run_q(wbi_machine(n, core::LockImpl::kTts), core::NetworkKind::kCrossbar),
            run_q(wbi_machine(n, core::LockImpl::kTts), core::NetworkKind::kOmega),
            run_q(wbi_machine(n, core::LockImpl::kTts), core::NetworkKind::kMesh),
            run_q(cbl_machine(n), core::NetworkKind::kIdeal),
            run_q(cbl_machine(n), core::NetworkKind::kCrossbar),
            run_q(cbl_machine(n), core::NetworkKind::kOmega),
            run_q(cbl_machine(n), core::NetworkKind::kMesh),
        };
      }));
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    labels.push_back("n=" + std::to_string(nodes[i]));
    cells.push_back(rows[i]);
  }
  print_table("completion time by network", "processors",
              {"WBI/ideal", "WBI/xbar", "WBI/omega", "WBI/mesh", "CBL/ideal", "CBL/xbar",
               "CBL/omega", "CBL/mesh"},
              labels, cells);
  std::printf("\nExpected: CBL's advantage holds on every network; the gap widens on\n"
              "the Omega network, where the WBI scheme's O(n^2) synchronization\n"
              "messages also pay queuing delay (hot-spot contention).\n");
  return 0;
}
