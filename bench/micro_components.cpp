// Google-benchmark microbenchmarks of the simulator substrate: event queue
// throughput, PRNG, cache lookup, Omega routing, and end-to-end simulated
// cycles per host second. These guard the simulator's own performance —
// figure benches sweep hundreds of configurations, so substrate regressions
// directly hurt experiment turnaround.
#include <benchmark/benchmark.h>

#include "cache/cache.hpp"
#include "core/machine.hpp"
#include "net/network.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "workload/work_queue_model.hpp"

namespace {

using namespace bcsim;

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue q;
  sim::Rng rng(1);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) q.push(rng.next_below(1000), [] {});
    while (!q.empty()) {
      auto [t, fn] = q.pop();
      sink += t;
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueuePushPop);

void BM_EventQueueSameTickBurst(benchmark::State& state) {
  // Many events on one tick: the bucketed queue's best case (one tick-heap
  // operation for the whole burst) and the old heap's worst (log n sifts of
  // fat items through a same-priority plateau).
  sim::EventQueue q;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) q.push(7, [] {});
    while (!q.empty()) {
      auto [t, fn] = q.pop();
      sink += t;
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_EventQueueSameTickBurst);

void BM_RngNextBelow(benchmark::State& state) {
  sim::Rng rng(7);
  std::uint64_t sink = 0;
  for (auto _ : state) sink += rng.next_below(12345);
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNextBelow);

void BM_CacheLookup(benchmark::State& state) {
  cache::Cache c(1024, 4);
  for (BlockId b = 0; b < 512; ++b) {
    auto* v = c.pick_victim(b);
    v->block = b;
    v->valid = true;
  }
  sim::Rng rng(3);
  std::uint64_t hits = 0;
  for (auto _ : state) {
    hits += c.find(rng.next_below(1024)) != nullptr ? 1 : 0;
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLookup);

void BM_OmegaSend(benchmark::State& state) {
  sim::Simulator simulator;
  sim::StatsRegistry stats;
  net::OmegaNetwork network(simulator, stats, 64, 1);
  std::uint64_t delivered = 0;
  for (NodeId d = 0; d < 64; ++d) {
    network.attach(d, net::Unit::kMemory, [&delivered](const net::Message&) { ++delivered; });
    network.attach(d, net::Unit::kCache, [&delivered](const net::Message&) { ++delivered; });
  }
  sim::Rng rng(9);
  for (auto _ : state) {
    net::Message m;
    m.src = static_cast<NodeId>(rng.next_below(64));
    m.dst = static_cast<NodeId>(rng.next_below(64));
    m.unit = net::Unit::kMemory;
    network.send(std::move(m));
    simulator.run();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OmegaSend);

void BM_WorkQueueSimulation(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    core::MachineConfig cfg;
    cfg.n_nodes = n;
    cfg.network = core::NetworkKind::kOmega;
    core::Machine m(cfg);
    workload::WorkQueueConfig wq;
    wq.total_tasks = 64;
    wq.grain = 50;
    workload::WorkQueueWorkload w(m, wq);
    w.spawn_all(m);
    cycles += m.run(1'000'000'000ULL);
  }
  state.counters["sim_cycles"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WorkQueueSimulation)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_MachineConstruction(benchmark::State& state) {
  for (auto _ : state) {
    core::MachineConfig cfg;
    cfg.n_nodes = 64;
    core::Machine m(cfg);
    benchmark::DoNotOptimize(&m);
  }
}
BENCHMARK(BM_MachineConstruction)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
