// Ablation A1: what does eliminating false sharing buy? (Listed as future
// work in the paper's conclusions; the mechanism is the per-word dirty
// bits + word-granular WRITE-GLOBAL of the read-update machine.)
//
// Workload: the linear solver with the x vector COLOCATED (maximal false
// sharing: up to B owners write different words of one block every
// iteration), swept over block sizes. Under WBI, larger blocks mean more
// false-sharing ping-pong on writes; on the read-update machine the write
// traffic is word-granular and flat in B.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "workload/linear_solver.hpp"

namespace {

using namespace bcsim;
using namespace bcsim::bench;

struct Run {
  double cycles = 0;
  double flits = 0;
};

Run solver_run(const core::MachineConfig& cfg) {
  core::Machine m(cfg);
  workload::LinearSolverConfig sc;
  sc.iterations = 8;
  sc.separate_x_blocks = false;  // colocated: the false-sharing layout
  workload::LinearSolverWorkload w(m, sc);
  w.spawn_all(m);
  const Tick t = m.run(1'000'000'000ULL);
  return {static_cast<double>(t), static_cast<double>(m.stats().counter_value("net.flits"))};
}

}  // namespace

int main() {
  constexpr std::uint32_t kN = 16;
  std::printf("Ablation: false sharing vs block size (linear solver, colocated x, n=%u)\n",
              kN);
  std::printf("(8 iterations; colocated x vector)\n");

  const std::vector<std::uint32_t> blocks = {1, 2, 4, 8, 16};
  const auto rows = sim::parallel_map<std::vector<double>>(
      blocks.size(), std::function<std::vector<double>(std::size_t)>([&](std::size_t i) {
        const std::uint32_t B = blocks[i];
        auto wbi = wbi_machine(kN, core::LockImpl::kTts);
        wbi.block_words = B;
        core::MachineConfig ru;
        ru.n_nodes = kN;
        ru.block_words = B;
        ru.data_protocol = core::DataProtocol::kReadUpdate;
        ru.consistency = core::Consistency::kBuffered;
        ru.lock_impl = core::LockImpl::kCbl;
        ru.barrier_impl = core::BarrierImpl::kCbl;
        ru.network = core::NetworkKind::kOmega;
        const Run w = solver_run(wbi);
        const Run r = solver_run(ru);
        return std::vector<double>{w.cycles, r.cycles, w.cycles / r.cycles, w.flits, r.flits};
      }));
  std::vector<std::string> labels;
  std::vector<std::vector<double>> cells;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    labels.push_back("B=" + std::to_string(blocks[i]));
    cells.push_back(rows[i]);
  }
  print_table("completion time and traffic by block size", "block words",
              {"WBI cycles", "RU cycles", "WBI/RU", "WBI flits", "RU flits"}, labels, cells);
  std::printf("\nReading the table: WBI completion degrades sharply once several owners\n"
              "share a block (B >= 8): colocated writers ping-pong exclusive ownership\n"
              "(false sharing). The read-update machine never invalidates on writes —\n"
              "word-granular WRITE-GLOBALs merge via per-word dirty bits — so it wins\n"
              "clearly at small B; at large B its own cost appears instead (update\n"
              "chains carry whole blocks, see the flit column), which is the paper's\n"
              "motivation for keeping line sizes modest. Either way, the correctness\n"
              "hazard of false sharing (lost updates from delayed whole-line\n"
              "writebacks) is gone by construction.\n");
  return 0;
}
