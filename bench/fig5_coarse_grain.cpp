// Figure 5 reproduction: completion time vs. number of processors with
// COARSE-granularity parallelism (1000 data references per task).
//
// Expected shape (paper): coarser tasks dilute synchronization, so the WBI
// scheme scales further than in Figure 4, but its performance still
// degrades beyond ~32 nodes, while CBL keeps improving.
#include <cstdio>
#include <functional>

#include "bench_util.hpp"

namespace {

using namespace bcsim;
using namespace bcsim::bench;

constexpr std::uint32_t kGrain = 1000;  // coarse granularity

double q_line(core::MachineConfig cfg) {
  workload::WorkQueueConfig wq;
  wq.total_tasks = 128;
  wq.grain = kGrain;
  return static_cast<double>(run_work_queue(cfg, wq).completion);
}

double sync_line(core::MachineConfig cfg) {
  workload::SyncModelConfig sm;
  sm.tasks_per_proc = 4;
  sm.grain = kGrain;
  return static_cast<double>(run_sync_model(cfg, sm).completion);
}

}  // namespace

int main() {
  std::printf("Figure 5: performance of cache schemes, coarse-granularity parallelism\n");
  std::printf("(completion time in machine cycles; grain = %u references/task)\n", kGrain);

  const auto nodes = node_sweep();
  const std::vector<std::string> cols = {"WBI", "CBL", "Q-WBI", "Q-backoff", "Q-CBL"};
  const auto rows = sim::parallel_map<std::vector<double>>(
      nodes.size(), std::function<std::vector<double>(std::size_t)>([&](std::size_t i) {
        const std::uint32_t n = nodes[i];
        return std::vector<double>{
            sync_line(wbi_machine(n, core::LockImpl::kTts)),
            sync_line(cbl_machine(n)),
            q_line(wbi_machine(n, core::LockImpl::kTts)),
            q_line(wbi_machine(n, core::LockImpl::kTtsBackoff)),
            q_line(cbl_machine(n)),
        };
      }));
  std::vector<std::string> labels;
  std::vector<std::vector<double>> cells;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    labels.push_back("n=" + std::to_string(nodes[i]));
    cells.push_back(rows[i]);
  }
  print_table("Figure 5 series", "processors", cols, labels, cells);

  // Shape checks: the WBI degradation point moves out with coarser grain.
  std::size_t best_wbi = 0, best_cbl = 0;
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    if (cells[i][2] < cells[best_wbi][2]) best_wbi = i;
    if (cells[i][4] < cells[best_cbl][4]) best_cbl = i;
  }
  std::printf("\nQ-WBI best at n=%u; Q-CBL best at n=%u (CBL scales at least as far)\n",
              nodes[best_wbi], nodes[best_cbl]);
  const std::size_t last = nodes.size() - 1;
  std::printf("Q-WBI / Q-CBL at n=%u: %.2fx\n", nodes[last], cells[last][2] / cells[last][4]);
  return 0;
}
