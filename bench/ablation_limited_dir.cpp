// Ablation: directory precision. The paper chooses pointer-based directory
// structures "since [they are] more scalable than either a full-map or
// limited directory structures" (section 4.1, citing Stenstrom's survey).
// This bench quantifies the alternative it rejected: a Dir_k-B limited
// directory, which broadcasts invalidations once a block has more than k
// sharers. Workload: the red-black stencil, whose halo blocks are shared
// by exactly two nodes — the case where broadcast over-invalidation hurts
// most (the all-to-all solver would hide it: there, everyone really is a
// sharer, so broadcast and full map coincide).
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "workload/stencil.hpp"

namespace {

using namespace bcsim;
using namespace bcsim::bench;

struct Result {
  double cycles = 0;
  double invs = 0;
  double broadcasts = 0;
};

Result run_limit(std::uint32_t n, std::uint32_t limit) {
  auto cfg = wbi_machine(n, core::LockImpl::kTts);
  cfg.dir_pointer_limit = limit;
  core::Machine m(cfg);
  workload::StencilConfig sc;
  sc.sweeps = 8;
  sc.cells_per_proc = 8;
  workload::StencilWorkload w(m, sc);
  w.spawn_all(m);
  const Tick t = m.run(2'000'000'000ULL);
  return {static_cast<double>(t),
          static_cast<double>(m.stats().counter_value("dir.invs")),
          static_cast<double>(m.stats().counter_value("dir.broadcast_invalidations"))};
}

}  // namespace

int main() {
  constexpr std::uint32_t kN = 32;
  std::printf("Ablation: limited-pointer directory (Dir_k-B) vs full map\n");
  std::printf("(red-black stencil, n=%u, 8 sweeps; limit 0 = full map)\n\n", kN);
  std::printf("%-10s%16s%16s%16s\n", "pointers", "cycles", "invalidations", "broadcasts");
  const std::vector<std::uint32_t> limits = {0, 1, 2, 4, 8, 16};
  const auto rows = sim::parallel_map<Result>(
      limits.size(),
      std::function<Result(std::size_t)>([&](std::size_t i) { return run_limit(kN, limits[i]); }));
  for (std::size_t i = 0; i < limits.size(); ++i) {
    std::printf("%-10s%16.0f%16.0f%16.0f\n",
                limits[i] == 0 ? "full" : std::to_string(limits[i]).c_str(), rows[i].cycles,
                rows[i].invs, rows[i].broadcasts);
  }
  std::printf("\nExpected: a halo block has at most two genuine sharers, so the full\n"
              "map sends at most one invalidation per write; once sharers exceed the\n"
              "pointer budget the directory must broadcast to all %u nodes, inflating\n"
              "invalidations by an order of magnitude. The barrier counters (widely\n"
              "shared) are what push small-limit configurations over the edge.\n", kN);
  return 0;
}
