// Figure 4 reproduction: completion time vs. number of processors with
// MEDIUM-granularity parallelism (100 data references per task).
//
// Series (matching the paper's lines):
//   WBI        sync-model workload, WBI machine, TTS spin lock
//   CBL        sync-model workload, CBL hardware locks/barrier
//   Q-WBI      work-queue workload, WBI machine, TTS spin lock
//   Q-backoff  work-queue workload, WBI machine, TTS + exponential backoff
//   Q-CBL      work-queue workload, CBL hardware locks/barrier
//
// Expected shape (paper): on the work-queue model the WBI scheme stops
// scaling beyond ~16 nodes; backoff avoids the collapse but does not scale;
// CBL keeps improving. On the low-contention sync model WBI ~ CBL.
#include <cstdio>
#include <functional>

#include "bench_util.hpp"

namespace {

using namespace bcsim;
using namespace bcsim::bench;

constexpr std::uint32_t kGrain = 100;  // medium granularity

double q_line(core::MachineConfig cfg) {
  workload::WorkQueueConfig wq;
  wq.total_tasks = 256;
  wq.grain = kGrain;
  return static_cast<double>(run_work_queue(cfg, wq).completion);
}

double sync_line(core::MachineConfig cfg) {
  workload::SyncModelConfig sm;
  sm.tasks_per_proc = 8;
  sm.grain = kGrain;
  return static_cast<double>(run_sync_model(cfg, sm).completion);
}

}  // namespace

int main() {
  std::printf("Figure 4: performance of cache schemes, medium-granularity parallelism\n");
  std::printf("(completion time in machine cycles; grain = %u references/task)\n", kGrain);

  const auto nodes = node_sweep();
  std::vector<std::string> labels;
  std::vector<std::vector<double>> cells;
  const std::vector<std::string> cols = {"WBI", "CBL", "Q-WBI", "Q-backoff", "Q-CBL"};

  const auto rows = sim::parallel_map<std::vector<double>>(
      nodes.size(), std::function<std::vector<double>(std::size_t)>([&](std::size_t i) {
        const std::uint32_t n = nodes[i];
        return std::vector<double>{
            sync_line(wbi_machine(n, core::LockImpl::kTts)),
            sync_line(cbl_machine(n)),
            q_line(wbi_machine(n, core::LockImpl::kTts)),
            q_line(wbi_machine(n, core::LockImpl::kTtsBackoff)),
            q_line(cbl_machine(n)),
        };
      }));
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    labels.push_back("n=" + std::to_string(nodes[i]));
    cells.push_back(rows[i]);
  }
  print_table("Figure 4 series", "processors", cols, labels, cells);

  // The headline claims, checked numerically.
  const std::size_t last = nodes.size() - 1;
  std::printf("\nQ-WBI / Q-CBL at n=%u: %.2fx  (paper: WBI does not scale past 16)\n",
              nodes[last], cells[last][2] / cells[last][4]);
  std::printf("Q-backoff / Q-CBL at n=%u: %.2fx (backoff helps but fails to scale)\n",
              nodes[last], cells[last][3] / cells[last][4]);
  std::printf("WBI / CBL (sync model) at n=%u: %.2fx (comparable at low contention)\n",
              nodes[last], cells[last][0] / cells[last][1]);
  return 0;
}
