// Ablation A2: lock-cache capacity. Lock lines pinned in the lock queue
// are unreplaceable, so the small fully-associative lock cache bounds how
// many locks a node can hold or wait for. The paper treats sizing as a
// compile-time resource-management problem; this bench quantifies the
// cliff: processors acquire `kNested` locks in a global nesting order, so
// capacities below kNested force acquisition stalls.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/sync/mutex.hpp"

namespace {

using namespace bcsim;
using namespace bcsim::bench;
using core::Machine;
using core::Processor;

constexpr std::uint32_t kNested = 4;

struct Result {
  double completion = 0;
  double stalls = 0;
};

Result run_nested(std::uint32_t lock_cache_entries);

/// Capacity below the nesting depth is not a slowdown but a deadlock: a
/// node holding k locks waits for a free lock-cache slot that only its own
/// further progress could release. The paper's remedy is compile-time
/// conservatism ("mapping of software locks to hardware locks is a compile
/// time decision made conservatively"); the bench reports the cliff.
Result run_guarded(std::uint32_t entries) {
  try {
    return run_nested(entries);
  } catch (const std::runtime_error&) {
    return {-1.0, -1.0};  // cycle budget exhausted: deadlocked
  }
}

Result run_nested(std::uint32_t lock_cache_entries) {
  auto cfg = cbl_machine(8);
  cfg.lock_cache_entries = lock_cache_entries;
  Machine m(cfg);
  auto alloc = m.make_allocator(100);
  std::vector<Addr> locks;
  for (std::uint32_t l = 0; l < kNested; ++l) locks.push_back(alloc.alloc_blocks(1));
  struct Prog {
    const std::vector<Addr>& locks;
    sim::Task operator()(Processor& p) const {
      for (int k = 0; k < 16; ++k) {
        // Hierarchical (ordered) nesting: deadlock-free by construction.
        for (Addr l : locks) co_await p.write_lock(l);
        co_await p.compute(20);
        for (auto it = locks.rbegin(); it != locks.rend(); ++it) co_await p.unlock(*it);
        co_await p.compute(5);
      }
    }
  } prog{locks};
  for (NodeId i = 0; i < m.n_nodes(); ++i) m.spawn(prog(m.processor(i)));
  const Tick t = m.run(200'000'000ULL);
  if (!m.all_done()) return {-1.0, -1.0};  // deadlocked: event queue drained
  double stalls = 0;
  for (NodeId i = 0; i < m.n_nodes(); ++i) {
    stalls += static_cast<double>(m.cache_controller(i).lock_cache().stalls_served());
  }
  return {static_cast<double>(t),
          stalls + static_cast<double>(m.stats().counter_value("cache.lock_cache_stalls"))};
}

}  // namespace

int main() {
  std::printf("Ablation: lock-cache capacity (8 nodes, %u nested locks per critical path)\n",
              kNested);
  const std::vector<std::uint32_t> caps = {1, 2, 3, 4, 6, 8, 16};
  const auto rows = sim::parallel_map<Result>(
      caps.size(),
      std::function<Result(std::size_t)>([&](std::size_t i) { return run_guarded(caps[i]); }));
  std::printf("%-10s%16s%16s\n", "entries", "completion", "capacity stalls");
  for (std::size_t i = 0; i < caps.size(); ++i) {
    if (rows[i].completion < 0) {
      std::printf("%-10u%16s%16s\n", caps[i], "DEADLOCK", "-");
    } else {
      std::printf("%-10u%16.0f%16.0f\n", caps[i], rows[i].completion, rows[i].stalls);
    }
  }
  std::printf("\nExpected: capacity below the nesting depth (%u) deadlocks — exactly why\n"
              "the paper requires the compiler to map software locks to hardware locks\n"
              "conservatively. At or above the depth, modest extra slack absorbs\n"
              "releases still in flight.\n", kNested);
  return 0;
}
