// Ablation A4: CBL vs software queue locks the paper predates or inspired.
// MCS (1991) provides the same O(1)-handoff property in software; the
// ticket lock queues but spins on a single location. This bench replays
// the parallel-lock scenario and the work-queue workload across all lock
// implementations — the modern context for the paper's CBL claims.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/sync/mutex.hpp"

namespace {

using namespace bcsim;
using namespace bcsim::bench;
using core::LockImpl;
using core::Machine;
using core::Processor;

double contended_locks(const core::MachineConfig& cfg, int iters) {
  Machine m(cfg);
  auto alloc = m.make_allocator(100);
  auto mtx = sync::make_mutex(cfg.lock_impl, alloc, m.n_nodes());
  const Addr counter = mtx->data_rides_lock() ? mtx->lock_addr() + 1 : alloc.alloc_blocks(1);
  struct Prog {
    sync::Mutex& mtx;
    Addr counter;
    int iters;
    sim::Task operator()(Processor& p) const {
      for (int k = 0; k < iters; ++k) {
        co_await mtx.acquire(p);
        const Word v = co_await p.read(counter);
        co_await p.compute(10);
        co_await p.write(counter, v + 1);
        co_await mtx.release(p);
        co_await p.compute(20);
      }
    }
  } prog{*mtx, counter, iters};
  for (NodeId i = 0; i < m.n_nodes(); ++i) m.spawn(prog(m.processor(i)));
  return static_cast<double>(m.run(2'000'000'000ULL));
}

core::MachineConfig cfg_for(LockImpl impl, std::uint32_t n) {
  return impl == LockImpl::kCbl ? cbl_machine(n) : wbi_machine(n, impl);
}

}  // namespace

int main() {
  std::printf("Ablation: CBL vs software locks (contended counter, 12 CS/processor)\n");
  const std::vector<std::uint32_t> nodes = {4, 8, 16, 32, 64};
  const std::vector<LockImpl> impls = {LockImpl::kTts, LockImpl::kTtsBackoff,
                                       LockImpl::kTicket, LockImpl::kMcs, LockImpl::kCbl};
  const auto rows = sim::parallel_map<std::vector<double>>(
      nodes.size(), std::function<std::vector<double>(std::size_t)>([&](std::size_t i) {
        std::vector<double> row;
        for (LockImpl impl : impls) {
          row.push_back(contended_locks(cfg_for(impl, nodes[i]), 12));
        }
        return row;
      }));
  std::vector<std::string> labels;
  std::vector<std::vector<double>> cells;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    labels.push_back("n=" + std::to_string(nodes[i]));
    cells.push_back(rows[i]);
  }
  print_table("completion time (cycles)", "processors",
              {"tts", "tts-backoff", "ticket", "mcs", "cbl"}, labels, cells);
  std::printf("\nExpected: tts collapses with n; ticket improves (one release wakes all\n"
              "spinners but handoff is O(1)); mcs scales like cbl in message count;\n"
              "cbl still wins by merging the data transfer with the lock grant and by\n"
              "doing the queueing in cache hardware (fewer round trips per handoff).\n");
  return 0;
}
