// Table 2 reproduction: network traffic per processor for the n-processor
// linear equation solver under read-update vs. invalidation coherence.
//
// Part 1 prints the paper's analytical rows (closed-form, from
// src/analytic/table2). Part 2 runs the actual solver through the
// simulator under the three schemes and reports measured per-iteration
// network traffic, which must reproduce the analytical ordering: the
// read-update machine's next-iteration reads are free (updates are
// pushed), while both invalidation layouts re-fetch the x vector.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "analytic/table2.hpp"
#include "bench_util.hpp"
#include "workload/linear_solver.hpp"

namespace {

using namespace bcsim;
using namespace bcsim::bench;

struct SolverRun {
  double msgs_per_iter_per_proc = 0;
  double flits_per_iter_per_proc = 0;
  double hit_fraction = 0;
  double cycles_per_iter = 0;
};

SolverRun run_solver(const core::MachineConfig& cfg, bool separate_x) {
  // Measure iterations 3..10 (steady state: the first iterations include
  // one-time loads, which the paper accounts separately as "initial load").
  auto run_iters = [&](std::uint32_t iters) {
    core::Machine m(cfg);
    workload::LinearSolverConfig sc;
    sc.iterations = iters;
    sc.separate_x_blocks = separate_x;
    workload::LinearSolverWorkload w(m, sc);
    w.spawn_all(m);
    const Tick t = m.run(1'000'000'000ULL);
    return std::tuple{m.stats().counter_value("net.messages"),
                      m.stats().counter_value("net.flits"),
                      m.stats().counter_value("cache.hits"),
                      m.stats().counter_value("cache.misses") +
                          m.stats().counter_value("cache.read_update") +
                          m.stats().counter_value("cache.read_global"),
                      t};
  };
  const auto [m3, f3, h3, mi3, t3] = run_iters(3);
  const auto [m10, f10, h10, mi10, t10] = run_iters(10);
  SolverRun r;
  const double iters = 7.0, procs = cfg.n_nodes;
  r.msgs_per_iter_per_proc = static_cast<double>(m10 - m3) / iters / procs;
  r.flits_per_iter_per_proc = static_cast<double>(f10 - f3) / iters / procs;
  const double hits = static_cast<double>(h10 - h3);
  const double misses = static_cast<double>(mi10 - mi3);
  r.hit_fraction = hits / (hits + misses);
  r.cycles_per_iter = static_cast<double>(t10 - t3) / iters;
  return r;
}

}  // namespace

int main() {
  constexpr std::uint32_t kN = 16;  // processors == unknowns
  constexpr std::uint32_t kB = 4;   // block size (Table 4)

  std::printf("Table 2: coherence cost for the linear equation solver (n=%u, B=%u)\n", kN, kB);

  // ---- analytical rows (paper Table 2) ----
  const analytic::CostConstants cc;
  std::vector<std::string> labels;
  std::vector<std::vector<double>> cells;
  for (auto s : {analytic::Scheme::kReadUpdate, analytic::Scheme::kInvColocated,
                 analytic::Scheme::kInvSeparate}) {
    const auto t = analytic::solver_traffic(s, kN, kB, cc);
    labels.emplace_back(analytic::to_string(s));
    cells.push_back({t.initial_load, t.write, t.read, t.write + t.read});
  }
  print_table("analytical traffic per processor (cost units)", "scheme",
              {"initial load", "write/iter", "read/iter", "steady/iter"}, labels, cells);

  // ---- simulated counterpart ----
  std::printf("\nSimulated steady-state traffic (iterations 3..10, per iteration, per processor):\n");
  core::MachineConfig ru;
  ru.n_nodes = kN;
  ru.data_protocol = core::DataProtocol::kReadUpdate;
  ru.consistency = core::Consistency::kBuffered;
  ru.lock_impl = core::LockImpl::kCbl;
  ru.barrier_impl = core::BarrierImpl::kCbl;
  ru.network = core::NetworkKind::kOmega;

  auto wbi = wbi_machine(kN, core::LockImpl::kTts);

  const auto results = sim::parallel_map<SolverRun>(
      3, std::function<SolverRun(std::size_t)>([&](std::size_t i) {
        if (i == 0) return run_solver(ru, /*separate_x=*/false);
        if (i == 1) return run_solver(wbi, /*separate_x=*/false);
        return run_solver(wbi, /*separate_x=*/true);
      }));
  const char* names[] = {"read-update", "inv-I", "inv-II"};
  std::printf("%-14s%16s%16s%16s%16s\n", "scheme", "messages", "flits", "x-read hit%",
              "cycles/iter");
  for (std::size_t i = 0; i < 3; ++i) {
    std::printf("%-14s%16.1f%16.1f%15.1f%%%16.1f\n", names[i],
                results[i].msgs_per_iter_per_proc, results[i].flits_per_iter_per_proc,
                100.0 * results[i].hit_fraction, results[i].cycles_per_iter);
  }

  std::printf("\nShape check: read-update turns every steady-state x read into a local\n"
              "hit (hit%% column) and finishes iterations fastest (cycles/iter), at the\n"
              "price of multicast write traffic — the paper's Table 2 trade exactly:\n"
              "its 'read' row is zero for read-update while both invalidation layouts\n"
              "re-load the x vector every iteration.\n");
  return 0;
}
