// Sharded-kernel scaling: host wall-clock throughput of the work-queue
// workload as the shard count grows, at three machine sizes. Feeds the
// scaling table in docs/BENCHMARKS.md ("Sharded kernel").
//
// Every cell first re-verifies the contract that makes the comparison
// meaningful: the run's stats digest must equal the serial kernel's at the
// same node count (seed-0 bit-identity), so shard count changes *when the
// host finishes*, never *what the machine computed*.
//
//   bench_shard_scaling [--quick]
//
// --quick shrinks the task budget for CI smoke use. Wall-clock numbers are
// host-dependent (shards beyond the core count buy nothing but window
// overhead); the digest column is not.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace bcsim;
using namespace bcsim::bench;
using Clock = std::chrono::steady_clock;

struct Cell {
  Tick completion = 0;
  std::uint64_t digest = 0;
  double wall_ms = 0;
};

Cell run_cell(std::uint32_t nodes, std::uint32_t shards, std::uint32_t tasks,
              std::uint32_t grain) {
  auto cfg = paper_machine(nodes, core::Consistency::kBuffered);
  cfg.n_shards = shards;
  workload::WorkQueueConfig wq;
  wq.total_tasks = tasks;
  wq.grain = grain;
  core::Machine m(cfg);
  workload::WorkQueueWorkload w(m, wq);
  w.spawn_all(m);
  Cell c;
  const auto t0 = Clock::now();
  c.completion = m.run(4'000'000'000ULL);
  c.wall_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  c.digest = m.stats_digest();
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const std::vector<std::uint32_t> nodes = {64, 256, 1024};
  const std::vector<std::uint32_t> shards = {1, 2, 4, 8};
  const std::uint32_t grain = quick ? 20 : 100;

  std::printf("Sharded-kernel scaling (work-queue, grain %u%s)\n", grain,
              quick ? ", quick" : "");
  std::printf("%-10s %-8s %12s %12s %10s %8s  %s\n", "nodes", "shards", "wall_ms",
              "Mticks/s", "speedup", "digest", "vs serial");

  bool all_identical = true;
  for (const std::uint32_t n : nodes) {
    // Fixed total work per row so the serial column is an honest baseline.
    const std::uint32_t tasks = quick ? 2 * n : 4 * n;
    double serial_ms = 0;
    std::uint64_t serial_digest = 0;
    for (const std::uint32_t s : shards) {
      const Cell c = run_cell(n, s, tasks, grain);
      if (s == 1) {
        serial_ms = c.wall_ms;
        serial_digest = c.digest;
      }
      const bool identical = c.digest == serial_digest;
      all_identical = all_identical && identical;
      std::printf("%-10u %-8u %12.1f %12.2f %9.2fx %08llx  %s\n", n, s, c.wall_ms,
                  static_cast<double>(c.completion) / c.wall_ms / 1e3,
                  serial_ms / c.wall_ms,
                  static_cast<unsigned long long>(c.digest & 0xffffffffull),
                  identical ? "identical" : "DIVERGED");
    }
  }
  if (!all_identical) {
    std::printf("\nFAIL: a sharded run diverged from the serial kernel.\n");
    return 1;
  }
  std::printf("\nAll sharded runs bit-identical to the serial kernel (seed 0).\n"
              "Speedup is host-dependent: it tracks min(shards, free cores).\n");
  return 0;
}
