// Ablation: barrier implementations. Table 3 gives the hardware (CBL)
// barrier's costs; this bench positions it against the software
// alternatives — the centralized sense-reversing barrier (whose arrival
// counter is a textbook hot spot) and the combining tree (the software
// answer to that hot spot). Metric: mean cost of one barrier episode over
// many phases, with skewed arrivals.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/sync/barrier.hpp"

namespace {

using namespace bcsim;
using namespace bcsim::bench;
using core::Machine;
using core::Processor;

double barrier_phases(const core::MachineConfig& cfg, core::BarrierImpl impl, int phases) {
  Machine m(cfg);
  auto alloc = m.make_allocator(100);
  auto bar = sync::make_barrier(impl, alloc, m.n_nodes());
  struct Prog {
    sync::Barrier& bar;
    int phases;
    sim::Task operator()(Processor& p) const {
      auto& rng = p.rng();
      for (int ph = 0; ph < phases; ++ph) {
        co_await p.compute(1 + rng.next_below(50));  // skewed arrivals
        co_await bar.wait(p);
      }
    }
  } prog{*bar, phases};
  for (NodeId i = 0; i < m.n_nodes(); ++i) m.spawn(prog(m.processor(i)));
  return static_cast<double>(m.run(2'000'000'000ULL)) / phases;
}

}  // namespace

int main() {
  constexpr int kPhases = 24;
  std::printf("Ablation: barrier implementations (mean cycles per episode, %d phases)\n",
              kPhases);
  const std::vector<std::uint32_t> nodes = {4, 8, 16, 32, 64};
  std::printf("%-8s%16s%16s%16s\n", "n", "central", "tree", "cbl (hw)");
  const auto rows = sim::parallel_map<std::vector<double>>(
      nodes.size(), std::function<std::vector<double>(std::size_t)>([&](std::size_t i) {
        const std::uint32_t n = nodes[i];
        // Software barriers need coherent READ/WRITE: run them on the WBI
        // machine; the hardware barrier runs on the paper's machine.
        return std::vector<double>{
            barrier_phases(wbi_machine(n, core::LockImpl::kTts), core::BarrierImpl::kCentral,
                           kPhases),
            barrier_phases(wbi_machine(n, core::LockImpl::kTts), core::BarrierImpl::kTree,
                           kPhases),
            barrier_phases(cbl_machine(n), core::BarrierImpl::kCbl, kPhases),
        };
      }));
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    std::printf("%-8u%16.0f%16.0f%16.0f\n", nodes[i], rows[i][0], rows[i][1], rows[i][2]);
  }
  std::printf("\nReading the table: the CBL hardware barrier (one memory-side increment\n"
              "per arrival + chained release, Table 3's 2-messages-per-request row)\n"
              "wins clearly through ~32 nodes. At larger scale its RELEASE becomes the\n"
              "bottleneck: the notify chain is n-1 serial hops, while the combining\n"
              "tree's release fans out in parallel — so the tree overtakes it around\n"
              "n=64. That is a genuine scalability limit of the paper's chained-notify\n"
              "design (a tree-structured hardware release would fix it); the\n"
              "centralized software barrier hot-spots on its counter throughout.\n");
  return 0;
}
