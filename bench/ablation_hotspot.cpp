// Ablation: hot-spot contention (Pfister & Norton, the paper's reference
// [18] and its stated motivation: "synchronization accesses cause much
// greater network contention than accesses to normal shared data").
//
// n processors issue a fixed number of fetch&adds each, either all to ONE
// word (hot spot) or to per-processor words spread across the memory
// modules (cool). The Omega network funnels the hot traffic through one
// memory module and the tree of links in front of it; measured contention
// cycles and completion time quantify the funnel. The CBL comparison shows
// why the paper moves synchronization *out* of the hot-spot pattern: a
// queued lock turns n^2 retries into a linear handoff chain.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/sync/mutex.hpp"

namespace {

using namespace bcsim;
using namespace bcsim::bench;
using core::Machine;
using core::Processor;

struct Result {
  double completion = 0;
  double contention = 0;
};

Result rmw_storm(std::uint32_t n, bool hot, int ops_per_proc) {
  auto cfg = wbi_machine(n, core::LockImpl::kTts);
  Machine m(cfg);
  struct Prog {
    bool hot;
    int ops;
    std::uint32_t n;
    sim::Task operator()(Processor& p) const {
      const Addr target = hot ? 0 : static_cast<Addr>(1 + p.id()) * 4;
      for (int k = 0; k < ops; ++k) {
        co_await p.fetch_add(target, 1);
        co_await p.compute(2);
      }
    }
  } prog{hot, ops_per_proc, n};
  for (NodeId i = 0; i < n; ++i) m.spawn(prog(m.processor(i)));
  const Tick t = m.run(2'000'000'000ULL);
  return {static_cast<double>(t),
          static_cast<double>(m.stats().counter_value("net.contention_cycles"))};
}

}  // namespace

int main() {
  constexpr int kOps = 32;
  std::printf("Ablation: hot-spot contention (%d fetch&adds per processor, Omega network)\n",
              kOps);
  std::printf("%-8s%16s%16s%16s%16s%14s\n", "n", "hot cycles", "cool cycles", "hot cont.",
              "cool cont.", "hot/cool");
  const std::vector<std::uint32_t> nodes = {4, 8, 16, 32, 64};
  const auto rows = sim::parallel_map<std::vector<double>>(
      nodes.size(), std::function<std::vector<double>(std::size_t)>([&](std::size_t i) {
        const auto h = rmw_storm(nodes[i], true, kOps);
        const auto c = rmw_storm(nodes[i], false, kOps);
        return std::vector<double>{h.completion, c.completion, h.contention, c.contention,
                                   h.completion / c.completion};
      }));
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    std::printf("%-8u%16.0f%16.0f%16.0f%16.0f%14.1f\n", nodes[i], rows[i][0], rows[i][1],
                rows[i][2], rows[i][3], rows[i][4]);
  }
  std::printf("\nExpected: the hot/cool ratio grows with n — every request serializes\n"
              "at one memory module and congests the links feeding it, while the cool\n"
              "pattern spreads across all modules. This is the contention the paper's\n"
              "cache-based synchronization is designed to avoid generating at all.\n");
  return 0;
}
