// Ablation: write-buffer depth. The paper's simulation assumes an infinite
// write buffer (Table 4); a real machine bounds it, and a full buffer
// stalls the processor exactly like sequential consistency would. This
// bench sweeps buffer depth under a write-burst workload to show where
// buffered consistency's benefit saturates — the quantitative version of
// DESIGN.md's "write buffer absorbs bursts" claim (and of the Adve-Hill
// pending-operation counter the buffer implements).
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace bcsim;
using namespace bcsim::bench;
using core::Machine;
using core::Processor;

double write_burst(std::size_t buffer_entries, bool sequential) {
  auto cfg = paper_machine(8, sequential ? core::Consistency::kSequential
                                         : core::Consistency::kBuffered);
  cfg.write_buffer_entries = buffer_entries;
  Machine m(cfg);
  struct Prog {
    sim::Task operator()(Processor& p) const {
      // Bursts of global writes separated by compute: the pattern inside
      // a critical section or producer phase.
      for (int burst = 0; burst < 16; ++burst) {
        for (int w = 0; w < 8; ++w) {
          co_await p.write_global(
              static_cast<Addr>((p.id() * 1024) + burst * 32 + w * 4), w);
        }
        co_await p.compute(100);
      }
      co_await p.flush_buffer();
    }
  } prog;
  for (NodeId i = 0; i < m.n_nodes(); ++i) m.spawn(prog(m.processor(i)));
  return static_cast<double>(m.run(2'000'000'000ULL));
}

}  // namespace

int main() {
  std::printf("Ablation: write-buffer depth (8 nodes, 16 bursts x 8 global writes each)\n\n");
  std::printf("%-14s%16s\n", "buffer", "cycles");
  const double sc = write_burst(0, /*sequential=*/true);
  std::printf("%-14s%16.0f   <- sequential consistency (stall per write)\n", "SC", sc);
  for (std::size_t entries : {1u, 2u, 4u, 8u, 16u}) {
    std::printf("%-14zu%16.0f\n", entries, write_burst(entries, false));
  }
  const double unbounded = write_burst(0, false);
  std::printf("%-14s%16.0f   <- paper Table 4 assumption\n", "unbounded", unbounded);
  std::printf("\nExpected: depth 1 behaves nearly like SC (every second write stalls);\n"
              "the benefit saturates once the buffer covers a burst (8 here) — the\n"
              "infinite-buffer assumption costs little beyond that.\n");
  std::printf("BC(unbounded)/SC = %.2f\n", unbounded / sc);
  return 0;
}
