// Figure 6 reproduction: buffered consistency (BC-CBL) vs sequential
// consistency (SC-CBL) on the work-queue workload with FINE-granularity
// parallelism (10 data references per task), on the paper's machine
// (read-update coherence + CBL locks).
//
// Expected shape (paper): BC improves completion time for most cases, but
// the improvement is modest — global writes happen only with probability
// sh x write_ratio ~ 0.45% of references in the tested workload.
#include <algorithm>
#include <cstdio>
#include <functional>

#include "bench_util.hpp"

namespace {

using namespace bcsim;
using namespace bcsim::bench;

constexpr std::uint32_t kGrain = 10;  // fine granularity

double run_model(std::uint32_t n, core::Consistency c) {
  workload::WorkQueueConfig wq;
  wq.total_tasks = 384;
  wq.grain = kGrain;
  return static_cast<double>(run_work_queue(paper_machine(n, c), wq).completion);
}

}  // namespace

int main() {
  std::printf("Figure 6: buffered vs sequential consistency, fine-granularity work-queue\n");
  std::printf("(completion time in machine cycles; grain = %u references/task)\n", kGrain);

  const auto nodes = node_sweep();
  const std::vector<std::string> cols = {"SC-CBL", "BC-CBL", "BC/SC"};
  const auto rows = sim::parallel_map<std::vector<double>>(
      nodes.size(), std::function<std::vector<double>(std::size_t)>([&](std::size_t i) {
        const std::uint32_t n = nodes[i];
        const double sc = run_model(n, core::Consistency::kSequential);
        const double bc = run_model(n, core::Consistency::kBuffered);
        return std::vector<double>{sc, bc, 100.0 * bc / sc};
      }));
  std::vector<std::string> labels;
  std::vector<std::vector<double>> cells;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    labels.push_back("n=" + std::to_string(nodes[i]));
    cells.push_back(rows[i]);
  }
  print_table("Figure 6 series (BC/SC column in percent)", "processors", cols, labels, cells);

  double worst_ratio = 0;
  for (const auto& r : cells) worst_ratio = std::max(worst_ratio, r[2]);
  std::printf("\nBC is never slower than SC here (max BC/SC = %.1f%%); the gain is\n"
              "modest, as the paper reports, because buffered global writes are a\n"
              "small fraction of all references.\n", worst_ratio);
  return 0;
}
