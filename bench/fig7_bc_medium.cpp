// Figure 7 reproduction: buffered consistency (BC-CBL) vs sequential
// consistency (SC-CBL) on the work-queue workload with MEDIUM-granularity
// parallelism (100 data references per task).
//
// Expected shape (paper): as Figure 6, with an even smaller BC advantage —
// coarser tasks mean proportionally fewer synchronization points whose
// latency buffering can hide.
#include <algorithm>
#include <cstdio>
#include <functional>

#include "bench_util.hpp"

namespace {

using namespace bcsim;
using namespace bcsim::bench;

constexpr std::uint32_t kGrain = 100;  // medium granularity

double run_model(std::uint32_t n, core::Consistency c) {
  workload::WorkQueueConfig wq;
  wq.total_tasks = 256;
  wq.grain = kGrain;
  return static_cast<double>(run_work_queue(paper_machine(n, c), wq).completion);
}

}  // namespace

int main() {
  std::printf("Figure 7: buffered vs sequential consistency, medium-granularity work-queue\n");
  std::printf("(completion time in machine cycles; grain = %u references/task)\n", kGrain);

  const auto nodes = node_sweep();
  const std::vector<std::string> cols = {"SC-CBL", "BC-CBL", "BC/SC"};
  const auto rows = sim::parallel_map<std::vector<double>>(
      nodes.size(), std::function<std::vector<double>(std::size_t)>([&](std::size_t i) {
        const std::uint32_t n = nodes[i];
        const double sc = run_model(n, core::Consistency::kSequential);
        const double bc = run_model(n, core::Consistency::kBuffered);
        return std::vector<double>{sc, bc, 100.0 * bc / sc};
      }));
  std::vector<std::string> labels;
  std::vector<std::vector<double>> cells;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    labels.push_back("n=" + std::to_string(nodes[i]));
    cells.push_back(rows[i]);
  }
  print_table("Figure 7 series (BC/SC column in percent)", "processors", cols, labels, cells);

  double worst_ratio = 0;
  for (const auto& r : cells) worst_ratio = std::max(worst_ratio, r[2]);
  std::printf("\nMax BC/SC = %.1f%% — the buffered-consistency gain shrinks with\n"
              "coarser granularity, matching the paper's Figure 7 narrative.\n",
              worst_ratio);
  return 0;
}
