// Table 3 reproduction: messages and time for synchronization scenarios
// under WBI (spin lock on write-back-invalidate coherence) vs CBL.
//
// Part 1 prints the paper's analytical rows. Part 2 runs the four
// scenarios through the simulator and reports measured message counts and
// times; the claims that must reproduce are the complexity classes —
// parallel lock O(n^2) WBI vs O(n) CBL — and the serial-lock and barrier
// message counts.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "analytic/table3.hpp"
#include "bench_util.hpp"
#include "core/sync/barrier.hpp"
#include "core/sync/mutex.hpp"

namespace {

using namespace bcsim;
using namespace bcsim::bench;
using core::Machine;
using core::Processor;

struct Measured {
  double messages = 0;
  double time = 0;
};

/// n processors request the same lock simultaneously; each holds for t_cs.
Measured parallel_lock(const core::MachineConfig& cfg, Tick t_cs) {
  Machine m(cfg);
  auto alloc = m.make_allocator(100);
  auto mtx = sync::make_mutex(cfg.lock_impl, alloc, m.n_nodes());
  struct Prog {
    sync::Mutex& mtx;
    Tick t_cs;
    sim::Task operator()(Processor& p) const {
      co_await mtx.acquire(p);
      co_await p.compute(t_cs);
      co_await mtx.release(p);
    }
  } prog{*mtx, t_cs};
  for (NodeId i = 0; i < m.n_nodes(); ++i) m.spawn(prog(m.processor(i)));
  const Tick t = m.run(2'000'000'000ULL);
  return {static_cast<double>(m.stats().counter_value("net.messages")),
          static_cast<double>(t)};
}

/// One processor acquires and releases an uncontended lock `reps` times;
/// costs are reported per acquire/release pair.
Measured serial_lock(const core::MachineConfig& cfg, Tick t_cs, int reps = 16) {
  Machine m(cfg);
  auto alloc = m.make_allocator(100);
  auto mtx = sync::make_mutex(cfg.lock_impl, alloc, m.n_nodes());
  struct Prog {
    sync::Mutex& mtx;
    Tick t_cs;
    int reps;
    sim::Task operator()(Processor& p) const {
      for (int k = 0; k < reps; ++k) {
        co_await mtx.acquire(p);
        co_await p.compute(t_cs);
        co_await mtx.release(p);
      }
    }
  } prog{*mtx, t_cs, reps};
  m.spawn(prog(m.processor(0)));
  const Tick t = m.run(2'000'000'000ULL);
  return {static_cast<double>(m.stats().counter_value("net.messages")) / reps,
          static_cast<double>(t) / reps};
}

/// One full barrier episode across n processors; messages total, time to
/// release after the last arrival.
Measured barrier_once(const core::MachineConfig& cfg) {
  Machine m(cfg);
  auto alloc = m.make_allocator(100);
  auto bar = sync::make_barrier(cfg.barrier_impl, alloc, m.n_nodes());
  struct Prog {
    sync::Barrier& bar;
    sim::Task operator()(Processor& p) const { co_await bar.wait(p); }
  } prog{*bar};
  for (NodeId i = 0; i < m.n_nodes(); ++i) m.spawn(prog(m.processor(i)));
  const Tick t = m.run(2'000'000'000ULL);
  return {static_cast<double>(m.stats().counter_value("net.messages")),
          static_cast<double>(t)};
}

}  // namespace

int main() {
  constexpr std::uint32_t kN = 16;
  constexpr Tick kTcs = 50;

  std::printf("Table 3: cost of synchronization scenarios, WBI vs CBL (n=%u)\n", kN);

  // ---- analytical rows ----
  analytic::TimeConstants tc;
  tc.t_cs = static_cast<double>(kTcs);
  std::vector<std::string> labels;
  std::vector<std::vector<double>> cells;
  for (auto s : {analytic::SyncScenario::kParallelLock, analytic::SyncScenario::kSerialLock,
                 analytic::SyncScenario::kBarrierRequest,
                 analytic::SyncScenario::kBarrierNotify}) {
    const auto w = analytic::wbi_cost(s, kN, tc);
    const auto c = analytic::cbl_cost(s, kN, tc);
    labels.emplace_back(analytic::to_string(s));
    cells.push_back({w.messages, w.time, c.messages, c.time});
  }
  print_table("analytical (paper Table 3)", "scenario",
              {"WBI msgs", "WBI time", "CBL msgs", "CBL time"}, labels, cells);

  // ---- simulated counterpart ----
  const auto wbi = wbi_machine(kN, core::LockImpl::kTts);
  const auto cbl = cbl_machine(kN);
  const auto res = sim::parallel_map<Measured>(
      6, std::function<Measured(std::size_t)>([&](std::size_t i) {
        switch (i) {
          case 0: return parallel_lock(wbi, kTcs);
          case 1: return parallel_lock(cbl, kTcs);
          case 2: return serial_lock(wbi, kTcs);
          case 3: return serial_lock(cbl, kTcs);
          case 4: return barrier_once(wbi);
          default: return barrier_once(cbl);
        }
      }));
  print_table("simulated", "scenario", {"WBI msgs", "WBI time", "CBL msgs", "CBL time"},
              {"parallel lock", "serial lock", "barrier"},
              {{res[0].messages, res[0].time, res[1].messages, res[1].time},
               {res[2].messages, res[2].time, res[3].messages, res[3].time},
               {res[4].messages, res[4].time, res[5].messages, res[5].time}});

  // ---- complexity-class check: messages vs n for the parallel lock ----
  std::printf("\nParallel-lock message scaling (simulated):\n");
  std::printf("%-8s%16s%16s%16s\n", "n", "WBI msgs", "CBL msgs", "WBI/CBL");
  for (std::uint32_t n : {4u, 8u, 16u, 32u, 64u}) {
    const auto w = parallel_lock(wbi_machine(n, core::LockImpl::kTts), kTcs);
    const auto c = parallel_lock(cbl_machine(n), kTcs);
    std::printf("%-8u%16.0f%16.0f%16.1f\n", n, w.messages, c.messages,
                w.messages / c.messages);
  }
  std::printf("\nExpected: the WBI/CBL ratio grows ~linearly with n (O(n^2) vs O(n)).\n");
  return 0;
}
