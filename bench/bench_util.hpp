// Shared helpers for the paper-reproduction benchmark harnesses.
//
// Each bench binary regenerates one table or figure of the paper: it runs
// the relevant simulations (in parallel across host threads — each
// simulation is single-threaded and deterministic) and prints the same
// rows/series the paper reports, plus the measured message counts that
// back them.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/machine.hpp"
#include "sim/sweep.hpp"
#include "workload/sync_model.hpp"
#include "workload/work_queue_model.hpp"

namespace bcsim::bench {

/// WBI machine with a software lock (the paper's baseline).
inline core::MachineConfig wbi_machine(std::uint32_t n, core::LockImpl lock) {
  core::MachineConfig cfg;
  cfg.n_nodes = n;
  cfg.lock_impl = lock;
  cfg.barrier_impl = core::BarrierImpl::kCentral;
  cfg.network = core::NetworkKind::kOmega;
  return cfg;
}

/// WBI data coherence + hardware CBL locks/barrier (Figures 4-5 "CBL"
/// lines: "these tests do not employ buffered consistency").
inline core::MachineConfig cbl_machine(std::uint32_t n) {
  core::MachineConfig cfg;
  cfg.n_nodes = n;
  cfg.lock_impl = core::LockImpl::kCbl;
  cfg.barrier_impl = core::BarrierImpl::kCbl;
  cfg.network = core::NetworkKind::kOmega;
  return cfg;
}

/// The paper's full machine: read-update coherence + CBL + chosen
/// consistency model (Figures 6-7).
inline core::MachineConfig paper_machine(std::uint32_t n, core::Consistency c) {
  core::MachineConfig cfg;
  cfg.n_nodes = n;
  cfg.data_protocol = core::DataProtocol::kReadUpdate;
  cfg.consistency = c;
  cfg.lock_impl = core::LockImpl::kCbl;
  cfg.barrier_impl = core::BarrierImpl::kCbl;
  cfg.network = core::NetworkKind::kOmega;
  return cfg;
}

struct RunResult {
  Tick completion = 0;
  std::uint64_t messages = 0;
  std::uint64_t contention_cycles = 0;
};

/// Runs the work-queue workload (fixed total work) on a machine.
inline RunResult run_work_queue(const core::MachineConfig& cfg,
                                const workload::WorkQueueConfig& wq,
                                Tick budget = 4'000'000'000ULL) {
  core::Machine m(cfg);
  workload::WorkQueueWorkload w(m, wq);
  w.spawn_all(m);
  RunResult r;
  r.completion = m.run(budget);
  r.messages = m.stats().counter_value("net.messages");
  r.contention_cycles = m.stats().counter_value("net.contention_cycles");
  return r;
}

/// Runs the sync-model workload (fixed work per processor).
inline RunResult run_sync_model(const core::MachineConfig& cfg,
                                const workload::SyncModelConfig& sm,
                                Tick budget = 4'000'000'000ULL) {
  core::Machine m(cfg);
  workload::SyncModelWorkload w(m, sm);
  w.spawn_all(m);
  RunResult r;
  r.completion = m.run(budget);
  r.messages = m.stats().counter_value("net.messages");
  r.contention_cycles = m.stats().counter_value("net.contention_cycles");
  return r;
}

/// Prints an aligned table: first column label + numeric columns.
inline void print_table(const std::string& title, const std::string& row_header,
                        const std::vector<std::string>& columns,
                        const std::vector<std::string>& row_labels,
                        const std::vector<std::vector<double>>& cells) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-14s", row_header.c_str());
  for (const auto& c : columns) std::printf("%16s", c.c_str());
  std::printf("\n");
  for (std::size_t r = 0; r < row_labels.size(); ++r) {
    std::printf("%-14s", row_labels[r].c_str());
    for (double v : cells[r]) std::printf("%16.1f", v);
    std::printf("\n");
  }
}

/// Standard processor-count sweep for the figure benches.
inline std::vector<std::uint32_t> node_sweep() { return {2, 4, 8, 16, 32, 64}; }

}  // namespace bcsim::bench
