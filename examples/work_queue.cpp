// Example: the paper's work-queue workload (dynamic task scheduling from a
// lock-protected shared queue) across lock implementations.
//
//   $ ./work_queue [n_processors] [total_tasks] [grain]
//
// This is a runnable slice of Figure 4: watch the test-and-set spin lock
// drown in invalidation traffic as processors are added, while the CBL
// queue lock hands the queue head from cache to cache.
#include <cstdio>
#include <cstdlib>

#include "core/machine.hpp"
#include "workload/work_queue_model.hpp"

using namespace bcsim;

namespace {

struct Outcome {
  Tick completion;
  std::uint64_t messages;
  std::uint64_t tasks;
};

Outcome run(core::LockImpl lock, std::uint32_t n, std::uint32_t tasks, std::uint32_t grain) {
  core::MachineConfig cfg;
  cfg.n_nodes = n;
  cfg.lock_impl = lock;
  if (lock == core::LockImpl::kCbl) cfg.barrier_impl = core::BarrierImpl::kCbl;
  core::Machine m(cfg);
  workload::WorkQueueConfig wq;
  wq.total_tasks = tasks;
  wq.grain = grain;
  workload::WorkQueueWorkload w(m, wq);
  w.spawn_all(m);
  const Tick t = m.run();
  return {t, m.stats().counter_value("net.messages"), w.tasks_executed(m)};
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 16;
  const std::uint32_t tasks = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 128;
  const std::uint32_t grain = argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 100;

  std::printf("work-queue: %u processors, %u tasks, grain %u\n\n", n, tasks, grain);
  std::printf("%-14s%14s%14s%12s\n", "lock", "cycles", "messages", "tasks run");
  for (auto lock : {core::LockImpl::kTts, core::LockImpl::kTtsBackoff, core::LockImpl::kTicket,
                    core::LockImpl::kMcs, core::LockImpl::kCbl}) {
    const auto o = run(lock, n, tasks, grain);
    std::printf("%-14s%14llu%14llu%12llu\n", std::string(core::to_string(lock)).c_str(),
                static_cast<unsigned long long>(o.completion),
                static_cast<unsigned long long>(o.messages),
                static_cast<unsigned long long>(o.tasks));
  }
  std::printf("\nUnder CBL the queue metadata lives in the lock block itself, so the\n"
              "dequeue/enqueue state arrives with the grant — the paper's\n"
              "\"synchronization merged with data transfer\".\n");
  return 0;
}
