// Example: reader-initiated coherence as a publish/subscribe fabric.
//
//   $ ./producer_consumer
//
// A producer updates a block of "sensor readings" with WRITE-GLOBAL every
// few hundred cycles. Consumers subscribe with READ-UPDATE: after the
// first fetch, every new reading is pushed to them down the subscriber
// chain, and their reads are local cache hits. Halfway through, half the
// consumers lose interest and RESET-UPDATE; the message counts show the
// chain shrinking — the selectivity that write-update protocols lack
// (paper section 4.1).
#include <cstdio>
#include <deque>

#include "core/machine.hpp"

using namespace bcsim;

namespace {

constexpr std::uint32_t kConsumers = 6;
constexpr int kRounds = 20;

struct Producer {
  Addr block;
  sim::Task operator()(core::Processor& p) const {
    for (int r = 1; r <= kRounds; ++r) {
      co_await p.compute(300);
      // Checksum first: update chains from the same home are delivered in
      // order, so when a consumer observes reading r, checksum r^2 has
      // already arrived.
      co_await p.write_global(block + 1, static_cast<Word>(r * r));  // checksum
      co_await p.write_global(block, static_cast<Word>(r));          // reading
      co_await p.flush_buffer();
    }
  }
};

struct Consumer {
  Addr block;
  bool fickle;  // unsubscribes after half the rounds
  std::uint64_t* local_hits;
  sim::Task operator()(core::Processor& p) const {
    Word last = co_await p.read_update(block);  // subscribe + first fetch
    const int until = fickle ? kRounds / 2 : kRounds;
    while (static_cast<int>(last) < until) {
      co_await p.wait_word_change(block, last);
      const Tick t0 = p.simulator().now();
      const Word v = co_await p.read_update(block);  // local hit: pushed to us
      if (p.simulator().now() - t0 == 1) ++*local_hits;
      if (v == last) continue;  // spurious: another word of the block changed
      last = v;
      // The producer publishes the checksum before the reading and update
      // chains from one home are delivered in order, so this never tears.
      const Word check = co_await p.read(block + 1);
      if (check != last * last) {
        std::printf("consumer %u: TORN read at round %llu!\n", p.id(),
                    static_cast<unsigned long long>(last));
      }
    }
    if (fickle) co_await p.reset_update(block);
  }
};

}  // namespace

int main() {
  core::MachineConfig cfg;
  cfg.n_nodes = kConsumers + 1;
  cfg.data_protocol = core::DataProtocol::kReadUpdate;
  cfg.consistency = core::Consistency::kBuffered;
  cfg.lock_impl = core::LockImpl::kCbl;
  cfg.barrier_impl = core::BarrierImpl::kCbl;
  core::Machine m(cfg);

  auto alloc = m.make_allocator();
  const Addr block = alloc.alloc_blocks(1);

  std::uint64_t local_hits = 0;
  Producer prod{block};
  m.spawn(prod(m.processor(0)));
  std::deque<Consumer> consumers;
  for (NodeId i = 1; i <= kConsumers; ++i) {
    consumers.push_back(Consumer{block, /*fickle=*/i % 2 == 0, &local_hits});
    m.spawn(consumers.back()(m.processor(i)));
  }

  const Tick t = m.run();
  std::printf("done in %llu cycles\n", static_cast<unsigned long long>(t));
  std::printf("consumer reads served locally (pushed updates): %llu\n",
              static_cast<unsigned long long>(local_hits));
  std::printf("chained update deliveries: %llu across %llu propagations\n",
              static_cast<unsigned long long>(
                  m.stats().counter_value("cache.ru_updates_received")),
              static_cast<unsigned long long>(
                  m.stats().counter_value("dir.ru_propagations")));
  std::printf("unsubscribes honored by the directory: %llu\n",
              static_cast<unsigned long long>(m.stats().counter_value("dir.reset_update")));
  std::printf("\nEvery reading beyond the first arrived without the consumer asking —\n"
              "reader-initiated coherence is subscription, not polling.\n");
  return 0;
}
