// Bounded buffer (producer/consumer) built from the machine's
// synchronization primitives: two counting semaphores (slots/items — the
// paper's P as NP-Synch, V as CP-Synch) plus a CBL mutex guarding the ring
// indices, which ride the lock block.
//
//   $ ./bounded_buffer [producers] [consumers] [items_per_producer]
//
// Verifies at the end that every produced item was consumed exactly once.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/machine.hpp"
#include "core/sync/mutex.hpp"
#include "core/sync/semaphore.hpp"

using namespace bcsim;

namespace {

constexpr std::uint32_t kCapacity = 4;

struct Buffer {
  sync::CountingSemaphore& slots;
  sync::CountingSemaphore& items;
  sync::Mutex& mtx;
  Addr head;   // rides the lock block
  Addr tail;   // rides the lock block
  Addr ring;   // kCapacity slots

  sim::Task put(core::Processor& p, Word v) const {
    co_await slots.p_op(p);
    co_await mtx.acquire(p);
    const Word t = co_await p.read(tail);
    co_await p.write(tail, t + 1);
    co_await p.write_global(ring + (t % kCapacity), v);
    co_await mtx.release(p);  // CP-Synch: the slot write is global first
    co_await items.v_op(p);
  }

  sim::Task get(core::Processor& p, Word* out) const {
    co_await items.p_op(p);
    co_await mtx.acquire(p);
    const Word h = co_await p.read(head);
    co_await p.write(head, h + 1);
    *out = co_await p.read_global(ring + (h % kCapacity));
    co_await mtx.release(p);
    co_await slots.v_op(p);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t producers = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 3;
  const std::uint32_t consumers = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 3;
  const std::uint32_t per_prod = argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 8;
  const std::uint32_t total = producers * per_prod;

  core::MachineConfig cfg;
  cfg.n_nodes = producers + consumers;
  cfg.data_protocol = core::DataProtocol::kReadUpdate;
  cfg.consistency = core::Consistency::kBuffered;
  cfg.lock_impl = core::LockImpl::kCbl;
  cfg.barrier_impl = core::BarrierImpl::kCbl;
  core::Machine m(cfg);

  auto alloc = m.make_allocator();
  sync::CountingSemaphore slots(cfg.lock_impl, alloc, cfg.n_nodes, kCapacity);
  sync::CountingSemaphore items(cfg.lock_impl, alloc, cfg.n_nodes, 0);
  sync::CblMutex mtx(alloc);
  Buffer buf{slots, items, mtx, mtx.lock_addr() + 1, mtx.lock_addr() + 2,
             alloc.alloc_words(kCapacity)};

  // Consumption tally: each consumed item value marks one cell.
  std::vector<int> consumed(total, 0);

  struct Producer {
    const Buffer& buf;
    std::uint32_t per_prod;
    sim::Task operator()(core::Processor& p) const {
      for (std::uint32_t k = 0; k < per_prod; ++k) {
        co_await buf.put(p, static_cast<Word>(p.id()) * per_prod + k + 1);
        co_await p.compute(20);
      }
    }
  } producer{buf, per_prod};
  struct Consumer {
    const Buffer& buf;
    std::vector<int>& consumed;
    std::uint32_t quota;
    std::uint32_t producers;
    std::uint32_t per_prod;
    sim::Task operator()(core::Processor& p) const {
      for (std::uint32_t k = 0; k < quota; ++k) {
        Word v = 0;
        co_await buf.get(p, &v);
        const Word producer_id = (v - 1) / per_prod;
        const Word index = producer_id * per_prod + ((v - 1) % per_prod);
        ++consumed[index];
        co_await p.compute(35);
      }
    }
  };

  // Consumers split the total; the division must be exact for termination.
  if (total % consumers != 0) {
    std::fprintf(stderr, "items (%u) must divide evenly among consumers (%u)\n", total,
                 consumers);
    return 2;
  }
  std::vector<Consumer> consumer_progs;
  for (std::uint32_t c = 0; c < consumers; ++c) {
    consumer_progs.push_back(Consumer{buf, consumed, total / consumers, producers, per_prod});
  }

  // Semaphore counters need one-time initialization before concurrency.
  struct Init {
    sync::CountingSemaphore& slots;
    sync::CountingSemaphore& items;
    sim::Task operator()(core::Processor& p) const {
      co_await slots.init(p);
      co_await items.init(p);
    }
  } init{slots, items};
  m.spawn(init(m.processor(0)));
  m.run();

  for (std::uint32_t i = 0; i < producers; ++i) m.spawn(producer(m.processor(i)));
  for (std::uint32_t c = 0; c < consumers; ++c) {
    m.spawn(consumer_progs[c](m.processor(producers + c)));
  }
  const Tick t = m.run();

  int exactly_once = 0;
  for (int n : consumed) exactly_once += (n == 1) ? 1 : 0;
  std::printf("%u producers -> %u consumers through a %u-slot buffer: %llu cycles\n",
              producers, consumers, kCapacity, static_cast<unsigned long long>(t));
  std::printf("items consumed exactly once: %d / %u %s\n", exactly_once, total,
              exactly_once == static_cast<int>(total) ? "(all good)" : "(BUG!)");
  return exactly_once == static_cast<int>(total) ? 0 : 1;
}
