// Tracer: capture the primitive stream of a simulated run into the text
// trace format, and replay trace files — the paper's "trace-driven
// simulation" future-work item as a usable tool.
//
//   $ ./tracer capture out.trace [n] [tasks] [grain]   # record a work-queue run
//   $ ./tracer replay  in.trace  [n]                   # re-execute a trace
//
// Capture runs the work-queue workload on the paper's machine and writes
// every primitive each processor issued. Replay drives a fresh machine
// from the file and reports completion time and message counts — the same
// program, now reproducible without the workload's randomness.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "core/machine.hpp"
#include "workload/trace.hpp"
#include "workload/work_queue_model.hpp"

using namespace bcsim;

namespace {

core::MachineConfig machine_config(std::uint32_t n) {
  core::MachineConfig cfg;
  cfg.n_nodes = n;
  cfg.data_protocol = core::DataProtocol::kReadUpdate;
  cfg.consistency = core::Consistency::kBuffered;
  cfg.lock_impl = core::LockImpl::kCbl;
  cfg.barrier_impl = core::BarrierImpl::kCbl;
  return cfg;
}

int capture(const char* path, std::uint32_t n, std::uint32_t tasks, std::uint32_t grain) {
  core::Machine m(machine_config(n));
  workload::TraceRecorder rec(m);
  workload::WorkQueueConfig wq;
  wq.total_tasks = tasks;
  wq.grain = grain;
  workload::WorkQueueWorkload w(m, wq);
  w.spawn_all(m);
  const Tick t = m.run();
  rec.detach();
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  out << "# bcsim trace: work-queue, n=" << n << " tasks=" << tasks << " grain=" << grain
      << "\n# original completion: " << t << " cycles\n";
  rec.trace().write(out);
  std::printf("captured %zu records to %s (original run: %llu cycles, %llu tasks)\n",
              rec.trace().size(), path, static_cast<unsigned long long>(t),
              static_cast<unsigned long long>(w.tasks_executed(m)));
  return 0;
}

int replay(const char* path, std::uint32_t n) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path);
    return 1;
  }
  workload::Trace trace = workload::Trace::parse(in);
  core::Machine m(machine_config(n));
  workload::TraceWorkload w(m, std::move(trace));
  w.spawn_all(m);
  const Tick t = m.run();
  std::printf("replayed on %u nodes: %llu cycles, %llu network messages\n", n,
              static_cast<unsigned long long>(t),
              static_cast<unsigned long long>(m.stats().counter_value("net.messages")));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s capture <out.trace> [n] [tasks] [grain]\n"
                 "       %s replay  <in.trace>  [n]\n",
                 argv[0], argv[0]);
    return 2;
  }
  const auto n = argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 8u;
  if (std::strcmp(argv[1], "capture") == 0) {
    const auto tasks = argc > 4 ? static_cast<std::uint32_t>(std::atoi(argv[4])) : 64u;
    const auto grain = argc > 5 ? static_cast<std::uint32_t>(std::atoi(argv[5])) : 50u;
    return capture(argv[2], n, tasks, grain);
  }
  if (std::strcmp(argv[1], "replay") == 0) {
    return replay(argv[2], n);
  }
  std::fprintf(stderr, "unknown mode '%s'\n", argv[1]);
  return 2;
}
