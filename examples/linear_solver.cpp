// Example: the paper's motivating workload (section 4.1) — an iterative
// linear equation solver — run under each coherence scheme.
//
//   $ ./linear_solver [n_processors] [iterations]
//
// Demonstrates: READ-UPDATE turning every steady-state x-vector read into a
// local hit, WRITE-GLOBAL + buffered consistency overlapping the publish
// with computation, and the false-sharing cost of the colocated layout
// under invalidation coherence.
#include <cstdio>
#include <cstdlib>

#include "core/machine.hpp"
#include "workload/linear_solver.hpp"

using namespace bcsim;

namespace {

struct Outcome {
  Tick completion;
  std::uint64_t messages;
  std::uint64_t flits;
  double residual;
  bool exact;
};

Outcome run(const core::MachineConfig& cfg, bool separate_x, std::uint32_t iterations) {
  core::Machine m(cfg);
  workload::LinearSolverConfig sc;
  sc.iterations = iterations;
  sc.separate_x_blocks = separate_x;
  workload::LinearSolverWorkload w(m, sc);
  w.spawn_all(m);
  const Tick t = m.run();
  return {t, m.stats().counter_value("net.messages"), m.stats().counter_value("net.flits"),
          w.residual(m), w.solution(m) == w.reference()};
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 16;
  const std::uint32_t iters = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 12;

  core::MachineConfig ru;
  ru.n_nodes = n;
  ru.data_protocol = core::DataProtocol::kReadUpdate;
  ru.consistency = core::Consistency::kBuffered;
  ru.lock_impl = core::LockImpl::kCbl;
  ru.barrier_impl = core::BarrierImpl::kCbl;

  core::MachineConfig wbi;
  wbi.n_nodes = n;

  std::printf("Jacobi solver, %u unknowns/processors, %u iterations\n\n", n, iters);
  std::printf("%-24s%14s%12s%12s%12s %s\n", "scheme", "cycles", "messages", "flits",
              "residual", "bit-exact");
  struct Case {
    const char* name;
    const core::MachineConfig& cfg;
    bool separate;
  } cases[] = {
      {"read-update (paper)", ru, false},
      {"WBI inv-I (colocated)", wbi, false},
      {"WBI inv-II (separate)", wbi, true},
  };
  for (const auto& c : cases) {
    const auto o = run(c.cfg, c.separate, iters);
    std::printf("%-24s%14llu%12llu%12llu%12.2e %s\n", c.name,
                static_cast<unsigned long long>(o.completion),
                static_cast<unsigned long long>(o.messages),
                static_cast<unsigned long long>(o.flits), o.residual,
                o.exact ? "yes" : "NO");
  }
  std::printf("\nAll three schemes compute bit-identical answers; they differ only in\n"
              "how much of the machine they burn doing it (paper Table 2).\n");
  return 0;
}
