// Quickstart: build the paper's machine, run a tiny parallel program that
// uses the Table-1 primitives, and print what happened.
//
//   $ ./quickstart
//
// The program: four processors increment a shared counter under a CBL
// write-lock (the counter rides the lock block, so critical-section
// accesses are local), publish per-processor results with WRITE-GLOBAL
// under buffered consistency, flush before the hardware barrier (CP-Synch
// discipline), and one processor reads everyone's result via READ-UPDATE.
#include <cstdio>

#include "core/machine.hpp"
#include "core/sync/barrier.hpp"
#include "core/sync/mutex.hpp"

using namespace bcsim;

namespace {

struct Program {
  sync::Mutex& mutex;
  sync::Barrier& barrier;
  Addr counter;
  Addr results;
  std::uint32_t n;

  sim::Task operator()(core::Processor& p) const {
    // Phase 1: contended critical sections.
    for (int k = 0; k < 5; ++k) {
      co_await mutex.acquire(p);
      const Word v = co_await p.read(counter);  // local: data rode the grant
      co_await p.compute(3);
      co_await p.write(counter, v + 1);
      co_await mutex.release(p);  // flushes, then releases (CP-Synch)
      co_await p.compute(10);
    }
    // Phase 2: publish a per-processor value; the write buffer absorbs it
    // (buffered consistency) and the barrier's flush makes it global.
    co_await p.write_global(results + p.id(), 100 + p.id());
    co_await barrier.wait(p);
    // Phase 3: processor 0 reads everyone's result, subscribing to updates.
    if (p.id() == 0) {
      Word sum = 0;
      for (std::uint32_t i = 0; i < n; ++i) {
        sum += co_await p.read_update(results + i);
      }
      std::printf("sum of published results: %llu (expected %u)\n",
                  static_cast<unsigned long long>(sum), 100 * n + n * (n - 1) / 2);
    }
  }
};

}  // namespace

int main() {
  // The paper's machine: read-update coherence, CBL locks, buffered
  // consistency, Omega network. Table 4 defaults for everything else.
  core::MachineConfig cfg;
  cfg.n_nodes = 4;
  cfg.data_protocol = core::DataProtocol::kReadUpdate;
  cfg.consistency = core::Consistency::kBuffered;
  cfg.lock_impl = core::LockImpl::kCbl;
  cfg.barrier_impl = core::BarrierImpl::kCbl;
  core::Machine m(cfg);

  auto alloc = m.make_allocator();
  sync::CblMutex mutex(alloc);
  sync::CblBarrier barrier(alloc, cfg.n_nodes);
  const Addr counter = mutex.lock_addr() + 1;  // rides the lock block
  const Addr results = alloc.alloc_words(cfg.n_nodes);

  Program prog{mutex, barrier, counter, results, cfg.n_nodes};
  for (NodeId i = 0; i < cfg.n_nodes; ++i) m.spawn(prog(m.processor(i)));

  const Tick t = m.run();
  std::printf("completed in %llu cycles\n", static_cast<unsigned long long>(t));
  std::printf("final counter: %llu (expected 20)\n",
              static_cast<unsigned long long>(m.peek_memory(counter)));
  std::printf("network messages: %llu, lock grants: %llu, RU updates: %llu\n",
              static_cast<unsigned long long>(m.stats().counter_value("net.messages")),
              static_cast<unsigned long long>(m.stats().counter_value("cache.lock_granted")),
              static_cast<unsigned long long>(
                  m.stats().counter_value("cache.ru_updates_received")));
  return 0;
}
