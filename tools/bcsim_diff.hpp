// `bcsim diff` — the differential-oracle driver (docs/TESTING.md,
// "Differential testing").
//
// Sweeps a (program_seed x schedule_seed) grid: each program seed yields a
// randomized data-race-free program (ref/drf_program.hpp), executed once on
// the golden sequentially-consistent reference machine and once per flavor
// x schedule seed on the full simulator. Any departure — an observed read
// returning a non-SC value, a final-memory or semaphore-count mismatch, a
// stuck machine — is a first-divergence report naming node, op, variable,
// address, block, and tick. The failing case is then replayed with event
// tracing on, and its seeds are appended to the regression corpus so the
// test suite replays it forever after.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ref/diff.hpp"

namespace bcsim::tool {

struct DiffOptions {
  std::vector<ref::Flavor> flavors;  ///< empty = all three
  std::uint64_t programs = 8;        ///< program seeds swept
  std::uint64_t schedules = 4;       ///< schedule seeds per program
  std::uint64_t first_program = 0;
  std::uint64_t first_schedule = 0;
  std::uint32_t nodes = 8;
  std::uint32_t phases = 3;
  /// Network for the machine runs: "" = the flavor default (omega).
  /// The mesh's distance-dependent paths widen reorder windows, which is
  /// what makes the injected flush-gate faults observable.
  std::string network;
  /// Corpus file to append divergent seeds to (empty = don't record).
  std::string corpus;
  /// Deliberate write-buffer fault (core::WbFault) injected into every
  /// machine run: "" | "eager-flush" | "empty-gate". Exists to prove the
  /// oracle catches consistency bugs (docs/TESTING.md).
  std::string inject_fault;
  Tick budget = 100'000'000;
};

/// Runs the sweep. Returns a process exit code: 0 when every cell of the
/// grid matched the reference, 1 on the first divergence (after printing
/// the report and replaying with tracing), 2 on bad options.
int run_diff(const DiffOptions& o);

}  // namespace bcsim::tool
