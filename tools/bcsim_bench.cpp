#include "bcsim_bench.hpp"

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/machine.hpp"
#include "net/network.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "workload/work_queue_model.hpp"

namespace bcsim::tool {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ns(Clock::time_point t0) {
  return std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
}

/// Calls `body()` (one batch of `items` operations) until `min_ms` of wall
/// time accumulates, `reps` times over; returns the best (lowest) ns/op.
/// Best-of-reps filters scheduler noise the way google-benchmark's
/// repetitions do, without the dependency on the CLI path.
template <typename F>
double measure_ns_per_op(F&& body, double items, double min_ms, int reps) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    // Warm caches/pools before the timed window.
    body();
    std::uint64_t batches = 0;
    const auto t0 = Clock::now();
    double ns = 0;
    do {
      body();
      ++batches;
      ns = elapsed_ns(t0);
    } while (ns < min_ms * 1e6);
    const double per_op = ns / (static_cast<double>(batches) * items);
    if (r == 0 || per_op < best) best = per_op;
  }
  return best;
}

struct Metric {
  std::string name;
  double value;
  std::string unit;
  bool higher_is_better;
  bool exact;  ///< machine-independent: must match the baseline bit-for-bit
};

struct E2eResult {
  Tick completion = 0;
  std::uint64_t messages = 0;
  std::uint64_t events = 0;
  std::uint64_t digest = 0;
  double wall_ms = 0;
};

core::MachineConfig flavor_config(const std::string& flavor, std::uint32_t nodes) {
  core::MachineConfig cfg;
  cfg.n_nodes = nodes;
  cfg.network = core::NetworkKind::kOmega;
  if (flavor == "wbi") {
    cfg.data_protocol = core::DataProtocol::kWbi;
    cfg.lock_impl = core::LockImpl::kTts;
    cfg.barrier_impl = core::BarrierImpl::kCentral;
  } else if (flavor == "cbl") {
    cfg.data_protocol = core::DataProtocol::kWbi;
    cfg.lock_impl = core::LockImpl::kCbl;
    cfg.barrier_impl = core::BarrierImpl::kCbl;
  } else {  // paper
    cfg.data_protocol = core::DataProtocol::kReadUpdate;
    cfg.consistency = core::Consistency::kBuffered;
    cfg.lock_impl = core::LockImpl::kCbl;
    cfg.barrier_impl = core::BarrierImpl::kCbl;
  }
  cfg.validate();
  return cfg;
}

E2eResult run_e2e(const std::string& flavor, bool smoke) {
  const auto cfg = flavor_config(flavor, smoke ? 8u : 16u);
  workload::WorkQueueConfig wq;
  wq.total_tasks = smoke ? 64 : 256;
  wq.grain = smoke ? 20 : 100;
  core::Machine m(cfg);
  workload::WorkQueueWorkload w(m, wq);
  w.spawn_all(m);
  E2eResult r;
  const auto t0 = Clock::now();
  r.completion = m.run(4'000'000'000ULL);
  r.wall_ms = elapsed_ns(t0) / 1e6;
  r.messages = m.stats().counter_value("net.messages");
  r.events = m.simulator().events_processed();
  r.digest = m.stats_digest();
  return r;
}

/// Work-queue run for the sharded-kernel comparison: the paper machine at
/// bench scale (wider than the flavor e2e runs — shard parallelism needs
/// nodes to split). Same workload, same seed; only `n_shards` varies, and
/// simulated results must not.
E2eResult run_shard_e2e(std::uint32_t nodes, std::uint32_t n_shards, bool smoke) {
  auto cfg = flavor_config("paper", nodes);
  cfg.n_nodes = nodes;
  cfg.n_shards = n_shards;
  workload::WorkQueueConfig wq;
  wq.total_tasks = smoke ? 128 : 1024;
  wq.grain = smoke ? 20 : 100;
  core::Machine m(cfg);
  workload::WorkQueueWorkload w(m, wq);
  w.spawn_all(m);
  E2eResult r;
  const auto t0 = Clock::now();
  r.completion = m.run(4'000'000'000ULL);
  r.wall_ms = elapsed_ns(t0) / 1e6;
  r.messages = m.stats().counter_value("net.messages");
  r.events = m.simulator().events_processed();
  r.digest = m.stats_digest();
  return r;
}

long max_rss_kb() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return ru.ru_maxrss;  // kilobytes on Linux
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

// --- microbenchmark bodies -------------------------------------------------

double micro_event_queue_push_pop(double min_ms, int reps) {
  sim::EventQueue q;
  sim::Rng rng(1);
  std::uint64_t sink = 0;
  return measure_ns_per_op(
      [&] {
        for (int i = 0; i < 64; ++i) q.push(rng.next_below(1000), [] {});
        while (!q.empty()) sink += q.pop().first;
      },
      64, min_ms, reps);
}

double micro_event_queue_same_tick(double min_ms, int reps) {
  sim::EventQueue q;
  std::uint64_t sink = 0;
  return measure_ns_per_op(
      [&] {
        for (int i = 0; i < 256; ++i) q.push(7, [] {});
        while (!q.empty()) sink += q.pop().first;
      },
      256, min_ms, reps);
}

double micro_sim_dispatch(double min_ms, int reps) {
  return measure_ns_per_op(
      [&] {
        sim::Simulator s;
        // Four interleaved self-rescheduling chains: the steady-state shape
        // of the main loop (pop, advance clock, fire, push).
        constexpr int kSteps = 4096;
        int remaining = 4 * kSteps;
        struct Chain {
          sim::Simulator& s;
          int& remaining;
          void operator()() const {
            if (--remaining > 0) s.schedule(1, *this);
          }
        };
        for (int c = 0; c < 4; ++c) s.schedule(1, Chain{s, remaining});
        s.run();
      },
      4 * 4096, min_ms, reps);
}

double micro_omega_send(double min_ms, int reps) {
  sim::Simulator simulator;
  sim::StatsRegistry stats;
  net::OmegaNetwork network(simulator, stats, 64, 1);
  std::uint64_t delivered = 0;
  for (NodeId d = 0; d < 64; ++d) {
    network.attach(d, net::Unit::kMemory, [&delivered](const net::Message&) { ++delivered; });
    network.attach(d, net::Unit::kCache, [&delivered](const net::Message&) { ++delivered; });
  }
  sim::Rng rng(9);
  return measure_ns_per_op(
      [&] {
        for (int i = 0; i < 64; ++i) {
          net::Message m;
          m.src = static_cast<NodeId>(rng.next_below(64));
          m.dst = static_cast<NodeId>(rng.next_below(64));
          m.unit = net::Unit::kMemory;
          network.send(std::move(m));
        }
        simulator.run();
      },
      64, min_ms, reps);
}

// --- JSON ------------------------------------------------------------------

void write_json(std::FILE* f, const BenchOptions& o, const std::vector<Metric>& metrics,
                const std::vector<std::pair<std::string, std::string>>& digests) {
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": 1,\n");
  std::fprintf(f, "  \"bench\": \"bcsim\",\n");
  std::fprintf(f, "  \"revision\": \"%s\",\n", o.revision.c_str());
  std::fprintf(f, "  \"smoke\": %s,\n", o.smoke ? "true" : "false");
  std::fprintf(f, "  \"rss_max_kb\": %ld,\n", max_rss_kb());
  std::fprintf(f, "  \"metrics\": {\n");
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const Metric& m = metrics[i];
    std::fprintf(f,
                 "    \"%s\": {\"value\": %.17g, \"unit\": \"%s\", "
                 "\"direction\": \"%s\", \"exact\": %s}%s\n",
                 m.name.c_str(), m.value, m.unit.c_str(),
                 m.higher_is_better ? "more" : "less", m.exact ? "true" : "false",
                 i + 1 < metrics.size() ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"digests\": {\n");
  for (std::size_t i = 0; i < digests.size(); ++i) {
    std::fprintf(f, "    \"%s\": \"%s\"%s\n", digests[i].first.c_str(),
                 digests[i].second.c_str(), i + 1 < digests.size() ? "," : "");
  }
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
}

}  // namespace

int run_bench(const BenchOptions& o) {
  const double min_ms = o.smoke ? 40.0 : 200.0;
  const int reps = o.smoke ? 2 : 3;
  std::vector<Metric> metrics;
  std::vector<std::pair<std::string, std::string>> digests;

  std::printf("bcsim bench (%s, rev %s)\n", o.smoke ? "smoke" : "full", o.revision.c_str());

  const auto micro = [&](const char* name, double ns) {
    metrics.push_back({std::string("micro.") + name + ".ns_per_op", ns, "ns/op", false, false});
    std::printf("  micro  %-28s %10.1f ns/op\n", name, ns);
  };
  micro("event_queue.push_pop", micro_event_queue_push_pop(min_ms, reps));
  micro("event_queue.same_tick", micro_event_queue_same_tick(min_ms, reps));
  micro("sim.dispatch", micro_sim_dispatch(min_ms, reps));
  micro("net.omega_send", micro_omega_send(min_ms, reps));

  for (const char* flavor : {"wbi", "cbl", "paper"}) {
    // Two runs: the faster wall time scores perf, and the pair must agree
    // on every simulated quantity or the harness itself flags the build.
    E2eResult a = run_e2e(flavor, o.smoke);
    const E2eResult b = run_e2e(flavor, o.smoke);
    if (a.digest != b.digest || a.completion != b.completion || a.messages != b.messages) {
      std::fprintf(stderr,
                   "bcsim bench: e2e.%s is nondeterministic "
                   "(digests %s vs %s) — refusing to write results\n",
                   flavor, hex64(a.digest).c_str(), hex64(b.digest).c_str());
      return 1;
    }
    a.wall_ms = std::min(a.wall_ms, b.wall_ms);
    const std::string p = std::string("e2e.") + flavor;
    const double secs = a.wall_ms / 1e3;
    metrics.push_back({p + ".wall_ms", a.wall_ms, "ms", false, false});
    metrics.push_back({p + ".sim_ticks_per_sec",
                       static_cast<double>(a.completion) / secs, "ticks/s", true, false});
    metrics.push_back({p + ".events_per_sec",
                       static_cast<double>(a.events) / secs, "events/s", true, false});
    metrics.push_back({p + ".messages_per_sec",
                       static_cast<double>(a.messages) / secs, "msgs/s", true, false});
    metrics.push_back({p + ".completion_ticks",
                       static_cast<double>(a.completion), "ticks", false, true});
    metrics.push_back({p + ".messages", static_cast<double>(a.messages), "msgs", false, true});
    digests.emplace_back(p, hex64(a.digest));
    std::printf("  e2e    %-6s %8.1f ms  %12.0f ticks/s  %10.0f msgs/s  digest %s\n", flavor,
                a.wall_ms, static_cast<double>(a.completion) / secs,
                static_cast<double>(a.messages) / secs, hex64(a.digest).c_str());
  }

  {
    // Sharded kernel vs the serial reference on one wider work-queue run.
    // The digest gate is the point: `--shards 4` must be bit-identical to
    // serial, so between baselines only the wall-clock numbers may move.
    // (Speedup is host-dependent — a single-core runner reports ~1.0x or
    // the window overhead; see docs/BENCHMARKS.md "Sharded kernel".)
    const std::uint32_t wq_nodes = o.smoke ? 64u : 256u;
    const auto best_of_two = [&](std::uint32_t shards, bool& ok) {
      E2eResult a = run_shard_e2e(wq_nodes, shards, o.smoke);
      const E2eResult b = run_shard_e2e(wq_nodes, shards, o.smoke);
      ok = a.digest == b.digest && a.completion == b.completion && a.messages == b.messages;
      a.wall_ms = std::min(a.wall_ms, b.wall_ms);
      return a;
    };
    bool ok1 = false;
    bool ok4 = false;
    const E2eResult s1 = best_of_two(1, ok1);
    const E2eResult s4 = best_of_two(4, ok4);
    if (!ok1 || !ok4) {
      std::fprintf(stderr,
                   "bcsim bench: e2e.shard is nondeterministic — refusing to write results\n");
      return 1;
    }
    if (s1.digest != s4.digest || s1.completion != s4.completion ||
        s1.messages != s4.messages) {
      std::fprintf(stderr,
                   "bcsim bench: sharded kernel diverged from serial "
                   "(digests %s vs %s, completion %llu vs %llu) — refusing to write results\n",
                   hex64(s1.digest).c_str(), hex64(s4.digest).c_str(),
                   static_cast<unsigned long long>(s1.completion),
                   static_cast<unsigned long long>(s4.completion));
      return 1;
    }
    const double ticks = static_cast<double>(s1.completion);
    metrics.push_back({"e2e.shard.s1.wall_ms", s1.wall_ms, "ms", false, false});
    metrics.push_back({"e2e.shard.s1.sim_ticks_per_sec", ticks / (s1.wall_ms / 1e3),
                       "ticks/s", true, false});
    metrics.push_back({"e2e.shard.s4.wall_ms", s4.wall_ms, "ms", false, false});
    metrics.push_back({"e2e.shard.s4.sim_ticks_per_sec", ticks / (s4.wall_ms / 1e3),
                       "ticks/s", true, false});
    metrics.push_back({"e2e.shard.speedup_x", s1.wall_ms / s4.wall_ms, "x", true, false});
    metrics.push_back({"e2e.shard.completion_ticks", ticks, "ticks", false, true});
    metrics.push_back({"e2e.shard.messages", static_cast<double>(s1.messages), "msgs", false,
                       true});
    digests.emplace_back("e2e.shard", hex64(s4.digest));
    std::printf("  e2e    shard  n=%u  s1 %8.1f ms  s4 %8.1f ms  speedup %.2fx  digest %s\n",
                wq_nodes, s1.wall_ms, s4.wall_ms, s1.wall_ms / s4.wall_ms,
                hex64(s4.digest).c_str());
  }

  const std::string out = o.out.empty() ? "BENCH_" + o.revision + ".json" : o.out;
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bcsim bench: cannot write %s\n", out.c_str());
    return 1;
  }
  write_json(f, o, metrics, digests);
  std::fclose(f);
  std::printf("bench results -> %s\n", out.c_str());
  return 0;
}

}  // namespace bcsim::tool
