// `bcsim model` — the model-conformance driver (docs/TESTING.md,
// "Model conformance").
//
// For every litmus test in the battery (src/model/battery.hpp) it first
// enumerates the axiomatically allowed outcome set, then sweeps the real
// machine over (flavor x network x schedule seed) and checks:
//
//   * soundness — every observed outcome is in the allowed set. A
//     violation reports the test, flavor, network, seed and the first
//     divergent read, prints a one-cell replay command, and replays with
//     event tracing on (the diff-driver reporting recipe);
//   * statistical completeness — per-outcome hit counts across the sweep,
//     with never-observed outcomes flagged (an unhit outcome is expected
//     for the SC flavors on weak tests; --require-complete turns unhit
//     outcomes into a failure for tuned sweeps).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ref/diff.hpp"

namespace bcsim::tool {

struct ModelOptions {
  std::vector<std::string> tests;    ///< empty = whole battery
  std::vector<ref::Flavor> flavors;  ///< empty = all three
  /// Networks to sweep: empty = {omega, mesh} (the mesh's
  /// distance-dependent paths widen the reorder windows).
  std::vector<std::string> networks;
  std::uint64_t seeds = 16;  ///< schedule seeds per (test x flavor x network)
  std::uint64_t first_seed = 0;
  std::uint32_t nodes = 16;
  /// Deliberate write-buffer fault injected into every machine run:
  /// "" | "eager-flush" | "empty-gate". Proves the checker catches a
  /// fence omission — eager-flush removes the CP-Synch gate, so fenced
  /// litmus tests show forbidden outcomes.
  std::string inject_fault;
  bool print_allowed = false;    ///< print the golden tables and exit
  bool require_complete = false; ///< unhit allowed outcomes fail the run
  Tick budget = 100'000'000;
};

/// Runs the sweep. Exit code: 0 on success, 1 on a soundness violation
/// (or unmet --require-complete), 2 on bad options.
int run_model(const ModelOptions& o);

}  // namespace bcsim::tool
