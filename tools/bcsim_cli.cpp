// bcsim — command-line experiment driver.
//
// One binary to configure the machine, pick a workload, run it, and dump
// results (human-readable report and/or CSV for plotting):
//
//   bcsim --nodes 32 --machine paper --workload work-queue --tasks 256
//         --grain 100 --report
//   bcsim --nodes 16 --machine wbi --lock tts --workload solver --csv out.csv
//
// Flags (defaults in brackets):
//   --nodes N            processors [16]
//   --shards N           host-parallel simulation shards; 1 = serial
//                        reference kernel [$BCSIM_SHARDS or 1]
//   --machine M          paper | wbi | cbl-on-wbi [paper]
//   --consistency C      sc | bc (paper machine only) [bc]
//   --lock L             cbl | tts | tts-backoff | ticket | mcs [per machine]
//   --barrier B          cbl | central | tree [per machine]
//   --network NET        omega | crossbar | mesh | ideal [omega]
//   --block-words W      cache line size in words [4]
//   --workload W         work-queue | sync-model | solver | stencil | grid | fft [work-queue]
//   --tasks N            work-queue task budget [256]
//   --grain G            references per task [100]
//   --iters K            solver iterations / stencil sweeps [8]
//   --seed S             RNG seed [1]
//   --schedule-seed S    same-tick event tie-break (0 = FIFO order) [0]
//   --check-invariants L off | quiesce | full (docs/TESTING.md) [off]
//   --csv PATH           write all statistics as CSV
//   --report             print the full statistics report
//
// Subcommands:
//   bcsim check [--seeds N] [--first-seed S] [--nodes N]
//
// Sweeps N schedule seeds (starting at S) across a battery of litmus/fuzz
// programs on both machines with full invariant checking and per-seed
// determinism verification, and prints the smallest failing seed with a
// replay line (then replays it with event tracing on, so the interleaving
// that broke is printed alongside the diagnostic). Exit status 1 on any
// failure. See docs/TESTING.md.
//
//   bcsim trace [run flags] [--trace-out PATH] [--trace-csv PATH]
//               [--trace-capacity N]
//
// Runs the chosen workload with the event-trace recorder on and writes the
// retained records as Chrome trace-event JSON (open in chrome://tracing or
// Perfetto) [trace.json], plus an optional flat CSV. See
// docs/OBSERVABILITY.md.
//
//   bcsim bench [--smoke] [--out PATH] [--rev LABEL]
//
// Runs the perf-regression harness: substrate microbenchmarks plus one
// end-to-end run per machine flavor, written as BENCH_<rev>.json for
// scripts/bench_compare.py. See docs/BENCHMARKS.md.
//
//   bcsim diff [--flavors wbi,ru,cbl] [--programs N] [--schedules M]
//              [--first-program S] [--first-schedule S] [--nodes N]
//              [--phases P] [--corpus PATH] [--inject-fault F] [--budget T]
//
// The differential oracle: sweeps randomized data-race-free programs over
// a (program_seed x schedule_seed) grid, comparing each machine flavor
// against the golden sequentially-consistent reference interpreter. The
// first divergence is reported with node/op/var/addr/block/tick, replayed
// with event tracing, and appended to --corpus. --inject-fault
// {eager-flush, empty-gate} deliberately breaks the write-buffer flush
// gate to prove the oracle catches it. Exit 1 on divergence. See
// docs/TESTING.md, "Differential testing".
//
//   bcsim model [--tests a,b,...] [--flavors wbi,ru,cbl]
//               [--networks omega,mesh] [--seeds N] [--first-seed S]
//               [--nodes N] [--inject-fault F] [--print-allowed]
//               [--require-complete] [--budget T]
//
// The model-conformance harness: enumerates each litmus test's
// axiomatically allowed outcome set (src/model/) and sweeps the machine
// over (flavor x network x schedule seed), asserting every observed
// outcome is allowed and reporting per-outcome hit counts.
// --print-allowed dumps the golden allowed-set tables and exits. Exit 1
// on a soundness violation. See docs/TESTING.md, "Model conformance".
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>

#include "bcsim_bench.hpp"
#include "bcsim_diff.hpp"
#include "bcsim_model.hpp"
#include "core/machine.hpp"
#include "workload/fft_phases.hpp"
#include "workload/grid_stencil.hpp"
#include "workload/linear_solver.hpp"
#include "workload/stencil.hpp"
#include "workload/sync_model.hpp"
#include "workload/work_queue_model.hpp"

using namespace bcsim;

namespace {

struct Options {
  std::uint32_t nodes = 16;
  std::uint32_t shards = core::default_n_shards();
  std::string machine = "paper";
  std::string consistency = "bc";
  std::string lock;
  std::string barrier;
  std::string network = "omega";
  std::uint32_t block_words = 4;
  std::string workload = "work-queue";
  std::uint32_t tasks = 256;
  std::uint32_t grain = 100;
  std::uint32_t iters = 8;
  std::uint64_t seed = 1;
  std::uint64_t schedule_seed = 0;
  std::string invariants = "off";
  std::string csv;
  bool report = false;
  // `check` subcommand
  bool check = false;
  std::uint64_t seeds = 64;
  std::uint64_t first_seed = 0;
  // `trace` subcommand
  bool trace = false;
  std::string trace_out = "trace.json";
  std::string trace_csv;
  std::size_t trace_capacity = std::size_t{1} << 16;
};

[[noreturn]] void usage_error(const std::string& msg) {
  std::fprintf(stderr, "bcsim: %s\n(see the header of tools/bcsim_cli.cpp for flags)\n",
               msg.c_str());
  std::exit(2);
}

/// Strict decimal parse for flag values: rejects empty strings, signs,
/// non-digits, trailing garbage ("4x"), and out-of-range values with a
/// usage error (exit 2) instead of letting std::stoul throw an uncaught
/// std::invalid_argument out of main.
std::uint64_t parse_u64_flag(const std::string& flag, const std::string& s) {
  const bool looks_numeric = !s.empty() && std::isdigit(static_cast<unsigned char>(s[0])) != 0;
  if (looks_numeric) {
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (*end == '\0' && errno != ERANGE) return v;
  }
  usage_error(flag + " expects a non-negative integer, got '" + s + "'");
}

std::uint32_t parse_u32_flag(const std::string& flag, const std::string& s) {
  const std::uint64_t v = parse_u64_flag(flag, s);
  if (v > std::numeric_limits<std::uint32_t>::max()) {
    usage_error(flag + " value " + s + " is out of range");
  }
  return static_cast<std::uint32_t>(v);
}

Options parse_args(int argc, char** argv) {
  Options o;
  auto need = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage_error(std::string("missing value for ") + argv[i]);
    return argv[++i];
  };
  int first = 1;
  if (argc > 1 && std::strcmp(argv[1], "check") == 0) {
    o.check = true;
    first = 2;
  } else if (argc > 1 && std::strcmp(argv[1], "trace") == 0) {
    o.trace = true;
    first = 2;
  }
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--nodes") o.nodes = parse_u32_flag(a, need(i));
    else if (a == "--shards") {
      o.shards = parse_u32_flag(a, need(i));
      if (o.shards == 0) usage_error("--shards must be >= 1");
    }
    else if (a == "--machine") o.machine = need(i);
    else if (a == "--consistency") o.consistency = need(i);
    else if (a == "--lock") o.lock = need(i);
    else if (a == "--barrier") o.barrier = need(i);
    else if (a == "--network") o.network = need(i);
    else if (a == "--block-words") o.block_words = parse_u32_flag(a, need(i));
    else if (a == "--workload") o.workload = need(i);
    else if (a == "--tasks") o.tasks = parse_u32_flag(a, need(i));
    else if (a == "--grain") o.grain = parse_u32_flag(a, need(i));
    else if (a == "--iters") o.iters = parse_u32_flag(a, need(i));
    else if (a == "--seed") o.seed = parse_u64_flag(a, need(i));
    else if (a == "--schedule-seed") o.schedule_seed = parse_u64_flag(a, need(i));
    else if (a == "--check-invariants") o.invariants = need(i);
    else if (a == "--seeds") o.seeds = parse_u64_flag(a, need(i));
    else if (a == "--first-seed") o.first_seed = parse_u64_flag(a, need(i));
    else if (a == "--csv") o.csv = need(i);
    else if (a == "--report") o.report = true;
    else if (a == "--trace-out") o.trace_out = need(i);
    else if (a == "--trace-csv") o.trace_csv = need(i);
    else if (a == "--trace-capacity") o.trace_capacity = parse_u64_flag(a, need(i));
    else usage_error("unknown flag '" + a + "'");
  }
  return o;
}

tool::BenchOptions parse_bench_args(int argc, char** argv) {
  tool::BenchOptions o;
  if (const char* rev = std::getenv("BCSIM_REV")) o.revision = rev;
  auto need = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage_error(std::string("missing value for ") + argv[i]);
    return argv[++i];
  };
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--smoke") o.smoke = true;
    else if (a == "--out") o.out = need(i);
    else if (a == "--rev") o.revision = need(i);
    else usage_error("unknown bench flag '" + a + "'");
  }
  return o;
}

tool::DiffOptions parse_diff_args(int argc, char** argv) {
  tool::DiffOptions o;
  auto need = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage_error(std::string("missing value for ") + argv[i]);
    return argv[++i];
  };
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--flavors") {
      std::string list = need(i);
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string name =
            list.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
        const auto f = ref::parse_flavor(name);
        if (!f) usage_error("unknown flavor '" + name + "' (wbi, ru, cbl)");
        o.flavors.push_back(*f);
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (a == "--programs") o.programs = parse_u64_flag(a, need(i));
    else if (a == "--schedules") o.schedules = parse_u64_flag(a, need(i));
    else if (a == "--first-program") o.first_program = parse_u64_flag(a, need(i));
    else if (a == "--first-schedule") o.first_schedule = parse_u64_flag(a, need(i));
    else if (a == "--nodes") o.nodes = parse_u32_flag(a, need(i));
    else if (a == "--phases") o.phases = parse_u32_flag(a, need(i));
    else if (a == "--network") o.network = need(i);
    else if (a == "--corpus") o.corpus = need(i);
    else if (a == "--inject-fault") o.inject_fault = need(i);
    else if (a == "--budget") o.budget = parse_u64_flag(a, need(i));
    else usage_error("unknown diff flag '" + a + "'");
  }
  return o;
}

tool::ModelOptions parse_model_args(int argc, char** argv) {
  tool::ModelOptions o;
  auto need = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage_error(std::string("missing value for ") + argv[i]);
    return argv[++i];
  };
  auto split = [](const std::string& list, auto&& each) {
    std::size_t pos = 0;
    while (pos <= list.size()) {
      const std::size_t comma = list.find(',', pos);
      each(list.substr(pos, comma == std::string::npos ? std::string::npos
                                                       : comma - pos));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  };
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--tests") {
      split(need(i), [&](const std::string& name) { o.tests.push_back(name); });
    } else if (a == "--flavors") {
      split(need(i), [&](const std::string& name) {
        const auto f = ref::parse_flavor(name);
        if (!f) usage_error("unknown flavor '" + name + "' (wbi, ru, cbl)");
        o.flavors.push_back(*f);
      });
    } else if (a == "--networks") {
      split(need(i), [&](const std::string& name) { o.networks.push_back(name); });
    } else if (a == "--seeds") o.seeds = parse_u64_flag(a, need(i));
    else if (a == "--first-seed") o.first_seed = parse_u64_flag(a, need(i));
    else if (a == "--nodes") o.nodes = parse_u32_flag(a, need(i));
    else if (a == "--inject-fault") o.inject_fault = need(i);
    else if (a == "--print-allowed") o.print_allowed = true;
    else if (a == "--require-complete") o.require_complete = true;
    else if (a == "--budget") o.budget = parse_u64_flag(a, need(i));
    else usage_error("unknown model flag '" + a + "'");
  }
  return o;
}

core::LockImpl parse_lock(const std::string& s) {
  if (s == "cbl") return core::LockImpl::kCbl;
  if (s == "tts") return core::LockImpl::kTts;
  if (s == "tts-backoff") return core::LockImpl::kTtsBackoff;
  if (s == "ticket") return core::LockImpl::kTicket;
  if (s == "mcs") return core::LockImpl::kMcs;
  usage_error("unknown lock '" + s + "'");
}

core::BarrierImpl parse_barrier(const std::string& s) {
  if (s == "cbl") return core::BarrierImpl::kCbl;
  if (s == "central") return core::BarrierImpl::kCentral;
  if (s == "tree") return core::BarrierImpl::kTree;
  usage_error("unknown barrier '" + s + "'");
}

sim::InvariantLevel parse_invariants(const std::string& s) {
  if (s == "off") return sim::InvariantLevel::kOff;
  if (s == "quiesce") return sim::InvariantLevel::kQuiesce;
  if (s == "full") return sim::InvariantLevel::kFull;
  usage_error("unknown invariant level '" + s + "'");
}

core::NetworkKind parse_network(const std::string& s) {
  if (s == "omega") return core::NetworkKind::kOmega;
  if (s == "crossbar") return core::NetworkKind::kCrossbar;
  if (s == "mesh") return core::NetworkKind::kMesh;
  if (s == "ideal") return core::NetworkKind::kIdeal;
  usage_error("unknown network '" + s + "'");
}

core::MachineConfig build_config(const Options& o) {
  core::MachineConfig cfg;
  cfg.n_nodes = o.nodes;
  cfg.n_shards = o.shards;
  cfg.block_words = o.block_words;
  cfg.network = parse_network(o.network);
  cfg.seed = o.seed;
  cfg.schedule_seed = o.schedule_seed;
  cfg.invariants = parse_invariants(o.invariants);
  cfg.trace = o.trace;
  cfg.trace_capacity = o.trace_capacity;
  if (o.machine == "paper") {
    cfg.data_protocol = core::DataProtocol::kReadUpdate;
    cfg.consistency = o.consistency == "sc" ? core::Consistency::kSequential
                                            : core::Consistency::kBuffered;
    cfg.lock_impl = core::LockImpl::kCbl;
    cfg.barrier_impl = core::BarrierImpl::kCbl;
  } else if (o.machine == "wbi") {
    cfg.data_protocol = core::DataProtocol::kWbi;
    cfg.lock_impl = core::LockImpl::kTts;
    cfg.barrier_impl = core::BarrierImpl::kCentral;
  } else if (o.machine == "cbl-on-wbi") {
    cfg.data_protocol = core::DataProtocol::kWbi;
    cfg.lock_impl = core::LockImpl::kCbl;
    cfg.barrier_impl = core::BarrierImpl::kCbl;
  } else {
    usage_error("unknown machine '" + o.machine + "'");
  }
  if (!o.lock.empty()) cfg.lock_impl = parse_lock(o.lock);
  if (!o.barrier.empty()) cfg.barrier_impl = parse_barrier(o.barrier);
  cfg.validate();
  return cfg;
}

// ---------------------------------------------------------------------------
// `check` subcommand: schedule-seed sweep with full invariant checking.
//
// Each program in the battery runs under every schedule seed on both
// machines with InvariantLevel::kFull (entry-local checks after every
// directory transition + a whole-machine sweep at the end), verifies its
// functional result, and runs twice to prove the seed is deterministic.
// The sweep is ascending, so the first failure is the smallest seed.
// ---------------------------------------------------------------------------

struct CaseResult {
  bool ok = true;
  std::string detail;
  Tick completion = 0;
  std::uint64_t messages = 0;
};

constexpr Tick kCheckBudget = 100'000'000;

/// Queued-lock counter: the classic mutual-exclusion workout (enqueue,
/// handoff, drain, and re-lock races). The lock's own block carries the
/// counter, so the data rides the grant messages.
CaseResult case_lock_counter(const core::MachineConfig& cfg) {
  core::Machine m(cfg);
  const Addr lock = 16;
  constexpr int kIters = 6;
  struct Prog {
    Addr lock;
    sim::Task operator()(core::Processor& p) const {
      for (int k = 0; k < kIters; ++k) {
        co_await p.write_lock(lock);
        const Word v = co_await p.read(lock + 1);
        co_await p.write(lock + 1, v + 1);
        co_await p.unlock(lock);
      }
    }
  } prog{lock};
  for (NodeId i = 0; i < cfg.n_nodes; ++i) m.spawn_on(i, prog(m.processor(i)));
  CaseResult r;
  r.completion = m.run(kCheckBudget);
  r.messages = m.stats().counter_value("net.messages");
  const Word want = static_cast<Word>(cfg.n_nodes) * kIters;
  if (!m.all_done() || !m.quiescent()) {
    r.ok = false;
    r.detail = "programs stuck or protocol not quiescent";
  } else if (m.peek_memory(lock + 1) != want) {
    r.ok = false;
    r.detail = "lost increment: counter " + std::to_string(m.peek_memory(lock + 1)) +
               ", expected " + std::to_string(want);
  }
  return r;
}

/// Readers-writer lock: read-holder groups, mid-group reader drop-outs, and
/// writer promotion — the orchestrated (directory-decided) release paths the
/// write-lock counter never touches.
CaseResult case_rw_lock(const core::MachineConfig& cfg) {
  core::Machine m(cfg);
  const Addr lock = 16;
  constexpr int kIters = 4;
  struct Writer {
    Addr lock;
    sim::Task operator()(core::Processor& p) const {
      for (int k = 0; k < kIters; ++k) {
        co_await p.write_lock(lock);
        const Word v = co_await p.read(lock + 1);
        co_await p.compute(2);
        co_await p.write(lock + 1, v + 1);
        co_await p.unlock(lock);
      }
    }
  } writer{lock};
  struct Reader {
    Addr lock;
    bool& torn;
    sim::Task operator()(core::Processor& p) const {
      for (int k = 0; k < kIters; ++k) {
        co_await p.read_lock(lock);
        const Word a = co_await p.read(lock + 1);
        co_await p.compute(1 + (p.id() % 3));  // staggered: mid-group drop-outs
        const Word b = co_await p.read(lock + 1);
        if (a != b) torn = true;  // a writer slipped inside the read group
        co_await p.unlock(lock);
      }
    }
  };
  bool torn = false;
  Reader reader{lock, torn};
  m.spawn_on(0, writer(m.processor(0)));
  for (NodeId i = 1; i < cfg.n_nodes; ++i) m.spawn_on(i, reader(m.processor(i)));
  CaseResult r;
  r.completion = m.run(kCheckBudget);
  r.messages = m.stats().counter_value("net.messages");
  if (!m.all_done() || !m.quiescent()) {
    r.ok = false;
    r.detail = "programs stuck or protocol not quiescent";
  } else if (torn) {
    r.ok = false;
    r.detail = "write observed inside a read-holder critical section";
  } else if (m.peek_memory(lock + 1) != kIters) {
    r.ok = false;
    r.detail = "lost increment under readers: counter " +
               std::to_string(m.peek_memory(lock + 1)) + ", expected " +
               std::to_string(kIters);
  }
  return r;
}

/// Message passing under the CP-Synch discipline: data must never trail the
/// flag past a flush. Uses the machine's native operations (subscriptions
/// on read-update, coherent reads on WBI).
CaseResult case_message_passing(const core::MachineConfig& cfg) {
  core::Machine m(cfg);
  const bool ru = cfg.data_protocol == core::DataProtocol::kReadUpdate;
  const Addr data = 0;  // home 0
  const Addr flag = 4;  // block 1 -> home 1
  Word seen = 0;
  struct Writer {
    Addr data, flag;
    bool ru;
    sim::Task operator()(core::Processor& p) const {
      co_await p.compute(50);
      if (ru) {
        co_await p.write_global(data, 42);
        co_await p.flush_buffer();  // CP-Synch: data globally performed first
        co_await p.write_global(flag, 1);
        co_await p.flush_buffer();
      } else {
        co_await p.write(data, 42);  // SC write: performed before it returns
        co_await p.write(flag, 1);
      }
    }
  } writer{data, flag, ru};
  struct Reader {
    Addr data, flag;
    bool ru;
    Word& seen;
    sim::Task operator()(core::Processor& p) const {
      if (ru) {
        co_await p.read_update(flag);
        co_await p.read_update(data);
      }
      for (;;) {
        const Word f = ru ? co_await p.read_update(flag) : co_await p.read(flag);
        if (f == 1) break;
        co_await p.wait_word_change(flag, f);
      }
      seen = ru ? co_await p.read_update(data) : co_await p.read(data);
    }
  } reader{data, flag, ru, seen};
  m.spawn_on(0, writer(m.processor(0)));
  m.spawn_on(cfg.n_nodes - 1, reader(m.processor(cfg.n_nodes - 1)));
  // A couple of bystander subscribers/sharers lengthen the delivery chains.
  struct Bystander {
    Addr data;
    bool ru;
    sim::Task operator()(core::Processor& p) const {
      if (ru) {
        co_await p.read_update(data);
      } else {
        co_await p.read(data);
      }
    }
  } bystander{data, ru};
  for (NodeId i = 1; i + 1 < cfg.n_nodes && i <= 2; ++i) {
    m.spawn_on(i, bystander(m.processor(i)));
  }
  CaseResult r;
  r.completion = m.run(kCheckBudget);
  r.messages = m.stats().counter_value("net.messages");
  if (!m.all_done() || !m.quiescent()) {
    r.ok = false;
    r.detail = "programs stuck or protocol not quiescent";
  } else if (seen != 42) {
    r.ok = false;
    r.detail = "stale data (" + std::to_string(seen) + ") observed past the flag";
  }
  return r;
}

/// Hardware barrier separating two phases: every phase-1 write must be
/// visible to every phase-2 reader.
CaseResult case_barrier_phases(const core::MachineConfig& cfg) {
  core::Machine m(cfg);
  const Addr bar = 16;
  const Addr base = 64;
  const std::uint32_t n = cfg.n_nodes;
  std::vector<Word> sums(n, 0);
  struct Prog {
    Addr bar, base;
    std::uint32_t n;
    std::vector<Word>& sums;
    sim::Task operator()(core::Processor& p) const {
      co_await p.write_global(base + p.id(), p.id() + 1);
      co_await p.flush_buffer();  // barrier is CP-Synch
      co_await p.barrier_arrive(bar, n);
      Word s = 0;
      for (NodeId j = 0; j < n; ++j) s += co_await p.read_global(base + j);
      sums[p.id()] = s;
    }
  } prog{bar, base, n, sums};
  for (NodeId i = 0; i < n; ++i) m.spawn_on(i, prog(m.processor(i)));
  CaseResult r;
  r.completion = m.run(kCheckBudget);
  r.messages = m.stats().counter_value("net.messages");
  const Word want = static_cast<Word>(n) * (n + 1) / 2;
  if (!m.all_done() || !m.quiescent()) {
    r.ok = false;
    r.detail = "programs stuck or protocol not quiescent";
    return r;
  }
  for (NodeId i = 0; i < n; ++i) {
    if (sums[i] != want) {
      r.ok = false;
      r.detail = "node " + std::to_string(i) + " summed " + std::to_string(sums[i]) +
                 ", expected " + std::to_string(want) + " after the barrier";
      return r;
    }
  }
  return r;
}

/// Random well-formed program (hierarchical locks, global/local traffic,
/// subscriptions, flushes) — must terminate and quiesce under every
/// schedule with every invariant intact.
CaseResult case_fuzz(const core::MachineConfig& cfg) {
  core::Machine m(cfg);
  const bool ru = cfg.data_protocol == core::DataProtocol::kReadUpdate;
  struct Prog {
    std::vector<Addr> locks;
    int steps;
    bool ru;
    sim::Task operator()(core::Processor& p) const {
      auto& rng = p.rng();
      std::vector<std::size_t> held;
      for (int s = 0; s < steps; ++s) {
        const double dice = rng.next_double();
        if (dice < 0.25) {
          const std::size_t next = held.empty() ? rng.next_below(2) : held.back() + 1;
          if (next < locks.size() && held.size() < 2) {
            co_await p.write_lock(locks[next]);
            held.push_back(next);
          } else {
            co_await p.compute(3);
          }
        } else if (dice < 0.45) {
          if (!held.empty()) {
            const Addr a = locks[held.back()] + 1 + rng.next_below(2);
            const Word v = co_await p.read(a);
            co_await p.write(a, v + 1);
            co_await p.unlock(locks[held.back()]);
            held.pop_back();
          } else {
            co_await p.compute(2);
          }
        } else if (dice < 0.65) {
          const Addr a = 256 + rng.next_below(64);
          if (ru) {
            if (rng.chance(0.5)) {
              co_await p.write_global(a, rng.next_u64());
            } else {
              co_await p.read_update(a);
            }
          } else {
            if (rng.chance(0.5)) {
              co_await p.write(a, rng.next_u64());
            } else {
              co_await p.read(a);
            }
          }
        } else if (dice < 0.75) {
          if (ru && rng.chance(0.5)) {
            co_await p.reset_update(256 + rng.next_below(64));
          } else {
            co_await p.fetch_add(512 + rng.next_below(8), 1);
          }
        } else if (dice < 0.85) {
          co_await p.flush_buffer();
        } else {
          co_await p.compute(1 + rng.next_below(15));
        }
      }
      while (!held.empty()) {
        co_await p.unlock(locks[held.back()]);
        held.pop_back();
      }
      co_await p.flush_buffer();
    }
  } prog{{0, 16, 32}, 60, ru};
  for (NodeId i = 0; i < cfg.n_nodes; ++i) m.spawn_on(i, prog(m.processor(i)));
  CaseResult r;
  r.completion = m.run(kCheckBudget);
  r.messages = m.stats().counter_value("net.messages");
  if (!m.all_done() || !m.quiescent()) {
    r.ok = false;
    r.detail = "programs stuck or protocol not quiescent";
  }
  return r;
}

int run_check(const Options& o) {
  using CaseFn = CaseResult (*)(const core::MachineConfig&);
  struct Entry {
    const char* machine;
    const char* program;
    CaseFn fn;
  };
  // Both machines: the paper's (read-update + BC + CBL) and the WBI
  // baseline (with CBL synchronization so the lock/barrier engines are
  // exercised against the invalidate directory too).
  const Entry battery[] = {
      {"paper", "lock-counter", case_lock_counter},
      {"paper", "rw-lock", case_rw_lock},
      {"paper", "message-passing", case_message_passing},
      {"paper", "barrier", case_barrier_phases},
      {"paper", "fuzz", case_fuzz},
      {"cbl-on-wbi", "lock-counter", case_lock_counter},
      {"cbl-on-wbi", "rw-lock", case_rw_lock},
      {"cbl-on-wbi", "message-passing", case_message_passing},
      {"cbl-on-wbi", "barrier", case_barrier_phases},
      {"cbl-on-wbi", "fuzz", case_fuzz},
  };
  const auto config_for = [&](const char* machine, std::uint64_t schedule_seed) {
    Options mo = o;
    mo.machine = machine;
    mo.invariants = "full";
    mo.schedule_seed = schedule_seed;
    return build_config(mo);
  };
  if (o.seeds == 0) usage_error("check needs --seeds >= 1");
  std::printf("check: %llu schedule seeds x %zu programs, nodes=%u, invariants=full\n",
              static_cast<unsigned long long>(o.seeds), std::size(battery), o.nodes);
  for (std::uint64_t s = o.first_seed; s < o.first_seed + o.seeds; ++s) {
    for (const Entry& e : battery) {
      const auto cfg = config_for(e.machine, s);
      CaseResult r1;
      try {
        r1 = e.fn(cfg);
        if (r1.ok) {
          // Same seed, fresh machine: the schedule must replay exactly.
          const CaseResult r2 = e.fn(cfg);
          if (r2.completion != r1.completion || r2.messages != r1.messages) {
            r1.ok = false;
            r1.detail = "nondeterministic: reruns disagree on completion time or traffic";
          }
        }
      } catch (const std::exception& ex) {
        r1.ok = false;
        r1.detail = ex.what();
      }
      if (!r1.ok) {
        std::printf("check: FAILED\n");
        std::printf("  smallest failing schedule seed: %llu\n",
                    static_cast<unsigned long long>(s));
        std::printf("  machine=%s program=%s\n  %s\n", e.machine, e.program,
                    r1.detail.c_str());
        std::printf("  replay: bcsim check --nodes %u --first-seed %llu --seeds 1\n",
                    o.nodes, static_cast<unsigned long long>(s));
        // Replay the failing case with the event-trace recorder on: when
        // the failure is an invariant violation, the machine prints the
        // tail of the interleaving that led there next to the diagnostic
        // (docs/OBSERVABILITY.md). Functional failures replay silently.
        std::printf("  replaying with event tracing enabled...\n");
        std::fflush(stdout);
        auto traced = cfg;
        traced.trace = true;
        traced.trace_capacity = o.trace_capacity;
        try {
          (void)e.fn(traced);
        } catch (const std::exception&) {
          // The diagnostic and trace tail already went to stderr.
        }
        return 1;
      }
    }
  }
  std::printf("check: OK (seeds %llu..%llu, all invariants held, all results exact)\n",
              static_cast<unsigned long long>(o.first_seed),
              static_cast<unsigned long long>(o.first_seed + o.seeds - 1));
  return 0;
}

int run(const Options& o) {
  core::Machine m(build_config(o));
  std::unique_ptr<workload::WorkQueueWorkload> wq;
  std::unique_ptr<workload::SyncModelWorkload> sm;
  std::unique_ptr<workload::LinearSolverWorkload> solver;
  std::unique_ptr<workload::StencilWorkload> stencil;
  std::unique_ptr<workload::GridStencilWorkload> grid;
  std::unique_ptr<workload::FftPhasesWorkload> fft;

  if (o.workload == "work-queue") {
    workload::WorkQueueConfig c;
    c.total_tasks = o.tasks;
    c.grain = o.grain;
    wq = std::make_unique<workload::WorkQueueWorkload>(m, c);
    wq->spawn_all(m);
  } else if (o.workload == "sync-model") {
    workload::SyncModelConfig c;
    c.tasks_per_proc = std::max(1u, o.tasks / std::max(1u, o.nodes));
    c.grain = o.grain;
    sm = std::make_unique<workload::SyncModelWorkload>(m, c);
    sm->spawn_all(m);
  } else if (o.workload == "solver") {
    workload::LinearSolverConfig c;
    c.iterations = o.iters;
    solver = std::make_unique<workload::LinearSolverWorkload>(m, c);
    solver->spawn_all(m);
  } else if (o.workload == "stencil") {
    workload::StencilConfig c;
    c.sweeps = o.iters;
    stencil = std::make_unique<workload::StencilWorkload>(m, c);
    stencil->spawn_all(m);
  } else if (o.workload == "grid") {
    workload::GridStencilConfig c;
    c.sweeps = o.iters;
    grid = std::make_unique<workload::GridStencilWorkload>(m, c);
    grid->spawn_all(m);
  } else if (o.workload == "fft") {
    fft = std::make_unique<workload::FftPhasesWorkload>(m, workload::FftPhasesConfig{});
    fft->spawn_all(m);
  } else {
    usage_error("unknown workload '" + o.workload + "'");
  }

  const Tick t = m.run();
  std::printf("machine=%s workload=%s nodes=%u seed=%llu\n", o.machine.c_str(),
              o.workload.c_str(), o.nodes, static_cast<unsigned long long>(o.seed));
  std::printf("completion: %llu cycles\n", static_cast<unsigned long long>(t));
  std::printf("network:    %llu messages, %llu contention cycles\n",
              static_cast<unsigned long long>(m.stats().counter_value("net.messages")),
              static_cast<unsigned long long>(
                  m.stats().counter_value("net.contention_cycles")));
  if (wq) {
    std::printf("work queue: %llu tasks executed\n",
                static_cast<unsigned long long>(wq->tasks_executed(m)));
  }
  if (solver) {
    std::printf("solver:     residual %.3e, bit-exact vs host: %s\n", solver->residual(m),
                solver->solution(m) == solver->reference() ? "yes" : "NO");
  }
  if (stencil) {
    std::printf("stencil:    bit-exact vs host: %s\n",
                stencil->result(m) == stencil->reference() ? "yes" : "NO");
  }
  if (grid) {
    std::printf("grid:       bit-exact vs host: %s\n",
                grid->result(m) == grid->reference() ? "yes" : "NO");
  }
  if (fft) {
    std::printf("fft:        bit-exact vs host: %s\n",
                fft->actual(m) == fft->expected() ? "yes" : "NO");
  }
  if (o.trace) {
    const auto& tr = m.simulator().trace();
    std::ofstream out(o.trace_out);
    if (!out) {
      std::fprintf(stderr, "bcsim: cannot write %s\n", o.trace_out.c_str());
      return 1;
    }
    tr.write_chrome_json(out);
    std::printf("trace:      %zu records retained (%llu recorded, %llu dropped) -> %s\n",
                tr.size(), static_cast<unsigned long long>(tr.recorded()),
                static_cast<unsigned long long>(tr.dropped()), o.trace_out.c_str());
    if (!o.trace_csv.empty()) {
      std::ofstream csv(o.trace_csv);
      if (!csv) {
        std::fprintf(stderr, "bcsim: cannot write %s\n", o.trace_csv.c_str());
        return 1;
      }
      tr.write_csv(csv);
      std::printf("trace csv:  %s\n", o.trace_csv.c_str());
    }
  }
  if (o.report) {
    m.stats().report(std::cout);
  }
  if (!o.csv.empty()) {
    std::ofstream out(o.csv);
    if (!out) {
      std::fprintf(stderr, "bcsim: cannot write %s\n", o.csv.c_str());
      return 1;
    }
    m.stats().write_csv(out);
    std::printf("stats written to %s\n", o.csv.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc > 1 && std::strcmp(argv[1], "bench") == 0) {
      return tool::run_bench(parse_bench_args(argc, argv));
    }
    if (argc > 1 && std::strcmp(argv[1], "diff") == 0) {
      return tool::run_diff(parse_diff_args(argc, argv));
    }
    if (argc > 1 && std::strcmp(argv[1], "model") == 0) {
      return tool::run_model(parse_model_args(argc, argv));
    }
    const Options o = parse_args(argc, argv);
    return o.check ? run_check(o) : run(o);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bcsim: %s\n", e.what());
    return 1;
  }
}
