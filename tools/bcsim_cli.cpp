// bcsim — command-line experiment driver.
//
// One binary to configure the machine, pick a workload, run it, and dump
// results (human-readable report and/or CSV for plotting):
//
//   bcsim --nodes 32 --machine paper --workload work-queue --tasks 256
//         --grain 100 --report
//   bcsim --nodes 16 --machine wbi --lock tts --workload solver --csv out.csv
//
// Flags (defaults in brackets):
//   --nodes N            processors [16]
//   --machine M          paper | wbi | cbl-on-wbi [paper]
//   --consistency C      sc | bc (paper machine only) [bc]
//   --lock L             cbl | tts | tts-backoff | ticket | mcs [per machine]
//   --barrier B          cbl | central | tree [per machine]
//   --network NET        omega | crossbar | mesh | ideal [omega]
//   --block-words W      cache line size in words [4]
//   --workload W         work-queue | sync-model | solver | stencil | grid | fft [work-queue]
//   --tasks N            work-queue task budget [256]
//   --grain G            references per task [100]
//   --iters K            solver iterations / stencil sweeps [8]
//   --seed S             RNG seed [1]
//   --csv PATH           write all statistics as CSV
//   --report             print the full statistics report
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "core/machine.hpp"
#include "workload/fft_phases.hpp"
#include "workload/grid_stencil.hpp"
#include "workload/linear_solver.hpp"
#include "workload/stencil.hpp"
#include "workload/sync_model.hpp"
#include "workload/work_queue_model.hpp"

using namespace bcsim;

namespace {

struct Options {
  std::uint32_t nodes = 16;
  std::string machine = "paper";
  std::string consistency = "bc";
  std::string lock;
  std::string barrier;
  std::string network = "omega";
  std::uint32_t block_words = 4;
  std::string workload = "work-queue";
  std::uint32_t tasks = 256;
  std::uint32_t grain = 100;
  std::uint32_t iters = 8;
  std::uint64_t seed = 1;
  std::string csv;
  bool report = false;
};

[[noreturn]] void usage_error(const std::string& msg) {
  std::fprintf(stderr, "bcsim: %s\n(see the header of tools/bcsim_cli.cpp for flags)\n",
               msg.c_str());
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options o;
  auto need = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage_error(std::string("missing value for ") + argv[i]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--nodes") o.nodes = static_cast<std::uint32_t>(std::stoul(need(i)));
    else if (a == "--machine") o.machine = need(i);
    else if (a == "--consistency") o.consistency = need(i);
    else if (a == "--lock") o.lock = need(i);
    else if (a == "--barrier") o.barrier = need(i);
    else if (a == "--network") o.network = need(i);
    else if (a == "--block-words") o.block_words = static_cast<std::uint32_t>(std::stoul(need(i)));
    else if (a == "--workload") o.workload = need(i);
    else if (a == "--tasks") o.tasks = static_cast<std::uint32_t>(std::stoul(need(i)));
    else if (a == "--grain") o.grain = static_cast<std::uint32_t>(std::stoul(need(i)));
    else if (a == "--iters") o.iters = static_cast<std::uint32_t>(std::stoul(need(i)));
    else if (a == "--seed") o.seed = std::stoull(need(i));
    else if (a == "--csv") o.csv = need(i);
    else if (a == "--report") o.report = true;
    else usage_error("unknown flag '" + a + "'");
  }
  return o;
}

core::LockImpl parse_lock(const std::string& s) {
  if (s == "cbl") return core::LockImpl::kCbl;
  if (s == "tts") return core::LockImpl::kTts;
  if (s == "tts-backoff") return core::LockImpl::kTtsBackoff;
  if (s == "ticket") return core::LockImpl::kTicket;
  if (s == "mcs") return core::LockImpl::kMcs;
  usage_error("unknown lock '" + s + "'");
}

core::BarrierImpl parse_barrier(const std::string& s) {
  if (s == "cbl") return core::BarrierImpl::kCbl;
  if (s == "central") return core::BarrierImpl::kCentral;
  if (s == "tree") return core::BarrierImpl::kTree;
  usage_error("unknown barrier '" + s + "'");
}

core::NetworkKind parse_network(const std::string& s) {
  if (s == "omega") return core::NetworkKind::kOmega;
  if (s == "crossbar") return core::NetworkKind::kCrossbar;
  if (s == "mesh") return core::NetworkKind::kMesh;
  if (s == "ideal") return core::NetworkKind::kIdeal;
  usage_error("unknown network '" + s + "'");
}

core::MachineConfig build_config(const Options& o) {
  core::MachineConfig cfg;
  cfg.n_nodes = o.nodes;
  cfg.block_words = o.block_words;
  cfg.network = parse_network(o.network);
  cfg.seed = o.seed;
  if (o.machine == "paper") {
    cfg.data_protocol = core::DataProtocol::kReadUpdate;
    cfg.consistency = o.consistency == "sc" ? core::Consistency::kSequential
                                            : core::Consistency::kBuffered;
    cfg.lock_impl = core::LockImpl::kCbl;
    cfg.barrier_impl = core::BarrierImpl::kCbl;
  } else if (o.machine == "wbi") {
    cfg.data_protocol = core::DataProtocol::kWbi;
    cfg.lock_impl = core::LockImpl::kTts;
    cfg.barrier_impl = core::BarrierImpl::kCentral;
  } else if (o.machine == "cbl-on-wbi") {
    cfg.data_protocol = core::DataProtocol::kWbi;
    cfg.lock_impl = core::LockImpl::kCbl;
    cfg.barrier_impl = core::BarrierImpl::kCbl;
  } else {
    usage_error("unknown machine '" + o.machine + "'");
  }
  if (!o.lock.empty()) cfg.lock_impl = parse_lock(o.lock);
  if (!o.barrier.empty()) cfg.barrier_impl = parse_barrier(o.barrier);
  cfg.validate();
  return cfg;
}

int run(const Options& o) {
  core::Machine m(build_config(o));
  std::unique_ptr<workload::WorkQueueWorkload> wq;
  std::unique_ptr<workload::SyncModelWorkload> sm;
  std::unique_ptr<workload::LinearSolverWorkload> solver;
  std::unique_ptr<workload::StencilWorkload> stencil;
  std::unique_ptr<workload::GridStencilWorkload> grid;
  std::unique_ptr<workload::FftPhasesWorkload> fft;

  if (o.workload == "work-queue") {
    workload::WorkQueueConfig c;
    c.total_tasks = o.tasks;
    c.grain = o.grain;
    wq = std::make_unique<workload::WorkQueueWorkload>(m, c);
    wq->spawn_all(m);
  } else if (o.workload == "sync-model") {
    workload::SyncModelConfig c;
    c.tasks_per_proc = std::max(1u, o.tasks / std::max(1u, o.nodes));
    c.grain = o.grain;
    sm = std::make_unique<workload::SyncModelWorkload>(m, c);
    sm->spawn_all(m);
  } else if (o.workload == "solver") {
    workload::LinearSolverConfig c;
    c.iterations = o.iters;
    solver = std::make_unique<workload::LinearSolverWorkload>(m, c);
    solver->spawn_all(m);
  } else if (o.workload == "stencil") {
    workload::StencilConfig c;
    c.sweeps = o.iters;
    stencil = std::make_unique<workload::StencilWorkload>(m, c);
    stencil->spawn_all(m);
  } else if (o.workload == "grid") {
    workload::GridStencilConfig c;
    c.sweeps = o.iters;
    grid = std::make_unique<workload::GridStencilWorkload>(m, c);
    grid->spawn_all(m);
  } else if (o.workload == "fft") {
    fft = std::make_unique<workload::FftPhasesWorkload>(m, workload::FftPhasesConfig{});
    fft->spawn_all(m);
  } else {
    usage_error("unknown workload '" + o.workload + "'");
  }

  const Tick t = m.run();
  std::printf("machine=%s workload=%s nodes=%u seed=%llu\n", o.machine.c_str(),
              o.workload.c_str(), o.nodes, static_cast<unsigned long long>(o.seed));
  std::printf("completion: %llu cycles\n", static_cast<unsigned long long>(t));
  std::printf("network:    %llu messages, %llu contention cycles\n",
              static_cast<unsigned long long>(m.stats().counter_value("net.messages")),
              static_cast<unsigned long long>(
                  m.stats().counter_value("net.contention_cycles")));
  if (wq) {
    std::printf("work queue: %llu tasks executed\n",
                static_cast<unsigned long long>(wq->tasks_executed(m)));
  }
  if (solver) {
    std::printf("solver:     residual %.3e, bit-exact vs host: %s\n", solver->residual(m),
                solver->solution(m) == solver->reference() ? "yes" : "NO");
  }
  if (stencil) {
    std::printf("stencil:    bit-exact vs host: %s\n",
                stencil->result(m) == stencil->reference() ? "yes" : "NO");
  }
  if (grid) {
    std::printf("grid:       bit-exact vs host: %s\n",
                grid->result(m) == grid->reference() ? "yes" : "NO");
  }
  if (fft) {
    std::printf("fft:        bit-exact vs host: %s\n",
                fft->actual(m) == fft->expected() ? "yes" : "NO");
  }
  if (o.report) {
    m.stats().report(std::cout);
  }
  if (!o.csv.empty()) {
    std::ofstream out(o.csv);
    if (!out) {
      std::fprintf(stderr, "bcsim: cannot write %s\n", o.csv.c_str());
      return 1;
    }
    m.stats().write_csv(out);
    std::printf("stats written to %s\n", o.csv.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse_args(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bcsim: %s\n", e.what());
    return 1;
  }
}
