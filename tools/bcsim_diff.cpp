#include "bcsim_diff.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>

#include "ref/ref_machine.hpp"

namespace bcsim::tool {

namespace {

/// Appends one replay line to the regression corpus. Format (one case per
/// line, '#' comments): `<flavor> <program_seed> <schedule_seed> <nodes>
/// <phases> [fault]` — tests/test_diff.cpp replays every line.
void append_corpus(const DiffOptions& o, ref::Flavor flavor,
                   std::uint64_t program_seed, std::uint64_t schedule_seed) {
  if (o.corpus.empty()) return;
  std::ofstream out(o.corpus, std::ios::app);
  if (!out) {
    std::fprintf(stderr, "bcsim diff: cannot append to corpus %s\n", o.corpus.c_str());
    return;
  }
  out << ref::to_string(flavor) << ' ' << program_seed << ' ' << schedule_seed << ' '
      << o.nodes << ' ' << o.phases << ' '
      << (o.network.empty() ? "omega" : o.network.c_str());
  if (!o.inject_fault.empty()) out << ' ' << o.inject_fault;
  out << '\n';
  std::printf("  recorded in corpus: %s\n", o.corpus.c_str());
}

}  // namespace

int run_diff(const DiffOptions& o) {
  std::vector<ref::Flavor> flavors = o.flavors;
  if (flavors.empty()) {
    flavors = {ref::Flavor::kWbi, ref::Flavor::kRu, ref::Flavor::kCbl};
  }
  if (o.programs == 0 || o.schedules == 0) {
    std::fprintf(stderr, "bcsim diff: --programs and --schedules must be >= 1\n");
    return 2;
  }
  core::WbFault fault = core::WbFault::kNone;
  if (o.inject_fault == "eager-flush") fault = core::WbFault::kEagerFlush;
  else if (o.inject_fault == "empty-gate") fault = core::WbFault::kEmptyGate;
  else if (!o.inject_fault.empty()) {
    std::fprintf(stderr, "bcsim diff: unknown --inject-fault '%s'\n",
                 o.inject_fault.c_str());
    return 2;
  }
  core::NetworkKind network = core::NetworkKind::kOmega;
  if (o.network == "omega" || o.network.empty()) network = core::NetworkKind::kOmega;
  else if (o.network == "crossbar") network = core::NetworkKind::kCrossbar;
  else if (o.network == "mesh") network = core::NetworkKind::kMesh;
  else if (o.network == "ideal") network = core::NetworkKind::kIdeal;
  else {
    std::fprintf(stderr, "bcsim diff: unknown --network '%s'\n", o.network.c_str());
    return 2;
  }

  ref::DrfGenConfig gen;
  gen.n_nodes = o.nodes;
  gen.phases = o.phases;

  std::string flavor_list;
  for (const auto f : flavors) {
    if (!flavor_list.empty()) flavor_list += ",";
    flavor_list += ref::to_string(f);
  }
  std::printf(
      "diff: %llu programs x %llu schedules x {%s}, nodes=%u, phases=%u%s%s\n",
      static_cast<unsigned long long>(o.programs),
      static_cast<unsigned long long>(o.schedules), flavor_list.c_str(), o.nodes,
      o.phases, o.inject_fault.empty() ? "" : ", injected fault: ",
      o.inject_fault.c_str());

  std::uint64_t cells = 0;
  for (std::uint64_t ps = o.first_program; ps < o.first_program + o.programs; ++ps) {
    const ref::DrfProgram prog = ref::generate_drf_program(ps, gen);

    // Ground truth — and a generator self-check: a DRF program's
    // comparison stream must not depend on the reference schedule.
    const ref::RefResult ref1 = ref::RefMachine(prog, 1).run();
    const ref::RefResult ref2 = ref::RefMachine(prog, 0x9e3779b97f4a7c15ULL).run();
    if (ref1.deadlocked || !ref::ref_results_agree(ref1, ref2)) {
      std::printf("diff: GENERATOR BUG at program seed %llu\n",
                  static_cast<unsigned long long>(ps));
      std::printf(
          "  two reference schedules disagree (or deadlock) — the program is "
          "not DRF; fix the generator before trusting any comparison\n");
      return 1;
    }

    for (std::uint64_t ss = o.first_schedule; ss < o.first_schedule + o.schedules;
         ++ss) {
      for (const ref::Flavor flavor : flavors) {
        core::MachineConfig cfg = ref::flavor_config(flavor, prog.gen.n_nodes, ss);
        cfg.wb_fault = fault;
        cfg.network = network;
        const ref::Divergence d = ref::diff_one(prog, ref1, flavor, ss, &cfg, o.budget);
        ++cells;
        if (!d.found()) continue;

        std::printf("diff: DIVERGENCE\n");
        std::printf("  flavor=%s program_seed=%llu schedule_seed=%llu nodes=%u\n",
                    ref::to_string(flavor), static_cast<unsigned long long>(ps),
                    static_cast<unsigned long long>(ss), o.nodes);
        std::printf("  %s\n", d.detail.c_str());
        std::printf(
            "  replay: bcsim diff --flavors %s --programs 1 --first-program %llu "
            "--schedules 1 --first-schedule %llu --nodes %u --phases %u --network %s"
            "%s%s\n",
            ref::to_string(flavor), static_cast<unsigned long long>(ps),
            static_cast<unsigned long long>(ss), o.nodes, o.phases,
            core::to_string(network).data(),
            o.inject_fault.empty() ? "" : " --inject-fault ", o.inject_fault.c_str());
        append_corpus(o, flavor, ps, ss);

        // Replay with the event-trace recorder on: the tail of the
        // interleaving that led to the divergence goes to stderr
        // (docs/OBSERVABILITY.md).
        std::printf("  replaying with event tracing enabled...\n");
        std::fflush(stdout);
        cfg.trace = true;
        (void)ref::run_on_machine(prog, cfg, o.budget, &std::cerr);
        return 1;
      }
    }
  }
  std::printf("diff: OK (%llu comparisons, every one matched the SC reference)\n",
              static_cast<unsigned long long>(cells));
  return 0;
}

}  // namespace bcsim::tool
