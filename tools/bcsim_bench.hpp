// `bcsim bench` — the perf-regression harness (docs/BENCHMARKS.md).
//
// Runs the simulator-substrate microbenchmarks plus one end-to-end
// work-queue run per machine flavor (wbi / cbl / paper) and writes a
// machine-readable BENCH_<rev>.json: ns/op per micro, simulated-ticks/sec
// and messages/sec per flavor, peak RSS, and a stats digest per run that
// pins the simulation output bit-for-bit. scripts/bench_compare.py diffs
// two such files; CI gates on the committed bench/baseline.json.
#pragma once

#include <string>

namespace bcsim::tool {

struct BenchOptions {
  /// Smaller configurations and shorter timing windows — the CI subset.
  bool smoke = false;
  /// Output path; empty means "BENCH_<revision>.json".
  std::string out;
  /// Label recorded in the JSON (--rev flag, else $BCSIM_REV, else "local").
  std::string revision = "local";
};

/// Runs the harness and writes the JSON. Returns a process exit code
/// (nonzero when a run is nondeterministic or the file cannot be written).
int run_bench(const BenchOptions& o);

}  // namespace bcsim::tool
