# Runs ${CLI} with ${ARGS} (space-separated) and fails unless the process
# exits with status ${EXPECT}. Used to pin the CLI's usage-error contract:
# malformed flag values must exit 2, not crash (1) or succeed (0).
separate_arguments(arg_list UNIX_COMMAND "${ARGS}")
execute_process(COMMAND ${CLI} ${arg_list} RESULT_VARIABLE rc
                OUTPUT_QUIET ERROR_VARIABLE err)
if(NOT rc EQUAL ${EXPECT})
  message(FATAL_ERROR "expected exit ${EXPECT}, got '${rc}'\nstderr: ${err}")
endif()
