#include "bcsim_model.hpp"

#include <cstdio>
#include <iostream>
#include <map>

#include "model/battery.hpp"
#include "model/bc_model.hpp"
#include "model/litmus_runner.hpp"

namespace bcsim::tool {

namespace {

bool parse_network(const std::string& s, core::NetworkKind& out) {
  if (s == "omega") out = core::NetworkKind::kOmega;
  else if (s == "crossbar") out = core::NetworkKind::kCrossbar;
  else if (s == "mesh") out = core::NetworkKind::kMesh;
  else if (s == "ideal") out = core::NetworkKind::kIdeal;
  else return false;
  return true;
}

void print_violation(const model::LitmusTest& t,
                     const std::vector<model::Outcome>& allowed,
                     const model::LitmusRunResult& run, ref::Flavor flavor,
                     const std::string& network, std::uint64_t seed,
                     const ModelOptions& o) {
  std::printf("model: SOUNDNESS VIOLATION\n");
  std::printf("  litmus=%s flavor=%s network=%s schedule_seed=%llu\n",
              t.name.c_str(), ref::to_string(flavor), network.c_str(),
              static_cast<unsigned long long>(seed));
  if (!run.error.empty()) {
    std::printf("  machine error: %s\n", run.error.c_str());
  } else {
    const int div = model::first_divergence(allowed, run.outcome);
    std::printf("  observed: %s\n",
                model::render_outcome(t, run.outcome).c_str());
    if (div >= 0 && static_cast<std::size_t>(div) < run.loads.size()) {
      const model::LitmusLoad& l = run.loads[static_cast<std::size_t>(div)];
      std::printf(
          "  first divergent read: %s = %llu at tick %llu — no allowed "
          "outcome matches the observed loads up to this point\n",
          model::load_label(t, static_cast<std::size_t>(div)).c_str(),
          static_cast<unsigned long long>(l.value),
          static_cast<unsigned long long>(l.tick));
    } else {
      std::printf(
          "  every observed load prefix is allowed; the final memory state "
          "matches no allowed outcome with these loads\n");
    }
  }
  std::printf(
      "  replay: bcsim model --tests %s --flavors %s --networks %s "
      "--seeds 1 --first-seed %llu --nodes %u%s%s\n",
      t.name.c_str(), ref::to_string(flavor), network.c_str(),
      static_cast<unsigned long long>(seed), o.nodes,
      o.inject_fault.empty() ? "" : " --inject-fault ", o.inject_fault.c_str());
}

}  // namespace

int run_model(const ModelOptions& o) {
  if (o.seeds == 0) {
    std::fprintf(stderr, "bcsim model: --seeds must be >= 1\n");
    return 2;
  }
  core::WbFault fault = core::WbFault::kNone;
  if (o.inject_fault == "eager-flush") fault = core::WbFault::kEagerFlush;
  else if (o.inject_fault == "empty-gate") fault = core::WbFault::kEmptyGate;
  else if (!o.inject_fault.empty()) {
    std::fprintf(stderr, "bcsim model: unknown --inject-fault '%s'\n",
                 o.inject_fault.c_str());
    return 2;
  }
  std::vector<ref::Flavor> flavors = o.flavors;
  if (flavors.empty()) {
    flavors = {ref::Flavor::kWbi, ref::Flavor::kRu, ref::Flavor::kCbl};
  }
  std::vector<std::string> networks = o.networks;
  if (networks.empty()) networks = {"omega", "mesh"};
  for (const std::string& n : networks) {
    core::NetworkKind kind{};
    if (!parse_network(n, kind)) {
      std::fprintf(stderr, "bcsim model: unknown network '%s'\n", n.c_str());
      return 2;
    }
  }

  const std::vector<model::LitmusTest> battery = model::litmus_battery();
  std::vector<const model::LitmusTest*> selected;
  if (o.tests.empty()) {
    for (const auto& t : battery) selected.push_back(&t);
  } else {
    for (const std::string& name : o.tests) {
      const model::LitmusTest* t = model::find_litmus(battery, name);
      if (t == nullptr) {
        std::fprintf(stderr, "bcsim model: unknown litmus test '%s'\n",
                     name.c_str());
        return 2;
      }
      selected.push_back(t);
    }
  }

  if (o.print_allowed) {
    for (const model::LitmusTest* t : selected) {
      std::fputs(model::render_allowed(*t, model::enumerate_allowed(*t)).c_str(),
                 stdout);
    }
    return 0;
  }

  std::string flavor_list;
  for (const auto f : flavors) {
    if (!flavor_list.empty()) flavor_list += ",";
    flavor_list += ref::to_string(f);
  }
  std::string network_list;
  for (const auto& n : networks) {
    if (!network_list.empty()) network_list += ",";
    network_list += n;
  }
  std::printf("model: %zu litmus tests x {%s} x {%s} x %llu seeds, nodes=%u%s%s\n",
              selected.size(), flavor_list.c_str(), network_list.c_str(),
              static_cast<unsigned long long>(o.seeds), o.nodes,
              o.inject_fault.empty() ? "" : ", injected fault: ",
              o.inject_fault.c_str());

  std::uint64_t cells = 0;
  bool incomplete = false;
  for (const model::LitmusTest* t : selected) {
    const std::vector<model::Outcome> allowed = model::enumerate_allowed(*t);
    std::map<model::Outcome, std::uint64_t> hits;
    for (const std::string& network : networks) {
      core::NetworkKind kind{};
      (void)parse_network(network, kind);
      for (const ref::Flavor flavor : flavors) {
        for (std::uint64_t s = o.first_seed; s < o.first_seed + o.seeds; ++s) {
          core::MachineConfig cfg = ref::flavor_config(flavor, o.nodes, s);
          cfg.network = kind;
          cfg.wb_fault = fault;
          const model::LitmusRunResult run = model::run_litmus(*t, cfg, o.budget);
          ++cells;
          if (!run.error.empty() ||
              !model::outcome_allowed(allowed, run.outcome)) {
            print_violation(*t, allowed, run, flavor, network, s, o);
            // Replay with the event-trace recorder on: the tail of the
            // interleaving goes to stderr (docs/OBSERVABILITY.md).
            std::printf("  replaying with event tracing enabled...\n");
            std::fflush(stdout);
            cfg.trace = true;
            (void)model::run_litmus(*t, cfg, o.budget, &std::cerr);
            return 1;
          }
          ++hits[run.outcome];
        }
      }
    }
    std::size_t hit = 0;
    for (const model::Outcome& a : allowed) {
      if (hits.contains(a)) ++hit;
    }
    std::printf("  %-16s sound; %zu/%zu allowed outcomes observed\n",
                t->name.c_str(), hit, allowed.size());
    for (const model::Outcome& a : allowed) {
      const auto it = hits.find(a);
      const std::uint64_t n = it == hits.end() ? 0 : it->second;
      std::printf("    %8llu  %s%s\n", static_cast<unsigned long long>(n),
                  model::render_outcome(*t, a).c_str(),
                  n == 0 ? "   [unhit]" : "");
      if (n == 0) incomplete = true;
    }
  }
  if (o.require_complete && incomplete) {
    std::printf(
        "model: INCOMPLETE — allowed outcomes above are marked [unhit]; "
        "raise --seeds or drop --require-complete\n");
    return 1;
  }
  std::printf("model: OK (%llu runs, every observed outcome was allowed)\n",
              static_cast<unsigned long long>(cells));
  return 0;
}

}  // namespace bcsim::tool
