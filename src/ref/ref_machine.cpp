#include "ref/ref_machine.hpp"

#include <cstdint>
#include <stdexcept>

#include "sim/random.hpp"

namespace bcsim::ref {

bool ref_results_agree(const RefResult& a, const RefResult& b) {
  if (a.deadlocked || b.deadlocked) return false;
  if (a.final_vars != b.final_vars || a.final_sems != b.final_sems) return false;
  if (a.obs.size() != b.obs.size()) return false;
  for (std::size_t n = 0; n < a.obs.size(); ++n) {
    if (a.obs[n].size() != b.obs[n].size()) return false;
    for (std::size_t i = 0; i < a.obs[n].size(); ++i) {
      const RefObs& x = a.obs[n][i];
      const RefObs& y = b.obs[n][i];
      if (x.op_index != y.op_index || x.var != y.var || x.value != y.value) return false;
    }
  }
  return a.lock_acquisitions == b.lock_acquisitions;
}

RefMachine::RefMachine(const DrfProgram& prog, std::uint64_t schedule_seed)
    : prog_(prog), schedule_seed_(schedule_seed) {}

RefResult RefMachine::run() {
  const std::uint32_t n_nodes = prog_.gen.n_nodes;
  constexpr std::uint32_t kFree = ~0u;

  RefResult r;
  r.final_vars.assign(prog_.n_vars, 0);
  r.final_sems = prog_.sem_initial;
  r.obs.resize(n_nodes);
  r.lock_acquisitions.assign(prog_.n_locks, 0);

  std::vector<std::size_t> pc(n_nodes, 0);
  std::vector<std::uint8_t> at_barrier(n_nodes, 0);
  std::vector<std::uint32_t> lock_owner(prog_.n_locks, kFree);
  std::uint32_t barrier_arrived = 0;

  sim::Rng rng(sim::SplitMix64(schedule_seed_ ^ 0xD1FFu).next());
  std::vector<std::uint32_t> runnable;
  runnable.reserve(n_nodes);

  for (;;) {
    runnable.clear();
    bool all_done = true;
    for (std::uint32_t n = 0; n < n_nodes; ++n) {
      const auto& code = prog_.code[n];
      if (pc[n] >= code.size()) continue;
      all_done = false;
      if (at_barrier[n]) continue;  // released only when everyone arrives
      const DrfOp& op = code[pc[n]];
      switch (op.kind) {
        case OpKind::kLock:
          if (lock_owner[op.id] != kFree) continue;
          break;
        case OpKind::kSemP:
          if (r.final_sems[op.id] == 0) continue;
          break;
        default:
          break;
      }
      runnable.push_back(n);
    }
    if (all_done) break;
    if (runnable.empty()) {
      // Arrived-at-barrier nodes are not runnable, but a full barrier
      // releases; anything else is a deadlock (a generator bug: DRF
      // programs are deadlock-free by construction).
      r.deadlocked = true;
      break;
    }

    const std::uint32_t n =
        runnable[static_cast<std::size_t>(rng.next_below(runnable.size()))];
    const std::size_t i = pc[n];
    const DrfOp& op = prog_.code[n][i];
    ++r.steps;

    switch (op.kind) {
      case OpKind::kCompute:
        break;  // time is not modeled; the reference is purely functional
      case OpKind::kWrite:
        r.final_vars[op.id] = op.value;
        break;
      case OpKind::kRead: {
        const Word v = r.final_vars[op.id];
        if (op.observed) r.obs[n].push_back({static_cast<std::uint32_t>(i), op.id, v});
        break;
      }
      case OpKind::kLock:
        lock_owner[op.id] = n;
        ++r.lock_acquisitions[op.id];
        break;
      case OpKind::kUnlock:
        if (lock_owner[op.id] != n) {
          throw std::logic_error("RefMachine: unlock of a lock the node does not hold");
        }
        lock_owner[op.id] = kFree;
        break;
      case OpKind::kCsAdd:
        // Guarded by the owning lock, so read-modify-write is one step.
        if (lock_owner[prog_.counter_lock[op.id]] != n) {
          throw std::logic_error("RefMachine: CS-ADD outside its owning lock");
        }
        r.final_vars[op.id] += op.value;
        break;
      case OpKind::kBarrier:
        at_barrier[n] = 1;
        if (++barrier_arrived == n_nodes) {
          for (std::uint32_t k = 0; k < n_nodes; ++k) at_barrier[k] = 0;
          barrier_arrived = 0;
        }
        break;
      case OpKind::kSemP:
        if (r.final_sems[op.id] == 0) {
          throw std::logic_error("RefMachine: P scheduled with a zero semaphore");
        }
        --r.final_sems[op.id];
        break;
      case OpKind::kSemV:
        ++r.final_sems[op.id];
        break;
    }
    pc[n] = i + 1;
  }

  for (std::uint32_t l = 0; l < prog_.n_locks; ++l) {
    if (lock_owner[l] != kFree) r.locks_held_at_end.push_back(l);
  }
  return r;
}

}  // namespace bcsim::ref
