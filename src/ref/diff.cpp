#include "ref/diff.hpp"

#include <limits>
#include <sstream>

namespace bcsim::ref {

const char* to_string(Flavor f) noexcept {
  switch (f) {
    case Flavor::kWbi: return "wbi";
    case Flavor::kRu: return "ru";
    case Flavor::kCbl: return "cbl";
  }
  return "?";
}

std::optional<Flavor> parse_flavor(std::string_view s) noexcept {
  if (s == "wbi") return Flavor::kWbi;
  if (s == "ru") return Flavor::kRu;
  if (s == "cbl") return Flavor::kCbl;
  return std::nullopt;
}

core::MachineConfig flavor_config(Flavor f, std::uint32_t n_nodes,
                                  std::uint64_t schedule_seed) {
  core::MachineConfig cfg;
  cfg.n_nodes = n_nodes;
  cfg.network = core::NetworkKind::kOmega;
  cfg.schedule_seed = schedule_seed;
  cfg.invariants = sim::InvariantLevel::kQuiesce;
  switch (f) {
    case Flavor::kWbi:
      cfg.data_protocol = core::DataProtocol::kWbi;
      cfg.consistency = core::Consistency::kSequential;
      cfg.lock_impl = core::LockImpl::kTts;
      cfg.barrier_impl = core::BarrierImpl::kCentral;
      break;
    case Flavor::kRu:
      cfg.data_protocol = core::DataProtocol::kReadUpdate;
      cfg.consistency = core::Consistency::kBuffered;
      cfg.lock_impl = core::LockImpl::kCbl;
      cfg.barrier_impl = core::BarrierImpl::kCbl;
      break;
    case Flavor::kCbl:
      cfg.data_protocol = core::DataProtocol::kWbi;
      cfg.consistency = core::Consistency::kSequential;
      cfg.lock_impl = core::LockImpl::kCbl;
      cfg.barrier_impl = core::BarrierImpl::kCbl;
      break;
  }
  cfg.validate();
  return cfg;
}

namespace {

void name_location(Divergence& d, const MachineRunResult& mach, std::uint32_t var,
                   std::uint32_t block_words) {
  d.var = var;
  d.addr = var < mach.var_addr.size() ? mach.var_addr[var] : 0;
  d.block = block_words != 0 ? d.addr / block_words : 0;
}

}  // namespace

Divergence compare_runs(const DrfProgram& prog, const RefResult& ref,
                        const MachineRunResult& mach, std::uint32_t block_words) {
  Divergence d;
  std::ostringstream os;

  if (!mach.error.empty() || !mach.completed) {
    d.kind = Divergence::Kind::kMachineError;
    d.tick = mach.completion;
    os << "machine failed at tick " << mach.completion << ": "
       << (mach.error.empty() ? "did not complete" : mach.error);
    d.detail = os.str();
    return d;
  }
  if (ref.deadlocked) {
    d.kind = Divergence::Kind::kMachineError;
    os << "reference deadlocked — generator emitted a non-DRF program (bug)";
    d.detail = os.str();
    return d;
  }

  // Observed reads: the earliest mismatch by machine tick across nodes.
  Tick best_tick = std::numeric_limits<Tick>::max();
  for (std::uint32_t n = 0; n < prog.gen.n_nodes; ++n) {
    const auto& rv = ref.obs[n];
    const auto& mv = mach.obs[n];
    const std::size_t common = rv.size() < mv.size() ? rv.size() : mv.size();
    for (std::size_t i = 0; i < common; ++i) {
      if (rv[i].value == mv[i].value && rv[i].var == mv[i].var) continue;
      if (mv[i].tick >= best_tick) break;
      best_tick = mv[i].tick;
      d.kind = Divergence::Kind::kObsRead;
      d.node = n;
      d.op_index = mv[i].op_index;
      d.tick = mv[i].tick;
      d.machine_value = mv[i].value;
      d.ref_value = rv[i].value;
      name_location(d, mach, mv[i].var, block_words);
      break;
    }
    if (rv.size() != mv.size() && d.kind == Divergence::Kind::kNone) {
      d.kind = Divergence::Kind::kObsStream;
      d.node = n;
      os.str("");
      os << "node " << n << " observed " << mv.size() << " reads, reference "
         << rv.size();
      d.detail = os.str();
      return d;
    }
  }
  if (d.kind == Divergence::Kind::kObsRead) {
    os << "node " << d.node << " op " << d.op_index << " READ var " << d.var
       << " (addr " << d.addr << ", block " << d.block << ") at tick " << d.tick
       << ": machine read " << d.machine_value << ", SC reference expects "
       << d.ref_value;
    d.detail = os.str();
    return d;
  }

  for (std::uint32_t v = 0; v < prog.n_vars; ++v) {
    if (mach.final_vars[v] == ref.final_vars[v]) continue;
    d.kind = Divergence::Kind::kFinalVar;
    d.tick = mach.completion;
    d.machine_value = mach.final_vars[v];
    d.ref_value = ref.final_vars[v];
    name_location(d, mach, v, block_words);
    os << "final memory: var " << v << " (addr " << d.addr << ", block " << d.block
       << ") at completion tick " << d.tick << ": machine holds " << d.machine_value
       << ", SC reference expects " << d.ref_value;
    d.detail = os.str();
    return d;
  }

  for (std::uint32_t s = 0; s < prog.n_sems; ++s) {
    if (mach.final_sems[s] == ref.final_sems[s]) continue;
    d.kind = Divergence::Kind::kFinalSem;
    d.tick = mach.completion;
    d.machine_value = mach.final_sems[s];
    d.ref_value = ref.final_sems[s];
    d.var = s;
    d.addr = s < mach.sem_addr.size() ? mach.sem_addr[s] : 0;
    d.block = block_words != 0 ? d.addr / block_words : 0;
    os << "final semaphore " << s << " count (addr " << d.addr << ", block "
       << d.block << ") at completion tick " << d.tick << ": machine holds "
       << d.machine_value << ", SC reference expects " << d.ref_value;
    d.detail = os.str();
    return d;
  }

  return d;
}

Divergence diff_one(const DrfProgram& prog, const RefResult& ref, Flavor flavor,
                    std::uint64_t schedule_seed, const core::MachineConfig* base,
                    Tick budget) {
  core::MachineConfig cfg =
      base != nullptr ? *base : flavor_config(flavor, prog.gen.n_nodes, schedule_seed);
  cfg.n_nodes = prog.gen.n_nodes;
  cfg.schedule_seed = schedule_seed;
  const MachineRunResult mach = run_on_machine(prog, cfg, budget);
  return compare_runs(prog, ref, mach, cfg.block_words);
}

}  // namespace bcsim::ref
