// Full-machine executor for DRF programs: the other half of the
// differential oracle (see drf_program.hpp / ref_machine.hpp).
//
// Interprets a DrfProgram on a real core::Machine, one coroutine per node,
// using the protocol-agnostic access helpers of workload/access.hpp and
// the sync library (so WBI, read-update + BC, and CBL-on-WBI flavors all
// execute the IR through their native primitives). Produces the same
// comparison stream as the reference machine — observed read values,
// final variable values, final semaphore counts — plus the machine ticks
// at which observed reads completed, which is what lets a divergence
// report name the exact cycle.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "ref/drf_program.hpp"
#include "sim/types.hpp"

namespace bcsim::ref {

/// One observed read as the machine performed it.
struct MachineObs {
  std::uint32_t op_index = 0;
  std::uint32_t var = 0;
  Word value = 0;
  Tick tick = 0;  ///< simulated cycle at which the read completed
};

struct MachineRunResult {
  bool completed = false;  ///< all programs done and the machine quiescent
  Tick completion = 0;
  std::string error;       ///< exception text (budget exhausted, invariant violation)
  std::vector<Word> final_vars;  ///< per variable id, via Machine::peek_coherent
  std::vector<Word> final_sems;
  std::vector<std::vector<MachineObs>> obs;  ///< per node, program order
  std::vector<Addr> var_addr;  ///< the layout, for naming addr/block in reports
  std::vector<Addr> sem_addr;  ///< semaphore count words, same purpose
};

/// Runs `prog` on a machine built from `cfg` (cfg.n_nodes must equal the
/// program's node count). Never throws for simulation failures — they are
/// reported in `error` so the diff driver can treat "machine stuck" and
/// "invariant violation" as divergences with context. When `trace_tail`
/// is non-null and cfg.trace is on, the newest trace records are written
/// there after the run (the diff driver's replay path).
[[nodiscard]] MachineRunResult run_on_machine(const DrfProgram& prog,
                                              const core::MachineConfig& cfg,
                                              Tick budget = 100'000'000,
                                              std::ostream* trace_tail = nullptr);

}  // namespace bcsim::ref
