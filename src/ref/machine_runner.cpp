#include "ref/machine_runner.hpp"

#include <exception>
#include <memory>
#include <stdexcept>

#include "core/machine.hpp"
#include "core/sync/barrier.hpp"
#include "core/sync/mutex.hpp"
#include "core/sync/semaphore.hpp"
#include "workload/access.hpp"

namespace bcsim::ref {

namespace {

/// Address layout for one run: ids -> simulated addresses. Counters are
/// colocated with their lock when the lock implementation delivers the
/// lock block with the grant (the paper's critical-section locality
/// argument); otherwise each counter gets its own block. Region and
/// handoff words pack per node, so a node's writes share blocks with its
/// own other slots but never with another node's.
struct Layout {
  std::vector<std::unique_ptr<sync::Mutex>> locks;
  std::vector<std::unique_ptr<sync::CountingSemaphore>> sems;
  std::unique_ptr<sync::Barrier> barrier;
  std::vector<Addr> var_addr;
  std::vector<std::uint8_t> var_rides_lock;

  Layout(const DrfProgram& prog, core::Machine& m) {
    auto alloc = m.make_allocator();
    const auto& cfg = m.config();

    var_addr.assign(prog.n_vars, 0);
    var_rides_lock.assign(prog.n_vars, 0);

    locks.reserve(prog.n_locks);
    for (std::uint32_t l = 0; l < prog.n_locks; ++l) {
      locks.push_back(sync::make_mutex(cfg.lock_impl, alloc, cfg.n_nodes));
      // Words 1..block_words-1 of a CBL lock block ride the grant.
      std::uint32_t riding = 0;
      for (std::uint32_t c = 0; c < prog.n_counters; ++c) {
        if (prog.counter_lock[c] != l) continue;
        if (locks[l]->data_rides_lock() && riding + 1 < cfg.block_words) {
          var_addr[c] = locks[l]->lock_addr() + 1 + riding;
          var_rides_lock[c] = 1;
          ++riding;
        } else {
          var_addr[c] = alloc.alloc_blocks(1);
        }
      }
    }

    const std::uint32_t region_per_node = prog.gen.phases * prog.gen.region_slots;
    const std::uint32_t handoff_per_node = prog.gen.phases * prog.gen.handoff_slots;
    const std::uint32_t region_base = prog.n_counters;
    const std::uint32_t handoff_base = region_base + prog.gen.n_nodes * region_per_node;
    for (std::uint32_t n = 0; n < prog.gen.n_nodes; ++n) {
      const Addr rbase = alloc.alloc_words(region_per_node);
      for (std::uint32_t k = 0; k < region_per_node; ++k) {
        var_addr[region_base + n * region_per_node + k] = rbase + k;
      }
      const Addr hbase = alloc.alloc_words(handoff_per_node);
      for (std::uint32_t k = 0; k < handoff_per_node; ++k) {
        var_addr[handoff_base + n * handoff_per_node + k] = hbase + k;
      }
    }

    sems.reserve(prog.n_sems);
    for (std::uint32_t s = 0; s < prog.n_sems; ++s) {
      sems.push_back(std::make_unique<sync::CountingSemaphore>(
          cfg.lock_impl, alloc, cfg.n_nodes, prog.sem_initial[s]));
      // Counts are seeded by poking backing memory before tick 0 (caches
      // are empty, so this is equivalent to the one-time init coroutine
      // without needing a startup phase).
      m.poke_memory(sems.back()->count_addr(), prog.sem_initial[s]);
    }

    barrier = sync::make_barrier(cfg.barrier_impl, alloc, cfg.n_nodes);
  }
};

sim::Task interpret_node(core::Processor& p, const DrfProgram& prog, std::uint32_t n,
                         Layout& lay, std::vector<std::vector<MachineObs>>& obs) {
  const auto& code = prog.code[n];
  for (std::uint32_t i = 0; i < code.size(); ++i) {
    const DrfOp& op = code[i];
    switch (op.kind) {
      case OpKind::kCompute:
        co_await p.compute(op.id);
        break;
      case OpKind::kWrite:
        co_await workload::shared_write(p, lay.var_addr[op.id], op.value);
        break;
      case OpKind::kRead: {
        const Word v = co_await workload::shared_read_once(p, lay.var_addr[op.id]);
        if (op.observed) obs[n].push_back({i, op.id, v, p.simulator().now()});
        break;
      }
      case OpKind::kLock:
        co_await lay.locks[op.id]->acquire(p);
        break;
      case OpKind::kUnlock:
        co_await lay.locks[op.id]->release(p);
        break;
      case OpKind::kCsAdd: {
        const bool rides = lay.var_rides_lock[op.id] != 0;
        const Addr a = lay.var_addr[op.id];
        const Word v = co_await workload::cs_read(p, a, rides);
        co_await workload::cs_write(p, a, v + op.value, rides);
        break;
      }
      case OpKind::kBarrier:
        co_await lay.barrier->wait(p);
        break;
      case OpKind::kSemP:
        co_await lay.sems[op.id]->p_op(p);
        break;
      case OpKind::kSemV:
        co_await lay.sems[op.id]->v_op(p);
        break;
    }
  }
}

}  // namespace

MachineRunResult run_on_machine(const DrfProgram& prog, const core::MachineConfig& cfg,
                                Tick budget, std::ostream* trace_tail) {
  if (cfg.n_nodes != prog.gen.n_nodes) {
    throw std::invalid_argument("run_on_machine: cfg.n_nodes != program's node count");
  }
  MachineRunResult r;
  r.obs.resize(prog.gen.n_nodes);

  core::Machine m(cfg);
  Layout lay(prog, m);
  r.var_addr = lay.var_addr;
  r.sem_addr.reserve(prog.n_sems);
  for (std::uint32_t s = 0; s < prog.n_sems; ++s) {
    r.sem_addr.push_back(lay.sems[s]->count_addr());
  }

  for (std::uint32_t n = 0; n < prog.gen.n_nodes; ++n) {
    m.spawn_on(n, interpret_node(m.processor(n), prog, n, lay, r.obs));
  }
  try {
    r.completion = m.run(budget);
    r.completed = m.all_done() && m.quiescent();
    if (!r.completed) r.error = "programs stuck or protocol not quiescent";
  } catch (const std::exception& ex) {
    r.completion = m.simulator().now();
    r.error = ex.what();
    if (trace_tail != nullptr && cfg.trace) m.dump_trace(*trace_tail);
    return r;
  }
  if (trace_tail != nullptr && cfg.trace) m.dump_trace(*trace_tail);

  r.final_vars.reserve(prog.n_vars);
  for (std::uint32_t v = 0; v < prog.n_vars; ++v) {
    r.final_vars.push_back(m.peek_coherent(lay.var_addr[v]));
  }
  r.final_sems.reserve(prog.n_sems);
  for (std::uint32_t s = 0; s < prog.n_sems; ++s) {
    r.final_sems.push_back(m.peek_coherent(lay.sems[s]->count_addr()));
  }
  return r;
}

}  // namespace bcsim::ref
