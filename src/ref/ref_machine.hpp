// Golden sequentially-consistent reference machine.
//
// A cache-less, buffer-less interpreter of DRF programs: one atomic global
// memory, blocking lock/barrier/semaphore semantics, and a seeded
// scheduler that executes exactly one operation of one runnable node per
// step. Every execution it can produce is sequentially consistent by
// construction (operations are atomic and interleaved, never reordered or
// buffered), so for a DRF program its observed reads, final variable
// values, and final semaphore counts are the ground truth the full
// machine must reproduce (docs/TESTING.md, "Differential testing").
//
// The schedule seed exists for a self-check, not for coverage: a DRF
// program's comparison stream must be identical under *every* reference
// schedule. `bcsim diff` runs the reference twice with different seeds
// and refuses to proceed if they disagree — that would mean the generator
// emitted a racy program and the oracle would be comparing noise.
#pragma once

#include <cstdint>
#include <vector>

#include "ref/drf_program.hpp"
#include "sim/types.hpp"

namespace bcsim::ref {

/// One observed read in the comparison stream.
struct RefObs {
  std::uint32_t op_index = 0;
  std::uint32_t var = 0;
  Word value = 0;
};

struct RefResult {
  bool deadlocked = false;    ///< generator bug if ever true for a DRF program
  std::uint64_t steps = 0;    ///< operations executed (reference "time")
  std::vector<Word> final_vars;              ///< per variable id
  std::vector<Word> final_sems;              ///< per semaphore id
  std::vector<std::vector<RefObs>> obs;      ///< per node, program order
  std::vector<std::uint64_t> lock_acquisitions;  ///< per lock
  std::vector<std::uint32_t> locks_held_at_end;  ///< must be empty for DRF programs
};

/// Two reference runs agree on everything a DRF program pins down.
[[nodiscard]] bool ref_results_agree(const RefResult& a, const RefResult& b);

class RefMachine {
 public:
  RefMachine(const DrfProgram& prog, std::uint64_t schedule_seed);

  /// Interprets the whole program; safe to call once per instance.
  [[nodiscard]] RefResult run();

 private:
  const DrfProgram& prog_;
  std::uint64_t schedule_seed_;
};

}  // namespace bcsim::ref
