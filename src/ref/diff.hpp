// Differential-oracle harness: machine flavors, result comparison, and
// first-divergence reporting (docs/TESTING.md, "Differential testing").
//
// One comparison = one DRF program (drf_program.hpp) executed on the
// golden SC reference (ref_machine.hpp) and on a full machine flavor
// (machine_runner.hpp) under one schedule seed. A clean comparison means
// the machine's observable behavior is sequentially consistent for that
// properly-synchronized program — the paper's section 3 claim, checked
// end-to-end. `bcsim diff` sweeps a (program_seed x schedule_seed) grid
// over all flavors; tests drive diff_one directly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "ref/drf_program.hpp"
#include "ref/machine_runner.hpp"
#include "ref/ref_machine.hpp"

namespace bcsim::ref {

/// The three machine flavors the oracle checks against the reference.
enum class Flavor : std::uint8_t {
  kWbi,  ///< write-back invalidate + SC + TTS locks + central barrier
  kRu,   ///< the paper machine: read-update + BC + CBL lock/barrier
  kCbl,  ///< CBL synchronization on the WBI data protocol
};

[[nodiscard]] const char* to_string(Flavor f) noexcept;

/// Parses "wbi" / "ru" / "cbl".
[[nodiscard]] std::optional<Flavor> parse_flavor(std::string_view s) noexcept;

/// Machine configuration for a flavor (omega network, quiescent-level
/// invariants; the oracle is the whole-execution check, the invariant
/// sweep is a cheap backstop).
[[nodiscard]] core::MachineConfig flavor_config(Flavor f, std::uint32_t n_nodes,
                                                std::uint64_t schedule_seed);

/// The first point where a machine execution departed from the reference.
struct Divergence {
  enum class Kind : std::uint8_t {
    kNone,
    kMachineError,  ///< stuck, budget exhausted, or invariant violation
    kObsRead,       ///< an observed read returned a non-SC value
    kObsStream,     ///< observed-read streams have different lengths
    kFinalVar,      ///< final memory mismatch
    kFinalSem,      ///< final semaphore count mismatch
  };

  Kind kind = Kind::kNone;
  std::uint32_t node = 0;
  std::uint32_t op_index = 0;
  std::uint32_t var = 0;
  Addr addr = 0;
  BlockId block = 0;  ///< addr / block_words — names the memory block
  Tick tick = 0;      ///< machine cycle of the diverging read / completion
  Word machine_value = 0;
  Word ref_value = 0;
  std::string detail;  ///< ready-to-print one-line diagnosis

  [[nodiscard]] bool found() const noexcept { return kind != Kind::kNone; }
};

/// Compares a machine run against the reference; returns the earliest
/// divergence (observed reads are ordered by machine tick across nodes).
[[nodiscard]] Divergence compare_runs(const DrfProgram& prog, const RefResult& ref,
                                      const MachineRunResult& mach,
                                      std::uint32_t block_words);

/// Generates nothing; runs `prog` on `flavor` under `schedule_seed` and
/// compares against `ref`. `base` lets callers inject faults or tracing;
/// when omitted, flavor_config defaults are used.
[[nodiscard]] Divergence diff_one(const DrfProgram& prog, const RefResult& ref,
                                  Flavor flavor, std::uint64_t schedule_seed,
                                  const core::MachineConfig* base = nullptr,
                                  Tick budget = 100'000'000);

}  // namespace bcsim::ref
