#include "ref/drf_program.hpp"

#include <stdexcept>

#include "sim/random.hpp"

namespace bcsim::ref {

const char* to_string(OpKind k) noexcept {
  switch (k) {
    case OpKind::kCompute: return "COMPUTE";
    case OpKind::kWrite: return "WRITE";
    case OpKind::kRead: return "READ";
    case OpKind::kLock: return "LOCK";
    case OpKind::kUnlock: return "UNLOCK";
    case OpKind::kCsAdd: return "CS-ADD";
    case OpKind::kBarrier: return "BARRIER";
    case OpKind::kSemP: return "SEM-P";
    case OpKind::kSemV: return "SEM-V";
  }
  return "?";
}

namespace {

/// Stable hash for write values: distinct, nonzero, platform-independent.
Word value_of(std::uint64_t seed, std::uint32_t node, std::uint32_t phase,
              std::uint32_t slot, std::uint32_t salt) {
  sim::SplitMix64 sm(seed ^ (std::uint64_t{node} << 40) ^ (std::uint64_t{phase} << 24) ^
                     (std::uint64_t{slot} << 8) ^ salt);
  const Word v = sm.next();
  return v == 0 ? 1 : v;
}

}  // namespace

DrfProgram generate_drf_program(std::uint64_t program_seed, const DrfGenConfig& gen) {
  if (gen.n_nodes == 0 || gen.phases == 0 || gen.region_slots == 0) {
    throw std::invalid_argument("drf generator: n_nodes, phases, region_slots must be >= 1");
  }
  if (gen.n_locks == 0 || gen.counters_per_lock == 0) {
    throw std::invalid_argument("drf generator: need at least one lock with one counter");
  }

  DrfProgram p;
  p.program_seed = program_seed;
  p.gen = gen;
  p.n_locks = gen.n_locks;
  p.n_counters = gen.n_locks * gen.counters_per_lock;
  p.counter_lock.resize(p.n_counters);
  for (std::uint32_t c = 0; c < p.n_counters; ++c) {
    p.counter_lock[c] = c / gen.counters_per_lock;
  }

  const std::uint32_t region_per_node = gen.phases * gen.region_slots;
  const std::uint32_t handoff_per_node = gen.phases * gen.handoff_slots;
  const std::uint32_t region_base = p.n_counters;
  const std::uint32_t handoff_base = region_base + gen.n_nodes * region_per_node;
  p.n_vars = handoff_base + gen.n_nodes * handoff_per_node;

  const auto region_var = [&](std::uint32_t node, std::uint32_t phase, std::uint32_t slot) {
    return region_base + node * region_per_node + phase * gen.region_slots + slot;
  };
  const auto handoff_var = [&](std::uint32_t node, std::uint32_t phase, std::uint32_t slot) {
    return handoff_base + node * handoff_per_node + phase * gen.handoff_slots + slot;
  };

  // Ring semaphores start at 0 (pure handoff); the throttle is counting.
  p.n_sems = gen.n_nodes + 1;
  const std::uint32_t throttle = gen.n_nodes;
  p.sem_initial.assign(p.n_sems, 0);
  p.sem_initial[throttle] = gen.throttle_initial;

  p.code.resize(gen.n_nodes);
  for (std::uint32_t n = 0; n < gen.n_nodes; ++n) {
    sim::Rng rng(sim::SplitMix64(program_seed ^ (0x9e1u + n)).next());
    auto& code = p.code[n];
    const std::uint32_t prev = (n + gen.n_nodes - 1) % gen.n_nodes;

    for (std::uint32_t ph = 0; ph < gen.phases; ++ph) {
      // 1. jitter so nodes drift apart inside a phase
      code.push_back({OpKind::kCompute, 1 + static_cast<std::uint32_t>(rng.next_below(8)),
                      0, false});

      // 2. own-region writes: each slot is written exactly once, in its
      //    own phase, which is what makes later-phase reads deterministic.
      for (std::uint32_t j = 0; j < gen.region_slots; ++j) {
        code.push_back({OpKind::kWrite, region_var(n, ph, j),
                        value_of(program_seed, n, ph, j, 0xA), false});
      }

      // 3. handoff produce: write the slots, then signal downstream.
      for (std::uint32_t j = 0; j < gen.handoff_slots; ++j) {
        code.push_back({OpKind::kWrite, handoff_var(n, ph, j),
                        value_of(program_seed, n, ph, j, 0xB), false});
      }
      code.push_back({OpKind::kSemV, n, 0, false});

      // 4. lock-protected counter updates (never nested; any lock order
      //    is safe). Intermediate counter values depend on acquisition
      //    order, so CS reads are not observed — the schedule-independent
      //    fact is the final sum, checked via final memory.
      const auto l = static_cast<std::uint32_t>(rng.next_below(gen.n_locks));
      code.push_back({OpKind::kLock, l, 0, false});
      const std::uint32_t updates = 1 + static_cast<std::uint32_t>(
                                            rng.next_below(gen.counters_per_lock));
      for (std::uint32_t u = 0; u < updates; ++u) {
        const std::uint32_t c = l * gen.counters_per_lock +
                                static_cast<std::uint32_t>(
                                    rng.next_below(gen.counters_per_lock));
        code.push_back({OpKind::kCsAdd, c, 1 + rng.next_below(5), false});
      }
      code.push_back({OpKind::kUnlock, l, 0, false});

      // 5. counting-semaphore throttle (P may block when the pool is dry).
      if (rng.chance(0.5)) {
        code.push_back({OpKind::kSemP, throttle, 0, false});
        code.push_back({OpKind::kCompute,
                        1 + static_cast<std::uint32_t>(rng.next_below(4)), 0, false});
        code.push_back({OpKind::kSemV, throttle, 0, false});
      }

      // 6. handoff consume: the P on the upstream ring semaphore is the
      //    happens-before edge that makes these same-phase reads
      //    deterministic.
      code.push_back({OpKind::kSemP, prev, 0, false});
      for (std::uint32_t j = 0; j < gen.handoff_slots; ++j) {
        code.push_back({OpKind::kRead, handoff_var(prev, ph, j), 0, true});
      }

      // 7. observed region reads: own current slice (program order) or
      //    any node's strictly earlier slice (barrier order).
      for (std::uint32_t r = 0; r < gen.reads_per_phase; ++r) {
        std::uint32_t src_node = n;
        std::uint32_t src_phase = ph;
        if (ph > 0 && rng.chance(0.75)) {
          src_node = static_cast<std::uint32_t>(rng.next_below(gen.n_nodes));
          src_phase = static_cast<std::uint32_t>(rng.next_below(ph));
        }
        const auto j = static_cast<std::uint32_t>(rng.next_below(gen.region_slots));
        code.push_back({OpKind::kRead, region_var(src_node, src_phase, j), 0, true});
      }

      // 8. phase barrier
      code.push_back({OpKind::kBarrier, 0, 0, false});
    }

    // Final sweep: after the last barrier every region write in the whole
    // program is ordered before these reads.
    for (std::uint32_t r = 0; r < gen.final_reads; ++r) {
      const auto src_node = static_cast<std::uint32_t>(rng.next_below(gen.n_nodes));
      const auto src_phase = static_cast<std::uint32_t>(rng.next_below(gen.phases));
      const auto j = static_cast<std::uint32_t>(rng.next_below(gen.region_slots));
      code.push_back({OpKind::kRead, region_var(src_node, src_phase, j), 0, true});
    }
  }
  return p;
}

}  // namespace bcsim::ref
