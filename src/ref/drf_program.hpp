// Data-race-free program IR + generator for differential testing.
//
// The paper's correctness claim (section 3) is conditional: buffered
// consistency with reader-initiated coherence behaves like sequential
// consistency *for properly-synchronized programs*. The differential
// oracle (docs/TESTING.md, "Differential testing") makes that claim
// executable: a seeded generator emits randomized DRF programs in a small
// symbolic IR, and the same program runs both on the full machine and on
// the golden SC reference interpreter (ref_machine.hpp). Because the
// program is DRF *and* every observed read is schedule-independent by
// construction, the two executions must agree on every observed value,
// every final variable, and every final semaphore count — any mismatch is
// a machine bug, never schedule noise.
//
// The IR is symbolic: operations name variables, locks, semaphores, and
// the (single, global) barrier by id, not by address. Each executor maps
// ids onto its own address layout (the machine places CBL counters inside
// the lock block so the data rides the grant; the reference needs no
// addresses at all). This keeps one program comparable across machines
// whose lock implementations allocate memory differently.
//
// Generated program shape (per node, per phase, everything seeded):
//   1. jittered compute
//   2. writes to the node's own region slice for this phase
//   3. handoff produce: write handoff slots, then V the node's ring
//      semaphore
//   4. a lock-protected critical section: fetch-add style updates to the
//      lock's counters (final values are schedule-independent sums;
//      intermediate reads are not observed)
//   5. optionally a P ... V pass through the counting throttle semaphore
//   6. handoff consume: P the upstream neighbor's ring semaphore, then
//      *observed* reads of the slots it produced this phase (ordered by
//      the semaphore's happens-before edge)
//   7. observed reads of region slices from strictly earlier phases
//      (ordered by the interphase barrier) and of the node's own current
//      slice (ordered by program order)
//   8. global barrier
// plus a final observed sweep over random region slices after the last
// barrier, when every write in the program has been performed.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace bcsim::ref {

enum class OpKind : std::uint8_t {
  kCompute,  ///< id = cycles of local work
  kWrite,    ///< id = var, value = word to store (single static writer)
  kRead,     ///< id = var; `observed` reads enter the comparison stream
  kLock,     ///< id = lock (exclusive; generator never nests locks)
  kUnlock,   ///< id = lock
  kCsAdd,    ///< id = counter var, value = delta; only under the owning lock
  kBarrier,  ///< global barrier over all nodes (id unused)
  kSemP,     ///< id = semaphore
  kSemV,     ///< id = semaphore
};

[[nodiscard]] const char* to_string(OpKind k) noexcept;

struct DrfOp {
  OpKind kind = OpKind::kCompute;
  std::uint32_t id = 0;
  Word value = 0;
  bool observed = false;
};

/// Generator knobs (docs/TESTING.md lists what each one stresses).
struct DrfGenConfig {
  std::uint32_t n_nodes = 8;
  std::uint32_t phases = 3;
  std::uint32_t region_slots = 2;   ///< own-region writes per node per phase
  std::uint32_t handoff_slots = 2;  ///< semaphore-ordered slots per phase
  std::uint32_t n_locks = 2;
  std::uint32_t counters_per_lock = 2;
  std::uint32_t reads_per_phase = 3;  ///< observed old-slice reads per phase
  std::uint32_t final_reads = 4;      ///< observed sweep after the last barrier
  Word throttle_initial = 2;          ///< counting semaphore initial value
};

struct DrfProgram {
  std::uint64_t program_seed = 0;
  DrfGenConfig gen;

  // Variable ids: counters occupy [0, n_counters); region and handoff
  // words follow. counter_lock maps each counter to the lock that guards
  // it (used by the machine layout to colocate data with a CBL lock).
  std::uint32_t n_vars = 0;
  std::uint32_t n_counters = 0;
  std::vector<std::uint32_t> counter_lock;

  std::uint32_t n_locks = 0;
  /// Ring semaphores [0, n_nodes) (node i signals sem i, node (i+1)%n
  /// waits on it), then the counting throttle semaphore.
  std::uint32_t n_sems = 0;
  std::vector<Word> sem_initial;

  std::vector<std::vector<DrfOp>> code;  ///< per-node op list

  [[nodiscard]] std::uint64_t ops_total() const noexcept {
    std::uint64_t t = 0;
    for (const auto& c : code) t += c.size();
    return t;
  }
};

/// Deterministically generates a DRF program from a seed. Identical
/// (seed, gen) pairs produce identical programs on every platform.
[[nodiscard]] DrfProgram generate_drf_program(std::uint64_t program_seed,
                                              const DrfGenConfig& gen = {});

}  // namespace bcsim::ref
