#include "analytic/table3.hpp"

namespace bcsim::analytic {

SyncCost wbi_cost(SyncScenario s, std::uint32_t n, const TimeConstants& t) {
  const double dn = n;
  switch (s) {
    case SyncScenario::kParallelLock:
      return {6 * dn * dn + 4 * dn,
              dn * t.t_cs + 10 * dn * t.t_nw + dn * (dn + 1) / 2 * t.t_m +
                  5 * dn * (5 * dn - 1) / 2 * t.t_d};
    case SyncScenario::kSerialLock:
      return {8, 8 * t.t_nw + 5 * t.t_d + t.t_m + t.t_cs};
    case SyncScenario::kBarrierRequest:
      return {18, 18 * t.t_nw + 12 * t.t_d};
    case SyncScenario::kBarrierNotify:
      return {5 * dn - 3, 4 * t.t_nw + (2 * dn - 1) * t.t_d};
  }
  return {};
}

SyncCost cbl_cost(SyncScenario s, std::uint32_t n, const TimeConstants& t) {
  const double dn = n;
  switch (s) {
    case SyncScenario::kParallelLock:
      return {6 * dn - 3,
              dn * t.t_cs + (2 * dn + 1) * t.t_nw + (dn + 1) * t.t_d + t.t_m};
    case SyncScenario::kSerialLock:
      return {3, 3 * t.t_nw + t.t_d + t.t_cs};
    case SyncScenario::kBarrierRequest:
      return {2, 2 * (t.t_nw + t.t_m)};
    case SyncScenario::kBarrierNotify:
      return {dn, 2 * t.t_nw + (dn - 1) * t.t_d};
  }
  return {};
}

}  // namespace bcsim::analytic
