// Analytical cost model of paper Table 3: messages and time for executing
// synchronization scenarios under WBI (spin locks on a write-back
// invalidate cache) vs CBL (the cache-based queued lock).
//
// Scenarios: parallel lock (n processors request the same lock at once;
// totals), serial lock (one uncontended acquire/release; per processor),
// barrier request (per arriving processor), barrier notify (the last
// arriver's release; totals).
//
// Time parameters (paper notation): t_nw network transit, t_cs time inside
// the critical section, t_D directory/cache-directory check, t_m memory
// block read.
#pragma once

#include <cstdint>
#include <string_view>

namespace bcsim::analytic {

struct TimeConstants {
  double t_nw = 6.0;  ///< network transit
  double t_cs = 50.0; ///< critical section
  double t_d = 1.0;   ///< directory check
  double t_m = 4.0;   ///< memory block read
};

enum class SyncScenario { kParallelLock, kSerialLock, kBarrierRequest, kBarrierNotify };

[[nodiscard]] constexpr std::string_view to_string(SyncScenario s) noexcept {
  switch (s) {
    case SyncScenario::kParallelLock: return "parallel lock";
    case SyncScenario::kSerialLock: return "serial lock";
    case SyncScenario::kBarrierRequest: return "barrier request";
    case SyncScenario::kBarrierNotify: return "barrier notify";
  }
  return "?";
}

struct SyncCost {
  double messages = 0;
  double time = 0;
};

/// Paper Table 3, WBI column.
[[nodiscard]] SyncCost wbi_cost(SyncScenario s, std::uint32_t n, const TimeConstants& t = {});
/// Paper Table 3, CBL column.
[[nodiscard]] SyncCost cbl_cost(SyncScenario s, std::uint32_t n, const TimeConstants& t = {});

}  // namespace bcsim::analytic
