// Analytical cost model of paper Table 2: per-processor network traffic
// for one iteration of the n-processor linear equation solver under three
// coherence schemes — read-update, inv-I (x vector colocated), and inv-II
// (one x element per block).
//
// Cost constants (paper notation): C_B block transfer, C_W word transfer,
// C_I invalidation, C_R transaction carrying no data. `B` is the cache
// line size in words. The paper's `p||transaction` notation (p transfers
// proceeding in parallel) is captured twice: `traffic()` counts every
// message (network load), `latency()` counts parallel groups once
// (critical path).
#pragma once

#include <cstdint>
#include <string_view>

namespace bcsim::analytic {

struct CostConstants {
  double c_block = 6.0;  ///< C_B
  double c_word = 2.0;   ///< C_W
  double c_inv = 1.0;    ///< C_I
  double c_req = 1.0;    ///< C_R
};

enum class Scheme { kReadUpdate, kInvColocated, kInvSeparate };

[[nodiscard]] constexpr std::string_view to_string(Scheme s) noexcept {
  switch (s) {
    case Scheme::kReadUpdate: return "read-update";
    case Scheme::kInvColocated: return "inv-I";
    case Scheme::kInvSeparate: return "inv-II";
  }
  return "?";
}

struct SolverCosts {
  double initial_load = 0;  ///< one-time, per processor
  double write = 0;         ///< per iteration, per processor
  double read = 0;          ///< per iteration, per processor (next iteration's reads)
};

/// Table 2 rows, counting every message (network traffic).
[[nodiscard]] SolverCosts solver_traffic(Scheme s, std::uint32_t n, std::uint32_t B,
                                         const CostConstants& c = {});

/// Table 2 rows, counting parallel transfers once (latency view).
[[nodiscard]] SolverCosts solver_latency(Scheme s, std::uint32_t n, std::uint32_t B,
                                         const CostConstants& c = {});

}  // namespace bcsim::analytic
