#include "analytic/network_model.hpp"

#include <bit>
#include <limits>

namespace bcsim::analytic {

std::uint32_t OmegaModel::stages() const noexcept {
  const std::uint32_t n = n_nodes < 2 ? 2 : n_nodes;
  return static_cast<std::uint32_t>(std::bit_width(std::bit_ceil(n) - 1));
}

double OmegaModel::base_latency() const noexcept {
  return stages() * switch_delay + (service - 1.0);
}

double OmegaModel::stage_wait(double rho) const noexcept {
  if (rho <= 0.0) return 0.0;
  if (rho >= 1.0) return std::numeric_limits<double>::infinity();
  return rho * service / (2.0 * (1.0 - rho));
}

double OmegaModel::latency(double rho) const noexcept {
  if (rho >= 1.0) return std::numeric_limits<double>::infinity();
  return stages() * (switch_delay + stage_wait(rho)) + (service - 1.0);
}

double OmegaModel::hotspot_rho(double rho, double hot) const noexcept {
  return rho * (hot * n_nodes + (1.0 - hot));
}

double OmegaModel::hotspot_saturation(double hot) const noexcept {
  return 1.0 / (hot * n_nodes + (1.0 - hot));
}

double OmegaModel::hotspot_latency(double rho, double hot) const noexcept {
  const double rho_hot = hotspot_rho(rho, hot);
  if (rho_hot >= 1.0) return std::numeric_limits<double>::infinity();
  // The hot path's stages see geometrically combining load: stage j from
  // the destination carries the traffic of 2^j leaves, capped at rho_hot.
  double total = service - 1.0;
  const std::uint32_t k = stages();
  for (std::uint32_t j = 0; j < k; ++j) {
    const double fan = static_cast<double>(1u << (k - 1 - j));  // leaves feeding stage j
    double rho_j = rho * (hot * (static_cast<double>(n_nodes) / fan) + (1.0 - hot));
    if (rho_j > rho_hot) rho_j = rho_hot;
    total += switch_delay + stage_wait(rho_j < 0.0 ? 0.0 : rho_j);
  }
  return total;
}

}  // namespace bcsim::analytic
