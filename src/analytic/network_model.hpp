// Analytical latency model of the multistage Omega network, in the style
// of the classic delta-network analyses the paper's evaluation leans on
// (Pfister & Norton's hot-spot treatment, Kruskal/Snir-style stage
// queueing). Used to sanity-check the simulator's contention behavior and
// to let users size machines without running a simulation.
//
// Model: k = log2(N) stages of 2x2 switches; each output port is an
// M/D/1-like queue with deterministic service time `s` (the message's flit
// count) and per-port utilization rho. Under uniform random traffic every
// port sees the same load; the expected waiting time per stage is the
// M/D/1 result W = rho * s / (2 (1 - rho)), and the end-to-end latency is
//
//   L(rho) = k * (t_sw + W(rho)) + (s - 1).
//
// For hot-spot traffic (a fraction h of all messages target one module),
// the saturation bound of Pfister & Norton applies: the hot module's input
// link carries rho_hot = rho * (h * N + (1 - h)) — throughput saturates
// when rho_hot reaches 1, at offered load 1 / (h N + 1 - h).
#pragma once

#include <cstdint>

namespace bcsim::analytic {

struct OmegaModel {
  std::uint32_t n_nodes = 64;  ///< endpoints (rounded up to a power of two)
  double switch_delay = 1.0;   ///< t_sw: header latency per stage
  double service = 1.0;        ///< s: flits per message (port occupancy)

  /// Number of stages k = ceil(log2(max(n_nodes, 2))).
  [[nodiscard]] std::uint32_t stages() const noexcept;

  /// Zero-load end-to-end latency (header through k stages + tail flits).
  [[nodiscard]] double base_latency() const noexcept;

  /// Expected per-stage queueing delay at utilization rho in [0, 1).
  [[nodiscard]] double stage_wait(double rho) const noexcept;

  /// Expected end-to-end latency under uniform traffic at utilization rho.
  /// Returns +inf for rho >= 1 (saturated).
  [[nodiscard]] double latency(double rho) const noexcept;

  /// Effective utilization of the hottest link when a fraction `hot` of
  /// the offered load `rho` targets a single module (Pfister-Norton).
  [[nodiscard]] double hotspot_rho(double rho, double hot) const noexcept;

  /// Offered load at which hot-spot traffic saturates the network.
  [[nodiscard]] double hotspot_saturation(double hot) const noexcept;

  /// Expected latency with a hot-spot fraction `hot` (the hottest path's
  /// final stage dominates; earlier stages see tree-combined load).
  [[nodiscard]] double hotspot_latency(double rho, double hot) const noexcept;
};

}  // namespace bcsim::analytic
