#include "analytic/table2.hpp"

#include <cmath>
#include <stdexcept>

namespace bcsim::analytic {

namespace {
double ceil_div(std::uint32_t a, std::uint32_t b) {
  return static_cast<double>((a + b - 1) / b);
}
}  // namespace

SolverCosts solver_traffic(Scheme s, std::uint32_t n, std::uint32_t B,
                           const CostConstants& c) {
  if (n == 0 || B == 0) throw std::invalid_argument("solver costs: n and B must be positive");
  const double dn = n;
  SolverCosts out;
  switch (s) {
    case Scheme::kReadUpdate:
      // initial: ceil(n/B) * C_B ; write: C_W + (n-1)||C_B ; read: —
      out.initial_load = ceil_div(n, B) * c.c_block;
      out.write = c.c_word + (dn - 1) * c.c_block;
      out.read = 0.0;
      break;
    case Scheme::kInvColocated: {
      // initial: ceil(n/B) * C_B
      // write: (1/B)(C_R + (n-1)||C_I) + ((B-1)/B)(2C_R + 2C_B)
      // read: (1/B)(ceil(n/B)-1)C_B + ((B-1)/B) ceil(n/B) C_B
      const double fB = 1.0 / B;
      out.initial_load = ceil_div(n, B) * c.c_block;
      out.write = fB * (c.c_req + (dn - 1) * c.c_inv) +
                  (1.0 - fB) * (2 * c.c_req + 2 * c.c_block);
      out.read = fB * (ceil_div(n, B) - 1) * c.c_block +
                 (1.0 - fB) * ceil_div(n, B) * c.c_block;
      break;
    }
    case Scheme::kInvSeparate:
      // initial: n C_B ; write: C_R + (n-1)||C_I ; read: (n-1) C_B
      out.initial_load = dn * c.c_block;
      out.write = c.c_req + (dn - 1) * c.c_inv;
      out.read = (dn - 1) * c.c_block;
      break;
  }
  return out;
}

SolverCosts solver_latency(Scheme s, std::uint32_t n, std::uint32_t B,
                           const CostConstants& c) {
  // Identical formulas with each p||transaction group counted once.
  SolverCosts out = solver_traffic(s, n, B, c);
  const double dn = n;
  switch (s) {
    case Scheme::kReadUpdate:
      out.write = c.c_word + c.c_block;  // the n-1 block sends overlap
      break;
    case Scheme::kInvColocated: {
      const double fB = 1.0 / B;
      out.write = fB * (c.c_req + c.c_inv) + (1.0 - fB) * (2 * c.c_req + 2 * c.c_block);
      break;
    }
    case Scheme::kInvSeparate:
      out.write = c.c_req + c.c_inv;
      break;
  }
  static_cast<void>(dn);
  return out;
}

}  // namespace bcsim::analytic
