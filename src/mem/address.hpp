// Address arithmetic: words <-> blocks <-> home memory modules.
//
// The machine is word-addressed. A block (cache line) is `block_words`
// consecutive words; blocks are interleaved across the nodes' memory module
// slices (home = block mod n_nodes), the standard layout for a distributed
// shared memory.
#pragma once

#include <cassert>
#include <cstdint>

#include "sim/types.hpp"

namespace bcsim::mem {

class AddressMap {
 public:
  AddressMap(std::uint32_t block_words, std::uint32_t n_nodes) noexcept
      : block_words_(block_words), n_nodes_(n_nodes) {
    assert(block_words >= 1);
    assert(n_nodes >= 1);
  }

  [[nodiscard]] std::uint32_t block_words() const noexcept { return block_words_; }
  [[nodiscard]] std::uint32_t n_nodes() const noexcept { return n_nodes_; }

  [[nodiscard]] BlockId block_of(Addr a) const noexcept { return a / block_words_; }
  [[nodiscard]] std::uint32_t word_of(Addr a) const noexcept {
    return static_cast<std::uint32_t>(a % block_words_);
  }
  [[nodiscard]] Addr base_of(BlockId b) const noexcept {
    return static_cast<Addr>(b) * block_words_;
  }
  /// Node whose memory module slice holds this block.
  [[nodiscard]] NodeId home_of(BlockId b) const noexcept {
    return static_cast<NodeId>(b % n_nodes_);
  }

 private:
  std::uint32_t block_words_;
  std::uint32_t n_nodes_;
};

}  // namespace bcsim::mem
