// One node's slice of the distributed main memory: data storage + timing.
//
// Storage is sparse (only touched blocks exist; untouched words read as 0,
// like zero-initialized memory). Timing follows the paper's model: a
// directory lookup costs t_D and a data access costs t_m (Table 4: main
// memory cycle time = 4 cache cycles). The module is a single-ported
// resource: overlapping requests serialize, and busy_until() exposes the
// queue so the directory controller charges honest latencies.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/message.hpp"
#include "sim/types.hpp"

namespace bcsim::mem {

class MemoryModule {
 public:
  MemoryModule(std::uint32_t block_words, Tick t_directory, Tick t_memory)
      : block_words_(block_words), t_directory_(t_directory), t_memory_(t_memory) {}

  [[nodiscard]] std::uint32_t block_words() const noexcept { return block_words_; }
  [[nodiscard]] Tick t_directory() const noexcept { return t_directory_; }
  [[nodiscard]] Tick t_memory() const noexcept { return t_memory_; }

  /// Reads a whole block into a message payload.
  [[nodiscard]] net::BlockData read_block(BlockId b) const {
    net::BlockData out;
    out.count = static_cast<std::uint8_t>(block_words_);
    if (auto it = blocks_.find(b); it != blocks_.end()) {
      for (std::uint32_t i = 0; i < block_words_; ++i) out.words[i] = it->second[i];
    }
    return out;
  }

  [[nodiscard]] Word read_word(BlockId b, std::uint32_t word) const {
    if (auto it = blocks_.find(b); it != blocks_.end()) return it->second[word];
    return 0;
  }

  void write_word(BlockId b, std::uint32_t word, Word value) {
    storage_of(b)[word] = value;
  }

  /// Writes back a block, honoring per-word dirty bits: only words whose
  /// bit is set in `dirty_mask` are stored. This is the mechanism that
  /// makes delayed writes from different nodes to the same block merge
  /// instead of losing updates (paper section 3, issue 6 / false sharing).
  void write_block_masked(BlockId b, const net::BlockData& data, std::uint32_t dirty_mask) {
    if (dirty_mask == 0) return;
    auto& w = storage_of(b);
    for (std::uint32_t i = 0; i < block_words_ && i < data.count; ++i) {
      if (dirty_mask & (1u << i)) w[i] = data.words[i];
    }
  }

  /// Serializes a request needing `service` cycles of module time starting
  /// no earlier than `now`; returns the completion tick.
  Tick occupy(Tick now, Tick service) noexcept {
    const Tick start = busy_until_ > now ? busy_until_ : now;
    busy_until_ = start + service;
    return busy_until_;
  }

  [[nodiscard]] Tick busy_until() const noexcept { return busy_until_; }
  [[nodiscard]] std::size_t resident_blocks() const noexcept { return blocks_.size(); }

 private:
  std::vector<Word>& storage_of(BlockId b) {
    auto [it, inserted] = blocks_.try_emplace(b);
    if (inserted) it->second.assign(block_words_, 0);
    return it->second;
  }

  std::uint32_t block_words_;
  Tick t_directory_;
  Tick t_memory_;
  Tick busy_until_ = 0;
  std::unordered_map<BlockId, std::vector<Word>> blocks_;
};

}  // namespace bcsim::mem
