// Central directory entry (paper Figure 2b: usage bit + queue pointer),
// plus the authoritative protocol state the simulator keeps per block.
//
// The paper's hardware stores only {usage bit, queue pointer} centrally and
// distributes the rest of the queue through cache-line pointers. The
// simulator additionally mirrors the full queue here: the directory is the
// serialization point for membership changes anyway, so this mirror is
// exact, and it is what lets tests state global invariants ("exactly one
// write holder", "subscription list acyclic") cheaply. The distributed
// pointers in the caches are still maintained and used for the actual
// grant/handoff/update message flows.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "net/message.hpp"
#include "sim/types.hpp"

namespace bcsim::mem {

/// WBI directory states.
enum class DirState : std::uint8_t {
  kUncached,
  kShared,
  kModified,
  kBusyRecall,  ///< recall to the owner outstanding
  kBusyRmw,     ///< invalidations for an RMW outstanding (acks come here)
};

/// A member of the CBL lock queue as the directory sees it.
struct LockChainNode {
  NodeId node = kNoNode;
  net::LockMode mode = net::LockMode::kRead;
};

struct DirectoryEntry {
  // ---- WBI (baseline protocol) ----
  DirState state = DirState::kUncached;
  std::vector<NodeId> sharers;      ///< full-map sharer set (kShared)
  NodeId owner = kNoNode;           ///< exclusive owner (kModified)

  // Transaction in flight while kBusyRecall / kBusyRmw.
  net::Message pending{};           ///< original request being serviced
  std::uint32_t acks_outstanding = 0;

  /// Requests that arrived while the entry was busy; drained FIFO when the
  /// entry becomes stable again (the paper assumes infinite buffers, so
  /// queuing — not NACKing — is the faithful model).
  std::deque<net::Message> blocked;

  // ---- paper Figure 2b ----
  /// usage bit: false = queue pointer threads the read-update subscriber
  /// list; true = it threads a lock queue.
  bool usage_lock = false;

  // ---- read-update subscription list (authoritative mirror) ----
  /// Subscribers, head first. The head is what the hardware queue pointer
  /// stores; new subscribers push at the front (cheapest hardware insert).
  std::vector<NodeId> ru_list;
  /// Monotonic write version for this block. Carried in every RuUpdate so
  /// subscribers never apply an older block snapshot over a newer one
  /// (two writes by different writers propagate along different hop
  /// sequences, so per-link FIFO alone cannot order them).
  std::uint64_t ru_version = 0;

  // ---- CBL lock queue (authoritative mirror) ----
  /// Grant-order chain: the first `lock_holders` entries currently hold the
  /// lock; the rest wait. The hardware queue pointer is chain.back().
  std::vector<LockChainNode> lock_chain;
  std::uint32_t lock_holders = 0;
  /// Block is being written back to memory after the final unlock; lock
  /// requests arriving in this window are queued in `blocked`.
  bool lock_writeback_pending = false;
  /// Set while a holder exists whose cached copy may differ from memory.
  bool lock_data_stale = false;

  // ---- barrier support ----
  std::uint32_t barrier_count = 0;
  std::vector<NodeId> barrier_waiters;

  [[nodiscard]] bool busy() const noexcept {
    return state == DirState::kBusyRecall || state == DirState::kBusyRmw ||
           lock_writeback_pending;
  }
  [[nodiscard]] bool lock_queue_empty() const noexcept { return lock_chain.empty(); }
  [[nodiscard]] NodeId lock_tail() const noexcept {
    return lock_chain.empty() ? kNoNode : lock_chain.back().node;
  }
};

}  // namespace bcsim::mem
