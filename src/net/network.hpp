// Abstract interconnection network.
//
// The network connects n endpoints (one per node; each node hosts a cache
// controller and a memory module slice, selected by Message::unit). send()
// computes the delivery time — including any queuing delay from contention —
// and schedules the destination's handler. Messages between co-located
// units (src == dst) bypass the network with a fixed local latency, which
// models the paper's distributed-memory configuration.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/message.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace bcsim::net {

/// Handler invoked at the destination when a message arrives.
using DeliverFn = std::function<void(const Message&)>;

/// Free-list pool of in-flight Messages. A Message is ~350 bytes (block
/// payload + chain vector), so carrying one inside every delivery closure
/// used to mean a heap allocation per send and a free per delivery. The
/// pool recycles the objects instead: the closure captures a bare pointer
/// (which also keeps it inside EventFn's inline buffer) and the pool's
/// steady state allocates nothing.
class MessagePool {
 public:
  /// Moves `m` into a pooled slot and returns its stable address.
  Message* acquire(Message&& m) {
    if (free_.empty()) {
      storage_.push_back(std::make_unique<Message>(std::move(m)));
      free_.reserve(storage_.size());  // keeps release() allocation-free
      return storage_.back().get();
    }
    Message* p = free_.back();
    free_.pop_back();
    *p = std::move(m);
    return p;
  }

  /// Returns a message to the pool. `p` must come from acquire().
  void release(Message* p) noexcept {
    p->chain.clear();
    p->data.count = 0;
    free_.push_back(p);  // cannot allocate: capacity covers every slot
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return storage_.size(); }

 private:
  std::vector<std::unique_ptr<Message>> storage_;
  std::vector<Message*> free_;
};

class Network {
 public:
  Network(sim::Simulator& simulator, sim::StatsRegistry& stats, std::uint32_t n_nodes);
  virtual ~Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers the consumer for (node, unit). Must be called for every
  /// endpoint before the first send.
  void attach(NodeId node, Unit unit, DeliverFn fn);

  /// Injects a message; delivery is scheduled on the simulator.
  void send(Message msg);

  /// Injects `msg` at absolute tick `at` (>= now). The deferred injection
  /// event is tied to the message's ordering channel: two delayed sends on
  /// one (src, dst, unit) link inject — and therefore arrive — in the order
  /// they were scheduled, under every schedule seed. Controllers that model
  /// service time before a reply (e.g. a memory access) must use this
  /// rather than a bare simulator callback, or a schedule seed could
  /// reorder their replies on the wire.
  void send_at(Tick at, Message msg);

  /// Ordering channel of a message: one FIFO per (src, dst, unit).
  [[nodiscard]] static std::uint64_t channel_of(const Message& m) noexcept {
    return (static_cast<std::uint64_t>(m.src) << 33) |
           (static_cast<std::uint64_t>(m.dst) << 1) | (m.unit == Unit::kMemory ? 1u : 0u);
  }

  [[nodiscard]] std::uint32_t n_nodes() const noexcept { return n_nodes_; }

  /// Lower bound on the latency of any remote (src != dst) message — the
  /// sharded kernel's conservative lookahead: no event can create work for
  /// another shard sooner than this many cycles in the future.
  [[nodiscard]] virtual Tick min_remote_latency() const noexcept = 0;

  /// Sizes the per-shard send-side resources for the sharded kernel:
  /// `lanes[s]` is shard s's private stats registry (send counters land
  /// there, lock-free; the machine folds the lanes after the run) and each
  /// shard gets a private in-flight message pool. Must be called before
  /// the first send; without it the network runs in serial mode (one lane
  /// bound to the main registry).
  void configure_shards(const std::vector<sim::StatsRegistry*>& lanes);

  /// Service time (flits) a message of this size occupies a switch port.
  [[nodiscard]] Tick flits_of(const Message& m) const noexcept;

 protected:
  /// Computes the arrival tick for a message injected now; subclasses model
  /// topology and contention here. Local (src==dst) traffic never reaches
  /// this.
  virtual Tick route(const Message& m, Tick now) = 0;

  /// Charges queuing delay to the contention counter (cached handle; this
  /// sits inside every route() implementation's hot loop).
  void count_contention(Tick waited) noexcept { c_contention_->add(waited); }

  sim::Simulator& simulator_;
  sim::StatsRegistry& stats_;
  Tick block_words_ = 4;  ///< for flit accounting of block payloads

 public:
  void set_block_words(Tick w) noexcept { block_words_ = w; }
  /// Local (same-node) unit-to-unit latency in cycles.
  static constexpr Tick kLocalLatency = 1;

 private:
  /// Per-shard send-side state: counter handles into the shard's lane
  /// registry (resolved once — the registry lookup used to run per message
  /// on the simulator's hottest path) plus the lazily filled per-type
  /// counters. Serial mode has exactly one lane, bound to the main
  /// registry, so the serial hot path is unchanged.
  struct SendLane {
    sim::StatsRegistry* registry = nullptr;
    sim::Counter* messages = nullptr;
    sim::Counter* sync = nullptr;
    sim::Counter* data = nullptr;
    sim::Counter* local = nullptr;
    std::array<sim::Counter*, kMsgTypeCount> by_type{};  ///< lazily filled
  };

  void deliver(const Message& m);
  /// Cold path of the per-type counters: registers "net.msg.<type>" on the
  /// type's first send in this lane, so the stats report lists exactly the
  /// types a run actually produced.
  static sim::Counter& register_type_counter(SendLane& lane, MsgType t);
  [[nodiscard]] static SendLane make_lane(sim::StatsRegistry& registry);
  /// Serial-context remote path (the whole path in the serial kernel; the
  /// window-barrier replay in the sharded one): charges the remote
  /// counters, routes against the shared contention state, and schedules
  /// delivery on the destination's shard.
  void route_and_deliver(Message msg, Tick send_tick);

  std::uint32_t n_nodes_;
  std::vector<MessagePool> pools_;  ///< in-flight messages, one pool per shard
  std::vector<DeliverFn> cache_sinks_;
  std::vector<DeliverFn> memory_sinks_;
  std::vector<SendLane> lanes_;  ///< [shard]; size 1 in serial mode

  // Remote-path handles (main registry): only touched from serial context —
  // routing is inherently global, so the sharded kernel replays it at the
  // window barrier.
  sim::Counter* c_remote_;
  sim::Counter* c_flits_;
  sim::Counter* c_contention_;
  sim::Histogram* h_latency_;
};

/// Ideal network: fixed latency, no contention. Used by unit tests (exact
/// timing is easy to predict) and as the "infinite bandwidth" ablation.
class IdealNetwork final : public Network {
 public:
  IdealNetwork(sim::Simulator& simulator, sim::StatsRegistry& stats, std::uint32_t n_nodes,
               Tick latency)
      : Network(simulator, stats, n_nodes), latency_(latency) {}

  [[nodiscard]] Tick min_remote_latency() const noexcept override { return latency_; }

 protected:
  Tick route(const Message&, Tick now) override { return now + latency_; }

 private:
  Tick latency_;
};

/// Multistage Omega network of 2x2 switches (the paper's interconnect).
///
/// Endpoints are padded to the next power of two; k = log2(N) stages with a
/// perfect-shuffle permutation before each stage and destination-tag
/// routing. Each switch output port is a FIFO with infinite buffering (per
/// the paper): a message waits until the port is free, then occupies it for
/// its flit count (cut-through). The header advances one stage per
/// `switch_delay` cycles.
class OmegaNetwork final : public Network {
 public:
  OmegaNetwork(sim::Simulator& simulator, sim::StatsRegistry& stats, std::uint32_t n_nodes,
               Tick switch_delay = 1);

  /// Every remote message crosses all log2(N) stages; contention and the
  /// tail flit only add to that.
  [[nodiscard]] Tick min_remote_latency() const noexcept override {
    return static_cast<Tick>(stages_) * switch_delay_;
  }

 protected:
  Tick route(const Message& m, Tick now) override;

 private:
  std::uint32_t width_;        ///< padded endpoint count (power of two)
  std::uint32_t stages_;       ///< log2(width_)
  Tick switch_delay_;
  std::vector<Tick> port_free_;  ///< [stage * width_ + wire] -> busy-until

  [[nodiscard]] std::uint32_t rotl_bits(std::uint32_t w) const noexcept {
    return ((w << 1) | (w >> (stages_ - 1))) & (width_ - 1);
  }
};

/// 2D mesh with dimension-order (XY) routing: nodes are laid out on a
/// near-square grid; a message first travels along X, then along Y. Each
/// directed link is a FIFO resource (infinite buffering, cut-through).
/// Included as the directly-wired alternative to the Omega network — the
/// paper leaves the interconnect "intentionally unspecified".
class MeshNetwork final : public Network {
 public:
  MeshNetwork(sim::Simulator& simulator, sim::StatsRegistry& stats, std::uint32_t n_nodes,
              Tick hop_delay = 1);

  [[nodiscard]] std::uint32_t columns() const noexcept { return cols_; }
  [[nodiscard]] std::uint32_t rows() const noexcept { return rows_; }

  /// A remote message traverses at least one link.
  [[nodiscard]] Tick min_remote_latency() const noexcept override { return hop_delay_; }

 protected:
  Tick route(const Message& m, Tick now) override;

 private:
  /// Directed link leaving (x,y) in direction d (0:+x 1:-x 2:+y 3:-y).
  [[nodiscard]] std::size_t link_index(std::uint32_t x, std::uint32_t y,
                                       std::uint32_t d) const noexcept {
    return (static_cast<std::size_t>(y) * cols_ + x) * 4 + d;
  }

  std::uint32_t cols_;
  std::uint32_t rows_;
  Tick hop_delay_;
  std::vector<Tick> link_free_;
};

/// Single-stage crossbar: contention only at the destination port.
class CrossbarNetwork final : public Network {
 public:
  CrossbarNetwork(sim::Simulator& simulator, sim::StatsRegistry& stats, std::uint32_t n_nodes,
                  Tick latency = 2);

  [[nodiscard]] Tick min_remote_latency() const noexcept override { return latency_; }

 protected:
  Tick route(const Message& m, Tick now) override;

 private:
  Tick latency_;
  std::vector<Tick> port_free_;
};

}  // namespace bcsim::net
