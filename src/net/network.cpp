#include "net/network.hpp"

#include <bit>
#include <stdexcept>
#include <string>

#include "sim/log.hpp"

namespace bcsim::net {

Network::Network(sim::Simulator& simulator, sim::StatsRegistry& stats, std::uint32_t n_nodes)
    : simulator_(simulator), stats_(stats), n_nodes_(n_nodes),
      pools_(1),
      cache_sinks_(n_nodes), memory_sinks_(n_nodes),
      lanes_{make_lane(stats)},
      c_remote_(&stats.counter("net.remote")),
      c_flits_(&stats.counter("net.flits")),
      c_contention_(&stats.counter("net.contention_cycles")),
      h_latency_(&stats.histogram("net.latency")) {
  if (n_nodes == 0) throw std::invalid_argument("Network: need at least one node");
}

Network::SendLane Network::make_lane(sim::StatsRegistry& registry) {
  SendLane lane;
  lane.registry = &registry;
  lane.messages = &registry.counter("net.messages");
  lane.sync = &registry.counter("net.sync_messages");
  lane.data = &registry.counter("net.data_messages");
  lane.local = &registry.counter("net.local");
  return lane;
}

void Network::configure_shards(const std::vector<sim::StatsRegistry*>& lanes) {
  if (lanes.empty()) return;
  lanes_.clear();
  lanes_.reserve(lanes.size());
  for (sim::StatsRegistry* r : lanes) lanes_.push_back(make_lane(*r));
  pools_ = std::vector<MessagePool>(lanes.size());
}

sim::Counter& Network::register_type_counter(SendLane& lane, MsgType t) {
  std::string name("net.msg.");
  name += to_string(t);
  sim::Counter& c = lane.registry->counter(name);
  lane.by_type[static_cast<std::size_t>(t)] = &c;
  return c;
}

void Network::attach(NodeId node, Unit unit, DeliverFn fn) {
  auto& sinks = (unit == Unit::kCache) ? cache_sinks_ : memory_sinks_;
  sinks.at(node) = std::move(fn);
}

Tick Network::flits_of(const Message& m) const noexcept {
  switch (size_class(m)) {
    case SizeClass::kControl: return 1;
    case SizeClass::kWord: return 2;
    case SizeClass::kBlock: return 1 + block_words_;
  }
  return 1;
}

void Network::send(Message msg) {
  SendLane& lane = lanes_[simulator_.current_shard()];
  lane.messages->add();
  (is_sync_message(msg.type) ? lane.sync : lane.data)->add();
  if (sim::Counter* c = lane.by_type[static_cast<std::size_t>(msg.type)]) {
    c->add();
  } else {
    register_type_counter(lane, msg.type).add();
  }
  const Tick now = simulator_.now();
  simulator_.trace().msg(sim::TraceKind::kMsgSend, now, static_cast<std::uint8_t>(msg.type),
                         msg.src, msg.dst, msg.unit == Unit::kMemory, msg.block, msg.txn);
  if (msg.src == msg.dst) {
    lane.local->add();
    // Delivery rides the message's ordering channel: a schedule seed may
    // permute deliveries racing on different links, but messages on one
    // point-to-point link stay FIFO — the hardware guarantee the protocols
    // are built on. The in-flight message lives in the pool; the closure
    // carries only a pointer, keeping it inside EventFn's inline storage.
    // Local traffic never leaves its shard, so the pool index is the
    // sending shard's.
    const Tick arrive = now + kLocalLatency;
    const std::uint64_t channel = channel_of(msg);
    const std::uint32_t shard = simulator_.current_shard();
    Message* pm = pools_[shard].acquire(std::move(msg));
    simulator_.schedule_at_channel(arrive, channel, [this, pm, shard] {
      deliver(*pm);
      pools_[shard].release(pm);
    });
    return;
  }
  if (simulator_.in_window()) {
    // Cross-shard send inside a window: routing reads and writes the
    // globally shared contention state (switch ports / links), so it is
    // deferred to the window barrier, where deferred sends replay in the
    // serial kernel's order. The lookahead guarantees arrival lands at or
    // beyond the window end, so deferral never delays anything observable.
    simulator_.defer_remote(
        [this, m = std::move(msg), now](sim::Simulator&) mutable {
          route_and_deliver(std::move(m), now);
        });
    return;
  }
  route_and_deliver(std::move(msg), now);
}

void Network::route_and_deliver(Message msg, Tick send_tick) {
  c_remote_->add();
  c_flits_->add(flits_of(msg));
  const Tick arrive = route(msg, send_tick);
  h_latency_->record(arrive - send_tick);
  const std::uint64_t channel = channel_of(msg);
  const std::uint32_t shard = simulator_.shard_of_node(msg.dst);
  Message* pm = pools_[shard].acquire(std::move(msg));
  simulator_.replay_push_channel(shard, arrive, channel, [this, pm, shard] {
    deliver(*pm);
    pools_[shard].release(pm);
  });
}

void Network::send_at(Tick at, Message msg) {
  const std::uint64_t channel = channel_of(msg);
  const std::uint32_t shard = simulator_.current_shard();
  Message* pm = pools_[shard].acquire(std::move(msg));
  simulator_.schedule_at_channel(at, channel, [this, pm, shard] {
    send(std::move(*pm));
    pools_[shard].release(pm);
  });
}

void Network::deliver(const Message& m) {
  const auto& sinks = (m.unit == Unit::kCache) ? cache_sinks_ : memory_sinks_;
  const auto& fn = sinks.at(m.dst);
  if (!fn) throw std::logic_error("Network: message to unattached endpoint");
  simulator_.trace().msg(sim::TraceKind::kMsgDeliver, simulator_.now(),
                         static_cast<std::uint8_t>(m.type), m.src, m.dst,
                         m.unit == Unit::kMemory, m.block, m.txn);
  BCSIM_LOG(kTrace, "net", simulator_.now(),
            to_string(m.type) << " " << m.src << "->" << m.dst
                              << (m.unit == Unit::kMemory ? "(mem)" : "(cache)") << " blk="
                              << m.block);
  fn(m);
}

OmegaNetwork::OmegaNetwork(sim::Simulator& simulator, sim::StatsRegistry& stats,
                           std::uint32_t n_nodes, Tick switch_delay)
    : Network(simulator, stats, n_nodes), switch_delay_(switch_delay) {
  width_ = std::bit_ceil(n_nodes < 2 ? 2u : n_nodes);
  stages_ = static_cast<std::uint32_t>(std::bit_width(width_) - 1);
  port_free_.assign(static_cast<std::size_t>(stages_) * width_, 0);
}

Tick OmegaNetwork::route(const Message& m, Tick now) {
  const Tick flits = flits_of(m);
  std::uint32_t wire = m.src;
  Tick t = now;
  Tick waited = 0;
  for (std::uint32_t s = 0; s < stages_; ++s) {
    // Perfect shuffle into stage s, then destination-tag routing: the
    // switch sends the message out of port bit(dst, stages-1-s).
    wire = rotl_bits(wire);
    const std::uint32_t sw = wire >> 1;
    const std::uint32_t out = (m.dst >> (stages_ - 1 - s)) & 1u;
    wire = (sw << 1) | out;
    Tick& free_at = port_free_[static_cast<std::size_t>(s) * width_ + wire];
    if (free_at > t) {
      waited += free_at - t;
      t = free_at;
    }
    free_at = t + flits;   // port is occupied while the message streams through
    t += switch_delay_;    // header advances to the next stage
  }
  if (waited > 0) count_contention(waited);
  // Tail flit arrives flits-1 cycles after the header.
  return t + (flits - 1);
}

MeshNetwork::MeshNetwork(sim::Simulator& simulator, sim::StatsRegistry& stats,
                         std::uint32_t n_nodes, Tick hop_delay)
    : Network(simulator, stats, n_nodes), hop_delay_(hop_delay) {
  // Near-square grid, width >= height.
  cols_ = 1;
  while (cols_ * cols_ < n_nodes) ++cols_;
  rows_ = (n_nodes + cols_ - 1) / cols_;
  link_free_.assign(static_cast<std::size_t>(cols_) * rows_ * 4, 0);
}

Tick MeshNetwork::route(const Message& m, Tick now) {
  const Tick flits = flits_of(m);
  std::uint32_t x = m.src % cols_;
  std::uint32_t y = m.src / cols_;
  const std::uint32_t dx = m.dst % cols_;
  const std::uint32_t dy = m.dst / cols_;
  Tick t = now;
  Tick waited = 0;
  auto traverse = [&](std::uint32_t dir) {
    Tick& free_at = link_free_[link_index(x, y, dir)];
    if (free_at > t) {
      waited += free_at - t;
      t = free_at;
    }
    free_at = t + flits;
    t += hop_delay_;
  };
  while (x != dx) {
    const std::uint32_t dir = (dx > x) ? 0u : 1u;
    traverse(dir);
    x = (dx > x) ? x + 1 : x - 1;
  }
  while (y != dy) {
    const std::uint32_t dir = (dy > y) ? 2u : 3u;
    traverse(dir);
    y = (dy > y) ? y + 1 : y - 1;
  }
  if (waited > 0) count_contention(waited);
  return t + (flits - 1);
}

CrossbarNetwork::CrossbarNetwork(sim::Simulator& simulator, sim::StatsRegistry& stats,
                                 std::uint32_t n_nodes, Tick latency)
    : Network(simulator, stats, n_nodes), latency_(latency), port_free_(n_nodes, 0) {}

Tick CrossbarNetwork::route(const Message& m, Tick now) {
  const Tick flits = flits_of(m);
  Tick t = now;
  Tick& free_at = port_free_[m.dst];
  if (free_at > t) {
    count_contention(free_at - t);
    t = free_at;
  }
  free_at = t + flits;
  return t + latency_ + flits - 1;
}

}  // namespace bcsim::net
