// Network message format shared by all coherence/synchronization protocols.
//
// A single message struct (rather than a class hierarchy) keeps the network
// layer trivially copyable and allocation-free on the hot path. The `type`
// field selects which of the optional fields are meaningful; the protocol
// layers document field usage per type. The network only looks at
// src/dst/unit and the size class derived from `type`/payload.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/types.hpp"

namespace bcsim::net {

/// Upper bound on cache line length in words (config may use less).
inline constexpr std::size_t kMaxBlockWords = 32;

/// Fixed-capacity block payload; avoids heap traffic per message.
struct BlockData {
  std::array<Word, kMaxBlockWords> words{};
  std::uint8_t count = 0;  ///< number of valid words (0 = no payload)

  [[nodiscard]] bool empty() const noexcept { return count == 0; }
  Word& operator[](std::size_t i) noexcept { return words[i]; }
  const Word& operator[](std::size_t i) const noexcept { return words[i]; }
};

/// Which unit at the destination node consumes the message. Memory modules
/// (and their directory slice) are co-located with processor nodes, per the
/// paper's distributed-memory configuration.
enum class Unit : std::uint8_t { kCache, kMemory };

/// Every message the machine can carry. Grouped by protocol.
enum class MsgType : std::uint8_t {
  // --- WBI (write-back invalidate, directory MSI baseline) ---
  kGetS,         ///< read miss: request shared copy (cache -> dir)
  kGetX,         ///< write miss/upgrade: request exclusive copy (cache -> dir)
  kDataS,        ///< data reply, shared (dir -> cache)
  kDataX,        ///< data reply, exclusive; value = #inv acks to expect (dir -> cache)
  kInv,          ///< invalidate copy (dir -> cache)
  kInvAck,       ///< invalidation done (cache -> requester cache)
  kRecall,       ///< fetch modified line back (dir -> owner cache)
  kRecallAck,    ///< modified data returned (owner cache -> dir)
  kPutM,         ///< write back dirty line on replacement (cache -> dir)
  kPutS,         ///< notify replacement of shared line (cache -> dir)
  kPutAck,       ///< replacement acknowledged (dir -> cache)
  kRmw,          ///< atomic read-modify-write at memory (cache -> dir)
  kRmwAck,       ///< RMW result; value = old word (dir -> cache)

  // --- reader-initiated coherence (read-update) ---
  kReadGlobal,     ///< uncached read of a word from memory (cache -> dir)
  kReadGlobalAck,  ///< word value reply (dir -> cache)
  kWriteGlobal,    ///< global write of a word (cache -> dir); txn matches ack
  kWriteGlobalAck, ///< write applied at memory (dir -> cache)
  kReadUpdate,     ///< fetch block + subscribe to future updates (cache -> dir)
  kReadUpdateData, ///< block reply; who = old list head to link as next (dir -> cache)
  kRuLinkPrev,     ///< tell old head its new prev (dir -> cache)
  kRuUpdate,       ///< updated block propagating down the subscriber chain
  kResetUpdate,    ///< unsubscribe (cache -> dir)
  kRuUnlink,       ///< dir command: splice your neighbor pointers (dir -> cache)
  kRuUnlinkAck,    ///< unlink bookkeeping done (cache -> dir)

  // --- CBL (cache-based locking) ---
  kLockReq,        ///< read- or write-lock request; aux = mode (cache -> dir)
  kLockGrant,      ///< lock granted with data (dir -> cache, uncontended path)
  kLockFwd,        ///< dir -> current tail: node `who` is your new successor
  kLockShareGrant, ///< tail -> requester: share the read lock (with data)
  kLockWait,       ///< tail -> requester: enqueued behind me, wait
  kLockHandoff,    ///< releasing holder -> successor: lock + data are yours
  kUnlockNotify,   ///< holder released; dir bookkeeping (cache -> dir)
  kUnlockQuery,    ///< released with no known successor: am I the tail? (cache -> dir)
  kUnlockEmpty,    ///< dir reply: queue empty, write line back (dir -> cache)
  kUnlockWaitSucc, ///< dir reply: successor announce in flight, hold on (dir -> cache)
  kHandoffCmd,     ///< dir -> last reader holder: hand off to node `who`
  kLockWriteback,  ///< line data returned to memory after final unlock (cache -> dir)
  kLockNeighbor,   ///< dir command: update prev/next mirror after reader unlink

  // --- barrier support (memory-side counter, used by the CBL barrier) ---
  kBarArrive,      ///< fetch-increment of barrier counter (cache -> dir)
  kBarArriveAck,   ///< value = arrival index (dir -> cache)
  kBarRelease,     ///< barrier released, propagated down subscriber chain
};

/// Number of MsgType values (kBarRelease is last); sized per-type tables
/// (the network's counter handles, trace name maps) index by MsgType.
inline constexpr std::size_t kMsgTypeCount = static_cast<std::size_t>(MsgType::kBarRelease) + 1;

[[nodiscard]] constexpr std::string_view to_string(MsgType t) noexcept {
  switch (t) {
    case MsgType::kGetS: return "GetS";
    case MsgType::kGetX: return "GetX";
    case MsgType::kDataS: return "DataS";
    case MsgType::kDataX: return "DataX";
    case MsgType::kInv: return "Inv";
    case MsgType::kInvAck: return "InvAck";
    case MsgType::kRecall: return "Recall";
    case MsgType::kRecallAck: return "RecallAck";
    case MsgType::kPutM: return "PutM";
    case MsgType::kPutS: return "PutS";
    case MsgType::kPutAck: return "PutAck";
    case MsgType::kRmw: return "Rmw";
    case MsgType::kRmwAck: return "RmwAck";
    case MsgType::kReadGlobal: return "ReadGlobal";
    case MsgType::kReadGlobalAck: return "ReadGlobalAck";
    case MsgType::kWriteGlobal: return "WriteGlobal";
    case MsgType::kWriteGlobalAck: return "WriteGlobalAck";
    case MsgType::kReadUpdate: return "ReadUpdate";
    case MsgType::kReadUpdateData: return "ReadUpdateData";
    case MsgType::kRuLinkPrev: return "RuLinkPrev";
    case MsgType::kRuUpdate: return "RuUpdate";
    case MsgType::kResetUpdate: return "ResetUpdate";
    case MsgType::kRuUnlink: return "RuUnlink";
    case MsgType::kRuUnlinkAck: return "RuUnlinkAck";
    case MsgType::kLockReq: return "LockReq";
    case MsgType::kLockGrant: return "LockGrant";
    case MsgType::kLockFwd: return "LockFwd";
    case MsgType::kLockShareGrant: return "LockShareGrant";
    case MsgType::kLockWait: return "LockWait";
    case MsgType::kLockHandoff: return "LockHandoff";
    case MsgType::kUnlockNotify: return "UnlockNotify";
    case MsgType::kUnlockQuery: return "UnlockQuery";
    case MsgType::kUnlockEmpty: return "UnlockEmpty";
    case MsgType::kUnlockWaitSucc: return "UnlockWaitSucc";
    case MsgType::kHandoffCmd: return "HandoffCmd";
    case MsgType::kLockWriteback: return "LockWriteback";
    case MsgType::kLockNeighbor: return "LockNeighbor";
    case MsgType::kBarArrive: return "BarArrive";
    case MsgType::kBarArriveAck: return "BarArriveAck";
    case MsgType::kBarRelease: return "BarRelease";
  }
  return "?";
}

/// Message size class; determines flit count / service time at each switch
/// port. Mirrors the paper's cost constants: C_R (control), C_W (one word),
/// C_B (block transfer), C_I (invalidation == control).
enum class SizeClass : std::uint8_t { kControl, kWord, kBlock };

/// Lock mode carried in `aux` for lock messages.
enum class LockMode : std::uint8_t { kRead = 0, kWrite = 1 };

/// Atomic op carried in `aux` for kRmw. For kCompareSwap, `value` is the
/// expected word and `value2` the desired one; the old word is returned.
enum class RmwOp : std::uint8_t { kTestAndSet = 0, kFetchAdd = 1, kSwap = 2, kCompareSwap = 3 };

struct Message {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  Unit unit = Unit::kMemory;   ///< which unit at dst consumes this
  MsgType type = MsgType::kGetS;
  BlockId block = 0;           ///< block this message concerns
  Addr addr = 0;               ///< word address for word-granularity ops
  Word value = 0;              ///< word payload / counts / RMW operand
  Word value2 = 0;             ///< second RMW operand (kCompareSwap desired)
  NodeId who = kNoNode;        ///< subject node (successor, requester, ...)
  std::uint8_t aux = 0;        ///< LockMode / RmwOp / flags
  std::uint32_t dirty_mask = 0;///< per-word dirty bits for partial writebacks
  std::uint64_t txn = 0;       ///< transaction id for ack matching
  BlockData data;              ///< block payload where applicable

  /// Remaining hops for chain-propagated messages (kRuUpdate, kBarRelease):
  /// the receiving cache pops the front and forwards to the new front. The
  /// chain is snapshotted from the directory's list when propagation
  /// starts, which is exactly the paper's semantics ("when the main memory
  /// is updated, the updated block is transferred using this linked-list
  /// structure").
  std::vector<NodeId> chain;
};

/// True for messages generated by synchronization (locks, barriers, RMW)
/// as opposed to ordinary data coherence. The paper's opening observation
/// — "synchronization accesses cause much greater network contention than
/// accesses to normal shared data" — is measured with this split.
[[nodiscard]] constexpr bool is_sync_message(MsgType t) noexcept {
  switch (t) {
    case MsgType::kRmw:
    case MsgType::kRmwAck:
    case MsgType::kLockReq:
    case MsgType::kLockGrant:
    case MsgType::kLockFwd:
    case MsgType::kLockShareGrant:
    case MsgType::kLockWait:
    case MsgType::kLockHandoff:
    case MsgType::kUnlockNotify:
    case MsgType::kUnlockQuery:
    case MsgType::kUnlockEmpty:
    case MsgType::kUnlockWaitSucc:
    case MsgType::kHandoffCmd:
    case MsgType::kLockWriteback:
    case MsgType::kLockNeighbor:
    case MsgType::kBarArrive:
    case MsgType::kBarArriveAck:
    case MsgType::kBarRelease:
      return true;
    default:
      return false;
  }
}

/// Size class of a message, from its type and payload.
[[nodiscard]] constexpr SizeClass size_class(const Message& m) noexcept {
  if (m.data.count > 0) return SizeClass::kBlock;
  switch (m.type) {
    case MsgType::kWriteGlobal:
    case MsgType::kReadGlobalAck:
    case MsgType::kRmw:
    case MsgType::kRmwAck:
    case MsgType::kBarArriveAck:
      return SizeClass::kWord;
    default:
      return SizeClass::kControl;
  }
}

}  // namespace bcsim::net
