// Small-buffer callable for simulation events.
//
// EventFn replaces std::function<void()> on the kernel's hottest path. The
// simulator fires tens of millions of events per host second; std::function
// heap-allocates any capture over its (implementation-defined, ~16-byte)
// small-object threshold, and the network's delivery closures used to carry
// a whole net::Message that way — one malloc/free per message. EventFn
// stores captures up to kInlineBytes in place (48 bytes: six pointers, or a
// bound completion callback plus a word), relocates with a single indirect
// call, and falls back to one heap cell only for oversized or
// throwing-move callables (e.g. the directory's deferred-replay deque).
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace bcsim::sim {

/// Move-only type-erased void() callable with inline storage.
class EventFn {
 public:
  /// Captures up to this many bytes (with at most pointer alignment) are
  /// stored inline; anything larger lives in a single heap cell.
  static constexpr std::size_t kInlineBytes = 48;

  EventFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    emplace<std::decay_t<F>>(std::forward<F>(f));
  }

  EventFn(EventFn&& o) noexcept : vt_(o.vt_) {
    if (vt_ != nullptr) {
      relocate_from(o);
      o.vt_ = nullptr;
    }
  }
  EventFn& operator=(EventFn&& o) noexcept {
    if (this != &o) {
      reset();
      vt_ = o.vt_;
      if (vt_ != nullptr) {
        relocate_from(o);
        o.vt_ = nullptr;
      }
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept { return vt_ != nullptr; }

  /// Invokes the callable. Precondition: non-empty (events are fired
  /// exactly once, straight out of the queue).
  void operator()() { vt_->call(buf_); }

 private:
  struct VTable {
    void (*call)(void*);
    /// Move-constructs into dst from src and destroys src (dst is raw).
    /// nullptr means "memcpy the buffer" — most captures are a few
    /// pointers, and skipping the indirect call matters: the event vectors
    /// relocate events on growth and hand them out on every pop.
    void (*relocate)(void* dst, void* src) noexcept;
    /// nullptr means "trivially destructible" for the same reason.
    void (*destroy)(void*) noexcept;
  };

  template <typename F>
  void emplace(F f) {
    if constexpr (sizeof(F) <= kInlineBytes && alignof(F) <= alignof(void*) &&
                  std::is_trivially_copyable_v<F> && std::is_trivially_destructible_v<F>) {
      ::new (static_cast<void*>(buf_)) F(std::move(f));
      static constexpr VTable vt = {
          [](void* p) { (*std::launder(reinterpret_cast<F*>(p)))(); },
          nullptr,
          nullptr,
      };
      vt_ = &vt;
    } else if constexpr (sizeof(F) <= kInlineBytes && alignof(F) <= alignof(void*) &&
                         std::is_nothrow_move_constructible_v<F>) {
      ::new (static_cast<void*>(buf_)) F(std::move(f));
      static constexpr VTable vt = {
          [](void* p) { (*std::launder(reinterpret_cast<F*>(p)))(); },
          [](void* dst, void* src) noexcept {
            F* s = std::launder(reinterpret_cast<F*>(src));
            ::new (dst) F(std::move(*s));
            s->~F();
          },
          [](void* p) noexcept { std::launder(reinterpret_cast<F*>(p))->~F(); },
      };
      vt_ = &vt;
    } else {
      ::new (static_cast<void*>(buf_)) F*(new F(std::move(f)));
      static constexpr VTable vt = {
          [](void* p) { (**std::launder(reinterpret_cast<F**>(p)))(); },
          [](void* dst, void* src) noexcept {
            ::new (dst) F*(*std::launder(reinterpret_cast<F**>(src)));
          },
          [](void* p) noexcept { delete *std::launder(reinterpret_cast<F**>(p)); },
      };
      vt_ = &vt;
    }
  }

  void relocate_from(EventFn& o) noexcept {
    if (vt_->relocate != nullptr) {
      vt_->relocate(buf_, o.buf_);
    } else {
      // Copies the whole buffer even when the stored object is smaller —
      // a fixed-size memcpy beats a size load + variable copy, and reading
      // the uninitialized tail of a byte array is harmless (GCC flags it
      // as maybe-uninitialized anyway).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
      std::memcpy(buf_, o.buf_, kInlineBytes);
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
    }
  }

  void reset() noexcept {
    if (vt_ != nullptr) {
      if (vt_->destroy != nullptr) vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  alignas(void*) std::byte buf_[kInlineBytes];
};

}  // namespace bcsim::sim
