// Time-ordered event queue: the heart of the discrete-event kernel.
//
// Events are (tick, sequence, callback). The sequence number breaks ties so
// that two events scheduled for the same tick fire in scheduling order; this
// makes every simulation bit-reproducible and independent of heap internals.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace bcsim::sim {

/// Callback invoked when an event fires. Kept as std::function: events are
/// small (a coroutine handle or a component method bound to a message).
using EventFn = std::function<void()>;

/// Min-heap of events ordered by (tick, seq).
class EventQueue {
 public:
  EventQueue() = default;

  /// Schedules `fn` to fire at absolute time `at`. Returns the event's
  /// unique sequence number (usable for debugging; events cannot be
  /// cancelled — cancellation is modeled by the callback checking a flag,
  /// which keeps the queue trivially correct).
  std::uint64_t push(Tick at, EventFn fn) {
    heap_.push_back(Item{at, next_seq_, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    return next_seq_++;
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Time of the earliest pending event. Precondition: !empty().
  [[nodiscard]] Tick next_tick() const noexcept { return heap_.front().at; }

  /// Removes and returns the earliest event. Precondition: !empty().
  [[nodiscard]] std::pair<Tick, EventFn> pop() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Item item = std::move(heap_.back());
    heap_.pop_back();
    return {item.at, std::move(item.fn)};
  }

  void clear() noexcept { heap_.clear(); }

 private:
  struct Item {
    Tick at;
    std::uint64_t seq;
    EventFn fn;
  };
  /// Comparator for std::push_heap (max-heap semantics -> invert to min).
  struct Later {
    bool operator()(const Item& a, const Item& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::vector<Item> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace bcsim::sim
