// Time-ordered event queue: the heart of the discrete-event kernel.
//
// Events are (tick, key, sequence, callback). The key breaks same-tick ties:
// with schedule seed 0 (the default) it equals the sequence number, so events
// scheduled for the same tick fire in scheduling order and every simulation
// is bit-reproducible and independent of queue internals. A nonzero schedule
// seed replaces the key with a SplitMix64 hash of (seed, seq), firing
// same-tick events in a deterministically permuted order — a different but
// equally legal serialization of concurrent activity. Events pushed on an
// ordering channel (push_channel) share a key per channel, so a seed can
// never reorder a point-to-point FIFO link. Sweeping seeds is how the test
// suite explores protocol interleavings (docs/TESTING.md).
//
// Representation: instead of one binary heap over every pending event (one
// O(log n) sift of a fat item per push and per pop), events are bucketed by
// tick. A small min-heap of {tick, serial, bucket} triples orders the
// buckets; each bucket is a contiguous vector of {key, seq, EventFn}. A
// push appends to its tick's bucket — found through a tiny direct-mapped
// cache (tick & mask) — and draining a tick pops the tick heap once and
// fires events straight out of the vector (already (key, seq)-sorted under
// seed 0; sorted on refill otherwise). A cache collision merely opens a
// second bucket for the same tick; the drain path merges same-tick buckets
// in creation (serial) order, which is sequence order, so correctness
// never depends on the cache. The heap is touched once per bucket instead
// of once per event, sifts move 24-byte PODs instead of full events, and
// bucket storage recycles, so the steady state allocates nothing. The
// fired order is bit-identical to the old all-events heap (total order by
// (tick, key, seq)); tests/test_event_repr locks the two representations
// together under schedule-seed sweeps.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <functional>
#include <iterator>
#include <utility>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/random.hpp"
#include "sim/types.hpp"

namespace bcsim::sim {

/// Min-queue of events ordered by (tick, key, seq).
class EventQueue {
 public:
  EventQueue() { cache_.fill(kNoBucket); }

  /// Selects the same-tick tie-break policy. Seed 0 restores strict FIFO
  /// (scheduling order); any other seed fires same-tick events in a
  /// deterministic pseudo-random permutation. Must be set before the first
  /// push — changing the policy mid-queue would reorder already-keyed events.
  void set_schedule_seed(std::uint64_t seed) noexcept { schedule_seed_ = seed; }
  [[nodiscard]] std::uint64_t schedule_seed() const noexcept { return schedule_seed_; }

  /// Schedules `fn` to fire at absolute time `at`. Returns the event's
  /// unique sequence number (usable for debugging; events cannot be
  /// cancelled — cancellation is modeled by the callback checking a flag,
  /// which keeps the queue trivially correct).
  std::uint64_t push(Tick at, EventFn fn) {
    const std::uint64_t seq = next_seq_++;
    insert(at, tie_key(seq), seq, std::move(fn));
    return seq;
  }

  /// Like push(), but ties the event to an ordering channel: same-tick
  /// events on the same channel always fire in scheduling order, under any
  /// schedule seed. The network uses one channel per (src, dst, unit) so a
  /// seed permutes genuinely concurrent activity but can never reorder two
  /// messages on one point-to-point link — hardware keeps those FIFO, and
  /// the protocols rely on it.
  std::uint64_t push_channel(Tick at, std::uint64_t channel, EventFn fn) {
    const std::uint64_t seq = next_seq_++;
    insert(at, channel_key(channel, seq), seq, std::move(fn));
    return seq;
  }

  /// Inserts an event under a caller-supplied (key, seq) pair, bypassing the
  /// internal sequence counter. The sharded kernel (Simulator) uses this to
  /// key events with globally assigned sequence numbers so a multi-queue
  /// run reproduces the serial queue's total order; `seq` must be unique
  /// among pending events. Plain push()/push_channel() must not be mixed
  /// with push_keyed() on the same queue — their seq spaces would collide.
  void push_keyed(Tick at, std::uint64_t key, std::uint64_t seq, EventFn fn) {
    insert(at, key, seq, std::move(fn));
  }

  /// The key push() would derive for sequence number `seq` under the current
  /// schedule seed (seq itself at seed 0, a SplitMix64 hash otherwise).
  [[nodiscard]] std::uint64_t key_for(std::uint64_t seq) const noexcept {
    return tie_key(seq);
  }

  /// The key push_channel() would derive for `channel` / `seq`.
  [[nodiscard]] std::uint64_t channel_key(std::uint64_t channel,
                                          std::uint64_t seq) const noexcept {
    return (schedule_seed_ == 0)
               ? seq
               : SplitMix64(schedule_seed_ ^ (channel * 0x9e3779b97f4a7c15ULL)).next();
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Time of the earliest pending event. Precondition: !empty().
  [[nodiscard]] Tick next_tick() const noexcept {
    assert(!empty() && "EventQueue::next_tick() on an empty queue");
    if (draining()) {
      const Tick cur = buckets_[cur_bucket_].at;
      return heap_.empty() ? cur : std::min(cur, heap_.front().at);
    }
    return heap_.front().at;
  }

  /// Removes and returns the earliest event. Precondition: !empty().
  [[nodiscard]] std::pair<Tick, EventFn> pop() {
    auto p = pop_ex();
    return {p.at, std::move(p.fn)};
  }

  /// A popped event with its ordering metadata exposed. The sharded kernel
  /// needs (key, seq) to tell surrogate-keyed in-window events from
  /// globally sequenced ones when reconstructing the serial order.
  struct Popped {
    Tick at;
    std::uint64_t key;
    std::uint64_t seq;
    EventFn fn;
  };

  /// pop() variant returning the event's (key, seq) alongside the callback.
  /// Precondition: !empty().
  [[nodiscard]] Popped pop_ex() {
    assert(!empty() && "EventQueue::pop() on an empty queue");
    if (draining()) {
      const Tick cur = buckets_[cur_bucket_].at;
      if (heap_.empty() || cur <= heap_.front().at) return take_from_current();
      stash_current();  // an earlier tick appeared (possible only outside run())
    }
    refill_current();
    return take_from_current();
  }

  /// Empties the queue and resets the sequence counter, so a cleared queue
  /// fires future same-tick events under the same tie-break keys as a fresh
  /// one (reused Machines must replay bit-identically). The schedule seed is
  /// kept — clear() resets contents, not policy.
  void clear() noexcept {
    buckets_.clear();
    free_buckets_.clear();
    heap_.clear();
    cache_.fill(kNoBucket);
    cur_bucket_ = kNoBucket;
    cur_pos_ = 0;
    size_ = 0;
    next_seq_ = 0;
    next_serial_ = 0;
  }

 private:
  struct Event {
    Event(std::uint64_t k, std::uint64_t s, EventFn&& f) noexcept
        : key(k), seq(s), fn(std::move(f)) {}
    std::uint64_t key;  ///< same-tick tie-break (== seq when seed is 0)
    std::uint64_t seq;  ///< final tie-break: keys may collide, seqs cannot
    EventFn fn;
  };
  struct Bucket {
    Tick at = 0;
    std::vector<Event> events;
  };
  /// Heap entry: one per open bucket. `serial` is the bucket's creation
  /// number; a bucket only receives events while it is the newest bucket
  /// for its tick, so within one tick, serial order == sequence order.
  struct HeapItem {
    Tick at;
    std::uint64_t serial;
    std::uint32_t bucket;
  };
  /// Comparator for std::push_heap (max-heap semantics -> invert to min).
  struct HeapLater {
    bool operator()(const HeapItem& a, const HeapItem& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.serial > b.serial;
    }
  };
  /// Ascending (key, seq) within one tick.
  struct Earlier {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.key != b.key) return a.key < b.key;
      return a.seq < b.seq;
    }
  };

  static constexpr std::uint32_t kNoBucket = 0xffffffffu;
  static constexpr std::size_t kCacheSlots = 16;  ///< power of two

  [[nodiscard]] bool draining() const noexcept { return cur_bucket_ != kNoBucket; }

  void insert(Tick at, std::uint64_t key, std::uint64_t seq, EventFn&& fn) {
    ++size_;
    if (draining() && buckets_[cur_bucket_].at == at) {
      // Same-tick push while this tick is firing: merge into the unfired
      // tail at its (key, seq) position, so a seeded permutation interleaves
      // it exactly where the all-events heap would have.
      auto& ev = buckets_[cur_bucket_].events;
      Event e{key, seq, std::move(fn)};
      const auto it = std::upper_bound(ev.begin() + static_cast<std::ptrdiff_t>(cur_pos_),
                                       ev.end(), e, Earlier{});
      ev.insert(it, std::move(e));
      return;
    }
    const std::size_t slot = static_cast<std::size_t>(at) & (kCacheSlots - 1);
    std::uint32_t bi = cache_[slot];
    if (bi == kNoBucket || buckets_[bi].at != at) {
      bi = acquire_bucket(at);
      heap_.push_back(HeapItem{at, next_serial_++, bi});
      std::push_heap(heap_.begin(), heap_.end(), HeapLater{});
      cache_[slot] = bi;
    }
    buckets_[bi].events.emplace_back(key, seq, std::move(fn));
  }

  std::uint32_t acquire_bucket(Tick at) {
    if (!free_buckets_.empty()) {
      const std::uint32_t bi = free_buckets_.back();
      free_buckets_.pop_back();
      buckets_[bi].at = at;
      return bi;
    }
    buckets_.push_back(Bucket{at, {}});
    return static_cast<std::uint32_t>(buckets_.size() - 1);
  }

  /// Returns a drained bucket to the free list, dropping any cache entry
  /// still pointing at it (a freed index may be re-leased for another tick).
  void release_bucket(std::uint32_t bi) {
    Bucket& b = buckets_[bi];
    b.events.clear();  // keeps capacity for the bucket's next lease
    const std::size_t slot = static_cast<std::size_t>(b.at) & (kCacheSlots - 1);
    if (cache_[slot] == bi) cache_[slot] = kNoBucket;
    free_buckets_.push_back(bi);
  }

  void refill_current() {
    std::pop_heap(heap_.begin(), heap_.end(), HeapLater{});
    const HeapItem top = heap_.back();
    heap_.pop_back();
    cur_bucket_ = top.bucket;
    cur_pos_ = 0;
    // Merge any sibling buckets for the same tick (direct-mapped cache
    // collisions open one per interruption). Serial order is sequence
    // order, so under seed 0 the concatenation stays sorted.
    while (!heap_.empty() && heap_.front().at == top.at) {
      std::pop_heap(heap_.begin(), heap_.end(), HeapLater{});
      const std::uint32_t sib = heap_.back().bucket;
      heap_.pop_back();
      auto& dst = buckets_[cur_bucket_].events;
      auto& src = buckets_[sib].events;
      dst.insert(dst.end(), std::make_move_iterator(src.begin()),
                 std::make_move_iterator(src.end()));
      release_bucket(sib);
    }
    const std::size_t slot = static_cast<std::size_t>(top.at) & (kCacheSlots - 1);
    if (cache_[slot] != kNoBucket && buckets_[cache_[slot]].at == top.at) {
      cache_[slot] = kNoBucket;  // this tick is now firing; no more appends
    }
    if (schedule_seed_ != 0) {
      // Seed 0 appends in seq order with key == seq: already sorted.
      auto& ev = buckets_[cur_bucket_].events;
      std::sort(ev.begin(), ev.end(), Earlier{});
    }
  }

  Popped take_from_current() {
    Bucket& b = buckets_[cur_bucket_];
    Event& e = b.events[cur_pos_];
    Popped p{b.at, e.key, e.seq, std::move(e.fn)};
    ++cur_pos_;
    --size_;
    if (cur_pos_ == b.events.size()) {
      release_bucket(cur_bucket_);
      cur_bucket_ = kNoBucket;
      cur_pos_ = 0;
    }
    return p;
  }

  /// Re-queues a part-drained bucket (an earlier tick was pushed mid-drain —
  /// impossible through Simulator, which forbids scheduling into the past,
  /// but the queue stays correct stand-alone). The fresh serial keeps it
  /// ahead of any bucket its tick acquires later, preserving seq order.
  void stash_current() {
    Bucket& b = buckets_[cur_bucket_];
    b.events.erase(b.events.begin(), b.events.begin() + static_cast<std::ptrdiff_t>(cur_pos_));
    heap_.push_back(HeapItem{b.at, next_serial_++, cur_bucket_});
    std::push_heap(heap_.begin(), heap_.end(), HeapLater{});
    cur_bucket_ = kNoBucket;
    cur_pos_ = 0;
  }

  [[nodiscard]] std::uint64_t tie_key(std::uint64_t seq) const noexcept {
    if (schedule_seed_ == 0) return seq;
    // SplitMix64 over (seed, seq): a high-quality deterministic hash, so
    // every seed induces an independent-looking same-tick permutation.
    return SplitMix64(schedule_seed_ ^ (seq * 0x9e3779b97f4a7c15ULL)).next();
  }

  std::vector<Bucket> buckets_;               ///< bucket pool (index-stable)
  std::vector<std::uint32_t> free_buckets_;   ///< drained buckets, for reuse
  std::vector<HeapItem> heap_;                ///< min-heap of open buckets
  std::array<std::uint32_t, kCacheSlots> cache_{};  ///< tick & mask -> bucket
  std::uint32_t cur_bucket_ = kNoBucket;      ///< bucket currently firing
  std::size_t cur_pos_ = 0;                   ///< next unfired event in it
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_serial_ = 0;
  std::uint64_t schedule_seed_ = 0;
};

}  // namespace bcsim::sim
