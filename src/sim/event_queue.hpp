// Time-ordered event queue: the heart of the discrete-event kernel.
//
// Events are (tick, key, sequence, callback). The key breaks same-tick ties:
// with schedule seed 0 (the default) it equals the sequence number, so events
// scheduled for the same tick fire in scheduling order and every simulation
// is bit-reproducible and independent of heap internals. A nonzero schedule
// seed replaces the key with a SplitMix64 hash of (seed, seq), firing
// same-tick events in a deterministically permuted order — a different but
// equally legal serialization of concurrent activity. Events pushed on an
// ordering channel (push_channel) share a key per channel, so a seed can
// never reorder a point-to-point FIFO link. Sweeping seeds is how the test
// suite explores protocol interleavings (docs/TESTING.md).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/random.hpp"
#include "sim/types.hpp"

namespace bcsim::sim {

/// Callback invoked when an event fires. Kept as std::function: events are
/// small (a coroutine handle or a component method bound to a message).
using EventFn = std::function<void()>;

/// Min-heap of events ordered by (tick, key, seq).
class EventQueue {
 public:
  EventQueue() = default;

  /// Selects the same-tick tie-break policy. Seed 0 restores strict FIFO
  /// (scheduling order); any other seed fires same-tick events in a
  /// deterministic pseudo-random permutation. Must be set before the first
  /// push — changing the policy mid-heap would reorder already-keyed events.
  void set_schedule_seed(std::uint64_t seed) noexcept { schedule_seed_ = seed; }
  [[nodiscard]] std::uint64_t schedule_seed() const noexcept { return schedule_seed_; }

  /// Schedules `fn` to fire at absolute time `at`. Returns the event's
  /// unique sequence number (usable for debugging; events cannot be
  /// cancelled — cancellation is modeled by the callback checking a flag,
  /// which keeps the queue trivially correct).
  std::uint64_t push(Tick at, EventFn fn) {
    heap_.push_back(Item{at, tie_key(next_seq_), next_seq_, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    return next_seq_++;
  }

  /// Like push(), but ties the event to an ordering channel: same-tick
  /// events on the same channel always fire in scheduling order, under any
  /// schedule seed. The network uses one channel per (src, dst, unit) so a
  /// seed permutes genuinely concurrent activity but can never reorder two
  /// messages on one point-to-point link — hardware keeps those FIFO, and
  /// the protocols rely on it.
  std::uint64_t push_channel(Tick at, std::uint64_t channel, EventFn fn) {
    const std::uint64_t key =
        (schedule_seed_ == 0)
            ? next_seq_
            : SplitMix64(schedule_seed_ ^ (channel * 0x9e3779b97f4a7c15ULL)).next();
    heap_.push_back(Item{at, key, next_seq_, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    return next_seq_++;
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Time of the earliest pending event. Precondition: !empty().
  [[nodiscard]] Tick next_tick() const noexcept { return heap_.front().at; }

  /// Removes and returns the earliest event. Precondition: !empty().
  [[nodiscard]] std::pair<Tick, EventFn> pop() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Item item = std::move(heap_.back());
    heap_.pop_back();
    return {item.at, std::move(item.fn)};
  }

  void clear() noexcept { heap_.clear(); }

 private:
  struct Item {
    Tick at;
    std::uint64_t key;  ///< same-tick tie-break (== seq when seed is 0)
    std::uint64_t seq;  ///< final tie-break: keys may collide, seqs cannot
    EventFn fn;
  };
  /// Comparator for std::push_heap (max-heap semantics -> invert to min).
  struct Later {
    bool operator()(const Item& a, const Item& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      if (a.key != b.key) return a.key > b.key;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] std::uint64_t tie_key(std::uint64_t seq) const noexcept {
    if (schedule_seed_ == 0) return seq;
    // SplitMix64 over (seed, seq): a high-quality deterministic hash, so
    // every seed induces an independent-looking same-tick permutation.
    return SplitMix64(schedule_seed_ ^ (seq * 0x9e3779b97f4a7c15ULL)).next();
  }

  std::vector<Item> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t schedule_seed_ = 0;
};

}  // namespace bcsim::sim
