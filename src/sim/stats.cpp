#include "sim/stats.hpp"

#include <bit>
#include <iomanip>
#include <ostream>

namespace bcsim::sim {

void Histogram::record(std::uint64_t sample) noexcept {
  const std::size_t b = static_cast<std::size_t>(std::bit_width(sample));
  ++buckets_[b];
  ++count_;
  sum_ += sample;
  min_ = std::min(min_, sample);
  max_ = std::max(max_, sample);
}

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double seen = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    seen += static_cast<double>(buckets_[b]);
    if (seen >= target) {
      // Midpoint of bucket b: samples s with bit_width(s)==b lie in
      // [2^(b-1), 2^b - 1]; bucket 0 holds only the value 0. The bucket
      // bounds are clamped to the observed [min_, max_] so the estimate
      // never leaves the range of recorded samples (bucket b is occupied,
      // so min_ <= 2^b - 1 and max_ >= 2^(b-1): lo <= hi survives).
      if (b == 0) return 0.0;
      double lo = static_cast<double>(1ULL << (b - 1));
      double hi = (b >= 64) ? static_cast<double>(max_) : static_cast<double>((1ULL << b) - 1);
      lo = std::max(lo, static_cast<double>(min_));
      hi = std::min(hi, static_cast<double>(max_));
      return (lo + hi) / 2.0;
    }
  }
  return static_cast<double>(max_);
}

void Histogram::reset() noexcept {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ULL;
  max_ = 0;
}

void Histogram::merge_from(const Histogram& other) noexcept {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Counter& StatsRegistry::counter(std::string_view name) {
  if (auto it = counters_.find(name); it != counters_.end()) return *it->second;
  counter_storage_.emplace_back();
  Counter* c = &counter_storage_.back();
  counters_.emplace(std::string(name), c);
  return *c;
}

Histogram& StatsRegistry::histogram(std::string_view name) {
  if (auto it = histograms_.find(name); it != histograms_.end()) return *it->second;
  histogram_storage_.emplace_back();
  Histogram* h = &histogram_storage_.back();
  histograms_.emplace(std::string(name), h);
  return *h;
}

std::uint64_t StatsRegistry::counter_value(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

const Histogram* StatsRegistry::find_histogram(std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second;
}

std::uint64_t StatsRegistry::sum_by_prefix(std::string_view prefix) const {
  std::uint64_t total = 0;
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    total += it->second->value();
  }
  return total;
}

void StatsRegistry::report(std::ostream& os) const {
  os << "--- counters ---\n";
  for (const auto& [name, c] : counters_) {
    os << "  " << std::left << std::setw(40) << name << ' ' << c->value() << '\n';
  }
  os << "--- histograms ---\n";
  for (const auto& [name, h] : histograms_) {
    os << "  " << std::left << std::setw(40) << name << " n=" << h->count() << " mean="
       << std::fixed << std::setprecision(1) << h->mean() << " min=" << h->min()
       << " p50~" << h->quantile(0.5) << " p99~" << h->quantile(0.99) << " max=" << h->max()
       << '\n';
  }
}

void StatsRegistry::write_csv(std::ostream& os) const {
  os << "kind,name,field,value\n";
  for (const auto& [name, c] : counters_) {
    os << "counter," << name << ",value," << c->value() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    os << "histogram," << name << ",count," << h->count() << '\n';
    os << "histogram," << name << ",sum," << h->sum() << '\n';
    os << "histogram," << name << ",min," << h->min() << '\n';
    os << "histogram," << name << ",max," << h->max() << '\n';
    os << "histogram," << name << ",mean," << h->mean() << '\n';
    os << "histogram," << name << ",p50," << h->quantile(0.5) << '\n';
    os << "histogram," << name << ",p99," << h->quantile(0.99) << '\n';
  }
}

namespace {

inline void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;  // FNV-1a 64 prime
  }
}

inline void fnv_u64(std::uint64_t& h, std::uint64_t v) noexcept { fnv_bytes(h, &v, sizeof v); }

}  // namespace

std::uint64_t StatsRegistry::digest() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (const auto& [name, c] : counters_) {  // map iteration: sorted by name
    fnv_bytes(h, name.data(), name.size());
    fnv_u64(h, c->value());
  }
  for (const auto& [name, hist] : histograms_) {
    fnv_bytes(h, name.data(), name.size());
    fnv_u64(h, hist->count());
    fnv_u64(h, hist->sum());
    fnv_u64(h, hist->min());
    fnv_u64(h, hist->max());
  }
  return h;
}

void StatsRegistry::reset_all() noexcept {
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void StatsRegistry::absorb(StatsRegistry& other) {
  for (auto& [name, c] : other.counters_) {
    counter(name).add(c->value());
    c->reset();
  }
  for (auto& [name, h] : other.histograms_) {
    histogram(name).merge_from(*h);
    h->reset();
  }
}

}  // namespace bcsim::sim
