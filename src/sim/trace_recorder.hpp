// Event-trace recorder: a bounded ring of structured records describing
// what the machine did, cycle by cycle.
//
// The invariant checker (PR 1) tells us *that* a protocol rule broke at
// (block, node, tick); this layer records the message interleaving that
// led there, and doubles as the substrate for performance analysis — the
// paper's claims (buffered consistency, reader-initiated coherence, CBL)
// are all timing arguments, and a Chrome-trace view of a run is how we
// check where the cycles actually go.
//
// Design constraints, in order:
//   1. Near-zero cost when disabled: every record call starts with one
//      predictable branch on `enabled_`; no allocation, no formatting.
//   2. Fixed memory when enabled: records land in a ring buffer of
//      configurable capacity; old records are overwritten, and the total
//      recorded count is kept so exports can say how many were dropped.
//   3. Structured, not textual: records hold raw enum codes; names are
//      resolved only in the cold export paths (Chrome JSON / CSV / the
//      last-N dump printed on an invariant violation).
//
// Layering: this header depends only on sim/types.hpp, so the Simulator
// can own a TraceRecorder by value and every component that already holds
// a sim::Simulator& reaches the recorder without constructor churn. The
// record methods take raw std::uint8_t codes; instrumentation sites cast
// their protocol enums (net::MsgType, cache::MsiState, mem::DirState...)
// and the export code in trace_recorder.cpp casts them back for naming.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sim/types.hpp"

namespace bcsim::sim {

/// What a trace record describes. The five instrumented subsystems are
/// network (kMsgSend/kMsgDeliver), cache (kCacheState), directory
/// (kDirState), synchronization (kSyncOp), and write buffer (kWb*).
enum class TraceKind : std::uint8_t {
  kMsgSend,     ///< network injection; code = net::MsgType
  kMsgDeliver,  ///< network delivery; code = net::MsgType
  kCacheState,  ///< cache-line transition; code = CacheTraceOp
  kDirState,    ///< directory-entry transition; code = old/new DirState pair
  kSyncOp,      ///< lock/barrier/RMW milestone; code = SyncTraceOp
  kWbEnter,     ///< write entered the write buffer; value = txn
  kWbRetire,    ///< write acknowledged globally; value = txn
  kWbFlushReq,  ///< FLUSH-BUFFER issued (CP-Synch gate); value = pending
  kWbFlushDone, ///< FLUSH-BUFFER completed; value = pending at completion
};

/// Sub-kind for kCacheState records.
enum class CacheTraceOp : std::uint8_t {
  kMsi,           ///< detail/detail2 = old/new cache::MsiState
  kLock,          ///< detail/detail2 = old/new cache::LockState
  kUpdateBit,     ///< detail/detail2 = old/new subscription bit
  kUpdateApplied, ///< RuUpdate merged into the line; value = version
};

/// Sub-kind for kSyncOp records.
enum class SyncTraceOp : std::uint8_t {
  kLockReq,        ///< NP/CP-Synch lock request leaves the processor
  kLockGrant,      ///< this node became a lock holder
  kUnlock,         ///< unlock issued (release protocol continues async)
  kBarrierArrive,  ///< barrier arrival sent to the home memory
  kBarrierRelease, ///< barrier released at this node
  kRmw,            ///< atomic read-modify-write issued
};

/// One trace record. Plain data; meaning of code/detail/detail2/value is
/// per TraceKind as documented on the enums above.
struct TraceRecord {
  Tick tick = 0;
  TraceKind kind = TraceKind::kMsgSend;
  std::uint8_t code = 0;
  std::uint8_t detail = 0;
  std::uint8_t detail2 = 0;
  NodeId node = kNoNode;  ///< acting node (src / cache / home)
  NodeId peer = kNoNode;  ///< other endpoint where applicable (dst)
  BlockId block = 0;
  std::uint64_t value = 0;
};

class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  /// Starts recording into a ring of `capacity` records. Re-enabling
  /// resizes and clears.
  void enable(std::size_t capacity = kDefaultCapacity) {
    ring_.assign(capacity == 0 ? 1 : capacity, TraceRecord{});
    head_ = 0;
    recorded_ = 0;
    enabled_ = true;
  }

  void disable() noexcept { enabled_ = false; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Records retained in the ring (<= capacity).
  [[nodiscard]] std::size_t size() const noexcept {
    return recorded_ < ring_.size() ? static_cast<std::size_t>(recorded_) : ring_.size();
  }
  /// Total records ever recorded (size() + dropped()).
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return recorded_ - size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }

  void record(const TraceRecord& r) {
    if (!enabled_) return;
    ring_[head_] = r;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    ++recorded_;
  }

  // --- convenience recorders (all guarded; codes are raw casts of the
  // --- caller's protocol enums) ---

  void msg(TraceKind kind, Tick t, std::uint8_t type, NodeId src, NodeId dst,
           bool memory_unit, BlockId b, std::uint64_t txn) {
    if (!enabled_) return;
    record(TraceRecord{t, kind, type, memory_unit ? std::uint8_t{1} : std::uint8_t{0}, 0,
                       src, dst, b, txn});
  }

  void cache_state(Tick t, CacheTraceOp op, NodeId node, BlockId b, std::uint8_t old_state,
                   std::uint8_t new_state, std::uint64_t value = 0) {
    if (!enabled_) return;
    record(TraceRecord{t, TraceKind::kCacheState, static_cast<std::uint8_t>(op), old_state,
                       new_state, node, kNoNode, b, value});
  }

  void dir_state(Tick t, NodeId home, BlockId b, std::uint8_t old_state,
                 std::uint8_t new_state, std::uint64_t aux) {
    if (!enabled_) return;
    record(TraceRecord{t, TraceKind::kDirState, 0, old_state, new_state, home, kNoNode, b, aux});
  }

  void sync_op(Tick t, SyncTraceOp op, NodeId node, BlockId b, std::uint64_t value = 0) {
    if (!enabled_) return;
    record(TraceRecord{t, TraceKind::kSyncOp, static_cast<std::uint8_t>(op), 0, 0, node,
                       kNoNode, b, value});
  }

  void wb_event(TraceKind kind, Tick t, NodeId node, std::uint64_t value) {
    if (!enabled_) return;
    record(TraceRecord{t, kind, 0, 0, 0, node, kNoNode, 0, value});
  }

  /// Visits retained records oldest-first.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::size_t n = size();
    const std::size_t start = (recorded_ <= ring_.size()) ? 0 : head_;
    for (std::size_t i = 0; i < n; ++i) {
      fn(ring_[(start + i) % ring_.size()]);
    }
  }

  /// Canonical merge of several recorders (the sharded kernel records into
  /// per-shard lanes so concurrent emitters never share a ring): every
  /// retained record of every part, sorted by the full record tuple
  /// (tick first). The result is byte-stable across shard counts — lane
  /// assignment can't leak into exports — provided no lane overflowed its
  /// ring.
  [[nodiscard]] static TraceRecorder merged(const std::vector<const TraceRecorder*>& parts);

  /// Chrome trace-event JSON ({"traceEvents":[...]}, loadable in
  /// chrome://tracing or Perfetto): one process per node, one thread per
  /// unit (proc/sync, cache, write buffer, directory, network).
  void write_chrome_json(std::ostream& os) const;

  /// Flat CSV, one row per record, names resolved.
  void write_csv(std::ostream& os) const;

  /// Human-readable dump of the newest `n` records, oldest of them first.
  /// This is what an invariant violation prints next to its diagnostic.
  void dump_tail(std::ostream& os, std::size_t n) const;

 private:
  std::vector<TraceRecord> ring_;
  std::size_t head_ = 0;
  std::uint64_t recorded_ = 0;
  bool enabled_ = false;
};

}  // namespace bcsim::sim
