// Discrete-event simulator: global clock + event loop.
//
// One Simulator per experiment. Components keep a reference and use
// schedule()/schedule_at() to enqueue future work. run() drains events until
// the queue empties, a stop condition is hit, or a cycle budget expires.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "sim/event_queue.hpp"
#include "sim/trace_recorder.hpp"
#include "sim/types.hpp"

namespace bcsim::sim {

/// Why the event loop returned.
enum class RunResult {
  kIdle,      ///< Event queue drained (the natural end of a simulation).
  kStopped,   ///< stop() was called from inside an event.
  kBudget,    ///< The cycle budget was exhausted (likely livelock or too-small budget).
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time in cycles.
  [[nodiscard]] Tick now() const noexcept { return now_; }

  /// Same-tick tie-break policy (see EventQueue::set_schedule_seed): 0 is
  /// strict FIFO, any other seed a deterministic permutation. Set before
  /// the first schedule() call.
  void set_schedule_seed(std::uint64_t seed) noexcept { queue_.set_schedule_seed(seed); }
  [[nodiscard]] std::uint64_t schedule_seed() const noexcept { return queue_.schedule_seed(); }

  /// Schedules `fn` to run `delay` cycles from now.
  void schedule(Tick delay, EventFn fn) { queue_.push(now_ + delay, std::move(fn)); }

  /// Schedules `fn` at absolute time `at`; `at` must be >= now().
  void schedule_at(Tick at, EventFn fn) {
    if (at < now_) throw std::logic_error("Simulator: scheduling into the past");
    queue_.push(at, std::move(fn));
  }

  /// schedule_at() on an ordering channel: same-tick events on one channel
  /// keep scheduling order under every schedule seed (point-to-point FIFO).
  void schedule_at_channel(Tick at, std::uint64_t channel, EventFn fn) {
    if (at < now_) throw std::logic_error("Simulator: scheduling into the past");
    queue_.push_channel(at, channel, std::move(fn));
  }

  /// Requests the event loop to return after the current event.
  void stop() noexcept { stop_requested_ = true; }

  /// Runs until the queue drains, stop() is called, or `max_cycles` have
  /// elapsed since the start of this run() call (a safety net against
  /// protocol livelock — hitting it is reported, never silent).
  RunResult run(Tick max_cycles = kNever) {
    stop_requested_ = false;
    const Tick deadline = (max_cycles == kNever) ? kNever : saturating_add(now_, max_cycles);
    while (!queue_.empty()) {
      if (stop_requested_) return RunResult::kStopped;
      const Tick t = queue_.next_tick();
      if (t > deadline) return RunResult::kBudget;
      auto [at, fn] = queue_.pop();
      now_ = at;
      ++events_processed_;
      fn();
    }
    return stop_requested_ ? RunResult::kStopped : RunResult::kIdle;
  }

  /// Runs until simulated time reaches `until` (events at `until` included).
  RunResult run_until(Tick until) {
    stop_requested_ = false;
    while (!queue_.empty() && queue_.next_tick() <= until) {
      if (stop_requested_) return RunResult::kStopped;
      auto [at, fn] = queue_.pop();
      now_ = at;
      ++events_processed_;
      fn();
    }
    if (stop_requested_) return RunResult::kStopped;
    if (now_ < until) now_ = until;
    return RunResult::kIdle;
  }

  [[nodiscard]] std::uint64_t events_processed() const noexcept { return events_processed_; }
  [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.size(); }

  /// Event-trace recorder. Owned here because every component already
  /// holds a Simulator&; disabled (and free) unless enabled explicitly.
  [[nodiscard]] TraceRecorder& trace() noexcept { return trace_; }
  [[nodiscard]] const TraceRecorder& trace() const noexcept { return trace_; }

 private:
  static Tick saturating_add(Tick a, Tick b) noexcept {
    return (b > kNever - a) ? kNever : a + b;
  }

  EventQueue queue_;
  TraceRecorder trace_;
  Tick now_ = 0;
  bool stop_requested_ = false;
  std::uint64_t events_processed_ = 0;
};

}  // namespace bcsim::sim
