// Discrete-event simulator: global clock + event loop, with an optional
// sharded execution mode (conservative parallel DES).
//
// One Simulator per experiment. Components keep a reference and use
// schedule()/schedule_at() to enqueue future work. run() drains events until
// the queue empties, a stop condition is hit, or a cycle budget expires.
//
// Sharded mode (configure_shards(), DESIGN.md "Sharded PDES kernel"): the
// event population is partitioned into per-shard EventQueues (nodes map to
// shards in contiguous ranges) and executed window-by-window. Each window
// [W, W+L) — L the lookahead, a lower bound on any cross-shard message
// latency — drains every shard independently (possibly on parallel host
// threads), then a serial barrier replays the logged pushes to (a) assign
// the global sequence numbers the serial kernel would have assigned, and
// (b) route cross-shard messages against the shared contention state. At
// schedule seed 0 the reconstructed order is *exactly* the serial kernel's,
// so results are bit-identical to `n_shards = 1` regardless of shard count
// or host thread count; at nonzero seeds each (seed, n_shards) pair names
// one deterministic, legal schedule. The serial path (no configure_shards
// call, or n_shards <= 1) is untouched and remains the reference kernel.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/trace_recorder.hpp"
#include "sim/types.hpp"

namespace bcsim::sim {

/// Why the event loop returned.
enum class RunResult {
  kIdle,      ///< Event queue drained (the natural end of a simulation).
  kStopped,   ///< stop() was called from inside an event.
  kBudget,    ///< The cycle budget was exhausted (likely livelock or too-small budget).
};

class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time in cycles. In sharded mode, inside an event
  /// this is the executing shard's local clock (exact for everything the
  /// event can observe); between windows it is the global low-water mark.
  [[nodiscard]] Tick now() const noexcept {
    return shards_.empty() ? now_ : sharded_now();
  }

  /// Same-tick tie-break policy (see EventQueue::set_schedule_seed): 0 is
  /// strict FIFO, any other seed a deterministic permutation. Set before
  /// the first schedule() call.
  void set_schedule_seed(std::uint64_t seed) noexcept;
  [[nodiscard]] std::uint64_t schedule_seed() const noexcept { return queue_.schedule_seed(); }

  // --- sharded kernel configuration -------------------------------------

  /// Switches this simulator to the sharded kernel: `n_shards` event queues
  /// over `n_nodes` endpoints (clamped to n_shards <= n_nodes), synchronized
  /// by a conservative window of `lookahead` ticks (clamped to >= 1; pass
  /// the network's minimum remote-message latency). `n_shards <= 1` keeps
  /// the serial kernel. Must be called before anything is scheduled.
  void configure_shards(std::uint32_t n_shards, std::uint32_t n_nodes, Tick lookahead);

  [[nodiscard]] bool sharded() const noexcept { return !shards_.empty(); }
  [[nodiscard]] std::uint32_t n_shards() const noexcept {
    return shards_.empty() ? 1u : static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] Tick lookahead() const noexcept { return lookahead_; }

  /// Shard owning `node`'s components (contiguous ranges; 0 when serial).
  [[nodiscard]] std::uint32_t shard_of_node(NodeId node) const noexcept {
    if (shards_.empty()) return 0;
    return static_cast<std::uint32_t>(static_cast<std::uint64_t>(node) * shards_.size() /
                                      n_nodes_);
  }

  /// Shard whose event is currently executing on this thread; 0 outside a
  /// window (serial context) or in the serial kernel.
  [[nodiscard]] std::uint32_t current_shard() const noexcept;

  /// True while this thread is draining a shard's window (events must not
  /// touch cross-shard state directly; the network defers such work to the
  /// barrier via defer_remote()).
  [[nodiscard]] bool in_window() const noexcept;

  // --- scheduling -------------------------------------------------------

  /// Schedules `fn` to run `delay` cycles from now. In sharded mode, from
  /// inside an event this targets the executing shard; from serial context
  /// it targets shard 0 (use schedule_on() to pick a shard).
  void schedule(Tick delay, EventFn fn) {
    if (shards_.empty()) {
      queue_.push(now_ + delay, std::move(fn));
      return;
    }
    sharded_schedule(delay, std::move(fn));
  }

  /// Schedules `fn` at absolute time `at`; `at` must be >= now().
  void schedule_at(Tick at, EventFn fn) {
    if (shards_.empty()) {
      if (at < now_) throw std::logic_error("Simulator: scheduling into the past");
      queue_.push(at, std::move(fn));
      return;
    }
    sharded_schedule_at(at, std::move(fn));
  }

  /// schedule_at() on an ordering channel: same-tick events on one channel
  /// keep scheduling order under every schedule seed (point-to-point FIFO).
  void schedule_at_channel(Tick at, std::uint64_t channel, EventFn fn) {
    if (shards_.empty()) {
      if (at < now_) throw std::logic_error("Simulator: scheduling into the past");
      queue_.push_channel(at, channel, std::move(fn));
      return;
    }
    sharded_schedule_at_channel(at, channel, std::move(fn));
  }

  /// Serial-context scheduling onto a specific shard's queue (e.g. program
  /// start events, which must land on the shard owning their processor).
  /// In the serial kernel this is plain schedule(). Must not be called from
  /// inside a window.
  void schedule_on(std::uint32_t shard, Tick delay, EventFn fn);

  /// Registers work that must run at the window barrier in serial order —
  /// the network uses this for cross-shard sends, whose routing reads and
  /// writes the globally shared contention state. The callback runs on the
  /// barrier thread with the simulator in serial context; it typically ends
  /// in replay_push_channel(). Only valid while in_window().
  using ReplayFn = std::function<void(Simulator&)>;
  void defer_remote(ReplayFn fn);

  /// Barrier-context push onto `shard`'s queue under the next global
  /// sequence number — how deferred cross-shard deliveries enter the
  /// destination queue with exactly the key the serial kernel would have
  /// used. Only valid from serial context (the barrier or between runs).
  void replay_push_channel(std::uint32_t shard, Tick at, std::uint64_t channel, EventFn fn);

  // --- running ----------------------------------------------------------

  /// Requests the event loop to return. Serial kernel: after the current
  /// event. Sharded kernel: at the next window barrier (stopping mid-window
  /// would make results depend on host thread timing).
  void stop() noexcept { stop_requested_.store(true, std::memory_order_relaxed); }

  /// Runs until the queue drains, stop() is called, or `max_cycles` have
  /// elapsed since the start of this run() call (a safety net against
  /// protocol livelock — hitting it is reported, never silent).
  RunResult run(Tick max_cycles = kNever);

  /// Runs until simulated time reaches `until` (events at `until` included).
  RunResult run_until(Tick until);

  [[nodiscard]] std::uint64_t events_processed() const noexcept;
  [[nodiscard]] std::size_t pending_events() const noexcept;

  // --- tracing ----------------------------------------------------------

  /// Event-trace recorder. Owned here because every component already
  /// holds a Simulator&; disabled (and free) unless enabled explicitly.
  /// In sharded mode, inside an event this is the executing shard's private
  /// lane (no cross-thread writes); merged_trace() reassembles the lanes.
  [[nodiscard]] TraceRecorder& trace() noexcept {
    return shards_.empty() ? trace_ : lane_trace();
  }
  [[nodiscard]] const TraceRecorder& trace() const noexcept {
    return shards_.empty() ? trace_ : const_cast<Simulator*>(this)->lane_trace();
  }

  /// Enables tracing on the main recorder and every shard lane (each gets
  /// its own ring of `capacity` records).
  void enable_trace(std::size_t capacity = TraceRecorder::kDefaultCapacity);

  /// Canonical view of the whole trace: every retained record from the main
  /// recorder and all shard lanes, sorted by the full record tuple — the
  /// same byte-stable order regardless of shard count (as long as no lane
  /// overflowed its ring). Exports (`bcsim trace`) use this; the per-lane
  /// recorders stay insertion-ordered for debugging.
  [[nodiscard]] TraceRecorder merged_trace() const;

  /// Collapses every shard lane into the main recorder (canonical merged
  /// order) and clears the lanes, so trace() read from serial context —
  /// tests, exporters — sees the whole run exactly as if it were serial.
  /// The Machine calls this when a run ends; between runs the lanes are
  /// empty and trace() is authoritative. No-op when serial or not tracing.
  void fold_lane_traces();

 private:
  struct Shard;   // per-shard queue + window-log state (simulator.cpp)
  struct Frame;   // one executed event's logged pushes (simulator.cpp)
  class Gang;     // persistent worker-thread pool (simulator.cpp)

  static Tick saturating_add(Tick a, Tick b) noexcept {
    return (b > kNever - a) ? kNever : a + b;
  }

  // Sharded-mode slow paths (simulator.cpp).
  [[nodiscard]] Tick sharded_now() const noexcept;
  [[nodiscard]] TraceRecorder& lane_trace() noexcept;
  void sharded_schedule(Tick delay, EventFn fn);
  void sharded_schedule_at(Tick at, EventFn fn);
  void sharded_schedule_at_channel(Tick at, std::uint64_t channel, EventFn fn);
  void window_push(std::uint32_t shard, Tick at, bool channel_keyed, std::uint64_t channel,
                   EventFn fn);
  void keyed_serial_push(std::uint32_t shard, Tick at, EventFn fn);
  void keyed_serial_push_channel(std::uint32_t shard, Tick at, std::uint64_t channel,
                                 EventFn fn);
  RunResult run_sharded(Tick deadline);
  void exec_window(Tick window_end);
  void run_workers();
  void worker_loop_body();
  void drain_shard(std::uint32_t shard);
  void replay_window();
  void replay_frame(Shard& sh, const Frame& f);
  void clear_window_logs();

  EventQueue queue_;        ///< the serial kernel's single queue
  TraceRecorder trace_;
  Tick now_ = 0;
  std::atomic<bool> stop_requested_{false};
  std::uint64_t events_processed_ = 0;

  // Sharded-kernel state (empty shards_ == serial kernel).
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint32_t n_nodes_ = 0;
  Tick lookahead_ = 1;
  Tick window_end_ = 0;          ///< exclusive; constant while workers run
  std::uint64_t global_seq_ = 0; ///< mirror of the serial kernel's seq counter
  std::uint64_t surro_base_ = 0; ///< surrogate seqs this window start here
  std::size_t worker_threads_ = 1;
  std::atomic<std::uint32_t> next_shard_{0};  ///< work-claiming cursor
  std::unique_ptr<Gang> gang_;
};

}  // namespace bcsim::sim
