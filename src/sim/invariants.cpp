#include "sim/invariants.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/machine.hpp"

namespace bcsim::sim {

namespace {

using cache::CacheLine;
using cache::LockState;
using cache::MsiState;
using mem::DirectoryEntry;
using mem::DirState;
using net::LockMode;

[[noreturn]] void fail(const char* name, BlockId block, NodeId home, NodeId node, Tick tick,
                       const std::string& detail) {
  const auto put_node = [](std::ostringstream& s, NodeId x) {
    if (x == kNoNode) {
      s << "-";
    } else {
      s << x;
    }
  };
  std::ostringstream os;
  os << "invariant violation [" << name << "] at tick " << tick << ", block " << block
     << " (home ";
  put_node(os, home);
  os << "), node ";
  put_node(os, node);
  os << ": " << detail;
  throw InvariantViolation(os.str(), block, node, tick);
}

/// True when every id is a real node and none repeats.
template <typename Ids>
bool nodes_ok(const Ids& ids, std::uint32_t n_nodes, auto&& node_of) {
  std::unordered_set<NodeId> seen;
  for (const auto& x : ids) {
    const NodeId n = node_of(x);
    if (n >= n_nodes || !seen.insert(n).second) return false;
  }
  return true;
}

/// Invariants that hold after *every* directory transition, even with
/// messages in flight: the directory is the serialization point for every
/// structure it mirrors, so its mirrors must be well-formed continuously.
void check_entry_local(const core::MachineConfig& cfg, const DirectoryEntry& e, BlockId b,
                       NodeId home, Tick tick) {
  const std::uint32_t n = cfg.n_nodes;
  const auto id = [](NodeId x) { return x; };

  // -- WBI directory state sanity --
  if (!nodes_ok(e.sharers, n, id)) {
    fail("wbi-sharers", b, home, home, tick, "sharer set has an invalid or duplicate node");
  }
  if (e.owner != kNoNode && e.owner >= n) {
    fail("wbi-owner", b, home, e.owner, tick, "owner is not a valid node");
  }
  if (e.state == DirState::kModified) {
    if (e.owner == kNoNode) fail("wbi-owner", b, home, kNoNode, tick, "kModified with no owner");
    if (!e.sharers.empty()) {
      fail("wbi-swmr", b, home, e.owner, tick, "kModified entry still lists sharers");
    }
  }
  if (e.state == DirState::kUncached && e.owner != kNoNode) {
    fail("wbi-owner", b, home, e.owner, tick, "kUncached entry still names an owner");
  }
  if (e.acks_outstanding != 0 && e.state != DirState::kBusyRmw) {
    fail("wbi-acks", b, home, home, tick, "invalidation acks outstanding on a non-RMW entry");
  }
  if (!e.blocked.empty() && !e.busy()) {
    fail("dir-blocked", b, home, home, tick, "requests queued behind a non-busy entry");
  }

  // -- usage bit: a block threads the RU list xor a lock queue (Figure 2b) --
  if (!e.ru_list.empty() && !e.lock_chain.empty()) {
    fail("usage-bit", b, home, home, tick, "block is on both an RU list and a lock queue");
  }
  if (!e.lock_chain.empty() && !e.usage_lock) {
    fail("usage-bit", b, home, home, tick, "lock queue exists but usage bit says RU");
  }
  if (!e.ru_list.empty() && e.usage_lock) {
    fail("usage-bit", b, home, home, tick, "RU list exists but usage bit says lock");
  }

  // -- RU subscription list --
  if (!nodes_ok(e.ru_list, n, id)) {
    fail("ru-list", b, home, home, tick, "subscription list has an invalid or duplicate node");
  }

  // -- CBL lock queue: exactly one holder group at the front --
  // Note: a node may transiently appear twice — after a cache-to-cache
  // handoff the releaser can re-request before its kUnlockNotify
  // bookkeeping lands (chain_remove drops the first occurrence for exactly
  // this reason) — so duplicate-freedom is checked only at quiescence.
  for (const auto& c : e.lock_chain) {
    if (c.node >= n) {
      fail("cbl-chain", b, home, c.node, tick, "lock chain names an invalid node");
    }
  }
  if (e.lock_chain.empty()) {
    if (e.lock_holders != 0) {
      fail("cbl-holders", b, home, home, tick, "holder count nonzero on an empty chain");
    }
  } else {
    if (e.lock_holders == 0 || e.lock_holders > e.lock_chain.size()) {
      std::ostringstream os;
      os << "holder count " << e.lock_holders << " out of range for chain of "
         << e.lock_chain.size();
      fail("cbl-holders", b, home, e.lock_chain.front().node, tick, os.str());
    }
    // One holder group: either a single write holder or a prefix of readers.
    if (e.lock_chain.front().mode == LockMode::kWrite && e.lock_holders != 1) {
      fail("cbl-holders", b, home, e.lock_chain.front().node, tick,
           "write lock shared by multiple holders");
    }
    for (std::uint32_t i = 0; i < e.lock_holders; ++i) {
      if (e.lock_holders > 1 && e.lock_chain[i].mode != LockMode::kRead) {
        fail("cbl-holders", b, home, e.lock_chain[i].node, tick,
             "write requester inside a read-holder group");
      }
    }
  }
  if (e.lock_data_stale && e.lock_chain.empty() && !e.lock_writeback_pending) {
    fail("cbl-writeback", b, home, home, tick,
         "lock data marked stale with no holder and no writeback in flight");
  }

  // -- barrier counter --
  if (e.barrier_count != e.barrier_waiters.size() &&
      e.barrier_count != e.barrier_waiters.size() + 1) {
    // The last arriver is never parked, so count == waiters; both reset at
    // release (transiently count leads by the in-service arrival only
    // inside the handler, which this hook never observes).
    std::ostringstream os;
    os << "barrier count " << e.barrier_count << " vs " << e.barrier_waiters.size()
       << " waiters";
    fail("barrier", b, home, home, tick, os.str());
  }
  if (!nodes_ok(e.barrier_waiters, n, id)) {
    fail("barrier", b, home, home, tick, "barrier waiter list has an invalid or duplicate node");
  }
}

const char* lock_state_name(LockState s) {
  switch (s) {
    case LockState::kNone: return "none";
    case LockState::kWaitRead: return "wait-read";
    case LockState::kWaitWrite: return "wait-write";
    case LockState::kHeldRead: return "held-read";
    case LockState::kHeldWrite: return "held-write";
    case LockState::kDraining: return "draining";
    case LockState::kReleasing: return "releasing";
    case LockState::kQuerying: return "querying";
  }
  return "?";
}

}  // namespace

void InvariantChecker::check_entry(NodeId home, BlockId block) const {
  const mem::DirectoryEntry* e = m_.directory(home).peek(block);
  if (e == nullptr) return;
  check_entry_local(m_.config(), *e, block, home, m_.simulator().now());
}

void InvariantChecker::check_quiescent(const char* where) const {
  const core::MachineConfig& cfg = m_.config();
  const std::uint32_t n = cfg.n_nodes;
  const Tick tick = m_.simulator().now();
  const std::uint32_t words = cfg.block_words;
  const std::uint32_t word_mask = (words >= 32) ? ~0u : ((1u << words) - 1u);

  // Per-node, per-block views of the distributed state.
  std::vector<std::unordered_map<BlockId, const CacheLine*>> data_lines(n);
  std::vector<std::unordered_map<BlockId, const CacheLine*>> lock_lines(n);
  for (NodeId i = 0; i < n; ++i) {
    const core::CacheController& cc = m_.cache_controller(i);
    if (!cc.quiescent()) {
      fail("quiescence", 0, kNoNode, i, tick,
           std::string(where) + ": cache controller still has activity outstanding");
    }
    if (!cc.write_buffer().empty() || cc.write_buffer().waiters() != 0) {
      fail("write-buffer", 0, kNoNode, i, tick,
           std::string(where) + ": write buffer not drained (CP-Synch gate violated)");
    }
    if (cc.lock_cache().waiting() != 0) {
      fail("lock-cache", 0, kNoNode, i, tick,
           std::string(where) + ": lock-cache capacity waiters never woken");
    }
    cc.data_cache().for_each_valid(
        [&](const CacheLine& l) { data_lines[i].emplace(l.block, &l); });
    cc.lock_cache().for_each([&](const CacheLine& l) { lock_lines[i].emplace(l.block, &l); });

    // Per-word dirty bits never extend past the block.
    for (const auto& [b, l] : data_lines[i]) {
      if ((l->dirty_mask & ~word_mask) != 0) {
        fail("dirty-mask", b, m_.address_map().home_of(b), i, tick,
             "dirty bits set past the end of the block");
      }
    }
  }

  for (NodeId home = 0; home < n; ++home) {
    const proto::DirectoryController& dir = m_.directory(home);
    if (!dir.quiescent()) {
      fail("quiescence", 0, home, home, tick,
           std::string(where) + ": directory has a busy entry or queued requests");
    }
    const mem::MemoryModule& memory = dir.memory();

    dir.for_each_entry([&](BlockId b, const DirectoryEntry& e) {
      check_entry_local(cfg, e, b, home, tick);
      if (e.busy() || !e.blocked.empty() || e.acks_outstanding != 0) {
        fail("quiescence", b, home, home, tick, "entry still in a transient state");
      }

      // ---- WBI: single-writer / multiple-reader, cross-checked ----
      const NodeId wbi_owner = (e.state == DirState::kModified) ? e.owner : kNoNode;
      for (NodeId i = 0; i < n; ++i) {
        auto it = data_lines[i].find(b);
        const CacheLine* l = it == data_lines[i].end() ? nullptr : it->second;
        if (l == nullptr || l->msi == MsiState::kInvalid) continue;
        if (l->msi == MsiState::kModified) {
          if (i != wbi_owner) {
            fail("wbi-swmr", b, home, i, tick,
                 "modified copy in a cache the directory does not consider owner");
          }
          // Clean words of the owner's copy must agree with memory.
          for (std::uint32_t w = 0; w < words; ++w) {
            if (!(l->dirty_mask & (1u << w)) && l->data[w] != memory.read_word(b, w)) {
              fail("wbi-merge", b, home, i, tick,
                   "owner's clean word " + std::to_string(w) + " disagrees with memory");
            }
          }
        } else {  // kShared
          if (e.state != DirState::kShared) {
            fail("wbi-swmr", b, home, i, tick,
                 "shared copy cached while the directory says the block is not shared");
          }
          if (std::find(e.sharers.begin(), e.sharers.end(), i) == e.sharers.end()) {
            // Clean shared drops are silent, so the sharer set is a
            // superset of the caches — never the other way around.
            fail("wbi-sharers", b, home, i, tick, "cached sharer missing from the sharer set");
          }
          if (l->dirty_mask != 0) {
            fail("wbi-swmr", b, home, i, tick, "shared copy has dirty words");
          }
          for (std::uint32_t w = 0; w < words; ++w) {
            if (l->data[w] != memory.read_word(b, w)) {
              fail("wbi-merge", b, home, i, tick,
                   "shared word " + std::to_string(w) + " disagrees with memory");
            }
          }
        }
      }
      if (e.state == DirState::kModified) {
        auto it = data_lines[e.owner].find(b);
        if (it == data_lines[e.owner].end() || it->second->msi != MsiState::kModified) {
          fail("wbi-swmr", b, home, e.owner, tick,
               "directory names an owner whose cache has no modified copy");
        }
      }

      // ---- RU subscription list: doubly-linked, terminated, coherent ----
      for (std::size_t i = 0; i < e.ru_list.size(); ++i) {
        const NodeId sub = e.ru_list[i];
        auto it = data_lines[sub].find(b);
        const CacheLine* l = it == data_lines[sub].end() ? nullptr : it->second;
        if (l == nullptr || !l->update_bit) {
          fail("ru-list", b, home, sub, tick,
               "subscriber on the directory list has no subscribed line");
        }
        const NodeId want_prev = (i == 0) ? kNoNode : e.ru_list[i - 1];
        const NodeId want_next = (i + 1 < e.ru_list.size()) ? e.ru_list[i + 1] : kNoNode;
        if (l->prev != want_prev || l->next != want_next) {
          fail("ru-link", b, home, sub, tick,
               "cache queue pointers disagree with the subscription list");
        }
        if (l->ru_version != e.ru_version) {
          fail("ru-version", b, home, sub, tick,
               "subscriber stuck at version " + std::to_string(l->ru_version) + " of " +
                   std::to_string(e.ru_version));
        }
        // Every word the subscriber has not locally dirtied carries the
        // fully-propagated (= memory) value.
        for (std::uint32_t w = 0; w < words; ++w) {
          if (!(l->dirty_mask & (1u << w)) && l->data[w] != memory.read_word(b, w)) {
            fail("ru-merge", b, home, sub, tick,
                 "subscribed clean word " + std::to_string(w) + " missed an update");
          }
        }
      }

      // ---- CBL: chain members hold mode-consistent lock lines ----
      // With no release bookkeeping in flight the chain is duplicate-free.
      if (!nodes_ok(e.lock_chain, n, [](const mem::LockChainNode& c) { return c.node; })) {
        fail("cbl-chain", b, home, home, tick,
             "lock chain still has a duplicate node at quiescence");
      }
      for (std::size_t i = 0; i < e.lock_chain.size(); ++i) {
        const auto [member, mode] = e.lock_chain[i];
        auto it = lock_lines[member].find(b);
        const CacheLine* l = it == lock_lines[member].end() ? nullptr : it->second;
        if (l == nullptr) {
          fail("cbl-chain", b, home, member, tick,
               "chain member has no lock-cache line");
        }
        const bool holder = i < e.lock_holders;
        const LockState want =
            holder ? (mode == LockMode::kRead ? LockState::kHeldRead : LockState::kHeldWrite)
                   : (mode == LockMode::kRead ? LockState::kWaitRead : LockState::kWaitWrite);
        if (l->lock != want) {
          fail("cbl-chain", b, home, member, tick,
               std::string("lock line in state ") + lock_state_name(l->lock) +
                   " but the directory expects " + lock_state_name(want));
        }
      }
      if (!e.lock_chain.empty()) {
        // The queue pointer (tail) must terminate the distributed list.
        const NodeId tail = e.lock_tail();
        if (const CacheLine* l = lock_lines[tail].at(b); l->next != kNoNode) {
          fail("cbl-tail", b, home, tail, tick, "tail's successor pointer is not nil");
        }
      }
    });
  }

  // Reverse direction: no orphaned subscribers or lock lines — every piece
  // of distributed queue state is accounted for at its home directory.
  for (NodeId i = 0; i < n; ++i) {
    for (const auto& [b, l] : data_lines[i]) {
      if (!l->update_bit) continue;
      const NodeId home = m_.address_map().home_of(b);
      const DirectoryEntry* e = m_.directory(home).peek(b);
      if (e == nullptr ||
          std::find(e->ru_list.begin(), e->ru_list.end(), i) == e->ru_list.end()) {
        fail("ru-orphan", b, home, i, tick,
             "update bit set but the home directory has no such subscriber");
      }
    }
    for (const auto& [b, l] : lock_lines[i]) {
      if (l->lock == LockState::kNone) continue;
      const NodeId home = m_.address_map().home_of(b);
      const DirectoryEntry* e = m_.directory(home).peek(b);
      const bool listed =
          e != nullptr && std::find_if(e->lock_chain.begin(), e->lock_chain.end(),
                                       [i](const mem::LockChainNode& c) {
                                         return c.node == i;
                                       }) != e->lock_chain.end();
      if (!listed) {
        fail("cbl-orphan", b, home, i, tick,
             std::string("lock line in state ") + lock_state_name(l->lock) +
                 " but the home directory's chain does not list this node");
      }
    }
  }
}

}  // namespace bcsim::sim
