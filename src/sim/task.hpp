// C++20 coroutine support for processor programs.
//
// A simulated processor's "program" (a workload, a lock algorithm, a test
// scenario) is written as an ordinary coroutine returning sim::Task:
//
//   sim::Task worker(core::Processor& p) {
//     co_await p.compute(10);
//     Word v = co_await p.read(addr);
//     co_await p.write_global(addr, v + 1);
//   }
//
// Tasks are lazily started (initial_suspend is suspend_always) so that a
// Machine can construct all programs and then kick them off at tick 0.
// Awaiting a sub-task uses symmetric transfer; completion of an asynchronous
// hardware request resumes the coroutine through SimFuture, directly inside
// the completing event (so resumption happens at exactly the right tick).
#pragma once

#include <coroutine>
#include <exception>
#include <memory>
#include <optional>
#include <utility>

#include "sim/simulator.hpp"
#include "sim/types.hpp"

namespace bcsim::sim {

/// A lazily-started coroutine task with void result.
class Task {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct promise_type {
    std::coroutine_handle<> continuation{};
    bool finished = false;
    std::exception_ptr exception{};

    Task get_return_object() { return Task(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(Handle h) const noexcept {
        h.promise().finished = true;
        if (auto cont = h.promise().continuation) return cont;
        return std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { exception = std::current_exception(); }
  };

  Task() noexcept = default;
  explicit Task(Handle h) noexcept : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  /// Begins execution (runs until the first suspension point). Top-level
  /// tasks only; awaited sub-tasks are started by the awaiter.
  void start() { h_.resume(); }

  [[nodiscard]] bool valid() const noexcept { return h_ != nullptr; }
  [[nodiscard]] bool done() const noexcept { return h_ && h_.promise().finished; }

  /// Re-raises an exception that escaped a fire-and-forget task. Call after
  /// the simulation loop returns; a silently swallowed failure would make a
  /// broken experiment look like a slow one.
  void rethrow_if_failed() const {
    if (h_ && h_.promise().exception) std::rethrow_exception(h_.promise().exception);
  }

  /// Awaiting a task: starts it, suspends the parent, resumes the parent
  /// when the task finishes (symmetric transfer, no stack growth).
  auto operator co_await() const noexcept {
    struct Awaiter {
      Handle h;
      bool await_ready() const noexcept { return !h || h.promise().finished; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) const noexcept {
        h.promise().continuation = parent;
        return h;
      }
      void await_resume() const {
        if (h && h.promise().exception) std::rethrow_exception(h.promise().exception);
      }
    };
    return Awaiter{h_};
  }

 private:
  void destroy() noexcept {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  Handle h_ = nullptr;
};

/// One-shot future bridging callback-style hardware completion to a
/// coroutine await. The shared state outlives both sides regardless of
/// which is destroyed first.
template <typename T>
class SimFuture {
  struct State {
    std::optional<T> value;
    std::coroutine_handle<> waiter{};
  };

 public:
  SimFuture() : st_(std::make_shared<State>()) {}

  /// Callable handed to the hardware side; invoking it fulfills the future
  /// and resumes the awaiting coroutine immediately (same tick).
  [[nodiscard]] auto resolver() const {
    return [st = st_](T v) {
      st->value.emplace(std::move(v));
      if (auto w = std::exchange(st->waiter, nullptr)) w.resume();
    };
  }

  [[nodiscard]] bool ready() const noexcept { return st_->value.has_value(); }

  auto operator co_await() const noexcept {
    struct Awaiter {
      std::shared_ptr<State> st;
      bool await_ready() const noexcept { return st->value.has_value(); }
      void await_suspend(std::coroutine_handle<> h) const noexcept { st->waiter = h; }
      T await_resume() const { return std::move(*st->value); }
    };
    return Awaiter{st_};
  }

 private:
  std::shared_ptr<State> st_;
};

/// Tag type for void-valued futures.
struct Unit {};
using SimSignal = SimFuture<Unit>;

/// Awaitable that suspends the coroutine for `dt` simulated cycles.
[[nodiscard]] inline auto delay(Simulator& sim, Tick dt) {
  struct Awaiter {
    Simulator& sim;
    Tick dt;
    bool await_ready() const noexcept { return dt == 0; }
    void await_suspend(std::coroutine_handle<> h) const {
      sim.schedule(dt, [h] { h.resume(); });
    }
    void await_resume() const noexcept {}
  };
  return Awaiter{sim, dt};
}

}  // namespace bcsim::sim
