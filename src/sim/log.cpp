#include "sim/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace bcsim::sim {
namespace {

LogLevel parse_level(const char* s) noexcept {
  if (s == nullptr) return LogLevel::kOff;
  if (std::strcmp(s, "error") == 0 || std::strcmp(s, "1") == 0) return LogLevel::kError;
  if (std::strcmp(s, "warn") == 0 || std::strcmp(s, "2") == 0) return LogLevel::kWarn;
  if (std::strcmp(s, "info") == 0 || std::strcmp(s, "3") == 0) return LogLevel::kInfo;
  if (std::strcmp(s, "trace") == 0 || std::strcmp(s, "4") == 0) return LogLevel::kTrace;
  return LogLevel::kOff;
}

std::atomic<int>& level_storage() noexcept {
  static std::atomic<int> level{static_cast<int>(parse_level(std::getenv("BCSIM_LOG_LEVEL")))};
  return level;
}

const char* level_name(LogLevel lvl) noexcept {
  switch (lvl) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kOff: break;
  }
  return "?????";
}

}  // namespace

LogLevel log_level() noexcept { return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed)); }

void set_log_level(LogLevel lvl) noexcept {
  level_storage().store(static_cast<int>(lvl), std::memory_order_relaxed);
}

void log_emit(LogLevel lvl, std::string_view component, std::uint64_t tick,
              std::string_view text) {
  std::fprintf(stderr, "[%s] t=%llu %.*s: %.*s\n", level_name(lvl),
               static_cast<unsigned long long>(tick), static_cast<int>(component.size()),
               component.data(), static_cast<int>(text.size()), text.data());
}

}  // namespace bcsim::sim
