// Cold paths of the trace recorder: name resolution and the three export
// formats (Chrome trace-event JSON, CSV, human-readable tail dump). The
// upper-layer includes are confined to this translation unit; the header
// stays dependency-free so sim::Simulator can own the recorder by value.
#include "sim/trace_recorder.hpp"

#include <algorithm>
#include <ostream>
#include <string>
#include <tuple>

#include "cache/cache_line.hpp"
#include "mem/directory_entry.hpp"
#include "net/message.hpp"

namespace bcsim::sim {

namespace {

const char* kind_name(TraceKind k) {
  switch (k) {
    case TraceKind::kMsgSend: return "msg-send";
    case TraceKind::kMsgDeliver: return "msg-deliver";
    case TraceKind::kCacheState: return "cache-state";
    case TraceKind::kDirState: return "dir-state";
    case TraceKind::kSyncOp: return "sync";
    case TraceKind::kWbEnter: return "wb-enter";
    case TraceKind::kWbRetire: return "wb-retire";
    case TraceKind::kWbFlushReq: return "wb-flush-req";
    case TraceKind::kWbFlushDone: return "wb-flush-done";
  }
  return "?";
}

const char* msi_name(std::uint8_t s) {
  switch (static_cast<cache::MsiState>(s)) {
    case cache::MsiState::kInvalid: return "I";
    case cache::MsiState::kShared: return "S";
    case cache::MsiState::kModified: return "M";
  }
  return "?";
}

const char* lock_state_name(std::uint8_t s) {
  switch (static_cast<cache::LockState>(s)) {
    case cache::LockState::kNone: return "None";
    case cache::LockState::kWaitRead: return "WaitRead";
    case cache::LockState::kWaitWrite: return "WaitWrite";
    case cache::LockState::kHeldRead: return "HeldRead";
    case cache::LockState::kHeldWrite: return "HeldWrite";
    case cache::LockState::kDraining: return "Draining";
    case cache::LockState::kReleasing: return "Releasing";
    case cache::LockState::kQuerying: return "Querying";
  }
  return "?";
}

const char* dir_state_name(std::uint8_t s) {
  switch (static_cast<mem::DirState>(s)) {
    case mem::DirState::kUncached: return "Uncached";
    case mem::DirState::kShared: return "Shared";
    case mem::DirState::kModified: return "Modified";
    case mem::DirState::kBusyRecall: return "BusyRecall";
    case mem::DirState::kBusyRmw: return "BusyRmw";
  }
  return "?";
}

const char* sync_op_name(std::uint8_t s) {
  switch (static_cast<SyncTraceOp>(s)) {
    case SyncTraceOp::kLockReq: return "lock-req";
    case SyncTraceOp::kLockGrant: return "lock-grant";
    case SyncTraceOp::kUnlock: return "unlock";
    case SyncTraceOp::kBarrierArrive: return "barrier-arrive";
    case SyncTraceOp::kBarrierRelease: return "barrier-release";
    case SyncTraceOp::kRmw: return "rmw";
  }
  return "?";
}

/// Short display name of a record (the Chrome event name / CSV `name`).
std::string record_name(const TraceRecord& r) {
  switch (r.kind) {
    case TraceKind::kMsgSend:
    case TraceKind::kMsgDeliver:
      return std::string(net::to_string(static_cast<net::MsgType>(r.code)));
    case TraceKind::kCacheState:
      switch (static_cast<CacheTraceOp>(r.code)) {
        case CacheTraceOp::kMsi:
          return std::string("msi:") + msi_name(r.detail) + "->" + msi_name(r.detail2);
        case CacheTraceOp::kLock:
          return std::string("lock:") + lock_state_name(r.detail) + "->" +
                 lock_state_name(r.detail2);
        case CacheTraceOp::kUpdateBit:
          return r.detail2 != 0 ? "subscribe" : "unsubscribe";
        case CacheTraceOp::kUpdateApplied:
          return "update-applied";
      }
      return "?";
    case TraceKind::kDirState:
      return std::string("dir:") + dir_state_name(r.detail) + "->" + dir_state_name(r.detail2);
    case TraceKind::kSyncOp:
      return sync_op_name(r.code);
    case TraceKind::kWbEnter:
    case TraceKind::kWbRetire:
    case TraceKind::kWbFlushReq:
    case TraceKind::kWbFlushDone:
      return kind_name(r.kind);
  }
  return "?";
}

/// Chrome thread id: one track per unit within a node's process.
enum : int { kTidSync = 0, kTidCache = 1, kTidWb = 2, kTidDir = 3, kTidNet = 4 };

int tid_of(const TraceRecord& r) {
  switch (r.kind) {
    case TraceKind::kMsgSend:
    case TraceKind::kMsgDeliver: return kTidNet;
    case TraceKind::kCacheState: return kTidCache;
    case TraceKind::kDirState: return kTidDir;
    case TraceKind::kSyncOp: return kTidSync;
    case TraceKind::kWbEnter:
    case TraceKind::kWbRetire:
    case TraceKind::kWbFlushReq:
    case TraceKind::kWbFlushDone: return kTidWb;
  }
  return kTidSync;
}

const char* tid_name(int tid) {
  switch (tid) {
    case kTidSync: return "proc/sync";
    case kTidCache: return "cache";
    case kTidWb: return "write-buffer";
    case kTidDir: return "directory";
    case kTidNet: return "network";
  }
  return "?";
}

/// Process id: the node whose track the record lands on. Deliveries are
/// drawn at the receiving node, sends at the sender.
NodeId pid_of(const TraceRecord& r) {
  if (r.kind == TraceKind::kMsgDeliver && r.peer != kNoNode) return r.peer;
  return r.node;
}

}  // namespace

void TraceRecorder::write_chrome_json(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  // Metadata: name every (process, thread) pair that carries events, so
  // the Chrome/Perfetto track labels read "node 3 / directory" instead of
  // bare numbers.
  std::vector<std::uint8_t> seen;  // (pid * 5 + tid) bitmap, grown on demand
  for_each([&](const TraceRecord& r) {
    const NodeId pid = pid_of(r);
    if (pid == kNoNode) return;
    const std::size_t key = static_cast<std::size_t>(pid) * 5 + static_cast<std::size_t>(tid_of(r));
    if (key >= seen.size()) seen.resize(key + 1, 0);
    if (seen[key]) return;
    seen[key] = 1;
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"node " << pid << "\"}},"
       << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":" << tid_of(r) << ",\"args\":{\"name\":\"" << tid_name(tid_of(r))
       << "\"}}";
  });
  for_each([&](const TraceRecord& r) {
    const NodeId pid = pid_of(r);
    if (pid == kNoNode) return;
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << record_name(r) << "\",\"ph\":\"X\",\"ts\":" << r.tick
       << ",\"dur\":1,\"pid\":" << pid << ",\"tid\":" << tid_of(r) << ",\"args\":{"
       << "\"kind\":\"" << kind_name(r.kind) << "\",\"block\":" << r.block;
    if (r.node != kNoNode) os << ",\"node\":" << r.node;
    if (r.peer != kNoNode) os << ",\"peer\":" << r.peer;
    os << ",\"value\":" << r.value << "}}";
  });
  os << "],\"displayTimeUnit\":\"ns\",\"metadata\":{\"recorded\":" << recorded_
     << ",\"dropped\":" << dropped() << "}}";
}

void TraceRecorder::write_csv(std::ostream& os) const {
  os << "tick,kind,name,node,peer,block,detail,detail2,value\n";
  for_each([&](const TraceRecord& r) {
    os << r.tick << ',' << kind_name(r.kind) << ',' << record_name(r) << ',';
    if (r.node != kNoNode) os << r.node;
    os << ',';
    if (r.peer != kNoNode) os << r.peer;
    os << ',' << r.block << ',' << static_cast<unsigned>(r.detail) << ','
       << static_cast<unsigned>(r.detail2) << ',' << r.value << '\n';
  });
}

TraceRecorder TraceRecorder::merged(const std::vector<const TraceRecorder*>& parts) {
  std::vector<TraceRecord> all;
  std::size_t total = 0;
  for (const TraceRecorder* p : parts) total += p->size();
  all.reserve(total);
  for (const TraceRecorder* p : parts) {
    p->for_each([&](const TraceRecord& r) { all.push_back(r); });
  }
  // Full-tuple order: ties are identical records, so the sorted sequence —
  // and therefore every export — is independent of lane count/assignment.
  std::sort(all.begin(), all.end(), [](const TraceRecord& a, const TraceRecord& b) {
    return std::tie(a.tick, a.node, a.peer, a.kind, a.code, a.detail, a.detail2, a.block,
                    a.value) < std::tie(b.tick, b.node, b.peer, b.kind, b.code, b.detail,
                                        b.detail2, b.block, b.value);
  });
  TraceRecorder out;
  out.enable(total == 0 ? 1 : total);
  for (const TraceRecord& r : all) out.record(r);
  return out;
}

void TraceRecorder::dump_tail(std::ostream& os, std::size_t n) const {
  const std::size_t have = size();
  const std::size_t skip = have > n ? have - n : 0;
  os << "trace tail (" << (have - skip) << " of " << recorded_ << " recorded";
  if (dropped() != 0) os << ", " << dropped() << " dropped";
  os << "):\n";
  std::size_t i = 0;
  for_each([&](const TraceRecord& r) {
    if (i++ < skip) return;
    os << "  [" << r.tick << "] " << kind_name(r.kind) << ' ' << record_name(r);
    if (r.kind == TraceKind::kMsgSend || r.kind == TraceKind::kMsgDeliver) {
      os << ' ' << r.node << "->" << r.peer << (r.detail != 0 ? "(mem)" : "(cache)");
    } else if (r.node != kNoNode) {
      os << " node=" << r.node;
    }
    os << " block=" << r.block;
    if (r.value != 0) os << " value=" << r.value;
    os << '\n';
  });
}

}  // namespace bcsim::sim
