#include "sim/sweep.hpp"

#include <algorithm>
#include <cstdlib>

namespace bcsim::sim {

std::size_t sweep_threads() noexcept {
  if (const char* env = std::getenv("BCSIM_SWEEP_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(std::min<long>(v, 64));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw == 0 ? 1 : hw, 1, 16);
}

}  // namespace bcsim::sim
