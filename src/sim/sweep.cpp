#include "sim/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace bcsim::sim {

std::size_t sweep_threads() noexcept {
  if (const char* env = std::getenv("BCSIM_SWEEP_THREADS")) {
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(env, &end, 10);
    // Strict decimal: a leading digit (no whitespace/sign), nothing after
    // the number, and no overflow. strtol alone would accept " 8" and read
    // "1e3" as 1.
    const bool numeric = std::isdigit(static_cast<unsigned char>(env[0])) != 0 &&
                         *end == '\0' && errno != ERANGE;
    if (numeric && v >= 1) {
      return std::min(static_cast<std::size_t>(v), kMaxSweepThreads);
    }
    // "1e3", "4x", "", out-of-range, or < 1: ignore it loudly (once) rather
    // than silently running a 1000-way sweep on one thread.
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "bcsim: ignoring invalid BCSIM_SWEEP_THREADS='%s' "
                   "(expected an integer in [1, %zu]); using hardware default\n",
                   env, kMaxSweepThreads);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw == 0 ? 1 : hw, 1, kMaxSweepThreads);
}

}  // namespace bcsim::sim
