#include "sim/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace bcsim::sim {

std::size_t sweep_threads() noexcept {
  if (const char* env = std::getenv("BCSIM_SWEEP_THREADS")) {
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(env, &end, 10);
    // Strict decimal: a leading digit (no whitespace/sign), nothing after
    // the number, and no overflow. strtol alone would accept " 8" and read
    // "1e3" as 1.
    const bool numeric = std::isdigit(static_cast<unsigned char>(env[0])) != 0 &&
                         *end == '\0' && errno != ERANGE;
    if (numeric && v >= 1) {
      return std::min(static_cast<std::size_t>(v), kMaxSweepThreads);
    }
    // "1e3", "4x", "", out-of-range, or < 1: ignore it loudly (once) rather
    // than silently running a 1000-way sweep on one thread.
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "bcsim: ignoring invalid BCSIM_SWEEP_THREADS='%s' "
                   "(expected an integer in [1, %zu]); using hardware default\n",
                   env, kMaxSweepThreads);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw == 0 ? 1 : hw, 1, kMaxSweepThreads);
}

namespace {

/// Product of the widths of the sweeps currently executing on this process
/// (1 when none). Guarded by a mutex: registration is per-sweep, not
/// per-item, so this is nowhere near a hot path.
std::mutex g_width_mu;
std::size_t g_sweep_width = 1;

}  // namespace

namespace detail {

SweepWidthGuard::SweepWidthGuard(std::size_t workers) noexcept
    : workers_(workers == 0 ? 1 : workers) {
  std::lock_guard<std::mutex> lk(g_width_mu);
  g_sweep_width *= workers_;
}

SweepWidthGuard::~SweepWidthGuard() {
  std::lock_guard<std::mutex> lk(g_width_mu);
  g_sweep_width /= workers_;
}

}  // namespace detail

std::size_t active_sweep_workers() noexcept {
  std::lock_guard<std::mutex> lk(g_width_mu);
  return g_sweep_width;
}

namespace {
/// True when $BCSIM_THREAD_BUDGET supplied a valid value — an explicit
/// budget is taken at face value (e.g. oversubscribing a small host to
/// exercise the window gang under TSan), while the hardware default is
/// additionally clamped to the core count for gang sizing.
std::atomic<bool> g_budget_explicit{false};
}  // namespace

std::size_t thread_budget() noexcept {
  if (const char* env = std::getenv("BCSIM_THREAD_BUDGET")) {
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(env, &end, 10);
    const bool numeric = std::isdigit(static_cast<unsigned char>(env[0])) != 0 &&
                         *end == '\0' && errno != ERANGE;
    if (numeric && v >= 1) {
      g_budget_explicit.store(true, std::memory_order_relaxed);
      return std::min<std::size_t>(static_cast<std::size_t>(v), 4096);
    }
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "bcsim: ignoring invalid BCSIM_THREAD_BUDGET='%s' "
                   "(expected an integer >= 1); using hardware default\n",
                   env);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max<std::size_t>(hw == 0 ? 1 : hw, kMaxSweepThreads);
}

std::size_t shard_worker_threads(std::size_t n_shards) noexcept {
  if (n_shards <= 1) return 1;
  const std::size_t budget = thread_budget();
  const std::size_t width = active_sweep_workers();
  const std::size_t share = std::max<std::size_t>(1, budget / std::max<std::size_t>(1, width));
  // Unlike sweep workers (whole independent runs, where oversubscription
  // just queues), gang workers rendezvous at every window barrier; threads
  // beyond the core count only add context switches to each window. An
  // explicit BCSIM_THREAD_BUDGET bypasses the clamp (deliberate
  // oversubscription, e.g. racing the gang under TSan on a small host).
  const std::size_t cores = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t hw_cap =
      g_budget_explicit.load(std::memory_order_relaxed) ? n_shards : cores;
  const std::size_t threads = std::min({share, n_shards, hw_cap});
  if (threads < n_shards && width > 1) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "bcsim: clamping shard workers to %zu for %zu shards — thread "
                   "budget %zu is shared with a %zu-wide sweep (results are "
                   "unaffected; set BCSIM_THREAD_BUDGET to raise the cap)\n",
                   threads, n_shards, budget, width);
    }
  }
  return threads;
}

}  // namespace bcsim::sim
