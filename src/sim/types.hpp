// Fundamental vocabulary types shared by every bcsim component.
//
// All simulated time is in "machine cycles" (the paper's unit: one cache
// cycle). All identifiers are strong-ish integer aliases; we keep them as
// plain integers for arithmetic convenience but give them distinct names so
// signatures document intent.
#pragma once

#include <cstdint>
#include <limits>

namespace bcsim {

/// Simulated time, in machine (cache) cycles.
using Tick = std::uint64_t;

/// Identifies a processor node (0 .. n_nodes-1).
using NodeId = std::uint32_t;

/// Identifies a memory module (0 .. n_modules-1).
using ModuleId = std::uint32_t;

/// A word address in the shared address space. The unit is one word: the
/// paper's machine is word-addressed with a block (line) of `block_words`
/// words. Block id = addr / block_words.
using Addr = std::uint64_t;

/// A block (cache line) number: Addr / block_words.
using BlockId = std::uint64_t;

/// Value of one memory word. We simulate real data so protocol correctness
/// is checkable end-to-end (e.g. the linear solver computes right answers
/// through the coherence protocol). Doubles are carried via bit_cast.
using Word = std::uint64_t;

/// Sentinel for "no node" in queue pointers (paper: nil).
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Sentinel tick meaning "never"/"unset".
inline constexpr Tick kNever = std::numeric_limits<Tick>::max();

}  // namespace bcsim
