// Deterministic, fast pseudo-random number generation for workload models.
//
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64, which is the
// recommended seeding procedure. We avoid std::mt19937_64 because its state
// is large and its distributions are not reproducible across standard
// library implementations; everything here is bit-exact on any platform,
// which keeps simulation results reproducible from a seed alone.
#pragma once

#include <bit>
#include <cstdint>

namespace bcsim::sim {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: all-purpose 64-bit generator, period 2^256-1.
class Rng {
 public:
  /// Seeds via SplitMix64 so that even seed=0 yields a good state.
  explicit constexpr Rng(std::uint64_t seed = 0x5eedULL) noexcept { reseed(seed); }

  constexpr void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  constexpr std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (bitmask rejection).
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    const int bits = 64 - std::countl_zero(bound - 1);
    for (;;) {
      const std::uint64_t x = next_u64() >> (64 - bits);
      if (x < bound) return x;
    }
  }

  /// Uniform double in [0, 1) with 53 random bits.
  constexpr double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial: true with probability p.
  constexpr bool chance(double p) noexcept { return next_double() < p; }

  /// Uniform in [lo, hi] inclusive.
  constexpr std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + next_below(hi - lo + 1);
  }

  /// Geometric-ish backoff helper: uniform in [0, 2^exp) capped.
  constexpr std::uint64_t backoff(unsigned exp, std::uint64_t cap) noexcept {
    const std::uint64_t window = (exp >= 63) ? cap : ((1ULL << exp) < cap ? (1ULL << exp) : cap);
    return next_below(window == 0 ? 1 : window);
  }

  /// Derives an independent stream (for per-processor generators).
  constexpr Rng split() noexcept { return Rng(next_u64()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace bcsim::sim
