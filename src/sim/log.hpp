// Minimal leveled logging for protocol debugging.
//
// Logging is off by default and controlled at runtime (BCSIM_LOG_LEVEL env
// var or set_log_level()). The hot path costs one integer compare when
// disabled. Messages go to stderr and carry the simulated tick when a
// Simulator is attached, which is what you actually need when debugging a
// coherence protocol interleaving.
#pragma once

#include <cstdint>
#include <sstream>
#include <string_view>

namespace bcsim::sim {

enum class LogLevel : int { kOff = 0, kError = 1, kWarn = 2, kInfo = 3, kTrace = 4 };

/// Global log level; reads BCSIM_LOG_LEVEL ("off|error|warn|info|trace" or
/// 0..4) on first use.
LogLevel log_level() noexcept;
void set_log_level(LogLevel lvl) noexcept;

/// Sink for a fully formatted line (implementation writes to stderr).
void log_emit(LogLevel lvl, std::string_view component, std::uint64_t tick,
              std::string_view text);

[[nodiscard]] inline bool log_enabled(LogLevel lvl) noexcept {
  return static_cast<int>(lvl) <= static_cast<int>(log_level());
}

}  // namespace bcsim::sim

/// Usage: BCSIM_LOG(kTrace, "dir", sim.now(), "block " << b << " busy");
#define BCSIM_LOG(lvl, component, tick, expr)                                     \
  do {                                                                            \
    if (::bcsim::sim::log_enabled(::bcsim::sim::LogLevel::lvl)) {                 \
      std::ostringstream bcsim_log_os_;                                           \
      bcsim_log_os_ << expr;                                                      \
      ::bcsim::sim::log_emit(::bcsim::sim::LogLevel::lvl, component, (tick),      \
                             bcsim_log_os_.str());                                \
    }                                                                             \
  } while (false)
