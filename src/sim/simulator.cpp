// Sharded execution engine for sim::Simulator (conservative parallel DES).
//
// How a window executes, and why seed-0 output is bit-identical to the
// serial kernel (the full argument is in DESIGN.md):
//
//   1. W = min next_tick over all shards; the window is [W, WE) with
//      WE = W + lookahead (capped at the run deadline + 1). The lookahead
//      is a lower bound on the latency of any cross-shard message, so no
//      event executed in this window can create work for another shard
//      inside the window: shards are causally independent over [W, WE)
//      and may drain concurrently.
//
//   2. Each shard pops its queue while next_tick < WE. Pushes made by its
//      events are logged into a per-shard frame list (one frame per
//      executed event that pushed anything):
//        - a push targeting a tick < WE lands in the shard's own queue
//          immediately (the target must be local — see 1), keyed by a
//          *surrogate* sequence number: surro_base + per-shard counter,
//          where surro_base exceeds every globally assigned seq. Under
//          seed 0 key == seq, so within one shard the surrogate order is
//          the shard's push order — the same relative order the serial
//          kernel would have used, just with placeholder numbers.
//        - a push targeting a tick >= WE is deferred (the closure is
//          parked in the frame), and every cross-shard network send is
//          deferred wholesale (its routing reads shared contention state).
//
//   3. Barrier replay. Frames are merged across shards in the serial
//      kernel's execution order — ascending (tick, seq) of the *executed*
//      event — and each frame's pushes are re-enacted in push order,
//      drawing true global sequence numbers: an in-window push just
//      records surrogate -> true-seq (its event already fired; only the
//      bookkeeping needed renumbering), a deferred push enters its
//      shard's queue under the true seq/key, and a deferred remote send
//      routes against the shared contention state and enters the
//      destination shard's queue. Because the replay order equals the
//      serial execution order, the true seqs assigned here are exactly
//      the ones the serial kernel's push counter would have produced, and
//      the contention state evolves identically.
//
//      The merge needs each frame's executed-event seq; for events that
//      were themselves pushed in-window that seq is a surrogate, resolved
//      through the surrogate map as the merge goes. Resolution is always
//      available at the head: a surrogate-keyed frame is preceded in its
//      own shard's log by the frame of the event that pushed it (same
//      shard, earlier execution), so by the time it can reach the merge
//      head its surrogate has been mapped.
//
//   4. Nonzero schedule seeds: surrogate keys hash exactly like the serial
//      kernel's, but the serial order cannot (and need not) be recovered —
//      frames replay in (shard, execution) order, still deterministic, so
//      each (seed, n_shards) pair names one legal schedule. Channel FIFO
//      survives at every seed: same-channel events share a key, and both
//      surrogate and true seqs are assigned in send order.
//
// Host threads only ever touch disjoint shard state between two barriers,
// and the barriers (mutex + condition variable) order those accesses, so
// the engine is data-race-free; results never depend on the worker count.

#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "sim/sweep.hpp"

namespace bcsim::sim {

namespace {

/// Identifies the shard whose window the current thread is draining.
/// Null `sim` means serial context (setup code, the barrier, or a plain
/// serial-kernel run).
struct WindowTls {
  Simulator* sim = nullptr;
  std::uint32_t shard = 0;
};
thread_local WindowTls g_window;

}  // namespace

/// One logged push. `kind` says how the barrier re-enacts it.
struct FramePushEntry {
  enum class Kind : std::uint8_t {
    kLocal,            ///< already in the shard queue under surrogate `aux`
    kDeferred,         ///< plain push parked for the barrier (tick >= WE)
    kDeferredChannel,  ///< channel push parked for the barrier; channel = `aux`
    kRemote,           ///< cross-shard send; `remote` routes + delivers
  };
  Kind kind;
  Tick at = 0;
  std::uint64_t aux = 0;
  EventFn fn;
  Simulator::ReplayFn remote;
};

/// One executed event's pushes: [first, first + count) in Shard::pushes.
/// (at, key, surrogate) identify the event's place in the serial order.
struct Simulator::Frame {
  Tick at;
  std::uint64_t key;  ///< executed event's seq (surrogate when `surrogate`)
  bool surrogate;
  std::uint32_t first;
  std::uint32_t count;
};

struct Simulator::Shard {
  std::uint32_t index = 0;
  EventQueue queue;
  TraceRecorder trace;
  Tick now = 0;            ///< local clock while draining a window
  Tick last_executed = 0;
  std::uint64_t events = 0;
  std::uint64_t surro_next = 0;  ///< per-window surrogate counter
  std::vector<Frame> frames;
  std::vector<FramePushEntry> pushes;
  std::unordered_map<std::uint64_t, std::uint64_t> surro_to_seq;
  std::exception_ptr error;
  // Executing-event bookkeeping (set before each callback fires).
  Tick cur_at = 0;
  std::uint64_t cur_seq = 0;
  bool cur_surrogate = false;
  bool frame_open = false;
};

/// Persistent worker pool: `run()` wakes every worker to execute the
/// simulator's shard-claiming loop, the caller participates, and the call
/// returns when all workers finished the generation (a full barrier, which
/// also publishes all shard state to whichever thread touches it next).
class Simulator::Gang {
 public:
  Gang(Simulator& sim, std::size_t workers) : sim_(sim) {
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { thread_main(); });
    }
  }

  ~Gang() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      shutdown_ = true;
      ++generation_;
    }
    cv_start_.notify_all();
    for (auto& t : threads_) t.join();
  }

  void run() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      pending_ = threads_.size();
      ++generation_;
    }
    cv_start_.notify_all();
    sim_.worker_loop_body();
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [this] { return pending_ == 0; });
  }

 private:
  void thread_main() {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_start_.wait(lk, [&] { return generation_ != seen; });
        seen = generation_;
        if (shutdown_) return;
      }
      sim_.worker_loop_body();
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (--pending_ == 0) cv_done_.notify_one();
      }
    }
  }

  Simulator& sim_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::vector<std::thread> threads_;
  std::size_t pending_ = 0;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
};

Simulator::Simulator() = default;
Simulator::~Simulator() = default;

void Simulator::set_schedule_seed(std::uint64_t seed) noexcept {
  queue_.set_schedule_seed(seed);
  for (auto& sp : shards_) sp->queue.set_schedule_seed(seed);
}

void Simulator::configure_shards(std::uint32_t n_shards, std::uint32_t n_nodes,
                                 Tick lookahead) {
  if (!shards_.empty() || !queue_.empty() || events_processed_ != 0) {
    throw std::logic_error("Simulator: configure_shards() must precede any scheduling");
  }
  if (n_nodes == 0) throw std::logic_error("Simulator: configure_shards() needs nodes");
  n_nodes_ = n_nodes;
  lookahead_ = std::max<Tick>(lookahead, 1);
  n_shards = std::min(n_shards, n_nodes);
  if (n_shards <= 1) return;  // the serial kernel stays in charge
  shards_.reserve(n_shards);
  for (std::uint32_t s = 0; s < n_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->index = s;
    shards_.back()->queue.set_schedule_seed(queue_.schedule_seed());
    if (trace_.enabled()) shards_.back()->trace.enable(trace_.capacity());
  }
  worker_threads_ = shard_worker_threads(n_shards);
}

void Simulator::enable_trace(std::size_t capacity) {
  trace_.enable(capacity);
  for (auto& sp : shards_) sp->trace.enable(capacity);
}

TraceRecorder Simulator::merged_trace() const {
  std::vector<const TraceRecorder*> parts;
  parts.reserve(shards_.size() + 1);
  parts.push_back(&trace_);
  for (const auto& sp : shards_) parts.push_back(&sp->trace);
  return TraceRecorder::merged(parts);
}

void Simulator::fold_lane_traces() {
  if (shards_.empty() || !trace_.enabled()) return;
  trace_ = merged_trace();
  // Re-arm each lane at its own capacity (enable() clears the ring).
  for (auto& sp : shards_) sp->trace.enable(sp->trace.capacity());
}

Tick Simulator::sharded_now() const noexcept {
  const WindowTls& w = g_window;
  if (w.sim == this) return shards_[w.shard]->now;
  return now_;
}

TraceRecorder& Simulator::lane_trace() noexcept {
  const WindowTls& w = g_window;
  if (w.sim == this) return shards_[w.shard]->trace;
  return trace_;
}

std::uint32_t Simulator::current_shard() const noexcept {
  const WindowTls& w = g_window;
  return (w.sim == this) ? w.shard : 0;
}

bool Simulator::in_window() const noexcept { return g_window.sim == this; }

// --- scheduling ---------------------------------------------------------

void Simulator::keyed_serial_push(std::uint32_t shard, Tick at, EventFn fn) {
  Shard& sh = *shards_[shard];
  const std::uint64_t seq = global_seq_++;
  sh.queue.push_keyed(at, sh.queue.key_for(seq), seq, std::move(fn));
}

void Simulator::keyed_serial_push_channel(std::uint32_t shard, Tick at,
                                          std::uint64_t channel, EventFn fn) {
  Shard& sh = *shards_[shard];
  const std::uint64_t seq = global_seq_++;
  sh.queue.push_keyed(at, sh.queue.channel_key(channel, seq), seq, std::move(fn));
}

void Simulator::window_push(std::uint32_t shard, Tick at, bool channel_keyed,
                            std::uint64_t channel, EventFn fn) {
  Shard& sh = *shards_[shard];
  if (at < sh.now) throw std::logic_error("Simulator: scheduling into the past");
  if (!sh.frame_open) {
    sh.frames.push_back(
        Frame{sh.cur_at, sh.cur_seq, sh.cur_surrogate,
              static_cast<std::uint32_t>(sh.pushes.size()), 0});
    sh.frame_open = true;
  }
  ++sh.frames.back().count;
  if (at < window_end_) {
    // Fires inside this window, necessarily on this shard: enqueue now
    // under a surrogate seq (renumbered at the barrier).
    const std::uint64_t surro = surro_base_ + sh.surro_next++;
    const std::uint64_t key = channel_keyed ? sh.queue.channel_key(channel, surro)
                                            : sh.queue.key_for(surro);
    sh.pushes.push_back(FramePushEntry{FramePushEntry::Kind::kLocal, at, surro, {}, {}});
    sh.queue.push_keyed(at, key, surro, std::move(fn));
    return;
  }
  sh.pushes.push_back(FramePushEntry{channel_keyed
                                         ? FramePushEntry::Kind::kDeferredChannel
                                         : FramePushEntry::Kind::kDeferred,
                                     at, channel, std::move(fn), {}});
}

void Simulator::sharded_schedule(Tick delay, EventFn fn) {
  const WindowTls& w = g_window;
  if (w.sim == this) {
    window_push(w.shard, shards_[w.shard]->now + delay, false, 0, std::move(fn));
    return;
  }
  keyed_serial_push(0, now_ + delay, std::move(fn));
}

void Simulator::sharded_schedule_at(Tick at, EventFn fn) {
  const WindowTls& w = g_window;
  if (w.sim == this) {
    window_push(w.shard, at, false, 0, std::move(fn));
    return;
  }
  if (at < now_) throw std::logic_error("Simulator: scheduling into the past");
  keyed_serial_push(0, at, std::move(fn));
}

void Simulator::sharded_schedule_at_channel(Tick at, std::uint64_t channel, EventFn fn) {
  const WindowTls& w = g_window;
  if (w.sim == this) {
    window_push(w.shard, at, true, channel, std::move(fn));
    return;
  }
  if (at < now_) throw std::logic_error("Simulator: scheduling into the past");
  keyed_serial_push_channel(0, at, channel, std::move(fn));
}

void Simulator::schedule_on(std::uint32_t shard, Tick delay, EventFn fn) {
  if (shards_.empty()) {
    queue_.push(now_ + delay, std::move(fn));
    return;
  }
  if (in_window()) {
    throw std::logic_error("Simulator: schedule_on() is serial-context only");
  }
  keyed_serial_push(std::min<std::uint32_t>(shard, n_shards() - 1), now_ + delay,
                    std::move(fn));
}

void Simulator::defer_remote(ReplayFn fn) {
  const WindowTls& w = g_window;
  if (w.sim != this) throw std::logic_error("Simulator: defer_remote() outside a window");
  Shard& sh = *shards_[w.shard];
  if (!sh.frame_open) {
    sh.frames.push_back(
        Frame{sh.cur_at, sh.cur_seq, sh.cur_surrogate,
              static_cast<std::uint32_t>(sh.pushes.size()), 0});
    sh.frame_open = true;
  }
  ++sh.frames.back().count;
  sh.pushes.push_back(
      FramePushEntry{FramePushEntry::Kind::kRemote, 0, 0, {}, std::move(fn)});
}

void Simulator::replay_push_channel(std::uint32_t shard, Tick at, std::uint64_t channel,
                                    EventFn fn) {
  if (shards_.empty()) {
    queue_.push_channel(at, channel, std::move(fn));
    return;
  }
  keyed_serial_push_channel(shard, at, channel, std::move(fn));
}

// --- running ------------------------------------------------------------

RunResult Simulator::run(Tick max_cycles) {
  stop_requested_.store(false, std::memory_order_relaxed);
  const Tick deadline = (max_cycles == kNever) ? kNever : saturating_add(now_, max_cycles);
  if (!shards_.empty()) return run_sharded(deadline);
  while (!queue_.empty()) {
    if (stop_requested_.load(std::memory_order_relaxed)) return RunResult::kStopped;
    const Tick t = queue_.next_tick();
    if (t > deadline) return RunResult::kBudget;
    auto [at, fn] = queue_.pop();
    now_ = at;
    ++events_processed_;
    fn();
  }
  return stop_requested_.load(std::memory_order_relaxed) ? RunResult::kStopped
                                                         : RunResult::kIdle;
}

RunResult Simulator::run_until(Tick until) {
  stop_requested_.store(false, std::memory_order_relaxed);
  if (!shards_.empty()) {
    RunResult r = run_sharded(until);
    if (r == RunResult::kBudget) r = RunResult::kIdle;  // later events stay queued
    if (now_ < until) now_ = until;
    return r;
  }
  while (!queue_.empty() && queue_.next_tick() <= until) {
    if (stop_requested_.load(std::memory_order_relaxed)) return RunResult::kStopped;
    auto [at, fn] = queue_.pop();
    now_ = at;
    ++events_processed_;
    fn();
  }
  if (stop_requested_.load(std::memory_order_relaxed)) return RunResult::kStopped;
  if (now_ < until) now_ = until;
  return RunResult::kIdle;
}

RunResult Simulator::run_sharded(Tick deadline) {
  for (;;) {
    Tick w = kNever;
    for (const auto& sp : shards_) {
      if (!sp->queue.empty()) w = std::min(w, sp->queue.next_tick());
    }
    if (w == kNever) return RunResult::kIdle;
    if (w > deadline) return RunResult::kBudget;
    Tick we = (lookahead_ > kNever - w) ? kNever : w + lookahead_;
    if (deadline != kNever && we > deadline) {
      we = deadline + 1;  // events at the deadline itself still run
    }
    exec_window(we);
    if (stop_requested_.load(std::memory_order_relaxed)) return RunResult::kStopped;
  }
}

void Simulator::exec_window(Tick window_end) {
  window_end_ = window_end;
  surro_base_ = global_seq_;
  for (auto& sp : shards_) sp->surro_next = 0;
  run_workers();
  Tick t = now_;
  for (const auto& sp : shards_) t = std::max(t, sp->last_executed);
  now_ = t;
  for (auto& sp : shards_) {
    if (sp->error) {
      std::exception_ptr e = sp->error;
      sp->error = nullptr;
      clear_window_logs();  // the run is over; drop the half-built window
      std::rethrow_exception(e);
    }
  }
  replay_window();
}

void Simulator::run_workers() {
  const std::uint32_t n = static_cast<std::uint32_t>(shards_.size());
  if (worker_threads_ <= 1) {
    for (std::uint32_t s = 0; s < n; ++s) drain_shard(s);
    return;
  }
  if (!gang_) gang_ = std::make_unique<Gang>(*this, worker_threads_ - 1);
  next_shard_.store(0, std::memory_order_relaxed);
  gang_->run();
}

void Simulator::worker_loop_body() {
  const std::uint32_t n = static_cast<std::uint32_t>(shards_.size());
  for (;;) {
    const std::uint32_t s = next_shard_.fetch_add(1, std::memory_order_relaxed);
    if (s >= n) return;
    drain_shard(s);
  }
}

void Simulator::drain_shard(std::uint32_t shard) {
  Shard& sh = *shards_[shard];
  g_window = WindowTls{this, shard};
  try {
    EventQueue& q = sh.queue;
    while (!q.empty() && q.next_tick() < window_end_) {
      auto ev = q.pop_ex();
      sh.now = ev.at;
      sh.last_executed = ev.at;
      ++sh.events;
      sh.cur_at = ev.at;
      sh.cur_seq = ev.seq;
      sh.cur_surrogate = ev.seq >= surro_base_;
      sh.frame_open = false;
      ev.fn();
    }
  } catch (...) {
    sh.error = std::current_exception();
  }
  g_window = WindowTls{};
}

void Simulator::replay_frame(Shard& sh, const Frame& f) {
  for (std::uint32_t i = 0; i < f.count; ++i) {
    FramePushEntry& p = sh.pushes[f.first + i];
    switch (p.kind) {
      case FramePushEntry::Kind::kLocal:
        // The event already fired in-window; it just needs the seq the
        // serial kernel would have given it, for later frames to resolve.
        sh.surro_to_seq.emplace(p.aux, global_seq_++);
        break;
      case FramePushEntry::Kind::kDeferred:
        // A deferred local push re-enters its own shard's queue (the target
        // is node-local state; cross-shard work travels as kRemote).
        keyed_serial_push(sh.index, p.at, std::move(p.fn));
        break;
      case FramePushEntry::Kind::kDeferredChannel:
        keyed_serial_push_channel(sh.index, p.at, p.aux, std::move(p.fn));
        break;
      case FramePushEntry::Kind::kRemote:
        p.remote(*this);
        break;
    }
  }
}

void Simulator::replay_window() {
  const bool exact = (queue_.schedule_seed() == 0);
  if (!exact) {
    // Any fixed order is a legal (and deterministic) serialization; FIFO
    // channels survive because intra-shard frame order is execution order.
    for (auto& sp : shards_) {
      for (const Frame& f : sp->frames) replay_frame(*sp, f);
    }
    clear_window_logs();
    return;
  }
  // Seed 0: merge frames in the serial kernel's execution order —
  // ascending (tick, seq) of the executed event, surrogates resolved
  // through the maps as frames are consumed.
  struct Head {
    Tick at;
    std::uint64_t seq;
    std::uint32_t shard;
    std::uint32_t idx;
  };
  auto later = [](const Head& a, const Head& b) noexcept {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  };
  auto resolved = [](const Shard& sh, const Frame& f) {
    return f.surrogate ? sh.surro_to_seq.at(f.key) : f.key;
  };
  std::vector<Head> heap;
  heap.reserve(shards_.size());
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    const Shard& sh = *shards_[s];
    if (!sh.frames.empty()) {
      // The first frame of a shard's log can never be surrogate-keyed (a
      // surrogate event's pusher logged an earlier frame on this shard).
      heap.push_back(Head{sh.frames[0].at, resolved(sh, sh.frames[0]), s, 0});
    }
  }
  std::make_heap(heap.begin(), heap.end(), later);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    const Head h = heap.back();
    heap.pop_back();
    Shard& sh = *shards_[h.shard];
    replay_frame(sh, sh.frames[h.idx]);
    const std::uint32_t ni = h.idx + 1;
    if (ni < sh.frames.size()) {
      heap.push_back(Head{sh.frames[ni].at, resolved(sh, sh.frames[ni]), h.shard, ni});
      std::push_heap(heap.begin(), heap.end(), later);
    }
  }
  clear_window_logs();
}

void Simulator::clear_window_logs() {
  for (auto& sp : shards_) {
    sp->frames.clear();
    sp->pushes.clear();
    sp->surro_to_seq.clear();
  }
}

std::uint64_t Simulator::events_processed() const noexcept {
  std::uint64_t n = events_processed_;
  for (const auto& sp : shards_) n += sp->events;
  return n;
}

std::size_t Simulator::pending_events() const noexcept {
  std::size_t n = queue_.size();
  for (const auto& sp : shards_) n += sp->queue.size();
  return n;
}

}  // namespace bcsim::sim
