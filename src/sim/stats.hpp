// Statistics collection: named counters and log2-bucketed histograms.
//
// Components register counters/histograms against a StatsRegistry by name;
// handles are stable for the registry's lifetime (deque storage). The
// registry can render a human-readable report and expose raw values to
// tests and benchmark harnesses.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#include "sim/types.hpp"

namespace bcsim::sim {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Histogram with 64 power-of-two buckets plus exact sum/count/min/max.
/// Bucket i counts samples with bit_width(sample) == i (bucket 0: sample 0).
class Histogram {
 public:
  void record(std::uint64_t sample) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }
  /// Approximate quantile from the log2 buckets (midpoint interpolation).
  [[nodiscard]] double quantile(double q) const noexcept;
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept { return buckets_.at(i); }

  void reset() noexcept;

  /// Adds another histogram's samples to this one. Exact for every moment
  /// the digest covers (count/sum/min/max) and for the log2 buckets, so
  /// folding per-shard lanes reproduces the serial histogram bit-for-bit.
  void merge_from(const Histogram& other) noexcept;

 private:
  std::array<std::uint64_t, 65> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ULL;
  std::uint64_t max_ = 0;
};

/// Owning registry of named statistics. Names are hierarchical by
/// convention ("net.messages", "cache3.hits"); iteration is sorted.
class StatsRegistry {
 public:
  /// Returns the counter registered under `name`, creating it on first use.
  Counter& counter(std::string_view name);
  /// Returns the histogram registered under `name`, creating it on first use.
  Histogram& histogram(std::string_view name);

  /// Value of a counter, or 0 if it was never registered (reads don't
  /// create; useful for tests that assert "nothing of kind X happened").
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  /// Sums all counters whose name starts with `prefix`.
  [[nodiscard]] std::uint64_t sum_by_prefix(std::string_view prefix) const;

  /// Human-readable dump of every statistic, sorted by name.
  void report(std::ostream& os) const;

  /// Machine-readable dump: one `kind,name,field,value` row per datum
  /// (counters: value; histograms: count/sum/min/max/mean/p50/p99).
  void write_csv(std::ostream& os) const;

  /// Order-independent FNV-1a fingerprint of every counter value and every
  /// histogram's exact moments (count/sum/min/max; derived doubles are
  /// excluded). Two runs of the same configuration must produce the same
  /// digest on any host — the bench harness and the determinism tests gate
  /// on it (docs/BENCHMARKS.md).
  [[nodiscard]] std::uint64_t digest() const noexcept;

  void reset_all() noexcept;

  /// Folds every statistic of `other` into this registry by name (creating
  /// missing entries) and resets `other`, leaving its handles valid. The
  /// sharded kernel gives each shard a private lane registry — components
  /// bump plain counters with no atomics — and absorbs the lanes after the
  /// run, reproducing the serial registry's contents exactly.
  void absorb(StatsRegistry& other);

 private:
  std::deque<Counter> counter_storage_;
  std::deque<Histogram> histogram_storage_;
  std::map<std::string, Counter*, std::less<>> counters_;
  std::map<std::string, Histogram*, std::less<>> histograms_;
};

}  // namespace bcsim::sim
