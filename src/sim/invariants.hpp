// Global protocol invariant checking (docs/TESTING.md has the full list).
//
// The simulator mirrors all distributed protocol state authoritatively at
// the directories (subscription lists, lock chains), which makes global
// invariants — SWMR, queue well-formedness, subscription-list integrity —
// cheap to state and check. The InvariantChecker walks the whole machine
// and cross-checks the directory mirrors against the distributed cache
// state. Two granularities:
//
//   * entry-local checks run after every directory transition (messages may
//     be in flight, so only invariants that hold continuously are checked);
//   * whole-machine checks require quiescence (no message in flight), when
//     the distributed pointers must agree exactly with the mirrors.
//
// Violations throw InvariantViolation carrying the offending block, node,
// and tick so a failing schedule seed can be replayed straight to the bug.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "sim/types.hpp"

namespace bcsim::core {
class Machine;
}

namespace bcsim::sim {

/// How much invariant checking a Machine performs on its own.
enum class InvariantLevel : std::uint8_t {
  kOff,      ///< no checking (production/bench default)
  kQuiesce,  ///< whole-machine check at the end of every Machine::run()
  kFull,     ///< kQuiesce + entry-local checks after every directory transition
};

[[nodiscard]] constexpr std::string_view to_string(InvariantLevel l) noexcept {
  switch (l) {
    case InvariantLevel::kOff: return "off";
    case InvariantLevel::kQuiesce: return "quiesce";
    case InvariantLevel::kFull: return "full";
  }
  return "?";
}

/// Thrown on any violated invariant; what() is a full diagnostic of the
/// form "invariant violation [name] at tick T, block B (home H), node N: …".
class InvariantViolation : public std::logic_error {
 public:
  InvariantViolation(const std::string& what, BlockId block_, NodeId node_, Tick tick_)
      : std::logic_error(what), block(block_), node(node_), tick(tick_) {}

  BlockId block;  ///< offending block
  NodeId node;    ///< offending node (kNoNode when the fault is entry-global)
  Tick tick;      ///< simulated time of detection
};

class InvariantChecker {
 public:
  explicit InvariantChecker(core::Machine& machine) : m_(machine) {}

  /// Entry-local invariants for one block at its home directory: list/chain
  /// well-formedness, usage-bit exclusivity, WBI state sanity. Safe while
  /// messages are in flight; cheap enough to run after every transition.
  void check_entry(NodeId home, BlockId block) const;

  /// Whole-machine invariants: SWMR cross-checked against every cache,
  /// subscription-list pointer integrity and termination, lock-queue
  /// holder/waiter agreement, write buffers drained, per-word dirty/merge
  /// consistency. Only valid when Machine::quiescent() — the distributed
  /// mirrors lag the directory while messages are in flight. `where` names
  /// the checkpoint in diagnostics (e.g. "end-of-run").
  void check_quiescent(const char* where) const;

 private:
  core::Machine& m_;
};

}  // namespace bcsim::sim
