// Parallel parameter-sweep runner: runs independent simulation
// configurations concurrently on host threads. Each simulation is itself
// single-threaded and deterministic; only whole experiments run in
// parallel, so no simulated state is shared across threads.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bcsim::sim {

/// The one clamp applied to sweep parallelism, from any source: each worker
/// runs a whole single-threaded Machine, so beyond this fan-out the memory
/// footprint dwarfs any scheduling win.
inline constexpr std::size_t kMaxSweepThreads = 64;

/// Number of worker threads to use for sweeps: BCSIM_SWEEP_THREADS if set
/// to a valid integer >= 1 (invalid values are ignored with a one-time
/// warning), else hardware concurrency; either way clamped to
/// [1, kMaxSweepThreads].
[[nodiscard]] std::size_t sweep_threads() noexcept;

/// Runs fn(i) for i in [0, n) across worker threads; results are returned
/// in index order. The first exception (if any) is re-thrown after all
/// workers finish.
template <typename R>
std::vector<R> parallel_map(std::size_t n, const std::function<R(std::size_t)>& fn) {
  std::vector<R> results(n);
  if (n == 0) return results;
  const std::size_t workers = std::min(sweep_threads(), n);
  std::mutex mu;
  std::size_t next = 0;
  std::exception_ptr error;
  auto worker = [&] {
    for (;;) {
      std::size_t i;
      {
        std::lock_guard<std::mutex> lk(mu);
        if (next >= n || error) return;
        i = next++;
      }
      try {
        results[i] = fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu);
        if (!error) error = std::current_exception();
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  if (error) std::rethrow_exception(error);
  return results;
}

}  // namespace bcsim::sim
