// Parallel parameter-sweep runner: runs independent simulation
// configurations concurrently on host threads. Each simulation is itself
// single-threaded and deterministic; only whole experiments run in
// parallel, so no simulated state is shared across threads.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bcsim::sim {

/// The one clamp applied to sweep parallelism, from any source: each worker
/// runs a whole single-threaded Machine, so beyond this fan-out the memory
/// footprint dwarfs any scheduling win.
inline constexpr std::size_t kMaxSweepThreads = 64;

/// Number of worker threads to use for sweeps: BCSIM_SWEEP_THREADS if set
/// to a valid integer >= 1 (invalid values are ignored with a one-time
/// warning), else hardware concurrency; either way clamped to
/// [1, kMaxSweepThreads].
[[nodiscard]] std::size_t sweep_threads() noexcept;

/// The process-wide host-thread budget shared by every parallelism source
/// (sweep workers, sharded-kernel workers): BCSIM_THREAD_BUDGET if set to a
/// valid integer >= 1 (invalid values ignored with a one-time warning),
/// else max(hardware concurrency, kMaxSweepThreads) — i.e. non-binding by
/// default so explicit BCSIM_SWEEP_THREADS choices keep working. Without
/// this cap a sweep of sharded runs would spawn workers x shards threads.
[[nodiscard]] std::size_t thread_budget() noexcept;

///// Worker threads a sharded Simulator may use for `n_shards` shards: the
/// budget divided by the width of any sweep currently running (each sweep
/// worker may be driving its own sharded Machine), clamped to
/// [1, n_shards]. With the default (hardware) budget the gang is further
/// clamped to the core count — gang workers rendezvous at every window
/// barrier, so oversubscription only adds context switches; an explicit
/// BCSIM_THREAD_BUDGET bypasses that clamp (deliberate oversubscription,
/// e.g. racing the gang under TSan on a small host). Warns once when an
/// active sweep clamps it below n_shards — raise BCSIM_THREAD_BUDGET to
/// trade memory for parallelism. The clamp only throttles host threads;
/// shard *schedules* are thread-count-independent, so results never change.
[[nodiscard]] std::size_t shard_worker_threads(std::size_t n_shards) noexcept;

/// Sweep workers currently executing (>= 1; nested sweeps multiply).
[[nodiscard]] std::size_t active_sweep_workers() noexcept;

namespace detail {
/// RAII registration of a running sweep's worker count, so concurrently
/// constructed sharded Machines can size their gangs within the budget.
class SweepWidthGuard {
 public:
  explicit SweepWidthGuard(std::size_t workers) noexcept;
  ~SweepWidthGuard();
  SweepWidthGuard(const SweepWidthGuard&) = delete;
  SweepWidthGuard& operator=(const SweepWidthGuard&) = delete;

 private:
  std::size_t workers_;
};
}  // namespace detail

/// Runs fn(i) for i in [0, n) across worker threads; results are returned
/// in index order. The first exception (if any) is re-thrown after all
/// workers finish.
template <typename R>
std::vector<R> parallel_map(std::size_t n, const std::function<R(std::size_t)>& fn) {
  std::vector<R> results(n);
  if (n == 0) return results;
  const std::size_t workers = std::min({sweep_threads(), n, thread_budget()});
  detail::SweepWidthGuard width_guard(workers);
  std::mutex mu;
  std::size_t next = 0;
  std::exception_ptr error;
  auto worker = [&] {
    for (;;) {
      std::size_t i;
      {
        std::lock_guard<std::mutex> lk(mu);
        if (next >= n || error) return;
        i = next++;
      }
      try {
        results[i] = fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu);
        if (!error) error = std::current_exception();
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  if (error) std::rethrow_exception(error);
  return results;
}

}  // namespace bcsim::sim
