// Set-associative data cache with LRU replacement.
//
// The cache stores *frames*; protocol state lives in the CacheLine. Victim
// selection skips pinned frames (transaction in flight) and lock-active
// frames (lock lines live in the separate LockCache anyway, but defense in
// depth costs nothing). The caller owns what happens to the victim
// (write-back of dirty words, reset-update notification).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cache/cache_line.hpp"
#include "sim/types.hpp"

namespace bcsim::cache {

class Cache {
 public:
  /// `blocks` total frames, `assoc`-way associative. `blocks` must be a
  /// multiple of `assoc`.
  Cache(std::uint32_t blocks, std::uint32_t assoc);

  /// Looks up the line caching `b`; nullptr on miss.
  [[nodiscard]] CacheLine* find(BlockId b) noexcept;
  [[nodiscard]] const CacheLine* find(BlockId b) const noexcept;

  /// Picks a victim frame in b's set. Invalid frames first, then LRU among
  /// unpinned, lock-inactive frames. Returns nullptr when every frame in
  /// the set is unreplaceable (caller must stall and retry).
  [[nodiscard]] CacheLine* pick_victim(BlockId b) noexcept;

  /// Marks a use for LRU.
  void touch(CacheLine& line, Tick now) noexcept { line.last_use = now; }

  [[nodiscard]] std::uint32_t n_sets() const noexcept { return n_sets_; }
  [[nodiscard]] std::uint32_t assoc() const noexcept { return assoc_; }

  /// Iterates all valid lines (for invariant checks in tests).
  template <typename Fn>
  void for_each_valid(Fn&& fn) const {
    for (const auto& line : frames_) {
      if (line.valid) fn(line);
    }
  }

 private:
  [[nodiscard]] std::uint32_t set_of(BlockId b) const noexcept {
    return static_cast<std::uint32_t>(b % n_sets_);
  }

  std::uint32_t n_sets_;
  std::uint32_t assoc_;
  std::vector<CacheLine> frames_;  // set-major layout
};

}  // namespace bcsim::cache
