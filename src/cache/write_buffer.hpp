// Write buffer: the hardware behind buffered consistency (paper section 4.2).
//
// WRITE-GLOBAL requests are entered here and sent to memory immediately
// (the network model handles queuing); an entry is retired when the
// acknowledgment from the home memory arrives. The number of pending
// entries implicitly implements the Adve-Hill pending-operation counter
// (paper section 3, issue 2). FLUSH-BUFFER waiters are resumed when the
// buffer drains — that is the CP-Synch gate.
//
// Capacity may be bounded (a real machine) or unbounded (the paper's
// simulation assumption). When bounded and full, new writes block until a
// slot frees; the caller provides the continuation.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sim/types.hpp"

namespace bcsim::cache {

class WriteBuffer {
 public:
  /// `capacity` 0 means unbounded (paper Table 4 assumption).
  explicit WriteBuffer(std::size_t capacity = 0) : capacity_(capacity) {}

  [[nodiscard]] bool unbounded() const noexcept { return capacity_ == 0; }
  [[nodiscard]] std::size_t pending() const noexcept { return pending_; }
  [[nodiscard]] bool empty() const noexcept { return pending_ == 0; }
  [[nodiscard]] bool full() const noexcept {
    return capacity_ != 0 && pending_ >= capacity_;
  }

  /// Registers a new in-flight global write; returns its transaction id.
  std::uint64_t enter() {
    ++pending_;
    return next_txn_++;
  }

  /// Retires the entry matching an acknowledgment. Fires flush waiters when
  /// the buffer drains and slot waiters when a slot frees.
  void retire() {
    --pending_;
    if (!slot_waiters_.empty() && !full()) {
      auto fn = std::move(slot_waiters_.front());
      slot_waiters_.pop_front();
      fn();
    }
    if (pending_ == 0) {
      auto waiters = std::move(flush_waiters_);
      flush_waiters_.clear();
      for (auto& w : waiters) w();
    }
  }

  /// Runs `fn` once the buffer is empty (immediately if already empty).
  void on_drained(std::function<void()> fn) {
    if (pending_ == 0) {
      fn();
    } else {
      flush_waiters_.push_back(std::move(fn));
    }
  }

  /// Runs `fn` once a slot is available (immediately if not full).
  void on_slot(std::function<void()> fn) {
    if (!full()) {
      fn();
    } else {
      slot_waiters_.push_back(std::move(fn));
    }
  }

  /// Continuations parked on the buffer (flush + slot waiters). An empty
  /// buffer with waiters is a lost wakeup — the invariant checker asserts
  /// this is zero at quiescence.
  [[nodiscard]] std::size_t waiters() const noexcept {
    return flush_waiters_.size() + slot_waiters_.size();
  }

 private:
  std::size_t capacity_;
  std::size_t pending_ = 0;
  std::uint64_t next_txn_ = 1;
  std::vector<std::function<void()>> flush_waiters_;
  std::deque<std::function<void()>> slot_waiters_;
};

}  // namespace bcsim::cache
