// Write buffer: the hardware behind buffered consistency (paper section 4.2).
//
// WRITE-GLOBAL requests are entered here and sent to memory immediately
// (the network model handles queuing); an entry is retired when the
// acknowledgment from the home memory arrives. The number of pending
// entries implicitly implements the Adve-Hill pending-operation counter
// (paper section 3, issue 2). FLUSH-BUFFER waiters are resumed when the
// writes *preceding* the flush have retired — that is the CP-Synch gate.
//
// Flush semantics (paper section 4.2): FLUSH-BUFFER only guarantees that
// global writes issued *before* it are performed; writes issued after may
// still be in flight. The gate is therefore a retire-count watermark
// captured at registration, not an empty-buffer test: under a bounded
// buffer, a slot freed by a retire immediately refills from a backlogged
// writer, so `pending == 0` may never hold and an empty-buffer gate would
// starve the flush (and with it the CP-Synch it protects) indefinitely.
//
// Capacity may be bounded (a real machine) or unbounded (the paper's
// simulation assumption). When bounded and full, new writes block until a
// slot frees; the caller provides the continuation.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <stdexcept>

#include "sim/types.hpp"

namespace bcsim::cache {

class WriteBuffer {
 public:
  /// Deliberate misbehaviors for oracle validation (core::WbFault mirrors
  /// this at the machine-config level; docs/TESTING.md).
  enum class Fault : std::uint8_t {
    kNone,
    kEagerFlush,  ///< on_drained fires immediately, gate removed
    kEmptyGate,   ///< on_drained waits for a fully empty buffer (pre-fix bug)
  };

  /// `capacity` 0 means unbounded (paper Table 4 assumption).
  explicit WriteBuffer(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Test-only: makes the flush gate misbehave (see Fault). Takes effect
  /// for flushes registered after the call.
  void inject_fault(Fault f) noexcept { fault_ = f; }

  [[nodiscard]] bool unbounded() const noexcept { return capacity_ == 0; }
  [[nodiscard]] std::size_t pending() const noexcept {
    return static_cast<std::size_t>(entered_ - retired_);
  }
  [[nodiscard]] bool empty() const noexcept { return entered_ == retired_; }
  [[nodiscard]] bool full() const noexcept {
    return capacity_ != 0 && pending() >= capacity_;
  }
  /// Cumulative writes retired (monotonic; flush watermarks compare here).
  [[nodiscard]] std::uint64_t retired() const noexcept { return retired_; }

  /// Registers a new in-flight global write; returns its transaction id.
  std::uint64_t enter() {
    ++entered_;
    return next_txn_++;
  }

  /// Retires the entry matching an acknowledgment. Fires one slot waiter
  /// when a slot frees, then every flush waiter whose watermark has been
  /// reached. The slot waiter goes first: the write it enters is *after*
  /// any already-registered flush, so it must not delay one.
  void retire() {
    if (retired_ == entered_) {
      throw std::logic_error("WriteBuffer::retire: ack without a matching entry");
    }
    ++retired_;
    if (!slot_waiters_.empty() && !full()) {
      auto fn = std::move(slot_waiters_.front());
      slot_waiters_.pop_front();
      fn();  // typically enter()s — raises entered_, not existing watermarks
    }
    while (!flush_waiters_.empty() && waiter_ready(flush_waiters_.front())) {
      auto fn = std::move(flush_waiters_.front().fn);
      flush_waiters_.pop_front();
      fn();
    }
  }

  /// Runs `fn` once every write entered *before this call* has retired
  /// (immediately if they already have). Writes entered afterwards do not
  /// delay it — the paper's FLUSH-BUFFER orders a CP-Synch after the
  /// writes that precede it, nothing more.
  void on_drained(std::function<void()> fn) {
    if (fault_ == Fault::kEagerFlush || retired_ >= entered_) {
      fn();
    } else {
      const std::uint64_t mark = fault_ == Fault::kEmptyGate ? kEmptyMark : entered_;
      flush_waiters_.push_back(FlushWaiter{mark, std::move(fn)});
    }
  }

  /// Runs `fn` once a slot is available (immediately if not full).
  void on_slot(std::function<void()> fn) {
    if (!full()) {
      fn();
    } else {
      slot_waiters_.push_back(std::move(fn));
    }
  }

  /// Continuations parked on the buffer (flush + slot waiters). An empty
  /// buffer with waiters is a lost wakeup — the invariant checker asserts
  /// this is zero at quiescence.
  [[nodiscard]] std::size_t waiters() const noexcept {
    return flush_waiters_.size() + slot_waiters_.size();
  }

 private:
  /// A parked FLUSH-BUFFER: fires once `retired_` reaches the number of
  /// writes entered before it registered. Watermarks are non-decreasing in
  /// registration order, so the deque stays sorted by construction.
  /// kEmptyMark (the injected empty-gate bug) only fires on a fully
  /// drained buffer.
  struct FlushWaiter {
    std::uint64_t watermark;
    std::function<void()> fn;
  };
  static constexpr std::uint64_t kEmptyMark = ~std::uint64_t{0};

  [[nodiscard]] bool waiter_ready(const FlushWaiter& w) const noexcept {
    return w.watermark == kEmptyMark ? retired_ == entered_ : w.watermark <= retired_;
  }

  std::size_t capacity_;
  Fault fault_ = Fault::kNone;
  std::uint64_t entered_ = 0;
  std::uint64_t retired_ = 0;
  std::uint64_t next_txn_ = 1;
  std::deque<FlushWaiter> flush_waiters_;
  std::deque<std::function<void()>> slot_waiters_;
};

}  // namespace bcsim::cache
