// Cache line: data + the directory-entry fields of paper Figure 2a.
//
// Each line carries, beyond tag/state/data: per-word dirty bits d1..dk (so
// replacement writes back only dirty words — the false-sharing fix), an
// update bit (read-update subscription active), a lock field, and prev/next
// node pointers used to thread this line into either the read-update
// subscriber list or the lock waiting queue (the two uses are mutually
// exclusive per block; the central directory's usage bit says which).
#pragma once

#include <cstdint>

#include "net/message.hpp"
#include "sim/types.hpp"

namespace bcsim::cache {

/// Classic MSI stable states for the WBI baseline protocol. Lines used by
/// the read-update protocol or as lock lines are kShared-like for reads and
/// carry their own flags.
enum class MsiState : std::uint8_t { kInvalid, kShared, kModified };

/// Lock field of the cache directory entry (paper Figure 2a). States track
/// the line's position in the CBL protocol.
enum class LockState : std::uint8_t {
  kNone,       ///< not a lock line
  kWaitRead,   ///< enqueued, waiting for a read-lock grant
  kWaitWrite,  ///< enqueued, waiting for a write-lock grant
  kHeldRead,   ///< holding a shared lock
  kHeldWrite,  ///< holding an exclusive lock
  kDraining,   ///< released but possibly still the queue tail (successor
               ///< announce may be in flight; resolved via the directory)
  kReleasing,  ///< read-lock released; directory orchestrates disposition
  kQuerying,   ///< write-lock released with no known successor; tail query
               ///< outstanding — an arriving successor announce is handled
               ///< as a drain (hand off immediately)
};

struct CacheLine {
  BlockId block = 0;
  bool valid = false;

  MsiState msi = MsiState::kInvalid;
  bool update_bit = false;            ///< read-update subscription active
  LockState lock = LockState::kNone;
  std::uint32_t dirty_mask = 0;       ///< d1..dk of Figure 2a
  bool memory_stale = false;          ///< lock-carried data differs from memory

  NodeId prev = kNoNode;              ///< queue pointer (Figure 2a)
  NodeId next = kNoNode;              ///< queue pointer (Figure 2a)
  net::LockMode next_mode = net::LockMode::kRead;  ///< successor's requested mode

  net::BlockData data;
  Tick last_use = 0;                  ///< LRU timestamp
  bool pinned = false;                ///< transaction in flight; not replaceable
  std::uint64_t ru_version = 0;       ///< version of the last applied update

  [[nodiscard]] bool dirty() const noexcept { return dirty_mask != 0; }
  [[nodiscard]] bool holds_lock() const noexcept {
    return lock == LockState::kHeldRead || lock == LockState::kHeldWrite;
  }
  [[nodiscard]] bool lock_active() const noexcept { return lock != LockState::kNone; }

  /// Resets everything except the frame itself.
  void clear() noexcept {
    block = 0;
    valid = false;
    msi = MsiState::kInvalid;
    update_bit = false;
    lock = LockState::kNone;
    dirty_mask = 0;
    memory_stale = false;
    prev = next = kNoNode;
    next_mode = net::LockMode::kRead;
    data = net::BlockData{};
    last_use = 0;
    pinned = false;
    ru_version = 0;
  }
};

}  // namespace bcsim::cache
