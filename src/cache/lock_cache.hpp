// Lock cache: small fully-associative cache for lock lines (paper 4.3).
//
// Lines that participate in a lock queue must not be replaced (replacement
// would break the distributed linked list), so they live here instead of
// the main cache. The paper treats its limited size as a resource managed
// conservatively by the compiler; we expose the capacity as configuration,
// block acquisitions when full (counting stalls so the ablation bench can
// quantify the pressure), and free entries when a line leaves the queue.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <unordered_map>

#include "cache/cache_line.hpp"
#include "sim/types.hpp"

namespace bcsim::cache {

class LockCache {
 public:
  explicit LockCache(std::uint32_t capacity) : capacity_(capacity) {}

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return index_.size(); }
  [[nodiscard]] bool full() const noexcept { return index_.size() >= capacity_; }

  [[nodiscard]] CacheLine* find(BlockId b) noexcept {
    auto it = index_.find(b);
    return it == index_.end() ? nullptr : &*it->second;
  }
  [[nodiscard]] const CacheLine* find(BlockId b) const noexcept {
    auto it = index_.find(b);
    return it == index_.end() ? nullptr : &*it->second;
  }

  /// Allocates an entry for block `b`. Precondition: !full() && !find(b).
  CacheLine& allocate(BlockId b) {
    lines_.emplace_back();
    auto it = std::prev(lines_.end());
    it->clear();
    it->block = b;
    it->valid = true;
    index_.emplace(b, it);
    return *it;
  }

  /// Releases the entry for `b` and wakes one capacity waiter, if any.
  void release(BlockId b) {
    auto it = index_.find(b);
    if (it == index_.end()) return;
    lines_.erase(it->second);
    index_.erase(it);
    if (!waiters_.empty() && !full()) {
      auto fn = std::move(waiters_.front());
      waiters_.pop_front();
      ++stalls_served_;
      fn();
    }
  }

  /// Runs `fn` once an entry can be allocated (immediately if not full).
  /// Returns true if the caller had to wait.
  bool on_slot(std::function<void()> fn) {
    if (!full()) {
      fn();
      return false;
    }
    waiters_.push_back(std::move(fn));
    return true;
  }

  /// Number of acquisitions that had to wait for lock-cache capacity.
  [[nodiscard]] std::uint64_t stalls_served() const noexcept { return stalls_served_; }

  /// Acquisitions currently parked for capacity. A non-full cache with
  /// waiters is a lost wakeup — the invariant checker asserts this is zero
  /// at quiescence.
  [[nodiscard]] std::size_t waiting() const noexcept { return waiters_.size(); }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& line : lines_) fn(line);
  }

 private:
  std::uint32_t capacity_;
  std::list<CacheLine> lines_;  // stable addresses across insert/erase
  std::unordered_map<BlockId, std::list<CacheLine>::iterator> index_;
  std::deque<std::function<void()>> waiters_;
  std::uint64_t stalls_served_ = 0;
};

}  // namespace bcsim::cache
