#include "cache/cache.hpp"

#include <stdexcept>

namespace bcsim::cache {

Cache::Cache(std::uint32_t blocks, std::uint32_t assoc) : assoc_(assoc) {
  if (assoc == 0 || blocks == 0 || blocks % assoc != 0) {
    throw std::invalid_argument("Cache: blocks must be a positive multiple of assoc");
  }
  n_sets_ = blocks / assoc;
  frames_.resize(blocks);
}

CacheLine* Cache::find(BlockId b) noexcept {
  const std::uint32_t s = set_of(b);
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    CacheLine& line = frames_[static_cast<std::size_t>(s) * assoc_ + w];
    if (line.valid && line.block == b) return &line;
  }
  return nullptr;
}

const CacheLine* Cache::find(BlockId b) const noexcept {
  return const_cast<Cache*>(this)->find(b);
}

CacheLine* Cache::pick_victim(BlockId b) noexcept {
  const std::uint32_t s = set_of(b);
  CacheLine* best = nullptr;
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    CacheLine& line = frames_[static_cast<std::size_t>(s) * assoc_ + w];
    if (!line.valid) return &line;
    if (line.pinned || line.lock_active()) continue;
    if (best == nullptr || line.last_use < best->last_use) best = &line;
  }
  return best;
}

}  // namespace bcsim::cache
