// Deterministic iterative linear equation solver (paper section 4.1):
// Jacobi iteration x_i^(k+1) = (b_i - sum_{j!=i} a_ij x_j^(k)) / a_ii on a
// diagonally dominant system, one x element owned per processor, a barrier
// between iterations. This is the workload behind paper Table 2: the x
// vector is the shared read-write data, and its allocation is switchable
// between colocated (inv-I) and one-element-per-block (inv-II).
//
// Values are doubles carried through the simulated memory via bit_cast, so
// the test suite can assert that the machine — through whichever coherence
// protocol — actually computes the right answer.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/machine.hpp"
#include "core/sync/barrier.hpp"
#include "sim/task.hpp"

namespace bcsim::workload {

struct LinearSolverConfig {
  std::uint32_t iterations = 8;
  bool separate_x_blocks = false;  ///< false: colocate x (inv-I); true: inv-II
  std::uint64_t matrix_seed = 42;
};

class LinearSolverWorkload {
 public:
  /// System dimension == number of processors (the paper's dance-hall
  /// analysis setup).
  LinearSolverWorkload(core::Machine& machine, LinearSolverConfig cfg);

  sim::Task run(core::Processor& p);
  void spawn_all(core::Machine& machine);

  /// Reads x back from simulated memory (after the run).
  [[nodiscard]] std::vector<double> solution(const core::Machine& machine) const;
  /// Host-side reference: the same Jacobi iterations computed natively.
  [[nodiscard]] std::vector<double> reference() const;
  /// Max |Ax - b| residual of the simulated solution.
  [[nodiscard]] double residual(const core::Machine& machine) const;

  [[nodiscard]] static Word pack(double d) noexcept { return std::bit_cast<Word>(d); }
  [[nodiscard]] static double unpack(Word w) noexcept { return std::bit_cast<double>(w); }

 private:
  [[nodiscard]] Addr x_addr(std::uint32_t i) const;

  LinearSolverConfig cfg_;
  std::uint32_t n_;
  core::AddressAllocator alloc_;
  std::vector<double> a_;  ///< n x n matrix (host copy; read-only shared data)
  std::vector<double> b_;
  Addr a_base_;
  Addr b_base_;
  Addr x_base_;
  std::unique_ptr<sync::Barrier> barrier_;
};

}  // namespace bcsim::workload
