// Red-black 1D relaxation (Gauss-Seidel smoothing of a Laplace problem):
// the classic nearest-neighbor-sharing workload. Each processor owns a
// contiguous chunk of the vector; only chunk-boundary cells are shared
// (neighbors read them as halos), so this exercises exactly the paper's
// intended READ-UPDATE usage — a reader subscribes to the few remote words
// it keeps re-reading, and the owner's WRITE-GLOBAL pushes each new value.
//
// Red cells (even index) update from black neighbors and vice versa, with
// a barrier between half-sweeps, so the computation is deterministic and
// the test suite compares it bit-exactly against a host reference.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/machine.hpp"
#include "core/sync/barrier.hpp"
#include "sim/task.hpp"

namespace bcsim::workload {

struct StencilConfig {
  std::uint32_t cells_per_proc = 8;  ///< chunk size (total = n_nodes * this)
  std::uint32_t sweeps = 6;          ///< full red+black sweeps
  std::uint64_t data_seed = 11;
};

class StencilWorkload {
 public:
  StencilWorkload(core::Machine& machine, StencilConfig cfg);

  sim::Task run(core::Processor& p);
  void spawn_all(core::Machine& machine);

  /// Host-side reference (same sweep structure, same FP order).
  [[nodiscard]] std::vector<double> reference() const;
  /// Vector read back from simulated memory.
  [[nodiscard]] std::vector<double> result(const core::Machine& machine) const;

  [[nodiscard]] std::uint32_t total_cells() const noexcept { return total_; }

 private:
  [[nodiscard]] Addr cell_addr(std::uint32_t i) const { return base_ + i; }
  [[nodiscard]] bool chunk_boundary(std::uint32_t i) const;

  StencilConfig cfg_;
  std::uint32_t n_;
  std::uint32_t total_;
  core::AddressAllocator alloc_;
  Addr base_;
  std::vector<double> init_;
  std::unique_ptr<sync::Barrier> barrier_;
};

}  // namespace bcsim::workload
