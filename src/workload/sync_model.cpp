#include "workload/sync_model.hpp"

#include "workload/access.hpp"

namespace bcsim::workload {

using core::Machine;
using core::Processor;

SyncModelWorkload::SyncModelWorkload(Machine& machine, SyncModelConfig cfg)
    : cfg_(cfg), alloc_(machine.make_allocator()) {
  shared_blocks_.reserve(cfg_.n_shared_blocks);
  for (std::uint32_t i = 0; i < cfg_.n_shared_blocks; ++i) {
    shared_blocks_.push_back(alloc_.alloc_blocks(1));
  }
  locks_.reserve(cfg_.n_locks);
  for (std::uint32_t i = 0; i < cfg_.n_locks; ++i) {
    locks_.push_back(
        sync::make_mutex(machine.config().lock_impl, alloc_, machine.n_nodes()));
    // Data protected by the lock: rides the lock block under CBL; lives in
    // its own block for software locks (keeps the lock word uncontended by
    // data traffic).
    lock_data_.push_back(locks_.back()->data_rides_lock() ? locks_.back()->lock_addr()
                                                          : alloc_.alloc_blocks(1));
  }
  barrier_ = sync::make_barrier(machine.config().barrier_impl, alloc_, machine.n_nodes());
}

bool SyncModelWorkload::lock_slot(std::uint32_t t) const {
  sim::SplitMix64 h(cfg_.schedule_seed ^ (static_cast<std::uint64_t>(t) * 0x9e3779b9ULL));
  const double u = static_cast<double>(h.next() >> 11) * 0x1.0p-53;
  return u < cfg_.lock_ratio;
}

sim::Task SyncModelWorkload::data_reference(Processor& p) {
  auto& rng = p.rng();
  if (!rng.chance(cfg_.shared_ratio)) {
    co_await p.private_access();
    co_return;
  }
  const Addr base = shared_blocks_[rng.next_below(shared_blocks_.size())];
  const Addr a = base + rng.next_below(p.config().block_words);
  if (rng.chance(cfg_.read_ratio)) {
    co_await shared_read(p, a);
  } else {
    co_await shared_write(p, a, rng.next_u64());
  }
}

sim::Task SyncModelWorkload::run(Processor& p) {
  auto& rng = p.rng();
  for (std::uint32_t t = 0; t < cfg_.tasks_per_proc; ++t) {
    for (std::uint32_t r = 0; r < cfg_.grain; ++r) {
      co_await data_reference(p);
    }
    if (lock_slot(t)) {
      // Lock-protected critical section: under CBL the protected words
      // arrive with the grant itself.
      const std::size_t li = rng.next_below(locks_.size());
      auto& mtx = *locks_[li];
      co_await mtx.acquire(p);
      const bool rides = mtx.data_rides_lock();
      const std::uint32_t bw = p.config().block_words;
      for (std::uint32_t r = 0; r < cfg_.cs_references; ++r) {
        const Addr a = lock_data_[li] + rng.next_below(bw);
        if (rng.chance(cfg_.read_ratio)) {
          co_await cs_read(p, a, rides);
        } else {
          co_await cs_write(p, a, rng.next_u64(), rides);
        }
      }
      co_await mtx.release(p);
    } else {
      co_await barrier_->wait(p);
    }
  }
  // Final rendezvous so completion time covers every processor's work.
  co_await barrier_->wait(p);
}

void SyncModelWorkload::spawn_all(Machine& machine) {
  for (NodeId i = 0; i < machine.n_nodes(); ++i) {
    machine.spawn_on(i, run(machine.processor(i)));
  }
}

}  // namespace bcsim::workload
