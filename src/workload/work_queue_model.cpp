#include "workload/work_queue_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "workload/access.hpp"

namespace bcsim::workload {

using core::Machine;
using core::Processor;

WorkQueueWorkload::WorkQueueWorkload(Machine& machine, WorkQueueConfig cfg)
    : cfg_(cfg), alloc_(machine.make_allocator()) {
  if (cfg_.total_tasks == 0) throw std::invalid_argument("work queue: total_tasks == 0");
  shared_blocks_.reserve(cfg_.n_shared_blocks);
  for (std::uint32_t i = 0; i < cfg_.n_shared_blocks; ++i) {
    shared_blocks_.push_back(alloc_.alloc_blocks(1));
  }
  queue_lock_ = sync::make_mutex(machine.config().lock_impl, alloc_, machine.n_nodes());
  barrier_ = sync::make_barrier(machine.config().barrier_impl, alloc_, machine.n_nodes());

  // Queue metadata: colocated with the CBL lock when the block is big
  // enough (the paper's data-rides-lock pattern), otherwise its own block.
  meta_rides_lock_ =
      queue_lock_->data_rides_lock() && machine.config().block_words >= 4;
  meta_ = meta_rides_lock_ ? queue_lock_->lock_addr() : alloc_.alloc_words(4);
  slots_ = alloc_.alloc_words(cfg_.total_tasks);

  // Seed tasks (placed directly in backing memory before the run starts).
  const std::uint32_t seeds =
      cfg_.initial_tasks != 0 ? cfg_.initial_tasks
                              : std::min(machine.n_nodes(), cfg_.total_tasks);
  machine.poke_memory(head_addr(), 0);
  machine.poke_memory(tail_addr(), seeds);
  machine.poke_memory(generated_addr(), seeds);
  machine.poke_memory(done_addr(), 0);
  for (std::uint32_t i = 0; i < seeds; ++i) {
    machine.poke_memory(slot_addr(i), 0x7a5c0000ULL + i);
  }
}

std::uint64_t WorkQueueWorkload::tasks_executed(const Machine& machine) const {
  return machine.peek_coherent(done_addr());
}

sim::Task WorkQueueWorkload::data_reference(Processor& p) {
  auto& rng = p.rng();
  if (!rng.chance(cfg_.shared_ratio)) {
    co_await p.private_access();
    co_return;
  }
  const Addr base = shared_blocks_[rng.next_below(shared_blocks_.size())];
  const Addr a = base + rng.next_below(p.config().block_words);
  if (rng.chance(cfg_.read_ratio)) {
    co_await shared_read(p, a);
  } else {
    co_await shared_write(p, a, rng.next_u64());
  }
}

sim::Task WorkQueueWorkload::execute_task(Processor& p, Word /*task_seed*/) {
  for (std::uint32_t r = 0; r < cfg_.grain; ++r) {
    co_await data_reference(p);
  }
}

sim::Task WorkQueueWorkload::run(Processor& p) {
  auto& rng = p.rng();
  unsigned idle_spins = 0;
  for (;;) {
    co_await queue_lock_->acquire(p);
    const bool rides = meta_rides_lock_;
    const Word done = co_await cs_read(p, done_addr(), rides);
    if (done >= cfg_.total_tasks) {
      co_await queue_lock_->release(p);
      break;
    }
    Word head = co_await cs_read(p, head_addr(), rides);
    Word tail = co_await cs_read(p, tail_addr(), rides);
    Word gen = co_await cs_read(p, generated_addr(), rides);
    if (head == tail) {
      if (gen < cfg_.total_tasks) {
        // Queue drained but budget remains: a fresh independent task
        // becomes ready (models new tasks whose dependencies resolved).
        co_await cs_write(p, slot_addr(tail), 0x5eed0000ULL + gen, /*rides=*/false);
        co_await cs_write(p, tail_addr(), tail + 1, rides);
        co_await cs_write(p, generated_addr(), gen + 1, rides);
        co_await queue_lock_->release(p);
        idle_spins = 0;
        continue;
      }
      // All generated tasks are being executed elsewhere; back off briefly.
      co_await queue_lock_->release(p);
      ++idle_spins;
      co_await p.compute(1 + rng.backoff(idle_spins + 2, 512));
      continue;
    }
    idle_spins = 0;
    const Word seed = co_await cs_read(p, slot_addr(head), /*rides=*/false);
    co_await cs_write(p, head_addr(), head + 1, rides);
    co_await cs_write(p, done_addr(), done + 1, rides);
    // "If a new task is generated as a result of the processing, it is
    // inserted into the queue." The spawn decision is made while the queue
    // is held so `generated` stays consistent.
    if (gen < cfg_.total_tasks && rng.chance(cfg_.spawn_prob)) {
      co_await cs_write(p, slot_addr(tail), seed * 2654435761ULL + 1, /*rides=*/false);
      co_await cs_write(p, tail_addr(), tail + 1, rides);
      co_await cs_write(p, generated_addr(), gen + 1, rides);
    }
    co_await queue_lock_->release(p);
    co_await execute_task(p, seed);
  }
  co_await barrier_->wait(p);
}

void WorkQueueWorkload::spawn_all(Machine& machine) {
  for (NodeId i = 0; i < machine.n_nodes(); ++i) {
    machine.spawn_on(i, run(machine.processor(i)));
  }
}

}  // namespace bcsim::workload
