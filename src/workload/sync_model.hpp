// The "sync" workload model (paper section 5.2): a probabilistic memory
// reference generator in the style of Archibald & Baer, extended with
// synchronization operations. Each processor executes a fixed number of
// tasks; a task is `grain` data references (each private with probability
// 1 - shared_ratio, otherwise a read or write of a random shared block);
// tasks are separated by a synchronization operation — a lock-protected
// critical section with probability lock_ratio, a barrier otherwise.
//
// Parameter defaults follow paper Table 4.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/machine.hpp"
#include "core/sync/barrier.hpp"
#include "core/sync/mutex.hpp"
#include "sim/task.hpp"

namespace bcsim::workload {

struct SyncModelConfig {
  std::uint32_t tasks_per_proc = 16;   ///< tasks each processor executes
  std::uint32_t grain = 100;           ///< data references per task (granularity)
  double shared_ratio = 0.03;          ///< Table 4: task-execution shared ratio
  double read_ratio = 0.85;            ///< Table 4
  std::uint32_t n_shared_blocks = 32;  ///< Table 4
  double lock_ratio = 0.5;             ///< Table 4: lock vs barrier sync ops
  std::uint32_t n_locks = 8;           ///< locks drawn uniformly (low contention)
  std::uint32_t cs_references = 4;     ///< references inside a critical section
  std::uint64_t schedule_seed = 0x5c4ed01eULL;  ///< shared lock/barrier schedule
};

class SyncModelWorkload {
 public:
  SyncModelWorkload(core::Machine& machine, SyncModelConfig cfg);

  /// Program for processor `p`; spawn one per node.
  sim::Task run(core::Processor& p);

  /// Registers one program per processor on the machine.
  void spawn_all(core::Machine& machine);

 private:
  sim::Task data_reference(core::Processor& p);

  /// True when task slot `t` synchronizes with a lock (false: barrier).
  /// The schedule is shared by all processors — a per-processor coin flip
  /// would deadlock the barrier.
  [[nodiscard]] bool lock_slot(std::uint32_t t) const;

  SyncModelConfig cfg_;
  core::AddressAllocator alloc_;
  std::vector<Addr> shared_blocks_;
  std::vector<std::unique_ptr<sync::Mutex>> locks_;
  std::vector<Addr> lock_data_;  ///< per-lock protected block
  std::unique_ptr<sync::Barrier> barrier_;
};

}  // namespace bcsim::workload
