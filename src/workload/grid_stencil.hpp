// 2D red-black Gauss-Seidel (5-point Laplace smoothing) with a 2D domain
// decomposition: each processor owns a rectangular tile of a G x G grid
// and exchanges halo cells with up to four neighbors. On the mesh network
// the communication pattern maps onto physical neighbor links; on the
// paper's machine the halo exchange is READ-UPDATE subscriptions fed by
// the owners' WRITE-GLOBALs — the "regions of a shared data structure"
// pattern of paper section 4.2 at realistic scale.
//
// Checkerboard coloring makes the parallel computation order-independent,
// so tests compare the result bit-exactly against a host reference.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/machine.hpp"
#include "core/sync/barrier.hpp"
#include "sim/task.hpp"

namespace bcsim::workload {

struct GridStencilConfig {
  std::uint32_t grid = 16;    ///< G: the domain is G x G cells
  std::uint32_t sweeps = 4;   ///< full red+black sweeps
  std::uint64_t data_seed = 17;
};

class GridStencilWorkload {
 public:
  GridStencilWorkload(core::Machine& machine, GridStencilConfig cfg);

  sim::Task run(core::Processor& p);
  void spawn_all(core::Machine& machine);

  [[nodiscard]] std::vector<double> reference() const;
  [[nodiscard]] std::vector<double> result(const core::Machine& machine) const;

  [[nodiscard]] std::uint32_t grid() const noexcept { return cfg_.grid; }
  [[nodiscard]] std::uint32_t tile_cols() const noexcept { return pcols_; }
  [[nodiscard]] std::uint32_t tile_rows() const noexcept { return prows_; }

 private:
  struct Tile {
    std::uint32_t x0, x1;  ///< [x0, x1)
    std::uint32_t y0, y1;  ///< [y0, y1)
  };
  [[nodiscard]] Tile tile_of(NodeId p) const;
  [[nodiscard]] Addr cell_addr(std::uint32_t x, std::uint32_t y) const {
    return base_ + static_cast<Addr>(y) * cfg_.grid + x;
  }
  [[nodiscard]] bool tile_edge(const Tile& t, std::uint32_t x, std::uint32_t y) const {
    return x == t.x0 || x + 1 == t.x1 || y == t.y0 || y + 1 == t.y1;
  }

  GridStencilConfig cfg_;
  std::uint32_t n_;
  std::uint32_t pcols_, prows_;  ///< processor grid (pcols_ * prows_ >= n_)
  core::AddressAllocator alloc_;
  Addr base_;
  std::vector<double> init_;
  std::unique_ptr<sync::Barrier> barrier_;
};

}  // namespace bcsim::workload
