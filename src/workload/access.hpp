// Shared-data access helpers that dispatch on the configured data protocol.
//
// The paper's division of labor makes the *software* responsible for
// choosing the right primitive per access (section 3). These helpers encode
// the canonical choices so workloads stay protocol-agnostic:
//
//   * WBI machine: plain READ/WRITE are the coherent operations.
//   * read-update machine:
//       - reads of producer/consumer data subscribe with READ-UPDATE
//         (updates are pushed thereafter);
//       - one-shot reads use READ-GLOBAL (bypass, always fresh);
//       - shared writes use WRITE-GLOBAL (buffered under BC);
//       - accesses to data colocated with a held CBL lock are plain local
//         READ/WRITE — the data rides the lock, and the unlock writes the
//         block back (the paper's critical-section locality argument).
#pragma once

#include "core/config.hpp"
#include "core/processor.hpp"
#include "sim/task.hpp"

namespace bcsim::workload {

using core::DataProtocol;
using core::Processor;

/// Read shared data that will be read again (worth a subscription).
inline sim::SimFuture<Word> shared_read(Processor& p, Addr a) {
  return p.config().data_protocol == DataProtocol::kReadUpdate ? p.read_update(a)
                                                               : p.read(a);
}

/// Read shared data once (no subscription; always-fresh value).
inline sim::SimFuture<Word> shared_read_once(Processor& p, Addr a) {
  return p.config().data_protocol == DataProtocol::kReadUpdate ? p.read_global(a)
                                                               : p.read(a);
}

/// Write shared data (globally visible; buffered under BC).
inline sim::SimFuture<Word> shared_write(Processor& p, Addr a, Word v) {
  return p.config().data_protocol == DataProtocol::kReadUpdate ? p.write_global(a, v)
                                                               : p.write(a, v);
}

/// Read inside a critical section. `rides_lock` says the word lives in the
/// block of the held CBL lock (delivered by the grant).
inline sim::SimFuture<Word> cs_read(Processor& p, Addr a, bool rides_lock) {
  if (p.config().data_protocol != DataProtocol::kReadUpdate) return p.read(a);
  return rides_lock ? p.read(a) : p.read_global(a);
}

/// Write inside a critical section. Writes to non-lock-resident data use
/// WRITE-GLOBAL; the CP-Synch flush at unlock makes them visible in order.
inline sim::SimFuture<Word> cs_write(Processor& p, Addr a, Word v, bool rides_lock) {
  if (p.config().data_protocol != DataProtocol::kReadUpdate) return p.write(a, v);
  return rides_lock ? p.write(a, v) : p.write_global(a, v);
}

}  // namespace bcsim::workload
