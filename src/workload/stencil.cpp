#include "workload/stencil.hpp"

#include <bit>

#include "sim/random.hpp"
#include "workload/access.hpp"
#include "workload/linear_solver.hpp"  // pack/unpack helpers

namespace bcsim::workload {

using core::Machine;
using core::Processor;

namespace {
Word pack(double d) { return LinearSolverWorkload::pack(d); }
double unpack(Word w) { return LinearSolverWorkload::unpack(w); }
}  // namespace

StencilWorkload::StencilWorkload(Machine& machine, StencilConfig cfg)
    : cfg_(cfg), n_(machine.n_nodes()), total_(machine.n_nodes() * cfg.cells_per_proc),
      alloc_(machine.make_allocator()) {
  base_ = alloc_.alloc_words(total_);
  barrier_ = sync::make_barrier(machine.config().barrier_impl, alloc_, n_);
  sim::Rng rng(cfg_.data_seed);
  init_.resize(total_);
  for (std::uint32_t i = 0; i < total_; ++i) {
    init_[i] = rng.next_double() * 10.0;
    machine.poke_memory(cell_addr(i), pack(init_[i]));
  }
}

bool StencilWorkload::chunk_boundary(std::uint32_t i) const {
  const std::uint32_t in_chunk = i % cfg_.cells_per_proc;
  return in_chunk == 0 || in_chunk == cfg_.cells_per_proc - 1;
}

sim::Task StencilWorkload::run(Processor& p) {
  const std::uint32_t lo = p.id() * cfg_.cells_per_proc;
  const std::uint32_t hi = lo + cfg_.cells_per_proc;
  // Local mirror of the owned chunk (a real program would keep these in
  // registers/private memory anyway; shared traffic is what we model).
  std::vector<double> mine(cfg_.cells_per_proc);
  for (std::uint32_t i = lo; i < hi; ++i) {
    mine[i - lo] = unpack(co_await p.read(cell_addr(i)));
  }
  for (std::uint32_t sweep = 0; sweep < cfg_.sweeps; ++sweep) {
    for (std::uint32_t color = 0; color < 2; ++color) {
      for (std::uint32_t i = lo; i < hi; ++i) {
        if (i % 2 != color) continue;
        if (i == 0 || i == total_ - 1) continue;  // fixed boundary
        // Neighbors: local mirror when owned, halo read when remote. Halo
        // cells are the other color, so they are stable during this
        // half-sweep.
        double left, right;
        if (i - 1 >= lo) {
          left = mine[i - 1 - lo];
        } else {
          left = unpack(co_await shared_read(p, cell_addr(i - 1)));
        }
        if (i + 1 < hi) {
          right = mine[i + 1 - lo];
        } else {
          right = unpack(co_await shared_read(p, cell_addr(i + 1)));
        }
        const double v = 0.5 * (left + right);
        mine[i - lo] = v;
        co_await p.compute(4);
        if (chunk_boundary(i)) {
          // Publish: a neighbor subscribes to this cell.
          co_await shared_write(p, cell_addr(i), pack(v));
        } else {
          co_await p.write(cell_addr(i), pack(v));
        }
      }
      // CP-Synch before the next half-sweep reads our published halos.
      co_await barrier_->wait(p);
    }
  }
  // Final publish of the whole chunk so result() can read it from memory.
  for (std::uint32_t i = lo; i < hi; ++i) {
    co_await shared_write(p, cell_addr(i), pack(mine[i - lo]));
  }
  co_await p.flush_buffer();
  co_await barrier_->wait(p);
}

void StencilWorkload::spawn_all(Machine& machine) {
  for (NodeId i = 0; i < n_; ++i) machine.spawn_on(i, run(machine.processor(i)));
}

std::vector<double> StencilWorkload::reference() const {
  std::vector<double> x = init_;
  for (std::uint32_t sweep = 0; sweep < cfg_.sweeps; ++sweep) {
    for (std::uint32_t color = 0; color < 2; ++color) {
      for (std::uint32_t i = 1; i + 1 < total_; ++i) {
        if (i % 2 != color) continue;
        x[i] = 0.5 * (x[i - 1] + x[i + 1]);
      }
    }
  }
  return x;
}

std::vector<double> StencilWorkload::result(const Machine& machine) const {
  std::vector<double> x(total_);
  for (std::uint32_t i = 0; i < total_; ++i) {
    x[i] = unpack(machine.peek_coherent(cell_addr(i)));
  }
  return x;
}

}  // namespace bcsim::workload
