#include "workload/grid_stencil.hpp"

#include "sim/random.hpp"
#include "workload/access.hpp"
#include "workload/linear_solver.hpp"  // pack/unpack helpers

namespace bcsim::workload {

using core::Machine;
using core::Processor;

namespace {
Word pack(double d) { return LinearSolverWorkload::pack(d); }
double unpack(Word w) { return LinearSolverWorkload::unpack(w); }
}  // namespace

GridStencilWorkload::GridStencilWorkload(Machine& machine, GridStencilConfig cfg)
    : cfg_(cfg), n_(machine.n_nodes()), alloc_(machine.make_allocator()) {
  // Exact factorization (pcols_ * prows_ == n_): the most square divisor
  // pair; prime counts degrade to 1 x n strips. Every cell has an owner.
  prows_ = 1;
  for (std::uint32_t d = 1; d * d <= n_; ++d) {
    if (n_ % d == 0) prows_ = d;
  }
  pcols_ = n_ / prows_;
  base_ = alloc_.alloc_words(static_cast<std::uint64_t>(cfg_.grid) * cfg_.grid);
  barrier_ = sync::make_barrier(machine.config().barrier_impl, alloc_, n_);
  sim::Rng rng(cfg_.data_seed);
  init_.resize(static_cast<std::size_t>(cfg_.grid) * cfg_.grid);
  for (std::uint32_t y = 0; y < cfg_.grid; ++y) {
    for (std::uint32_t x = 0; x < cfg_.grid; ++x) {
      const double v = rng.next_double() * 8.0;
      init_[static_cast<std::size_t>(y) * cfg_.grid + x] = v;
      machine.poke_memory(cell_addr(x, y), pack(v));
    }
  }
}

GridStencilWorkload::Tile GridStencilWorkload::tile_of(NodeId p) const {
  const std::uint32_t px = p % pcols_;
  const std::uint32_t py = p / pcols_;
  Tile t;
  t.x0 = px * cfg_.grid / pcols_;
  t.x1 = (px + 1) * cfg_.grid / pcols_;
  t.y0 = py * cfg_.grid / prows_;
  t.y1 = (py + 1) * cfg_.grid / prows_;
  return t;
}

sim::Task GridStencilWorkload::run(Processor& p) {
  const Tile t = tile_of(p.id());
  const std::uint32_t tw = t.x1 > t.x0 ? t.x1 - t.x0 : 0;
  const std::uint32_t th = t.y1 > t.y0 ? t.y1 - t.y0 : 0;
  std::vector<double> mine(static_cast<std::size_t>(tw) * th);
  auto mref = [&](std::uint32_t x, std::uint32_t y) -> double& {
    return mine[static_cast<std::size_t>(y - t.y0) * tw + (x - t.x0)];
  };
  auto in_tile = [&](std::uint32_t x, std::uint32_t y) {
    return x >= t.x0 && x < t.x1 && y >= t.y0 && y < t.y1;
  };
  for (std::uint32_t y = t.y0; y < t.y1; ++y) {
    for (std::uint32_t x = t.x0; x < t.x1; ++x) {
      mref(x, y) = unpack(co_await p.read(cell_addr(x, y)));
    }
  }
  for (std::uint32_t sweep = 0; sweep < cfg_.sweeps; ++sweep) {
    for (std::uint32_t color = 0; color < 2; ++color) {
      for (std::uint32_t y = t.y0; y < t.y1; ++y) {
        for (std::uint32_t x = t.x0; x < t.x1; ++x) {
          if ((x + y) % 2 != color) continue;
          if (x == 0 || y == 0 || x + 1 == cfg_.grid || y + 1 == cfg_.grid) {
            continue;  // fixed boundary
          }
          // Four neighbors (the other color: stable during this half-sweep).
          double nb[4];
          const std::uint32_t nx[4] = {x - 1, x + 1, x, x};
          const std::uint32_t ny[4] = {y, y, y - 1, y + 1};
          for (int k = 0; k < 4; ++k) {
            if (in_tile(nx[k], ny[k])) {
              nb[k] = mref(nx[k], ny[k]);
            } else {
              nb[k] = unpack(co_await shared_read(p, cell_addr(nx[k], ny[k])));
            }
          }
          const double v = 0.25 * (nb[0] + nb[1] + nb[2] + nb[3]);
          mref(x, y) = v;
          co_await p.compute(5);
          if (tile_edge(t, x, y)) {
            co_await shared_write(p, cell_addr(x, y), pack(v));
          } else {
            co_await p.write(cell_addr(x, y), pack(v));
          }
        }
      }
      co_await barrier_->wait(p);  // CP-Synch: publish halos before next color
    }
  }
  // Final publish so result() sees everything at memory.
  for (std::uint32_t y = t.y0; y < t.y1; ++y) {
    for (std::uint32_t x = t.x0; x < t.x1; ++x) {
      co_await shared_write(p, cell_addr(x, y), pack(mref(x, y)));
    }
  }
  co_await p.flush_buffer();
  co_await barrier_->wait(p);
}

void GridStencilWorkload::spawn_all(Machine& machine) {
  for (NodeId i = 0; i < n_; ++i) machine.spawn_on(i, run(machine.processor(i)));
}

std::vector<double> GridStencilWorkload::reference() const {
  std::vector<double> g = init_;
  const std::uint32_t G = cfg_.grid;
  for (std::uint32_t sweep = 0; sweep < cfg_.sweeps; ++sweep) {
    for (std::uint32_t color = 0; color < 2; ++color) {
      for (std::uint32_t y = 1; y + 1 < G; ++y) {
        for (std::uint32_t x = 1; x + 1 < G; ++x) {
          if ((x + y) % 2 != color) continue;
          g[static_cast<std::size_t>(y) * G + x] =
              0.25 * (g[static_cast<std::size_t>(y) * G + x - 1] +
                      g[static_cast<std::size_t>(y) * G + x + 1] +
                      g[static_cast<std::size_t>(y - 1) * G + x] +
                      g[static_cast<std::size_t>(y + 1) * G + x]);
        }
      }
    }
  }
  return g;
}

std::vector<double> GridStencilWorkload::result(const Machine& machine) const {
  std::vector<double> g(static_cast<std::size_t>(cfg_.grid) * cfg_.grid);
  for (std::uint32_t y = 0; y < cfg_.grid; ++y) {
    for (std::uint32_t x = 0; x < cfg_.grid; ++x) {
      g[static_cast<std::size_t>(y) * cfg_.grid + x] =
          unpack(machine.peek_coherent(cell_addr(x, y)));
    }
  }
  return g;
}

}  // namespace bcsim::workload
