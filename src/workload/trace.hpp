// Trace-driven simulation (listed as future work in the paper's
// conclusions; implemented here). A trace is a per-processor sequence of
// operations in a simple text format, one record per line:
//
//   <proc> <op> [<addr>] [<value>]
//
//   ops: r  read            w  write          rg read-global
//        wg write-global    ru read-update    xu reset-update
//        fl flush-buffer    rl read-lock      wl write-lock
//        ul unlock          c  compute        ts test-and-set
//        fa fetch-add
//
// Lines starting with '#' are comments. The runner replays each
// processor's stream through the Table-1 primitives; the writer emits the
// same format, so traces can be captured, edited, and replayed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/machine.hpp"
#include "sim/task.hpp"

namespace bcsim::workload {

enum class TraceOp : std::uint8_t {
  kRead, kWrite, kReadGlobal, kWriteGlobal, kReadUpdate, kResetUpdate,
  kFlushBuffer, kReadLock, kWriteLock, kUnlock, kCompute, kTestAndSet, kFetchAdd,
};

struct TraceRecord {
  NodeId proc = 0;
  TraceOp op = TraceOp::kRead;
  Addr addr = 0;    ///< address, or cycle count for kCompute
  Word value = 0;
};

[[nodiscard]] std::string_view to_string(TraceOp op) noexcept;
/// Parses an op mnemonic; throws std::invalid_argument on unknown input.
[[nodiscard]] TraceOp parse_trace_op(std::string_view s);

class Trace {
 public:
  Trace() = default;

  void append(TraceRecord r) { records_.push_back(r); }
  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept { return records_; }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  /// Parses the text format; throws std::invalid_argument with a line
  /// number on malformed input.
  static Trace parse(std::istream& in);
  static Trace parse_string(const std::string& text);
  void write(std::ostream& out) const;

  /// Splits into per-processor streams (program order preserved).
  [[nodiscard]] std::vector<std::vector<TraceRecord>> per_processor(
      std::uint32_t n_nodes) const;

 private:
  std::vector<TraceRecord> records_;
};

/// Captures the primitive streams of a running machine into a Trace
/// (paper future work: "trace-driven simulation ... is also being
/// investigated" — this is the capture half of that pipeline; replay is
/// TraceWorkload). Attach before run(), detach (or destroy) after.
/// Limitation: raw swap/compare-swap RMWs have no trace mnemonic and are
/// recorded as fetch-add of 0 with a comment-free best effort — the
/// sync-library algorithms use test&set / fetch&add, which round-trip
/// exactly.
class TraceRecorder {
 public:
  explicit TraceRecorder(core::Machine& machine);
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Stops recording and detaches the hooks.
  void detach();

  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }
  [[nodiscard]] Trace take() { return std::move(trace_); }

 private:
  core::Machine* machine_;
  Trace trace_;
};

/// Replays a trace on a machine: one program per processor that has
/// records. Returns the sum of read values per processor (a cheap checksum
/// tests can assert on).
class TraceWorkload {
 public:
  TraceWorkload(core::Machine& machine, Trace trace);

  void spawn_all(core::Machine& machine);
  [[nodiscard]] const std::vector<Word>& checksums() const noexcept { return checksums_; }

 private:
  sim::Task run(core::Processor& p, const std::vector<TraceRecord>& stream);

  std::vector<std::vector<TraceRecord>> streams_;
  std::vector<Word> checksums_;
};

}  // namespace bcsim::workload
