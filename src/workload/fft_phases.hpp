// Phased butterfly-exchange workload (paper section 4.2): "in parallel FFT
// programs, readers may need access to different regions of a shared data
// structure during different phases of the computation ... the program may
// selectively reset the update bit for certain regions and request the
// regions to be used in the current phase using the read-update primitive."
//
// Each processor owns one region (a block) of a shared array. In phase s,
// processor i combines its region with that of partner i XOR 2^s: it
// subscribes to the partner's region with READ-UPDATE, combines, publishes
// its new region with WRITE-GLOBAL, unsubscribes from the old partner with
// RESET-UPDATE, and crosses a barrier. The computation is an exclusive-scan
// butterfly over integer data so the final state is checkable exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/machine.hpp"
#include "core/sync/barrier.hpp"
#include "sim/task.hpp"

namespace bcsim::workload {

struct FftPhasesConfig {
  std::uint32_t words_per_region = 4;  ///< region size (defaults to one block)
  std::uint64_t data_seed = 7;
};

class FftPhasesWorkload {
 public:
  FftPhasesWorkload(core::Machine& machine, FftPhasesConfig cfg);

  sim::Task run(core::Processor& p);
  void spawn_all(core::Machine& machine);

  /// Expected region contents after all phases (host-side butterfly).
  [[nodiscard]] std::vector<std::vector<Word>> expected() const;
  /// Actual region contents read back from simulated memory.
  [[nodiscard]] std::vector<std::vector<Word>> actual(const core::Machine& machine) const;

  [[nodiscard]] std::uint32_t phases() const noexcept { return phases_; }

 private:
  [[nodiscard]] Addr region_addr(std::uint32_t owner, std::uint32_t w) const;

  FftPhasesConfig cfg_;
  std::uint32_t n_;       ///< participants (rounded down to a power of two)
  std::uint32_t phases_;  ///< log2(n)
  core::AddressAllocator alloc_;
  Addr base_;
  std::vector<std::vector<Word>> init_;
  std::unique_ptr<sync::Barrier> barrier_;
};

}  // namespace bcsim::workload
