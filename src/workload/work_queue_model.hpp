// The work-queue workload model (paper section 5.2): "a dynamic scheduling
// paradigm believed to be the kernel of several parallel programs". A
// shared queue of executable tasks is protected by a mutex; each processor
// repeatedly dequeues a task, executes it (`grain` data references under
// the sync-model reference mix), and may enqueue a newly generated task.
// All processors run until the global task budget is drained, then meet at
// a barrier. Completion time of that barrier is the metric the paper plots
// in Figures 4-7.
//
// Queue bookkeeping (head, tail, generated, done) lives in one block: under
// CBL that block IS the lock block, so dequeue/enqueue metadata arrives
// with the lock grant — the paper's data-rides-lock locality. Task slots
// live in a shared ring accessed inside the critical section, which is what
// gives queue manipulation its high shared-access ratio (Table 4: 0.5).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/machine.hpp"
#include "core/sync/barrier.hpp"
#include "core/sync/mutex.hpp"
#include "sim/task.hpp"

namespace bcsim::workload {

struct WorkQueueConfig {
  std::uint32_t total_tasks = 256;    ///< global task budget
  std::uint32_t grain = 100;          ///< data references per task
  double shared_ratio = 0.03;         ///< during task execution (Table 4)
  double read_ratio = 0.85;           ///< Table 4
  std::uint32_t n_shared_blocks = 32; ///< Table 4
  double spawn_prob = 0.5;            ///< chance an executed task spawns a child
  std::uint32_t initial_tasks = 0;    ///< 0: one seed task per processor
};

class WorkQueueWorkload {
 public:
  WorkQueueWorkload(core::Machine& machine, WorkQueueConfig cfg);

  sim::Task run(core::Processor& p);
  void spawn_all(core::Machine& machine);

  /// Number of tasks actually executed (valid after the run; read from
  /// simulated memory, so it also checks queue integrity).
  [[nodiscard]] std::uint64_t tasks_executed(const core::Machine& machine) const;

 private:
  sim::Task data_reference(core::Processor& p);
  sim::Task execute_task(core::Processor& p, Word task_seed);

  WorkQueueConfig cfg_;
  core::AddressAllocator alloc_;
  std::vector<Addr> shared_blocks_;
  std::unique_ptr<sync::Mutex> queue_lock_;
  std::unique_ptr<sync::Barrier> barrier_;
  bool meta_rides_lock_ = false;

  // Queue layout in shared memory.
  Addr meta_;   ///< meta_+0: head, +1: tail, +2: generated, +3: done
  Addr slots_;  ///< ring of total_tasks slots (task seeds)

  [[nodiscard]] Addr head_addr() const { return meta_ + 0; }
  [[nodiscard]] Addr tail_addr() const { return meta_ + 1; }
  [[nodiscard]] Addr generated_addr() const { return meta_ + 2; }
  [[nodiscard]] Addr done_addr() const { return meta_ + 3; }
  [[nodiscard]] Addr slot_addr(Word i) const { return slots_ + (i % cfg_.total_tasks); }
};

}  // namespace bcsim::workload
