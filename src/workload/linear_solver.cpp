#include "workload/linear_solver.hpp"

#include <cmath>

#include "sim/random.hpp"
#include "workload/access.hpp"

namespace bcsim::workload {

using core::Machine;
using core::Processor;

LinearSolverWorkload::LinearSolverWorkload(Machine& machine, LinearSolverConfig cfg)
    : cfg_(cfg), n_(machine.n_nodes()), alloc_(machine.make_allocator()) {
  // Diagonally dominant system: Jacobi converges.
  sim::Rng rng(cfg_.matrix_seed);
  a_.resize(static_cast<std::size_t>(n_) * n_);
  b_.resize(n_);
  for (std::uint32_t i = 0; i < n_; ++i) {
    for (std::uint32_t j = 0; j < n_; ++j) {
      a_[static_cast<std::size_t>(i) * n_ + j] =
          (i == j) ? static_cast<double>(n_) + 1.0 + rng.next_double()
                   : rng.next_double();
    }
    b_[i] = rng.next_double() * static_cast<double>(n_);
  }

  a_base_ = alloc_.alloc_words(static_cast<std::uint64_t>(n_) * n_);
  b_base_ = alloc_.alloc_words(n_);
  // x allocation: the experiment's knob (Table 2's inv-I vs inv-II).
  if (cfg_.separate_x_blocks) {
    x_base_ = alloc_.alloc_blocks(n_);
  } else {
    x_base_ = alloc_.alloc_words(n_);
  }
  barrier_ = sync::make_barrier(machine.config().barrier_impl, alloc_, n_);

  for (std::uint32_t i = 0; i < n_; ++i) {
    for (std::uint32_t j = 0; j < n_; ++j) {
      machine.poke_memory(a_base_ + static_cast<Addr>(i) * n_ + j,
                          pack(a_[static_cast<std::size_t>(i) * n_ + j]));
    }
    machine.poke_memory(b_base_ + i, pack(b_[i]));
    machine.poke_memory(x_addr(i), pack(0.0));
  }
}

Addr LinearSolverWorkload::x_addr(std::uint32_t i) const {
  return cfg_.separate_x_blocks ? x_base_ + static_cast<Addr>(i) * alloc_.block_words()
                                : x_base_ + i;
}

sim::Task LinearSolverWorkload::run(Processor& p) {
  const std::uint32_t i = p.id();
  for (std::uint32_t k = 0; k < cfg_.iterations; ++k) {
    // Phase 1: read the x^(k) snapshot and compute. The read of each x_j
    // is the interesting shared access (READ-UPDATE on the paper's
    // machine: after the first iteration the values are pushed to us and
    // these become cache hits — Table 2's "read" row).
    double acc = 0.0;
    for (std::uint32_t j = 0; j < n_; ++j) {
      if (j == i) continue;
      const double aij =
          unpack(co_await p.read(a_base_ + static_cast<Addr>(i) * n_ + j));
      const double xj = unpack(co_await shared_read(p, x_addr(j)));
      acc += aij * xj;
      co_await p.compute(2);  // multiply-accumulate
    }
    const double bi = unpack(co_await p.read(b_base_ + i));
    const double aii =
        unpack(co_await p.read(a_base_ + static_cast<Addr>(i) * n_ + i));
    const double xi = (bi - acc) / aii;
    co_await p.compute(8);  // division
    // Barrier: everyone has read the snapshot before anyone overwrites it
    // (keeps the parallel computation bit-identical to the host Jacobi).
    co_await barrier_->wait(p);
    // Phase 2: publish x_i^(k+1) (Table 2's "write" row).
    co_await shared_write(p, x_addr(i), pack(xi));
    co_await barrier_->wait(p);
  }
}

void LinearSolverWorkload::spawn_all(Machine& machine) {
  for (NodeId i = 0; i < machine.n_nodes(); ++i) {
    machine.spawn_on(i, run(machine.processor(i)));
  }
}

std::vector<double> LinearSolverWorkload::solution(const Machine& machine) const {
  std::vector<double> x(n_);
  for (std::uint32_t i = 0; i < n_; ++i) x[i] = unpack(machine.peek_coherent(x_addr(i)));
  return x;
}

std::vector<double> LinearSolverWorkload::reference() const {
  std::vector<double> x(n_, 0.0), nx(n_);
  for (std::uint32_t k = 0; k < cfg_.iterations; ++k) {
    for (std::uint32_t i = 0; i < n_; ++i) {
      double acc = 0.0;
      for (std::uint32_t j = 0; j < n_; ++j) {
        if (j != i) acc += a_[static_cast<std::size_t>(i) * n_ + j] * x[j];
      }
      nx[i] = (b_[i] - acc) / a_[static_cast<std::size_t>(i) * n_ + i];
    }
    x = nx;
  }
  return x;
}

double LinearSolverWorkload::residual(const Machine& machine) const {
  const auto x = solution(machine);
  double worst = 0.0;
  for (std::uint32_t i = 0; i < n_; ++i) {
    double ax = 0.0;
    for (std::uint32_t j = 0; j < n_; ++j) {
      ax += a_[static_cast<std::size_t>(i) * n_ + j] * x[j];
    }
    worst = std::max(worst, std::abs(ax - b_[i]));
  }
  return worst;
}

}  // namespace bcsim::workload
