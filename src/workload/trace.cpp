#include "workload/trace.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace bcsim::workload {

using core::Machine;
using core::Processor;

std::string_view to_string(TraceOp op) noexcept {
  switch (op) {
    case TraceOp::kRead: return "r";
    case TraceOp::kWrite: return "w";
    case TraceOp::kReadGlobal: return "rg";
    case TraceOp::kWriteGlobal: return "wg";
    case TraceOp::kReadUpdate: return "ru";
    case TraceOp::kResetUpdate: return "xu";
    case TraceOp::kFlushBuffer: return "fl";
    case TraceOp::kReadLock: return "rl";
    case TraceOp::kWriteLock: return "wl";
    case TraceOp::kUnlock: return "ul";
    case TraceOp::kCompute: return "c";
    case TraceOp::kTestAndSet: return "ts";
    case TraceOp::kFetchAdd: return "fa";
  }
  return "?";
}

TraceOp parse_trace_op(std::string_view s) {
  if (s == "r") return TraceOp::kRead;
  if (s == "w") return TraceOp::kWrite;
  if (s == "rg") return TraceOp::kReadGlobal;
  if (s == "wg") return TraceOp::kWriteGlobal;
  if (s == "ru") return TraceOp::kReadUpdate;
  if (s == "xu") return TraceOp::kResetUpdate;
  if (s == "fl") return TraceOp::kFlushBuffer;
  if (s == "rl") return TraceOp::kReadLock;
  if (s == "wl") return TraceOp::kWriteLock;
  if (s == "ul") return TraceOp::kUnlock;
  if (s == "c") return TraceOp::kCompute;
  if (s == "ts") return TraceOp::kTestAndSet;
  if (s == "fa") return TraceOp::kFetchAdd;
  throw std::invalid_argument("trace: unknown op '" + std::string(s) + "'");
}

namespace {
bool op_has_addr(TraceOp op) { return op != TraceOp::kFlushBuffer; }
bool op_has_value(TraceOp op) {
  return op == TraceOp::kWrite || op == TraceOp::kWriteGlobal || op == TraceOp::kFetchAdd;
}
}  // namespace

Trace Trace::parse(std::istream& in) {
  Trace t;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    TraceRecord r;
    std::string op;
    std::uint64_t proc = 0;
    if (!(ls >> proc >> op)) {
      throw std::invalid_argument("trace: malformed line " + std::to_string(lineno));
    }
    r.proc = static_cast<NodeId>(proc);
    r.op = parse_trace_op(op);
    if (op_has_addr(r.op) && !(ls >> r.addr)) {
      throw std::invalid_argument("trace: missing address on line " + std::to_string(lineno));
    }
    if (op_has_value(r.op) && !(ls >> r.value)) {
      throw std::invalid_argument("trace: missing value on line " + std::to_string(lineno));
    }
    t.append(r);
  }
  return t;
}

Trace Trace::parse_string(const std::string& text) {
  std::istringstream in(text);
  return parse(in);
}

void Trace::write(std::ostream& out) const {
  for (const auto& r : records_) {
    out << r.proc << ' ' << to_string(r.op);
    if (op_has_addr(r.op)) out << ' ' << r.addr;
    if (op_has_value(r.op)) out << ' ' << r.value;
    out << '\n';
  }
}

std::vector<std::vector<TraceRecord>> Trace::per_processor(std::uint32_t n_nodes) const {
  std::vector<std::vector<TraceRecord>> streams(n_nodes);
  for (const auto& r : records_) {
    if (r.proc >= n_nodes) {
      throw std::invalid_argument("trace: record for processor " + std::to_string(r.proc) +
                                  " on a machine with " + std::to_string(n_nodes) + " nodes");
    }
    streams[r.proc].push_back(r);
  }
  return streams;
}

namespace {

/// Maps a primitive-hook event to a trace record; returns false for
/// events with no trace representation (raw swap / compare-swap).
bool to_record(NodeId proc, core::PrimitiveOp op, Addr a, Word v, TraceRecord& out) {
  out.proc = proc;
  out.addr = a;
  out.value = v;
  switch (op) {
    case core::PrimitiveOp::kRead: out.op = TraceOp::kRead; return true;
    case core::PrimitiveOp::kWrite: out.op = TraceOp::kWrite; return true;
    case core::PrimitiveOp::kReadGlobal: out.op = TraceOp::kReadGlobal; return true;
    case core::PrimitiveOp::kWriteGlobal: out.op = TraceOp::kWriteGlobal; return true;
    case core::PrimitiveOp::kReadUpdate: out.op = TraceOp::kReadUpdate; return true;
    case core::PrimitiveOp::kResetUpdate: out.op = TraceOp::kResetUpdate; return true;
    case core::PrimitiveOp::kFlushBuffer: out.op = TraceOp::kFlushBuffer; return true;
    case core::PrimitiveOp::kReadLock: out.op = TraceOp::kReadLock; return true;
    case core::PrimitiveOp::kWriteLock: out.op = TraceOp::kWriteLock; return true;
    case core::PrimitiveOp::kUnlock: out.op = TraceOp::kUnlock; return true;
    case core::PrimitiveOp::kTestAndSet: out.op = TraceOp::kTestAndSet; return true;
    case core::PrimitiveOp::kFetchAdd: out.op = TraceOp::kFetchAdd; return true;
    case core::PrimitiveOp::kCompute:
      out.op = TraceOp::kCompute;
      return true;  // addr carries the cycle count
    case core::PrimitiveOp::kRmw:
    case core::PrimitiveOp::kBarrier:
      return false;  // no direct trace mnemonic
  }
  return false;
}

}  // namespace

TraceRecorder::TraceRecorder(Machine& machine) : machine_(&machine) {
  for (NodeId i = 0; i < machine.n_nodes(); ++i) {
    machine.processor(i).set_hook(
        [this, i](core::PrimitiveOp op, Addr a, Word v) {
          TraceRecord r;
          if (to_record(i, op, a, v, r)) trace_.append(r);
        });
  }
}

TraceRecorder::~TraceRecorder() { detach(); }

void TraceRecorder::detach() {
  if (machine_ == nullptr) return;
  for (NodeId i = 0; i < machine_->n_nodes(); ++i) {
    machine_->processor(i).clear_hook();
  }
  machine_ = nullptr;
}

TraceWorkload::TraceWorkload(Machine& machine, Trace trace)
    : streams_(trace.per_processor(machine.n_nodes())), checksums_(machine.n_nodes(), 0) {}

sim::Task TraceWorkload::run(Processor& p, const std::vector<TraceRecord>& stream) {
  Word sum = 0;
  for (const auto& r : stream) {
    switch (r.op) {
      case TraceOp::kRead: sum += co_await p.read(r.addr); break;
      case TraceOp::kWrite: co_await p.write(r.addr, r.value); break;
      case TraceOp::kReadGlobal: sum += co_await p.read_global(r.addr); break;
      case TraceOp::kWriteGlobal: co_await p.write_global(r.addr, r.value); break;
      case TraceOp::kReadUpdate: sum += co_await p.read_update(r.addr); break;
      case TraceOp::kResetUpdate: co_await p.reset_update(r.addr); break;
      case TraceOp::kFlushBuffer: co_await p.flush_buffer(); break;
      case TraceOp::kReadLock: co_await p.read_lock(r.addr); break;
      case TraceOp::kWriteLock: co_await p.write_lock(r.addr); break;
      case TraceOp::kUnlock: co_await p.unlock(r.addr); break;
      case TraceOp::kCompute: co_await p.compute(r.addr); break;
      case TraceOp::kTestAndSet: sum += co_await p.test_and_set(r.addr); break;
      case TraceOp::kFetchAdd: sum += co_await p.fetch_add(r.addr, r.value); break;
    }
  }
  checksums_[p.id()] = sum;
}

void TraceWorkload::spawn_all(Machine& machine) {
  for (NodeId i = 0; i < machine.n_nodes(); ++i) {
    if (!streams_[i].empty()) {
      machine.spawn_on(i, run(machine.processor(i), streams_[i]));
    }
  }
}

}  // namespace bcsim::workload
