#include "workload/fft_phases.hpp"

#include <bit>

#include "sim/random.hpp"
#include "workload/access.hpp"

namespace bcsim::workload {

using core::Machine;
using core::Processor;

FftPhasesWorkload::FftPhasesWorkload(Machine& machine, FftPhasesConfig cfg)
    : cfg_(cfg), alloc_(machine.make_allocator()) {
  n_ = std::bit_floor(machine.n_nodes());
  phases_ = static_cast<std::uint32_t>(std::bit_width(n_) - 1);
  const std::uint32_t bw = machine.config().block_words;
  const std::uint64_t blocks_per_region = (cfg_.words_per_region + bw - 1) / bw;
  base_ = alloc_.alloc_blocks(static_cast<std::uint64_t>(n_) * blocks_per_region);

  sim::Rng rng(cfg_.data_seed);
  init_.resize(n_);
  for (std::uint32_t i = 0; i < n_; ++i) {
    init_[i].resize(cfg_.words_per_region);
    for (std::uint32_t w = 0; w < cfg_.words_per_region; ++w) {
      init_[i][w] = rng.next_below(1u << 20);
      machine.poke_memory(region_addr(i, w), init_[i][w]);
    }
  }
  barrier_ = sync::make_barrier(machine.config().barrier_impl, alloc_, n_);
}

Addr FftPhasesWorkload::region_addr(std::uint32_t owner, std::uint32_t w) const {
  const std::uint32_t bw = alloc_.block_words();
  const std::uint64_t blocks_per_region = (cfg_.words_per_region + bw - 1) / bw;
  return base_ + static_cast<Addr>(owner) * blocks_per_region * bw + w;
}

sim::Task FftPhasesWorkload::run(Processor& p) {
  const std::uint32_t i = p.id();
  std::vector<Word> mine(cfg_.words_per_region);
  for (std::uint32_t w = 0; w < cfg_.words_per_region; ++w) {
    mine[w] = co_await p.read(region_addr(i, w));
  }
  for (std::uint32_t s = 0; s < phases_; ++s) {
    const std::uint32_t partner = i ^ (1u << s);
    // Subscribe to the partner's region for this phase only.
    std::vector<Word> theirs(cfg_.words_per_region);
    for (std::uint32_t w = 0; w < cfg_.words_per_region; ++w) {
      theirs[w] = co_await shared_read(p, region_addr(partner, w));
      co_await p.compute(1);
    }
    // Snapshot barrier: everyone has read phase-s inputs before anyone
    // publishes phase-(s+1) values.
    co_await barrier_->wait(p);
    for (std::uint32_t w = 0; w < cfg_.words_per_region; ++w) {
      mine[w] += theirs[w];
      co_await shared_write(p, region_addr(i, w), mine[w]);
    }
    // Done with this partner's region: cancel the subscription so later
    // phases' updates to it are not pushed to us (paper's RESET-UPDATE
    // usage note).
    if (p.config().data_protocol == core::DataProtocol::kReadUpdate) {
      for (std::uint32_t w = 0; w < cfg_.words_per_region;
           w += p.config().block_words) {
        co_await p.reset_update(region_addr(partner, w));
      }
    }
    co_await barrier_->wait(p);
  }
}

void FftPhasesWorkload::spawn_all(Machine& machine) {
  for (NodeId i = 0; i < n_; ++i) {
    machine.spawn_on(i, run(machine.processor(i)));
  }
}

std::vector<std::vector<Word>> FftPhasesWorkload::expected() const {
  std::vector<std::vector<Word>> cur = init_;
  for (std::uint32_t s = 0; s < phases_; ++s) {
    std::vector<std::vector<Word>> next = cur;
    for (std::uint32_t i = 0; i < n_; ++i) {
      const std::uint32_t partner = i ^ (1u << s);
      for (std::uint32_t w = 0; w < cfg_.words_per_region; ++w) {
        next[i][w] = cur[i][w] + cur[partner][w];
      }
    }
    cur = std::move(next);
  }
  return cur;
}

std::vector<std::vector<Word>> FftPhasesWorkload::actual(const Machine& machine) const {
  std::vector<std::vector<Word>> out(n_);
  for (std::uint32_t i = 0; i < n_; ++i) {
    out[i].resize(cfg_.words_per_region);
    for (std::uint32_t w = 0; w < cfg_.words_per_region; ++w) {
      out[i][w] = machine.peek_coherent(region_addr(i, w));
    }
  }
  return out;
}

}  // namespace bcsim::workload
