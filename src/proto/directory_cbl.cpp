// Cache-based locking, memory side (paper section 4.3): the central
// directory entry holds the queue pointer (tail) and — in this simulator —
// an authoritative mirror of the whole grant-order chain, which it is in a
// position to keep exact because every membership change serializes here.
// Enqueues are forwarded through the current tail exactly as the paper
// describes; handoffs flow cache-to-cache.
#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "proto/directory_controller.hpp"
#include "sim/invariants.hpp"

namespace bcsim::proto {

using net::LockMode;
using net::Message;
using net::MsgType;
using net::Unit;

namespace {
constexpr std::uint8_t kAuxHandoffDone = 1;
constexpr std::uint8_t kAuxWriteback = 0;
constexpr std::uint8_t kAuxDrop = 1;
constexpr std::uint8_t kFwdShareBit = 2;

bool chain_contains(const mem::DirectoryEntry& e, NodeId node) {
  return std::any_of(e.lock_chain.begin(), e.lock_chain.end(),
                     [node](const mem::LockChainNode& n) { return n.node == node; });
}
}  // namespace

void DirectoryController::on_lock_req(const net::Message& m) {
  auto& e = entry(m.block);
  if (defer_if_busy(e, m)) return;
  if (!e.ru_list.empty()) {
    throw std::logic_error("DirectoryController: lock request on a read-update block");
  }
  const auto mode = static_cast<LockMode>(m.aux & 1u);
  stats_.counter("dir.lock_req").add();

  if (e.lock_chain.empty()) {
    // Unlocked and no outstanding requester: grant immediately, shipping
    // the protected data with the grant.
    e.usage_lock = true;
    e.lock_chain.push_back({m.src, mode});
    e.lock_holders = 1;
    e.lock_data_stale = true;
    auto out = reply_to(m, MsgType::kLockGrant);
    out.data = memory_.read_block(m.block);
    out.aux = static_cast<std::uint8_t>(mode);
    reply_after(config_.t_directory + config_.t_memory, std::move(out));
    return;
  }

  // Contended: forward the request to the current tail and swing the
  // queue pointer to the newcomer.
  const NodeId old_tail = e.lock_tail();
  const bool share = mode == LockMode::kRead &&
                     e.lock_holders == e.lock_chain.size() &&
                     e.lock_chain.front().mode == LockMode::kRead;
  e.lock_chain.push_back({m.src, mode});
  if (share) e.lock_holders += 1;
  Message fwd;
  fwd.src = node_;
  fwd.dst = old_tail;
  fwd.unit = Unit::kCache;
  fwd.type = MsgType::kLockFwd;
  fwd.block = m.block;
  fwd.who = m.src;
  fwd.aux = static_cast<std::uint8_t>(mode) | (share ? kFwdShareBit : 0);
  reply_after(config_.t_directory, std::move(fwd));
  stats_.counter(share ? "dir.lock_fwd_share" : "dir.lock_fwd_wait").add();
}

bool DirectoryController::chain_remove(mem::DirectoryEntry& e, NodeId node) {
  auto it = std::find_if(e.lock_chain.begin(), e.lock_chain.end(),
                         [node](const mem::LockChainNode& n) { return n.node == node; });
  if (it == e.lock_chain.end()) {
    throw std::logic_error("DirectoryController: unlock from a node not in the chain");
  }
  const auto idx = static_cast<std::uint32_t>(it - e.lock_chain.begin());
  const bool was_holder = idx < e.lock_holders;
  e.lock_chain.erase(it);
  if (was_holder) e.lock_holders -= 1;
  return was_holder;
}

void DirectoryController::promote_waiters(mem::DirectoryEntry& e) {
  if (e.lock_holders != 0 || e.lock_chain.empty()) return;
  if (e.lock_chain.front().mode == LockMode::kWrite) {
    e.lock_holders = 1;
  } else {
    std::uint32_t k = 0;
    while (k < e.lock_chain.size() && e.lock_chain[k].mode == LockMode::kRead) ++k;
    e.lock_holders = k;
  }
}

void DirectoryController::on_unlock_notify(const net::Message& m) {
  auto& e = entry(m.block);
  stats_.counter("dir.unlock_notify").add();
  const bool was_holder = chain_remove(e, m.src);
  assert(was_holder);
  static_cast<void>(was_holder);

  if (m.aux == kAuxHandoffDone) {
    // The releasing cache already handed the lock (and data) to m.who;
    // this is bookkeeping. Promote the next holder group to match the
    // grant/cascade messages in flight, then replay any unlock query the
    // new front sent before this bookkeeping arrived.
    promote_waiters(e);
    memory_.occupy(sim_.now(), config_.t_directory);
    drain_blocked(m.block);
    return;
  }

  // Orchestrated (read-lock) release: the directory decides the
  // disposition and instructs the releasing cache.
  if (e.lock_holders > 0) {
    // Other readers still hold the lock: the releaser just drops out.
    auto out = reply_to(m, MsgType::kUnlockEmpty);
    out.aux = kAuxDrop;
    reply_after(config_.t_directory, std::move(out));
    return;
  }
  if (!e.lock_chain.empty()) {
    // The releaser was the last holder and waiters exist: have it hand
    // the lock to the head of the waiting queue (the cascade among
    // contiguous read waiters flows cache-to-cache from there).
    promote_waiters(e);
    auto cmd = reply_to(m, MsgType::kHandoffCmd);
    cmd.who = e.lock_chain.front().node;
    reply_after(config_.t_directory, std::move(cmd));
    return;
  }
  // Queue empty: the line returns to memory.
  e.lock_writeback_pending = true;
  auto out = reply_to(m, MsgType::kUnlockEmpty);
  out.aux = kAuxWriteback;
  reply_after(config_.t_directory, std::move(out));
}

void DirectoryController::on_unlock_query(const net::Message& m) {
  auto& e = entry(m.block);
  stats_.counter("dir.unlock_query").add();
  if (e.lock_chain.size() == 1 && e.lock_chain.front().node == m.src) {
    // Truly the tail: unlink and call the data home.
    e.lock_chain.clear();
    e.lock_holders = 0;
    e.lock_writeback_pending = true;
    auto out = reply_to(m, MsgType::kUnlockEmpty);
    out.aux = kAuxWriteback;
    reply_after(config_.t_directory, std::move(out));
    return;
  }
  // The releaser is in the chain but not at the front: its predecessors'
  // handoff bookkeeping (kAuxHandoffDone) is still in flight. That race is
  // real on networks with distance-dependent paths (a short critical
  // section next to the home beats a far-away HandoffDone), so park the
  // query until the bookkeeping drains and replay it then.
  if (!e.lock_chain.empty() && e.lock_chain.front().node != m.src &&
      chain_contains(e, m.src)) {
    e.blocked.push_back(m);
    stats_.counter("dir.unlock_query_deferred").add();
    return;
  }
  // A querying releaser that is not in the chain at all is a protocol bug —
  // throw (not assert) so the differential oracle can report it as a
  // divergence with the trace tail instead of aborting the process.
  if (e.lock_chain.empty() || e.lock_chain.front().node != m.src) {
    throw sim::InvariantViolation(
        "invariant violation [cbl-unlock-query] at tick " +
            std::to_string(sim_.now()) + ", block " + std::to_string(m.block) +
            ", node " + std::to_string(m.src) +
            ": unlock query from a node that is not in the chain (chain " +
            (e.lock_chain.empty()
                 ? std::string("empty")
                 : "front " + std::to_string(e.lock_chain.front().node) + ", size " +
                       std::to_string(e.lock_chain.size())) +
            ")",
        m.block, m.src, sim_.now());
  }
  // A successor announce (kLockFwd) is in flight to the releaser; it must
  // drain: link the successor when the announce arrives, then hand off.
  auto out = reply_to(m, MsgType::kUnlockWaitSucc);
  reply_after(config_.t_directory, std::move(out));
}

void DirectoryController::on_lock_writeback(const net::Message& m) {
  auto& e = entry(m.block);
  stats_.counter("dir.lock_writeback").add();
  assert(e.lock_writeback_pending);
  if (m.aux != 0) {
    memory_.write_block_masked(m.block, m.data, m.dirty_mask);
  }
  e.lock_writeback_pending = false;
  e.lock_data_stale = false;
  e.usage_lock = false;
  memory_.occupy(sim_.now(), config_.t_directory + (m.aux != 0 ? config_.t_memory : 0));
  drain_blocked(m.block);
}

}  // namespace bcsim::proto
