// Dispatch, serialization, and the WBI (write-back invalidate) baseline.
#include "proto/directory_controller.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "sim/log.hpp"

namespace bcsim::proto {

using net::Message;
using net::MsgType;
using net::Unit;

DirectoryController::DirectoryController(NodeId node, sim::Simulator& simulator,
                                         net::Network& network, const mem::AddressMap& amap,
                                         const core::MachineConfig& config,
                                         sim::StatsRegistry& stats)
    : node_(node), sim_(simulator), net_(network), amap_(amap), config_(config), stats_(stats),
      memory_(config.block_words, config.t_directory, config.t_memory) {}

const mem::DirectoryEntry* DirectoryController::peek(BlockId b) const {
  auto it = entries_.find(b);
  return it == entries_.end() ? nullptr : &it->second;
}

bool DirectoryController::quiescent() const {
  for (const auto& [b, e] : entries_) {
    if (e.busy() || !e.blocked.empty()) return false;
  }
  return true;
}

namespace {
/// Compact fingerprint of a directory entry's non-MSI bookkeeping, so the
/// trace records RU-list / lock-chain / version changes that leave the
/// DirState itself untouched (e.g. WriteGlobal, a lock enqueue).
std::uint64_t entry_fingerprint(const mem::DirectoryEntry* e) {
  if (e == nullptr) return 0;
  return (e->ru_version << 32) |
         (static_cast<std::uint64_t>(e->lock_chain.size() & 0xffff) << 16) |
         static_cast<std::uint64_t>(e->ru_list.size() & 0xffff);
}
}  // namespace

void DirectoryController::on_message(const net::Message& m) {
  assert(amap_.home_of(m.block) == node_ && "message routed to wrong home");
  sim::TraceRecorder& tr = sim_.trace();
  if (tr.enabled()) {
    // Snapshot scalars, not pointers: handle() may create entries and
    // rehash the map.
    const mem::DirectoryEntry* before = peek(m.block);
    const auto old_state = static_cast<std::uint8_t>(before ? before->state
                                                            : mem::DirState::kUncached);
    const std::uint64_t old_fp = entry_fingerprint(before);
    handle(m);
    const mem::DirectoryEntry* after = peek(m.block);
    const auto new_state = static_cast<std::uint8_t>(after ? after->state
                                                            : mem::DirState::kUncached);
    const std::uint64_t new_fp = entry_fingerprint(after);
    if (old_state != new_state || old_fp != new_fp) {
      tr.dir_state(sim_.now(), node_, m.block, old_state, new_state, new_fp);
    }
  } else {
    handle(m);
  }
  if (hook_) hook_(m.block);
}

void DirectoryController::handle(const net::Message& m) {
  switch (m.type) {
    // WBI
    case MsgType::kGetS: on_gets(m); break;
    case MsgType::kGetX: on_getx(m); break;
    case MsgType::kRmw: on_rmw(m); break;
    case MsgType::kPutM: on_putm(m); break;
    case MsgType::kPutS: on_puts(m); break;
    case MsgType::kRecallAck: on_recall_ack(m); break;
    case MsgType::kInvAck: on_inv_ack(m); break;
    // reader-initiated coherence
    case MsgType::kReadGlobal: on_read_global(m); break;
    case MsgType::kWriteGlobal: on_write_global(m); break;
    case MsgType::kReadUpdate: on_read_update(m); break;
    case MsgType::kResetUpdate: on_reset_update(m); break;
    // CBL + barrier
    case MsgType::kLockReq: on_lock_req(m); break;
    case MsgType::kUnlockNotify: on_unlock_notify(m); break;
    case MsgType::kUnlockQuery: on_unlock_query(m); break;
    case MsgType::kLockWriteback: on_lock_writeback(m); break;
    case MsgType::kBarArrive: on_bar_arrive(m); break;
    default:
      throw std::logic_error("DirectoryController: unexpected message type " +
                             std::string(net::to_string(m.type)));
  }
}

bool DirectoryController::defer_if_busy(mem::DirectoryEntry& e, const net::Message& m) {
  if (!e.busy()) return false;
  e.blocked.push_back(m);
  stats_.counter("dir.deferred").add();
  return true;
}

void DirectoryController::drain_blocked(BlockId b) {
  auto& e = entry(b);
  if (e.blocked.empty()) return;
  // Replay FIFO; a replayed request may make the entry busy again, in
  // which case handle() re-queues the remainder in order.
  std::deque<net::Message> pending;
  pending.swap(e.blocked);
  // Handle asynchronously so the current handler finishes its state
  // transition before any replay observes it.
  sim_.schedule(0, [this, pending = std::move(pending)]() mutable {
    for (auto& m : pending) handle(m);
  });
}

void DirectoryController::reply_after(Tick service, net::Message out) {
  const Tick done = memory_.occupy(sim_.now(), service);
  net_.send_at(done, std::move(out));
}

net::Message DirectoryController::reply_to(const net::Message& m, net::MsgType type) const {
  net::Message out;
  out.src = node_;
  out.dst = m.src;
  out.unit = Unit::kCache;
  out.type = type;
  out.block = m.block;
  out.addr = m.addr;
  out.txn = m.txn;
  return out;
}

// ---------------------------------------------------------------------------
// WBI baseline
// ---------------------------------------------------------------------------

void DirectoryController::on_gets(const net::Message& m) {
  auto& e = entry(m.block);
  if (defer_if_busy(e, m)) return;
  stats_.counter("dir.gets").add();
  switch (e.state) {
    case mem::DirState::kUncached:
    case mem::DirState::kShared: {
      e.state = mem::DirState::kShared;
      if (std::find(e.sharers.begin(), e.sharers.end(), m.src) == e.sharers.end()) {
        e.sharers.push_back(m.src);
      }
      auto out = reply_to(m, MsgType::kDataS);
      out.data = memory_.read_block(m.block);
      reply_after(config_.t_directory + config_.t_memory, std::move(out));
      break;
    }
    case mem::DirState::kModified:
      start_recall(e, m, /*for_exclusive=*/false);
      break;
    default:
      assert(false && "busy states are deferred above");
  }
}

void DirectoryController::on_getx(const net::Message& m) {
  auto& e = entry(m.block);
  if (defer_if_busy(e, m)) return;
  stats_.counter("dir.getx").add();
  switch (e.state) {
    case mem::DirState::kUncached:
    case mem::DirState::kShared: {
      std::uint32_t acks = 0;
      for (NodeId s : invalidation_targets(e, m.src)) {
        net::Message inv;
        inv.src = node_;
        inv.dst = s;
        inv.unit = Unit::kCache;
        inv.type = MsgType::kInv;
        inv.block = m.block;
        inv.who = m.src;  // ack goes to the requester's cache
        inv.aux = 0;      // 0: ack to cache, 1: ack to directory
        reply_after(0, std::move(inv));
        ++acks;
        stats_.counter("dir.invs").add();
      }
      e.sharers.clear();
      e.state = mem::DirState::kModified;
      e.owner = m.src;
      auto out = reply_to(m, MsgType::kDataX);
      out.data = memory_.read_block(m.block);
      out.value = acks;  // requester collects this many kInvAck
      reply_after(config_.t_directory + config_.t_memory, std::move(out));
      break;
    }
    case mem::DirState::kModified:
      start_recall(e, m, /*for_exclusive=*/true);
      break;
    default:
      assert(false && "busy states are deferred above");
  }
}

void DirectoryController::on_rmw(const net::Message& m) {
  auto& e = entry(m.block);
  if (defer_if_busy(e, m)) return;
  stats_.counter("dir.rmw").add();
  switch (e.state) {
    case mem::DirState::kUncached: {
      auto out = reply_to(m, MsgType::kRmwAck);
      out.value = apply_rmw(m.block, amap_.word_of(m.addr), static_cast<net::RmwOp>(m.aux),
                            m.value, m.value2);
      reply_after(config_.t_directory + config_.t_memory, std::move(out));
      break;
    }
    case mem::DirState::kShared: {
      // Invalidate every cached copy (the RMW result lives at memory);
      // acks return to the directory, which completes the RMW after the
      // last one. The entry is busy meanwhile.
      e.pending = m;
      e.state = mem::DirState::kBusyRmw;
      // RMW invalidates every cached copy, the requester's included
      // (the result lives at memory).
      const auto targets = invalidation_targets(e, kNoNode);
      e.acks_outstanding = static_cast<std::uint32_t>(targets.size());
      memory_.occupy(sim_.now(), config_.t_directory);  // directory lookup
      for (NodeId s : targets) {
        net::Message inv;
        inv.src = node_;
        inv.dst = s;
        inv.unit = Unit::kCache;
        inv.type = MsgType::kInv;
        inv.block = m.block;
        inv.who = node_;
        inv.aux = 1;  // ack to directory
        reply_after(0, std::move(inv));
        stats_.counter("dir.invs").add();
      }
      e.sharers.clear();
      if (targets.empty()) {
        // No cached copies after all: complete immediately.
        finish_pending(e);
        break;
      }
      break;
    }
    case mem::DirState::kModified:
      start_recall(e, m, /*for_exclusive=*/true);
      break;
    default:
      assert(false && "busy states are deferred above");
  }
}

void DirectoryController::on_putm(const net::Message& m) {
  auto& e = entry(m.block);
  if (e.state == mem::DirState::kBusyRecall && e.owner == m.src) {
    // The write-back crossed with our recall: treat it as the recall ack,
    // and still acknowledge the replacement so the cache can reuse the
    // frame.
    memory_.write_block_masked(m.block, m.data, m.dirty_mask);
    reply_after(config_.t_directory + config_.t_memory, reply_to(m, MsgType::kPutAck));
    e.owner = kNoNode;
    finish_pending(e);
    return;
  }
  if (e.state == mem::DirState::kModified && e.owner == m.src) {
    memory_.write_block_masked(m.block, m.data, m.dirty_mask);
    e.state = mem::DirState::kUncached;
    e.owner = kNoNode;
    reply_after(config_.t_directory + config_.t_memory, reply_to(m, MsgType::kPutAck));
    return;
  }
  if (e.state == mem::DirState::kUncached && e.owner == kNoNode) {
    // Read-update machine: plain (uniprocessor-style) writes dirty lines
    // with no directory ownership; replacement writes the dirty words
    // back. The per-word mask makes concurrent writebacks from different
    // nodes merge instead of clobbering (paper section 3, issue 6).
    memory_.write_block_masked(m.block, m.data, m.dirty_mask);
    reply_after(config_.t_directory + config_.t_memory, reply_to(m, MsgType::kPutAck));
    return;
  }
  throw std::logic_error("DirectoryController: PutM from non-owner");
}

void DirectoryController::on_puts(const net::Message& m) {
  auto& e = entry(m.block);
  std::erase(e.sharers, m.src);
  if (e.sharers.empty() && e.state == mem::DirState::kShared) {
    e.state = mem::DirState::kUncached;
  }
  reply_after(config_.t_directory, reply_to(m, MsgType::kPutAck));
}

void DirectoryController::on_recall_ack(const net::Message& m) {
  auto& e = entry(m.block);
  assert(e.state == mem::DirState::kBusyRecall);
  assert(e.owner == m.src);
  memory_.write_block_masked(m.block, m.data, m.dirty_mask);
  // aux==0 means the owner downgraded to shared and kept its copy;
  // finish_pending() re-registers it as a sharer for GetS causes.
  if (m.aux != 0) e.owner = kNoNode;
  finish_pending(e);
}

void DirectoryController::on_inv_ack(const net::Message& m) {
  auto& e = entry(m.block);
  assert(e.state == mem::DirState::kBusyRmw);
  assert(e.acks_outstanding > 0);
  if (--e.acks_outstanding == 0) finish_pending(e);
}

void DirectoryController::start_recall(mem::DirectoryEntry& e, const net::Message& cause,
                                       bool for_exclusive) {
  stats_.counter("dir.recalls").add();
  e.pending = cause;
  e.state = mem::DirState::kBusyRecall;
  net::Message rec;
  rec.src = node_;
  rec.dst = e.owner;
  rec.unit = Unit::kCache;
  rec.type = MsgType::kRecall;
  rec.block = cause.block;
  rec.aux = for_exclusive ? 1 : 0;  // 1: invalidate, 0: downgrade to shared
  reply_after(config_.t_directory, std::move(rec));
}

void DirectoryController::finish_pending(mem::DirectoryEntry& e) {
  const net::Message m = e.pending;
  e.pending = net::Message{};
  switch (m.type) {
    case MsgType::kGetS: {
      // The recalled owner (if it didn't write back and vanish) downgraded
      // to shared and keeps its copy.
      e.state = mem::DirState::kShared;
      e.sharers.clear();
      if (e.owner != kNoNode && e.owner != m.src) e.sharers.push_back(e.owner);
      e.owner = kNoNode;
      e.sharers.push_back(m.src);
      auto out = reply_to(m, MsgType::kDataS);
      out.data = memory_.read_block(m.block);
      reply_after(config_.t_directory + config_.t_memory, std::move(out));
      break;
    }
    case MsgType::kGetX: {
      e.state = mem::DirState::kModified;
      e.owner = m.src;
      e.sharers.clear();
      auto out = reply_to(m, MsgType::kDataX);
      out.data = memory_.read_block(m.block);
      out.value = 0;
      reply_after(config_.t_directory + config_.t_memory, std::move(out));
      break;
    }
    case MsgType::kRmw: {
      e.state = mem::DirState::kUncached;
      e.owner = kNoNode;
      auto out = reply_to(m, MsgType::kRmwAck);
      out.value = apply_rmw(m.block, amap_.word_of(m.addr), static_cast<net::RmwOp>(m.aux),
                            m.value, m.value2);
      reply_after(config_.t_directory + config_.t_memory, std::move(out));
      break;
    }
    default:
      throw std::logic_error("DirectoryController: bad pending transaction");
  }
  drain_blocked(m.block);
}

std::vector<NodeId> DirectoryController::invalidation_targets(const mem::DirectoryEntry& e,
                                                              NodeId requester) const {
  std::vector<NodeId> out;
  const std::uint32_t limit = config_.dir_pointer_limit;
  if (limit != 0 && e.sharers.size() > limit) {
    // Dir_k-B: the directory ran out of pointers for this block; the only
    // safe invalidation is a broadcast to every other node (each acks,
    // cached copy or not).
    stats_.counter("dir.broadcast_invalidations").add();
    out.reserve(config_.n_nodes - 1);
    for (NodeId n = 0; n < config_.n_nodes; ++n) {
      if (n != requester) out.push_back(n);
    }
    return out;
  }
  out.reserve(e.sharers.size());
  for (NodeId s : e.sharers) {
    if (s != requester) out.push_back(s);
  }
  return out;
}

Word DirectoryController::apply_rmw(BlockId b, std::uint32_t word, net::RmwOp op,
                                    Word operand, Word operand2) {
  const Word old = memory_.read_word(b, word);
  switch (op) {
    case net::RmwOp::kTestAndSet:
      memory_.write_word(b, word, 1);
      break;
    case net::RmwOp::kFetchAdd:
      memory_.write_word(b, word, old + operand);
      break;
    case net::RmwOp::kSwap:
      memory_.write_word(b, word, operand);
      break;
    case net::RmwOp::kCompareSwap:
      if (old == operand) memory_.write_word(b, word, operand2);
      break;
  }
  return old;
}

}  // namespace bcsim::proto
