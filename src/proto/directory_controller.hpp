// Memory-side protocol engine: one per node, serving the blocks homed at
// that node's memory module slice.
//
// The directory controller implements the memory side of all three
// protocols the paper composes:
//   * WBI — the write-back invalidate MSI baseline (full-map directory,
//     3-hop recall, per-block serialization while a recall or an RMW
//     invalidation round is outstanding),
//   * reader-initiated coherence — WRITE-GLOBAL application, READ-UPDATE
//     subscription lists, chained RuUpdate propagation, RESET-UPDATE,
//   * CBL — the cache-based lock queue (enqueue forwarded through the
//     current tail, unlock notifications, tail-swing queries, final
//     writeback), and the memory-side barrier counter.
//
// Serialization discipline: the controller processes one message at a
// time; requests that hit a busy block are queued in the entry's `blocked`
// deque and replayed FIFO when the block becomes stable (the paper assumes
// infinite buffering, so queuing — never NACK — is the faithful model).
// Timing: every message charges t_D for the directory check plus t_m when
// block data is read or written, serialized through the single-ported
// memory module.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/config.hpp"
#include "mem/address.hpp"
#include "mem/directory_entry.hpp"
#include "mem/memory_module.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace bcsim::proto {

class DirectoryController {
 public:
  DirectoryController(NodeId node, sim::Simulator& simulator, net::Network& network,
                      const mem::AddressMap& amap, const core::MachineConfig& config,
                      sim::StatsRegistry& stats);

  /// Network sink for Unit::kMemory messages addressed to this node.
  void on_message(const net::Message& m);

  [[nodiscard]] mem::MemoryModule& memory() noexcept { return memory_; }
  [[nodiscard]] const mem::MemoryModule& memory() const noexcept { return memory_; }

  /// Directory entry for a block (creates the default entry on first use).
  /// Exposed for test-side invariant checks; production code never needs it.
  [[nodiscard]] const mem::DirectoryEntry* peek(BlockId b) const;

  /// True if no block is in a transient state and no request is queued
  /// (used by tests to assert quiescence after a scenario completes).
  [[nodiscard]] bool quiescent() const;

  /// Called after every processed message with the affected block; the
  /// InvariantChecker hangs entry-local checks here (MachineConfig
  /// invariants = kFull). Unset (the default) costs nothing.
  using TransitionHook = std::function<void(BlockId)>;
  void set_transition_hook(TransitionHook hook) { hook_ = std::move(hook); }

  /// Visits every (block, entry) pair this directory has touched.
  template <typename Fn>
  void for_each_entry(Fn&& fn) const {
    for (const auto& [b, e] : entries_) fn(b, e);
  }

  /// Mutable entry access for *fault injection only*: tests corrupt an
  /// entry on purpose to prove the invariant checker catches real protocol
  /// bugs (e.g. a lost unlock notification). Never called by the machine.
  [[nodiscard]] mem::DirectoryEntry& mutable_entry(BlockId b) { return entry(b); }

 private:
  mem::DirectoryEntry& entry(BlockId b) { return entries_[b]; }

  // --- dispatch helpers ---
  void handle(const net::Message& m);
  /// Queues m if the entry is busy; returns true when queued.
  bool defer_if_busy(mem::DirectoryEntry& e, const net::Message& m);
  /// Replays blocked requests after the entry leaves a busy state.
  void drain_blocked(BlockId b);

  /// Charges module time (t_D [+ t_m]) and sends `out` when it elapses.
  void reply_after(Tick service, net::Message out);
  /// Convenience: builds a reply skeleton to `m.src`'s cache unit.
  [[nodiscard]] net::Message reply_to(const net::Message& m, net::MsgType type) const;

  // --- WBI baseline (directory_wbi.cpp) ---
  void on_gets(const net::Message& m);
  void on_getx(const net::Message& m);
  void on_rmw(const net::Message& m);
  void on_putm(const net::Message& m);
  void on_puts(const net::Message& m);
  void on_recall_ack(const net::Message& m);
  void on_inv_ack(const net::Message& m);
  void start_recall(mem::DirectoryEntry& e, const net::Message& cause, bool for_exclusive);
  /// Nodes to invalidate for an exclusive request: the exact sharer set
  /// under a full-map directory, or all other nodes under Dir_k-B once
  /// the pointer limit is exceeded.
  [[nodiscard]] std::vector<NodeId> invalidation_targets(const mem::DirectoryEntry& e,
                                                         NodeId requester) const;
  void finish_pending(mem::DirectoryEntry& e);
  [[nodiscard]] Word apply_rmw(BlockId b, std::uint32_t word, net::RmwOp op, Word operand,
                               Word operand2);

  // --- reader-initiated coherence (directory_ru.cpp) ---
  void on_read_global(const net::Message& m);
  void on_write_global(const net::Message& m);
  void on_read_update(const net::Message& m);
  void on_reset_update(const net::Message& m);
  void propagate_update(mem::DirectoryEntry& e, BlockId b, Tick when);

  // --- CBL locks + barrier (directory_cbl.cpp) ---
  void on_lock_req(const net::Message& m);
  void on_unlock_notify(const net::Message& m);
  void on_unlock_query(const net::Message& m);
  void on_lock_writeback(const net::Message& m);
  void on_bar_arrive(const net::Message& m);
  /// Removes `node` from the lock chain; promotes the next holder group
  /// when the holder prefix empties. Returns true if `node` was a holder.
  bool chain_remove(mem::DirectoryEntry& e, NodeId node);
  void promote_waiters(mem::DirectoryEntry& e);

  NodeId node_;
  sim::Simulator& sim_;
  net::Network& net_;
  const mem::AddressMap& amap_;
  const core::MachineConfig& config_;
  sim::StatsRegistry& stats_;
  mem::MemoryModule memory_;
  std::unordered_map<BlockId, mem::DirectoryEntry> entries_;
  TransitionHook hook_;
};

}  // namespace bcsim::proto
