// Reader-initiated coherence, memory side (paper section 4.1): READ-GLOBAL,
// WRITE-GLOBAL, READ-UPDATE subscription lists, RESET-UPDATE, and the
// chained propagation of updated blocks down the subscriber list.
#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "proto/directory_controller.hpp"

namespace bcsim::proto {

using net::Message;
using net::MsgType;
using net::Unit;

void DirectoryController::on_read_global(const net::Message& m) {
  auto& e = entry(m.block);
  if (defer_if_busy(e, m)) return;
  stats_.counter("dir.read_global").add();
  auto out = reply_to(m, MsgType::kReadGlobalAck);
  if (m.aux == 1) {
    out.data = memory_.read_block(m.block);  // block fill (local-miss path)
  } else {
    out.value = memory_.read_word(m.block, amap_.word_of(m.addr));
  }
  reply_after(config_.t_directory + config_.t_memory, std::move(out));
}

void DirectoryController::on_write_global(const net::Message& m) {
  auto& e = entry(m.block);
  if (defer_if_busy(e, m)) return;
  stats_.counter("dir.write_global").add();
  memory_.write_word(m.block, amap_.word_of(m.addr), m.value);
  e.ru_version += 1;
  const Tick done = memory_.occupy(sim_.now(), config_.t_directory + config_.t_memory);
  // The write is "globally performed" only once every subscriber has the
  // new value; the acknowledgment that retires the writer's buffer entry
  // is therefore produced by the LAST subscriber in the chain (the writer
  // itself never waits under buffered consistency — but FLUSH-BUFFER
  // before a CP-Synch does, which is exactly the model's guarantee).
  // Every subscriber is visited — including the writer if it subscribed:
  // its locally-updated copy may have been overwritten by an older
  // in-flight snapshot, and the version-ordered chain is what restores it.
  if (!e.ru_list.empty()) {
    stats_.counter("dir.ru_propagations").add();
    Message upd;
    upd.src = node_;
    upd.unit = Unit::kCache;
    upd.type = MsgType::kRuUpdate;
    upd.block = m.block;
    upd.data = memory_.read_block(m.block);
    upd.dst = e.ru_list.front();
    upd.chain.assign(e.ru_list.begin() + 1, e.ru_list.end());
    upd.txn = m.txn;
    upd.who = m.src;  // the last hop acks the writer
    upd.value = e.ru_version;
    net_.send_at(done, std::move(upd));
  } else {
    auto ack = reply_to(m, MsgType::kWriteGlobalAck);
    net_.send_at(done, std::move(ack));
  }
}

void DirectoryController::propagate_update(mem::DirectoryEntry& e, BlockId b, Tick when) {
  // Ack-free propagation path (used when no specific write is retiring).
  if (e.ru_list.empty()) return;
  stats_.counter("dir.ru_propagations").add();
  Message upd;
  upd.src = node_;
  upd.unit = Unit::kCache;
  upd.type = MsgType::kRuUpdate;
  upd.block = b;
  upd.data = memory_.read_block(b);
  upd.dst = e.ru_list.front();
  upd.chain.assign(e.ru_list.begin() + 1, e.ru_list.end());
  upd.value = e.ru_version;
  net_.send_at(when, std::move(upd));
}

void DirectoryController::on_read_update(const net::Message& m) {
  auto& e = entry(m.block);
  if (defer_if_busy(e, m)) return;
  if (!e.lock_chain.empty()) {
    // "The read-update request is considered to be mutually exclusive with
    // a lock request for the same memory block."
    throw std::logic_error("DirectoryController: READ-UPDATE on a locked block");
  }
  stats_.counter("dir.read_update").add();
  e.usage_lock = false;
  const NodeId old_head = e.ru_list.empty() ? kNoNode : e.ru_list.front();
  const bool already =
      std::find(e.ru_list.begin(), e.ru_list.end(), m.src) != e.ru_list.end();
  auto out = reply_to(m, MsgType::kReadUpdateData);
  out.data = memory_.read_block(m.block);
  out.value = e.ru_version;
  if (already) {
    // Duplicate subscription (e.g. resubscribe after a local reset raced
    // an in-flight update): keep position, just refresh the data.
    out.who = kNoNode;
    reply_after(config_.t_directory + config_.t_memory, std::move(out));
    return;
  }
  // Push-front insert: the new subscriber becomes the list head (that is
  // the single-pointer-update hardware insert); the old head learns its
  // new prev.
  e.ru_list.insert(e.ru_list.begin(), m.src);
  out.who = old_head;
  reply_after(config_.t_directory + config_.t_memory, std::move(out));
  if (old_head != kNoNode) {
    Message link;
    link.src = node_;
    link.dst = old_head;
    link.unit = Unit::kCache;
    link.type = MsgType::kRuLinkPrev;
    link.block = m.block;
    link.who = m.src;
    reply_after(0, std::move(link));
  }
}

void DirectoryController::on_reset_update(const net::Message& m) {
  auto& e = entry(m.block);
  stats_.counter("dir.reset_update").add();
  auto it = std::find(e.ru_list.begin(), e.ru_list.end(), m.src);
  if (it == e.ru_list.end()) return;  // idempotent (replacement raced reset)
  const std::size_t idx = static_cast<std::size_t>(it - e.ru_list.begin());
  const NodeId prev = idx > 0 ? e.ru_list[idx - 1] : kNoNode;
  const NodeId next = idx + 1 < e.ru_list.size() ? e.ru_list[idx + 1] : kNoNode;
  e.ru_list.erase(it);
  // Neighbor splice messages: mirror maintenance in the caches (the paper's
  // doubly-linked-list delete). `value` encodes the replacement pointer
  // (0 = nil, else node+1).
  const Tick done = memory_.occupy(sim_.now(), config_.t_directory);
  auto splice = [&](NodeId dst, NodeId new_neighbor) {
    if (dst == kNoNode) return;
    Message s;
    s.src = node_;
    s.dst = dst;
    s.unit = Unit::kCache;
    s.type = MsgType::kRuUnlink;
    s.block = m.block;
    s.who = m.src;
    s.value = new_neighbor == kNoNode ? 0 : static_cast<Word>(new_neighbor) + 1;
    net_.send_at(done, std::move(s));
  };
  splice(prev, next);
  splice(next, prev);
}

// ---------------------------------------------------------------------------
// barrier counter at memory
// ---------------------------------------------------------------------------

void DirectoryController::on_bar_arrive(const net::Message& m) {
  auto& e = entry(m.block);
  stats_.counter("dir.barrier_arrivals").add();
  e.barrier_count += 1;
  memory_.write_word(m.block, amap_.word_of(m.addr), e.barrier_count);
  const std::uint32_t target = static_cast<std::uint32_t>(m.value);
  auto ack = reply_to(m, MsgType::kBarArriveAck);
  ack.value = e.barrier_count - 1;  // arrival index
  if (e.barrier_count < target) {
    ack.aux = 0;
    e.barrier_waiters.push_back(m.src);
    reply_after(config_.t_directory + config_.t_memory, std::move(ack));
    return;
  }
  // Last arriver: open the barrier. Its ack doubles as its release; the
  // waiters get a chained kBarRelease (paper Table 3: "barrier notify").
  ack.aux = 1;
  const Tick done = memory_.occupy(sim_.now(), config_.t_directory + config_.t_memory);
  net_.send_at(done, std::move(ack));
  if (!e.barrier_waiters.empty()) {
    Message rel;
    rel.src = node_;
    rel.unit = Unit::kCache;
    rel.type = MsgType::kBarRelease;
    rel.block = m.block;
    rel.dst = e.barrier_waiters.front();
    rel.chain.assign(e.barrier_waiters.begin() + 1, e.barrier_waiters.end());
    net_.send_at(done, std::move(rel));
  }
  e.barrier_count = 0;
  e.barrier_waiters.clear();
  memory_.write_word(m.block, amap_.word_of(m.addr), 0);
}

}  // namespace bcsim::proto
