// Node-side protocol engine: implements the processor-cache interface of
// paper Table 1 on top of the cache, write buffer, and lock cache.
//
// The controller exposes callback-style operations (the Processor wraps
// them into coroutine awaitables). Semantics of READ/WRITE depend on the
// configured data protocol:
//   * WBI: READ/WRITE are the coherent MSI operations (GetS/GetX,
//     invalidation acks collected at the requester, recalls deferred while
//     a transaction is in flight).
//   * read-update (the paper's machine): READ/WRITE are uniprocessor-style
//     local operations (miss fetches the block from home memory with no
//     coherence state); READ-GLOBAL / WRITE-GLOBAL / READ-UPDATE /
//     RESET-UPDATE provide the explicit global operations, and the write
//     buffer + FLUSH-BUFFER implement buffered consistency.
// CBL lock lines live in the small fully-associative lock cache and carry
// the distributed queue pointers.
//
// Concurrency discipline: each processor issues at most one outstanding
// demand operation (enforced by its sequential coroutine), so a single
// MSHR suffices; global writes ride the write buffer concurrently, and
// lock-release protocols complete asynchronously after unlock() returns
// (the paper: "the unlocking processor is allowed to continue its
// computation immediately").
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cache/cache.hpp"
#include "cache/lock_cache.hpp"
#include "cache/write_buffer.hpp"
#include "core/config.hpp"
#include "mem/address.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace bcsim::core {

class CacheController {
 public:
  struct Response {
    Word value = 0;
  };
  using Cb = std::function<void(Response)>;

  CacheController(NodeId node, sim::Simulator& simulator, net::Network& network,
                  const mem::AddressMap& amap, const MachineConfig& config,
                  sim::StatsRegistry& stats);

  /// Network sink for Unit::kCache messages addressed to this node.
  void on_message(const net::Message& m);

  // ---- Table 1 primitives (plus RMW for the software-lock baselines) ----
  void op_read(Addr a, Cb cb);
  void op_write(Addr a, Word v, Cb cb);
  void op_read_global(Addr a, Cb cb);
  void op_write_global(Addr a, Word v, Cb cb);
  void op_read_update(Addr a, Cb cb);
  void op_reset_update(Addr a, Cb cb);
  void op_flush_buffer(Cb cb);
  void op_lock(Addr a, net::LockMode mode, Cb cb);
  void op_unlock(Addr a, Cb cb);
  void op_rmw(Addr a, net::RmwOp op, Word operand, Cb cb, Word operand2 = 0);
  /// CBL barrier arrival: fetch-increment of the barrier word at its home
  /// memory; completes when the barrier releases.
  void op_barrier(Addr a, std::uint32_t participants, Cb cb);

  /// Spin-wait assist: fires when the block's cached contents change or
  /// vanish (invalidation, read-update delivery, lock handoff). Spinning on
  /// a cache hit costs no simulated events, which is timing-accurate:
  /// cache-hit spins generate no network traffic.
  void wait_line_change(Addr a, std::function<void()> cb);

  /// Race-free spin building block: fires immediately if the cached word
  /// at `a` already differs from `last_seen` (or the line is gone),
  /// otherwise when it next changes. Registration and the check happen in
  /// the same event, closing the lost-wakeup window between a spin read
  /// and the wait.
  void wait_word_change(Addr a, Word last_seen, std::function<void()> cb);

  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] const cache::Cache& data_cache() const noexcept { return cache_; }
  [[nodiscard]] const cache::LockCache& lock_cache() const noexcept { return lock_cache_; }
  [[nodiscard]] const cache::WriteBuffer& write_buffer() const noexcept { return wbuf_; }

  /// Mutable views of the node-local state, for fault-injection tests
  /// that corrupt the distributed side of a protocol structure to prove
  /// the invariant checker objects (the directory's mutable_entry is the
  /// matching surface on the home side). Not used by the protocols.
  [[nodiscard]] cache::Cache& mutable_data_cache() noexcept { return cache_; }
  [[nodiscard]] cache::LockCache& mutable_lock_cache() noexcept { return lock_cache_; }
  [[nodiscard]] cache::WriteBuffer& mutable_write_buffer() noexcept { return wbuf_; }

  /// True when no transaction, buffered write, or lock-protocol activity
  /// is outstanding (used by tests to assert quiescence).
  [[nodiscard]] bool quiescent() const noexcept;

 private:
  static constexpr Tick kHitLatency = 1;

  /// Miss status holding register: the single outstanding demand
  /// transaction.
  struct Mshr {
    bool active = false;
    net::MsgType kind = net::MsgType::kGetS;  ///< request type sent
    BlockId block = 0;
    Addr addr = 0;
    Word wval = 0;               ///< value for a pending store
    Word result = 0;             ///< reply value for non-caching replies
    bool local_write = false;    ///< read-update mode: fill then store locally
    std::uint32_t acks_needed = 0;
    std::uint32_t acks_got = 0;
    bool data_ok = false;
    net::BlockData data;
    bool recall_pending = false; ///< recall deferred until completion
    std::uint8_t recall_aux = 0;
    Tick issued_at = 0;          ///< for the latency histograms
    Cb cb;
  };

  // -- common helpers --
  void complete(Cb& cb, Word value, Tick latency);
  /// Completes a request and records its issue-to-completion latency in
  /// the named histogram (misses/locks; hits are always one cycle).
  void complete_timed(Cb& cb, Word value, Tick issued_at, std::string_view histogram);
  void send(net::Message m);
  [[nodiscard]] net::Message make(net::MsgType t, BlockId b) const;
  cache::CacheLine& install_line(BlockId b, const net::BlockData& data);
  void evict(cache::CacheLine& victim);
  void fire_line_change(BlockId b);
  void fire_lock_free(BlockId b);

  // -- WBI handlers (cache_controller.cpp) --
  void finish_wbi_txn();
  void on_data(const net::Message& m);
  void on_inv(const net::Message& m);
  void on_recall(const net::Message& m);
  void perform_recall(cache::CacheLine* line, std::uint8_t aux);

  // -- read-update handlers (cache_controller_ru.cpp) --
  void on_ru_data(const net::Message& m);
  void on_ru_update(const net::Message& m);
  void forward_chain(const net::Message& m);

  // -- CBL handlers (cache_controller_cbl.cpp) --
  void on_lock_grant(const net::Message& m);
  void on_lock_fwd(const net::Message& m);
  void on_lock_share_grant(const net::Message& m);
  void on_lock_wait(const net::Message& m);
  void on_lock_handoff(const net::Message& m);
  void on_unlock_empty(const net::Message& m);
  void on_unlock_wait_succ(const net::Message& m);
  void on_handoff_cmd(const net::Message& m);
  void became_holder(cache::CacheLine& line, bool chain_modified);
  void cascade_share(cache::CacheLine& line);
  void release_lock_line(BlockId b);
  void start_lock_request(BlockId b, net::LockMode mode, Cb cb);

  // -- barrier handlers --
  void on_bar_ack(const net::Message& m);
  void on_bar_release(const net::Message& m);

  NodeId node_;
  sim::Simulator& sim_;
  net::Network& net_;
  const mem::AddressMap& amap_;
  const MachineConfig& config_;
  sim::StatsRegistry& stats_;

  cache::Cache cache_;
  cache::LockCache lock_cache_;
  cache::WriteBuffer wbuf_;
  Mshr mshr_;

  /// SC mode: completion continuations for global writes, keyed by txn.
  std::unordered_map<std::uint64_t, Cb> write_acks_;
  /// Lock-acquire continuations keyed by block (with issue tick for the
  /// acquisition-latency histogram).
  struct LockPending {
    Cb cb;
    Tick issued_at = 0;
  };
  std::unordered_map<BlockId, LockPending> lock_cbs_;
  /// Processors waiting for a lock line to fully leave the lock cache
  /// (immediate re-lock of a lock whose release is still in flight).
  std::unordered_map<BlockId, std::vector<std::function<void()>>> lock_free_waiters_;
  /// Spin waiters per block.
  std::unordered_map<BlockId, std::vector<std::function<void()>>> change_waiters_;
  /// Barrier-release continuations keyed by barrier block.
  std::unordered_map<BlockId, Cb> barrier_cbs_;
  /// Outstanding asynchronous lock-release protocols (for quiescent()).
  std::uint32_t lock_release_inflight_ = 0;
};

}  // namespace bcsim::core
