// Machine: assembles n nodes (processor + cache controller + memory module
// slice with its directory) around an interconnection network, and runs
// coroutine programs on the processors.
#pragma once

#include <deque>
#include <iosfwd>
#include <memory>
#include <vector>

#include "core/cache_controller.hpp"
#include "core/config.hpp"
#include "core/processor.hpp"
#include "mem/address.hpp"
#include "net/network.hpp"
#include "proto/directory_controller.hpp"
#include "sim/invariants.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/task.hpp"

namespace bcsim::core {

/// Simple bump allocator for the simulated shared address space; hands out
/// block-aligned regions so synchronization variables and data structures
/// can be placed deliberately (colocated or separated — the paper makes
/// allocation a software responsibility).
class AddressAllocator {
 public:
  explicit AddressAllocator(std::uint32_t block_words, Addr start_block = 0)
      : block_words_(block_words), next_block_(start_block) {}

  /// A fresh block-aligned region of `blocks` blocks; returns its base addr.
  Addr alloc_blocks(std::uint64_t blocks = 1) {
    const Addr base = next_block_ * block_words_;
    next_block_ += blocks;
    return base;
  }
  /// A fresh region of at least `words` words (rounded up to whole blocks).
  Addr alloc_words(std::uint64_t words) {
    return alloc_blocks((words + block_words_ - 1) / block_words_);
  }
  [[nodiscard]] std::uint32_t block_words() const noexcept { return block_words_; }

 private:
  std::uint32_t block_words_;
  Addr next_block_;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] const MachineConfig& config() const noexcept { return config_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] sim::StatsRegistry& stats() noexcept { return stats_; }
  [[nodiscard]] const sim::StatsRegistry& stats() const noexcept { return stats_; }
  [[nodiscard]] net::Network& network() noexcept { return *network_; }
  [[nodiscard]] const mem::AddressMap& address_map() const noexcept { return amap_; }
  [[nodiscard]] std::uint32_t n_nodes() const noexcept { return config_.n_nodes; }

  /// Shards the simulation actually runs on: config.n_shards clamped to
  /// n_nodes, and forced to 1 under invariants=kFull (the per-transition
  /// entry hooks read cross-node state, which a parallel window must not).
  [[nodiscard]] std::uint32_t n_shards() const noexcept { return n_shards_; }

  [[nodiscard]] Processor& processor(NodeId i) { return *processors_.at(i); }
  [[nodiscard]] CacheController& cache_controller(NodeId i) { return *caches_.at(i); }
  [[nodiscard]] proto::DirectoryController& directory(NodeId i) { return *dirs_.at(i); }

  /// A fresh allocator over this machine's address space. Regions from
  /// independent allocators would collide; create one per experiment.
  [[nodiscard]] AddressAllocator make_allocator(Addr start_block = 0) const {
    return AddressAllocator(config_.block_words, start_block);
  }

  /// Registers a program; it starts at the next run() call. Spawning
  /// between runs is allowed (tests use it to sequence scenarios). `node`
  /// is the processor the program drives: its start event is scheduled on
  /// that node's shard, so programs spread across shards in sharded runs.
  /// (The plain spawn() overload pins the start event to node 0's shard —
  /// harmless for correctness, but a program driving another node would
  /// serialize its first resumption through a cross-shard hop; pass the
  /// node when you have it.)
  void spawn_on(NodeId node, sim::Task t) {
    programs_.push_back(Program{std::move(t), node});
  }
  void spawn(sim::Task t) { spawn_on(0, std::move(t)); }

  /// Starts all not-yet-started programs and drains the event loop. Throws
  /// if any program failed or the cycle budget was exhausted. Returns the
  /// completion time in cycles.
  Tick run(Tick max_cycles = kNever);

  /// Runs until simulated time `until` and pauses (programs may still be
  /// mid-flight). Useful for inspecting in-progress protocol state; call
  /// run() afterwards to finish.
  Tick run_until(Tick until);

  /// True when every program finished.
  [[nodiscard]] bool all_done() const;

  /// True when no protocol activity is outstanding anywhere (directories
  /// stable, caches drained). Meaningful after run() returns.
  [[nodiscard]] bool quiescent() const;

  /// Fingerprint of every statistic (sim::StatsRegistry::digest). Two runs
  /// of one configuration must agree bit-for-bit; the bench harness records
  /// it per end-to-end run and CI compares it against the committed
  /// baseline, so any change to simulation behavior — intended or not — is
  /// caught (docs/BENCHMARKS.md).
  [[nodiscard]] std::uint64_t stats_digest() const noexcept { return stats_.digest(); }

  /// Convenience: direct word access to backing memory (tests/debugging;
  /// bypasses all timing).
  [[nodiscard]] Word peek_memory(Addr a) const;
  void poke_memory(Addr a, Word v);

  /// Like peek_memory, but coherent: when the WBI directory records an
  /// exclusive owner for the block, the value is read from that owner's
  /// cache (memory is legitimately stale under a write-back protocol).
  [[nodiscard]] Word peek_coherent(Addr a) const;

  /// Runs the full quiescent-state invariant sweep now, regardless of the
  /// configured level; throws sim::InvariantViolation on the first broken
  /// invariant (after dumping the trace tail when tracing is on). Only
  /// meaningful when quiescent() (the distributed queue mirrors lag the
  /// directory while messages are in flight).
  void check_invariants(const char* where = "on-demand");

  /// Writes the newest `n` trace records to `os` (no-op text when tracing
  /// was never enabled). The machine calls this itself on an invariant
  /// violation; exposed for tests and tools.
  void dump_trace(std::ostream& os, std::size_t n = kViolationDumpTail) const;

  /// Records dumped alongside an invariant-violation diagnostic.
  static constexpr std::size_t kViolationDumpTail = 64;

 private:
  struct Program {
    sim::Task task;
    NodeId node;
  };

  /// Prints the trace tail to stderr before an InvariantViolation
  /// propagates, so the interleaving that led to the violation survives.
  void dump_trace_on_violation() const;

  /// Registry node `i`'s components record into: the main registry when
  /// serial, the owning shard's private lane when sharded (plain counter
  /// bumps, no sharing across window workers).
  [[nodiscard]] sim::StatsRegistry& stats_lane(NodeId i) noexcept {
    return lane_stats_.empty() ? stats_ : *lane_stats_[sim_.shard_of_node(i)];
  }

  /// Folds every shard lane into the main registry (and empties the
  /// lanes), so stats()/stats_digest() read like a serial run's. Called
  /// after every run()/run_until(), including exceptional exits.
  void fold_lane_stats();

  MachineConfig config_;
  std::uint32_t n_shards_ = 1;
  sim::Simulator sim_;
  sim::StatsRegistry stats_;
  std::vector<std::unique_ptr<sim::StatsRegistry>> lane_stats_;  ///< [shard], sharded only
  mem::AddressMap amap_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<proto::DirectoryController>> dirs_;
  std::vector<std::unique_ptr<CacheController>> caches_;
  std::vector<std::unique_ptr<Processor>> processors_;
  std::deque<Program> programs_;  ///< deque: stable addresses across spawn
  std::size_t started_ = 0;       ///< programs_[0..started_) have started
  sim::InvariantChecker checker_{*this};
};

}  // namespace bcsim::core
