// The hardware primitive vocabulary (paper Table 1, plus the atomic RMW
// used by the software-lock baselines and a compute delay), as a plain
// enum: the common language between the Processor, trace capture/replay,
// and the documentation.
#pragma once

#include <cstdint>
#include <string_view>

namespace bcsim::core {

enum class PrimitiveOp : std::uint8_t {
  kRead,         ///< READ: retrieve data without coherence maintenance
  kWrite,        ///< WRITE: write data without coherence maintenance
  kReadGlobal,   ///< READ-GLOBAL: read from main memory, bypassing the cache
  kWriteGlobal,  ///< WRITE-GLOBAL: write data globally (via the write buffer)
  kReadUpdate,   ///< READ-UPDATE: fetch + subscribe to future updates
  kResetUpdate,  ///< RESET-UPDATE: cancel the subscription
  kFlushBuffer,  ///< FLUSH-BUFFER: stall until all global writes performed
  kReadLock,     ///< READ-LOCK: shared lock on a cache line
  kWriteLock,    ///< WRITE-LOCK: exclusive lock on a cache line
  kUnlock,       ///< UNLOCK: release the lock
  kRmw,          ///< atomic read-modify-write at memory (swap / compare-swap)
  kTestAndSet,   ///< atomic test-and-set (RMW specialization)
  kFetchAdd,     ///< atomic fetch-and-add (RMW specialization)
  kBarrier,      ///< hardware barrier arrival (extension)
  kCompute,      ///< local computation (no memory system interaction)
};

[[nodiscard]] constexpr std::string_view to_string(PrimitiveOp op) noexcept {
  switch (op) {
    case PrimitiveOp::kRead: return "READ";
    case PrimitiveOp::kWrite: return "WRITE";
    case PrimitiveOp::kReadGlobal: return "READ-GLOBAL";
    case PrimitiveOp::kWriteGlobal: return "WRITE-GLOBAL";
    case PrimitiveOp::kReadUpdate: return "READ-UPDATE";
    case PrimitiveOp::kResetUpdate: return "RESET-UPDATE";
    case PrimitiveOp::kFlushBuffer: return "FLUSH-BUFFER";
    case PrimitiveOp::kReadLock: return "READ-LOCK";
    case PrimitiveOp::kWriteLock: return "WRITE-LOCK";
    case PrimitiveOp::kUnlock: return "UNLOCK";
    case PrimitiveOp::kRmw: return "RMW";
    case PrimitiveOp::kTestAndSet: return "TEST&SET";
    case PrimitiveOp::kFetchAdd: return "FETCH&ADD";
    case PrimitiveOp::kBarrier: return "BARRIER";
    case PrimitiveOp::kCompute: return "COMPUTE";
  }
  return "?";
}

}  // namespace bcsim::core
