// Machine configuration: every architectural knob in one aggregate.
//
// Defaults follow paper Table 4: 4-word blocks, 1024-block caches, main
// memory cycle = 4 cache cycles, Omega network of 2x2 switches. The paper
// evaluates three orthogonal choices, which appear here as three enums:
// how shared data is kept coherent, how memory consistency is enforced,
// and how locks are implemented.
#pragma once

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string_view>

#include "sim/invariants.hpp"
#include "sim/types.hpp"

namespace bcsim::core {

/// Default shard count for new MachineConfigs: $BCSIM_SHARDS when set to a
/// valid integer in [1, 1024] (so a whole test/tool run can be pushed onto
/// the sharded kernel without touching every call site), else 1 — the
/// serial reference kernel. Parsed once per process; invalid values are
/// ignored with a one-time warning.
[[nodiscard]] inline std::uint32_t default_n_shards() noexcept {
  static const std::uint32_t cached = [] {
    const char* env = std::getenv("BCSIM_SHARDS");
    if (env == nullptr) return 1u;
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(env, &end, 10);
    const bool numeric = std::isdigit(static_cast<unsigned char>(env[0])) != 0 &&
                         *end == '\0' && errno != ERANGE;
    if (numeric && v >= 1 && v <= 1024) return static_cast<std::uint32_t>(v);
    std::fprintf(stderr,
                 "bcsim: ignoring invalid BCSIM_SHARDS='%s' "
                 "(expected an integer in [1, 1024]); using 1\n",
                 env);
    return 1u;
  }();
  return cached;
}

/// How shared (coherent) data accesses are implemented.
enum class DataProtocol : std::uint8_t {
  kWbi,         ///< write-back invalidate MSI via the central directory (baseline)
  kReadUpdate,  ///< the paper's machine: WRITE-GLOBAL + READ-UPDATE subscriptions
};

/// Memory consistency enforcement for global writes.
enum class Consistency : std::uint8_t {
  kSequential,  ///< each global write stalls the processor until acknowledged
  kBuffered,    ///< the paper's model: writes enter the write buffer;
                ///< only FLUSH-BUFFER (before CP-Synch) stalls
};

/// Mutual-exclusion implementation used by Processor::lock()/unlock().
enum class LockImpl : std::uint8_t {
  kCbl,         ///< the paper's cache-based queued lock (hardware)
  kTts,         ///< test-and-test&set spinning on a cached copy (WBI baseline)
  kTtsBackoff,  ///< TTS with capped exponential backoff (paper's Q-backoff)
  kTicket,      ///< ticket lock (fetch&add based)
  kMcs,         ///< MCS list lock (modern software queue-lock baseline)
};

/// Barrier implementation used by Processor::barrier().
enum class BarrierImpl : std::uint8_t {
  kCbl,      ///< memory-side counter + chained release (hardware path)
  kCentral,  ///< sense-reversing centralized software barrier on shared memory
  kTree,     ///< software combining tree (fan-in 4) over shared memory
};

enum class NetworkKind : std::uint8_t { kOmega, kCrossbar, kMesh, kIdeal };

/// Deliberate write-buffer faults for oracle/invariant validation
/// (docs/TESTING.md, "Differential testing"). Production configs use
/// kNone; the others exist so tests can prove the differential oracle
/// catches consistency bugs, not to model any real hardware.
enum class WbFault : std::uint8_t {
  kNone,
  kEagerFlush,  ///< FLUSH-BUFFER completes immediately (no CP-Synch gate):
                ///< global writes may still be in flight past a flush
  kEmptyGate,   ///< the pre-watermark bug: a flush waits for the buffer to
                ///< be fully empty, starving under bounded-capacity refill
};

[[nodiscard]] constexpr std::string_view to_string(DataProtocol p) noexcept {
  return p == DataProtocol::kWbi ? "wbi" : "read-update";
}
[[nodiscard]] constexpr std::string_view to_string(Consistency c) noexcept {
  return c == Consistency::kSequential ? "sc" : "bc";
}
[[nodiscard]] constexpr std::string_view to_string(LockImpl l) noexcept {
  switch (l) {
    case LockImpl::kCbl: return "cbl";
    case LockImpl::kTts: return "tts";
    case LockImpl::kTtsBackoff: return "tts-backoff";
    case LockImpl::kTicket: return "ticket";
    case LockImpl::kMcs: return "mcs";
  }
  return "?";
}
[[nodiscard]] constexpr std::string_view to_string(BarrierImpl b) noexcept {
  switch (b) {
    case BarrierImpl::kCbl: return "cbl";
    case BarrierImpl::kCentral: return "central";
    case BarrierImpl::kTree: return "tree";
  }
  return "?";
}
[[nodiscard]] constexpr std::string_view to_string(NetworkKind n) noexcept {
  switch (n) {
    case NetworkKind::kOmega: return "omega";
    case NetworkKind::kCrossbar: return "crossbar";
    case NetworkKind::kMesh: return "mesh";
    case NetworkKind::kIdeal: return "ideal";
  }
  return "?";
}

struct MachineConfig {
  std::uint32_t n_nodes = 16;

  /// Host-parallel simulation shards (DESIGN.md "Sharded PDES kernel").
  /// 1 = the serial reference kernel (bit-for-bit the historical machine).
  /// Values > 1 partition the nodes into contiguous shard ranges executed
  /// window-parallel; schedule_seed 0 stays digest-identical to the serial
  /// kernel at any shard count. Clamped to n_nodes; forced to 1 under
  /// invariants=kFull (entry hooks read cross-node state). Defaults from
  /// $BCSIM_SHARDS so existing tools/tests can opt in wholesale.
  std::uint32_t n_shards = default_n_shards();

  // Cache geometry (Table 4: block size 4 words, cache size 1024 blocks).
  std::uint32_t block_words = 4;
  std::uint32_t cache_blocks = 1024;
  std::uint32_t cache_assoc = 4;
  std::uint32_t lock_cache_entries = 16;
  std::size_t write_buffer_entries = 0;  ///< 0 = unbounded (Table 4 assumption)
  /// WBI directory precision: 0 = full map; k > 0 = Dir_k-B (k pointers,
  /// invalidations broadcast to every node once more than k sharers
  /// exist). The paper picks pointer-based structures because full maps
  /// do not scale (section 4.1, citing Stenstrom's survey); this knob
  /// quantifies what the cheaper directory costs the baseline.
  std::uint32_t dir_pointer_limit = 0;

  // Timing (Table 4: main memory cycle time = 4 cache cycles).
  Tick t_directory = 1;  ///< t_D: directory check
  Tick t_memory = 4;     ///< t_m: memory block access
  Tick switch_delay = 1; ///< per-stage header latency in the Omega network
  Tick ideal_latency = 4;///< latency of the ideal network

  NetworkKind network = NetworkKind::kOmega;
  DataProtocol data_protocol = DataProtocol::kWbi;
  Consistency consistency = Consistency::kSequential;
  LockImpl lock_impl = LockImpl::kTts;
  BarrierImpl barrier_impl = BarrierImpl::kCentral;

  std::uint64_t seed = 1;

  /// Same-tick event tie-break (see EventQueue::set_schedule_seed): 0 fires
  /// same-tick events in scheduling order (the historical behavior, bit-
  /// identical results); any other value picks a different deterministic
  /// serialization of concurrent activity. Sweeping this explores protocol
  /// interleavings without touching the programs.
  std::uint64_t schedule_seed = 0;

  /// How much protocol invariant checking the machine performs on itself
  /// (docs/TESTING.md lists the invariants). kFull re-checks the home
  /// entry after every directory transition.
  sim::InvariantLevel invariants = sim::InvariantLevel::kOff;

  /// Test-only fault injection into every node's write buffer (see
  /// WbFault). The differential-oracle tests use this to verify that a
  /// reordering bug in the flush gate is caught end-to-end.
  WbFault wb_fault = WbFault::kNone;

  /// Event-trace recording (docs/OBSERVABILITY.md): when on, every message
  /// send/delivery, cache-line and directory transition, sync op, and
  /// write-buffer event lands in a ring of `trace_capacity` records, and
  /// an invariant violation dumps the tail next to its diagnostic.
  bool trace = false;
  std::size_t trace_capacity = std::size_t{1} << 16;

  /// Throws std::invalid_argument on inconsistent settings.
  void validate() const {
    if (n_nodes == 0) throw std::invalid_argument("config: n_nodes must be >= 1");
    if (n_shards == 0) throw std::invalid_argument("config: n_shards must be >= 1");
    if (block_words == 0 || block_words > 32) {
      throw std::invalid_argument("config: block_words must be in [1,32]");
    }
    if (cache_assoc == 0 || cache_blocks == 0 || cache_blocks % cache_assoc != 0) {
      throw std::invalid_argument("config: cache_blocks must be a positive multiple of assoc");
    }
    if (lock_cache_entries == 0) {
      throw std::invalid_argument("config: lock_cache_entries must be >= 1");
    }
    if (data_protocol == DataProtocol::kReadUpdate && lock_impl != LockImpl::kCbl) {
      // Software spin locks rely on coherent READ/WRITE, which the
      // read-update machine deliberately does not provide for plain
      // accesses; locks there are the hardware CBL primitives.
      throw std::invalid_argument(
          "config: the read-update machine requires lock_impl=kCbl");
    }
    if (consistency == Consistency::kBuffered && data_protocol == DataProtocol::kWbi) {
      // BC applies to WRITE-GLOBAL traffic, which only the read-update
      // machine generates; allowing the combination would silently measure
      // nothing. (Paper Figures 6-7 compare SC vs BC on the CBL machine.)
      throw std::invalid_argument(
          "config: buffered consistency requires data_protocol=kReadUpdate");
    }
  }
};

}  // namespace bcsim::core
