// Dispatch, Table-1 read/write ops, the WBI transaction engine, write
// buffer management, and eviction.
#include "core/cache_controller.hpp"

#include <cassert>
#include <stdexcept>

#include "sim/log.hpp"

namespace bcsim::core {

using cache::CacheLine;
using cache::LockState;
using cache::MsiState;
using net::Message;
using net::MsgType;
using net::Unit;

CacheController::CacheController(NodeId node, sim::Simulator& simulator, net::Network& network,
                                 const mem::AddressMap& amap, const MachineConfig& config,
                                 sim::StatsRegistry& stats)
    : node_(node), sim_(simulator), net_(network), amap_(amap), config_(config), stats_(stats),
      cache_(config.cache_blocks, config.cache_assoc),
      lock_cache_(config.lock_cache_entries),
      wbuf_(config.write_buffer_entries) {
  switch (config.wb_fault) {
    case WbFault::kNone:
      break;
    case WbFault::kEagerFlush:
      wbuf_.inject_fault(cache::WriteBuffer::Fault::kEagerFlush);
      break;
    case WbFault::kEmptyGate:
      wbuf_.inject_fault(cache::WriteBuffer::Fault::kEmptyGate);
      break;
  }
}

bool CacheController::quiescent() const noexcept {
  return !mshr_.active && wbuf_.empty() && write_acks_.empty() && lock_cbs_.empty() &&
         barrier_cbs_.empty() && lock_release_inflight_ == 0;
}

void CacheController::on_message(const net::Message& m) {
  switch (m.type) {
    case MsgType::kDataS:
    case MsgType::kDataX:
    case MsgType::kRmwAck:
    case MsgType::kReadGlobalAck:
      on_data(m);
      break;
    case MsgType::kInvAck:
      assert(mshr_.active && mshr_.block == m.block);
      ++mshr_.acks_got;
      finish_wbi_txn();
      break;
    case MsgType::kInv: on_inv(m); break;
    case MsgType::kRecall: on_recall(m); break;
    case MsgType::kPutAck:
      stats_.counter("cache.put_acks").add();
      break;
    case MsgType::kWriteGlobalAck: {
      sim_.trace().wb_event(sim::TraceKind::kWbRetire, sim_.now(), node_, m.txn);
      wbuf_.retire();
      if (auto it = write_acks_.find(m.txn); it != write_acks_.end()) {
        Cb cb = std::move(it->second);
        write_acks_.erase(it);
        cb(Response{});
      }
      break;
    }
    case MsgType::kReadUpdateData: on_ru_data(m); break;
    case MsgType::kRuLinkPrev: {
      if (CacheLine* line = cache_.find(m.block); line && line->update_bit) {
        line->prev = m.who;
      }
      break;
    }
    case MsgType::kRuUpdate: on_ru_update(m); break;
    case MsgType::kRuUnlink: {
      // Mirror maintenance after a neighbor left the subscription list.
      if (CacheLine* line = cache_.find(m.block); line && line->update_bit) {
        if (line->prev == m.who) line->prev = m.value == 0 ? kNoNode : static_cast<NodeId>(m.value - 1);
        if (line->next == m.who) line->next = m.value == 0 ? kNoNode : static_cast<NodeId>(m.value - 1);
      }
      break;
    }
    case MsgType::kLockGrant: on_lock_grant(m); break;
    case MsgType::kLockFwd: on_lock_fwd(m); break;
    case MsgType::kLockShareGrant: on_lock_share_grant(m); break;
    case MsgType::kLockWait: on_lock_wait(m); break;
    case MsgType::kLockHandoff: on_lock_handoff(m); break;
    case MsgType::kUnlockEmpty: on_unlock_empty(m); break;
    case MsgType::kUnlockWaitSucc: on_unlock_wait_succ(m); break;
    case MsgType::kHandoffCmd: on_handoff_cmd(m); break;
    case MsgType::kBarArriveAck: on_bar_ack(m); break;
    case MsgType::kBarRelease: on_bar_release(m); break;
    default:
      throw std::logic_error("CacheController: unexpected message type " +
                             std::string(net::to_string(m.type)));
  }
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

void CacheController::complete(Cb& cb, Word value, Tick latency) {
  sim_.schedule(latency, [cb = std::move(cb), value] { cb(Response{value}); });
}

void CacheController::complete_timed(Cb& cb, Word value, Tick issued_at,
                                     std::string_view histogram) {
  stats_.histogram(histogram).record(sim_.now() - issued_at);
  sim_.schedule(0, [cb = std::move(cb), value] { cb(Response{value}); });
}

void CacheController::send(net::Message m) { net_.send(std::move(m)); }

net::Message CacheController::make(net::MsgType t, BlockId b) const {
  net::Message m;
  m.src = node_;
  m.dst = amap_.home_of(b);
  m.unit = Unit::kMemory;
  m.type = t;
  m.block = b;
  return m;
}

cache::CacheLine& CacheController::install_line(BlockId b, const net::BlockData& data) {
  if (CacheLine* existing = cache_.find(b)) {
    existing->data = data;
    cache_.touch(*existing, sim_.now());
    return *existing;
  }
  CacheLine* victim = cache_.pick_victim(b);
  if (victim == nullptr) {
    // Every frame in the set is unreplaceable — cannot happen with lock
    // lines segregated into the lock cache; treat as a configuration bug.
    throw std::logic_error("CacheController: no victim available");
  }
  if (victim->valid) evict(*victim);
  victim->clear();
  victim->block = b;
  victim->valid = true;
  victim->data = data;
  victim->last_use = sim_.now();
  return *victim;
}

void CacheController::evict(cache::CacheLine& victim) {
  stats_.counter("cache.evictions").add();
  if (victim.msi == MsiState::kModified || victim.dirty_mask != 0) {
    // Only dirty words are written back (per-word dirty bits, Figure 2a).
    auto put = make(MsgType::kPutM, victim.block);
    put.data = victim.data;
    put.dirty_mask = victim.dirty_mask != 0
                         ? victim.dirty_mask
                         : ((1u << config_.block_words) - 1u);
    send(std::move(put));
    stats_.counter("cache.writebacks").add();
  }
  if (victim.update_bit) {
    // Replacement cancels the read-update subscription (paper 4.1).
    send(make(MsgType::kResetUpdate, victim.block));
    stats_.counter("cache.ru_evict_unsubscribe").add();
    sim_.trace().cache_state(sim_.now(), sim::CacheTraceOp::kUpdateBit, node_, victim.block,
                             1, 0);
  }
  if (victim.msi != MsiState::kInvalid) {
    sim_.trace().cache_state(sim_.now(), sim::CacheTraceOp::kMsi, node_, victim.block,
                             static_cast<std::uint8_t>(victim.msi),
                             static_cast<std::uint8_t>(MsiState::kInvalid));
  }
  victim.clear();
}

void CacheController::fire_line_change(BlockId b) {
  auto it = change_waiters_.find(b);
  if (it == change_waiters_.end()) return;
  auto waiters = std::move(it->second);
  change_waiters_.erase(it);
  for (auto& w : waiters) w();
}

void CacheController::wait_line_change(Addr a, std::function<void()> cb) {
  change_waiters_[amap_.block_of(a)].push_back(std::move(cb));
}

void CacheController::wait_word_change(Addr a, Word last_seen, std::function<void()> cb) {
  const BlockId b = amap_.block_of(a);
  const CacheLine* line = cache_.find(b);
  if (line == nullptr || line->data[amap_.word_of(a)] != last_seen) {
    // Already changed (or invalidated) since the caller's last read: wake
    // immediately — waiting would risk missing the final wakeup.
    sim_.schedule(0, std::move(cb));
    return;
  }
  change_waiters_[b].push_back(std::move(cb));
}

// ---------------------------------------------------------------------------
// READ / WRITE (semantics depend on the data protocol)
// ---------------------------------------------------------------------------

void CacheController::op_read(Addr a, Cb cb) {
  const BlockId b = amap_.block_of(a);
  const std::uint32_t w = amap_.word_of(a);
  // Lock-carried data: reads inside a critical section hit the lock line.
  if (CacheLine* ll = lock_cache_.find(b); ll && ll->holds_lock()) {
    stats_.counter("cache.hits").add();
    complete(cb, ll->data[w], kHitLatency);
    return;
  }
  if (CacheLine* line = cache_.find(b)) {
    stats_.counter("cache.hits").add();
    cache_.touch(*line, sim_.now());
    complete(cb, line->data[w], kHitLatency);
    return;
  }
  stats_.counter("cache.misses").add();
  assert(!mshr_.active && "one outstanding demand op per processor");
  mshr_ = Mshr{};
  mshr_.active = true;
  mshr_.issued_at = sim_.now();
  mshr_.block = b;
  mshr_.addr = a;
  mshr_.cb = std::move(cb);
  if (config_.data_protocol == DataProtocol::kWbi) {
    mshr_.kind = MsgType::kGetS;
    send(make(MsgType::kGetS, b));
  } else {
    // Uniprocessor-style fill: fetch the block with no coherence state.
    mshr_.kind = MsgType::kReadGlobal;
    auto m = make(MsgType::kReadGlobal, b);
    m.addr = a;
    m.aux = 1;  // whole block
    send(std::move(m));
  }
}

void CacheController::op_write(Addr a, Word v, Cb cb) {
  const BlockId b = amap_.block_of(a);
  const std::uint32_t w = amap_.word_of(a);
  if (CacheLine* ll = lock_cache_.find(b); ll && ll->holds_lock()) {
    // Write under the lock: modify the lock-carried line; the final unlock
    // writes it back.
    assert(ll->lock == LockState::kHeldWrite && "writes require the exclusive lock");
    ll->data[w] = v;
    ll->dirty_mask |= 1u << w;
    ll->memory_stale = true;
    stats_.counter("cache.hits").add();
    complete(cb, v, kHitLatency);
    return;
  }
  CacheLine* line = cache_.find(b);
  if (config_.data_protocol == DataProtocol::kReadUpdate) {
    // Local (uniprocessor) write; write-allocate on miss.
    if (line) {
      line->data[w] = v;
      line->dirty_mask |= 1u << w;
      cache_.touch(*line, sim_.now());
      stats_.counter("cache.hits").add();
      complete(cb, v, kHitLatency);
      return;
    }
    stats_.counter("cache.misses").add();
    assert(!mshr_.active);
    mshr_ = Mshr{};
    mshr_.active = true;
    mshr_.issued_at = sim_.now();
    mshr_.kind = MsgType::kReadGlobal;
    mshr_.block = b;
    mshr_.addr = a;
    mshr_.wval = v;
    mshr_.local_write = true;
    mshr_.cb = std::move(cb);
    auto m = make(MsgType::kReadGlobal, b);
    m.addr = a;
    m.aux = 1;  // whole block (write-allocate fill)
    send(std::move(m));
    return;
  }
  // WBI coherent write.
  if (line && line->msi == MsiState::kModified) {
    line->data[w] = v;
    line->dirty_mask |= 1u << w;
    cache_.touch(*line, sim_.now());
    stats_.counter("cache.hits").add();
    complete(cb, v, kHitLatency);
    return;
  }
  stats_.counter(line ? "cache.upgrades" : "cache.misses").add();
  assert(!mshr_.active);
  mshr_ = Mshr{};
  mshr_.active = true;
  mshr_.issued_at = sim_.now();
  mshr_.kind = MsgType::kGetX;
  mshr_.block = b;
  mshr_.addr = a;
  mshr_.wval = v;
  mshr_.cb = std::move(cb);
  send(make(MsgType::kGetX, b));
}

void CacheController::op_read_global(Addr a, Cb cb) {
  const BlockId b = amap_.block_of(a);
  assert(!mshr_.active);
  mshr_ = Mshr{};
  mshr_.active = true;
  mshr_.issued_at = sim_.now();
  mshr_.kind = MsgType::kReadGlobal;
  mshr_.block = b;
  mshr_.addr = a;
  mshr_.cb = std::move(cb);
  auto m = make(MsgType::kReadGlobal, b);
  m.addr = a;
  m.aux = 0;  // single word, bypass cache (paper Table 1)
  send(std::move(m));
  stats_.counter("cache.read_global").add();
}

void CacheController::op_write_global(Addr a, Word v, Cb cb) {
  const BlockId b = amap_.block_of(a);
  const std::uint32_t w = amap_.word_of(a);
  stats_.counter("cache.write_global").add();
  // Keep the local copy coherent with what memory will hold; the word is
  // not marked dirty (memory is receiving it).
  if (CacheLine* line = cache_.find(b)) {
    line->data[w] = v;
    line->dirty_mask &= ~(1u << w);
  }
  auto issue = [this, a, b, v, cb = std::move(cb)]() mutable {
    const std::uint64_t txn = wbuf_.enter();
    sim_.trace().wb_event(sim::TraceKind::kWbEnter, sim_.now(), node_, txn);
    auto m = make(MsgType::kWriteGlobal, b);
    m.addr = a;
    m.value = v;
    m.txn = txn;
    send(std::move(m));
    if (config_.consistency == Consistency::kSequential) {
      // SC: the processor stalls until the write is globally performed.
      write_acks_.emplace(txn, std::move(cb));
    } else {
      // BC: the write buffer absorbs it; the processor continues.
      complete(cb, v, kHitLatency);
    }
  };
  // A bounded write buffer applies backpressure when full.
  wbuf_.on_slot(std::move(issue));
}

void CacheController::op_flush_buffer(Cb cb) {
  stats_.counter("cache.flush_buffer").add();
  sim_.trace().wb_event(sim::TraceKind::kWbFlushReq, sim_.now(), node_, wbuf_.pending());
  wbuf_.on_drained([this, cb = std::move(cb)]() mutable {
    sim_.trace().wb_event(sim::TraceKind::kWbFlushDone, sim_.now(), node_, wbuf_.pending());
    complete(cb, 0, kHitLatency);
  });
}

void CacheController::op_rmw(Addr a, net::RmwOp op, Word operand, Cb cb, Word operand2) {
  const BlockId b = amap_.block_of(a);
  assert(!mshr_.active);
  mshr_ = Mshr{};
  mshr_.active = true;
  mshr_.issued_at = sim_.now();
  mshr_.kind = MsgType::kRmw;
  mshr_.block = b;
  mshr_.addr = a;
  mshr_.cb = std::move(cb);
  auto m = make(MsgType::kRmw, b);
  m.addr = a;
  m.value = operand;
  m.value2 = operand2;
  m.aux = static_cast<std::uint8_t>(op);
  send(std::move(m));
  stats_.counter("cache.rmw").add();
  sim_.trace().sync_op(sim_.now(), sim::SyncTraceOp::kRmw, node_, b, operand);
}

// ---------------------------------------------------------------------------
// WBI transaction completion
// ---------------------------------------------------------------------------

void CacheController::on_data(const net::Message& m) {
  assert(mshr_.active && mshr_.block == m.block);
  mshr_.data_ok = true;
  mshr_.data = m.data;
  if (m.type == MsgType::kDataX) {
    mshr_.acks_needed = static_cast<std::uint32_t>(m.value);
  } else if (m.type == MsgType::kRmwAck || m.type == MsgType::kReadGlobalAck) {
    mshr_.result = m.value;
  }
  finish_wbi_txn();
}

void CacheController::finish_wbi_txn() {
  if (!mshr_.active || !mshr_.data_ok || mshr_.acks_got < mshr_.acks_needed) return;
  Mshr done = std::move(mshr_);
  mshr_ = Mshr{};
  const std::uint32_t w = amap_.word_of(done.addr);
  // Pre-install MSI state for the transition trace (upgrade vs fill).
  const CacheLine* prior = cache_.find(done.block);
  const auto old_msi = static_cast<std::uint8_t>(prior ? prior->msi : MsiState::kInvalid);
  switch (done.kind) {
    case MsgType::kGetS: {
      CacheLine& line = install_line(done.block, done.data);
      line.msi = MsiState::kShared;
      sim_.trace().cache_state(sim_.now(), sim::CacheTraceOp::kMsi, node_, done.block,
                               old_msi, static_cast<std::uint8_t>(MsiState::kShared));
      complete_timed(done.cb, line.data[w], done.issued_at, "lat.read_miss");
      break;
    }
    case MsgType::kGetX: {
      CacheLine& line = install_line(done.block, done.data);
      line.msi = MsiState::kModified;
      sim_.trace().cache_state(sim_.now(), sim::CacheTraceOp::kMsi, node_, done.block,
                               old_msi, static_cast<std::uint8_t>(MsiState::kModified));
      line.data[w] = done.wval;
      line.dirty_mask |= 1u << w;
      complete_timed(done.cb, done.wval, done.issued_at, "lat.write_miss");
      break;
    }
    case MsgType::kRmw:
      complete_timed(done.cb, done.result, done.issued_at, "lat.rmw");
      break;
    case MsgType::kReadGlobal: {
      if (done.data.count > 0) {
        // Block fill for a local (uniprocessor-style) read or write miss.
        CacheLine& line = install_line(done.block, done.data);
        if (done.local_write) {
          line.data[w] = done.wval;
          line.dirty_mask |= 1u << w;
          complete_timed(done.cb, done.wval, done.issued_at, "lat.write_miss");
        } else {
          complete_timed(done.cb, line.data[w], done.issued_at, "lat.read_miss");
        }
      } else {
        // READ-GLOBAL proper: a single word, bypassing the cache.
        complete_timed(done.cb, done.result, done.issued_at, "lat.read_global");
      }
      break;
    }
    default:
      throw std::logic_error("CacheController: bad MSHR kind");
  }
  // A recall that arrived mid-transaction is serviced now, after the
  // pending store has been performed.
  if (done.recall_pending) {
    perform_recall(cache_.find(done.block), done.recall_aux);
  }
}

void CacheController::on_inv(const net::Message& m) {
  CacheLine* line = cache_.find(m.block);
  if (line) {
    sim_.trace().cache_state(sim_.now(), sim::CacheTraceOp::kMsi, node_, m.block,
                             static_cast<std::uint8_t>(line->msi),
                             static_cast<std::uint8_t>(MsiState::kInvalid));
    line->clear();
    stats_.counter("cache.invalidated").add();
  }
  // Always acknowledge: the directory's full map may lag a silent
  // replacement, and the requester is counting acks either way.
  net::Message ack;
  ack.src = node_;
  ack.dst = m.who;
  ack.unit = (m.aux == 1) ? Unit::kMemory : Unit::kCache;
  ack.type = MsgType::kInvAck;
  ack.block = m.block;
  send(std::move(ack));
  fire_line_change(m.block);
}

void CacheController::on_recall(const net::Message& m) {
  CacheLine* line = cache_.find(m.block);
  if (mshr_.active && mshr_.block == m.block && mshr_.kind == MsgType::kGetX) {
    // Ownership acquisition in flight for this very block (the directory
    // granted us exclusivity and then processed another request): defer
    // until the pending store completes. Only GetX defers — an
    // outstanding RMW on a block we own would otherwise deadlock against
    // its own recall (the RMW completes at memory only after the recall).
    mshr_.recall_pending = true;
    mshr_.recall_aux = m.aux;
    return;
  }
  if (line == nullptr || line->msi != MsiState::kModified) {
    // Our PutM crossed the recall in flight; the directory will treat the
    // PutM as the recall ack.
    stats_.counter("cache.recall_crossed").add();
    return;
  }
  perform_recall(line, m.aux);
}

void CacheController::perform_recall(cache::CacheLine* line, std::uint8_t aux) {
  assert(line != nullptr && line->msi == MsiState::kModified);
  auto ack = make(MsgType::kRecallAck, line->block);
  ack.data = line->data;
  ack.dirty_mask = line->dirty_mask != 0 ? line->dirty_mask : ((1u << config_.block_words) - 1u);
  ack.aux = aux;
  send(std::move(ack));
  if (aux == 0) {
    // Downgrade to shared; memory now has the data.
    line->msi = MsiState::kShared;
    line->dirty_mask = 0;
    sim_.trace().cache_state(sim_.now(), sim::CacheTraceOp::kMsi, node_, line->block,
                             static_cast<std::uint8_t>(MsiState::kModified),
                             static_cast<std::uint8_t>(MsiState::kShared));
  } else {
    const BlockId b = line->block;
    line->clear();
    sim_.trace().cache_state(sim_.now(), sim::CacheTraceOp::kMsi, node_, b,
                             static_cast<std::uint8_t>(MsiState::kModified),
                             static_cast<std::uint8_t>(MsiState::kInvalid));
    fire_line_change(b);
  }
  stats_.counter("cache.recalled").add();
}

}  // namespace bcsim::core
