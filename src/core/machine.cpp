#include "core/machine.hpp"

#include <iostream>
#include <stdexcept>

namespace bcsim::core {

Machine::Machine(const MachineConfig& config)
    : config_(config), amap_(config.block_words, config.n_nodes) {
  config_.validate();
  // Before anything can schedule: the tie-break policy must cover every
  // event of the simulation for a seed to name one schedule exactly.
  sim_.set_schedule_seed(config_.schedule_seed);
  if (config_.trace) sim_.trace().enable(config_.trace_capacity);
  switch (config_.network) {
    case NetworkKind::kOmega:
      network_ = std::make_unique<net::OmegaNetwork>(sim_, stats_, config_.n_nodes,
                                                     config_.switch_delay);
      break;
    case NetworkKind::kCrossbar:
      network_ = std::make_unique<net::CrossbarNetwork>(sim_, stats_, config_.n_nodes);
      break;
    case NetworkKind::kMesh:
      network_ = std::make_unique<net::MeshNetwork>(sim_, stats_, config_.n_nodes,
                                                    config_.switch_delay);
      break;
    case NetworkKind::kIdeal:
      network_ = std::make_unique<net::IdealNetwork>(sim_, stats_, config_.n_nodes,
                                                     config_.ideal_latency);
      break;
  }
  network_->set_block_words(config_.block_words);

  sim::Rng seeder(config_.seed);
  dirs_.reserve(config_.n_nodes);
  caches_.reserve(config_.n_nodes);
  processors_.reserve(config_.n_nodes);
  for (NodeId i = 0; i < config_.n_nodes; ++i) {
    dirs_.push_back(std::make_unique<proto::DirectoryController>(i, sim_, *network_, amap_,
                                                                 config_, stats_));
    caches_.push_back(
        std::make_unique<CacheController>(i, sim_, *network_, amap_, config_, stats_));
    processors_.push_back(
        std::make_unique<Processor>(i, sim_, *caches_.back(), config_, seeder.next_u64()));
    network_->attach(i, net::Unit::kMemory,
                     [d = dirs_.back().get()](const net::Message& m) { d->on_message(m); });
    network_->attach(i, net::Unit::kCache,
                     [c = caches_.back().get()](const net::Message& m) { c->on_message(m); });
  }
  if (config_.invariants == sim::InvariantLevel::kFull) {
    for (NodeId i = 0; i < config_.n_nodes; ++i) {
      dirs_[i]->set_transition_hook([this, i](BlockId b) { checker_.check_entry(i, b); });
    }
  }
}

Tick Machine::run(Tick max_cycles) {
  try {
    while (started_ < programs_.size()) {
      sim::Task& t = programs_[started_++];
      sim_.schedule(0, [&t] { t.start(); });
    }
    const auto result = sim_.run(max_cycles);
    for (const auto& t : programs_) t.rethrow_if_failed();
    if (result == sim::RunResult::kBudget) {
      throw std::runtime_error(
          "Machine::run: cycle budget exhausted (livelock or budget too small)");
    }
    if (config_.invariants != sim::InvariantLevel::kOff && quiescent()) {
      checker_.check_quiescent("end-of-run");
    }
  } catch (const sim::InvariantViolation&) {
    // Entry-local (kFull) violations surface out of sim_.run() via the
    // transition hook; quiescent ones out of check_quiescent. Either way,
    // print the interleaving that led here before the diagnostic unwinds.
    dump_trace_on_violation();
    throw;
  }
  return sim_.now();
}

Tick Machine::run_until(Tick until) {
  try {
    while (started_ < programs_.size()) {
      sim::Task& t = programs_[started_++];
      sim_.schedule(0, [&t] { t.start(); });
    }
    sim_.run_until(until);
    for (const auto& t : programs_) t.rethrow_if_failed();
  } catch (const sim::InvariantViolation&) {
    dump_trace_on_violation();
    throw;
  }
  return sim_.now();
}

void Machine::check_invariants(const char* where) {
  try {
    checker_.check_quiescent(where);
  } catch (const sim::InvariantViolation&) {
    dump_trace_on_violation();
    throw;
  }
}

void Machine::dump_trace(std::ostream& os, std::size_t n) const {
  sim_.trace().dump_tail(os, n);
}

void Machine::dump_trace_on_violation() const {
  if (!sim_.trace().enabled()) return;
  std::cerr << "--- trace (newest " << kViolationDumpTail << " records) ---\n";
  dump_trace(std::cerr, kViolationDumpTail);
}

bool Machine::all_done() const {
  for (const auto& t : programs_) {
    if (!t.done()) return false;
  }
  return true;
}

bool Machine::quiescent() const {
  for (const auto& d : dirs_) {
    if (!d->quiescent()) return false;
  }
  for (const auto& c : caches_) {
    if (!c->quiescent()) return false;
  }
  return true;
}

Word Machine::peek_memory(Addr a) const {
  const BlockId b = amap_.block_of(a);
  return dirs_.at(amap_.home_of(b))->memory().read_word(b, amap_.word_of(a));
}

void Machine::poke_memory(Addr a, Word v) {
  const BlockId b = amap_.block_of(a);
  dirs_.at(amap_.home_of(b))->memory().write_word(b, amap_.word_of(a), v);
}

Word Machine::peek_coherent(Addr a) const {
  const BlockId b = amap_.block_of(a);
  const auto* e = dirs_.at(amap_.home_of(b))->peek(b);
  if (e != nullptr && e->state == mem::DirState::kModified && e->owner != kNoNode) {
    if (const auto* line = caches_.at(e->owner)->data_cache().find(b)) {
      return line->data[amap_.word_of(a)];
    }
  }
  return peek_memory(a);
}

}  // namespace bcsim::core
