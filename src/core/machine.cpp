#include "core/machine.hpp"

#include <atomic>
#include <iostream>
#include <stdexcept>

namespace bcsim::core {

Machine::Machine(const MachineConfig& config)
    : config_(config), amap_(config.block_words, config.n_nodes) {
  config_.validate();
  // Before anything can schedule: the tie-break policy must cover every
  // event of the simulation for a seed to name one schedule exactly.
  sim_.set_schedule_seed(config_.schedule_seed);
  switch (config_.network) {
    case NetworkKind::kOmega:
      network_ = std::make_unique<net::OmegaNetwork>(sim_, stats_, config_.n_nodes,
                                                     config_.switch_delay);
      break;
    case NetworkKind::kCrossbar:
      network_ = std::make_unique<net::CrossbarNetwork>(sim_, stats_, config_.n_nodes);
      break;
    case NetworkKind::kMesh:
      network_ = std::make_unique<net::MeshNetwork>(sim_, stats_, config_.n_nodes,
                                                    config_.switch_delay);
      break;
    case NetworkKind::kIdeal:
      network_ = std::make_unique<net::IdealNetwork>(sim_, stats_, config_.n_nodes,
                                                     config_.ideal_latency);
      break;
  }
  network_->set_block_words(config_.block_words);

  n_shards_ = std::min(config_.n_shards, config_.n_nodes);
  if (n_shards_ > 1 && config_.invariants == sim::InvariantLevel::kFull) {
    // The kFull transition hooks re-check a directory entry against every
    // cache's state inside the mutating event — unsequenced cross-shard
    // reads under a parallel window. Checking is a debugging mode; keep it
    // exact and run serial.
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::cerr << "bcsim: invariants=full forces the serial kernel "
                << "(requested " << n_shards_ << " shards)\n";
    }
    n_shards_ = 1;
  }
  sim_.configure_shards(n_shards_, config_.n_nodes,
                        std::max<Tick>(network_->min_remote_latency(), 1));
  n_shards_ = sim_.n_shards();
  if (config_.trace) sim_.enable_trace(config_.trace_capacity);
  if (n_shards_ > 1) {
    lane_stats_.reserve(n_shards_);
    std::vector<sim::StatsRegistry*> lanes;
    lanes.reserve(n_shards_);
    for (std::uint32_t s = 0; s < n_shards_; ++s) {
      lane_stats_.push_back(std::make_unique<sim::StatsRegistry>());
      lanes.push_back(lane_stats_.back().get());
    }
    network_->configure_shards(lanes);
  }

  sim::Rng seeder(config_.seed);
  dirs_.reserve(config_.n_nodes);
  caches_.reserve(config_.n_nodes);
  processors_.reserve(config_.n_nodes);
  for (NodeId i = 0; i < config_.n_nodes; ++i) {
    sim::StatsRegistry& node_stats = stats_lane(i);
    dirs_.push_back(std::make_unique<proto::DirectoryController>(i, sim_, *network_, amap_,
                                                                 config_, node_stats));
    caches_.push_back(
        std::make_unique<CacheController>(i, sim_, *network_, amap_, config_, node_stats));
    processors_.push_back(
        std::make_unique<Processor>(i, sim_, *caches_.back(), config_, seeder.next_u64()));
    network_->attach(i, net::Unit::kMemory,
                     [d = dirs_.back().get()](const net::Message& m) { d->on_message(m); });
    network_->attach(i, net::Unit::kCache,
                     [c = caches_.back().get()](const net::Message& m) { c->on_message(m); });
  }
  if (config_.invariants == sim::InvariantLevel::kFull) {
    for (NodeId i = 0; i < config_.n_nodes; ++i) {
      dirs_[i]->set_transition_hook([this, i](BlockId b) { checker_.check_entry(i, b); });
    }
  }
}

void Machine::fold_lane_stats() {
  for (auto& lane : lane_stats_) stats_.absorb(*lane);
  sim_.fold_lane_traces();
}

Tick Machine::run(Tick max_cycles) {
  // Lane stats must fold back into the main registry however the run ends:
  // the violation/exception paths read stats and traces too.
  struct FoldGuard {
    Machine* m;
    ~FoldGuard() { m->fold_lane_stats(); }
  } fold_guard{this};
  try {
    while (started_ < programs_.size()) {
      Program& p = programs_[started_++];
      sim_.schedule_on(sim_.shard_of_node(p.node), 0, [t = &p.task] { t->start(); });
    }
    const auto result = sim_.run(max_cycles);
    for (const auto& p : programs_) p.task.rethrow_if_failed();
    if (result == sim::RunResult::kBudget) {
      throw std::runtime_error(
          "Machine::run: cycle budget exhausted (livelock or budget too small)");
    }
    if (config_.invariants != sim::InvariantLevel::kOff && quiescent()) {
      checker_.check_quiescent("end-of-run");
    }
  } catch (const sim::InvariantViolation&) {
    // Entry-local (kFull) violations surface out of sim_.run() via the
    // transition hook; quiescent ones out of check_quiescent. Either way,
    // print the interleaving that led here before the diagnostic unwinds.
    dump_trace_on_violation();
    throw;
  }
  return sim_.now();
}

Tick Machine::run_until(Tick until) {
  struct FoldGuard {
    Machine* m;
    ~FoldGuard() { m->fold_lane_stats(); }
  } fold_guard{this};
  try {
    while (started_ < programs_.size()) {
      Program& p = programs_[started_++];
      sim_.schedule_on(sim_.shard_of_node(p.node), 0, [t = &p.task] { t->start(); });
    }
    sim_.run_until(until);
    for (const auto& p : programs_) p.task.rethrow_if_failed();
  } catch (const sim::InvariantViolation&) {
    dump_trace_on_violation();
    throw;
  }
  return sim_.now();
}

void Machine::check_invariants(const char* where) {
  try {
    checker_.check_quiescent(where);
  } catch (const sim::InvariantViolation&) {
    dump_trace_on_violation();
    throw;
  }
}

void Machine::dump_trace(std::ostream& os, std::size_t n) const {
  if (n_shards_ > 1) {
    // Records live in per-shard lanes; the canonical merge interleaves
    // them in (tick, ...) order like a serial run's tail.
    sim_.merged_trace().dump_tail(os, n);
    return;
  }
  sim_.trace().dump_tail(os, n);
}

void Machine::dump_trace_on_violation() const {
  if (!sim_.trace().enabled()) return;
  std::cerr << "--- trace (newest " << kViolationDumpTail << " records) ---\n";
  dump_trace(std::cerr, kViolationDumpTail);
}

bool Machine::all_done() const {
  for (const auto& p : programs_) {
    if (!p.task.done()) return false;
  }
  return true;
}

bool Machine::quiescent() const {
  for (const auto& d : dirs_) {
    if (!d->quiescent()) return false;
  }
  for (const auto& c : caches_) {
    if (!c->quiescent()) return false;
  }
  return true;
}

Word Machine::peek_memory(Addr a) const {
  const BlockId b = amap_.block_of(a);
  return dirs_.at(amap_.home_of(b))->memory().read_word(b, amap_.word_of(a));
}

void Machine::poke_memory(Addr a, Word v) {
  const BlockId b = amap_.block_of(a);
  dirs_.at(amap_.home_of(b))->memory().write_word(b, amap_.word_of(a), v);
}

Word Machine::peek_coherent(Addr a) const {
  const BlockId b = amap_.block_of(a);
  const auto* e = dirs_.at(amap_.home_of(b))->peek(b);
  if (e != nullptr && e->state == mem::DirState::kModified && e->owner != kNoNode) {
    if (const auto* line = caches_.at(e->owner)->data_cache().find(b)) {
      return line->data[amap_.word_of(a)];
    }
  }
  return peek_memory(a);
}

}  // namespace bcsim::core
