// Reader-initiated coherence, cache side: READ-UPDATE subscriptions,
// RESET-UPDATE, and chained RuUpdate propagation (paper section 4.1).
#include <cassert>

#include "core/cache_controller.hpp"

namespace bcsim::core {

using cache::CacheLine;
using net::Message;
using net::MsgType;
using net::Unit;

void CacheController::op_read_update(Addr a, Cb cb) {
  const BlockId b = amap_.block_of(a);
  const std::uint32_t w = amap_.word_of(a);
  // "A read-update request is serviced locally by the cache if the update
  // bit of the cache line is already set."
  if (CacheLine* line = cache_.find(b); line && line->update_bit) {
    stats_.counter("cache.hits").add();
    cache_.touch(*line, sim_.now());
    complete(cb, line->data[w], kHitLatency);
    return;
  }
  stats_.counter("cache.read_update").add();
  assert(!mshr_.active);
  mshr_ = Mshr{};
  mshr_.active = true;
  mshr_.issued_at = sim_.now();
  mshr_.kind = MsgType::kReadUpdate;
  mshr_.block = b;
  mshr_.addr = a;
  mshr_.cb = std::move(cb);
  auto m = make(MsgType::kReadUpdate, b);
  m.addr = a;
  send(std::move(m));
}

void CacheController::op_reset_update(Addr a, Cb cb) {
  const BlockId b = amap_.block_of(a);
  stats_.counter("cache.reset_update").add();
  if (CacheLine* line = cache_.find(b); line && line->update_bit) {
    line->update_bit = false;
    line->prev = line->next = kNoNode;
    send(make(MsgType::kResetUpdate, b));
    sim_.trace().cache_state(sim_.now(), sim::CacheTraceOp::kUpdateBit, node_, b, 1, 0);
  }
  // Completes locally whether or not a subscription existed (idempotent).
  complete(cb, 0, kHitLatency);
}

void CacheController::on_ru_data(const net::Message& m) {
  assert(mshr_.active && mshr_.block == m.block && mshr_.kind == MsgType::kReadUpdate);
  Mshr done = std::move(mshr_);
  mshr_ = Mshr{};
  CacheLine& line = install_line(m.block, m.data);
  line.update_bit = true;
  line.ru_version = m.value;
  sim_.trace().cache_state(sim_.now(), sim::CacheTraceOp::kUpdateBit, node_, m.block, 0, 1,
                           m.value);
  // New subscribers join at the head of the list: prev = nil, next = the
  // previous head (the directory sends kRuLinkPrev to that node).
  line.prev = kNoNode;
  line.next = m.who;
  complete_timed(done.cb, line.data[amap_.word_of(done.addr)], done.issued_at,
                 "lat.read_update");
}

void CacheController::on_ru_update(const net::Message& m) {
  stats_.counter("cache.ru_updates_received").add();
  if (CacheLine* line = cache_.find(m.block);
      line && line->update_bit && m.value > line->ru_version) {
    // Merge: take updated values for words this node has not locally
    // dirtied (per-word dirty bits prevent lost updates / false sharing).
    // The version check rejects an older snapshot arriving after a newer
    // one (chains for different writes take different hop sequences).
    line->ru_version = m.value;
    for (std::uint32_t w = 0; w < config_.block_words; ++w) {
      if (!(line->dirty_mask & (1u << w))) line->data[w] = m.data.words[w];
    }
    sim_.trace().cache_state(sim_.now(), sim::CacheTraceOp::kUpdateApplied, node_, m.block,
                             1, 1, m.value);
    fire_line_change(m.block);
  }
  // Forward down the remaining chain regardless of local state (this node
  // may have unsubscribed while the update was in flight; the data still
  // has to reach the rest of the list).
  if (m.chain.empty() && m.txn != 0 && m.who != kNoNode) {
    // Last hop of a WRITE-GLOBAL propagation: the write is now globally
    // performed; acknowledge the writer so its buffer entry retires.
    Message ack;
    ack.src = node_;
    ack.dst = m.who;
    ack.unit = Unit::kCache;
    ack.type = MsgType::kWriteGlobalAck;
    ack.block = m.block;
    ack.txn = m.txn;
    net_.send_at(sim_.now() + config_.t_directory, std::move(ack));
    return;
  }
  forward_chain(m);
}

void CacheController::forward_chain(const net::Message& m) {
  if (m.chain.empty()) return;
  Message fwd = m;
  fwd.src = node_;
  fwd.dst = fwd.chain.front();
  fwd.chain.erase(fwd.chain.begin());
  // One cache-directory lookup before the hop leaves this node.
  net_.send_at(sim_.now() + config_.t_directory, std::move(fwd));
  stats_.counter("cache.chain_forwards").add();
}

// ---------------------------------------------------------------------------
// barrier (memory-side counter + chained release)
// ---------------------------------------------------------------------------

void CacheController::op_barrier(Addr a, std::uint32_t participants, Cb cb) {
  const BlockId b = amap_.block_of(a);
  stats_.counter("cache.barrier_arrive").add();
  sim_.trace().sync_op(sim_.now(), sim::SyncTraceOp::kBarrierArrive, node_, b, participants);
  assert(!barrier_cbs_.contains(b));
  barrier_cbs_.emplace(b, std::move(cb));
  auto m = make(MsgType::kBarArrive, b);
  m.addr = a;
  m.value = participants;
  send(std::move(m));
}

void CacheController::on_bar_ack(const net::Message& m) {
  if (m.aux == 1) {
    // We were the last arriver: the barrier opened as we hit it.
    sim_.trace().sync_op(sim_.now(), sim::SyncTraceOp::kBarrierRelease, node_, m.block, m.value);
    auto it = barrier_cbs_.find(m.block);
    assert(it != barrier_cbs_.end());
    Cb cb = std::move(it->second);
    barrier_cbs_.erase(it);
    cb(Response{m.value});
  }
  // Otherwise: arrival recorded; keep waiting for kBarRelease.
}

void CacheController::on_bar_release(const net::Message& m) {
  forward_chain(m);
  auto it = barrier_cbs_.find(m.block);
  if (it == barrier_cbs_.end()) return;  // release overtook a re-arrival race
  sim_.trace().sync_op(sim_.now(), sim::SyncTraceOp::kBarrierRelease, node_, m.block, m.value);
  Cb cb = std::move(it->second);
  barrier_cbs_.erase(it);
  cb(Response{m.value});
}

}  // namespace bcsim::core
