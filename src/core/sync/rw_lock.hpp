// Reader-writer lock: the CBL protocol supports shared (READ-LOCK) and
// exclusive (WRITE-LOCK) modes natively — this is the thin coroutine
// wrapper. Readers sharing the lock receive the protected block with the
// grant and may read it locally; the writer gets exclusive access and its
// modifications travel with the lock.
#pragma once

#include "core/machine.hpp"
#include "core/processor.hpp"
#include "sim/task.hpp"

namespace bcsim::sync {

class CblSharedMutex {
 public:
  explicit CblSharedMutex(core::AddressAllocator& alloc) : addr_(alloc.alloc_blocks(1)) {}

  sim::Task lock_shared(core::Processor& p) { co_await p.read_lock(addr_); }
  sim::Task lock(core::Processor& p) { co_await p.write_lock(addr_); }
  /// Unlock is CP-Synch: flush, then release (same path for both modes).
  sim::Task unlock(core::Processor& p) {
    co_await p.flush_buffer();
    co_await p.unlock(addr_);
  }

  /// Base address of the protected block (data rides the lock grant).
  [[nodiscard]] Addr lock_addr() const noexcept { return addr_; }

 private:
  Addr addr_;
};

}  // namespace bcsim::sync
