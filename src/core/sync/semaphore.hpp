// Counting semaphore built from a mutex-protected counter.
//
// The paper classifies P as NP-Synch and V as CP-Synch; that falls out of
// the construction: P acquires without flushing, V's mutex release flushes
// the write buffer. This is a demonstration of building higher-level
// synchronization from the machine's primitives, not a tuned algorithm.
#pragma once

#include <memory>

#include "core/machine.hpp"
#include "core/processor.hpp"
#include "core/sync/mutex.hpp"
#include "sim/task.hpp"

namespace bcsim::sync {

class CountingSemaphore {
 public:
  CountingSemaphore(core::LockImpl impl, core::AddressAllocator& alloc,
                    std::uint32_t n_nodes, Word initial)
      : mutex_(make_mutex(impl, alloc, n_nodes)),
        count_(alloc.alloc_blocks(1)),
        initial_(initial) {}

  /// One-time initialization by any single processor before concurrent use.
  sim::Task init(core::Processor& p) {
    if (p.config().data_protocol == core::DataProtocol::kReadUpdate) {
      co_await p.write_global(count_, initial_);
      co_await p.flush_buffer();
    } else {
      co_await p.write(count_, initial_);
    }
  }

  /// P / wait: decrements when the count is positive; retries with a small
  /// randomized backoff otherwise.
  sim::Task p_op(core::Processor& p) {
    unsigned attempt = 0;
    for (;;) {
      co_await mutex_->acquire(p);
      const Word c = co_await read(p);
      if (c > 0) {
        co_await write(p, c - 1);
        co_await mutex_->release(p);
        co_return;
      }
      co_await mutex_->release(p);
      ++attempt;
      co_await p.compute(1 + p.rng().backoff(attempt + 2, 256));
    }
  }

  /// V / signal.
  sim::Task v_op(core::Processor& p) {
    co_await mutex_->acquire(p);
    const Word c = co_await read(p);
    co_await write(p, c + 1);
    co_await mutex_->release(p);
  }

  /// Address of the count word (tests and the differential oracle peek the
  /// final count; Word is unsigned, so an underflow past P's `c > 0` guard
  /// would show up as a huge value here).
  [[nodiscard]] Addr count_addr() const noexcept { return count_; }

 private:
  sim::SimFuture<Word> read(core::Processor& p) {
    return p.config().data_protocol == core::DataProtocol::kReadUpdate
               ? p.read_global(count_)
               : p.read(count_);
  }
  sim::SimFuture<Word> write(core::Processor& p, Word v) {
    return p.config().data_protocol == core::DataProtocol::kReadUpdate
               ? p.write_global(count_, v)
               : p.write(count_, v);
  }

  std::unique_ptr<Mutex> mutex_;
  Addr count_;
  Word initial_;
};

}  // namespace bcsim::sync
