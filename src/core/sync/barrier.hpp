// Barrier synchronization (a CP-Synch operation in the paper's model: every
// implementation flushes the write buffer before arriving, so all global
// writes of the phase are performed before anyone crosses).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/machine.hpp"
#include "core/processor.hpp"
#include "sim/task.hpp"

namespace bcsim::sync {

class Barrier {
 public:
  virtual ~Barrier() = default;
  /// Blocks the calling processor until all `participants` have arrived.
  /// Reusable across phases.
  virtual sim::Task wait(core::Processor& p) = 0;
};

/// Hardware path: fetch-increment of a counter at its home memory module;
/// the last arriver's ack doubles as its release, everyone else gets a
/// chained release notification (paper Table 3 "barrier request"/"barrier
/// notify" rows).
class CblBarrier final : public Barrier {
 public:
  CblBarrier(core::AddressAllocator& alloc, std::uint32_t participants)
      : addr_(alloc.alloc_blocks(1)), n_(participants) {}
  sim::Task wait(core::Processor& p) override;

 private:
  Addr addr_;
  std::uint32_t n_;
};

/// Software baseline: sense-reversing centralized barrier — fetch&add on an
/// arrival counter, spin on a sense flag. Under WBI the spin rides the
/// coherence protocol; under the read-update machine the spin subscribes to
/// the sense word with READ-UPDATE and the release uses WRITE-GLOBAL, which
/// is exactly the paper's intended use of reader-initiated coherence.
class CentralBarrier final : public Barrier {
 public:
  CentralBarrier(core::AddressAllocator& alloc, std::uint32_t participants)
      : count_(alloc.alloc_blocks(1)), sense_(alloc.alloc_blocks(1)), n_(participants) {}
  sim::Task wait(core::Processor& p) override;

 private:
  Addr count_;
  Addr sense_;
  std::uint32_t n_;
  /// Host-side per-node sense (models each processor's private sense
  /// variable; private data is modeled probabilistically, not stored).
  std::vector<std::uint8_t> local_sense_ = std::vector<std::uint8_t>(256, 0);
};

/// Software combining-tree barrier: processors arrive in groups of
/// `fan_in` at leaf counters; the last arriver of each group propagates
/// one level up, and the root release trickles back down through per-level
/// sense flags. Arrival traffic is spread over n/fan_in counters instead
/// of one — the software answer to the hot-spot problem the paper cites
/// (Pfister & Norton), included as a stronger software baseline than the
/// centralized barrier.
class TreeBarrier final : public Barrier {
 public:
  TreeBarrier(core::AddressAllocator& alloc, std::uint32_t participants,
              std::uint32_t fan_in = 4);
  sim::Task wait(core::Processor& p) override;

 private:
  struct Level {
    Addr counters;      ///< one counter word per group (block-spaced)
    Addr senses;        ///< one sense word per group (block-spaced)
    std::uint32_t groups;
  };
  sim::Task arrive_level(core::Processor& p, std::uint32_t level, std::uint32_t index,
                         std::uint8_t my_sense);

  std::uint32_t n_;
  std::uint32_t fan_in_;
  std::uint32_t stride_;  ///< words between sibling counters (a whole block)
  std::vector<Level> levels_;
  std::vector<std::uint8_t> local_sense_ = std::vector<std::uint8_t>(256, 0);
};

std::unique_ptr<Barrier> make_barrier(core::BarrierImpl impl, core::AddressAllocator& alloc,
                                      std::uint32_t participants);

}  // namespace bcsim::sync
