// Mutual exclusion abstractions over the machine's primitives.
//
// One Mutex object represents one lock variable shared by all processors;
// each implementation allocates its own words from the experiment's
// AddressAllocator. acquire()/release() are coroutines: workloads write
//
//   co_await mtx.acquire(p);
//   ... critical section ...
//   co_await mtx.release(p);
//
// Release is a CP-Synch operation in the paper's model: every
// implementation flushes the write buffer before making the release
// visible, so writes inside the critical section are globally performed
// before the lock moves on. Acquire is NP-Synch and never flushes.
#pragma once

#include <memory>

#include "core/config.hpp"
#include "core/machine.hpp"
#include "core/processor.hpp"
#include "sim/task.hpp"

namespace bcsim::sync {

class Mutex {
 public:
  virtual ~Mutex() = default;
  virtual sim::Task acquire(core::Processor& p) = 0;
  virtual sim::Task release(core::Processor& p) = 0;

  /// Base address of the lock's block. For the CBL lock, words 1..k-1 of
  /// this block travel with the grant, so small protected data colocated
  /// here is delivered by the lock acquisition itself.
  [[nodiscard]] virtual Addr lock_addr() const = 0;
  /// True when acquiring the lock also delivers the lock block's data.
  [[nodiscard]] virtual bool data_rides_lock() const { return false; }
};

/// CBL: the paper's cache-based queued lock (exclusive mode).
class CblMutex final : public Mutex {
 public:
  explicit CblMutex(core::AddressAllocator& alloc) : addr_(alloc.alloc_blocks(1)) {}
  sim::Task acquire(core::Processor& p) override;
  sim::Task release(core::Processor& p) override;
  [[nodiscard]] Addr lock_addr() const override { return addr_; }
  [[nodiscard]] bool data_rides_lock() const override { return true; }

 private:
  Addr addr_;
};

/// Test-and-test&set: spin on the cached copy, attempt with an atomic RMW.
/// With `backoff`, failed attempts wait a capped, randomized,
/// exponentially-growing delay (the paper's "Q-backoff" variant).
class TtsMutex final : public Mutex {
 public:
  TtsMutex(core::AddressAllocator& alloc, bool backoff,
           Tick backoff_cap = kDefaultBackoffCap)
      : addr_(alloc.alloc_blocks(1)), backoff_(backoff), backoff_cap_(backoff_cap) {}
  sim::Task acquire(core::Processor& p) override;
  sim::Task release(core::Processor& p) override;
  [[nodiscard]] Addr lock_addr() const override { return addr_; }

  static constexpr Tick kDefaultBackoffCap = 1024;

 private:
  Addr addr_;
  bool backoff_;
  Tick backoff_cap_;
};

/// Ticket lock: fetch&add a ticket, spin until now-serving reaches it.
/// Ticket and now-serving words live in separate blocks so the grant write
/// does not collide with ticket draws.
class TicketMutex final : public Mutex {
 public:
  explicit TicketMutex(core::AddressAllocator& alloc)
      : ticket_(alloc.alloc_blocks(1)), serving_(alloc.alloc_blocks(1)) {}
  sim::Task acquire(core::Processor& p) override;
  sim::Task release(core::Processor& p) override;
  [[nodiscard]] Addr lock_addr() const override { return ticket_; }

 private:
  Addr ticket_;
  Addr serving_;
};

/// MCS list lock: the classic software queue lock, included as the modern
/// baseline the paper's CBL anticipates. Each node's queue record lives in
/// its own block (one block per node) to avoid false sharing; the lock
/// word holds the queue tail (node id + 1, 0 = free).
class McsMutex final : public Mutex {
 public:
  McsMutex(core::AddressAllocator& alloc, std::uint32_t n_nodes);
  sim::Task acquire(core::Processor& p) override;
  sim::Task release(core::Processor& p) override;
  [[nodiscard]] Addr lock_addr() const override { return tail_; }

 private:
  [[nodiscard]] Addr qnode_next(NodeId i) const { return qnodes_ + i * stride_; }
  [[nodiscard]] Addr qnode_locked(NodeId i) const { return qnodes_ + i * stride_ + 1; }

  Addr tail_;
  Addr qnodes_;
  std::uint32_t stride_;
};

/// Creates the mutex implementation selected by `impl`.
std::unique_ptr<Mutex> make_mutex(core::LockImpl impl, core::AddressAllocator& alloc,
                                  std::uint32_t n_nodes);

}  // namespace bcsim::sync
