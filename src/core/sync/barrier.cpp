#include "core/sync/barrier.hpp"

#include <algorithm>
#include <stdexcept>

namespace bcsim::sync {

using core::Consistency;
using core::DataProtocol;
using core::Processor;

sim::Task CblBarrier::wait(Processor& p) {
  co_await p.flush_buffer();  // CP-Synch gate
  co_await p.barrier_arrive(addr_, n_);
}

sim::Task CentralBarrier::wait(Processor& p) {
  co_await p.flush_buffer();  // CP-Synch gate
  const bool ru = p.config().data_protocol == DataProtocol::kReadUpdate;
  const std::uint8_t my = (local_sense_.at(p.id()) ^= 1);
  const Word arrived = co_await p.fetch_add(count_, 1);
  if (arrived + 1 == n_) {
    // Last arriver: reset the counter for the next phase, then flip the
    // sense flag to open the barrier.
    if (ru) {
      // The counter reset must be globally performed before the release is
      // initiated (otherwise a released processor's next-phase arrival
      // could be clobbered by the in-flight reset) — textbook CP-Synch.
      co_await p.write_global(count_, 0);
      co_await p.flush_buffer();
      co_await p.write_global(sense_, my);
      co_await p.flush_buffer();
    } else {
      co_await p.write(count_, 0);
      co_await p.write(sense_, my);
    }
    co_return;
  }
  // Spin until the sense flips. Under the read-update machine, subscribe
  // so releases are pushed to us; under WBI the release write invalidates
  // our cached copy.
  for (;;) {
    const Word s = ru ? co_await p.read_update(sense_) : co_await p.read(sense_);
    if (s == my) break;
    co_await p.wait_word_change(sense_, s);
  }
}

TreeBarrier::TreeBarrier(core::AddressAllocator& alloc, std::uint32_t participants,
                         std::uint32_t fan_in)
    : n_(participants), fan_in_(fan_in < 2 ? 2 : fan_in), stride_(alloc.block_words()) {
  std::uint32_t members = n_;
  do {
    Level lvl;
    lvl.groups = (members + fan_in_ - 1) / fan_in_;
    lvl.counters = alloc.alloc_blocks(lvl.groups);
    lvl.senses = alloc.alloc_blocks(lvl.groups);
    levels_.push_back(lvl);
    members = lvl.groups;
  } while (members > 1);
}

sim::Task TreeBarrier::arrive_level(core::Processor& p, std::uint32_t level,
                                    std::uint32_t index, std::uint8_t my_sense) {
  const bool ru = p.config().data_protocol == core::DataProtocol::kReadUpdate;
  const Level& lvl = levels_[level];
  const std::uint32_t members = level == 0 ? n_ : levels_[level - 1].groups;
  const std::uint32_t group = index / fan_in_;
  const std::uint32_t group_size =
      std::min(fan_in_, members - group * fan_in_);
  const Addr cnt = lvl.counters + static_cast<Addr>(group) * stride_;
  const Addr sense = lvl.senses + static_cast<Addr>(group) * stride_;

  const Word arrived = co_await p.fetch_add(cnt, 1);
  if (arrived + 1 == group_size) {
    // Last of the group: reset the counter for reuse, combine upward,
    // then open this group on the way back down.
    if (ru) {
      co_await p.write_global(cnt, 0);
      co_await p.flush_buffer();
    } else {
      co_await p.write(cnt, 0);
    }
    if (level + 1 < levels_.size()) {
      co_await arrive_level(p, level + 1, group, my_sense);
    }
    if (ru) {
      co_await p.write_global(sense, my_sense);
      co_await p.flush_buffer();
    } else {
      co_await p.write(sense, my_sense);
    }
    co_return;
  }
  // Wait for this group's release.
  for (;;) {
    const Word s = ru ? co_await p.read_update(sense) : co_await p.read(sense);
    if (s == my_sense) co_return;
    co_await p.wait_word_change(sense, s);
  }
}

sim::Task TreeBarrier::wait(core::Processor& p) {
  co_await p.flush_buffer();  // CP-Synch gate
  const std::uint8_t my = (local_sense_.at(p.id()) ^= 1);
  co_await arrive_level(p, 0, p.id(), my);
}

std::unique_ptr<Barrier> make_barrier(core::BarrierImpl impl, core::AddressAllocator& alloc,
                                      std::uint32_t participants) {
  switch (impl) {
    case core::BarrierImpl::kCbl:
      return std::make_unique<CblBarrier>(alloc, participants);
    case core::BarrierImpl::kCentral:
      return std::make_unique<CentralBarrier>(alloc, participants);
    case core::BarrierImpl::kTree:
      return std::make_unique<TreeBarrier>(alloc, participants);
  }
  throw std::invalid_argument("make_barrier: unknown barrier implementation");
}

}  // namespace bcsim::sync
