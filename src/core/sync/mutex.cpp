#include "core/sync/mutex.hpp"

#include <stdexcept>

namespace bcsim::sync {

using core::Processor;

// ---------------------------------------------------------------------------
// CBL
// ---------------------------------------------------------------------------

sim::Task CblMutex::acquire(Processor& p) {
  // NP-Synch: proceed as soon as the grant (with the lock block's data)
  // arrives; no waiting on prior global writes.
  co_await p.write_lock(addr_);
}

sim::Task CblMutex::release(Processor& p) {
  // CP-Synch: all global writes issued inside the critical section must be
  // globally performed before the lock moves on.
  co_await p.flush_buffer();
  co_await p.unlock(addr_);
}

// ---------------------------------------------------------------------------
// test-and-test&set (with optional exponential backoff)
// ---------------------------------------------------------------------------

sim::Task TtsMutex::acquire(Processor& p) {
  unsigned attempt = 0;
  for (;;) {
    // Spin on the cached copy; only an invalidation (the holder's release
    // write) wakes us, so the spin itself generates no network traffic.
    for (;;) {
      const Word v = co_await p.read(addr_);
      if (v == 0) break;
      co_await p.wait_word_change(addr_, v);
    }
    const Word old = co_await p.test_and_set(addr_);
    if (old == 0) co_return;
    if (backoff_) {
      ++attempt;
      co_await p.compute(1 + p.rng().backoff(attempt + 3, backoff_cap_));
    }
  }
}

sim::Task TtsMutex::release(Processor& p) {
  co_await p.flush_buffer();
  co_await p.write(addr_, 0);
}

// ---------------------------------------------------------------------------
// ticket lock
// ---------------------------------------------------------------------------

sim::Task TicketMutex::acquire(Processor& p) {
  const Word my = co_await p.fetch_add(ticket_, 1);
  for (;;) {
    const Word cur = co_await p.read(serving_);
    if (cur == my) co_return;
    co_await p.wait_word_change(serving_, cur);
  }
}

sim::Task TicketMutex::release(Processor& p) {
  co_await p.flush_buffer();
  const Word cur = co_await p.read(serving_);
  co_await p.write(serving_, cur + 1);
}

// ---------------------------------------------------------------------------
// MCS list lock
// ---------------------------------------------------------------------------

McsMutex::McsMutex(core::AddressAllocator& alloc, std::uint32_t n_nodes)
    : tail_(alloc.alloc_blocks(1)), stride_(alloc.block_words()) {
  qnodes_ = alloc.alloc_blocks(n_nodes);
}

sim::Task McsMutex::acquire(Processor& p) {
  const NodeId me = p.id();
  // Reset my queue record, then swap myself in as the tail.
  co_await p.write(qnode_next(me), 0);
  co_await p.write(qnode_locked(me), 1);
  const Word prev = co_await p.rmw(tail_, net::RmwOp::kSwap, static_cast<Word>(me) + 1);
  if (prev == 0) co_return;  // uncontended
  const NodeId pred = static_cast<NodeId>(prev - 1);
  // Link behind the predecessor, then spin on my own flag.
  co_await p.write(qnode_next(pred), static_cast<Word>(me) + 1);
  for (;;) {
    const Word l = co_await p.read(qnode_locked(me));
    if (l == 0) co_return;
    co_await p.wait_word_change(qnode_locked(me), l);
  }
}

sim::Task McsMutex::release(Processor& p) {
  co_await p.flush_buffer();
  const NodeId me = p.id();
  Word next = co_await p.read(qnode_next(me));
  if (next == 0) {
    // No known successor: if we are still the tail, swing it back to free.
    const Word cur = co_await p.compare_swap(tail_, static_cast<Word>(me) + 1, 0);
    if (cur == static_cast<Word>(me) + 1) co_return;  // really was the tail
    // Someone enqueued meanwhile; wait for it to link behind us.
    for (;;) {
      next = co_await p.read(qnode_next(me));
      if (next != 0) break;
      co_await p.wait_word_change(qnode_next(me), 0);
    }
  }
  co_await p.write(qnode_locked(static_cast<NodeId>(next - 1)), 0);
}

// ---------------------------------------------------------------------------

std::unique_ptr<Mutex> make_mutex(core::LockImpl impl, core::AddressAllocator& alloc,
                                  std::uint32_t n_nodes) {
  switch (impl) {
    case core::LockImpl::kCbl: return std::make_unique<CblMutex>(alloc);
    case core::LockImpl::kTts: return std::make_unique<TtsMutex>(alloc, false);
    case core::LockImpl::kTtsBackoff: return std::make_unique<TtsMutex>(alloc, true);
    case core::LockImpl::kTicket: return std::make_unique<TicketMutex>(alloc);
    case core::LockImpl::kMcs: return std::make_unique<McsMutex>(alloc, n_nodes);
  }
  throw std::invalid_argument("make_mutex: unknown lock implementation");
}

}  // namespace bcsim::sync
