// Cache-based locking (CBL), cache side: the distributed lock queue of
// paper section 4.3. Lock lines live in the small fully-associative lock
// cache; prev/next pointers thread the queue; grants carry the protected
// data ("merging the data transfer with the synchronization request").
//
// Release discipline (matching the paper's accounting in Table 3):
//   * write-lock holder with a known successor: hand the lock + data
//     directly to the successor (one network hop on the critical path) and
//     notify the directory off the critical path;
//   * write-lock holder with no known successor: query the directory — a
//     successor announce may be in flight (the draining state);
//   * read-lock holders always release through the directory, which knows
//     whether other readers still hold the lock and orchestrates the
//     handoff from the last holder.
#include <cassert>
#include <stdexcept>

#include "core/cache_controller.hpp"

namespace bcsim::core {

using cache::CacheLine;
using cache::LockState;
using net::LockMode;
using net::Message;
using net::MsgType;
using net::Unit;

namespace {
constexpr std::uint8_t kAuxOrchestrate = 0;
constexpr std::uint8_t kAuxHandoffDone = 1;
constexpr std::uint8_t kAuxWriteback = 0;
constexpr std::uint8_t kAuxDrop = 1;
constexpr std::uint8_t kFwdShareBit = 2;
}  // namespace

void CacheController::op_lock(Addr a, net::LockMode mode, Cb cb) {
  const BlockId b = amap_.block_of(a);
  stats_.counter(mode == LockMode::kRead ? "cache.read_lock" : "cache.write_lock").add();
  if (CacheLine* line = lock_cache_.find(b); line != nullptr) {
    // The previous acquisition/release of this lock is still winding down
    // (e.g. an immediate re-lock while the unlock protocol is in flight).
    lock_free_waiters_[b].push_back(
        [this, a, mode, cb = std::move(cb)]() mutable { op_lock(a, mode, std::move(cb)); });
    stats_.counter("cache.lock_line_busy_waits").add();
    return;
  }
  const bool stalled = lock_cache_.on_slot(
      [this, b, mode, cb = std::move(cb)]() mutable { start_lock_request(b, mode, std::move(cb)); });
  if (stalled) stats_.counter("cache.lock_cache_stalls").add();
}

void CacheController::start_lock_request(BlockId b, net::LockMode mode, Cb cb) {
  CacheLine& line = lock_cache_.allocate(b);
  line.lock = (mode == LockMode::kRead) ? LockState::kWaitRead : LockState::kWaitWrite;
  sim_.trace().sync_op(sim_.now(), sim::SyncTraceOp::kLockReq, node_, b,
                       static_cast<std::uint64_t>(mode));
  sim_.trace().cache_state(sim_.now(), sim::CacheTraceOp::kLock, node_, b,
                           static_cast<std::uint8_t>(LockState::kNone),
                           static_cast<std::uint8_t>(line.lock));
  lock_cbs_.emplace(b, LockPending{std::move(cb), sim_.now()});
  auto m = make(MsgType::kLockReq, b);
  m.aux = static_cast<std::uint8_t>(mode);
  send(std::move(m));
}

void CacheController::op_unlock(Addr a, Cb cb) {
  const BlockId b = amap_.block_of(a);
  CacheLine* line = lock_cache_.find(b);
  if (line == nullptr || !line->holds_lock()) {
    throw std::logic_error("CacheController: unlock of a lock not held");
  }
  stats_.counter("cache.unlock").add();
  sim_.trace().sync_op(sim_.now(), sim::SyncTraceOp::kUnlock, node_, b);
  // "The unlocking processor is allowed to continue its computation
  // immediately, and does not have to wait for the unlock operation to be
  // performed globally."
  complete(cb, 0, kHitLatency);
  ++lock_release_inflight_;

  if (line->lock == LockState::kHeldWrite) {
    if (line->next != kNoNode) {
      // Fast path: direct handoff to the known successor.
      Message h;
      h.src = node_;
      h.dst = line->next;
      h.unit = Unit::kCache;
      h.type = MsgType::kLockHandoff;
      h.block = b;
      h.data = line->data;
      h.aux = line->memory_stale ? 1 : 0;
      send(std::move(h));
      auto n = make(MsgType::kUnlockNotify, b);
      n.aux = kAuxHandoffDone;
      n.who = line->next;
      send(std::move(n));
      release_lock_line(b);
    } else {
      // Successor unknown: ask the directory whether we are still the tail.
      line->lock = LockState::kQuerying;
      send(make(MsgType::kUnlockQuery, b));
    }
  } else {
    // Read locks release through the directory, which knows whether other
    // readers still hold the lock.
    line->lock = LockState::kReleasing;
    auto n = make(MsgType::kUnlockNotify, b);
    n.aux = kAuxOrchestrate;
    send(std::move(n));
  }
}

void CacheController::on_lock_grant(const net::Message& m) {
  CacheLine* line = lock_cache_.find(m.block);
  assert(line != nullptr &&
         (line->lock == LockState::kWaitRead || line->lock == LockState::kWaitWrite));
  line->data = m.data;
  line->memory_stale = false;
  became_holder(*line, /*chain_modified=*/false);
}

void CacheController::on_lock_fwd(const net::Message& m) {
  CacheLine* line = lock_cache_.find(m.block);
  assert(line != nullptr && "LockFwd for a block with no lock line");
  const auto mode = static_cast<LockMode>(m.aux & 1u);
  const bool share = (m.aux & kFwdShareBit) != 0;
  line->next = m.who;
  line->next_mode = mode;

  switch (line->lock) {
    case LockState::kHeldRead:
    case LockState::kHeldWrite:
      if (share) {
        Message g;
        g.src = node_;
        g.dst = m.who;
        g.unit = Unit::kCache;
        g.type = MsgType::kLockShareGrant;
        g.block = m.block;
        g.data = line->data;
        g.aux = line->memory_stale ? 1 : 0;
        send(std::move(g));
      } else {
        Message w;
        w.src = node_;
        w.dst = m.who;
        w.unit = Unit::kCache;
        w.type = MsgType::kLockWait;
        w.block = m.block;
        send(std::move(w));
      }
      break;
    case LockState::kWaitRead:
    case LockState::kWaitWrite:
    case LockState::kReleasing: {
      if (share && line->lock == LockState::kReleasing) {
        // We still have the data; the directory counted the newcomer as a
        // co-holder at forward time.
        Message g;
        g.src = node_;
        g.dst = m.who;
        g.unit = Unit::kCache;
        g.type = MsgType::kLockShareGrant;
        g.block = m.block;
        g.data = line->data;
        g.aux = line->memory_stale ? 1 : 0;
        send(std::move(g));
        break;
      }
      // Tell the newcomer where it queued; the grant (share cascade or
      // handoff) reaches it once we ourselves hold / release.
      Message w;
      w.src = node_;
      w.dst = m.who;
      w.unit = Unit::kCache;
      w.type = MsgType::kLockWait;
      w.block = m.block;
      send(std::move(w));
      break;
    }
    case LockState::kQuerying:  // the announce raced our tail query: drain now
    case LockState::kDraining: {
      // We released while this announce was in flight: pass the lock on
      // directly and leave the queue.
      assert(!share && "share-forward cannot target a draining write holder");
      Message h;
      h.src = node_;
      h.dst = m.who;
      h.unit = Unit::kCache;
      h.type = MsgType::kLockHandoff;
      h.block = m.block;
      h.data = line->data;
      h.aux = line->memory_stale ? 1 : 0;
      send(std::move(h));
      auto n = make(MsgType::kUnlockNotify, m.block);
      n.aux = kAuxHandoffDone;
      n.who = m.who;
      send(std::move(n));
      release_lock_line(m.block);
      break;
    }
    case LockState::kNone:
      throw std::logic_error("CacheController: LockFwd hit an inactive line");
  }
}

void CacheController::on_lock_share_grant(const net::Message& m) {
  CacheLine* line = lock_cache_.find(m.block);
  assert(line != nullptr && line->lock == LockState::kWaitRead);
  line->data = m.data;
  line->prev = m.src;
  became_holder(*line, m.aux != 0);
}

void CacheController::on_lock_wait(const net::Message& m) {
  if (CacheLine* line = lock_cache_.find(m.block)) line->prev = m.src;
}

void CacheController::on_lock_handoff(const net::Message& m) {
  CacheLine* line = lock_cache_.find(m.block);
  assert(line != nullptr &&
         (line->lock == LockState::kWaitRead || line->lock == LockState::kWaitWrite));
  line->data = m.data;
  became_holder(*line, m.aux != 0);
}

void CacheController::became_holder(cache::CacheLine& line, bool chain_modified) {
  line.memory_stale = chain_modified;
  const auto old_lock = static_cast<std::uint8_t>(line.lock);
  line.lock =
      (line.lock == LockState::kWaitWrite) ? LockState::kHeldWrite : LockState::kHeldRead;
  stats_.counter("cache.lock_granted").add();
  sim_.trace().sync_op(sim_.now(), sim::SyncTraceOp::kLockGrant, node_, line.block);
  sim_.trace().cache_state(sim_.now(), sim::CacheTraceOp::kLock, node_, line.block, old_lock,
                           static_cast<std::uint8_t>(line.lock));
  cascade_share(line);
  auto it = lock_cbs_.find(line.block);
  assert(it != lock_cbs_.end());
  LockPending pending = std::move(it->second);
  lock_cbs_.erase(it);
  // The word the processor asked to lock rides along with the grant.
  complete_timed(pending.cb, line.data[0], pending.issued_at, "lat.lock_acquire");
}

void CacheController::cascade_share(cache::CacheLine& line) {
  // "The lock release notification goes down the linked list until it
  // meets a write-lock requester": a read holder whose successor also
  // requested a read lock passes the shared grant along.
  if (line.lock != LockState::kHeldRead) return;
  if (line.next == kNoNode || line.next_mode != LockMode::kRead) return;
  Message g;
  g.src = node_;
  g.dst = line.next;
  g.unit = Unit::kCache;
  g.type = MsgType::kLockShareGrant;
  g.block = line.block;
  g.data = line.data;
  g.aux = line.memory_stale ? 1 : 0;
  send(std::move(g));
  stats_.counter("cache.share_cascade").add();
}

void CacheController::on_unlock_empty(const net::Message& m) {
  CacheLine* line = lock_cache_.find(m.block);
  assert(line != nullptr &&
         (line->lock == LockState::kReleasing || line->lock == LockState::kQuerying));
  if (m.aux == kAuxWriteback) {
    auto wb = make(MsgType::kLockWriteback, m.block);
    if (line->memory_stale) {
      wb.data = line->data;
      wb.dirty_mask = (1u << config_.block_words) - 1u;
    }
    wb.aux = line->memory_stale ? 1 : 0;
    send(std::move(wb));
  } else {
    static_cast<void>(kAuxDrop);  // aux==kAuxDrop: other readers still hold
  }
  release_lock_line(m.block);
}

void CacheController::on_unlock_wait_succ(const net::Message& m) {
  // The successor announce may have arrived (and been drained) before this
  // reply; in that case the line is already gone — nothing to do.
  CacheLine* line = lock_cache_.find(m.block);
  if (line == nullptr || line->lock != LockState::kQuerying) return;
  line->lock = LockState::kDraining;
}

void CacheController::on_handoff_cmd(const net::Message& m) {
  CacheLine* line = lock_cache_.find(m.block);
  assert(line != nullptr && line->lock == LockState::kReleasing);
  Message h;
  h.src = node_;
  h.dst = m.who;
  h.unit = Unit::kCache;
  h.type = MsgType::kLockHandoff;
  h.block = m.block;
  h.data = line->data;
  h.aux = line->memory_stale ? 1 : 0;
  send(std::move(h));
  release_lock_line(m.block);
}

void CacheController::release_lock_line(BlockId b) {
  lock_cache_.release(b);
  assert(lock_release_inflight_ > 0);
  --lock_release_inflight_;
  fire_lock_free(b);
}

void CacheController::fire_lock_free(BlockId b) {
  auto it = lock_free_waiters_.find(b);
  if (it == lock_free_waiters_.end()) return;
  auto waiters = std::move(it->second);
  lock_free_waiters_.erase(it);
  for (auto& w : waiters) w();
}

}  // namespace bcsim::core
