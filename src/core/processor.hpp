// Processor: the coroutine-facing wrapper over the cache controller.
//
// A simulated program is a coroutine that co_awaits these methods; each
// suspends until the memory system completes the operation at the correct
// simulated time. The method set mirrors paper Table 1 plus the atomic RMW
// the software-lock baselines need and a compute() delay for modeling
// execution between references.
//
//   sim::Task program(core::Processor& p) {
//     co_await p.compute(5);
//     Word x = co_await p.read(addr);
//     co_await p.write_global(addr, x + 1);
//     co_await p.flush_buffer();       // before a CP-Synch operation
//   }
#pragma once

#include <cstdint>
#include <functional>

#include "core/cache_controller.hpp"
#include "core/config.hpp"
#include "core/primitives.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"

namespace bcsim::core {

class Processor {
 public:
  Processor(NodeId node, sim::Simulator& simulator, CacheController& cc,
            const MachineConfig& config, std::uint64_t seed)
      : node_(node), sim_(simulator), cc_(cc), config_(config), rng_(seed) {}

  [[nodiscard]] NodeId id() const noexcept { return node_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] CacheController& cache() noexcept { return cc_; }
  [[nodiscard]] const MachineConfig& config() const noexcept { return config_; }
  [[nodiscard]] sim::Rng& rng() noexcept { return rng_; }

  /// Observer invoked once per issued primitive (trace capture, debugging).
  /// The hook sees program-level operations, not protocol messages.
  using PrimitiveHook = std::function<void(PrimitiveOp, Addr, Word)>;
  void set_hook(PrimitiveHook hook) { hook_ = std::move(hook); }
  void clear_hook() { hook_ = nullptr; }

  /// Local computation for `cycles` machine cycles.
  [[nodiscard]] auto compute(Tick cycles) {
    note(PrimitiveOp::kCompute, cycles, 0);
    return sim::delay(sim_, cycles);
  }

  /// A private-data reference, modeled probabilistically per paper Table 4:
  /// hit ratio 0.95 at 1 cycle; a miss pays the local memory round trip.
  /// (Private data never generates coherence traffic, so a probabilistic
  /// model is exact for the metrics the paper reports.)
  [[nodiscard]] auto private_access() {
    const Tick cost = rng_.chance(kPrivateHitRatio)
                          ? 1
                          : 1 + config_.t_directory + config_.t_memory +
                                2 * net::Network::kLocalLatency;
    return sim::delay(sim_, cost);
  }

  // ---- Table 1 primitives ----
  [[nodiscard]] sim::SimFuture<Word> read(Addr a) {
    note(PrimitiveOp::kRead, a, 0);
    return wrap([&](auto cb) { cc_.op_read(a, std::move(cb)); });
  }
  [[nodiscard]] sim::SimFuture<Word> write(Addr a, Word v) {
    note(PrimitiveOp::kWrite, a, v);
    return wrap([&](auto cb) { cc_.op_write(a, v, std::move(cb)); });
  }
  [[nodiscard]] sim::SimFuture<Word> read_global(Addr a) {
    note(PrimitiveOp::kReadGlobal, a, 0);
    return wrap([&](auto cb) { cc_.op_read_global(a, std::move(cb)); });
  }
  [[nodiscard]] sim::SimFuture<Word> write_global(Addr a, Word v) {
    note(PrimitiveOp::kWriteGlobal, a, v);
    return wrap([&](auto cb) { cc_.op_write_global(a, v, std::move(cb)); });
  }
  [[nodiscard]] sim::SimFuture<Word> read_update(Addr a) {
    note(PrimitiveOp::kReadUpdate, a, 0);
    return wrap([&](auto cb) { cc_.op_read_update(a, std::move(cb)); });
  }
  [[nodiscard]] sim::SimFuture<Word> reset_update(Addr a) {
    note(PrimitiveOp::kResetUpdate, a, 0);
    return wrap([&](auto cb) { cc_.op_reset_update(a, std::move(cb)); });
  }
  [[nodiscard]] sim::SimFuture<Word> flush_buffer() {
    note(PrimitiveOp::kFlushBuffer, 0, 0);
    return wrap([&](auto cb) { cc_.op_flush_buffer(std::move(cb)); });
  }
  [[nodiscard]] sim::SimFuture<Word> read_lock(Addr a) {
    note(PrimitiveOp::kReadLock, a, 0);
    return wrap([&](auto cb) { cc_.op_lock(a, net::LockMode::kRead, std::move(cb)); });
  }
  [[nodiscard]] sim::SimFuture<Word> write_lock(Addr a) {
    note(PrimitiveOp::kWriteLock, a, 0);
    return wrap([&](auto cb) { cc_.op_lock(a, net::LockMode::kWrite, std::move(cb)); });
  }
  [[nodiscard]] sim::SimFuture<Word> unlock(Addr a) {
    note(PrimitiveOp::kUnlock, a, 0);
    return wrap([&](auto cb) { cc_.op_unlock(a, std::move(cb)); });
  }

  // ---- extensions ----
  [[nodiscard]] sim::SimFuture<Word> rmw(Addr a, net::RmwOp op, Word operand,
                                         Word operand2 = 0) {
    note(PrimitiveOp::kRmw, a, operand);
    return wrap([&](auto cb) { cc_.op_rmw(a, op, operand, std::move(cb), operand2); });
  }
  /// Atomic compare-and-swap: writes `desired` iff the word equals
  /// `expected`; returns the old word either way.
  [[nodiscard]] sim::SimFuture<Word> compare_swap(Addr a, Word expected, Word desired) {
    return rmw(a, net::RmwOp::kCompareSwap, expected, desired);
  }
  [[nodiscard]] sim::SimFuture<Word> test_and_set(Addr a) {
    note(PrimitiveOp::kTestAndSet, a, 1);
    return wrap([&](auto cb) { cc_.op_rmw(a, net::RmwOp::kTestAndSet, 1, std::move(cb)); });
  }
  [[nodiscard]] sim::SimFuture<Word> fetch_add(Addr a, Word delta) {
    note(PrimitiveOp::kFetchAdd, a, delta);
    return wrap([&](auto cb) { cc_.op_rmw(a, net::RmwOp::kFetchAdd, delta, std::move(cb)); });
  }
  /// Hardware barrier arrival (memory-side counter + chained release).
  [[nodiscard]] sim::SimFuture<Word> barrier_arrive(Addr a, std::uint32_t participants) {
    note(PrimitiveOp::kBarrier, a, participants);
    return wrap([&](auto cb) { cc_.op_barrier(a, participants, std::move(cb)); });
  }
  /// Suspends until the cached copy of a's block changes or is invalidated
  /// (spin-wait assist; a cache-hit spin generates no traffic).
  [[nodiscard]] sim::SimFuture<sim::Unit> wait_line_change(Addr a) {
    sim::SimFuture<sim::Unit> f;
    cc_.wait_line_change(a, [r = f.resolver()] { r(sim::Unit{}); });
    return f;
  }
  /// Race-free spin wait: resumes when the cached word at `a` differs from
  /// `last_seen` (immediately if it already does).
  [[nodiscard]] sim::SimFuture<sim::Unit> wait_word_change(Addr a, Word last_seen) {
    sim::SimFuture<sim::Unit> f;
    cc_.wait_word_change(a, last_seen, [r = f.resolver()] { r(sim::Unit{}); });
    return f;
  }

  static constexpr double kPrivateHitRatio = 0.95;

 private:
  void note(PrimitiveOp op, Addr a, Word v) {
    if (hook_) hook_(op, a, v);
  }

  template <typename Fn>
  sim::SimFuture<Word> wrap(Fn&& fn) {
    sim::SimFuture<Word> f;
    fn([r = f.resolver()](CacheController::Response resp) { r(resp.value); });
    return f;
  }

  NodeId node_;
  sim::Simulator& sim_;
  CacheController& cc_;
  const MachineConfig& config_;
  sim::Rng rng_;
  PrimitiveHook hook_;
};

}  // namespace bcsim::core
