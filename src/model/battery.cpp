#include "model/battery.hpp"

namespace bcsim::model {

namespace {

constexpr std::uint32_t X = 0;
constexpr std::uint32_t Y = 1;

/// A thread that only subscribes to `loc` (lengthening its delivery
/// chain) without contributing to the outcome.
std::vector<Op> bystander(std::uint32_t loc) { return {LdQuiet(loc)}; }

}  // namespace

std::vector<LitmusTest> litmus_battery() {
  std::vector<LitmusTest> b;

  // --- message passing ------------------------------------------------
  // Bystanders subscribe to the data block only; the reader subscribes
  // first (thread order = warmup order), so it sits at the tail of x's
  // delivery chain but alone on y's — without a fence the flag can
  // overtake the data (the weak outcome t1:y=1 t1:x=0).
  b.push_back({"mp",
               "message passing, no fence: flag may overtake data",
               2, 0,
               {{St(X, 42), St(Y, 1)},
                {Await(Y, 1), Ld(X)},
                bystander(X), bystander(X), bystander(X)}});
  b.push_back({"mp-fence",
               "message passing with CP-Synch flush: data before flag",
               2, 0,
               {{St(X, 42), Fence(), St(Y, 1)},
                {Await(Y, 1), Ld(X)},
                bystander(X), bystander(X), bystander(X)}});
  b.push_back({"mp-global",
               "message passing, reader uses READ-GLOBAL: buffer drain may reorder",
               2, 0,
               {{St(X, 42), St(Y, 1)}, {LdOnce(Y), LdOnce(X)}}});
  b.push_back({"mp-global-fence",
               "READ-GLOBAL reader, fenced writer: home order is write order",
               2, 0,
               {{St(X, 42), Fence(), St(Y, 1)}, {LdOnce(Y), LdOnce(X)}}});

  // --- store buffering / load buffering -------------------------------
  // Both stores sit in write buffers while both loads read below them:
  // (0,0) is the BC-allowed outcome an SC machine can never produce.
  b.push_back({"sb",
               "store buffering: both loads may miss both stores under BC",
               2, 0,
               {{St(X, 1), Ld(Y)}, {St(Y, 1), Ld(X)}}});
  b.push_back({"sb-fence",
               "store buffering with flushes: SC restored, (0,0) forbidden",
               2, 0,
               {{St(X, 1), Fence(), Ld(Y)}, {St(Y, 1), Fence(), Ld(X)}}});
  b.push_back({"lb",
               "load buffering: in-order issue forbids (1,1)",
               2, 0,
               {{Ld(Y), St(X, 1)}, {Ld(X), St(Y, 1)}}});

  // --- S and R shapes --------------------------------------------------
  b.push_back({"s",
               "S: store-store vs load-store; coherence order decides final x",
               2, 0,
               {{St(X, 2), St(Y, 1)}, {Ld(Y), St(X, 1)}}});
  b.push_back({"r",
               "R: store-store vs store-load; coherence order decides final y",
               2, 0,
               {{St(X, 1), St(Y, 2)}, {St(Y, 1), Ld(X)}}});

  // --- independent reads of independent writes ------------------------
  // Asymmetric chains (bystanders on x) let the two readers disagree on
  // the order of the writes; BC is not multi-copy atomic, so reader
  // fences do not close the window either.
  b.push_back({"iriw",
               "IRIW: readers may disagree on the order of independent writes",
               2, 0,
               {{St(X, 1)}, {St(Y, 1)},
                {Await(X, 1), Ld(Y)}, {Await(Y, 1), Ld(X)},
                bystander(X), bystander(X)}});
  b.push_back({"iriw-fence",
               "IRIW with reader fences: still allowed (BC is not multi-copy atomic)",
               2, 0,
               {{St(X, 1)}, {St(Y, 1)},
                {Await(X, 1), Fence(), Ld(Y)}, {Await(Y, 1), Fence(), Ld(X)},
                bystander(X), bystander(X)}});

  // --- per-location coherence ------------------------------------------
  b.push_back({"corr",
               "read-read coherence: a reader's view never goes backwards",
               1, 0,
               {{St(X, 1)}, {Ld(X), Ld(X)}}});
  b.push_back({"co-unsub",
               "RESET-UPDATE then re-subscribe stays coherent across two stores",
               1, 0,
               {{St(X, 1), St(X, 2)}, {Ld(X), Unsub(X), Ld(X)}}});

  // --- locks ------------------------------------------------------------
  // The writer's unlock flushes, so an observer that takes the lock after
  // the writer must see the write; an unsynchronized observer gains
  // nothing and may even see the critical-section store before the
  // pre-lock store (the buffer drains out of order).
  b.push_back({"lock-handoff",
               "properly locked handoff: reader inside the lock sees 0 or 1, never stale-after-release",
               1, 1,
               {{Lock(0), St(X, 1), Unlock(0)}, {Lock(0), Ld(X), Unlock(0)}}});
  b.push_back({"lock-nosync",
               "unsynchronized observer of a locked writer: CS store may overtake the pre-lock store",
               2, 1,
               {{St(X, 1), Lock(0), St(Y, 1), Unlock(0)}, {Await(Y, 1), Ld(X)}}});
  b.push_back({"lock-two",
               "release of lock b publishes the write under lock a (transitive CP-Synch)",
               2, 2,
               {{Lock(0), St(X, 1), Unlock(0), Lock(1), St(Y, 1), Unlock(1)},
                {Lock(1), Ld(Y), Unlock(1), Lock(0), Ld(X), Unlock(0)}}});

  // --- barriers ---------------------------------------------------------
  b.push_back({"barrier-sb",
               "SB with a barrier between store and load: only (1,1) survives",
               2, 0,
               {{St(X, 1), Bar(), Ld(Y)}, {St(Y, 1), Bar(), Ld(X)}}});
  b.push_back({"barrier-mp",
               "store before the barrier is visible to everyone after it",
               1, 0,
               {{St(X, 7), Bar()}, {Bar(), Ld(X)}}});

  return b;
}

const LitmusTest* find_litmus(const std::vector<LitmusTest>& battery,
                              const std::string& name) {
  for (const LitmusTest& t : battery) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

}  // namespace bcsim::model
