#include "model/litmus.hpp"

#include <sstream>

namespace bcsim::model {

namespace {

bool is_load(OpKind k) { return k == OpKind::kLoad || k == OpKind::kLoadOnce; }

}  // namespace

std::string validate(const LitmusTest& t) {
  if (t.threads.empty()) return "litmus '" + t.name + "': no threads";
  std::size_t barriers0 = 0;
  for (std::size_t ti = 0; ti < t.threads.size(); ++ti) {
    std::vector<std::uint32_t> held;
    std::vector<bool> stores(t.n_locations, false);
    std::size_t barriers = 0;
    for (const Op& op : t.threads[ti]) {
      const bool is_data = op.kind == OpKind::kStore || is_load(op.kind) ||
                           op.kind == OpKind::kUnsubscribe ||
                           op.kind == OpKind::kAwait;
      if (is_data && op.loc >= t.n_locations) {
        return "litmus '" + t.name + "': thread " + std::to_string(ti) +
               " references location " + std::to_string(op.loc) + " >= n_locations";
      }
      const bool is_lock = op.kind == OpKind::kLock || op.kind == OpKind::kUnlock;
      if (is_lock && op.loc >= t.n_locks) {
        return "litmus '" + t.name + "': thread " + std::to_string(ti) +
               " references lock " + std::to_string(op.loc) + " >= n_locks";
      }
      switch (op.kind) {
        case OpKind::kStore: stores[op.loc] = true; break;
        case OpKind::kLoadOnce:
          if (stores[op.loc]) {
            return "litmus '" + t.name + "': thread " + std::to_string(ti) +
                   " kLoadOnce's location it stores to (READ-GLOBAL bypasses "
                   "the write buffer)";
          }
          break;
        case OpKind::kAwait:
          if (stores[op.loc]) {
            return "litmus '" + t.name + "': thread " + std::to_string(ti) +
                   " awaits a location it stores to (vacuous spin)";
          }
          break;
        case OpKind::kLock:
          for (const std::uint32_t h : held) {
            if (h == op.loc) {
              return "litmus '" + t.name + "': thread " + std::to_string(ti) +
                     " re-acquires a lock it holds";
            }
          }
          held.push_back(op.loc);
          break;
        case OpKind::kUnlock: {
          if (held.empty() || held.back() != op.loc) {
            return "litmus '" + t.name + "': thread " + std::to_string(ti) +
                   " releases a lock it does not hold (or out of nesting order)";
          }
          held.pop_back();
          break;
        }
        case OpKind::kBarrier: ++barriers; break;
        default: break;
      }
    }
    if (!held.empty()) {
      return "litmus '" + t.name + "': thread " + std::to_string(ti) +
             " exits holding a lock";
    }
    if (ti == 0) barriers0 = barriers;
    if (barriers != barriers0) {
      return "litmus '" + t.name +
             "': threads disagree on barrier count (barriers are global episodes)";
    }
  }
  // An await can only terminate if someone actually stores the value.
  for (const auto& th : t.threads) {
    for (const Op& op : th) {
      if (op.kind != OpKind::kAwait) continue;
      bool stored = false;
      for (const auto& other : t.threads) {
        for (const Op& st : other) {
          if (st.kind == OpKind::kStore && st.loc == op.loc && st.value == op.value) {
            stored = true;
          }
        }
      }
      if (!stored) {
        return "litmus '" + t.name + "': awaited value " + std::to_string(op.value) +
               " of " + loc_name(op.loc) + " is never stored";
      }
    }
  }
  // A later kLoad would re-subscribe after kLoadOnce; that is fine. A
  // store-less test with a barrier is fine too. Nothing else to reject.
  return "";
}

std::string loc_name(std::uint32_t loc) {
  static constexpr char kNames[] = {'x', 'y', 'z', 'w', 'v', 'u'};
  if (loc < sizeof(kNames)) return std::string(1, kNames[loc]);
  return "L" + std::to_string(loc);
}

std::string load_label(const LitmusTest& t, std::size_t i) {
  std::size_t seen = 0;
  for (std::size_t ti = 0; ti < t.threads.size(); ++ti) {
    for (std::size_t oi = 0; oi < t.threads[ti].size(); ++oi) {
      const Op& op = t.threads[ti][oi];
      if ((op.kind == OpKind::kLoad || op.kind == OpKind::kLoadOnce) && op.observed) {
        if (seen == i) {
          std::ostringstream os;
          os << 't' << ti << ":Ld " << loc_name(op.loc) << " (op " << oi << ')';
          return os.str();
        }
        ++seen;
      }
    }
  }
  return "load#" + std::to_string(i);
}

std::string render_outcome(const LitmusTest& t, const Outcome& o) {
  std::ostringstream os;
  std::size_t i = 0;
  for (std::size_t ti = 0; ti < t.threads.size(); ++ti) {
    for (const Op& op : t.threads[ti]) {
      if ((op.kind == OpKind::kLoad || op.kind == OpKind::kLoadOnce) && op.observed) {
        if (i > 0) os << ' ';
        os << 't' << ti << ':' << loc_name(op.loc) << '=';
        os << (i < o.loads.size() ? std::to_string(o.loads[i]) : std::string("?"));
        ++i;
      }
    }
  }
  if (i == 0) os << "(no observed loads)";
  os << " |";
  for (std::uint32_t l = 0; l < t.n_locations; ++l) {
    os << ' ' << loc_name(l) << '=';
    os << (l < o.finals.size() ? std::to_string(o.finals[l]) : std::string("?"));
  }
  return os.str();
}

}  // namespace bcsim::model
