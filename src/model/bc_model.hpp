// Axiomatic Buffered Consistency checker: enumerates every outcome the
// paper's memory model allows for a litmus test (model/litmus.hpp).
//
// The BC rules (paper section 3) are encoded as an abstract operational
// machine whose reachable terminal states are exactly the executions the
// axioms admit:
//
//   * program order per thread, modulo write-buffer reordering — a store
//     enters the issuing thread's FIFO buffer and *performs* (reaches its
//     home, entering the location's coherence order) at any later point;
//     stores to the same location by one thread perform in program order
//     (one network channel), stores to different locations may drain out
//     of order;
//   * per-location coherence — each thread holds a monotonically advancing
//     view (an index into the location's coherence order); a load returns
//     any value no older than the view, no older than the thread's own
//     last performed store, and no newer than the newest performed store
//     (update deliveries take time, so views may lag arbitrarily);
//     a thread's own buffered store is returned directly (the dirty word
//     is in its cache before the write is globally performed);
//   * fence / CP-Synch flush edges — FLUSH-BUFFER (and the flush inside
//     unlock and barrier arrival) completes only once every prior store
//     by the thread is *globally* performed: all copies updated, so every
//     thread's view of those locations is floored at the store's position;
//   * NP-Synch — lock acquire is pure mutual exclusion and creates no
//     visibility edge (the paper's racy window);
//   * read-from — kLoad may return a stale-but-coherent value; kLoadOnce
//     (READ-GLOBAL) returns the home memory's current value at its
//     linearization point.
//
// Exhaustive interleaving of these transitions with state memoization
// yields the allowed set. Soundness of the cross-validation rests on the
// machine being *no weaker* than each rule: docs/TESTING.md ("Model
// conformance") walks the argument rule by rule.
#pragma once

#include <string>
#include <vector>

#include "model/litmus.hpp"

namespace bcsim::model {

/// Enumerates the allowed outcome set, sorted and deduplicated. Throws
/// std::invalid_argument when validate(t) rejects the test.
[[nodiscard]] std::vector<Outcome> enumerate_allowed(const LitmusTest& t);

/// Membership test against a sorted allowed set.
[[nodiscard]] bool outcome_allowed(const std::vector<Outcome>& allowed,
                                   const Outcome& got);

/// The index of the first observed load (thread-major) at which `got`
/// departs from every allowed outcome — the earliest point a soundness
/// violation is visible. Returns -1 when `got` is allowed, and
/// `got.loads.size()` when every load prefix is extendable but the final
/// memory state matches no outcome with those loads.
[[nodiscard]] int first_divergence(const std::vector<Outcome>& allowed,
                                   const Outcome& got);

/// Golden-table rendering of a test's allowed set: a header naming the
/// test and its threads, then one canonical line per outcome. Pinned in
/// tests/model_allowed_golden.txt; regenerate with
/// `bcsim model --print-allowed`.
[[nodiscard]] std::string render_allowed(const LitmusTest& t,
                                         const std::vector<Outcome>& allowed);

}  // namespace bcsim::model
