#include "model/bc_model.hpp"

#include <algorithm>
#include <cstring>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace bcsim::model {

namespace {

/// One buffered (issued, not yet performed) store.
struct BufEntry {
  std::uint32_t loc;
  Word value;
};

/// The abstract BC machine's state. Everything that can influence a
/// future transition or the recorded outcome is here — the memo set keys
/// on a byte encoding of the whole struct.
struct State {
  std::vector<std::uint32_t> pc;                 // per thread
  std::vector<std::uint8_t> arrived;             // per thread: at the barrier
  std::vector<int> lock_owner;                   // per lock, -1 = free
  std::vector<std::vector<BufEntry>> buf;        // per thread, FIFO
  std::vector<std::vector<Word>> co;             // per location, perform order
  std::vector<std::vector<std::uint32_t>> view;  // [thread][loc]: index into co
  std::vector<std::vector<std::uint32_t>> own;   // [thread][loc]: own last performed pos
  std::vector<std::vector<Word>> loads;          // observed loads per thread

  [[nodiscard]] std::string encode() const {
    std::string out;
    auto u32 = [&out](std::uint32_t v) {
      char b[4];
      std::memcpy(b, &v, 4);
      out.append(b, 4);
    };
    auto word = [&out](Word v) {
      char b[sizeof(Word)];
      std::memcpy(b, &v, sizeof(Word));
      out.append(b, sizeof(Word));
    };
    for (const auto v : pc) u32(v);
    for (const auto v : arrived) out.push_back(static_cast<char>(v));
    for (const auto v : lock_owner) u32(static_cast<std::uint32_t>(v + 1));
    for (const auto& b : buf) {
      u32(static_cast<std::uint32_t>(b.size()));
      for (const auto& e : b) {
        u32(e.loc);
        word(e.value);
      }
    }
    for (const auto& c : co) {
      u32(static_cast<std::uint32_t>(c.size()));
      for (const auto v : c) word(v);
    }
    for (const auto& vs : view) {
      for (const auto v : vs) u32(v);
    }
    for (const auto& vs : own) {
      for (const auto v : vs) u32(v);
    }
    for (const auto& ls : loads) {
      u32(static_cast<std::uint32_t>(ls.size()));
      for (const auto v : ls) word(v);
    }
    return out;
  }
};

/// Exhaustive explorer over the abstract machine.
class Enumerator {
 public:
  explicit Enumerator(const LitmusTest& t) : t_(t), n_(t.threads.size()) {}

  std::vector<Outcome> run() {
    State init;
    init.pc.assign(n_, 0);
    init.arrived.assign(n_, 0);
    init.lock_owner.assign(t_.n_locks, -1);
    init.buf.resize(n_);
    init.co.resize(t_.n_locations);
    init.view.assign(n_, std::vector<std::uint32_t>(t_.n_locations, 0));
    init.own.assign(n_, std::vector<std::uint32_t>(t_.n_locations, 0));
    init.loads.resize(n_);
    seen_.insert(init.encode());
    explore(init);
    return {outcomes_.begin(), outcomes_.end()};
  }

 private:
  [[nodiscard]] bool thread_done(const State& s, std::size_t t) const {
    return s.pc[t] >= t_.threads[t].size();
  }

  [[nodiscard]] bool terminal(const State& s) const {
    for (std::size_t t = 0; t < n_; ++t) {
      if (!thread_done(s, t) || !s.buf[t].empty()) return false;
    }
    return true;
  }

  /// Globally-performed floor: after thread t's flush, every thread's view
  /// of each location t has stored to is at least t's last performed store
  /// (all copies updated — the CP-Synch guarantee).
  void apply_flush_floor(State& s, std::size_t t) const {
    for (std::uint32_t x = 0; x < t_.n_locations; ++x) {
      const std::uint32_t p = s.own[t][x];
      if (p == 0) continue;
      for (std::size_t u = 0; u < n_; ++u) {
        s.view[u][x] = std::max(s.view[u][x], p);
      }
    }
  }

  /// The issuing thread's oldest buffered store to `loc` reaches its home
  /// memory: it enters the coherence order, and the thread's own view
  /// advances to it (the dirty word was local all along).
  static void perform(State& s, std::size_t t, std::size_t entry) {
    const BufEntry e = s.buf[t][entry];
    s.buf[t].erase(s.buf[t].begin() +
                   static_cast<std::ptrdiff_t>(entry));
    s.co[e.loc].push_back(e.value);
    const auto pos = static_cast<std::uint32_t>(s.co[e.loc].size());
    s.view[t][e.loc] = std::max(s.view[t][e.loc], pos);
    s.own[t][e.loc] = pos;
  }

  void visit(State&& next) {
    if (seen_.insert(next.encode()).second) {
      if (seen_.size() > kStateCap) {
        throw std::runtime_error("enumerate_allowed: litmus test '" + t_.name +
                                 "' exceeds the state cap — shrink the test");
      }
      explore(next);
    }
  }

  void record(const State& s) {
    Outcome o;
    for (std::size_t t = 0; t < n_; ++t) {
      o.loads.insert(o.loads.end(), s.loads[t].begin(), s.loads[t].end());
    }
    o.finals.reserve(t_.n_locations);
    for (std::uint32_t x = 0; x < t_.n_locations; ++x) {
      o.finals.push_back(s.co[x].empty() ? 0 : s.co[x].back());
    }
    outcomes_.insert(std::move(o));
  }

  void explore(const State& s) {  // NOLINT(misc-no-recursion)
    if (terminal(s)) {
      record(s);
      return;
    }
    for (std::size_t t = 0; t < n_; ++t) {
      // Drain transitions: any location's oldest buffered store may
      // perform now. Per-thread-per-location FIFO (one network channel to
      // one home) but cross-location drains reorder freely.
      std::vector<std::uint8_t> drained(t_.n_locations, 0);
      for (std::size_t i = 0; i < s.buf[t].size(); ++i) {
        const std::uint32_t x = s.buf[t][i].loc;
        if (drained[x] != 0) continue;  // only the oldest per location
        drained[x] = 1;
        State next = s;
        perform(next, t, i);
        visit(std::move(next));
      }
      if (thread_done(s, t) || s.arrived[t] != 0) continue;
      step_op(s, t);
    }
  }

  void step_op(const State& s, std::size_t t) {  // NOLINT(misc-no-recursion)
    const Op& op = t_.threads[t][s.pc[t]];
    switch (op.kind) {
      case OpKind::kStore: {
        State next = s;
        next.buf[t].push_back({op.loc, op.value});
        ++next.pc[t];
        visit(std::move(next));
        break;
      }
      case OpKind::kLoad: {
        // An own buffered store short-circuits: the newest one is what the
        // local (dirty) copy holds.
        const BufEntry* mine = nullptr;
        for (const auto& e : s.buf[t]) {
          if (e.loc == op.loc) mine = &e;
        }
        if (mine != nullptr) {
          State next = s;
          if (op.observed) next.loads[t].push_back(mine->value);
          ++next.pc[t];
          visit(std::move(next));
          break;
        }
        // Otherwise any coherent value from the (monotone) view onward —
        // the update for a newer store may or may not have arrived yet.
        const auto newest = static_cast<std::uint32_t>(s.co[op.loc].size());
        for (std::uint32_t e = s.view[t][op.loc]; e <= newest; ++e) {
          State next = s;
          next.view[t][op.loc] = e;
          if (op.observed) {
            next.loads[t].push_back(e == 0 ? 0 : s.co[op.loc][e - 1]);
          }
          ++next.pc[t];
          visit(std::move(next));
        }
        break;
      }
      case OpKind::kLoadOnce: {
        // READ-GLOBAL: the home's value at the linearization point, i.e.
        // the newest performed store right now. (validate() forbids a
        // thread from kLoadOnce-ing a location it stores to.)
        State next = s;
        const auto newest = static_cast<std::uint32_t>(s.co[op.loc].size());
        next.view[t][op.loc] = std::max(next.view[t][op.loc], newest);
        if (op.observed) {
          next.loads[t].push_back(newest == 0 ? 0 : s.co[op.loc][newest - 1]);
        }
        ++next.pc[t];
        visit(std::move(next));
        break;
      }
      case OpKind::kFence: {
        if (!s.buf[t].empty()) break;  // drains first; transition disabled
        State next = s;
        apply_flush_floor(next, t);
        ++next.pc[t];
        visit(std::move(next));
        break;
      }
      case OpKind::kLock: {
        if (s.lock_owner[op.loc] != -1) break;  // held; NP-Synch = pure mutex
        State next = s;
        next.lock_owner[op.loc] = static_cast<int>(t);
        ++next.pc[t];
        visit(std::move(next));
        break;
      }
      case OpKind::kUnlock: {
        // CP-Synch: the release flushes first, so it is enabled only once
        // the buffer has drained, and it floors views like a fence.
        if (s.lock_owner[op.loc] != static_cast<int>(t) || !s.buf[t].empty()) break;
        State next = s;
        apply_flush_floor(next, t);
        next.lock_owner[op.loc] = -1;
        ++next.pc[t];
        visit(std::move(next));
        break;
      }
      case OpKind::kBarrier: {
        // Arrival flushes (CP-Synch); the last arriver releases everyone.
        if (!s.buf[t].empty()) break;
        State next = s;
        apply_flush_floor(next, t);
        next.arrived[t] = 1;
        bool all = true;
        for (std::size_t u = 0; u < n_; ++u) {
          if (next.arrived[u] == 0) all = false;
        }
        if (all) {
          for (std::size_t u = 0; u < n_; ++u) {
            next.arrived[u] = 0;
            ++next.pc[u];  // validate(): every thread is at a kBarrier
          }
        }
        visit(std::move(next));
        break;
      }
      case OpKind::kAwait: {
        // The spin completes at any coherent view where the location shows
        // the awaited value (validate() forbids awaiting an own store).
        // When no reachable view does yet, the transition is disabled —
        // the thread simply keeps spinning until a perform enables it.
        const auto newest = static_cast<std::uint32_t>(s.co[op.loc].size());
        for (std::uint32_t e = s.view[t][op.loc]; e <= newest; ++e) {
          const Word v = e == 0 ? 0 : s.co[op.loc][e - 1];
          if (v != op.value) continue;
          State next = s;
          next.view[t][op.loc] = e;
          ++next.pc[t];
          visit(std::move(next));
        }
        break;
      }
      case OpKind::kUnsubscribe:
      case OpKind::kCompute: {
        // Model no-ops: RESET-UPDATE only changes *when* updates stop
        // arriving (the view may simply stop advancing until the next
        // subscribe, which the stale-view rule already covers), and
        // compute only burns machine cycles.
        State next = s;
        ++next.pc[t];
        visit(std::move(next));
        break;
      }
    }
  }

  static constexpr std::size_t kStateCap = 4'000'000;

  const LitmusTest& t_;
  std::size_t n_;
  std::unordered_set<std::string> seen_;
  std::set<Outcome> outcomes_;
};

std::string op_to_string(const Op& op) {
  switch (op.kind) {
    case OpKind::kStore:
      return "St " + loc_name(op.loc) + "=" + std::to_string(op.value);
    case OpKind::kLoad:
      return std::string(op.observed ? "Ld " : "Ld* ") + loc_name(op.loc);
    case OpKind::kLoadOnce:
      return std::string(op.observed ? "LdOnce " : "LdOnce* ") + loc_name(op.loc);
    case OpKind::kFence: return "Fence";
    case OpKind::kLock: return std::string("Lock ") + static_cast<char>('a' + op.loc);
    case OpKind::kUnlock:
      return std::string("Unlock ") + static_cast<char>('a' + op.loc);
    case OpKind::kBarrier: return "Barrier";
    case OpKind::kUnsubscribe: return "Unsub " + loc_name(op.loc);
    case OpKind::kCompute: return "Compute " + std::to_string(op.loc);
    case OpKind::kAwait:
      return "Await " + loc_name(op.loc) + "==" + std::to_string(op.value);
  }
  return "?";
}

}  // namespace

std::vector<Outcome> enumerate_allowed(const LitmusTest& t) {
  const std::string err = validate(t);
  if (!err.empty()) throw std::invalid_argument(err);
  return Enumerator(t).run();
}

bool outcome_allowed(const std::vector<Outcome>& allowed, const Outcome& got) {
  return std::binary_search(allowed.begin(), allowed.end(), got);
}

int first_divergence(const std::vector<Outcome>& allowed, const Outcome& got) {
  if (outcome_allowed(allowed, got)) return -1;
  for (std::size_t i = 0; i < got.loads.size(); ++i) {
    bool prefix_ok = false;
    for (const Outcome& a : allowed) {
      if (a.loads.size() < i + 1) continue;
      if (std::equal(got.loads.begin(), got.loads.begin() + static_cast<long>(i) + 1,
                     a.loads.begin())) {
        prefix_ok = true;
        break;
      }
    }
    if (!prefix_ok) return static_cast<int>(i);
  }
  return static_cast<int>(got.loads.size());  // loads fine; finals diverge
}

std::string render_allowed(const LitmusTest& t, const std::vector<Outcome>& allowed) {
  std::ostringstream os;
  os << "litmus " << t.name << ": " << t.description << '\n';
  for (std::size_t ti = 0; ti < t.threads.size(); ++ti) {
    os << "  t" << ti << ':';
    for (const Op& op : t.threads[ti]) os << ' ' << op_to_string(op) << ';';
    os << '\n';
  }
  os << "  allowed " << allowed.size() << ":\n";
  for (const Outcome& o : allowed) {
    os << "    " << render_outcome(t, o) << '\n';
  }
  return os.str();
}

}  // namespace bcsim::model
