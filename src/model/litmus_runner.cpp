#include "model/litmus_runner.hpp"

#include <exception>
#include <memory>
#include <stdexcept>

#include "core/machine.hpp"
#include "core/sync/barrier.hpp"
#include "core/sync/mutex.hpp"
#include "workload/access.hpp"

namespace bcsim::model {

namespace {

/// Address layout and sync objects for one run.
struct Layout {
  std::vector<Addr> loc_addr;
  std::vector<std::unique_ptr<sync::Mutex>> locks;
  std::unique_ptr<sync::Barrier> barrier;        ///< the test's kBarrier
  std::unique_ptr<sync::Barrier> start_barrier;  ///< warmup/main rendezvous

  Layout(const LitmusTest& t, core::Machine& m) {
    auto alloc = m.make_allocator();
    const auto& cfg = m.config();
    loc_addr.reserve(t.n_locations);
    for (std::uint32_t l = 0; l < t.n_locations; ++l) {
      loc_addr.push_back(alloc.alloc_blocks(1));  // one block each: own home
    }
    locks.reserve(t.n_locks);
    for (std::uint32_t l = 0; l < t.n_locks; ++l) {
      locks.push_back(sync::make_mutex(cfg.lock_impl, alloc, cfg.n_nodes));
    }
    const auto participants = static_cast<std::uint32_t>(t.threads.size());
    bool any_barrier = false;
    for (const auto& th : t.threads) {
      for (const Op& op : th) {
        if (op.kind == OpKind::kBarrier) any_barrier = true;
      }
    }
    if (any_barrier) {
      barrier = sync::make_barrier(cfg.barrier_impl, alloc, participants);
    }
    start_barrier = sync::make_barrier(cfg.barrier_impl, alloc, participants);
  }
};

/// Locations thread `ti` kLoads, in order of first appearance — its
/// warmup subscription list.
std::vector<std::uint32_t> subscribe_list(const LitmusTest& t, std::size_t ti) {
  std::vector<std::uint32_t> locs;
  for (const Op& op : t.threads[ti]) {
    if (op.kind != OpKind::kLoad && op.kind != OpKind::kAwait) continue;
    bool seen = false;
    for (const std::uint32_t l : locs) {
      if (l == op.loc) seen = true;
    }
    if (!seen) locs.push_back(op.loc);
  }
  return locs;
}

sim::Task interpret_thread(core::Processor& p, const LitmusTest& t, std::uint32_t ti,
                           Layout& lay, std::vector<std::vector<LitmusLoad>>& obs) {
  // Warmup: deterministic subscription order (thread index staggers far
  // beyond any network latency), then rendezvous before the first store.
  co_await p.compute(1 + static_cast<Tick>(ti) * 256);
  const std::vector<std::uint32_t> subs = subscribe_list(t, ti);
  for (const std::uint32_t loc : subs) {
    const Word warm = co_await workload::shared_read(p, lay.loc_addr[loc]);
    (void)warm;  // initial value; the model never sees warmup reads
  }
  co_await lay.start_barrier->wait(p);

  // Model-invisible timing jitter, derived from the schedule seed: the
  // seed sweep then explores coarse race alignments (who reaches memory
  // first), not just same-tick tie-breaks — the lever behind statistical
  // completeness of the outcome coverage.
  std::uint64_t h = p.config().schedule_seed + 0x9e3779b97f4a7c15ULL * (ti + 1);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  co_await p.compute(1 + static_cast<Tick>(h % 241));

  const auto& code = t.threads[ti];
  for (std::uint32_t i = 0; i < code.size(); ++i) {
    const Op& op = code[i];
    switch (op.kind) {
      case OpKind::kStore:
        co_await workload::shared_write(p, lay.loc_addr[op.loc], op.value);
        break;
      case OpKind::kLoad: {
        const Word v = co_await workload::shared_read(p, lay.loc_addr[op.loc]);
        if (op.observed) obs[ti].push_back({ti, i, v, p.simulator().now()});
        break;
      }
      case OpKind::kLoadOnce: {
        const Word v = co_await workload::shared_read_once(p, lay.loc_addr[op.loc]);
        if (op.observed) obs[ti].push_back({ti, i, v, p.simulator().now()});
        break;
      }
      case OpKind::kFence:
        co_await p.flush_buffer();
        break;
      case OpKind::kLock:
        co_await lay.locks[op.loc]->acquire(p);
        break;
      case OpKind::kUnlock:
        co_await lay.locks[op.loc]->release(p);
        break;
      case OpKind::kBarrier:
        co_await lay.barrier->wait(p);
        break;
      case OpKind::kUnsubscribe:
        if (p.config().data_protocol == core::DataProtocol::kReadUpdate) {
          const Word gone = co_await p.reset_update(lay.loc_addr[op.loc]);
          (void)gone;
        }
        break;
      case OpKind::kCompute:
        co_await p.compute(op.loc);
        break;
      case OpKind::kAwait: {
        const Addr a = lay.loc_addr[op.loc];
        for (;;) {
          const Word v = co_await workload::shared_read(p, a);
          if (v == op.value) break;
          co_await p.wait_word_change(a, v);
        }
        break;
      }
    }
  }
}

}  // namespace

LitmusRunResult run_litmus(const LitmusTest& t, const core::MachineConfig& cfg,
                           Tick budget, std::ostream* trace_tail) {
  const std::string err = validate(t);
  if (!err.empty()) throw std::invalid_argument(err);
  if (cfg.n_nodes < t.threads.size()) {
    throw std::invalid_argument("run_litmus: litmus '" + t.name + "' needs " +
                                std::to_string(t.threads.size()) +
                                " nodes, config has " + std::to_string(cfg.n_nodes));
  }

  LitmusRunResult r;
  std::vector<std::vector<LitmusLoad>> obs(t.threads.size());

  core::Machine m(cfg);
  Layout lay(t, m);
  for (std::uint32_t ti = 0; ti < t.threads.size(); ++ti) {
    m.spawn_on(ti, interpret_thread(m.processor(ti), t, ti, lay, obs));
  }
  try {
    r.completion = m.run(budget);
    r.completed = m.all_done() && m.quiescent();
    if (!r.completed) r.error = "threads stuck or protocol not quiescent";
  } catch (const std::exception& ex) {
    r.completion = m.simulator().now();
    r.error = ex.what();
    if (trace_tail != nullptr && cfg.trace) m.dump_trace(*trace_tail);
    return r;
  }
  if (trace_tail != nullptr && cfg.trace) m.dump_trace(*trace_tail);

  for (const auto& per_thread : obs) {
    for (const LitmusLoad& l : per_thread) {
      r.outcome.loads.push_back(l.value);
      r.loads.push_back(l);
    }
  }
  r.outcome.finals.reserve(t.n_locations);
  for (std::uint32_t l = 0; l < t.n_locations; ++l) {
    r.outcome.finals.push_back(m.peek_coherent(lay.loc_addr[l]));
  }
  return r;
}

}  // namespace bcsim::model
