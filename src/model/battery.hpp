// The standard litmus battery for `bcsim model` and tests/test_model.cpp.
//
// Ports the scenarios of tests/test_litmus.cpp (MP, SB, IRIW,
// RESET-UPDATE) into the litmus IR and adds the classic LB/S/R shapes
// plus lock- and barrier-synchronized variants. Bystander threads issue
// unobserved subscribing loads to lengthen a location's update-delivery
// chain — the asymmetry that makes the weak outcomes reachable on the
// real machine (see run_mp in tests/test_litmus.cpp).
#pragma once

#include <vector>

#include "model/litmus.hpp"

namespace bcsim::model {

/// The full battery, in a stable order (the golden table follows it).
[[nodiscard]] std::vector<LitmusTest> litmus_battery();

/// The battery entry named `name`, or nullptr.
[[nodiscard]] const LitmusTest* find_litmus(const std::vector<LitmusTest>& battery,
                                            const std::string& name);

}  // namespace bcsim::model
