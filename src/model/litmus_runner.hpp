// Lowers a litmus test (model/litmus.hpp) onto a real core::Machine —
// the operational half of the model-conformance harness.
//
// Thread t runs on processor t. Every location gets its own block (so
// distinct homes and genuinely unordered completions); locks and barriers
// come from the sync library, so each flavor executes the test through
// its native primitives. Before the main ops a warmup phase runs: each
// thread, staggered by its index so the order is deterministic, issues a
// subscribing read for every location it kLoads (under read-update this
// builds the update-delivery chains — thread order is subscription order,
// and the earliest subscriber ends up at the chain's tail, last to be
// delivered); then all threads rendezvous at a start barrier so no store
// can race the subscriptions. The warmup is invisible to the model: it
// reads only the initial zeros and observes nothing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "model/litmus.hpp"
#include "sim/types.hpp"

namespace bcsim::model {

/// One observed load as the machine performed it.
struct LitmusLoad {
  std::uint32_t thread = 0;
  std::uint32_t op_index = 0;
  Word value = 0;
  Tick tick = 0;  ///< simulated cycle at which the load completed
};

struct LitmusRunResult {
  bool completed = false;  ///< all threads done and the machine quiescent
  Tick completion = 0;
  std::string error;  ///< exception text (budget exhausted, invariant violation)
  Outcome outcome;    ///< observed loads + final locations (valid when completed)
  std::vector<LitmusLoad> loads;  ///< thread-major, with completion ticks
};

/// Runs `t` on a machine built from `cfg` (cfg.n_nodes must be >= the
/// thread count). Simulation failures are reported in `error`, never
/// thrown, so the driver can treat "machine stuck" as a divergence with
/// context. When `trace_tail` is non-null and cfg.trace is on, the newest
/// trace records are written there after the run (the replay path).
[[nodiscard]] LitmusRunResult run_litmus(const LitmusTest& t,
                                         const core::MachineConfig& cfg,
                                         Tick budget = 100'000'000,
                                         std::ostream* trace_tail = nullptr);

}  // namespace bcsim::model
