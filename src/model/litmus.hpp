// Litmus-test IR for the axiomatic buffered-consistency checker.
//
// A litmus test is a handful of threads, each a straight-line sequence of
// operations over a few shared locations (plus locks and barriers). The
// same IR feeds two interpreters:
//
//   * model/bc_model.hpp enumerates every outcome the paper's Buffered
//     Consistency model allows (the axiomatic side), and
//   * model/litmus_runner.hpp lowers the test onto a real core::Machine
//     through the protocol-agnostic access helpers (the operational side),
//
// so `bcsim model` can assert that everything the machine does is allowed
// (soundness) and report how much of the allowed set the schedule sweep
// reaches (statistical completeness). docs/TESTING.md ("Model
// conformance") documents the format and workflow.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace bcsim::model {

enum class OpKind : std::uint8_t {
  kStore,        ///< shared store (WRITE-GLOBAL under read-update; buffered under BC)
  kLoad,         ///< shared load that subscribes (READ-UPDATE under read-update)
  kLoadOnce,     ///< one-shot shared load (READ-GLOBAL: always the home's value)
  kFence,        ///< FLUSH-BUFFER: prior stores globally performed before it completes
  kLock,         ///< mutex acquire (NP-Synch: does not wait for pending writes)
  kUnlock,       ///< mutex release (CP-Synch: flushes before the release is visible)
  kBarrier,      ///< global barrier (CP-Synch: flushes before arrival)
  kUnsubscribe,  ///< RESET-UPDATE (no-op on WBI and in the model)
  kCompute,      ///< local delay, `loc` cycles (model no-op; machine timing jitter)
  kAwait,        ///< spin (subscribing) until the location reads `value`
};

struct Op {
  OpKind kind = OpKind::kCompute;
  /// Location index for kStore/kLoad/kLoadOnce/kUnsubscribe, lock index
  /// for kLock/kUnlock, delay cycles for kCompute; unused otherwise.
  std::uint32_t loc = 0;
  Word value = 0;        ///< kStore: stored value; kAwait: value spun for
  bool observed = true;  ///< kLoad/kLoadOnce: record the value in the outcome
};

// Terse constructors so a litmus test reads like its paper notation.
inline Op St(std::uint32_t loc, Word v) { return {OpKind::kStore, loc, v, false}; }
inline Op Ld(std::uint32_t loc) { return {OpKind::kLoad, loc, 0, true}; }
/// Unobserved load: subscribes (lengthening the location's delivery chain)
/// without contributing to the outcome — bystander threads use it.
inline Op LdQuiet(std::uint32_t loc) { return {OpKind::kLoad, loc, 0, false}; }
inline Op LdOnce(std::uint32_t loc) { return {OpKind::kLoadOnce, loc, 0, true}; }
inline Op Fence() { return {OpKind::kFence, 0, 0, false}; }
inline Op Lock(std::uint32_t lock) { return {OpKind::kLock, lock, 0, false}; }
inline Op Unlock(std::uint32_t lock) { return {OpKind::kUnlock, lock, 0, false}; }
inline Op Bar() { return {OpKind::kBarrier, 0, 0, false}; }
inline Op Unsub(std::uint32_t loc) { return {OpKind::kUnsubscribe, loc, 0, false}; }
inline Op Compute(std::uint32_t cycles) { return {OpKind::kCompute, cycles, 0, false}; }
/// Spin until `loc` reads `v` — how a litmus reader waits for a flag. Not
/// itself observed; it pins the thread's view to a moment the value was
/// visible, which is what makes the loads after it interesting.
inline Op Await(std::uint32_t loc, Word v) { return {OpKind::kAwait, loc, v, false}; }

struct LitmusTest {
  std::string name;         ///< short id (`bcsim model --tests <name>`)
  std::string description;  ///< one line for reports and the golden table
  std::uint32_t n_locations = 0;
  std::uint32_t n_locks = 0;
  std::vector<std::vector<Op>> threads;  ///< thread t runs on processor t
};

/// One observable result of a litmus execution: the values every observed
/// load returned (thread-major, program order within a thread) plus the
/// final memory value of every location.
struct Outcome {
  std::vector<Word> loads;
  std::vector<Word> finals;
  auto operator<=>(const Outcome&) const = default;
};

/// Well-formedness check; returns "" when the test is usable and a
/// diagnostic otherwise. Enforced rules: indices in range; lock/unlock
/// properly paired per thread (no releasing a lock the thread does not
/// hold, none held at thread exit); every thread has the same number of
/// kBarrier ops (barriers are global episodes); a thread never kLoadOnce's
/// or kAwaits a location it also stores to (READ-GLOBAL bypasses the
/// write buffer, and awaiting an own store is vacuous); every kAwait'ed
/// value is stored by some thread (otherwise the spin cannot terminate).
[[nodiscard]] std::string validate(const LitmusTest& t);

/// Human name for a location index: "x", "y", "z", "w", "v", "u", then "L<n>".
[[nodiscard]] std::string loc_name(std::uint32_t loc);

/// Renders one outcome against the test's load labels, e.g.
/// "t1:Ld y=1 t1:Ld x=0 | x=42 y=1".
[[nodiscard]] std::string render_outcome(const LitmusTest& t, const Outcome& o);

/// Label of the i-th observed load (thread-major): "t1:Ld y (op 2)".
[[nodiscard]] std::string load_label(const LitmusTest& t, std::size_t i);

}  // namespace bcsim::model
