// Property-style randomized sweeps: invariants that must hold across many
// random schedules, seeds, and machine shapes. These are the tests that
// shake out protocol races.
#include <gtest/gtest.h>

#include <vector>

#include "test_util.hpp"

namespace bcsim {
namespace {

using core::Machine;
using core::MachineConfig;
using core::Processor;
using test::paper_config;
using test::run_all;
using test::small_config;

// ---------------------------------------------------------------------------
// Property: under the CBL lock, a lock-protected counter never loses
// updates, for random hold times, random inter-arrival gaps, every seed.
// ---------------------------------------------------------------------------
class CblLockProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CblLockProperty, NoLostUpdatesAnySchedule) {
  auto cfg = paper_config(8);
  cfg.network = core::NetworkKind::kOmega;
  cfg.seed = GetParam();
  Machine m(cfg);
  const Addr lock = 16;
  constexpr int kIters = 10;
  auto prog = [&](Processor& p) -> sim::Task {
    auto& rng = p.rng();
    for (int k = 0; k < kIters; ++k) {
      co_await p.compute(rng.next_below(60));
      if (rng.chance(0.3)) {
        // Reader: verify monotonicity, do not modify.
        co_await p.read_lock(lock);
        co_await p.read(lock + 1);
        co_await p.compute(rng.next_below(20));
        co_await p.unlock(lock);
      } else {
        co_await p.write_lock(lock);
        const Word v = co_await p.read(lock + 1);
        co_await p.compute(rng.next_below(20));
        co_await p.write(lock + 1, v + 1);
        co_await p.write(lock + 2, p.id());
        co_await p.unlock(lock);
      }
    }
  };
  for (NodeId i = 0; i < 8; ++i) m.spawn(prog(m.processor(i)));
  run_all(m);
  // The counter equals the number of writer critical sections; recompute
  // that count deterministically from the same per-processor RNG streams.
  sim::Rng seeder(cfg.seed);
  std::uint64_t writers = 0;
  for (NodeId i = 0; i < 8; ++i) {
    sim::Rng r(seeder.next_u64());
    for (int k = 0; k < kIters; ++k) {
      r.next_below(60);
      if (r.chance(0.3)) {
        r.next_below(20);
      } else {
        r.next_below(20);
        ++writers;
      }
    }
  }
  EXPECT_EQ(m.peek_memory(16 + 1), writers) << "seed " << cfg.seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CblLockProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// ---------------------------------------------------------------------------
// Property: WBI sequential consistency — per-location write serialization.
// Writers tag a location with unique values; every reader's observation
// sequence per location must be consistent with SOME total order (values
// only move forward through the global order established at the
// directory). We check a weaker but sharp invariant: the final value is
// the last directory-ordered write and no torn values appear.
// ---------------------------------------------------------------------------
struct WbiStressParam {
  std::uint64_t seed;
  std::uint32_t dir_limit;  // 0 = full map; >0 = Dir_k-B broadcast path
};

class WbiStressProperty : public ::testing::TestWithParam<WbiStressParam> {};

TEST_P(WbiStressProperty, OnlyWrittenValuesEverObserved) {
  auto cfg = small_config(6);
  cfg.network = core::NetworkKind::kOmega;
  cfg.cache_blocks = 16;  // heavy eviction pressure
  cfg.cache_assoc = 2;
  cfg.seed = GetParam().seed;
  cfg.dir_pointer_limit = GetParam().dir_limit;
  Machine m(cfg);
  constexpr Addr kWords = 24;
  std::vector<Word> observed;
  bool bad_value = false;
  auto prog = [&](Processor& p) -> sim::Task {
    auto& rng = p.rng();
    for (int k = 0; k < 150; ++k) {
      const Addr a = rng.next_below(kWords);
      if (rng.chance(0.6)) {
        const Word v = co_await p.read(a);
        // Every observed value must be something some writer wrote there
        // (value encodes the address) or the initial zero.
        if (v != 0 && (v >> 8) != a) bad_value = true;
      } else {
        co_await p.write(a, (a << 8) | (p.id() + 1));
      }
    }
  };
  for (NodeId i = 0; i < 6; ++i) m.spawn(prog(m.processor(i)));
  run_all(m);
  EXPECT_FALSE(bad_value) << "torn or misrouted value observed, seed " << cfg.seed
                          << " dir_limit " << cfg.dir_pointer_limit;
  for (Addr a = 0; a < kWords; ++a) {
    const Word v = m.peek_memory(a);
    if (v != 0) {
      EXPECT_EQ(v >> 8, a) << "memory corrupted at " << a;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WbiStressProperty,
                         ::testing::Values(WbiStressParam{1, 0}, WbiStressParam{2, 0},
                                           WbiStressParam{3, 0}, WbiStressParam{4, 0},
                                           WbiStressParam{1, 1}, WbiStressParam{2, 1},
                                           WbiStressParam{3, 2}, WbiStressParam{4, 2},
                                           WbiStressParam{5, 4}, WbiStressParam{6, 4}));

// ---------------------------------------------------------------------------
// Property: read-update delivery — after a quiesced run, every subscriber's
// cached copy of a block equals memory (no stranded stale subscriber).
// ---------------------------------------------------------------------------
class RuConvergenceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RuConvergenceProperty, SubscribersConvergeToMemory) {
  auto cfg = paper_config(8);
  cfg.network = core::NetworkKind::kOmega;
  cfg.seed = GetParam();
  Machine m(cfg);
  constexpr BlockId kBlocks = 4;
  auto prog = [&](Processor& p) -> sim::Task {
    auto& rng = p.rng();
    for (int k = 0; k < 60; ++k) {
      const BlockId b = rng.next_below(kBlocks);
      const Addr a = b * 4 + rng.next_below(4);
      const double dice = rng.next_double();
      if (dice < 0.5) {
        co_await p.read_update(a);
      } else if (dice < 0.9) {
        co_await p.write_global(a, (static_cast<Word>(p.id()) << 32) | k);
      } else {
        co_await p.reset_update(a);
      }
      co_await p.compute(rng.next_below(10));
    }
    co_await p.flush_buffer();
  };
  for (NodeId i = 0; i < 8; ++i) m.spawn(prog(m.processor(i)));
  run_all(m);
  for (BlockId b = 0; b < kBlocks; ++b) {
    for (NodeId i = 0; i < 8; ++i) {
      const auto* line = m.cache_controller(i).data_cache().find(b);
      if (line == nullptr || !line->update_bit) continue;
      for (std::uint32_t w = 0; w < 4; ++w) {
        if (line->dirty_mask & (1u << w)) continue;  // local write wins
        EXPECT_EQ(line->data[w], m.peek_memory(b * 4 + w))
            << "stale subscriber " << i << " block " << b << " word " << w << " seed "
            << cfg.seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuConvergenceProperty, ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Property: machine shape sweep — the paper machine quiesces and keeps lock
// correctness across block sizes, associativities, and networks.
// ---------------------------------------------------------------------------
struct ShapeParam {
  std::uint32_t n;
  std::uint32_t block_words;
  std::uint32_t assoc;
  core::NetworkKind net;
};

class ShapeSweep : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(ShapeSweep, LockCounterExactUnderAnyShape) {
  const auto& sp = GetParam();
  auto cfg = paper_config(sp.n);
  cfg.block_words = sp.block_words;
  cfg.cache_blocks = 64 * sp.assoc;
  cfg.cache_assoc = sp.assoc;
  cfg.network = sp.net;
  Machine m(cfg);
  const Addr lock = 0;
  constexpr int kIters = 8;
  auto prog = [&](Processor& p) -> sim::Task {
    for (int k = 0; k < kIters; ++k) {
      co_await p.write_lock(lock);
      const Word v = co_await p.read(lock);
      co_await p.write(lock, v + 1);
      co_await p.unlock(lock);
    }
  };
  for (NodeId i = 0; i < sp.n; ++i) m.spawn(prog(m.processor(i)));
  run_all(m);
  EXPECT_EQ(m.peek_memory(lock), static_cast<Word>(sp.n) * kIters);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ShapeSweep,
    ::testing::Values(ShapeParam{2, 1, 1, core::NetworkKind::kIdeal},
                      ShapeParam{4, 2, 2, core::NetworkKind::kOmega},
                      ShapeParam{8, 4, 4, core::NetworkKind::kOmega},
                      ShapeParam{16, 8, 2, core::NetworkKind::kOmega},
                      ShapeParam{8, 16, 1, core::NetworkKind::kCrossbar},
                      ShapeParam{32, 4, 4, core::NetworkKind::kOmega},
                      ShapeParam{3, 4, 4, core::NetworkKind::kOmega},
                      ShapeParam{7, 2, 2, core::NetworkKind::kCrossbar}));

}  // namespace
}  // namespace bcsim
