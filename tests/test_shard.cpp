// Sharded-kernel tests (DESIGN.md "Sharded PDES kernel"):
//
//  - the shared host-thread budget that sweeps and shard gangs divide,
//  - the EventQueue empty-precondition assertions,
//  - cross-shard channel FIFO under a 64-schedule-seed sweep (the hardware
//    point-to-point ordering guarantee the protocols are built on must
//    survive the window/replay machinery at every tie-break seed),
//  - seed-0 digest identity: `n_shards = 4` must be bit-identical to the
//    serial kernel across machine flavors and networks,
//  - nonzero-seed sharded runs are deterministic (thread timing never
//    leaks into results),
//  - trace export is byte-stable across shard counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <sstream>
#include <string>
#include <vector>

#include "core/machine.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "test_util.hpp"

using namespace bcsim;
using core::Machine;
using core::Processor;

// ---------------------------------------------------------------------------
// Thread budget (must run first: the env var is parsed once per process).
// ---------------------------------------------------------------------------

TEST(ThreadBudget, SweepWorkersAndShardGangsShareTheBudget) {
  ::setenv("BCSIM_THREAD_BUDGET", "4", 1);
  EXPECT_EQ(sim::thread_budget(), 4u);
  EXPECT_EQ(sim::active_sweep_workers(), 1u);

  // An explicit budget bypasses the default core-count clamp on gang
  // sizing, so these expectations are host-independent.

  // No sweep running: a 8-shard gang gets the whole budget.
  EXPECT_EQ(sim::shard_worker_threads(8), 4u);
  // Never more threads than shards, never fewer than one.
  EXPECT_EQ(sim::shard_worker_threads(2), 2u);
  EXPECT_EQ(sim::shard_worker_threads(1), 1u);

  {
    // A 2-wide sweep is running: each worker's sharded Machine gets its
    // share of the budget (4 / 2 = 2 threads).
    sim::detail::SweepWidthGuard sweep(2);
    EXPECT_EQ(sim::active_sweep_workers(), 2u);
    EXPECT_EQ(sim::shard_worker_threads(8), 2u);
    {
      // Nested sweeps multiply; the share floors at one thread (serial
      // drain of all shards — still correct, just not parallel).
      sim::detail::SweepWidthGuard nested(4);
      EXPECT_EQ(sim::active_sweep_workers(), 8u);
      EXPECT_EQ(sim::shard_worker_threads(8), 1u);
    }
    EXPECT_EQ(sim::active_sweep_workers(), 2u);
  }
  EXPECT_EQ(sim::shard_worker_threads(8), 4u);
}

// ---------------------------------------------------------------------------
// EventQueue empty-precondition assertions.
// ---------------------------------------------------------------------------

#if GTEST_HAS_DEATH_TEST
TEST(EventQueueAssertions, NextTickOnEmptyQueueAsserts) {
  EXPECT_DEATH(
      {
        sim::EventQueue q;
        (void)q.next_tick();
      },
      "empty");
}

TEST(EventQueueAssertions, PopOnEmptyQueueAsserts) {
  EXPECT_DEATH(
      {
        sim::EventQueue q;
        (void)q.pop();
      },
      "empty");
}
#endif

// ---------------------------------------------------------------------------
// Cross-shard channel FIFO litmus, swept over 64 schedule seeds.
// ---------------------------------------------------------------------------

// Shard 0 sends interleaved message streams on two ordering channels to
// shard 3, all arriving at one tick, with local cross-traffic competing at
// the same tick on the destination shard. Whatever the seed permutes, each
// channel must deliver in send order.
TEST(CrossShardFifo, ChannelOrderSurvivesEverySeed) {
  constexpr int kPerChannel = 16;
  constexpr std::uint64_t kChanA = 0xA11CE;
  constexpr std::uint64_t kChanB = 0xB0B;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    sim::Simulator s;
    s.set_schedule_seed(seed);
    s.configure_shards(4, 8, /*lookahead=*/4);
    ASSERT_TRUE(s.sharded());

    std::vector<int> got_a;
    std::vector<int> got_b;
    int noise = 0;

    // Producer event on shard 0: defers 2 x kPerChannel cross-shard sends,
    // interleaved A/B, all arriving at tick 10 on shard 3.
    s.schedule_on(0, 0, [&] {
      for (int i = 0; i < kPerChannel; ++i) {
        s.defer_remote([&, i](sim::Simulator& sm) {
          sm.replay_push_channel(3, 10, kChanA, [&, i] { got_a.push_back(i); });
        });
        s.defer_remote([&, i](sim::Simulator& sm) {
          sm.replay_push_channel(3, 10, kChanB, [&, i] { got_b.push_back(i); });
        });
      }
    });
    // Cross-traffic: unrelated local events on the destination shard at
    // the same tick, so the tie-break has something to permute against.
    s.schedule_on(3, 0, [&] {
      for (int i = 0; i < 8; ++i) s.schedule_at(10, [&] { ++noise; });
    });

    ASSERT_EQ(s.run(), sim::RunResult::kIdle) << "seed " << seed;
    EXPECT_EQ(noise, 8) << "seed " << seed;
    ASSERT_EQ(got_a.size(), static_cast<std::size_t>(kPerChannel)) << "seed " << seed;
    ASSERT_EQ(got_b.size(), static_cast<std::size_t>(kPerChannel)) << "seed " << seed;
    for (int i = 0; i < kPerChannel; ++i) {
      EXPECT_EQ(got_a[static_cast<std::size_t>(i)], i) << "channel A, seed " << seed;
      EXPECT_EQ(got_b[static_cast<std::size_t>(i)], i) << "channel B, seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// Seed-0 digest identity: sharded == serial, bit for bit.
// ---------------------------------------------------------------------------

namespace {

// Lock-protected shared counter + final barrier: exercises locks, plain
// coherent data (or global writes on the paper machine), and cross-node
// protocol traffic on every flavor.
sim::Task contend(Processor& p, Addr lock, Addr counter, std::uint32_t participants,
                  bool paper_machine) {
  for (int k = 0; k < 4; ++k) {
    co_await p.write_lock(lock);
    if (paper_machine) {
      // Plain accesses are not coherent on the read-update machine;
      // shared data goes through READ-UPDATE / WRITE-GLOBAL, and the
      // write must be flushed (CP-Synch) before the lock is released.
      const Word v = co_await p.read_update(counter);
      co_await p.write_global(counter, v + 1);
      co_await p.flush_buffer();
    } else {
      const Word v = co_await p.read(counter);
      co_await p.write(counter, v + 1);
    }
    co_await p.unlock(lock);
  }
  co_await p.barrier_arrive(32, participants);
}

struct Flavor {
  const char* name;
  core::MachineConfig cfg;
  bool paper;
};

std::vector<Flavor> flavors(core::NetworkKind net) {
  auto wbi = test::small_config(8);
  wbi.network = net;
  wbi.lock_impl = core::LockImpl::kTts;
  wbi.barrier_impl = core::BarrierImpl::kCentral;

  auto cbl = wbi;
  cbl.lock_impl = core::LockImpl::kCbl;
  cbl.barrier_impl = core::BarrierImpl::kCbl;

  auto paper = test::paper_config(8);
  paper.network = net;

  return {{"wbi", wbi, false}, {"cbl-on-wbi", cbl, false}, {"paper", paper, true}};
}

struct RunFingerprint {
  Tick completion;
  std::uint64_t digest;
};

RunFingerprint run_flavor(core::MachineConfig cfg, std::uint32_t n_shards, bool paper) {
  cfg.n_shards = n_shards;
  Machine m(cfg);
  const Addr lock = 0;
  const Addr counter = 16;
  for (NodeId i = 0; i < cfg.n_nodes; ++i) {
    m.spawn_on(i, contend(m.processor(i), lock, counter, cfg.n_nodes, paper));
  }
  const Tick t = test::run_all(m);
  EXPECT_EQ(m.n_shards(), std::min(n_shards, cfg.n_nodes));
  // WRITE-GLOBAL writes through to the home memory module; write-back
  // flavors may legitimately hold the line dirty in a cache.
  const Word got = paper ? m.peek_memory(counter) : m.peek_coherent(counter);
  EXPECT_EQ(got, static_cast<Word>(4 * cfg.n_nodes));
  return {t, m.stats_digest()};
}

}  // namespace

TEST(ShardDigest, Seed0ShardedMatchesSerialAcrossFlavorsAndNetworks) {
  for (const auto net : {core::NetworkKind::kOmega, core::NetworkKind::kMesh}) {
    for (const auto& f : flavors(net)) {
      const auto serial = run_flavor(f.cfg, 1, f.paper);
      const auto sharded = run_flavor(f.cfg, 4, f.paper);
      EXPECT_EQ(serial.completion, sharded.completion)
          << f.name << "/" << core::to_string(net);
      EXPECT_EQ(serial.digest, sharded.digest) << f.name << "/" << core::to_string(net);
    }
  }
}

TEST(ShardDigest, NonzeroSeedShardedRunsAreDeterministic) {
  auto fs = flavors(core::NetworkKind::kOmega);
  auto cfg = fs[2].cfg;  // paper machine
  cfg.schedule_seed = 7;
  const auto a = run_flavor(cfg, 4, true);
  const auto b = run_flavor(cfg, 4, true);
  EXPECT_EQ(a.completion, b.completion);
  EXPECT_EQ(a.digest, b.digest);
}

// ---------------------------------------------------------------------------
// Trace export byte-stability across shard counts.
// ---------------------------------------------------------------------------

namespace {

std::string trace_csv(std::uint32_t n_shards) {
  auto cfg = test::paper_config(8);
  cfg.n_shards = n_shards;
  cfg.trace = true;
  Machine m(cfg);
  for (NodeId i = 0; i < cfg.n_nodes; ++i) {
    m.spawn_on(i, contend(m.processor(i), 0, 16, cfg.n_nodes, true));
  }
  test::run_all(m);
  std::ostringstream os;
  m.simulator().merged_trace().write_csv(os);
  return os.str();
}

std::vector<std::string> sorted_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::istringstream is(s);
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  std::sort(lines.begin(), lines.end());
  return lines;
}

}  // namespace

TEST(ShardTrace, MergedExportIsByteStableAcrossShardCounts) {
  const std::string s2 = trace_csv(2);
  const std::string s4 = trace_csv(4);
  const std::string s8 = trace_csv(8);
  // Identical bytes regardless of how the records were sharded...
  EXPECT_EQ(s2, s4);
  EXPECT_EQ(s4, s8);
  // ...and the same record *set* as the serial kernel (the serial export
  // is insertion-ordered, the canonical merge is tuple-sorted, so compare
  // as sorted line sets).
  EXPECT_EQ(sorted_lines(trace_csv(1)), sorted_lines(s4));
}
