// Schedule-seed exploration (docs/TESTING.md): the same program must be
// correct under every same-tick event permutation, and any single seed must
// replay bit-identically. Litmus shapes run under >= 64 seeds on both the
// paper machine (read-update + BC + CBL) and the WBI baseline, with full
// invariant checking wired into every directory transition.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/invariants.hpp"
#include "test_util.hpp"

namespace bcsim {
namespace {

using core::Machine;
using core::MachineConfig;
using core::Processor;

constexpr std::uint64_t kSeeds = 64;

MachineConfig checked(MachineConfig cfg, std::uint64_t schedule_seed) {
  // The omega network (not the ideal one) so seeds actually shuffle
  // contended port timing, plus invariants at every directory transition.
  cfg.network = core::NetworkKind::kOmega;
  cfg.schedule_seed = schedule_seed;
  cfg.invariants = sim::InvariantLevel::kFull;
  return cfg;
}

/// Fingerprint of one run, for determinism and diversity checks.
struct RunShape {
  Tick completion;
  std::uint64_t messages;
  bool operator<(const RunShape& o) const {
    return completion != o.completion ? completion < o.completion : messages < o.messages;
  }
  bool operator==(const RunShape& o) const {
    return completion == o.completion && messages == o.messages;
  }
};

// ---------------------------------------------------------------------------
// Message passing: writer publishes data then a flag; reader spins on the
// flag and must never read stale data, under any schedule.
// ---------------------------------------------------------------------------

struct MpResult {
  RunShape shape;
  Word seen;
};

MpResult run_mp(const MachineConfig& cfg) {
  Machine m(cfg);
  const bool ru = cfg.data_protocol == core::DataProtocol::kReadUpdate;
  const Addr data = 0;
  const Addr flag = 4;
  Word seen = 0;
  struct Writer {
    Addr data, flag;
    bool ru;
    sim::Task operator()(Processor& p) const {
      co_await p.compute(30);
      if (ru) {
        co_await p.write_global(data, 7);
        co_await p.flush_buffer();
        co_await p.write_global(flag, 1);
        co_await p.flush_buffer();
      } else {
        co_await p.write(data, 7);
        co_await p.write(flag, 1);
      }
    }
  } writer{data, flag, ru};
  struct Reader {
    Addr data, flag;
    bool ru;
    Word& seen;
    sim::Task operator()(Processor& p) const {
      if (ru) {
        co_await p.read_update(flag);
        co_await p.read_update(data);
      }
      for (;;) {
        const Word f = ru ? co_await p.read_update(flag) : co_await p.read(flag);
        if (f == 1) break;
        co_await p.wait_word_change(flag, f);
      }
      seen = ru ? co_await p.read_update(data) : co_await p.read(data);
    }
  } reader{data, flag, ru, seen};
  // Background traffic on the middle nodes: without contention a two-actor
  // run has almost no same-tick ties for the schedule seed to permute.
  struct Noise {
    sim::Task operator()(Processor& p) const {
      for (int k = 0; k < 12; ++k) {
        co_await p.fetch_add(512 + 8 * (p.id() % 3), 1);
        co_await p.compute(1);
      }
    }
  } noise;
  m.spawn(writer(m.processor(0)));
  m.spawn(reader(m.processor(cfg.n_nodes - 1)));
  for (NodeId i = 1; i + 1 < cfg.n_nodes; ++i) m.spawn(noise(m.processor(i)));
  const Tick t = test::run_all(m);
  return {{t, m.stats().counter_value("net.messages")}, seen};
}

// ---------------------------------------------------------------------------
// Lock counter: N nodes increment a shared counter under a hardware queued
// lock; every increment must survive, under any schedule.
// ---------------------------------------------------------------------------

struct LockResult {
  RunShape shape;
  Word counter;
};

LockResult run_lock(const MachineConfig& cfg, int iters) {
  Machine m(cfg);
  const Addr lock = 16;
  struct Prog {
    Addr lock;
    int iters;
    sim::Task operator()(Processor& p) const {
      for (int k = 0; k < iters; ++k) {
        co_await p.write_lock(lock);
        const Word v = co_await p.read(lock + 1);
        co_await p.write(lock + 1, v + 1);
        co_await p.unlock(lock);
      }
    }
  } prog{lock, iters};
  for (NodeId i = 0; i < cfg.n_nodes; ++i) m.spawn(prog(m.processor(i)));
  const Tick t = test::run_all(m);
  return {{t, m.stats().counter_value("net.messages")}, m.peek_memory(lock + 1)};
}

class Schedules : public ::testing::TestWithParam<const char*> {
 protected:
  MachineConfig base() const {
    const bool paper = std::string_view(GetParam()) == "paper";
    MachineConfig cfg = paper ? test::paper_config(4) : test::small_config(4);
    if (!paper) {
      // The WBI baseline still uses the hardware lock/barrier engines.
      cfg.lock_impl = core::LockImpl::kCbl;
      cfg.barrier_impl = core::BarrierImpl::kCbl;
    }
    return cfg;
  }
};

TEST_P(Schedules, MessagePassingCorrectUnderEverySeed) {
  // No diversity assertion here: this handoff is latency-bound, so the
  // permuted orders happen to produce identical totals (the lock test
  // below proves seeds do bite). The point is the per-seed oracle: the
  // reader must never see stale data, whatever the interleaving.
  for (std::uint64_t s = 0; s < kSeeds; ++s) {
    const auto cfg = checked(base(), s);
    const MpResult r = run_mp(cfg);
    ASSERT_EQ(r.seen, 7u) << "stale data past the flag under schedule seed " << s;
  }
}

TEST_P(Schedules, LockCounterExactUnderEverySeed) {
  std::set<RunShape> shapes;
  const int iters = 4;
  for (std::uint64_t s = 0; s < kSeeds; ++s) {
    const auto cfg = checked(base(), s);
    const LockResult r = run_lock(cfg, iters);
    ASSERT_EQ(r.counter, static_cast<Word>(cfg.n_nodes) * iters)
        << "lost increment under schedule seed " << s;
    shapes.insert(r.shape);
  }
  EXPECT_GE(shapes.size(), 2u) << "schedule seed had no observable effect";
}

TEST_P(Schedules, EverySeedIsDeterministic) {
  for (std::uint64_t s : {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{17},
                          std::uint64_t{63}}) {
    const auto cfg = checked(base(), s);
    const LockResult a = run_lock(cfg, 3);
    const LockResult b = run_lock(cfg, 3);
    EXPECT_EQ(a.shape.completion, b.shape.completion)
        << "seed " << s << " did not replay bit-identically";
    EXPECT_EQ(a.shape.messages, b.shape.messages)
        << "seed " << s << " did not replay bit-identically";
  }
}

TEST_P(Schedules, SeedZeroMatchesDefaultConfig) {
  // schedule_seed = 0 must be indistinguishable from a config that never
  // mentions schedules at all — the seed machine's exact behavior.
  MachineConfig plain = base();
  plain.network = core::NetworkKind::kOmega;
  const LockResult a = run_lock(plain, 3);
  const LockResult b = run_lock(checked(base(), 0), 3);
  EXPECT_EQ(a.shape.completion, b.shape.completion);
  EXPECT_EQ(a.shape.messages, b.shape.messages);
}

INSTANTIATE_TEST_SUITE_P(Machines, Schedules, ::testing::Values("paper", "wbi"),
                         [](const auto& param_info) { return std::string(param_info.param); });

}  // namespace
}  // namespace bcsim
