// WBI (write-back invalidate MSI) protocol tests, driven end-to-end through
// Machine/Processor coroutine programs.
#include <gtest/gtest.h>

#include <vector>

#include "test_util.hpp"

namespace bcsim {
namespace {

using core::Machine;
using core::Processor;
using test::run_all;
using test::small_config;

sim::Task write_one(Processor& p, Addr a, Word v) { co_await p.write(a, v); }
sim::Task read_into(Processor& p, Addr a, Word& out) { out = co_await p.read(a); }

TEST(Wbi, WriteThenReadAcrossNodes) {
  Machine m(small_config(4));
  Word seen = 0;
  m.spawn(write_one(m.processor(0), 10, 1234));
  m.run();
  m.spawn(read_into(m.processor(1), 10, seen));
  run_all(m);
  EXPECT_EQ(seen, 1234u);
}

TEST(Wbi, ReadMissThenHitLatency) {
  Machine m(small_config(2));
  std::vector<Tick> stamps;
  auto prog = [&](Processor& p) -> sim::Task {
    const Tick t0 = p.simulator().now();
    co_await p.read(100);
    stamps.push_back(p.simulator().now() - t0);
    const Tick t1 = p.simulator().now();
    co_await p.read(101);  // same block: hit
    stamps.push_back(p.simulator().now() - t1);
  };
  m.spawn(prog(m.processor(0)));
  run_all(m);
  ASSERT_EQ(stamps.size(), 2u);
  EXPECT_GT(stamps[0], stamps[1]) << "miss must cost more than hit";
  EXPECT_EQ(stamps[1], 1u) << "hit costs one cycle";
}

TEST(Wbi, WriterInvalidatesReaders) {
  // Readers cache the block; a write by another node must invalidate them
  // so subsequent reads see the new value.
  Machine m(small_config(4));
  const Addr a = 20;
  m.poke_memory(a, 7);
  Word r1 = 0, r2 = 0;
  m.spawn(read_into(m.processor(1), a, r1));
  m.spawn(read_into(m.processor(2), a, r2));
  m.run();
  EXPECT_EQ(r1, 7u);
  EXPECT_EQ(r2, 7u);
  m.spawn(write_one(m.processor(0), a, 8));
  m.run();
  EXPECT_GE(m.stats().counter_value("dir.invs"), 2u);
  m.spawn(read_into(m.processor(1), a, r1));
  run_all(m);
  EXPECT_EQ(r1, 8u);
}

TEST(Wbi, DirtyDataRecalledOnRemoteRead) {
  // Node 0 writes (M state, memory stale); node 1's read must trigger a
  // recall and return the fresh value.
  Machine m(small_config(4));
  const Addr a = 31;
  Word seen = 0;
  m.spawn(write_one(m.processor(0), a, 555));
  m.run();
  EXPECT_EQ(m.peek_memory(a), 0u) << "write-back cache: memory stale before recall";
  m.spawn(read_into(m.processor(1), a, seen));
  run_all(m);
  EXPECT_EQ(seen, 555u);
  EXPECT_EQ(m.peek_memory(a), 555u) << "recall wrote the block back";
  EXPECT_GE(m.stats().counter_value("dir.recalls"), 1u);
}

TEST(Wbi, DirtyDataRecalledOnRemoteWrite) {
  Machine m(small_config(4));
  const Addr a = 44;
  m.spawn(write_one(m.processor(0), a, 1));
  m.run();
  m.spawn(write_one(m.processor(1), a, 2));
  m.run();
  Word seen = 0;
  m.spawn(read_into(m.processor(2), a, seen));
  run_all(m);
  EXPECT_EQ(seen, 2u);
}

TEST(Wbi, WriteUpgradeFromShared) {
  Machine m(small_config(4));
  const Addr a = 52;
  m.poke_memory(a, 9);
  Word r = 0;
  auto read_then_write = [&](Processor& p) -> sim::Task {
    r = co_await p.read(a);   // S
    co_await p.write(a, 10);  // upgrade S -> M
    r = co_await p.read(a);   // hit in M
  };
  m.spawn(read_then_write(m.processor(0)));
  run_all(m);
  EXPECT_EQ(r, 10u);
}

TEST(Wbi, ConcurrentWritersSerialize) {
  // n writers increment disjoint bits of the same word... not atomic, so
  // instead: each writer stores its id+1 to the same address; afterwards
  // the memory value must be one of the writers' values (no torn/blended
  // state) and every cache agrees with memory.
  auto cfg = small_config(8);
  cfg.network = core::NetworkKind::kOmega;
  Machine m(cfg);
  const Addr a = 60;
  for (NodeId i = 0; i < 8; ++i) {
    m.spawn(write_one(m.processor(i), a, i + 1));
  }
  run_all(m);
  Word final = 0;
  m.spawn(read_into(m.processor(0), a, final));
  run_all(m);
  EXPECT_GE(final, 1u);
  EXPECT_LE(final, 8u);
}

TEST(Wbi, RmwTestAndSetIsAtomic) {
  // All processors race a test&set; exactly one may win.
  Machine m(small_config(8));
  const Addr a = 72;
  std::vector<Word> olds(8, 99);
  auto prog = [&](Processor& p, int i) -> sim::Task {
    olds[static_cast<std::size_t>(i)] = co_await p.test_and_set(a);
  };
  for (NodeId i = 0; i < 8; ++i) m.spawn(prog(m.processor(i), static_cast<int>(i)));
  run_all(m);
  int winners = 0;
  for (Word o : olds) winners += (o == 0) ? 1 : 0;
  EXPECT_EQ(winners, 1);
  EXPECT_EQ(m.peek_memory(a), 1u);
}

TEST(Wbi, RmwFetchAddCountsExactly) {
  Machine m(small_config(8));
  const Addr a = 80;
  auto prog = [&](Processor& p) -> sim::Task {
    for (int k = 0; k < 10; ++k) co_await p.fetch_add(a, 1);
  };
  for (NodeId i = 0; i < 8; ++i) m.spawn(prog(m.processor(i)));
  run_all(m);
  EXPECT_EQ(m.peek_memory(a), 80u);
}

TEST(Wbi, RmwInvalidatesCachedCopies) {
  // A sharer's stale copy must be invalidated by an RMW so its next read
  // observes the RMW's effect.
  Machine m(small_config(4));
  const Addr a = 92;
  Word before = 99, after = 99;
  m.spawn(read_into(m.processor(1), a, before));
  m.run();
  EXPECT_EQ(before, 0u);
  m.spawn(write_one(m.processor(2), a + 1, 0));  // unrelated traffic, same set? no-op
  m.run();
  auto ts = [&](Processor& p) -> sim::Task { co_await p.test_and_set(a); };
  m.spawn(ts(m.processor(0)));
  m.run();
  m.spawn(read_into(m.processor(1), a, after));
  run_all(m);
  EXPECT_EQ(after, 1u);
}

TEST(Wbi, CompareSwapSemantics) {
  Machine m(small_config(2));
  const Addr a = 104;
  m.poke_memory(a, 5);
  std::vector<Word> results;
  auto prog = [&](Processor& p) -> sim::Task {
    results.push_back(co_await p.compare_swap(a, 4, 77));  // fails
    results.push_back(co_await p.compare_swap(a, 5, 77));  // succeeds
    results.push_back(co_await p.compare_swap(a, 5, 88));  // fails now
  };
  m.spawn(prog(m.processor(0)));
  run_all(m);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0], 5u);
  EXPECT_EQ(results[1], 5u);
  EXPECT_EQ(results[2], 77u);
  EXPECT_EQ(m.peek_memory(a), 77u);
}

TEST(Wbi, EvictionWritesBackDirtyWords) {
  // Tiny cache: writing many blocks forces eviction of dirty lines; their
  // data must land in memory.
  auto cfg = small_config(2);
  cfg.cache_blocks = 4;
  cfg.cache_assoc = 1;
  Machine m(cfg);
  auto prog = [&](Processor& p) -> sim::Task {
    for (Addr blk = 0; blk < 16; ++blk) {
      co_await p.write(blk * 4, blk + 100);
    }
  };
  m.spawn(prog(m.processor(0)));
  run_all(m);
  EXPECT_GT(m.stats().counter_value("cache.writebacks"), 0u);
  // Evicted blocks (all but the last few resident) must be in memory.
  Word seen = 0;
  m.spawn(read_into(m.processor(1), 0, seen));
  run_all(m);
  EXPECT_EQ(seen, 100u);
}

TEST(Wbi, SpinWaitWakesOnInvalidation) {
  Machine m(small_config(2));
  const Addr flag = 120;
  Word observed = 0;
  auto waiter = [&](Processor& p) -> sim::Task {
    for (;;) {
      const Word v = co_await p.read(flag);
      if (v != 0) {
        observed = v;
        co_return;
      }
      co_await p.wait_word_change(flag, v);
    }
  };
  auto setter = [&](Processor& p) -> sim::Task {
    co_await p.compute(500);
    co_await p.write(flag, 42);
  };
  m.spawn(waiter(m.processor(0)));
  m.spawn(setter(m.processor(1)));
  run_all(m);
  EXPECT_EQ(observed, 42u);
}

TEST(Wbi, PerWordDirtyBitsMergeFalseSharedWriteback) {
  // Two nodes write different words of the same block, then both lines are
  // forcibly evicted: per-word dirty bits must merge both updates in
  // memory. (With whole-line writebacks one update would be lost.)
  auto cfg = small_config(4);
  cfg.cache_blocks = 4;
  cfg.cache_assoc = 1;
  Machine m(cfg);
  const Addr base = 0;  // block 0
  // Writers take turns becoming the owner, so the block's words are
  // written by different nodes over time; eviction pressure then forces
  // partial writebacks.
  auto w0 = [&](Processor& p) -> sim::Task {
    co_await p.write(base + 0, 111);
    for (Addr blk = 1; blk < 8; ++blk) co_await p.write(blk * 4, 1);  // evict
  };
  m.spawn(w0(m.processor(0)));
  m.run();
  auto w1 = [&](Processor& p) -> sim::Task {
    co_await p.write(base + 1, 222);
    for (Addr blk = 8; blk < 16; ++blk) co_await p.write(blk * 4, 1);  // evict
  };
  m.spawn(w1(m.processor(1)));
  run_all(m);
  EXPECT_EQ(m.peek_memory(base + 0), 111u);
  EXPECT_EQ(m.peek_memory(base + 1), 222u);
}

TEST(WbiLimitedDir, BroadcastInvalidationKeepsCoherence) {
  // Dir_2-B: more than two sharers forces broadcast invalidation. The
  // protocol must stay correct — a write after wide sharing still
  // invalidates every copy.
  auto cfg = small_config(8);
  cfg.dir_pointer_limit = 2;
  Machine m(cfg);
  const Addr a = 40;
  m.poke_memory(a, 5);
  std::vector<Word> seen(8, 0);
  for (NodeId i = 1; i < 8; ++i) m.spawn(read_into(m.processor(i), a, seen[i]));
  m.run();
  for (NodeId i = 1; i < 8; ++i) EXPECT_EQ(seen[i], 5u);
  m.spawn(write_one(m.processor(0), a, 6));
  run_all(m);
  EXPECT_GE(m.stats().counter_value("dir.broadcast_invalidations"), 1u);
  // Every node must see the new value on its next read.
  for (NodeId i = 1; i < 8; ++i) m.spawn(read_into(m.processor(i), a, seen[i]));
  run_all(m);
  for (NodeId i = 1; i < 8; ++i) EXPECT_EQ(seen[i], 6u) << "node " << i;
}

TEST(WbiLimitedDir, BroadcastCostsMoreMessages) {
  auto run_limit = [](std::uint32_t limit) {
    auto cfg = small_config(8);
    cfg.dir_pointer_limit = limit;
    Machine m(cfg);
    const Addr a = 40;
    std::vector<Word> seen(8, 0);
    auto reader = [&](Processor& p, Word& out) -> sim::Task { out = co_await p.read(a); };
    for (NodeId i = 1; i < 8; ++i) m.spawn(reader(m.processor(i), seen[i]));
    m.run();
    auto writer = [&](Processor& p) -> sim::Task { co_await p.write(a, 1); };
    m.spawn(writer(m.processor(0)));
    m.run(20'000'000);
    return m.stats().counter_value("dir.invs");
  };
  EXPECT_EQ(run_limit(0), 7u) << "full map: exactly the sharers";
  EXPECT_EQ(run_limit(2), 7u) << "8-node broadcast: everyone but the writer";
  // With fewer sharers than the limit, no broadcast is needed.
  auto cfg = small_config(8);
  cfg.dir_pointer_limit = 4;
  Machine m(cfg);
  const Addr a = 48;
  Word s1 = 0;
  m.spawn(read_into(m.processor(1), a, s1));
  m.run();
  m.spawn(write_one(m.processor(0), a, 2));
  run_all(m);
  EXPECT_EQ(m.stats().counter_value("dir.broadcast_invalidations"), 0u);
  EXPECT_EQ(m.stats().counter_value("dir.invs"), 1u);
}

TEST(WbiLimitedDir, RmwUnderBroadcastStaysAtomic) {
  auto cfg = small_config(8);
  cfg.dir_pointer_limit = 1;
  Machine m(cfg);
  const Addr a = 56;
  // Everyone caches, then everyone fetch-adds: no increment may be lost.
  auto prog = [&](Processor& p) -> sim::Task {
    co_await p.read(a);
    for (int k = 0; k < 5; ++k) co_await p.fetch_add(a, 1);
  };
  for (NodeId i = 0; i < 8; ++i) m.spawn(prog(m.processor(i)));
  run_all(m);
  EXPECT_EQ(m.peek_memory(a), 40u);
}

// Property sweep: data integrity under disjoint-word concurrent writes for
// several node counts and networks.
struct WbiSweepParam {
  std::uint32_t n;
  core::NetworkKind net;
};

class WbiIntegrity : public ::testing::TestWithParam<WbiSweepParam> {};

TEST_P(WbiIntegrity, DisjointWordWritesAllSurvive) {
  auto cfg = small_config(GetParam().n);
  cfg.network = GetParam().net;
  Machine m(cfg);
  const std::uint32_t n = m.n_nodes();
  // Each processor owns words i, i+n, i+2n, ... across a shared region —
  // maximal false sharing within blocks.
  const std::uint32_t words = 8 * n;
  auto prog = [&](Processor& p) -> sim::Task {
    for (std::uint32_t w = p.id(); w < words; w += n) {
      co_await p.write(w, 1000 + w);
    }
  };
  for (NodeId i = 0; i < n; ++i) m.spawn(prog(m.processor(i)));
  run_all(m);
  // Flush every cached line by reading from one node... instead verify via
  // a second machine pass: read each word coherently.
  std::vector<Word> seen(words, 0);
  auto reader = [&](Processor& p) -> sim::Task {
    for (std::uint32_t w = 0; w < words; ++w) seen[w] = co_await p.read(w);
  };
  m.spawn(reader(m.processor(0)));
  run_all(m);
  for (std::uint32_t w = 0; w < words; ++w) {
    EXPECT_EQ(seen[w], 1000u + w) << "word " << w << " lost";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, WbiIntegrity,
    ::testing::Values(WbiSweepParam{2, core::NetworkKind::kIdeal},
                      WbiSweepParam{4, core::NetworkKind::kOmega},
                      WbiSweepParam{8, core::NetworkKind::kOmega},
                      WbiSweepParam{16, core::NetworkKind::kOmega},
                      WbiSweepParam{5, core::NetworkKind::kCrossbar},
                      WbiSweepParam{32, core::NetworkKind::kOmega}));

}  // namespace
}  // namespace bcsim
