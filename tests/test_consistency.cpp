// Buffered vs sequential consistency semantics: write-buffer behavior,
// FLUSH-BUFFER, CP-Synch ordering, and the performance relation BC <= SC.
#include <gtest/gtest.h>

#include <vector>

#include "test_util.hpp"

namespace bcsim {
namespace {

using core::Consistency;
using core::Machine;
using core::Processor;
using test::paper_config;
using test::run_all;

TEST(Consistency, BcWriteGlobalReturnsImmediately) {
  Machine m(paper_config(4));
  Tick write_cost = 0;
  std::size_t pending_after = 0;
  auto prog = [&](Processor& p) -> sim::Task {
    const Tick t0 = p.simulator().now();
    co_await p.write_global(200, 1);
    write_cost = p.simulator().now() - t0;
    pending_after = p.cache().write_buffer().pending();
    co_await p.flush_buffer();
  };
  m.spawn(prog(m.processor(0)));
  run_all(m);
  EXPECT_EQ(write_cost, 1u) << "BC: the write buffer absorbs the write";
  EXPECT_EQ(pending_after, 1u);
}

TEST(Consistency, ScWriteGlobalStalls) {
  auto cfg = paper_config(4);
  cfg.consistency = Consistency::kSequential;
  Machine m(cfg);
  Tick write_cost = 0;
  auto prog = [&](Processor& p) -> sim::Task {
    const Tick t0 = p.simulator().now();
    co_await p.write_global(200, 1);
    write_cost = p.simulator().now() - t0;
  };
  m.spawn(prog(m.processor(0)));
  run_all(m);
  EXPECT_GT(write_cost, 4u) << "SC: the processor waits for the global ack";
}

TEST(Consistency, FlushWaitsForAllPendingWrites) {
  Machine m(paper_config(4));
  Tick flush_cost = 0;
  auto prog = [&](Processor& p) -> sim::Task {
    for (Addr a = 0; a < 12; ++a) {
      co_await p.write_global(300 + a * 4, a);  // different home modules
    }
    const Tick t0 = p.simulator().now();
    co_await p.flush_buffer();
    flush_cost = p.simulator().now() - t0;
    EXPECT_TRUE(p.cache().write_buffer().empty());
  };
  m.spawn(prog(m.processor(0)));
  run_all(m);
  EXPECT_GT(flush_cost, 1u) << "flush must wait out the in-flight writes";
  for (Addr a = 0; a < 12; ++a) EXPECT_EQ(m.peek_memory(300 + a * 4), a);
}

TEST(Consistency, FlushOnEmptyBufferIsCheap) {
  Machine m(paper_config(2));
  Tick cost = 0;
  auto prog = [&](Processor& p) -> sim::Task {
    const Tick t0 = p.simulator().now();
    co_await p.flush_buffer();
    cost = p.simulator().now() - t0;
  };
  m.spawn(prog(m.processor(0)));
  run_all(m);
  EXPECT_LE(cost, 1u);
}

TEST(Consistency, BoundedWriteBufferAppliesBackpressure) {
  auto cfg = paper_config(2);
  cfg.write_buffer_entries = 2;
  Machine m(cfg);
  Tick burst_cost = 0;
  auto prog = [&](Processor& p) -> sim::Task {
    const Tick t0 = p.simulator().now();
    for (int i = 0; i < 8; ++i) {
      co_await p.write_global(400 + static_cast<Addr>(i) * 4, 1);
    }
    burst_cost = p.simulator().now() - t0;
    co_await p.flush_buffer();
  };
  m.spawn(prog(m.processor(0)));
  run_all(m);
  EXPECT_GT(burst_cost, 8u) << "a full buffer must stall further writes";
}

TEST(Consistency, CpSynchOrdersWritesBeforeLockRelease) {
  // Writer: update data (global write), then release the lock. Reader:
  // acquire the lock, then read the data with READ-GLOBAL. The CP-Synch
  // flush inside release() must make the data write visible first.
  Machine m(paper_config(4));
  const Addr lock = 16;
  const Addr data = 64;  // different block, different home
  Word reader_saw = 1234;
  auto writer = [&](Processor& p) -> sim::Task {
    co_await p.write_lock(lock);
    co_await p.write_global(data, 42);
    // CP-Synch discipline: flush before the unlock.
    co_await p.flush_buffer();
    co_await p.unlock(lock);
  };
  auto reader = [&](Processor& p) -> sim::Task {
    co_await p.compute(30);
    co_await p.write_lock(lock);
    reader_saw = co_await p.read_global(data);
    co_await p.unlock(lock);
  };
  m.spawn(writer(m.processor(0)));
  m.spawn(reader(m.processor(1)));
  run_all(m);
  EXPECT_EQ(reader_saw, 42u);
}

TEST(Consistency, BcNeverSlowerThanScOnWriteHeavyPhase) {
  // Same deterministic program under both models; BC must finish no later.
  auto run_model = [&](Consistency c) {
    auto cfg = paper_config(4);
    cfg.consistency = c;
    Machine m(cfg);
    auto prog = [](Processor& p) -> sim::Task {
      for (int i = 0; i < 50; ++i) {
        co_await p.write_global(static_cast<Addr>(512 + i * 4), i);
        co_await p.compute(2);
      }
      co_await p.flush_buffer();
    };
    // Keep the coroutine alive through run: spawn directly.
    m.spawn(prog(m.processor(0)));
    return m.run(20'000'000);
  };
  const Tick bc = run_model(Consistency::kBuffered);
  const Tick sc = run_model(Consistency::kSequential);
  EXPECT_LT(bc, sc) << "buffering must overlap write latency with compute";
}

TEST(Consistency, PendingCounterMatchesAdveHillSemantics) {
  // The write buffer's pending count is the paper's implicit Adve-Hill
  // counter: it rises with issues, falls with global completions.
  Machine m(paper_config(2));
  std::vector<std::size_t> counts;
  auto prog = [&](Processor& p) -> sim::Task {
    counts.push_back(p.cache().write_buffer().pending());
    co_await p.write_global(600, 1);
    counts.push_back(p.cache().write_buffer().pending());
    co_await p.write_global(604, 2);
    counts.push_back(p.cache().write_buffer().pending());
    co_await p.flush_buffer();
    counts.push_back(p.cache().write_buffer().pending());
  };
  m.spawn(prog(m.processor(0)));
  run_all(m);
  EXPECT_EQ(counts, (std::vector<std::size_t>{0, 1, 2, 0}));
}

}  // namespace
}  // namespace bcsim
