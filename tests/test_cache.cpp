// Cache structure tests: set-associative cache, write buffer, lock cache.
#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "cache/lock_cache.hpp"
#include "cache/write_buffer.hpp"

namespace bcsim::cache {
namespace {

TEST(Cache, FindMissesOnEmpty) {
  Cache c(16, 4);
  EXPECT_EQ(c.find(3), nullptr);
  EXPECT_EQ(c.n_sets(), 4u);
  EXPECT_EQ(c.assoc(), 4u);
}

TEST(Cache, InstallAndFind) {
  Cache c(16, 4);
  CacheLine* v = c.pick_victim(5);
  ASSERT_NE(v, nullptr);
  v->block = 5;
  v->valid = true;
  EXPECT_EQ(c.find(5), v);
  EXPECT_EQ(c.find(9), nullptr);  // 9 maps to a different set (9 % 4 = 1)
}

TEST(Cache, VictimPrefersInvalidFrames) {
  Cache c(8, 2);
  CacheLine* a = c.pick_victim(0);
  a->block = 0;
  a->valid = true;
  a->last_use = 100;
  CacheLine* b = c.pick_victim(4);  // same set (0), second way
  EXPECT_NE(b, a);
  EXPECT_FALSE(b->valid);
}

TEST(Cache, VictimIsLruAmongValid) {
  Cache c(8, 2);
  CacheLine* a = c.pick_victim(0);
  a->block = 0;
  a->valid = true;
  a->last_use = 50;
  CacheLine* b = c.pick_victim(4);
  b->block = 4;
  b->valid = true;
  b->last_use = 10;
  EXPECT_EQ(c.pick_victim(8), b) << "older line should be evicted";
  b->last_use = 90;
  EXPECT_EQ(c.pick_victim(8), a);
}

TEST(Cache, PinnedAndLockedFramesAreNotVictims) {
  Cache c(4, 2);
  CacheLine* a = c.pick_victim(0);
  a->block = 0;
  a->valid = true;
  a->pinned = true;
  CacheLine* b = c.pick_victim(2);
  b->block = 2;
  b->valid = true;
  b->lock = LockState::kHeldWrite;
  EXPECT_EQ(c.pick_victim(4), nullptr) << "all frames unreplaceable";
  b->lock = LockState::kNone;
  EXPECT_EQ(c.pick_victim(4), b);
}

TEST(Cache, BadGeometryThrows) {
  EXPECT_THROW(Cache(10, 4), std::invalid_argument);
  EXPECT_THROW(Cache(0, 1), std::invalid_argument);
  EXPECT_THROW(Cache(4, 0), std::invalid_argument);
}

TEST(CacheLine, ClearResetsEverything) {
  CacheLine l;
  l.block = 9;
  l.valid = true;
  l.msi = MsiState::kModified;
  l.update_bit = true;
  l.dirty_mask = 0xF;
  l.prev = 1;
  l.next = 2;
  l.pinned = true;
  l.clear();
  EXPECT_FALSE(l.valid);
  EXPECT_EQ(l.msi, MsiState::kInvalid);
  EXPECT_FALSE(l.update_bit);
  EXPECT_EQ(l.dirty_mask, 0u);
  EXPECT_EQ(l.prev, kNoNode);
  EXPECT_EQ(l.next, kNoNode);
  EXPECT_FALSE(l.pinned);
}

// --- write buffer ---

TEST(WriteBuffer, PendingCountTracksEnterRetire) {
  WriteBuffer wb;
  EXPECT_TRUE(wb.empty());
  wb.enter();
  wb.enter();
  EXPECT_EQ(wb.pending(), 2u);
  wb.retire();
  EXPECT_EQ(wb.pending(), 1u);
  wb.retire();
  EXPECT_TRUE(wb.empty());
}

TEST(WriteBuffer, TxnIdsAreUnique) {
  WriteBuffer wb;
  EXPECT_NE(wb.enter(), wb.enter());
}

TEST(WriteBuffer, FlushWaitersFireOnDrain) {
  WriteBuffer wb;
  int fired = 0;
  wb.on_drained([&] { ++fired; });
  EXPECT_EQ(fired, 1) << "empty buffer completes immediately";
  wb.enter();
  wb.on_drained([&] { ++fired; });
  wb.on_drained([&] { ++fired; });
  EXPECT_EQ(fired, 1);
  wb.retire();
  EXPECT_EQ(fired, 3);
}

TEST(WriteBuffer, BoundedCapacityBlocksAndWakes) {
  WriteBuffer wb(2);
  int issued = 0;
  wb.on_slot([&] {
    ++issued;
    wb.enter();
  });
  wb.on_slot([&] {
    ++issued;
    wb.enter();
  });
  EXPECT_EQ(issued, 2);
  EXPECT_TRUE(wb.full());
  wb.on_slot([&] {
    ++issued;
    wb.enter();
  });
  EXPECT_EQ(issued, 2) << "third write must wait for a slot";
  wb.retire();
  EXPECT_EQ(issued, 3);
  EXPECT_TRUE(wb.full());
}

TEST(WriteBuffer, UnboundedNeverFull) {
  WriteBuffer wb(0);
  for (int i = 0; i < 1000; ++i) wb.enter();
  EXPECT_FALSE(wb.full());
  EXPECT_TRUE(wb.unbounded());
}

// --- lock cache ---

TEST(LockCache, AllocateFindRelease) {
  LockCache lc(2);
  CacheLine& a = lc.allocate(10);
  EXPECT_EQ(a.block, 10u);
  EXPECT_TRUE(a.valid);
  EXPECT_EQ(lc.find(10), &a);
  EXPECT_EQ(lc.find(11), nullptr);
  lc.release(10);
  EXPECT_EQ(lc.find(10), nullptr);
  EXPECT_EQ(lc.size(), 0u);
}

TEST(LockCache, CapacityBlocksUntilRelease) {
  LockCache lc(1);
  int ran = 0;
  EXPECT_FALSE(lc.on_slot([&] {
    ++ran;
    lc.allocate(1);
  }));
  EXPECT_TRUE(lc.full());
  EXPECT_TRUE(lc.on_slot([&] {
    ++ran;
    lc.allocate(2);
  }));
  EXPECT_EQ(ran, 1);
  lc.release(1);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(lc.stalls_served(), 1u);
  EXPECT_EQ(lc.find(2)->block, 2u);
}

TEST(LockCache, ReleaseOfUnknownBlockIsIdempotent) {
  LockCache lc(2);
  lc.release(99);  // no-op
  EXPECT_EQ(lc.size(), 0u);
}

TEST(LockCache, StableAddressesAcrossChurn) {
  LockCache lc(4);
  CacheLine& a = lc.allocate(1);
  lc.allocate(2);
  lc.release(2);
  lc.allocate(3);
  EXPECT_EQ(lc.find(1), &a) << "entries must not move on unrelated churn";
}

}  // namespace
}  // namespace bcsim::cache
