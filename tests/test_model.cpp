// Cross-validation of the axiomatic BC checker (src/model/) against the
// simulator — docs/TESTING.md, "Model conformance".
//
// Three layers:
//   1. the enumerator's axiomatic shape: specific outcomes each litmus
//      test must allow or forbid (fences restore SC where the paper says
//      they do, and only there);
//   2. the pinned golden tables: every allowed set rendered and compared
//      textually against tests/model_allowed_golden.txt, so any change to
//      the model's semantics shows up as a diff;
//   3. soundness in-process: the full battery run on all three machine
//      flavors over both networks, every observed outcome checked for
//      membership in the allowed set — and the eager-flush fault shown to
//      produce a detected violation.
#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "model/battery.hpp"
#include "model/bc_model.hpp"
#include "model/litmus.hpp"
#include "model/litmus_runner.hpp"
#include "ref/diff.hpp"

namespace bcsim {
namespace {

using model::LitmusTest;
using model::Op;
using model::Outcome;

const LitmusTest& battery_test(const std::string& name) {
  static const std::vector<LitmusTest> battery = model::litmus_battery();
  const LitmusTest* t = model::find_litmus(battery, name);
  if (t == nullptr) throw std::runtime_error("no litmus named " + name);
  return *t;
}

/// True when some allowed outcome has exactly these observed load values.
bool allows_loads(const std::vector<Outcome>& allowed,
                  const std::vector<Word>& loads) {
  return std::any_of(allowed.begin(), allowed.end(),
                     [&](const Outcome& o) { return o.loads == loads; });
}

// --- layer 1: axiomatic shape ------------------------------------------

TEST(ModelAxioms, StoreBufferingAllowsBothStaleOnlyWithoutFences) {
  const auto sb = model::enumerate_allowed(battery_test("sb"));
  EXPECT_TRUE(allows_loads(sb, {0, 0}))
      << "both stores buffered past both loads is the canonical BC outcome";
  const auto fenced = model::enumerate_allowed(battery_test("sb-fence"));
  EXPECT_FALSE(allows_loads(fenced, {0, 0}))
      << "FLUSH-BUFFER between store and load must restore SC";
  EXPECT_TRUE(allows_loads(fenced, {1, 0}));
  EXPECT_TRUE(allows_loads(fenced, {0, 1}));
  EXPECT_TRUE(allows_loads(fenced, {1, 1}));
}

TEST(ModelAxioms, MessagePassingFenceForbidsStaleData) {
  // mp (no fence) may show the flag without the data...
  const auto mp = model::enumerate_allowed(battery_test("mp"));
  EXPECT_TRUE(allows_loads(mp, {0}));
  EXPECT_TRUE(allows_loads(mp, {42}));
  // ...but a CP-Synch flush between data and flag closes the window: the
  // reader's Await(y==1) then guarantees x=42.
  const auto fenced = model::enumerate_allowed(battery_test("mp-fence"));
  ASSERT_FALSE(fenced.empty());
  for (const Outcome& o : fenced) {
    ASSERT_EQ(o.loads.size(), 1u);
    EXPECT_EQ(o.loads[0], 42u) << "stale data past a fenced flag";
  }
}

TEST(ModelAxioms, LoadBufferingForbidden) {
  // Loads issue in order and stores cannot be read before they are
  // issued, so lb's (1,1) cycle is impossible.
  const auto lb = model::enumerate_allowed(battery_test("lb"));
  EXPECT_FALSE(allows_loads(lb, {1, 1}));
  EXPECT_TRUE(allows_loads(lb, {0, 0}));
}

TEST(ModelAxioms, CoherenceReadReadNeverRegresses) {
  const auto corr = model::enumerate_allowed(battery_test("corr"));
  EXPECT_FALSE(allows_loads(corr, {1, 0}))
      << "a thread's view of one location must be monotone";
  EXPECT_TRUE(allows_loads(corr, {0, 0}));
  EXPECT_TRUE(allows_loads(corr, {0, 1}));
  EXPECT_TRUE(allows_loads(corr, {1, 1}));
}

TEST(ModelAxioms, IriwReadersMayDisagree) {
  // BC is not multi-copy atomic: the two readers may see the independent
  // writes in opposite orders, fences or not.
  for (const char* name : {"iriw", "iriw-fence"}) {
    const auto a = model::enumerate_allowed(battery_test(name));
    EXPECT_TRUE(allows_loads(a, {0, 0})) << name;
  }
}

TEST(ModelAxioms, TwoLockTransitivePublish) {
  // t1 reads y==1 under lock 1, so t0's unlock(0) flush happened before:
  // x must be visible.
  const auto lt = model::enumerate_allowed(battery_test("lock-two"));
  EXPECT_FALSE(allows_loads(lt, {1, 0}));
  EXPECT_TRUE(allows_loads(lt, {1, 1}));
  EXPECT_TRUE(allows_loads(lt, {0, 0}));
  EXPECT_TRUE(allows_loads(lt, {0, 1}));
}

TEST(ModelAxioms, BarrierRestoresSc) {
  // Barrier arrival flushes and the rendezvous orders every pre-barrier
  // store before every post-barrier load: SB collapses to (1,1) and the
  // MP reader must see 7.
  const auto bsb = model::enumerate_allowed(battery_test("barrier-sb"));
  ASSERT_EQ(bsb.size(), 1u);
  EXPECT_EQ(bsb[0].loads, (std::vector<Word>{1, 1}));
  const auto bmp = model::enumerate_allowed(battery_test("barrier-mp"));
  ASSERT_EQ(bmp.size(), 1u);
  EXPECT_EQ(bmp[0].loads, (std::vector<Word>{7}));
}

TEST(ModelAxioms, ValidateRejectsMalformedTests) {
  LitmusTest bad{"bad-unlock", "", 1, 1, {{model::Unlock(0)}}};
  EXPECT_NE(model::validate(bad), "");
  EXPECT_THROW((void)model::enumerate_allowed(bad), std::invalid_argument);

  LitmusTest never{"bad-await", "", 1, 0,
                   {{model::St(0, 1)}, {model::Await(0, 9)}}};
  EXPECT_NE(model::validate(never), "") << "awaited value is never stored";

  LitmusTest uneven{"bad-barrier", "", 1, 0,
                    {{model::Bar()}, {model::Ld(0)}}};
  EXPECT_NE(model::validate(uneven), "") << "threads disagree on barrier count";
}

TEST(ModelAxioms, FirstDivergenceFindsEarliestBadLoad) {
  const auto& t = battery_test("sb-fence");
  const auto allowed = model::enumerate_allowed(t);
  Outcome ok;
  ok.loads = {1, 0};
  ok.finals = {1, 1};
  EXPECT_EQ(model::first_divergence(allowed, ok), -1);
  Outcome bad;
  bad.loads = {0, 0};  // second load makes the prefix impossible
  bad.finals = {1, 1};
  EXPECT_EQ(model::first_divergence(allowed, bad), 1);
}

// --- layer 2: pinned golden tables -------------------------------------

TEST(ModelGolden, AllowedSetsMatchPinnedTables) {
  std::ifstream in(BCSIM_MODEL_GOLDEN);
  ASSERT_TRUE(in) << "cannot open " << BCSIM_MODEL_GOLDEN;
  std::stringstream want;
  want << in.rdbuf();

  std::string got;
  for (const LitmusTest& t : model::litmus_battery()) {
    got += model::render_allowed(t, model::enumerate_allowed(t));
  }
  EXPECT_EQ(got, want.str())
      << "model semantics or battery changed; if intentional, regenerate "
         "with: build/tools/bcsim model --print-allowed > "
         "tests/model_allowed_golden.txt";
}

// --- layer 3: soundness against the simulator --------------------------

constexpr std::uint32_t kNodes = 16;

core::MachineConfig sound_cfg(ref::Flavor f, core::NetworkKind net,
                              std::uint64_t seed) {
  core::MachineConfig cfg = ref::flavor_config(f, kNodes, seed);
  cfg.network = net;
  return cfg;
}

TEST(ModelSoundness, BatteryObservedSubsetOfAllowed) {
  // Every flavor x both networks x a few seeds, full battery: each run's
  // observed outcome must be in the model's allowed set. The deep seed
  // sweep is the cli_model_smoke / cli_model_sweep ctest entries; this is
  // the in-process version with a first-divergence diagnosis on failure.
  for (const LitmusTest& t : model::litmus_battery()) {
    const auto allowed = model::enumerate_allowed(t);
    for (const ref::Flavor f : {ref::Flavor::kWbi, ref::Flavor::kRu, ref::Flavor::kCbl}) {
      for (const core::NetworkKind net :
           {core::NetworkKind::kOmega, core::NetworkKind::kMesh}) {
        for (std::uint64_t seed = 0; seed < 3; ++seed) {
          const auto cfg = sound_cfg(f, net, seed);
          const auto r = model::run_litmus(t, cfg);
          ASSERT_TRUE(r.completed)
              << t.name << " " << ref::to_string(f) << " seed " << seed
              << ": " << r.error;
          const int d = model::first_divergence(allowed, r.outcome);
          EXPECT_TRUE(model::outcome_allowed(allowed, r.outcome))
              << t.name << " " << ref::to_string(f)
              << (net == core::NetworkKind::kMesh ? " mesh" : " omega")
              << " seed " << seed << ": observed "
              << model::render_outcome(t, r.outcome)
              << ", first divergence at "
              << (d >= 0 && d < static_cast<int>(r.loads.size())
                      ? model::load_label(t, static_cast<std::size_t>(d))
                      : std::string("finals"));
        }
      }
    }
  }
}

TEST(ModelSoundness, RuReachesTheWeakOutcomes) {
  // Statistical completeness spot-check: under RU (the only BC flavor)
  // the seed sweep must actually reach the weak outcomes the model
  // allows — mp's stale read and sb's (0,0). The seed-derived compute
  // jitter in the runner is what makes this converge; dozens of seeds
  // over both networks give a comfortable margin (each weak outcome
  // shows up in roughly 1 in 3 / 1 in 8 RU runs respectively).
  const auto& mp = battery_test("mp");
  const auto& sb = battery_test("sb");
  bool mp_stale = false;
  bool sb_both_stale = false;
  for (std::uint64_t seed = 0; seed < 64 && !(mp_stale && sb_both_stale); ++seed) {
    for (const core::NetworkKind net :
         {core::NetworkKind::kOmega, core::NetworkKind::kMesh}) {
      const auto cfg = sound_cfg(ref::Flavor::kRu, net, seed);
      if (!mp_stale) {
        const auto r = model::run_litmus(mp, cfg);
        ASSERT_TRUE(r.completed) << r.error;
        if (r.outcome.loads == std::vector<Word>{0}) mp_stale = true;
      }
      if (!sb_both_stale) {
        const auto r = model::run_litmus(sb, cfg);
        ASSERT_TRUE(r.completed) << r.error;
        if (r.outcome.loads == std::vector<Word>{0, 0}) sb_both_stale = true;
      }
    }
  }
  EXPECT_TRUE(mp_stale) << "mp never showed the flag-overtakes-data outcome";
  EXPECT_TRUE(sb_both_stale) << "sb never showed (0,0)";
}

TEST(ModelSoundness, EagerFlushFaultIsDetected) {
  // The acceptance-criterion fault: eager-flush completes FLUSH-BUFFER
  // without the global-perform gate, so mp-fence on the RU mesh shows the
  // forbidden stale read — and the checker must call it out.
  const auto& t = battery_test("mp-fence");
  const auto allowed = model::enumerate_allowed(t);
  bool caught = false;
  for (std::uint64_t seed = 0; seed < 8 && !caught; ++seed) {
    auto cfg = sound_cfg(ref::Flavor::kRu, core::NetworkKind::kMesh, seed);
    cfg.wb_fault = core::WbFault::kEagerFlush;
    const auto r = model::run_litmus(t, cfg);
    if (!r.completed) continue;  // a stuck run is also a detection, but
                                 // the outcome check is the point here
    if (!model::outcome_allowed(allowed, r.outcome)) {
      caught = true;
      const int d = model::first_divergence(allowed, r.outcome);
      ASSERT_GE(d, 0);
      ASSERT_LT(static_cast<std::size_t>(d), r.loads.size());
      EXPECT_EQ(r.loads[static_cast<std::size_t>(d)].value, 0u)
          << "the divergent read is the stale data word";
    }
  }
  EXPECT_TRUE(caught)
      << "eager-flush never produced a model-forbidden outcome in 8 seeds";
}

}  // namespace
}  // namespace bcsim
