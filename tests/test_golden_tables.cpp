// Golden-value tests for the analytical models (src/analytic/table2.cpp,
// table3.cpp): every scenario evaluated at the paper's default constants
// over a grid of machine sizes, pinned to hand-evaluated literals.
//
// test_analytic.cpp checks hand computations at one point and the
// asymptotic claims; this suite is the regression fence — any edit to a
// formula coefficient shows up as an exact cell diff against the tables
// below. Values are derived from the Table 2 / Table 3 rows with
// C_B=6, C_W=2, C_I=1, C_R=1 and t_nw=6, t_cs=50, t_D=1, t_m=4 (the
// header defaults, matching the paper's example parameters).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <iterator>

#include "analytic/table2.hpp"
#include "analytic/table3.hpp"

namespace bcsim::analytic {
namespace {

// All formulas are closed-form in doubles; the tolerance only needs to
// absorb association-order noise, scaled for the O(n^2) entries.
double tol(double expected) { return 1e-9 * (1.0 + std::abs(expected)); }

#define EXPECT_GOLDEN(actual, expected) \
  EXPECT_NEAR(actual, expected, tol(expected))

// ---------------------------------------------------------------------------
// Table 2 — per-processor solver traffic (defaults: C_B=6, C_W=2, C_I=1,
// C_R=1)
// ---------------------------------------------------------------------------

struct Table2Row {
  std::uint32_t n;
  std::uint32_t B;
  double initial_load;
  double write;
  double read;
};

void check_rows(Scheme s, const Table2Row* rows, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    const auto& row = rows[i];
    const auto got = solver_traffic(s, row.n, row.B);
    SCOPED_TRACE(testing::Message()
                 << to_string(s) << " n=" << row.n << " B=" << row.B);
    EXPECT_GOLDEN(got.initial_load, row.initial_load);
    EXPECT_GOLDEN(got.write, row.write);
    EXPECT_GOLDEN(got.read, row.read);
  }
}

TEST(GoldenTable2, ReadUpdateTrafficGrid) {
  // init = ceil(n/B) C_B ; write = C_W + (n-1) C_B ; read = 0.
  static constexpr Table2Row kRows[] = {
      {4, 4, 6.0, 20.0, 0.0},    {4, 8, 6.0, 20.0, 0.0},
      {16, 4, 24.0, 92.0, 0.0},  {16, 8, 12.0, 92.0, 0.0},
      {64, 4, 96.0, 380.0, 0.0}, {64, 8, 48.0, 380.0, 0.0},
  };
  check_rows(Scheme::kReadUpdate, kRows, std::size(kRows));
}

TEST(GoldenTable2, InvColocatedTrafficGrid) {
  // write = (1/B)(C_R + (n-1)C_I) + ((B-1)/B)(2C_R + 2C_B)
  // read  = C_B (ceil(n/B) - 1/B)
  static constexpr Table2Row kRows[] = {
      {4, 4, 6.0, 11.5, 4.5},     {4, 8, 6.0, 12.75, 5.25},
      {16, 4, 24.0, 14.5, 22.5},  {16, 8, 12.0, 14.25, 11.25},
      {64, 4, 96.0, 26.5, 94.5},  {64, 8, 48.0, 20.25, 47.25},
  };
  check_rows(Scheme::kInvColocated, kRows, std::size(kRows));
}

TEST(GoldenTable2, InvSeparateTrafficGrid) {
  // init = n C_B ; write = C_R + (n-1) C_I = n ; read = (n-1) C_B.
  // Block size is irrelevant once every element has its own block.
  static constexpr Table2Row kRows[] = {
      {4, 4, 24.0, 4.0, 18.0},    {4, 8, 24.0, 4.0, 18.0},
      {16, 4, 96.0, 16.0, 90.0},  {16, 8, 96.0, 16.0, 90.0},
      {64, 4, 384.0, 64.0, 378.0}, {64, 8, 384.0, 64.0, 378.0},
  };
  check_rows(Scheme::kInvSeparate, kRows, std::size(kRows));
}

TEST(GoldenTable2, LatencyViewWriteColumn) {
  // The latency view collapses each p||transaction group to one transfer:
  // RU write = C_W + C_B = 8 for every n; inv-I write = (1/B)(C_R + C_I) +
  // ((B-1)/B)(2C_R + 2C_B); inv-II write = C_R + C_I = 2.
  for (std::uint32_t n : {4u, 16u, 64u}) {
    SCOPED_TRACE(testing::Message() << "n=" << n);
    EXPECT_GOLDEN(solver_latency(Scheme::kReadUpdate, n, 4).write, 8.0);
    EXPECT_GOLDEN(solver_latency(Scheme::kInvColocated, n, 4).write, 11.0);
    EXPECT_GOLDEN(solver_latency(Scheme::kInvColocated, n, 8).write, 12.5);
    EXPECT_GOLDEN(solver_latency(Scheme::kInvSeparate, n, 4).write, 2.0);
  }
  // initial_load and read are traffic-identical (no parallel groups there).
  const auto t = solver_traffic(Scheme::kInvColocated, 16, 4);
  const auto l = solver_latency(Scheme::kInvColocated, 16, 4);
  EXPECT_GOLDEN(l.initial_load, t.initial_load);
  EXPECT_GOLDEN(l.read, t.read);
}

// ---------------------------------------------------------------------------
// Table 3 — synchronization scenarios (defaults: t_nw=6, t_cs=50, t_D=1,
// t_m=4)
// ---------------------------------------------------------------------------

struct Table3Row {
  std::uint32_t n;
  double wbi_messages;
  double wbi_time;
  double cbl_messages;
  double cbl_time;
};

void check_rows(SyncScenario s, const Table3Row* rows, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    const auto& row = rows[i];
    const auto wbi = wbi_cost(s, row.n);
    const auto cbl = cbl_cost(s, row.n);
    SCOPED_TRACE(testing::Message() << to_string(s) << " n=" << row.n);
    EXPECT_GOLDEN(wbi.messages, row.wbi_messages);
    EXPECT_GOLDEN(wbi.time, row.wbi_time);
    EXPECT_GOLDEN(cbl.messages, row.cbl_messages);
    EXPECT_GOLDEN(cbl.time, row.cbl_time);
  }
}

TEST(GoldenTable3, ParallelLockGrid) {
  // WBI: {6n^2 + 4n, 14.5 n^2 + 109.5 n} — the quadratic term is the
  // spin-lock invalidation storm. CBL: {6n - 3, 63n + 11} — linear, the
  // queue hands the lock point to point.
  static constexpr Table3Row kRows[] = {
      {2, 32.0, 277.0, 9.0, 137.0},
      {4, 112.0, 670.0, 21.0, 263.0},
      {8, 416.0, 1804.0, 45.0, 515.0},
      {16, 1600.0, 5464.0, 93.0, 1019.0},
      {32, 6272.0, 18352.0, 189.0, 2027.0},
      {64, 24832.0, 66400.0, 381.0, 4043.0},
  };
  check_rows(SyncScenario::kParallelLock, kRows, std::size(kRows));
}

TEST(GoldenTable3, SerialLockIsSizeIndependent) {
  // WBI: {8, 8 t_nw + 5 t_D + t_m + t_cs = 107}; CBL: {3, 3 t_nw + t_D +
  // t_cs = 69}. One uncontended acquire/release never touches n.
  static constexpr Table3Row kRows[] = {
      {2, 8.0, 107.0, 3.0, 69.0},
      {16, 8.0, 107.0, 3.0, 69.0},
      {128, 8.0, 107.0, 3.0, 69.0},
  };
  check_rows(SyncScenario::kSerialLock, kRows, std::size(kRows));
}

TEST(GoldenTable3, BarrierRequestIsSizeIndependent) {
  // WBI: {18, 18 t_nw + 12 t_D = 120}; CBL: {2, 2(t_nw + t_m) = 20}.
  static constexpr Table3Row kRows[] = {
      {2, 18.0, 120.0, 2.0, 20.0},
      {16, 18.0, 120.0, 2.0, 20.0},
      {128, 18.0, 120.0, 2.0, 20.0},
  };
  check_rows(SyncScenario::kBarrierRequest, kRows, std::size(kRows));
}

TEST(GoldenTable3, BarrierNotifyGrid) {
  // WBI: {5n - 3, 4 t_nw + (2n - 1) t_D = 2n + 23}; CBL: {n, 2 t_nw +
  // (n - 1) t_D = n + 11}.
  static constexpr Table3Row kRows[] = {
      {2, 7.0, 27.0, 2.0, 13.0},
      {4, 17.0, 31.0, 4.0, 15.0},
      {8, 37.0, 39.0, 8.0, 19.0},
      {16, 77.0, 55.0, 16.0, 27.0},
      {32, 157.0, 87.0, 32.0, 43.0},
      {64, 317.0, 151.0, 64.0, 75.0},
  };
  check_rows(SyncScenario::kBarrierNotify, kRows, std::size(kRows));
}

// The non-default constants path: Table 3 at t_nw=1, t_cs=10, t_D=1, t_m=2
// (a "fast network" point) — pins that the constants thread through every
// term rather than only the leading one.
TEST(GoldenTable3, FastNetworkConstantsThreadThroughEveryTerm) {
  const TimeConstants fast{1.0, 10.0, 1.0, 2.0};
  const auto wbi = wbi_cost(SyncScenario::kSerialLock, 8, fast);
  EXPECT_GOLDEN(wbi.messages, 8.0);
  EXPECT_GOLDEN(wbi.time, 8 * 1.0 + 5 * 1.0 + 2.0 + 10.0);  // 25
  const auto cbl = cbl_cost(SyncScenario::kSerialLock, 8, fast);
  EXPECT_GOLDEN(cbl.messages, 3.0);
  EXPECT_GOLDEN(cbl.time, 3 * 1.0 + 1.0 + 10.0);  // 14
  const auto par = cbl_cost(SyncScenario::kParallelLock, 8, fast);
  EXPECT_GOLDEN(par.messages, 45.0);
  // n t_cs + (2n+1) t_nw + (n+1) t_D + t_m = 80 + 17 + 9 + 2
  EXPECT_GOLDEN(par.time, 108.0);
}

}  // namespace
}  // namespace bcsim::analytic
