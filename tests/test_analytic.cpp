// Analytical model tests: the Table 2 / Table 3 formulas evaluated against
// hand-computed values and their asymptotic claims.
#include <gtest/gtest.h>

#include "analytic/table2.hpp"
#include "analytic/table3.hpp"

namespace bcsim::analytic {
namespace {

TEST(Table2, ReadUpdateRowsMatchHandComputation) {
  // n=8, B=4, C_B=6, C_W=2, C_I=1, C_R=1.
  CostConstants c;
  const auto ru = solver_traffic(Scheme::kReadUpdate, 8, 4, c);
  EXPECT_DOUBLE_EQ(ru.initial_load, 2 * 6.0);       // ceil(8/4) C_B
  EXPECT_DOUBLE_EQ(ru.write, 2.0 + 7 * 6.0);        // C_W + (n-1) C_B
  EXPECT_DOUBLE_EQ(ru.read, 0.0);
}

TEST(Table2, InvIRowsMatchHandComputation) {
  CostConstants c;
  const auto i1 = solver_traffic(Scheme::kInvColocated, 8, 4, c);
  EXPECT_DOUBLE_EQ(i1.initial_load, 12.0);
  // (1/4)(1 + 7*1) + (3/4)(2 + 12) = 2 + 10.5
  EXPECT_DOUBLE_EQ(i1.write, 12.5);
  // (1/4)(2-1)*6 + (3/4)*2*6 = 1.5 + 9
  EXPECT_DOUBLE_EQ(i1.read, 10.5);
}

TEST(Table2, InvIIRowsMatchHandComputation) {
  CostConstants c;
  const auto i2 = solver_traffic(Scheme::kInvSeparate, 8, 4, c);
  EXPECT_DOUBLE_EQ(i2.initial_load, 48.0);  // n C_B
  EXPECT_DOUBLE_EQ(i2.write, 1.0 + 7.0);    // C_R + (n-1) C_I
  EXPECT_DOUBLE_EQ(i2.read, 42.0);          // (n-1) C_B
}

TEST(Table2, ReadUpdateWinsReadsAtScale) {
  // The qualitative claim: read of the next iteration strongly favors
  // read-update, for all n and B.
  for (std::uint32_t n : {4u, 16u, 64u, 256u}) {
    for (std::uint32_t B : {2u, 4u, 8u}) {
      const auto ru = solver_traffic(Scheme::kReadUpdate, n, B);
      const auto i1 = solver_traffic(Scheme::kInvColocated, n, B);
      const auto i2 = solver_traffic(Scheme::kInvSeparate, n, B);
      EXPECT_LT(ru.read, i1.read);
      EXPECT_LT(ru.read, i2.read);
    }
  }
}

TEST(Table2, SeparateAllocationTradesWritesForReads) {
  // At moderate n, inv-II has cheaper writes (no false-sharing ping-pong)
  // but more expensive reads than inv-I (paper: "Though separate
  // allocation reduces the overhead for write, read of the next iteration
  // will incur more overhead"). At large n the write relation flips as
  // the n-1 invalidations dominate — both regimes are checked.
  const auto i1 = solver_traffic(Scheme::kInvColocated, 8, 4);
  const auto i2 = solver_traffic(Scheme::kInvSeparate, 8, 4);
  EXPECT_LT(i2.write, i1.write);
  EXPECT_GT(i2.read, i1.read);
  const auto big1 = solver_traffic(Scheme::kInvColocated, 256, 4);
  const auto big2 = solver_traffic(Scheme::kInvSeparate, 256, 4);
  EXPECT_GT(big2.write, big1.write) << "invalidation count dominates at scale";
}

TEST(Table2, LatencyViewCollapsesParallelTransfers) {
  const auto traffic = solver_traffic(Scheme::kReadUpdate, 64, 4);
  const auto latency = solver_latency(Scheme::kReadUpdate, 64, 4);
  EXPECT_GT(traffic.write, latency.write);
  EXPECT_DOUBLE_EQ(latency.read, 0.0);
}

TEST(Table2, InvalidArgumentsThrow) {
  EXPECT_THROW(static_cast<void>(solver_traffic(Scheme::kReadUpdate, 0, 4)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(solver_traffic(Scheme::kReadUpdate, 4, 0)),
               std::invalid_argument);
}

TEST(Table3, SerialLockMatchesPaperRow) {
  TimeConstants t;
  const auto wbi = wbi_cost(SyncScenario::kSerialLock, 16, t);
  const auto cbl = cbl_cost(SyncScenario::kSerialLock, 16, t);
  EXPECT_DOUBLE_EQ(wbi.messages, 8.0);
  EXPECT_DOUBLE_EQ(cbl.messages, 3.0);
  // 8 t_nw + 5 t_D + t_m + t_cs = 48 + 5 + 4 + 50
  EXPECT_DOUBLE_EQ(wbi.time, 107.0);
  // 3 t_nw + t_D + t_cs = 18 + 1 + 50
  EXPECT_DOUBLE_EQ(cbl.time, 69.0);
}

TEST(Table3, ParallelLockMessagesMatchPaperRow) {
  const auto wbi = wbi_cost(SyncScenario::kParallelLock, 10);
  const auto cbl = cbl_cost(SyncScenario::kParallelLock, 10);
  EXPECT_DOUBLE_EQ(wbi.messages, 6 * 100.0 + 40.0);  // 6n^2 + 4n
  EXPECT_DOUBLE_EQ(cbl.messages, 57.0);              // 6n - 3
}

TEST(Table3, BarrierRowsMatchPaper) {
  TimeConstants t;
  const auto wbi_req = wbi_cost(SyncScenario::kBarrierRequest, 8, t);
  const auto cbl_req = cbl_cost(SyncScenario::kBarrierRequest, 8, t);
  EXPECT_DOUBLE_EQ(wbi_req.messages, 18.0);
  EXPECT_DOUBLE_EQ(cbl_req.messages, 2.0);
  EXPECT_DOUBLE_EQ(cbl_req.time, 2 * (t.t_nw + t.t_m));
  const auto wbi_not = wbi_cost(SyncScenario::kBarrierNotify, 8, t);
  const auto cbl_not = cbl_cost(SyncScenario::kBarrierNotify, 8, t);
  EXPECT_DOUBLE_EQ(wbi_not.messages, 37.0);  // 5n - 3
  EXPECT_DOUBLE_EQ(cbl_not.messages, 8.0);   // n
}

TEST(Table3, ParallelLockComplexityClasses) {
  // CBL is O(n) in messages and time; WBI is O(n^2): doubling n should
  // roughly double CBL and roughly quadruple WBI.
  const auto w1 = wbi_cost(SyncScenario::kParallelLock, 64);
  const auto w2 = wbi_cost(SyncScenario::kParallelLock, 128);
  const auto c1 = cbl_cost(SyncScenario::kParallelLock, 64);
  const auto c2 = cbl_cost(SyncScenario::kParallelLock, 128);
  EXPECT_NEAR(w2.messages / w1.messages, 4.0, 0.15);
  EXPECT_NEAR(c2.messages / c1.messages, 2.0, 0.15);
  EXPECT_GT(w2.time / w1.time, 3.0);
  EXPECT_LT(c2.time / c1.time, 2.5);
}

TEST(Table3, CblBeatsWbiEverywhere) {
  for (std::uint32_t n : {2u, 8u, 32u, 128u}) {
    for (auto s : {SyncScenario::kParallelLock, SyncScenario::kSerialLock,
                   SyncScenario::kBarrierRequest, SyncScenario::kBarrierNotify}) {
      EXPECT_LT(cbl_cost(s, n).messages, wbi_cost(s, n).messages)
          << to_string(s) << " n=" << n;
      EXPECT_LT(cbl_cost(s, n).time, wbi_cost(s, n).time) << to_string(s) << " n=" << n;
    }
  }
}

}  // namespace
}  // namespace bcsim::analytic
