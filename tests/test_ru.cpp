// Reader-initiated coherence tests: READ-UPDATE subscriptions, chained
// update propagation, RESET-UPDATE, READ-GLOBAL/WRITE-GLOBAL, and the
// per-word dirty merge semantics.
#include <gtest/gtest.h>

#include <vector>

#include "test_util.hpp"

namespace bcsim {
namespace {

using core::Machine;
using core::Processor;
using test::paper_config;
using test::run_all;

sim::Task wg(Processor& p, Addr a, Word v) {
  co_await p.write_global(a, v);
  co_await p.flush_buffer();
}
sim::Task ru_read(Processor& p, Addr a, Word& out) { out = co_await p.read_update(a); }
sim::Task g_read(Processor& p, Addr a, Word& out) { out = co_await p.read_global(a); }

TEST(ReadUpdate, SubscriberReceivesWriterUpdates) {
  Machine m(paper_config(4));
  const Addr a = 16;
  m.poke_memory(a, 5);
  Word first = 0;
  m.spawn(ru_read(m.processor(1), a, first));
  m.run();
  EXPECT_EQ(first, 5u);
  m.spawn(wg(m.processor(0), a, 6));
  run_all(m);
  // The subscriber's next read is a local hit with the updated value.
  Word second = 0;
  std::vector<Tick> lat;
  auto hit_read = [&](Processor& p) -> sim::Task {
    const Tick t0 = p.simulator().now();
    second = co_await p.read_update(a);
    lat.push_back(p.simulator().now() - t0);
  };
  m.spawn(hit_read(m.processor(1)));
  run_all(m);
  EXPECT_EQ(second, 6u);
  ASSERT_EQ(lat.size(), 1u);
  EXPECT_EQ(lat[0], 1u) << "subscribed line must hit locally";
}

TEST(ReadUpdate, AllSubscribersUpdatedViaChain) {
  Machine m(paper_config(8));
  const Addr a = 24;
  std::vector<Word> vals(8, 0);
  for (NodeId i = 1; i < 8; ++i) m.spawn(ru_read(m.processor(i), a, vals[i]));
  m.run();
  m.spawn(wg(m.processor(0), a, 99));
  run_all(m);
  // After the flush (write globally performed), every subscriber's cached
  // copy must be fresh.
  std::vector<Word> after(8, 0);
  std::deque<sim::Task> readers;
  auto reader = [&](Processor& p, Word& out) -> sim::Task { out = co_await p.read_update(a); };
  for (NodeId i = 1; i < 8; ++i) m.spawn(reader(m.processor(i), after[i]));
  run_all(m);
  for (NodeId i = 1; i < 8; ++i) EXPECT_EQ(after[i], 99u) << "subscriber " << i;
  EXPECT_GE(m.stats().counter_value("cache.ru_updates_received"), 7u);
  EXPECT_GE(m.stats().counter_value("cache.chain_forwards"), 6u)
      << "updates must propagate down the list, not broadcast from memory";
}

TEST(ReadUpdate, WriteGlobalAckWaitsForPropagation) {
  // Under SC, write_global completes only when globally performed; with 6
  // subscribers the chain adds at least 6 network hops versus none.
  auto cfg = paper_config(8);
  cfg.consistency = core::Consistency::kSequential;
  Machine m(cfg);
  const Addr sub = 32, unsub = 40;
  std::vector<Word> sink(8);
  for (NodeId i = 1; i < 8; ++i) m.spawn(ru_read(m.processor(i), sub, sink[i]));
  m.run();
  Tick with_subs = 0, without_subs = 0;
  auto prog = [&](Processor& p) -> sim::Task {
    Tick t0 = p.simulator().now();
    co_await p.write_global(sub, 1);
    with_subs = p.simulator().now() - t0;
    t0 = p.simulator().now();
    co_await p.write_global(unsub, 1);
    without_subs = p.simulator().now() - t0;
  };
  m.spawn(prog(m.processor(0)));
  run_all(m);
  EXPECT_GT(with_subs, without_subs + 5)
      << "globally-performed ack must include the subscriber chain";
}

TEST(ReadUpdate, ResetUpdateStopsDeliveries) {
  Machine m(paper_config(4));
  const Addr a = 48;
  Word v = 0;
  m.spawn(ru_read(m.processor(1), a, v));
  m.run();
  auto reset = [&](Processor& p) -> sim::Task { co_await p.reset_update(a); };
  m.spawn(reset(m.processor(1)));
  m.run();
  m.spawn(wg(m.processor(0), a, 7));
  run_all(m);
  // Node 1's line must NOT have been updated (no subscription): a plain
  // local read still sees the old cached 0.
  Word stale = 99;
  auto local_read = [&](Processor& p) -> sim::Task { stale = co_await p.read(a); };
  m.spawn(local_read(m.processor(1)));
  run_all(m);
  EXPECT_EQ(stale, 0u) << "after RESET-UPDATE no update may be delivered";
  // But READ-GLOBAL bypasses the stale copy.
  Word fresh = 0;
  m.spawn(g_read(m.processor(1), a, fresh));
  run_all(m);
  EXPECT_EQ(fresh, 7u);
}

TEST(ReadUpdate, ResubscribeAfterResetWorks) {
  Machine m(paper_config(4));
  const Addr a = 56;
  Word v = 0;
  m.spawn(ru_read(m.processor(1), a, v));
  m.run();
  auto reset = [&](Processor& p) -> sim::Task { co_await p.reset_update(a); };
  m.spawn(reset(m.processor(1)));
  m.run();
  m.spawn(ru_read(m.processor(1), a, v));
  m.run();
  m.spawn(wg(m.processor(0), a, 3));
  run_all(m);
  Word seen = 0;
  auto local_read = [&](Processor& p) -> sim::Task { seen = co_await p.read(a); };
  m.spawn(local_read(m.processor(1)));
  run_all(m);
  EXPECT_EQ(seen, 3u);
}

TEST(ReadUpdate, UpdatePreservesLocallyDirtyWords) {
  // A subscriber with a locally dirtied word in the block must not have it
  // clobbered by an incoming update for another word (per-word merge).
  Machine m(paper_config(4));
  const Addr base = 64;  // block boundary (block_words = 4)
  Word v = 0;
  auto sub_and_dirty = [&](Processor& p) -> sim::Task {
    v = co_await p.read_update(base);
    co_await p.write(base + 1, 42);  // local write, dirty word 1
  };
  m.spawn(sub_and_dirty(m.processor(1)));
  m.run();
  m.spawn(wg(m.processor(0), base + 2, 7));  // updates word 2
  run_all(m);
  Word w1 = 0, w2 = 0;
  auto check = [&](Processor& p) -> sim::Task {
    w1 = co_await p.read(base + 1);
    w2 = co_await p.read(base + 2);
  };
  m.spawn(check(m.processor(1)));
  run_all(m);
  EXPECT_EQ(w1, 42u) << "locally dirty word clobbered by update";
  EXPECT_EQ(w2, 7u) << "clean word must take the update";
}

TEST(ReadUpdate, EvictionCancelsSubscription) {
  auto cfg = paper_config(2);
  cfg.cache_blocks = 4;
  cfg.cache_assoc = 1;
  Machine m(cfg);
  const Addr a = 0;  // block 0; blocks 4,8,... collide in the 4-set cache
  Word v = 0;
  auto prog = [&](Processor& p) -> sim::Task {
    v = co_await p.read_update(a);
    // Touch conflicting blocks to force eviction of the subscribed line.
    for (Addr blk = 1; blk <= 8; ++blk) co_await p.read(blk * 4 * 4);
  };
  m.spawn(prog(m.processor(1)));
  run_all(m);
  EXPECT_GE(m.stats().counter_value("cache.ru_evict_unsubscribe"), 1u);
  // The writer's update must not be delivered to (or acked by) node 1's
  // evicted line; the system must still quiesce.
  m.spawn(wg(m.processor(0), a, 5));
  run_all(m);
  EXPECT_EQ(m.peek_memory(a), 5u);
}

TEST(ReadUpdate, WriteGlobalUpdatesWritersOwnCachedCopy) {
  Machine m(paper_config(2));
  const Addr a = 72;
  Word before = 0, after = 0;
  auto prog = [&](Processor& p) -> sim::Task {
    before = co_await p.read(a);  // caches the block locally
    co_await p.write_global(a, 9);
    co_await p.flush_buffer();
    after = co_await p.read(a);  // local copy must reflect the write
  };
  m.spawn(prog(m.processor(0)));
  run_all(m);
  EXPECT_EQ(before, 0u);
  EXPECT_EQ(after, 9u);
}

TEST(ReadUpdate, ReadGlobalBypassesCache) {
  Machine m(paper_config(2));
  const Addr a = 80;
  m.poke_memory(a, 1);
  Word cached = 0, direct = 0;
  auto prog = [&](Processor& p) -> sim::Task {
    cached = co_await p.read(a);  // caches 1
    co_await p.compute(1);
  };
  m.spawn(prog(m.processor(0)));
  run_all(m);
  m.poke_memory(a, 2);
  auto prog2 = [&](Processor& p) -> sim::Task {
    cached = co_await p.read(a);        // stale local hit
    direct = co_await p.read_global(a); // fresh from memory
  };
  m.spawn(prog2(m.processor(0)));
  run_all(m);
  EXPECT_EQ(cached, 1u);
  EXPECT_EQ(direct, 2u);
}

TEST(ReadUpdate, ManyWritersManySubscribersConverge) {
  Machine m(paper_config(8));
  const Addr a = 96;
  std::vector<Word> sink(8);
  for (NodeId i = 4; i < 8; ++i) m.spawn(ru_read(m.processor(i), a, sink[i]));
  m.run();
  auto writer = [&](Processor& p, Word v) -> sim::Task {
    co_await p.write_global(a, v);
    co_await p.flush_buffer();
  };
  for (NodeId i = 0; i < 4; ++i) m.spawn(writer(m.processor(i), 100 + i));
  run_all(m);
  const Word mem = m.peek_memory(a);
  EXPECT_GE(mem, 100u);
  EXPECT_LE(mem, 103u);
  // Every subscriber must converge on the final memory value after all
  // writes are globally performed. The last chain delivery per write is
  // ordered per subscriber through the directory serialization.
  std::vector<Word> after(8);
  auto check = [&](Processor& p, Word& out) -> sim::Task { out = co_await p.read(a); };
  for (NodeId i = 4; i < 8; ++i) m.spawn(check(m.processor(i), after[i]));
  run_all(m);
  for (NodeId i = 4; i < 8; ++i) EXPECT_EQ(after[i], mem) << "subscriber " << i;
}

}  // namespace
}  // namespace bcsim
