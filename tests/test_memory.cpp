// Address map and memory module tests, including per-word dirty-bit merges
// (the paper's false-sharing fix at the memory side).
#include <gtest/gtest.h>

#include "mem/address.hpp"
#include "mem/memory_module.hpp"

namespace bcsim::mem {
namespace {

TEST(AddressMap, BlockAndWordDecomposition) {
  AddressMap m(4, 8);
  EXPECT_EQ(m.block_of(0), 0u);
  EXPECT_EQ(m.block_of(3), 0u);
  EXPECT_EQ(m.block_of(4), 1u);
  EXPECT_EQ(m.word_of(6), 2u);
  EXPECT_EQ(m.base_of(3), 12u);
}

TEST(AddressMap, HomeInterleavesAcrossNodes) {
  AddressMap m(4, 4);
  EXPECT_EQ(m.home_of(0), 0u);
  EXPECT_EQ(m.home_of(1), 1u);
  EXPECT_EQ(m.home_of(5), 1u);
  EXPECT_EQ(m.home_of(7), 3u);
}

TEST(AddressMap, SingleWordBlocks) {
  AddressMap m(1, 2);
  EXPECT_EQ(m.block_of(9), 9u);
  EXPECT_EQ(m.word_of(9), 0u);
}

TEST(MemoryModule, UntouchedMemoryReadsZero) {
  MemoryModule mm(4, 1, 4);
  EXPECT_EQ(mm.read_word(100, 2), 0u);
  const auto block = mm.read_block(100);
  EXPECT_EQ(block.count, 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(block.words[static_cast<std::size_t>(i)], 0u);
  EXPECT_EQ(mm.resident_blocks(), 0u) << "reads must not materialize blocks";
}

TEST(MemoryModule, WordWritesPersist) {
  MemoryModule mm(4, 1, 4);
  mm.write_word(7, 3, 0xABCD);
  EXPECT_EQ(mm.read_word(7, 3), 0xABCDu);
  EXPECT_EQ(mm.read_word(7, 0), 0u);
  EXPECT_EQ(mm.resident_blocks(), 1u);
}

TEST(MemoryModule, MaskedWritebackMergesOnlyDirtyWords) {
  // Two nodes wrote different words of the same block; both write back with
  // per-word dirty bits. Neither update may be lost (paper section 3,
  // issue 6).
  MemoryModule mm(4, 1, 4);
  net::BlockData from_a;
  from_a.count = 4;
  from_a.words = {1, 99, 99, 99};
  mm.write_block_masked(5, from_a, 0b0001);  // only word 0 is dirty
  net::BlockData from_b;
  from_b.count = 4;
  from_b.words = {88, 88, 88, 2};
  mm.write_block_masked(5, from_b, 0b1000);  // only word 3 is dirty
  EXPECT_EQ(mm.read_word(5, 0), 1u);
  EXPECT_EQ(mm.read_word(5, 1), 0u);
  EXPECT_EQ(mm.read_word(5, 2), 0u);
  EXPECT_EQ(mm.read_word(5, 3), 2u);
}

TEST(MemoryModule, EmptyMaskWritesNothing) {
  MemoryModule mm(4, 1, 4);
  net::BlockData d;
  d.count = 4;
  d.words = {7, 7, 7, 7};
  mm.write_block_masked(3, d, 0);
  EXPECT_EQ(mm.resident_blocks(), 0u);
}

TEST(MemoryModule, OccupySerializesRequests) {
  MemoryModule mm(4, 1, 4);
  EXPECT_EQ(mm.occupy(10, 4), 14u);
  EXPECT_EQ(mm.occupy(10, 4), 18u) << "second request queues behind the first";
  EXPECT_EQ(mm.occupy(100, 2), 102u) << "idle module starts immediately";
  EXPECT_EQ(mm.busy_until(), 102u);
}

}  // namespace
}  // namespace bcsim::mem
