// Barrier tests: the hardware (CBL) barrier with chained release and the
// software sense-reversing central barrier, on both machines.
#include <gtest/gtest.h>

#include <vector>

#include "core/sync/barrier.hpp"
#include "test_util.hpp"

namespace bcsim {
namespace {

using core::BarrierImpl;
using core::Machine;
using core::MachineConfig;
using core::Processor;
using test::paper_config;
using test::run_all;
using test::small_config;

struct BarrierParam {
  BarrierImpl impl;
  bool paper_machine;
};

class BarrierCorrectness : public ::testing::TestWithParam<BarrierParam> {
 protected:
  MachineConfig config(std::uint32_t n) const {
    auto cfg = GetParam().paper_machine ? paper_config(n) : small_config(n);
    cfg.barrier_impl = GetParam().impl;
    cfg.network = core::NetworkKind::kOmega;
    return cfg;
  }
};

TEST_P(BarrierCorrectness, NoOneCrossesEarly) {
  constexpr std::uint32_t n = 8;
  Machine m(config(n));
  auto alloc = m.make_allocator(200);
  auto bar = sync::make_barrier(GetParam().impl, alloc, n);
  constexpr int kPhases = 6;
  std::vector<int> phase_of(n, 0);
  bool violation = false;
  auto prog = [&](Processor& p) -> sim::Task {
    auto& rng = p.rng();
    for (int ph = 0; ph < kPhases; ++ph) {
      co_await p.compute(1 + rng.next_below(200));  // skewed arrivals
      phase_of[p.id()] = ph + 1;
      co_await bar->wait(p);
      // After the barrier, every processor must have finished this phase.
      for (std::uint32_t j = 0; j < n; ++j) {
        if (phase_of[j] < ph + 1) violation = true;
      }
    }
  };
  for (NodeId i = 0; i < n; ++i) m.spawn(prog(m.processor(i)));
  run_all(m);
  EXPECT_FALSE(violation) << "a processor crossed the barrier early";
}

TEST_P(BarrierCorrectness, ReusableAcrossManyPhases) {
  constexpr std::uint32_t n = 4;
  Machine m(config(n));
  auto alloc = m.make_allocator(200);
  auto bar = sync::make_barrier(GetParam().impl, alloc, n);
  int crossings = 0;
  auto prog = [&](Processor& p) -> sim::Task {
    for (int ph = 0; ph < 20; ++ph) {
      co_await bar->wait(p);
      ++crossings;
    }
  };
  for (NodeId i = 0; i < n; ++i) m.spawn(prog(m.processor(i)));
  run_all(m);
  EXPECT_EQ(crossings, 80);
}

INSTANTIATE_TEST_SUITE_P(
    Impls, BarrierCorrectness,
    ::testing::Values(BarrierParam{BarrierImpl::kCbl, true},
                      BarrierParam{BarrierImpl::kCentral, true},
                      BarrierParam{BarrierImpl::kCentral, false},
                      BarrierParam{BarrierImpl::kTree, true},
                      BarrierParam{BarrierImpl::kTree, false}),
    [](const auto& pinfo) {
      std::string name(core::to_string(pinfo.param.impl));
      name += pinfo.param.paper_machine ? "OnRuMachine" : "OnWbiMachine";
      return name;
    });

TEST(CblBarrier, LastArriverReleasesImmediately) {
  constexpr std::uint32_t n = 4;
  Machine m(paper_config(n));
  auto alloc = m.make_allocator(200);
  sync::CblBarrier bar(alloc, n);
  std::vector<Tick> wait_costs(n);
  auto prog = [&](Processor& p, Tick arrive_at) -> sim::Task {
    co_await p.compute(arrive_at);
    const Tick t0 = p.simulator().now();
    co_await bar.wait(p);
    wait_costs[p.id()] = p.simulator().now() - t0;
  };
  for (NodeId i = 0; i < n; ++i) {
    m.spawn(prog(m.processor(i), i == 3 ? 1000 : 10 * static_cast<Tick>(i)));
  }
  run_all(m);
  // Early arrivers waited out the straggler; the straggler only paid the
  // round trip.
  EXPECT_GT(wait_costs[0], 800u);
  EXPECT_LT(wait_costs[3], 200u);
}

TEST(CblBarrier, ChainedReleaseCountsMessages) {
  constexpr std::uint32_t n = 8;
  Machine m(paper_config(n));
  auto alloc = m.make_allocator(200);
  sync::CblBarrier bar(alloc, n);
  auto prog = [&](Processor& p) -> sim::Task { co_await bar.wait(p); };
  for (NodeId i = 0; i < n; ++i) m.spawn(prog(m.processor(i)));
  run_all(m);
  // Paper Table 3: barrier request = 2 messages per processor (arrive +
  // ack) and barrier notify ~ n chained messages total.
  EXPECT_EQ(m.stats().counter_value("net.msg.BarArrive"), n);
  EXPECT_EQ(m.stats().counter_value("net.msg.BarArriveAck"), n);
  EXPECT_EQ(m.stats().counter_value("net.msg.BarRelease"), n - 1u);
}

TEST(CblBarrier, TwoIndependentBarriersDontInterfere) {
  constexpr std::uint32_t n = 8;  // two groups of 4
  Machine m(paper_config(n));
  auto alloc = m.make_allocator(200);
  sync::CblBarrier bar_a(alloc, 4);
  sync::CblBarrier bar_b(alloc, 4);
  int crossings = 0;
  auto prog = [&](Processor& p, sync::CblBarrier& bar) -> sim::Task {
    for (int ph = 0; ph < 5; ++ph) {
      co_await bar.wait(p);
      ++crossings;
    }
  };
  for (NodeId i = 0; i < 4; ++i) m.spawn(prog(m.processor(i), bar_a));
  for (NodeId i = 4; i < 8; ++i) m.spawn(prog(m.processor(i), bar_b));
  run_all(m);
  EXPECT_EQ(crossings, 40);
}

}  // namespace
}  // namespace bcsim
