// Pins the event queue's observable behavior to the original representation.
//
// The kernel's EventQueue was rewritten from a single binary heap of
// std::function events to a bucketed calendar queue with a small-buffer
// callable (sim/event_queue.hpp). The rewrite is only legal if it is
// *bit-identical*: every (tick, key, seq) total order the old heap produced,
// the new queue must reproduce exactly, under every schedule seed, including
// events pushed while their tick is being drained. ReferenceEventQueue below
// is a line-for-line copy of the pre-rewrite implementation, kept as the
// oracle; the tests drive both with identical operation scripts and demand
// identical firing orders.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/machine.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "workload/work_queue_model.hpp"

namespace bcsim::sim {
namespace {

/// The pre-rewrite EventQueue: one binary heap of (tick, key, seq,
/// std::function). Copied verbatim (modulo the class name) to serve as the
/// ordering oracle.
class ReferenceEventQueue {
 public:
  using Fn = std::function<void()>;

  void set_schedule_seed(std::uint64_t seed) noexcept { schedule_seed_ = seed; }

  std::uint64_t push(Tick at, Fn fn) {
    heap_.push_back(Item{at, tie_key(next_seq_), next_seq_, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    return next_seq_++;
  }

  std::uint64_t push_channel(Tick at, std::uint64_t channel, Fn fn) {
    const std::uint64_t key =
        (schedule_seed_ == 0)
            ? next_seq_
            : SplitMix64(schedule_seed_ ^ (channel * 0x9e3779b97f4a7c15ULL)).next();
    heap_.push_back(Item{at, key, next_seq_, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    return next_seq_++;
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }

  [[nodiscard]] std::pair<Tick, Fn> pop() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Item item = std::move(heap_.back());
    heap_.pop_back();
    return {item.at, std::move(item.fn)};
  }

  void clear() noexcept { heap_.clear(); }

 private:
  struct Item {
    Tick at;
    std::uint64_t key;
    std::uint64_t seq;
    Fn fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      if (a.key != b.key) return a.key > b.key;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] std::uint64_t tie_key(std::uint64_t seq) const noexcept {
    if (schedule_seed_ == 0) return seq;
    return SplitMix64(schedule_seed_ ^ (seq * 0x9e3779b97f4a7c15ULL)).next();
  }

  std::vector<Item> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t schedule_seed_ = 0;
};

/// One scripted operation: push (possibly on a channel) or pop-and-fire.
struct Op {
  enum Kind { kPush, kPushChannel, kPop } kind;
  Tick at = 0;
  std::uint64_t channel = 0;
};

/// Deterministic op script: bursts of pushes with clustered ticks (many
/// same-tick collisions), interleaved with drains, some ops on channels.
std::vector<Op> make_script(std::uint64_t rng_seed, int n_ops) {
  Rng rng(rng_seed);
  std::vector<Op> ops;
  Tick now = 0;
  int pending = 0;
  for (int i = 0; i < n_ops; ++i) {
    const std::uint64_t dice = rng.next_below(10);
    if (dice < 6 || pending == 0) {
      // Cluster ticks so same-tick ties dominate the ordering.
      const Tick at = now + rng.next_below(4);
      if (rng.chance(0.3)) {
        ops.push_back({Op::kPushChannel, at, rng.next_below(5)});
      } else {
        ops.push_back({Op::kPush, at, 0});
      }
      ++pending;
    } else {
      ops.push_back({Op::kPop});
      --pending;
      if (rng.chance(0.25)) ++now;  // time advances between some drains
    }
  }
  for (; pending > 0; --pending) ops.push_back({Op::kPop});
  return ops;
}

/// Runs the script against any queue with the EventQueue interface and
/// returns the firing order as (tick, event-id) pairs. Every pushed callback
/// records its own id; pops fire the callback immediately (as the simulator
/// main loop does).
template <typename Queue>
std::vector<std::pair<Tick, int>> run_script(Queue& q, const std::vector<Op>& ops) {
  std::vector<std::pair<Tick, int>> fired;
  int next_id = 0;
  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::kPush: {
        const int id = next_id++;
        // Tick recorded as kNever here; the pop below patches in the tick
        // the queue actually reported.
        q.push(op.at, [&fired, id] { fired.emplace_back(kNever, id); });
        break;
      }
      case Op::kPushChannel: {
        const int id = next_id++;
        q.push_channel(op.at, op.channel, [&fired, id] { fired.emplace_back(kNever, id); });
        break;
      }
      case Op::kPop: {
        auto [at, fn] = q.pop();
        fn();
        fired.back().first = at;  // patch the recorded tick
        break;
      }
    }
  }
  return fired;
}

using SeedList = std::vector<std::uint64_t>;
const SeedList kSeeds = {0, 1, 42, 7'777, 0xdeadbeefULL};

TEST(EventRepr, PushAllThenDrainMatchesReferenceAcrossSeeds) {
  for (const std::uint64_t seed : kSeeds) {
    EventQueue q;
    ReferenceEventQueue ref;
    q.set_schedule_seed(seed);
    ref.set_schedule_seed(seed);
    // All pushes first, then a full drain: the pure heap-order case.
    std::vector<Op> ops;
    Rng rng(99);
    for (int i = 0; i < 500; ++i) {
      if (rng.chance(0.3)) {
        ops.push_back({Op::kPushChannel, rng.next_below(50), rng.next_below(4)});
      } else {
        ops.push_back({Op::kPush, rng.next_below(50), 0});
      }
    }
    for (int i = 0; i < 500; ++i) ops.push_back({Op::kPop});
    EXPECT_EQ(run_script(q, ops), run_script(ref, ops)) << "schedule seed " << seed;
  }
}

TEST(EventRepr, InterleavedPushPopMatchesReferenceAcrossSeeds) {
  for (const std::uint64_t seed : kSeeds) {
    for (const std::uint64_t script : {11ULL, 22ULL, 33ULL}) {
      EventQueue q;
      ReferenceEventQueue ref;
      q.set_schedule_seed(seed);
      ref.set_schedule_seed(seed);
      const auto ops = make_script(script, 800);
      EXPECT_EQ(run_script(q, ops), run_script(ref, ops))
          << "schedule seed " << seed << ", script " << script;
    }
  }
}

TEST(EventRepr, MidDrainSameTickPushesMatchReference) {
  // Callbacks that push more work at the *same* tick while that tick is
  // being drained — the bucketed queue must weave them into the unfired
  // tail exactly where the old heap would have fired them.
  for (const std::uint64_t seed : kSeeds) {
    auto drive = [seed](auto& q) {
      q.set_schedule_seed(seed);
      std::vector<int> fired;
      int next_id = 0;
      std::function<void(int)> spawn = [&](int id) {
        fired.push_back(id);
        if (id % 3 == 0 && next_id < 200) {
          const int a = next_id++;
          q.push(7, [&spawn, a] { spawn(a); });
        }
        if (id % 5 == 0 && next_id < 200) {
          const int b = next_id++;
          q.push_channel(7, 2, [&spawn, b] { spawn(b); });
        }
      };
      for (int i = 0; i < 40; ++i) {
        const int id = next_id++;
        q.push(7, [&spawn, id] { spawn(id); });
      }
      while (!q.empty()) q.pop().second();
      return fired;
    };
    EventQueue q;
    ReferenceEventQueue ref;
    EXPECT_EQ(drive(q), drive(ref)) << "schedule seed " << seed;
  }
}

TEST(EventRepr, EarlierTickPushMidDrainStillFiresFirst) {
  // The raw queue API allows pushing an event earlier than the tick being
  // drained (the simulator never does, but tests and tools may). The
  // earlier event must pop before the remainder of the current tick.
  EventQueue q;
  std::vector<std::pair<Tick, int>> fired;
  q.push(10, [&] { fired.emplace_back(10, 0); });
  q.push(10, [&q, &fired] {
    fired.emplace_back(10, 1);
    q.push(5, [&fired] { fired.emplace_back(5, 2); });
  });
  q.push(10, [&] { fired.emplace_back(10, 3); });
  // Fire id 0 and id 1; id 1 schedules id 2 at tick 5 < 10.
  while (!q.empty()) {
    auto [at, fn] = q.pop();
    (void)at;
    fn();
  }
  const std::vector<std::pair<Tick, int>> want = {{10, 0}, {10, 1}, {5, 2}, {10, 3}};
  EXPECT_EQ(fired, want);
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventRepr, ClearResetsSequenceNumbering) {
  // A cleared queue must behave exactly like a fresh one: the same pushes
  // must fire in the same order. Before the fix, clear() left next_seq_
  // at its high-water mark, so a nonzero schedule seed hashed different
  // (seed, seq) pairs after a clear and the "same" program fired in a
  // different order.
  const std::uint64_t seed = 42;
  auto record = [&](EventQueue& q) {
    std::vector<int> order;
    for (int i = 0; i < 64; ++i) q.push(3, [&order, i] { order.push_back(i); });
    while (!q.empty()) q.pop().second();
    return order;
  };
  EventQueue fresh;
  fresh.set_schedule_seed(seed);
  const auto want = record(fresh);

  EventQueue recycled;
  recycled.set_schedule_seed(seed);
  for (int i = 0; i < 37; ++i) recycled.push(1, [] {});
  for (int i = 0; i < 10; ++i) (void)recycled.pop();
  recycled.clear();
  EXPECT_TRUE(recycled.empty());
  EXPECT_EQ(record(recycled), want);
}

TEST(EventRepr, ClearKeepsScheduleSeed) {
  EventQueue q;
  q.set_schedule_seed(1234);
  q.push(1, [] {});
  q.clear();
  EXPECT_EQ(q.schedule_seed(), 1234u);
}

TEST(EventRepr, MachineDigestIsRerunStable) {
  // Whole-machine determinism: two identical runs must agree on every
  // statistic (the digest the bench harness and CI gate on).
  auto run_once = [] {
    core::MachineConfig cfg;
    cfg.n_nodes = 8;
    cfg.data_protocol = core::DataProtocol::kReadUpdate;
    cfg.consistency = core::Consistency::kBuffered;
    cfg.lock_impl = core::LockImpl::kCbl;
    cfg.barrier_impl = core::BarrierImpl::kCbl;
    cfg.validate();
    core::Machine m(cfg);
    workload::WorkQueueConfig wq;
    wq.total_tasks = 48;
    wq.grain = 15;
    workload::WorkQueueWorkload w(m, wq);
    w.spawn_all(m);
    (void)m.run(1'000'000'000ULL);
    return m.stats_digest();
  };
  const std::uint64_t a = run_once();
  const std::uint64_t b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, 0u);
}

}  // namespace
}  // namespace bcsim::sim
