// Network layer tests: delivery, local bypass, FIFO per source-destination
// pair, Omega contention, flit accounting.
#include <gtest/gtest.h>

#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace bcsim::net {
namespace {

struct NetFixture : ::testing::Test {
  sim::Simulator simulator;
  sim::StatsRegistry stats;

  Message make_msg(NodeId src, NodeId dst, MsgType t = MsgType::kGetS) {
    Message m;
    m.src = src;
    m.dst = dst;
    m.unit = Unit::kMemory;
    m.type = t;
    return m;
  }
};

TEST_F(NetFixture, IdealDeliversAtFixedLatency) {
  IdealNetwork net(simulator, stats, 4, 7);
  std::vector<Tick> arrivals;
  net.attach(2, Unit::kMemory, [&](const Message&) { arrivals.push_back(simulator.now()); });
  net.send(make_msg(0, 2));
  simulator.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], 7u);
}

TEST_F(NetFixture, LocalTrafficBypassesNetwork) {
  IdealNetwork net(simulator, stats, 4, 50);
  Tick arrival = 0;
  net.attach(1, Unit::kCache, [&](const Message&) { arrival = simulator.now(); });
  Message m = make_msg(1, 1, MsgType::kDataS);
  m.unit = Unit::kCache;
  net.send(std::move(m));
  simulator.run();
  EXPECT_EQ(arrival, Network::kLocalLatency);
  EXPECT_EQ(stats.counter_value("net.local"), 1u);
  EXPECT_EQ(stats.counter_value("net.remote"), 0u);
}

TEST_F(NetFixture, UnattachedEndpointThrows) {
  IdealNetwork net(simulator, stats, 2, 1);
  net.send(make_msg(0, 1));
  EXPECT_THROW(simulator.run(), std::logic_error);
}

TEST_F(NetFixture, OmegaHeaderLatencyIsStagesTimesSwitchDelay) {
  // 8 endpoints -> 3 stages; control message = 1 flit.
  OmegaNetwork net(simulator, stats, 8, 2);
  Tick arrival = 0;
  net.attach(5, Unit::kMemory, [&](const Message&) { arrival = simulator.now(); });
  net.send(make_msg(0, 5));
  simulator.run();
  EXPECT_EQ(arrival, 3u * 2u);  // 3 stages x switch_delay 2, 1-flit message
}

TEST_F(NetFixture, OmegaSerializesConflictingMessages) {
  // Both messages target node 3: they share at least the final output
  // port, so the second must queue behind the first.
  OmegaNetwork net(simulator, stats, 8, 1);
  std::vector<Tick> arrivals;
  net.attach(3, Unit::kMemory, [&](const Message&) { arrivals.push_back(simulator.now()); });
  net.send(make_msg(0, 3));
  net.send(make_msg(4, 3));
  simulator.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_GT(arrivals[1], arrivals[0]);
  EXPECT_GT(stats.counter_value("net.contention_cycles"), 0u);
}

TEST_F(NetFixture, OmegaDisjointPathsDontConflict) {
  OmegaNetwork net(simulator, stats, 8, 1);
  std::vector<Tick> arrivals;
  for (NodeId d : {1u, 6u}) {
    net.attach(d, Unit::kMemory, [&](const Message&) { arrivals.push_back(simulator.now()); });
  }
  net.send(make_msg(0, 1));
  net.send(make_msg(7, 6));
  simulator.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], arrivals[1]);  // no shared port on these paths
}

TEST_F(NetFixture, SameSrcDstPairIsFifo) {
  // FIFO per (src,dst) is a protocol correctness requirement (e.g. DataS
  // before a later Inv); verify it holds under load.
  OmegaNetwork net(simulator, stats, 16, 1);
  std::vector<Word> order;
  net.attach(9, Unit::kCache, [&](const Message& m) { order.push_back(m.value); });
  for (Word i = 0; i < 50; ++i) {
    Message m = make_msg(2, 9, MsgType::kDataS);
    m.unit = Unit::kCache;
    m.value = i;
    if (i % 3 == 0) m.data.count = 4;  // mix sizes
    net.send(std::move(m));
  }
  simulator.run();
  ASSERT_EQ(order.size(), 50u);
  for (Word i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST_F(NetFixture, BlockMessagesChargeMoreFlits) {
  OmegaNetwork net(simulator, stats, 4, 1);
  net.set_block_words(4);
  net.attach(2, Unit::kMemory, [](const Message&) {});
  Message small = make_msg(1, 2);
  Message big = make_msg(1, 2, MsgType::kDataS);
  big.data.count = 4;
  EXPECT_EQ(net.flits_of(small), 1u);
  EXPECT_EQ(net.flits_of(big), 5u);  // 1 header + 4 words
  Message word = make_msg(1, 2, MsgType::kWriteGlobal);
  EXPECT_EQ(net.flits_of(word), 2u);
}

TEST_F(NetFixture, CrossbarContendsOnlyAtDestination) {
  CrossbarNetwork net(simulator, stats, 8, 3);
  std::vector<Tick> arrivals;
  net.attach(5, Unit::kMemory, [&](const Message&) { arrivals.push_back(simulator.now()); });
  net.attach(6, Unit::kMemory, [&](const Message&) { arrivals.push_back(simulator.now()); });
  net.send(make_msg(0, 5));
  net.send(make_msg(1, 6));  // different destinations: no conflict
  simulator.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], arrivals[1]);

  arrivals.clear();
  net.send(make_msg(0, 5));
  net.send(make_msg(1, 5));  // same destination: serialized
  simulator.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_GT(arrivals[1], arrivals[0]);
}

TEST_F(NetFixture, MessageCountersTrackTypes) {
  IdealNetwork net(simulator, stats, 4, 1);
  net.attach(1, Unit::kMemory, [](const Message&) {});
  net.send(make_msg(0, 1, MsgType::kGetS));
  net.send(make_msg(0, 1, MsgType::kGetX));
  net.send(make_msg(0, 1, MsgType::kGetS));
  simulator.run();
  EXPECT_EQ(stats.counter_value("net.messages"), 3u);
  EXPECT_EQ(stats.counter_value("net.msg.GetS"), 2u);
  EXPECT_EQ(stats.counter_value("net.msg.GetX"), 1u);
}

// Property sweep: routing must deliver between every src/dst pair for a
// range of network widths, including non-power-of-two node counts.
class OmegaAllPairs : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(OmegaAllPairs, EveryPairDelivers) {
  const std::uint32_t n = GetParam();
  sim::Simulator simulator;
  sim::StatsRegistry stats;
  OmegaNetwork net(simulator, stats, n, 1);
  std::vector<int> received(n, 0);
  for (NodeId d = 0; d < n; ++d) {
    net.attach(d, Unit::kMemory, [&received, d](const Message& m) {
      EXPECT_EQ(m.dst, d);
      ++received[d];
    });
  }
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      Message m;
      m.src = s;
      m.dst = d;
      m.unit = Unit::kMemory;
      net.send(std::move(m));
    }
  }
  simulator.run();
  for (NodeId d = 0; d < n; ++d) EXPECT_EQ(received[d], static_cast<int>(n));
}

INSTANTIATE_TEST_SUITE_P(Widths, OmegaAllPairs,
                         ::testing::Values(2u, 3u, 4u, 7u, 8u, 16u, 33u, 64u));

// --- 2D mesh ---

TEST_F(NetFixture, MeshLatencyIsManhattanDistance) {
  MeshNetwork net(simulator, stats, 16, 1);  // 4x4 grid
  ASSERT_EQ(net.columns(), 4u);
  ASSERT_EQ(net.rows(), 4u);
  Tick arrival = 0;
  // node 0 = (0,0), node 15 = (3,3): 6 hops.
  net.attach(15, Unit::kMemory, [&](const Message&) { arrival = simulator.now(); });
  net.send(make_msg(0, 15));
  simulator.run();
  EXPECT_EQ(arrival, 6u);
}

TEST_F(NetFixture, MeshSharedLinkSerializes) {
  MeshNetwork net(simulator, stats, 16, 1);
  std::vector<Tick> arrivals;
  net.attach(3, Unit::kMemory, [&](const Message&) { arrivals.push_back(simulator.now()); });
  // Both routes traverse the (2,0)->(3,0) +x link under XY routing.
  net.send(make_msg(0, 3));
  net.send(make_msg(1, 3));
  simulator.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_GT(arrivals[1], arrivals[0]);
  EXPECT_GT(stats.counter_value("net.contention_cycles"), 0u);
}

TEST_F(NetFixture, MeshDisjointRowsDontConflict) {
  MeshNetwork net(simulator, stats, 16, 1);
  std::vector<Tick> arrivals;
  net.attach(1, Unit::kMemory, [&](const Message&) { arrivals.push_back(simulator.now()); });
  net.attach(5, Unit::kMemory, [&](const Message&) { arrivals.push_back(simulator.now()); });
  net.send(make_msg(0, 1));  // row 0
  net.send(make_msg(4, 5));  // row 1
  simulator.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], arrivals[1]);
}

class MeshAllPairs : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MeshAllPairs, EveryPairDelivers) {
  const std::uint32_t n = GetParam();
  sim::Simulator simulator;
  sim::StatsRegistry stats;
  MeshNetwork net(simulator, stats, n, 1);
  std::vector<int> received(n, 0);
  for (NodeId d = 0; d < n; ++d) {
    net.attach(d, Unit::kMemory, [&received, d](const Message& m) {
      EXPECT_EQ(m.dst, d);
      ++received[d];
    });
  }
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      Message m;
      m.src = s;
      m.dst = d;
      m.unit = Unit::kMemory;
      net.send(std::move(m));
    }
  }
  simulator.run();
  for (NodeId d = 0; d < n; ++d) EXPECT_EQ(received[d], static_cast<int>(n));
}

INSTANTIATE_TEST_SUITE_P(Widths, MeshAllPairs, ::testing::Values(2u, 5u, 9u, 16u, 63u));

}  // namespace
}  // namespace bcsim::net
