// Memory-model litmus tests: the buffered-consistency model must be
// demonstrably WEAK where the paper allows (no flush: a reader can see the
// flag before the data) and demonstrably ORDERED where the paper requires
// (CP-Synch discipline: flush before the flag/lock release makes the data
// visible first). These tests pin the semantics, not just the plumbing.
#include <gtest/gtest.h>

#include <vector>

#include "core/sync/barrier.hpp"
#include "test_util.hpp"

namespace bcsim {
namespace {

using core::Machine;
using core::Processor;
using test::paper_config;
using test::run_all;

// Data and flag live in different blocks with different home modules, so
// their write-global completions are genuinely unordered unless flushed.
constexpr Addr kData = 0;   // home module 0
constexpr Addr kFlag = 4;   // block 1 -> home module 1 (n >= 2)

struct Observation {
  bool saw_flag = false;
  Word data = 0;
};

// Message-passing litmus on the subscription fabric: the reader (and a few
// bystanders) READ-UPDATE both blocks; the writer stores data, then flag.
// The data block's subscriber chain is longer than the flag's (bystanders
// subscribe to data only, after the reader, so the reader sits at the TAIL
// of data's chain but at the head of flag's), so without a flush the
// flag's update reaches the reader while the data update is still hopping
// down the chain — the weak outcome the model permits. With the CP-Synch
// flush, the data write is globally performed (chain fully delivered)
// before the flag write is even issued, so the weak outcome is impossible.
Observation run_mp(bool writer_flushes) {
  auto cfg = paper_config(8);
  cfg.network = core::NetworkKind::kOmega;
  Machine m(cfg);
  Observation obs;
  int subscribed = 0;
  struct Subscriber {
    int& subscribed;
    bool also_flag;
    sim::Task operator()(Processor& p) const {
      co_await p.read_update(kData);
      if (also_flag) co_await p.read_update(kFlag);
      ++subscribed;
    }
  };
  struct Writer {
    bool flush;
    sim::Task operator()(Processor& p) const {
      co_await p.compute(200);  // let everyone subscribe first
      co_await p.write_global(kData, 42);
      if (flush) co_await p.flush_buffer();  // CP-Synch discipline
      co_await p.write_global(kFlag, 1);
      co_await p.flush_buffer();
    }
  } writer{writer_flushes};
  struct Reader {
    Observation& obs;
    sim::Task operator()(Processor& p) const {
      co_await p.read_update(kFlag);
      co_await p.read_update(kData);
      for (;;) {
        const Word f = co_await p.read_update(kFlag);
        if (f == 1) break;
        co_await p.wait_word_change(kFlag, f);
      }
      obs.saw_flag = true;
      // Local copy of the subscribed data block: this is what the machine
      // actually shows the reader the instant it learns of the flag.
      obs.data = co_await p.read_update(kData);
    }
  } reader{obs};
  Subscriber bystander{subscribed, false};
  m.spawn(reader(m.processor(1)));
  m.run();  // reader subscribes first -> tail of data's delivery chain
  for (NodeId i = 2; i < 8; ++i) m.spawn(bystander(m.processor(i)));
  m.run();
  EXPECT_EQ(subscribed, 6);
  m.spawn(writer(m.processor(0)));
  run_all(m);
  return obs;
}

TEST(Litmus, MessagePassingWithFlushIsAlwaysOrdered) {
  // With the CP-Synch flush, no interleaving may show flag-without-data.
  const auto obs = run_mp(/*writer_flushes=*/true);
  ASSERT_TRUE(obs.saw_flag);
  EXPECT_EQ(obs.data, 42u) << "stale data observed past a flushed flag";
}

TEST(Litmus, MessagePassingWithoutFlushExhibitsWeakBehavior) {
  // Without the flush the model is allowed to reorder the completions —
  // and a correct implementation of a weak model should actually exhibit
  // the weak outcome: the flag's one-hop update beats the data's
  // seven-hop chain to the reader.
  const auto obs = run_mp(/*writer_flushes=*/false);
  ASSERT_TRUE(obs.saw_flag);
  EXPECT_NE(obs.data, 42u)
      << "buffered consistency never reordered unflushed writes - the model "
         "would be indistinguishable from SC and Figures 6-7 meaningless";
}

TEST(Litmus, LockHandoffOrdersCriticalSectionWrites) {
  // CBL + CP-Synch release: everything written (globally) inside the
  // critical section is visible to the next lock holder.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    auto cfg = paper_config(4);
    cfg.seed = seed;
    Machine m(cfg);
    const Addr lock = 16;
    const Addr remote = 64;  // not in the lock block: needs the flush
    Word seen = 0;
    struct First {
      Addr lock, remote;
      sim::Task operator()(Processor& p) const {
        co_await p.write_lock(lock);
        co_await p.write_global(remote, 7);
        co_await p.flush_buffer();
        co_await p.unlock(lock);
      }
    } first{lock, remote};
    struct Second {
      Addr lock, remote;
      Word& seen;
      sim::Task operator()(Processor& p) const {
        co_await p.compute(5);
        co_await p.write_lock(lock);
        seen = co_await p.read_global(remote);
        co_await p.unlock(lock);
      }
    } second{lock, remote, seen};
    m.spawn(first(m.processor(0)));
    m.spawn(second(m.processor(1)));
    run_all(m);
    EXPECT_EQ(seen, 7u) << "seed " << seed;
  }
}

TEST(Litmus, BarrierSeparatesPhasesOnBothMachines) {
  // All writes of phase k are visible to all readers in phase k+1,
  // through the CBL barrier (whose wait() flushes).
  auto cfg = paper_config(8);
  Machine m(cfg);
  auto alloc = m.make_allocator(100);
  sync::CblBarrier bar(alloc, 8);
  std::vector<Word> sums(8, 0);
  struct Prog {
    sync::CblBarrier& bar;
    std::vector<Word>& sums;
    Addr base;
    sim::Task operator()(Processor& p) const {
      co_await p.write_global(base + p.id(), p.id() + 1);
      co_await bar.wait(p);
      Word s = 0;
      for (NodeId j = 0; j < 8; ++j) s += co_await p.read_global(base + j);
      sums[p.id()] = s;
    }
  } prog{bar, sums, 0};
  for (NodeId i = 0; i < 8; ++i) m.spawn(prog(m.processor(i)));
  run_all(m);
  for (NodeId i = 0; i < 8; ++i) EXPECT_EQ(sums[i], 36u) << "node " << i;
}

// ---------------------------------------------------------------------------
// Store-buffer litmus (SB): P0 writes x then reads y; P1 writes y then
// reads x. Both-read-zero is the signature weak outcome of buffered
// writes; a CP-Synch flush between the write and the read forbids it.
// Each processor reads its *subscribed local copy* of the other's
// variable, so the unflushed read deterministically beats the update's
// chain hop — no scheduling luck involved.
// ---------------------------------------------------------------------------

struct SbOutcome {
  Word r0 = ~Word{0};
  Word r1 = ~Word{0};
};

SbOutcome run_sb(bool flushed) {
  auto cfg = paper_config(4);
  Machine m(cfg);
  SbOutcome out;
  struct Subscribe {
    Addr a;
    sim::Task operator()(Processor& p) const { co_await p.read_update(a); }
  };
  // P0 subscribes to y, P1 to x, settled before the race starts.
  Subscribe sub_y{kFlag};
  Subscribe sub_x{kData};
  m.spawn(sub_y(m.processor(0)));
  m.spawn(sub_x(m.processor(1)));
  m.run();
  struct Side {
    Addr mine, other;
    bool flush;
    Word& r;
    sim::Task operator()(Processor& p) const {
      co_await p.write_global(mine, 1);
      if (flush) co_await p.flush_buffer();
      r = co_await p.read_update(other);  // local subscribed copy
    }
  };
  Side side0{kData, kFlag, flushed, out.r0};
  Side side1{kFlag, kData, flushed, out.r1};
  m.spawn(side0(m.processor(0)));
  m.spawn(side1(m.processor(1)));
  run_all(m);
  return out;
}

TEST(Litmus, StoreBufferWithFlushForbidsBothZero) {
  // After a flush the write is globally performed — delivered to every
  // subscriber — before the read issues, so at least one side must see
  // the other's write.
  const auto out = run_sb(/*flushed=*/true);
  EXPECT_FALSE(out.r0 == 0u && out.r1 == 0u)
      << "both sides read 0 past a flush: CP-Synch ordering broken";
}

TEST(Litmus, StoreBufferWithoutFlushReadsZeroBothSides) {
  // Unflushed, each local read beats the other side's chain hop: the
  // buffered model must actually exhibit its weak outcome.
  const auto out = run_sb(/*flushed=*/false);
  EXPECT_EQ(out.r0, 0u) << "unflushed SB read unexpectedly ordered";
  EXPECT_EQ(out.r1, 0u) << "unflushed SB read unexpectedly ordered";
}

// ---------------------------------------------------------------------------
// IRIW litmus: writers W1 (x=1) and W2 (y=1); reader R1 looks at x then y,
// reader R2 at y then x. Subscription chains are deliberately asymmetric —
// R1 heads x's chain but tails y's, R2 the mirror image — so each reader
// sees "its" write first and the two disagree on the write order: update
// propagation is visibly non-atomic, which buffered consistency permits.
// READ-GLOBAL reads (straight to the home memory module) restore a
// per-location serialization that makes the disagreement impossible.
// ---------------------------------------------------------------------------

struct IriwOutcome {
  Word r1_second = ~Word{0};  // R1's read of y, taken the moment it sees x=1
  Word r2_second = ~Word{0};  // R2's read of x, taken the moment it sees y=1
};

TEST(Litmus, IriwSubscriptionChainsExhibitNonAtomicUpdates) {
  auto cfg = paper_config(8);
  Machine m(cfg);
  IriwOutcome out;
  struct Subscribe {
    Addr a;
    sim::Task operator()(Processor& p) const { co_await p.read_update(a); }
  };
  // Subscribers push onto the head of the chain, so subscribe in reverse
  // of the delivery order we want. x's chain: R1(2), 4, 5, 6, 7, R2(3).
  for (const NodeId n : {3u, 7u, 6u, 5u, 4u, 2u}) {
    Subscribe sub{kData};
    m.spawn(sub(m.processor(n)));
    m.run();
  }
  // y's chain: R2(3), 4, 5, 6, 7, R1(2).
  for (const NodeId n : {2u, 7u, 6u, 5u, 4u, 3u}) {
    Subscribe sub{kFlag};
    m.spawn(sub(m.processor(n)));
    m.run();
  }
  struct Writer {
    Addr a;
    sim::Task operator()(Processor& p) const {
      co_await p.write_global(a, 1);
      co_await p.flush_buffer();
    }
  };
  struct Reader {
    Addr first, second;
    Word& r;
    sim::Task operator()(Processor& p) const {
      for (;;) {
        const Word f = co_await p.read_update(first);
        if (f == 1) break;
        co_await p.wait_word_change(first, f);
      }
      r = co_await p.read_update(second);  // local copy, same instant
    }
  };
  Reader r1{kData, kFlag, out.r1_second};
  Reader r2{kFlag, kData, out.r2_second};
  Writer w1{kData};
  Writer w2{kFlag};
  m.spawn(r1(m.processor(2)));
  m.spawn(r2(m.processor(3)));
  m.spawn(w1(m.processor(0)));
  m.spawn(w2(m.processor(1)));
  run_all(m);
  // Each reader saw its own variable flip while the other update was
  // still mid-chain: the classic IRIW disagreement.
  EXPECT_EQ(out.r1_second, 0u) << "y's update overtook its chain";
  EXPECT_EQ(out.r2_second, 0u) << "x's update overtook its chain";
}

TEST(Litmus, IriwReadGlobalNeverDisagrees) {
  // Memory-direct reads serialize at the home module; the IRIW weak
  // outcome would need R1 to read y at its home before y=1 arrives AND R2
  // to read x before x=1 arrives — after each has already seen the other
  // write performed. Real time forbids it; sweep schedules to probe.
  for (std::uint64_t s = 0; s < 8; ++s) {
    auto cfg = paper_config(8);
    cfg.schedule_seed = s;
    cfg.invariants = sim::InvariantLevel::kQuiesce;
    Machine m(cfg);
    IriwOutcome out;
    struct Writer {
      Addr a;
      sim::Task operator()(Processor& p) const {
        co_await p.compute(40);
        co_await p.write_global(a, 1);
        co_await p.flush_buffer();
      }
    };
    struct Reader {
      Addr first, second;
      Word& r;
      sim::Task operator()(Processor& p) const {
        for (;;) {
          // Bind the awaited value before testing it: gcc 12 miscompiles a
          // co_await inside an unbounded loop's if-condition (the coroutine
          // frame never runs), so keep awaits as standalone statements.
          const Word v = co_await p.read_global(first);
          if (v == 1) break;
          co_await p.compute(3);
        }
        r = co_await p.read_global(second);
      }
    };
    Reader r1{kData, kFlag, out.r1_second};
    Reader r2{kFlag, kData, out.r2_second};
    Writer w1{kData};
    Writer w2{kFlag};
    m.spawn(r1(m.processor(2)));
    m.spawn(r2(m.processor(3)));
    m.spawn(w1(m.processor(0)));
    m.spawn(w2(m.processor(1)));
    run_all(m);
    EXPECT_FALSE(out.r1_second == 0u && out.r2_second == 0u)
        << "IRIW weak outcome through serialized memory reads, seed " << s;
  }
}

// ---------------------------------------------------------------------------
// RESET-UPDATE vs. update propagation: a middle subscriber unsubscribes
// while a writer's updates are streaming down the subscription list. The
// splice must never strand a subscriber or lose an update — checked by
// full invariants at every directory transition plus functional checks on
// the survivors, across schedule seeds x unsubscribe timings.
// ---------------------------------------------------------------------------

TEST(Litmus, ResetUpdateRacingPropagationKeepsSurvivorsCoherent) {
  for (std::uint64_t s = 0; s < 8; ++s) {
    for (const Tick delay : {Tick{0}, Tick{3}, Tick{9}, Tick{15}}) {
      auto cfg = paper_config(4);
      cfg.schedule_seed = s;
      cfg.invariants = sim::InvariantLevel::kFull;
      Machine m(cfg);
      struct Subscribe {
        sim::Task operator()(Processor& p) const { co_await p.read_update(kData); }
      };
      // Chain after phased subscription: head 3, then 2, tail 1 — node 2
      // sits mid-chain, the interesting splice position.
      for (const NodeId n : {1u, 2u, 3u}) {
        Subscribe sub{};
        m.spawn(sub(m.processor(n)));
        m.run();
      }
      struct Writer {
        sim::Task operator()(Processor& p) const {
          for (Word k = 0; k < 10; ++k) co_await p.write_global(kData, 100 + k);
          co_await p.flush_buffer();
        }
      };
      struct Quitter {
        Tick delay;
        sim::Task operator()(Processor& p) const {
          co_await p.compute(delay);
          co_await p.reset_update(kData);  // splice out mid-propagation
        }
      };
      Word seen1 = 0, seen3 = 0;
      struct Survivor {
        Word& seen;
        sim::Task operator()(Processor& p) const {
          for (;;) {
            const Word v = co_await p.read_update(kData);
            if (v == 109) {
              seen = v;
              co_return;
            }
            co_await p.wait_word_change(kData, v);
          }
        }
      };
      Writer writer{};
      Quitter quitter{delay};
      Survivor sur1{seen1};
      Survivor sur3{seen3};
      m.spawn(writer(m.processor(0)));
      m.spawn(quitter(m.processor(2)));
      m.spawn(sur1(m.processor(1)));
      m.spawn(sur3(m.processor(3)));
      run_all(m);
      EXPECT_EQ(seen1, 109u) << "seed " << s << " delay " << delay;
      EXPECT_EQ(seen3, 109u) << "seed " << s << " delay " << delay;
      EXPECT_EQ(m.peek_memory(kData), 109u);
      EXPECT_NO_THROW(m.check_invariants("litmus"));
    }
  }
}

TEST(Litmus, NpSynchLockAcquireDoesNotWaitForPriorWrites) {
  // The paper's headline relaxation: a lock (NP-Synch) may be acquired
  // while earlier global writes are still in flight.
  auto cfg = paper_config(4);
  Machine m(cfg);
  const Addr lock = 16;
  bool pending_at_acquire = false;
  struct Prog {
    Addr lock;
    bool& pending;
    sim::Task operator()(Processor& p) const {
      for (int i = 0; i < 6; ++i) {
        co_await p.write_global(static_cast<Addr>(64 + i * 4), i);
      }
      co_await p.write_lock(lock);  // NP-Synch: no flush required
      pending = p.cache().write_buffer().pending() > 0;
      co_await p.flush_buffer();
      co_await p.unlock(lock);
    }
  } prog{lock, pending_at_acquire};
  m.spawn(prog(m.processor(0)));
  run_all(m);
  EXPECT_TRUE(pending_at_acquire)
      << "acquire should complete while global writes are still pending";
}

}  // namespace
}  // namespace bcsim
