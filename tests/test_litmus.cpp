// Memory-model litmus tests: the buffered-consistency model must be
// demonstrably WEAK where the paper allows (no flush: a reader can see the
// flag before the data) and demonstrably ORDERED where the paper requires
// (CP-Synch discipline: flush before the flag/lock release makes the data
// visible first). These tests pin the semantics, not just the plumbing.
#include <gtest/gtest.h>

#include <vector>

#include "core/sync/barrier.hpp"
#include "test_util.hpp"

namespace bcsim {
namespace {

using core::Machine;
using core::Processor;
using test::paper_config;
using test::run_all;

// Data and flag live in different blocks with different home modules, so
// their write-global completions are genuinely unordered unless flushed.
constexpr Addr kData = 0;   // home module 0
constexpr Addr kFlag = 4;   // block 1 -> home module 1 (n >= 2)

struct Observation {
  bool saw_flag = false;
  Word data = 0;
};

// Message-passing litmus on the subscription fabric: the reader (and a few
// bystanders) READ-UPDATE both blocks; the writer stores data, then flag.
// The data block's subscriber chain is longer than the flag's (bystanders
// subscribe to data only, after the reader, so the reader sits at the TAIL
// of data's chain but at the head of flag's), so without a flush the
// flag's update reaches the reader while the data update is still hopping
// down the chain — the weak outcome the model permits. With the CP-Synch
// flush, the data write is globally performed (chain fully delivered)
// before the flag write is even issued, so the weak outcome is impossible.
Observation run_mp(bool writer_flushes) {
  auto cfg = paper_config(8);
  cfg.network = core::NetworkKind::kOmega;
  Machine m(cfg);
  Observation obs;
  int subscribed = 0;
  struct Subscriber {
    int& subscribed;
    bool also_flag;
    sim::Task operator()(Processor& p) const {
      co_await p.read_update(kData);
      if (also_flag) co_await p.read_update(kFlag);
      ++subscribed;
    }
  };
  struct Writer {
    bool flush;
    sim::Task operator()(Processor& p) const {
      co_await p.compute(200);  // let everyone subscribe first
      co_await p.write_global(kData, 42);
      if (flush) co_await p.flush_buffer();  // CP-Synch discipline
      co_await p.write_global(kFlag, 1);
      co_await p.flush_buffer();
    }
  } writer{writer_flushes};
  struct Reader {
    Observation& obs;
    sim::Task operator()(Processor& p) const {
      co_await p.read_update(kFlag);
      co_await p.read_update(kData);
      for (;;) {
        const Word f = co_await p.read_update(kFlag);
        if (f == 1) break;
        co_await p.wait_word_change(kFlag, f);
      }
      obs.saw_flag = true;
      // Local copy of the subscribed data block: this is what the machine
      // actually shows the reader the instant it learns of the flag.
      obs.data = co_await p.read_update(kData);
    }
  } reader{obs};
  Subscriber bystander{subscribed, false};
  m.spawn(reader(m.processor(1)));
  m.run();  // reader subscribes first -> tail of data's delivery chain
  for (NodeId i = 2; i < 8; ++i) m.spawn(bystander(m.processor(i)));
  m.run();
  EXPECT_EQ(subscribed, 6);
  m.spawn(writer(m.processor(0)));
  run_all(m);
  return obs;
}

TEST(Litmus, MessagePassingWithFlushIsAlwaysOrdered) {
  // With the CP-Synch flush, no interleaving may show flag-without-data.
  const auto obs = run_mp(/*writer_flushes=*/true);
  ASSERT_TRUE(obs.saw_flag);
  EXPECT_EQ(obs.data, 42u) << "stale data observed past a flushed flag";
}

TEST(Litmus, MessagePassingWithoutFlushExhibitsWeakBehavior) {
  // Without the flush the model is allowed to reorder the completions —
  // and a correct implementation of a weak model should actually exhibit
  // the weak outcome: the flag's one-hop update beats the data's
  // seven-hop chain to the reader.
  const auto obs = run_mp(/*writer_flushes=*/false);
  ASSERT_TRUE(obs.saw_flag);
  EXPECT_NE(obs.data, 42u)
      << "buffered consistency never reordered unflushed writes - the model "
         "would be indistinguishable from SC and Figures 6-7 meaningless";
}

TEST(Litmus, LockHandoffOrdersCriticalSectionWrites) {
  // CBL + CP-Synch release: everything written (globally) inside the
  // critical section is visible to the next lock holder.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    auto cfg = paper_config(4);
    cfg.seed = seed;
    Machine m(cfg);
    const Addr lock = 16;
    const Addr remote = 64;  // not in the lock block: needs the flush
    Word seen = 0;
    struct First {
      Addr lock, remote;
      sim::Task operator()(Processor& p) const {
        co_await p.write_lock(lock);
        co_await p.write_global(remote, 7);
        co_await p.flush_buffer();
        co_await p.unlock(lock);
      }
    } first{lock, remote};
    struct Second {
      Addr lock, remote;
      Word& seen;
      sim::Task operator()(Processor& p) const {
        co_await p.compute(5);
        co_await p.write_lock(lock);
        seen = co_await p.read_global(remote);
        co_await p.unlock(lock);
      }
    } second{lock, remote, seen};
    m.spawn(first(m.processor(0)));
    m.spawn(second(m.processor(1)));
    run_all(m);
    EXPECT_EQ(seen, 7u) << "seed " << seed;
  }
}

TEST(Litmus, BarrierSeparatesPhasesOnBothMachines) {
  // All writes of phase k are visible to all readers in phase k+1,
  // through the CBL barrier (whose wait() flushes).
  auto cfg = paper_config(8);
  Machine m(cfg);
  auto alloc = m.make_allocator(100);
  sync::CblBarrier bar(alloc, 8);
  std::vector<Word> sums(8, 0);
  struct Prog {
    sync::CblBarrier& bar;
    std::vector<Word>& sums;
    Addr base;
    sim::Task operator()(Processor& p) const {
      co_await p.write_global(base + p.id(), p.id() + 1);
      co_await bar.wait(p);
      Word s = 0;
      for (NodeId j = 0; j < 8; ++j) s += co_await p.read_global(base + j);
      sums[p.id()] = s;
    }
  } prog{bar, sums, 0};
  for (NodeId i = 0; i < 8; ++i) m.spawn(prog(m.processor(i)));
  run_all(m);
  for (NodeId i = 0; i < 8; ++i) EXPECT_EQ(sums[i], 36u) << "node " << i;
}

TEST(Litmus, NpSynchLockAcquireDoesNotWaitForPriorWrites) {
  // The paper's headline relaxation: a lock (NP-Synch) may be acquired
  // while earlier global writes are still in flight.
  auto cfg = paper_config(4);
  Machine m(cfg);
  const Addr lock = 16;
  bool pending_at_acquire = false;
  struct Prog {
    Addr lock;
    bool& pending;
    sim::Task operator()(Processor& p) const {
      for (int i = 0; i < 6; ++i) {
        co_await p.write_global(static_cast<Addr>(64 + i * 4), i);
      }
      co_await p.write_lock(lock);  // NP-Synch: no flush required
      pending = p.cache().write_buffer().pending() > 0;
      co_await p.flush_buffer();
      co_await p.unlock(lock);
    }
  } prog{lock, pending_at_acquire};
  m.spawn(prog(m.processor(0)));
  run_all(m);
  EXPECT_TRUE(pending_at_acquire)
      << "acquire should complete while global writes are still pending";
}

}  // namespace
}  // namespace bcsim
