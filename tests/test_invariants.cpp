// The invariant checker itself (docs/TESTING.md): healthy protocol runs
// sail through the strictest level, and injected protocol faults — a lost
// unlock notification, a forged owner, a dropped subscriber — are caught
// with a diagnostic naming the offending block, node, and tick.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sim/invariants.hpp"
#include "test_util.hpp"

namespace bcsim {
namespace {

using core::Machine;
using core::MachineConfig;
using core::Processor;
using sim::InvariantViolation;

constexpr Addr kLock = 16;

sim::Task lock_worker(Processor& p, int iters) {
  for (int k = 0; k < iters; ++k) {
    co_await p.write_lock(kLock);
    const Word v = co_await p.read(kLock + 1);
    co_await p.write(kLock + 1, v + 1);
    co_await p.unlock(kLock);
  }
}

MachineConfig full(MachineConfig cfg) {
  cfg.invariants = sim::InvariantLevel::kFull;
  return cfg;
}

TEST(Invariants, HealthyLockRunPassesFullChecking) {
  for (const bool paper : {true, false}) {
    auto cfg = full(paper ? test::paper_config(4) : test::small_config(4));
    cfg.lock_impl = core::LockImpl::kCbl;
    Machine m(cfg);
    for (NodeId i = 0; i < cfg.n_nodes; ++i) m.spawn(lock_worker(m.processor(i), 4));
    test::run_all(m);  // end-of-run check runs inside Machine::run
    EXPECT_EQ(m.peek_memory(kLock + 1), 16u);
    EXPECT_NO_THROW(m.check_invariants("test"));
  }
}

TEST(Invariants, HealthySubscriptionRunPassesFullChecking) {
  auto cfg = full(test::paper_config(4));
  Machine m(cfg);
  struct Prog {
    sim::Task operator()(Processor& p) const {
      co_await p.read_update(0);
      for (int k = 0; k < 4; ++k) {
        co_await p.write_global(4 * p.id(), p.id() + k);
        co_await p.flush_buffer();
      }
    }
  } prog;
  for (NodeId i = 0; i < cfg.n_nodes; ++i) m.spawn(prog(m.processor(i)));
  test::run_all(m);
  EXPECT_NO_THROW(m.check_invariants("test"));
}

// A "protocol bug" where a cache releases its lock but the unlock
// notification never reaches the directory: the chain mirror keeps naming a
// node whose lock cache has long dropped the line.
TEST(Invariants, SkippedUnlockNotificationIsCaught) {
  auto cfg = full(test::small_config(4));
  cfg.lock_impl = core::LockImpl::kCbl;
  Machine m(cfg);
  for (NodeId i = 0; i < cfg.n_nodes; ++i) m.spawn(lock_worker(m.processor(i), 2));
  test::run_all(m);

  const BlockId b = m.address_map().block_of(kLock);
  const NodeId home = m.address_map().home_of(b);
  auto& e = m.directory(home).mutable_entry(b);
  // The state a lost unlock notification leaves behind: node 2 still
  // chained as the write holder.
  e.lock_chain.push_back({NodeId{2}, net::LockMode::kWrite});
  e.lock_holders = 1;
  e.usage_lock = true;

  try {
    m.check_invariants("fault-injection");
    FAIL() << "corrupted lock chain not detected";
  } catch (const InvariantViolation& v) {
    EXPECT_EQ(v.block, b);
    EXPECT_EQ(v.node, 2u);
    EXPECT_EQ(v.tick, m.simulator().now());
    EXPECT_NE(std::string(v.what()).find("cbl-"), std::string::npos) << v.what();
    EXPECT_NE(std::string(v.what()).find("block " + std::to_string(b)), std::string::npos)
        << v.what();
  }
}

// A forged WBI owner: the directory believes another node holds the
// modified copy. Single-writer/multiple-reader cross-checking must object.
TEST(Invariants, ForgedOwnerViolatesSwmr) {
  auto cfg = full(test::small_config(4));
  Machine m(cfg);
  struct Prog {
    sim::Task operator()(Processor& p) const {
      co_await p.write(64, 99);  // node 0 takes block 16 modified
    }
  } prog;
  m.spawn(prog(m.processor(0)));
  test::run_all(m);

  const BlockId b = m.address_map().block_of(64);
  const NodeId home = m.address_map().home_of(b);
  auto& e = m.directory(home).mutable_entry(b);
  ASSERT_EQ(e.state, mem::DirState::kModified);
  ASSERT_EQ(e.owner, 0u);
  e.owner = 1;  // forged

  try {
    m.check_invariants("fault-injection");
    FAIL() << "forged owner not detected";
  } catch (const InvariantViolation& v) {
    EXPECT_EQ(v.block, b);
    EXPECT_NE(std::string(v.what()).find("wbi-swmr"), std::string::npos) << v.what();
  }
}

// A dropped subscriber: the directory loses a node from its READ-UPDATE
// list while that cache still carries the update bit — updates would
// silently stop reaching it.
TEST(Invariants, DroppedSubscriberIsCaught) {
  auto cfg = full(test::paper_config(4));
  Machine m(cfg);
  struct Prog {
    sim::Task operator()(Processor& p) const { co_await p.read_update(0); }
  } prog;
  for (NodeId i = 0; i < 3; ++i) m.spawn(prog(m.processor(i)));
  test::run_all(m);

  const BlockId b = m.address_map().block_of(0);
  const NodeId home = m.address_map().home_of(b);
  auto& e = m.directory(home).mutable_entry(b);
  ASSERT_GE(e.ru_list.size(), 2u);
  const NodeId dropped = e.ru_list.back();
  e.ru_list.pop_back();

  try {
    m.check_invariants("fault-injection");
    FAIL() << "dropped subscriber not detected";
  } catch (const InvariantViolation& v) {
    EXPECT_EQ(v.block, b);
    EXPECT_NE(std::string(v.what()).find("ru-"), std::string::npos) << v.what();
    // Either the truncated list's dangling tail pointer or the orphaned
    // subscriber itself is named — both identify the dropped node's fault.
    EXPECT_TRUE(v.node == dropped || v.node == e.ru_list.back()) << v.what();
  }
}

// Entry-local checking (kFull) fires during the run, not only at the end:
// a transition hook observing a corrupted mirror throws from inside the
// event loop and surfaces through Machine::run.
TEST(Invariants, CorruptionMidRunSurfacesThroughRun) {
  auto cfg = full(test::small_config(4));
  cfg.lock_impl = core::LockImpl::kCbl;
  Machine m(cfg);
  for (NodeId i = 0; i < cfg.n_nodes; ++i) m.spawn(lock_worker(m.processor(i), 2));
  m.run_until(5);  // lock requests now in flight
  const BlockId b = m.address_map().block_of(kLock);
  const NodeId home = m.address_map().home_of(b);
  auto& e = m.directory(home).mutable_entry(b);
  e.usage_lock = false;  // lie about the usage bit with a chain pending
  if (e.lock_chain.empty()) {
    GTEST_SKIP() << "no chain formed this early; nothing to corrupt";
  }
  EXPECT_THROW(m.run(1'000'000), InvariantViolation);
}

TEST(Invariants, LevelRoundTrips) {
  EXPECT_EQ(sim::to_string(sim::InvariantLevel::kOff), "off");
  EXPECT_EQ(sim::to_string(sim::InvariantLevel::kQuiesce), "quiesce");
  EXPECT_EQ(sim::to_string(sim::InvariantLevel::kFull), "full");
}

// ---------------------------------------------------------------------------
// Every rule fires: one targeted corruption per invariant name. A rule
// nobody can trigger is a rule that silently rotted; this table is the
// checker's own regression suite, one row per fail() name in
// src/sim/invariants.cpp.
// ---------------------------------------------------------------------------

constexpr Addr kData = 64;  ///< the data block every scenario touches

/// Which healthy quiescent machine the corruption starts from.
enum class Scenario {
  kWbiModified,  ///< node 0 wrote kData: block modified, owner 0
  kWbiShared,    ///< nodes 0 and 1 read kData: block shared by both
  kRuSub,        ///< paper machine, nodes 0-2 subscribed to block 0
  kLockHeld,     ///< node 0 acquired the CBL lock and still holds it
};

/// How the corrupted state is checked: the whole-machine quiescent sweep,
/// or the entry-local hook alone (for rules the quiescence precondition
/// would otherwise shadow, e.g. a blocked queue making the directory
/// non-quiescent before dir-blocked is reached).
enum class CheckVia { kMachine, kEntryLocal };

struct RuleCase {
  const char* rule;         ///< fail() name that must appear in what()
  Scenario scenario;
  CheckVia via = CheckVia::kMachine;
  void (*inject)(core::Machine& m, BlockId b, NodeId home);
};

sim::Task write_once(Processor& p) { co_await p.write(kData, 99); }
sim::Task read_once(Processor& p) { const Word v = co_await p.read(kData); (void)v; }
sim::Task subscribe(Processor& p) { const Word v = co_await p.read_update(0); (void)v; }
sim::Task lock_and_hold(Processor& p) { co_await p.write_lock(kLock); }

core::MachineConfig scenario_config(Scenario s) {
  switch (s) {
    case Scenario::kRuSub:
      return full(test::paper_config(4));
    case Scenario::kLockHeld: {
      auto cfg = full(test::small_config(4));
      cfg.lock_impl = core::LockImpl::kCbl;
      return cfg;
    }
    default: {
      auto cfg = full(test::small_config(4));
      cfg.write_buffer_entries = 1;  // bounded: lets a slot waiter park
      return cfg;
    }
  }
}

/// Runs the scenario's program on `m` to a healthy quiescent state.
void prepare(core::Machine& m, Scenario s) {
  switch (s) {
    case Scenario::kWbiModified: m.spawn(write_once(m.processor(0))); break;
    case Scenario::kWbiShared:
      m.spawn(read_once(m.processor(0)));
      m.spawn(read_once(m.processor(1)));
      break;
    case Scenario::kRuSub:
      for (NodeId i = 0; i < 3; ++i) m.spawn(subscribe(m.processor(i)));
      break;
    case Scenario::kLockHeld: m.spawn(lock_and_hold(m.processor(0))); break;
  }
  test::run_all(m);
}

BlockId scenario_block(const core::Machine& m, Scenario s) {
  return m.address_map().block_of(s == Scenario::kRuSub ? Addr{0}
                                  : s == Scenario::kLockHeld ? kLock
                                                             : kData);
}

/// Picks a word of node `n`'s copy of `b` that is not locally dirty and
/// perturbs it — the "missed update / lost merge" class of corruption.
void corrupt_clean_word(core::Machine& m, BlockId b, NodeId n) {
  cache::CacheLine* l = m.cache_controller(n).mutable_data_cache().find(b);
  ASSERT_NE(l, nullptr);
  for (std::uint32_t w = 0; w < m.config().block_words; ++w) {
    if (!(l->dirty_mask & (1u << w))) {
      l->data[w] ^= 1;
      return;
    }
  }
  FAIL() << "no clean word to corrupt";
}

const RuleCase kRuleCases[] = {
    {"wbi-sharers", Scenario::kWbiShared, CheckVia::kMachine,
     [](core::Machine& m, BlockId b, NodeId home) {
       auto& e = m.directory(home).mutable_entry(b);
       e.sharers.push_back(e.sharers.front());  // duplicate sharer
     }},
    {"wbi-owner", Scenario::kWbiModified, CheckVia::kMachine,
     [](core::Machine& m, BlockId b, NodeId home) {
       m.directory(home).mutable_entry(b).owner = 99;  // not a node
     }},
    {"wbi-swmr", Scenario::kWbiModified, CheckVia::kMachine,
     [](core::Machine& m, BlockId b, NodeId home) {
       m.directory(home).mutable_entry(b).owner = 1;  // forged owner
     }},
    {"wbi-acks", Scenario::kWbiModified, CheckVia::kEntryLocal,
     [](core::Machine& m, BlockId b, NodeId home) {
       m.directory(home).mutable_entry(b).acks_outstanding = 1;
     }},
    {"wbi-merge", Scenario::kWbiModified, CheckVia::kMachine,
     [](core::Machine& m, BlockId b, NodeId) {
       corrupt_clean_word(m, b, 0);  // owner's clean word vs memory
     }},
    {"dir-blocked", Scenario::kWbiModified, CheckVia::kEntryLocal,
     [](core::Machine& m, BlockId b, NodeId home) {
       // A request queued behind a stable entry: the drain was lost.
       m.directory(home).mutable_entry(b).blocked.push_back(net::Message{});
     }},
    {"usage-bit", Scenario::kRuSub, CheckVia::kMachine,
     [](core::Machine& m, BlockId b, NodeId home) {
       m.directory(home).mutable_entry(b).usage_lock = true;  // list says RU
     }},
    {"ru-list", Scenario::kRuSub, CheckVia::kMachine,
     [](core::Machine& m, BlockId b, NodeId home) {
       auto& e = m.directory(home).mutable_entry(b);
       e.ru_list.push_back(e.ru_list.front());  // duplicate subscriber
     }},
    {"ru-link", Scenario::kRuSub, CheckVia::kMachine,
     [](core::Machine& m, BlockId b, NodeId home) {
       auto& e = m.directory(home).mutable_entry(b);
       ASSERT_GE(e.ru_list.size(), 2u);
       std::swap(e.ru_list[0], e.ru_list[1]);  // mirror order vs cache links
     }},
    {"ru-version", Scenario::kRuSub, CheckVia::kMachine,
     [](core::Machine& m, BlockId b, NodeId home) {
       m.directory(home).mutable_entry(b).ru_version += 1;  // update never sent
     }},
    {"ru-merge", Scenario::kRuSub, CheckVia::kMachine,
     [](core::Machine& m, BlockId b, NodeId home) {
       corrupt_clean_word(m, b, m.directory(home).mutable_entry(b).ru_list.front());
     }},
    {"ru-orphan", Scenario::kWbiShared, CheckVia::kMachine,
     [](core::Machine& m, BlockId b, NodeId) {
       // Update bit with no home-side subscription: updates never arrive.
       cache::CacheLine* l = m.cache_controller(0).mutable_data_cache().find(b);
       ASSERT_NE(l, nullptr);
       l->update_bit = true;
     }},
    {"cbl-chain", Scenario::kLockHeld, CheckVia::kMachine,
     [](core::Machine& m, BlockId b, NodeId) {
       // Holder's line claims it is still waiting — grant never landed.
       cache::CacheLine* l = m.cache_controller(0).mutable_lock_cache().find(b);
       ASSERT_NE(l, nullptr);
       l->lock = cache::LockState::kWaitWrite;
     }},
    {"cbl-holders", Scenario::kLockHeld, CheckVia::kMachine,
     [](core::Machine& m, BlockId b, NodeId home) {
       m.directory(home).mutable_entry(b).lock_holders = 0;  // chain, no holder
     }},
    {"cbl-tail", Scenario::kLockHeld, CheckVia::kMachine,
     [](core::Machine& m, BlockId b, NodeId) {
       // Tail's successor must be nil or the distributed list leaks.
       cache::CacheLine* l = m.cache_controller(0).mutable_lock_cache().find(b);
       ASSERT_NE(l, nullptr);
       l->next = 2;
     }},
    {"cbl-writeback", Scenario::kWbiModified, CheckVia::kMachine,
     [](core::Machine& m, BlockId b, NodeId home) {
       // Stale data, nobody holding, no writeback running: data lost.
       m.directory(home).mutable_entry(b).lock_data_stale = true;
     }},
    {"cbl-orphan", Scenario::kLockHeld, CheckVia::kMachine,
     [](core::Machine& m, BlockId b, NodeId home) {
       auto& e = m.directory(home).mutable_entry(b);
       e.lock_chain.clear();  // directory forgot the holder entirely
       e.lock_holders = 0;
       e.usage_lock = false;
       e.lock_data_stale = false;
     }},
    {"barrier", Scenario::kWbiModified, CheckVia::kMachine,
     [](core::Machine& m, BlockId b, NodeId home) {
       m.directory(home).mutable_entry(b).barrier_count = 5;  // no waiters
     }},
    {"write-buffer", Scenario::kWbiModified, CheckVia::kMachine,
     [](core::Machine& m, BlockId, NodeId) {
       // A lost slot wakeup: two writers parked on the bounded buffer's
       // one slot, only one woken by the retire that drained it.
       auto& wb = m.cache_controller(0).mutable_write_buffer();
       wb.enter();
       wb.on_slot([] {});
       wb.on_slot([] {});
       wb.retire();  // drains the buffer, wakes only the first waiter
     }},
    {"lock-cache", Scenario::kWbiModified, CheckVia::kMachine,
     [](core::Machine& m, BlockId, NodeId) {
       // A lost capacity wakeup: the cache fills, an acquisition parks,
       // and no release ever comes.
       auto& lc = m.cache_controller(0).mutable_lock_cache();
       BlockId filler = 1000;
       while (!lc.full()) lc.allocate(filler++);
       lc.on_slot([] {});
     }},
    {"dirty-mask", Scenario::kWbiModified, CheckVia::kMachine,
     [](core::Machine& m, BlockId b, NodeId) {
       cache::CacheLine* l = m.cache_controller(0).mutable_data_cache().find(b);
       ASSERT_NE(l, nullptr);
       l->dirty_mask |= 1u << m.config().block_words;  // past the block
     }},
    {"quiescence", Scenario::kWbiModified, CheckVia::kMachine,
     [](core::Machine& m, BlockId b, NodeId home) {
       // An entry stuck busy forever: the transaction's finish was lost.
       m.directory(home).mutable_entry(b).state = mem::DirState::kBusyRmw;
     }},
};

TEST(InvariantRules, EveryRuleFiresUnderTargetedCorruption) {
  for (const RuleCase& c : kRuleCases) {
    SCOPED_TRACE(c.rule);
    core::Machine m(scenario_config(c.scenario));
    prepare(m, c.scenario);
    const BlockId b = scenario_block(m, c.scenario);
    const NodeId home = m.address_map().home_of(b);
    ASSERT_NO_THROW(m.check_invariants("pre-injection"))
        << c.rule << ": scenario unhealthy before the corruption";
    c.inject(m, b, home);
    if (::testing::Test::HasFatalFailure()) return;
    try {
      if (c.via == CheckVia::kEntryLocal) {
        sim::InvariantChecker(m).check_entry(home, b);
      } else {
        m.check_invariants("fault-injection");
      }
      FAIL() << c.rule << ": corruption not detected";
    } catch (const InvariantViolation& v) {
      EXPECT_NE(std::string(v.what()).find(std::string("[") + c.rule + "]"),
                std::string::npos)
          << c.rule << " expected, got: " << v.what();
      EXPECT_EQ(v.tick, m.simulator().now());
    }
  }
}

/// The table covers the checker: every fail() name in invariants.cpp has
/// a row above, so a new rule without a firing test shows up here.
TEST(InvariantRules, TableNamesAreUniqueAndComplete) {
  std::vector<std::string> names;
  for (const RuleCase& c : kRuleCases) names.emplace_back(c.rule);
  std::sort(names.begin(), names.end());
  EXPECT_TRUE(std::adjacent_find(names.begin(), names.end()) == names.end())
      << "duplicate rule row";
  const std::vector<std::string> expected = {
      "barrier",    "cbl-chain",   "cbl-holders", "cbl-orphan",  "cbl-tail",
      "cbl-writeback", "dir-blocked", "dirty-mask", "lock-cache", "quiescence",
      "ru-link",    "ru-list",     "ru-merge",    "ru-orphan",   "ru-version",
      "usage-bit",  "wbi-acks",    "wbi-merge",   "wbi-owner",   "wbi-sharers",
      "wbi-swmr",   "write-buffer"};
  EXPECT_EQ(names, expected);
}

}  // namespace
}  // namespace bcsim
