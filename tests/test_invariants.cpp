// The invariant checker itself (docs/TESTING.md): healthy protocol runs
// sail through the strictest level, and injected protocol faults — a lost
// unlock notification, a forged owner, a dropped subscriber — are caught
// with a diagnostic naming the offending block, node, and tick.
#include <gtest/gtest.h>

#include <string>

#include "sim/invariants.hpp"
#include "test_util.hpp"

namespace bcsim {
namespace {

using core::Machine;
using core::MachineConfig;
using core::Processor;
using sim::InvariantViolation;

constexpr Addr kLock = 16;

sim::Task lock_worker(Processor& p, int iters) {
  for (int k = 0; k < iters; ++k) {
    co_await p.write_lock(kLock);
    const Word v = co_await p.read(kLock + 1);
    co_await p.write(kLock + 1, v + 1);
    co_await p.unlock(kLock);
  }
}

MachineConfig full(MachineConfig cfg) {
  cfg.invariants = sim::InvariantLevel::kFull;
  return cfg;
}

TEST(Invariants, HealthyLockRunPassesFullChecking) {
  for (const bool paper : {true, false}) {
    auto cfg = full(paper ? test::paper_config(4) : test::small_config(4));
    cfg.lock_impl = core::LockImpl::kCbl;
    Machine m(cfg);
    for (NodeId i = 0; i < cfg.n_nodes; ++i) m.spawn(lock_worker(m.processor(i), 4));
    test::run_all(m);  // end-of-run check runs inside Machine::run
    EXPECT_EQ(m.peek_memory(kLock + 1), 16u);
    EXPECT_NO_THROW(m.check_invariants("test"));
  }
}

TEST(Invariants, HealthySubscriptionRunPassesFullChecking) {
  auto cfg = full(test::paper_config(4));
  Machine m(cfg);
  struct Prog {
    sim::Task operator()(Processor& p) const {
      co_await p.read_update(0);
      for (int k = 0; k < 4; ++k) {
        co_await p.write_global(4 * p.id(), p.id() + k);
        co_await p.flush_buffer();
      }
    }
  } prog;
  for (NodeId i = 0; i < cfg.n_nodes; ++i) m.spawn(prog(m.processor(i)));
  test::run_all(m);
  EXPECT_NO_THROW(m.check_invariants("test"));
}

// A "protocol bug" where a cache releases its lock but the unlock
// notification never reaches the directory: the chain mirror keeps naming a
// node whose lock cache has long dropped the line.
TEST(Invariants, SkippedUnlockNotificationIsCaught) {
  auto cfg = full(test::small_config(4));
  cfg.lock_impl = core::LockImpl::kCbl;
  Machine m(cfg);
  for (NodeId i = 0; i < cfg.n_nodes; ++i) m.spawn(lock_worker(m.processor(i), 2));
  test::run_all(m);

  const BlockId b = m.address_map().block_of(kLock);
  const NodeId home = m.address_map().home_of(b);
  auto& e = m.directory(home).mutable_entry(b);
  // The state a lost unlock notification leaves behind: node 2 still
  // chained as the write holder.
  e.lock_chain.push_back({NodeId{2}, net::LockMode::kWrite});
  e.lock_holders = 1;
  e.usage_lock = true;

  try {
    m.check_invariants("fault-injection");
    FAIL() << "corrupted lock chain not detected";
  } catch (const InvariantViolation& v) {
    EXPECT_EQ(v.block, b);
    EXPECT_EQ(v.node, 2u);
    EXPECT_EQ(v.tick, m.simulator().now());
    EXPECT_NE(std::string(v.what()).find("cbl-"), std::string::npos) << v.what();
    EXPECT_NE(std::string(v.what()).find("block " + std::to_string(b)), std::string::npos)
        << v.what();
  }
}

// A forged WBI owner: the directory believes another node holds the
// modified copy. Single-writer/multiple-reader cross-checking must object.
TEST(Invariants, ForgedOwnerViolatesSwmr) {
  auto cfg = full(test::small_config(4));
  Machine m(cfg);
  struct Prog {
    sim::Task operator()(Processor& p) const {
      co_await p.write(64, 99);  // node 0 takes block 16 modified
    }
  } prog;
  m.spawn(prog(m.processor(0)));
  test::run_all(m);

  const BlockId b = m.address_map().block_of(64);
  const NodeId home = m.address_map().home_of(b);
  auto& e = m.directory(home).mutable_entry(b);
  ASSERT_EQ(e.state, mem::DirState::kModified);
  ASSERT_EQ(e.owner, 0u);
  e.owner = 1;  // forged

  try {
    m.check_invariants("fault-injection");
    FAIL() << "forged owner not detected";
  } catch (const InvariantViolation& v) {
    EXPECT_EQ(v.block, b);
    EXPECT_NE(std::string(v.what()).find("wbi-swmr"), std::string::npos) << v.what();
  }
}

// A dropped subscriber: the directory loses a node from its READ-UPDATE
// list while that cache still carries the update bit — updates would
// silently stop reaching it.
TEST(Invariants, DroppedSubscriberIsCaught) {
  auto cfg = full(test::paper_config(4));
  Machine m(cfg);
  struct Prog {
    sim::Task operator()(Processor& p) const { co_await p.read_update(0); }
  } prog;
  for (NodeId i = 0; i < 3; ++i) m.spawn(prog(m.processor(i)));
  test::run_all(m);

  const BlockId b = m.address_map().block_of(0);
  const NodeId home = m.address_map().home_of(b);
  auto& e = m.directory(home).mutable_entry(b);
  ASSERT_GE(e.ru_list.size(), 2u);
  const NodeId dropped = e.ru_list.back();
  e.ru_list.pop_back();

  try {
    m.check_invariants("fault-injection");
    FAIL() << "dropped subscriber not detected";
  } catch (const InvariantViolation& v) {
    EXPECT_EQ(v.block, b);
    EXPECT_NE(std::string(v.what()).find("ru-"), std::string::npos) << v.what();
    // Either the truncated list's dangling tail pointer or the orphaned
    // subscriber itself is named — both identify the dropped node's fault.
    EXPECT_TRUE(v.node == dropped || v.node == e.ru_list.back()) << v.what();
  }
}

// Entry-local checking (kFull) fires during the run, not only at the end:
// a transition hook observing a corrupted mirror throws from inside the
// event loop and surfaces through Machine::run.
TEST(Invariants, CorruptionMidRunSurfacesThroughRun) {
  auto cfg = full(test::small_config(4));
  cfg.lock_impl = core::LockImpl::kCbl;
  Machine m(cfg);
  for (NodeId i = 0; i < cfg.n_nodes; ++i) m.spawn(lock_worker(m.processor(i), 2));
  m.run_until(5);  // lock requests now in flight
  const BlockId b = m.address_map().block_of(kLock);
  const NodeId home = m.address_map().home_of(b);
  auto& e = m.directory(home).mutable_entry(b);
  e.usage_lock = false;  // lie about the usage bit with a chain pending
  if (e.lock_chain.empty()) {
    GTEST_SKIP() << "no chain formed this early; nothing to corrupt";
  }
  EXPECT_THROW(m.run(1'000'000), InvariantViolation);
}

TEST(Invariants, LevelRoundTrips) {
  EXPECT_EQ(sim::to_string(sim::InvariantLevel::kOff), "off");
  EXPECT_EQ(sim::to_string(sim::InvariantLevel::kQuiesce), "quiesce");
  EXPECT_EQ(sim::to_string(sim::InvariantLevel::kFull), "full");
}

}  // namespace
}  // namespace bcsim
