// Differential-oracle tests (docs/TESTING.md, "Differential testing"):
// the DRF generator's structural guarantees, the golden SC reference
// machine's schedule-independence, clean diff cells on every flavor, the
// oracle's ability to catch both a tampered result and a deliberately
// injected write-buffer bug, and a replay of tests/diff_corpus.txt — every
// divergence `bcsim diff` ever recorded stays fixed forever.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ref/diff.hpp"
#include "ref/drf_program.hpp"
#include "ref/machine_runner.hpp"
#include "ref/ref_machine.hpp"

namespace bcsim {
namespace {

using ref::DrfGenConfig;
using ref::DrfOp;
using ref::DrfProgram;
using ref::OpKind;

DrfGenConfig small_gen() {
  DrfGenConfig g;
  g.n_nodes = 4;
  g.phases = 2;
  return g;
}

// ---------------------------------------------------------------------------
// Generator structure: the DRF guarantees the oracle's soundness rests on.
// ---------------------------------------------------------------------------

TEST(DrfGenerator, IsDeterministic) {
  const DrfProgram a = ref::generate_drf_program(7, small_gen());
  const DrfProgram b = ref::generate_drf_program(7, small_gen());
  ASSERT_EQ(a.n_vars, b.n_vars);
  ASSERT_EQ(a.code.size(), b.code.size());
  for (std::size_t n = 0; n < a.code.size(); ++n) {
    ASSERT_EQ(a.code[n].size(), b.code[n].size()) << "node " << n;
    for (std::size_t i = 0; i < a.code[n].size(); ++i) {
      EXPECT_EQ(a.code[n][i].kind, b.code[n][i].kind);
      EXPECT_EQ(a.code[n][i].id, b.code[n][i].id);
      EXPECT_EQ(a.code[n][i].value, b.code[n][i].value);
      EXPECT_EQ(a.code[n][i].observed, b.code[n][i].observed);
    }
  }
}

TEST(DrfGenerator, DistinctSeedsDiffer) {
  const DrfProgram a = ref::generate_drf_program(1, small_gen());
  const DrfProgram b = ref::generate_drf_program(2, small_gen());
  bool differ = a.ops_total() != b.ops_total();
  for (std::size_t n = 0; !differ && n < a.code.size(); ++n) {
    for (std::size_t i = 0; !differ && i < std::min(a.code[n].size(), b.code[n].size());
         ++i) {
      differ = a.code[n][i].kind != b.code[n][i].kind ||
               a.code[n][i].id != b.code[n][i].id ||
               a.code[n][i].value != b.code[n][i].value;
    }
  }
  EXPECT_TRUE(differ);
}

TEST(DrfGenerator, LocksBalanceAndGuardCounters) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const DrfProgram prog = ref::generate_drf_program(seed, small_gen());
    for (std::uint32_t n = 0; n < prog.gen.n_nodes; ++n) {
      int held = -1;  // -1 = none (generator never nests locks)
      for (const DrfOp& op : prog.code[n]) {
        switch (op.kind) {
          case OpKind::kLock:
            ASSERT_EQ(held, -1) << "seed " << seed << " node " << n << " nests locks";
            held = static_cast<int>(op.id);
            break;
          case OpKind::kUnlock:
            ASSERT_EQ(held, static_cast<int>(op.id));
            held = -1;
            break;
          case OpKind::kCsAdd:
            ASSERT_GE(held, 0) << "CsAdd outside a critical section";
            ASSERT_EQ(static_cast<std::uint32_t>(held), prog.counter_lock[op.id])
                << "CsAdd under the wrong lock";
            break;
          default:
            break;
        }
      }
      ASSERT_EQ(held, -1) << "lock leaked at program end";
    }
  }
}

TEST(DrfGenerator, SingleStaticWriterPerVariable) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const DrfProgram prog = ref::generate_drf_program(seed, small_gen());
    // kWrite targets (region + handoff words) must have exactly one
    // writing node; counters are only touched via lock-guarded kCsAdd.
    std::vector<int> writer(prog.n_vars, -1);
    for (std::uint32_t n = 0; n < prog.gen.n_nodes; ++n) {
      for (const DrfOp& op : prog.code[n]) {
        if (op.kind == OpKind::kWrite) {
          ASSERT_TRUE(writer[op.id] == -1 || writer[op.id] == static_cast<int>(n))
              << "var " << op.id << " written by nodes " << writer[op.id] << " and "
              << n << " (seed " << seed << ")";
          writer[op.id] = static_cast<int>(n);
          ASSERT_GE(op.id, prog.n_counters) << "plain write to a lock-guarded counter";
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The golden reference: SC interpretation, schedule-independent streams.
// ---------------------------------------------------------------------------

TEST(RefMachine, ScheduleSeedsAgreeOnDrfPrograms) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const DrfProgram prog = ref::generate_drf_program(seed, small_gen());
    const ref::RefResult a = ref::RefMachine(prog, 11).run();
    const ref::RefResult b = ref::RefMachine(prog, 0xfeedfaceULL).run();
    EXPECT_FALSE(a.deadlocked) << "seed " << seed;
    EXPECT_TRUE(a.locks_held_at_end.empty());
    EXPECT_TRUE(ref::ref_results_agree(a, b))
        << "reference streams depend on the schedule (seed " << seed
        << ") — the generator emitted a racy program";
  }
}

TEST(RefMachine, CounterSumsMatchTheEmittedDeltas) {
  const DrfProgram prog = ref::generate_drf_program(3, small_gen());
  std::vector<Word> want(prog.n_counters, 0);
  for (const auto& code : prog.code) {
    for (const DrfOp& op : code) {
      if (op.kind == OpKind::kCsAdd) want[op.id] += op.value;
    }
  }
  const ref::RefResult r = ref::RefMachine(prog, 5).run();
  for (std::uint32_t c = 0; c < prog.n_counters; ++c) {
    EXPECT_EQ(r.final_vars[c], want[c]) << "counter " << c;
  }
}

// ---------------------------------------------------------------------------
// The oracle end to end: clean cells, tampering, injected faults.
// ---------------------------------------------------------------------------

TEST(Diff, AllFlavorsMatchTheReference) {
  const DrfProgram prog = ref::generate_drf_program(1, small_gen());
  const ref::RefResult ref_run = ref::RefMachine(prog, 1).run();
  for (const ref::Flavor f :
       {ref::Flavor::kWbi, ref::Flavor::kRu, ref::Flavor::kCbl}) {
    const ref::Divergence d = ref::diff_one(prog, ref_run, f, 0);
    EXPECT_FALSE(d.found()) << ref::to_string(f) << ": " << d.detail;
  }
}

TEST(Diff, CatchesATamperedObservation) {
  const DrfProgram prog = ref::generate_drf_program(2, small_gen());
  const ref::RefResult ref_run = ref::RefMachine(prog, 1).run();
  const auto cfg = ref::flavor_config(ref::Flavor::kWbi, prog.gen.n_nodes, 0);
  ref::MachineRunResult mach = ref::run_on_machine(prog, cfg);
  ASSERT_TRUE(mach.completed) << mach.error;

  // Find a node with at least one observation and corrupt it.
  for (std::uint32_t n = 0; n < prog.gen.n_nodes; ++n) {
    if (mach.obs[n].empty()) continue;
    mach.obs[n].front().value ^= 0x1;
    const ref::Divergence d = ref::compare_runs(prog, ref_run, mach, cfg.block_words);
    ASSERT_TRUE(d.found());
    EXPECT_EQ(d.kind, ref::Divergence::Kind::kObsRead);
    EXPECT_EQ(d.node, n);
    EXPECT_NE(d.detail.find("block"), std::string::npos) << d.detail;
    EXPECT_NE(d.detail.find("tick"), std::string::npos) << d.detail;
    return;
  }
  FAIL() << "no observations to tamper with";
}

TEST(Diff, CatchesATamperedFinalVariable) {
  const DrfProgram prog = ref::generate_drf_program(2, small_gen());
  const ref::RefResult ref_run = ref::RefMachine(prog, 1).run();
  const auto cfg = ref::flavor_config(ref::Flavor::kCbl, prog.gen.n_nodes, 0);
  ref::MachineRunResult mach = ref::run_on_machine(prog, cfg);
  ASSERT_TRUE(mach.completed) << mach.error;
  mach.final_vars.back() += 1;
  const ref::Divergence d = ref::compare_runs(prog, ref_run, mach, cfg.block_words);
  ASSERT_TRUE(d.found());
  EXPECT_EQ(d.kind, ref::Divergence::Kind::kFinalVar);
}

// The acceptance demonstration, pinned as a unit test: removing the
// CP-Synch flush gate (WbFault::kEagerFlush) on the buffered-consistency
// machine must produce a divergence whose report names a block and tick.
// The mesh's distance-dependent paths are what let the un-flushed write
// lose the race (docs/TESTING.md).
TEST(Diff, CatchesTheEagerFlushFault) {
  DrfGenConfig gen;
  gen.n_nodes = 16;
  gen.phases = 3;
  bool caught = false;
  for (std::uint64_t seed = 0; seed < 4 && !caught; ++seed) {
    const DrfProgram prog = ref::generate_drf_program(seed, gen);
    const ref::RefResult ref_run = ref::RefMachine(prog, 1).run();
    for (std::uint64_t ss = 0; ss < 2 && !caught; ++ss) {
      core::MachineConfig cfg = ref::flavor_config(ref::Flavor::kRu, gen.n_nodes, ss);
      cfg.network = core::NetworkKind::kMesh;
      cfg.wb_fault = core::WbFault::kEagerFlush;
      const ref::Divergence d = ref::diff_one(prog, ref_run, ref::Flavor::kRu, ss, &cfg);
      if (!d.found()) continue;
      caught = true;
      EXPECT_NE(d.detail.find("block"), std::string::npos) << d.detail;
      EXPECT_NE(d.detail.find("tick"), std::string::npos) << d.detail;
    }
  }
  EXPECT_TRUE(caught)
      << "the injected eager-flush reordering bug escaped a 4x2 diff grid";
}

// The same grid without the fault stays clean — the fault test above is
// meaningful only if the healthy machine passes the identical cells.
TEST(Diff, MeshGridIsCleanWithoutTheFault) {
  DrfGenConfig gen;
  gen.n_nodes = 16;
  gen.phases = 3;
  for (std::uint64_t seed = 0; seed < 2; ++seed) {
    const DrfProgram prog = ref::generate_drf_program(seed, gen);
    const ref::RefResult ref_run = ref::RefMachine(prog, 1).run();
    core::MachineConfig cfg = ref::flavor_config(ref::Flavor::kRu, gen.n_nodes, 0);
    cfg.network = core::NetworkKind::kMesh;
    const ref::Divergence d = ref::diff_one(prog, ref_run, ref::Flavor::kRu, 0, &cfg);
    EXPECT_FALSE(d.found()) << d.detail;
  }
}

// ---------------------------------------------------------------------------
// Corpus replay: every cell `bcsim diff` ever flagged stays fixed.
// ---------------------------------------------------------------------------

struct CorpusCase {
  ref::Flavor flavor = ref::Flavor::kWbi;
  std::uint64_t program_seed = 0;
  std::uint64_t schedule_seed = 0;
  std::uint32_t nodes = 8;
  std::uint32_t phases = 3;
  core::NetworkKind network = core::NetworkKind::kOmega;
  core::WbFault fault = core::WbFault::kNone;  ///< recorded, replayed fault-free
  std::string line;
};

/// Parses the corpus. A malformed line is a parse *error*, not a skip —
/// a typo must fail the replay test loudly instead of silently dropping
/// the pinned scenario. The optional trailing [fault] column records what
/// was injected when the cell was caught; replays run fault-free (the
/// corpus pins the scenario, not the misbehavior).
std::vector<CorpusCase> load_corpus(const std::string& path,
                                    std::vector<std::string>& errors) {
  std::vector<CorpusCase> cases;
  std::ifstream in(path);
  if (!in.good()) {
    errors.push_back("cannot open corpus " + path);
    return cases;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    std::string flavor, network;
    CorpusCase c;
    is >> flavor >> c.program_seed >> c.schedule_seed >> c.nodes >> c.phases >> network;
    if (is.fail()) {
      errors.push_back("malformed corpus line: " + line);
      continue;
    }
    const auto f = ref::parse_flavor(flavor);
    if (!f) {
      errors.push_back("bad flavor '" + flavor + "' in corpus line: " + line);
      continue;
    }
    c.flavor = *f;
    if (network == "omega") c.network = core::NetworkKind::kOmega;
    else if (network == "mesh") c.network = core::NetworkKind::kMesh;
    else if (network == "crossbar") c.network = core::NetworkKind::kCrossbar;
    else if (network == "ideal") c.network = core::NetworkKind::kIdeal;
    else {
      errors.push_back("bad network '" + network + "' in corpus line: " + line);
      continue;
    }
    std::string fault;
    if (is >> fault) {
      if (fault == "eager-flush") c.fault = core::WbFault::kEagerFlush;
      else if (fault == "empty-gate") c.fault = core::WbFault::kEmptyGate;
      else {
        errors.push_back("bad fault '" + fault + "' in corpus line: " + line);
        continue;
      }
      std::string extra;
      if (is >> extra) {
        errors.push_back("trailing garbage '" + extra + "' in corpus line: " + line);
        continue;
      }
    }
    if (c.nodes == 0 || c.phases == 0) {
      errors.push_back("zero nodes/phases in corpus line: " + line);
      continue;
    }
    c.line = line;
    cases.push_back(std::move(c));
  }
  return cases;
}

TEST(DiffCorpus, ParserRejectsMalformedLines) {
  const auto parse_one = [](const std::string& text) {
    const std::string path = ::testing::TempDir() + "/corpus_case.txt";
    std::ofstream(path) << text << '\n';
    std::vector<std::string> errors;
    (void)load_corpus(path, errors);
    return errors;
  };
  EXPECT_TRUE(parse_one("cbl 3 0 16 3 mesh").empty());
  EXPECT_TRUE(parse_one("ru 1 2 8 3 omega eager-flush").empty());
  EXPECT_FALSE(parse_one("cbl 3 0 16 3").empty()) << "missing network";
  EXPECT_FALSE(parse_one("sc 3 0 16 3 mesh").empty()) << "unknown flavor";
  EXPECT_FALSE(parse_one("cbl 3 0 16 3 toroid").empty()) << "unknown network";
  EXPECT_FALSE(parse_one("cbl x 0 16 3 mesh").empty()) << "non-numeric seed";
  EXPECT_FALSE(parse_one("cbl 3 0 16 3 mesh lazy-flush").empty()) << "unknown fault";
  EXPECT_FALSE(parse_one("cbl 3 0 16 3 mesh eager-flush junk").empty())
      << "trailing garbage";
  EXPECT_FALSE(parse_one("cbl 3 0 0 3 mesh").empty()) << "zero nodes";
}

TEST(DiffCorpus, EveryRecordedDivergenceStaysFixed) {
  std::vector<std::string> errors;
  const auto cases = load_corpus(BCSIM_DIFF_CORPUS, errors);
  for (const std::string& e : errors) ADD_FAILURE() << e;
  ASSERT_TRUE(errors.empty()) << "corpus has malformed lines; fix them first";
  ASSERT_FALSE(cases.empty());
  for (const CorpusCase& c : cases) {
    ref::DrfGenConfig gen;
    gen.n_nodes = c.nodes;
    gen.phases = c.phases;
    const DrfProgram prog = ref::generate_drf_program(c.program_seed, gen);
    const ref::RefResult ref_run = ref::RefMachine(prog, 1).run();
    core::MachineConfig cfg =
        ref::flavor_config(c.flavor, c.nodes, c.schedule_seed);
    cfg.network = c.network;
    const ref::Divergence d =
        ref::diff_one(prog, ref_run, c.flavor, c.schedule_seed, &cfg);
    EXPECT_FALSE(d.found()) << "corpus regression [" << c.line << "]: " << d.detail;
  }
}

}  // namespace
}  // namespace bcsim
