// Parallel sweep runner tests.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "sim/sweep.hpp"

namespace bcsim::sim {
namespace {

TEST(Sweep, ResultsInIndexOrder) {
  const auto out = parallel_map<int>(64, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(Sweep, EmptyInputYieldsEmptyOutput) {
  const auto out = parallel_map<int>(0, [](std::size_t) { return 1; });
  EXPECT_TRUE(out.empty());
}

TEST(Sweep, RunsEveryIndexExactlyOnce) {
  std::atomic<int> calls{0};
  parallel_map<int>(100, [&](std::size_t) {
    calls.fetch_add(1);
    return 0;
  });
  EXPECT_EQ(calls.load(), 100);
}

TEST(Sweep, PropagatesExceptions) {
  EXPECT_THROW(parallel_map<int>(16,
                                 [](std::size_t i) -> int {
                                   if (i == 7) throw std::runtime_error("boom");
                                   return 0;
                                 }),
               std::runtime_error);
}

TEST(Sweep, ThreadCountIsSane) {
  EXPECT_GE(sweep_threads(), 1u);
  EXPECT_LE(sweep_threads(), kMaxSweepThreads);
}

/// Sets BCSIM_SWEEP_THREADS for one scope; restores the old value after.
class ScopedSweepEnv {
 public:
  explicit ScopedSweepEnv(const char* value) {
    const char* old = std::getenv("BCSIM_SWEEP_THREADS");
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    ::setenv("BCSIM_SWEEP_THREADS", value, 1);
  }
  ~ScopedSweepEnv() {
    if (had_) {
      ::setenv("BCSIM_SWEEP_THREADS", saved_.c_str(), 1);
    } else {
      ::unsetenv("BCSIM_SWEEP_THREADS");
    }
  }
  ScopedSweepEnv(const ScopedSweepEnv&) = delete;
  ScopedSweepEnv& operator=(const ScopedSweepEnv&) = delete;

 private:
  std::string saved_;
  bool had_ = false;
};

TEST(Sweep, EnvOverrideIsHonored) {
  ScopedSweepEnv env("8");
  EXPECT_EQ(sweep_threads(), 8u);
}

TEST(Sweep, EnvOverrideOfOneIsHonored) {
  ScopedSweepEnv env("1");
  EXPECT_EQ(sweep_threads(), 1u);
}

TEST(Sweep, EnvOverrideIsClampedToMax) {
  ScopedSweepEnv env("1000");
  EXPECT_EQ(sweep_threads(), kMaxSweepThreads);
}

TEST(Sweep, GarbageEnvFallsBackToHardwareDefault) {
  const std::size_t hw = [] {
    ScopedSweepEnv none("");  // empty is invalid -> hardware default
    return sweep_threads();
  }();
  // "1e3" used to parse as 1 (strtol stops at 'e'); it must be rejected
  // whole, like any other trailing-garbage value.
  for (const char* bad : {"1e3", "4x", "x", "0", "-2", " 8"}) {
    ScopedSweepEnv env(bad);
    EXPECT_EQ(sweep_threads(), hw) << "BCSIM_SWEEP_THREADS='" << bad << "'";
  }
}

}  // namespace
}  // namespace bcsim::sim
