// Parallel sweep runner tests.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "sim/sweep.hpp"

namespace bcsim::sim {
namespace {

TEST(Sweep, ResultsInIndexOrder) {
  const auto out = parallel_map<int>(64, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(Sweep, EmptyInputYieldsEmptyOutput) {
  const auto out = parallel_map<int>(0, [](std::size_t) { return 1; });
  EXPECT_TRUE(out.empty());
}

TEST(Sweep, RunsEveryIndexExactlyOnce) {
  std::atomic<int> calls{0};
  parallel_map<int>(100, [&](std::size_t) {
    calls.fetch_add(1);
    return 0;
  });
  EXPECT_EQ(calls.load(), 100);
}

TEST(Sweep, PropagatesExceptions) {
  EXPECT_THROW(parallel_map<int>(16,
                                 [](std::size_t i) -> int {
                                   if (i == 7) throw std::runtime_error("boom");
                                   return 0;
                                 }),
               std::runtime_error);
}

TEST(Sweep, ThreadCountIsSane) {
  EXPECT_GE(sweep_threads(), 1u);
  EXPECT_LE(sweep_threads(), 64u);
}

}  // namespace
}  // namespace bcsim::sim
