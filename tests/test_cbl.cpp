// Cache-based lock (CBL) protocol tests: grants, queued handoff, reader
// sharing, data-rides-lock, the draining race, lock-cache capacity.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "test_util.hpp"

namespace bcsim {
namespace {

using core::Machine;
using core::Processor;
using test::paper_config;
using test::run_all;

TEST(Cbl, UncontendedAcquireRelease) {
  Machine m(paper_config(2));
  const Addr lock = 16;
  bool held = false;
  auto prog = [&](Processor& p) -> sim::Task {
    co_await p.write_lock(lock);
    held = true;
    co_await p.compute(10);
    co_await p.unlock(lock);
  };
  m.spawn(prog(m.processor(0)));
  run_all(m);
  EXPECT_TRUE(held);
  EXPECT_EQ(m.stats().counter_value("dir.lock_req"), 1u);
  EXPECT_EQ(m.stats().counter_value("cache.lock_granted"), 1u);
}

TEST(Cbl, MutualExclusionUnderContention) {
  // Classic counter test: data rides the lock block, so increments inside
  // the critical section are plain local reads/writes of the locked line.
  Machine m(paper_config(8));
  const Addr lock = 16;
  const Addr counter = lock + 1;
  constexpr int kIters = 25;
  int in_cs = 0;
  bool overlap = false;
  auto prog = [&](Processor& p) -> sim::Task {
    for (int k = 0; k < kIters; ++k) {
      co_await p.write_lock(lock);
      overlap = overlap || (in_cs != 0);
      ++in_cs;
      const Word v = co_await p.read(counter);
      co_await p.compute(3);
      co_await p.write(counter, v + 1);
      --in_cs;
      co_await p.unlock(lock);
    }
  };
  for (NodeId i = 0; i < 8; ++i) m.spawn(prog(m.processor(i)));
  run_all(m);
  EXPECT_FALSE(overlap) << "two holders inside the critical section";
  EXPECT_EQ(m.peek_memory(counter), 8u * kIters)
      << "lost update: lock data did not travel with the grant";
}

TEST(Cbl, DataRidesTheLockGrant) {
  // After acquiring, reads of the lock block must be local hits.
  Machine m(paper_config(2));
  const Addr lock = 32;
  m.poke_memory(lock + 2, 77);
  Word seen = 0;
  Tick read_cost = 0;
  auto prog = [&](Processor& p) -> sim::Task {
    co_await p.write_lock(lock);
    const Tick t0 = p.simulator().now();
    seen = co_await p.read(lock + 2);
    read_cost = p.simulator().now() - t0;
    co_await p.unlock(lock);
  };
  m.spawn(prog(m.processor(0)));
  run_all(m);
  EXPECT_EQ(seen, 77u);
  EXPECT_EQ(read_cost, 1u) << "protected data must arrive with the grant";
}

TEST(Cbl, FinalUnlockWritesDataBack) {
  Machine m(paper_config(2));
  const Addr lock = 48;
  auto prog = [&](Processor& p) -> sim::Task {
    co_await p.write_lock(lock);
    co_await p.write(lock + 1, 123);
    co_await p.unlock(lock);
  };
  m.spawn(prog(m.processor(0)));
  run_all(m);
  EXPECT_EQ(m.peek_memory(lock + 1), 123u);
  EXPECT_GE(m.stats().counter_value("dir.lock_writeback"), 1u);
}

TEST(Cbl, ReadersShareTheLock) {
  // All readers must be able to hold simultaneously: with a long critical
  // section, total completion ~ one CS, not n serialized CSs.
  Machine m(paper_config(8));
  const Addr lock = 64;
  constexpr Tick kCs = 2000;
  int concurrent = 0, peak = 0;
  auto prog = [&](Processor& p) -> sim::Task {
    co_await p.read_lock(lock);
    ++concurrent;
    peak = std::max(peak, concurrent);
    co_await p.compute(kCs);
    --concurrent;
    co_await p.unlock(lock);
  };
  for (NodeId i = 0; i < 8; ++i) m.spawn(prog(m.processor(i)));
  const Tick t = run_all(m);
  EXPECT_GE(peak, 6) << "readers failed to share";
  EXPECT_LT(t, 2 * kCs + 1000) << "readers serialized instead of sharing";
}

TEST(Cbl, WriterExcludesReaders) {
  Machine m(paper_config(4));
  const Addr lock = 80;
  const Addr data = lock + 1;
  bool writer_in = false;
  bool violation = false;
  auto writer = [&](Processor& p) -> sim::Task {
    co_await p.write_lock(lock);
    writer_in = true;
    co_await p.write(data, 1);
    co_await p.compute(500);
    writer_in = false;
    co_await p.unlock(lock);
  };
  auto reader = [&](Processor& p) -> sim::Task {
    co_await p.compute(10);  // let the writer get there first
    co_await p.read_lock(lock);
    violation = violation || writer_in;
    co_await p.read(data);
    co_await p.unlock(lock);
  };
  m.spawn(writer(m.processor(0)));
  m.spawn(reader(m.processor(1)));
  m.spawn(reader(m.processor(2)));
  m.spawn(reader(m.processor(3)));
  run_all(m);
  EXPECT_FALSE(violation);
}

TEST(Cbl, WriteLockReleaseCascadesToContiguousReaders) {
  // W holds; R1,R2,R3 queue behind. On W's unlock all three readers must
  // be granted (share cascade down the list).
  Machine m(paper_config(8));
  const Addr lock = 96;
  int readers_in = 0, peak = 0;
  auto writer = [&](Processor& p) -> sim::Task {
    co_await p.write_lock(lock);
    co_await p.compute(300);  // let readers enqueue
    co_await p.unlock(lock);
  };
  auto reader = [&](Processor& p) -> sim::Task {
    co_await p.compute(20);
    co_await p.read_lock(lock);
    ++readers_in;
    peak = std::max(peak, readers_in);
    co_await p.compute(400);
    --readers_in;
    co_await p.unlock(lock);
  };
  m.spawn(writer(m.processor(0)));
  for (NodeId i = 1; i <= 3; ++i) m.spawn(reader(m.processor(i)));
  run_all(m);
  EXPECT_EQ(peak, 3) << "release must cascade through all queued readers";
  EXPECT_GE(m.stats().counter_value("cache.share_cascade"), 1u);
}

TEST(Cbl, WritersGrantedInQueueOrder) {
  // Handoff follows the queue: grant order must equal request order.
  Machine m(paper_config(8));
  const Addr lock = 112;
  std::vector<NodeId> grant_order;
  auto prog = [&](Processor& p, Tick stagger) -> sim::Task {
    co_await p.compute(stagger);
    co_await p.write_lock(lock);
    grant_order.push_back(p.id());
    co_await p.compute(200);
    co_await p.unlock(lock);
  };
  for (NodeId i = 0; i < 8; ++i) {
    m.spawn(prog(m.processor(i), 30 * static_cast<Tick>(i)));
  }
  run_all(m);
  ASSERT_EQ(grant_order.size(), 8u);
  for (NodeId i = 0; i < 8; ++i) {
    EXPECT_EQ(grant_order[i], i) << "queue order violated at position " << i;
  }
}

TEST(Cbl, ImmediateRelockAfterUnlock) {
  // Unlock returns immediately; re-locking while the release protocol is
  // still in flight must wait for the line to drain, then succeed.
  Machine m(paper_config(2));
  const Addr lock = 128;
  int acquisitions = 0;
  auto prog = [&](Processor& p) -> sim::Task {
    for (int k = 0; k < 20; ++k) {
      co_await p.write_lock(lock);
      ++acquisitions;
      co_await p.unlock(lock);
    }
  };
  m.spawn(prog(m.processor(0)));
  run_all(m);
  EXPECT_EQ(acquisitions, 20);
}

TEST(Cbl, DrainingRace_UnlockMeetsInflightSuccessor) {
  // Holder unlocks exactly while a successor's enqueue forward is in
  // flight. With deterministic staggers across a range, some iteration
  // hits the window; the protocol must hand off (not deadlock or drop).
  for (Tick stagger = 0; stagger < 30; ++stagger) {
    Machine m(paper_config(2));
    const Addr lock = 16;
    bool second_got_it = false;
    auto holder = [&](Processor& p) -> sim::Task {
      co_await p.write_lock(lock);
      co_await p.compute(stagger);
      co_await p.unlock(lock);
    };
    auto chaser = [&](Processor& p) -> sim::Task {
      co_await p.compute(5);
      co_await p.write_lock(lock);
      second_got_it = true;
      co_await p.unlock(lock);
    };
    m.spawn(holder(m.processor(0)));
    m.spawn(chaser(m.processor(1)));
    run_all(m);
    EXPECT_TRUE(second_got_it) << "stagger " << stagger;
  }
}

TEST(Cbl, ReaderUnlockWhileOthersHold) {
  // Mid-queue reader release: remaining readers keep the lock; a queued
  // writer gets it only after the last reader leaves.
  Machine m(paper_config(4));
  const Addr lock = 16;
  int readers_in = 0;
  bool writer_saw_readers = false;
  bool writer_done = false;
  auto reader = [&](Processor& p, Tick hold) -> sim::Task {
    co_await p.read_lock(lock);
    ++readers_in;
    co_await p.compute(hold);
    --readers_in;
    co_await p.unlock(lock);
  };
  auto writer = [&](Processor& p) -> sim::Task {
    co_await p.compute(100);  // arrive while readers hold
    co_await p.write_lock(lock);
    writer_saw_readers = readers_in != 0;
    writer_done = true;
    co_await p.unlock(lock);
  };
  m.spawn(reader(m.processor(0), 400));
  m.spawn(reader(m.processor(1), 900));  // releases last
  m.spawn(writer(m.processor(2)));
  run_all(m);
  EXPECT_TRUE(writer_done);
  EXPECT_FALSE(writer_saw_readers);
}

TEST(Cbl, LockCacheCapacityStallsExtraLocks) {
  auto cfg = paper_config(2);
  cfg.lock_cache_entries = 2;
  Machine m(cfg);
  // Hold 2 locks, then a third acquisition must stall until one releases.
  const Addr l1 = 0, l2 = 16, l3 = 32;
  std::vector<int> order;
  auto prog = [&](Processor& p) -> sim::Task {
    co_await p.write_lock(l1);
    co_await p.write_lock(l2);
    order.push_back(1);
    // l3 cannot start until a slot frees; run the release after a delay.
    co_await p.unlock(l1);
    co_await p.write_lock(l3);
    order.push_back(2);
    co_await p.unlock(l2);
    co_await p.unlock(l3);
  };
  m.spawn(prog(m.processor(0)));
  run_all(m);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Cbl, ManyLocksManyProcessorsStress) {
  Machine m(paper_config(8));
  std::vector<Addr> locks = {0, 16, 32, 48};
  std::vector<Addr> counters;
  for (Addr l : locks) counters.push_back(l + 1);
  constexpr int kIters = 12;
  auto prog = [&](Processor& p) -> sim::Task {
    auto& rng = p.rng();
    for (int k = 0; k < kIters; ++k) {
      const std::size_t li = rng.next_below(locks.size());
      co_await p.write_lock(locks[li]);
      const Word v = co_await p.read(counters[li]);
      co_await p.compute(1 + rng.next_below(10));
      co_await p.write(counters[li], v + 1);
      co_await p.unlock(locks[li]);
    }
  };
  for (NodeId i = 0; i < 8; ++i) m.spawn(prog(m.processor(i)));
  run_all(m);
  Word total = 0;
  for (Addr c : counters) total += m.peek_memory(c);
  EXPECT_EQ(total, 8u * kIters);
}

TEST(Cbl, PaperFigure3QueueStructure) {
  // The paper's worked example: P1:read-lock, P2:read-lock, P3:write-lock
  // on location i. Expected final state (paper Figure 3): P1 and P2 share
  // the lock (prev/next linked), P3 waits at the tail, and the central
  // directory's queue pointer names P3.
  Machine m(paper_config(4));
  const Addr i_addr = 16;
  const BlockId blk = 4;  // 16 / block_words(4)
  bool p3_granted = false;
  auto p1 = [&](Processor& p) -> sim::Task {
    co_await p.read_lock(i_addr);
    co_await p.compute(5000);  // hold while the queue forms
    co_await p.unlock(i_addr);
  };
  auto p2 = [&](Processor& p) -> sim::Task {
    co_await p.compute(50);
    co_await p.read_lock(i_addr);
    co_await p.compute(5000);
    co_await p.unlock(i_addr);
  };
  auto p3 = [&](Processor& p) -> sim::Task {
    co_await p.compute(100);
    co_await p.write_lock(i_addr);
    p3_granted = true;
    co_await p.unlock(i_addr);
  };
  m.spawn(p1(m.processor(1)));
  m.spawn(p2(m.processor(2)));
  m.spawn(p3(m.processor(3)));
  m.run_until(2000);  // pause mid-scenario: queue formed, locks still held

  // Central directory: usage bit set for lock use; queue pointer = P3.
  const auto* e = m.directory(m.address_map().home_of(blk)).peek(blk);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->usage_lock);
  ASSERT_EQ(e->lock_chain.size(), 3u);
  EXPECT_EQ(e->lock_chain[0].node, 1u);
  EXPECT_EQ(e->lock_chain[1].node, 2u);
  EXPECT_EQ(e->lock_chain[2].node, 3u);
  EXPECT_EQ(e->lock_tail(), 3u);
  EXPECT_EQ(e->lock_holders, 2u) << "P1 and P2 share; P3 waits";

  // Distributed pointers in the cache lines (Figure 3's doubly-linked
  // list): P1 <-> P2 <-> P3.
  const auto* l1 = m.cache_controller(1).lock_cache().find(blk);
  const auto* l2 = m.cache_controller(2).lock_cache().find(blk);
  const auto* l3 = m.cache_controller(3).lock_cache().find(blk);
  ASSERT_NE(l1, nullptr);
  ASSERT_NE(l2, nullptr);
  ASSERT_NE(l3, nullptr);
  EXPECT_EQ(l1->lock, cache::LockState::kHeldRead);
  EXPECT_EQ(l2->lock, cache::LockState::kHeldRead);
  EXPECT_EQ(l3->lock, cache::LockState::kWaitWrite);
  EXPECT_EQ(l1->next, 2u);
  EXPECT_EQ(l2->prev, 1u);
  EXPECT_EQ(l2->next, 3u);
  EXPECT_EQ(l3->prev, 2u);
  EXPECT_EQ(l3->next, kNoNode);

  // Let the scenario finish: the readers release, P3 gets the lock.
  run_all(m);
  EXPECT_TRUE(p3_granted);
}

TEST(Cbl, ReadLockDataIsFreshAfterWriterChain) {
  // Writer updates protected data under write-lock; a later reader's
  // grant must deliver the updated data even though memory may be stale
  // (cache-to-cache handoff carries the block).
  Machine m(paper_config(3));
  const Addr lock = 16;
  Word reader_saw = 0;
  auto writer = [&](Processor& p) -> sim::Task {
    co_await p.write_lock(lock);
    co_await p.write(lock + 3, 321);
    co_await p.compute(200);
    co_await p.unlock(lock);
  };
  auto reader = [&](Processor& p) -> sim::Task {
    co_await p.compute(50);  // enqueue behind the writer
    co_await p.read_lock(lock);
    reader_saw = co_await p.read(lock + 3);
    co_await p.unlock(lock);
  };
  m.spawn(writer(m.processor(0)));
  m.spawn(reader(m.processor(1)));
  run_all(m);
  EXPECT_EQ(reader_saw, 321u);
  EXPECT_EQ(m.peek_memory(lock + 3), 321u) << "final unlock must write back";
}

}  // namespace
}  // namespace bcsim
