// Latency-histogram and CSV-export tests: the instrumentation the bench
// harnesses and users rely on must itself be correct.
#include <gtest/gtest.h>

#include <sstream>

#include "test_util.hpp"

namespace bcsim {
namespace {

using core::Machine;
using core::Processor;
using test::paper_config;
using test::run_all;
using test::small_config;

TEST(Latency, ReadMissHistogramMatchesObservedLatency) {
  Machine m(small_config(2));
  Tick observed = 0;
  auto prog = [&](Processor& p) -> sim::Task {
    const Tick t0 = p.simulator().now();
    co_await p.read(100);
    observed = p.simulator().now() - t0;
  };
  m.spawn(prog(m.processor(0)));
  run_all(m);
  const auto* h = m.stats().find_histogram("lat.read_miss");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
  EXPECT_EQ(h->sum(), observed);
}

TEST(Latency, HitsAreNotRecordedAsMisses) {
  Machine m(small_config(2));
  auto prog = [&](Processor& p) -> sim::Task {
    co_await p.read(100);  // miss
    for (int i = 0; i < 10; ++i) co_await p.read(101);  // hits
  };
  m.spawn(prog(m.processor(0)));
  run_all(m);
  EXPECT_EQ(m.stats().find_histogram("lat.read_miss")->count(), 1u);
}

TEST(Latency, LockAcquireLatencyGrowsWithContention) {
  auto run_locks = [](std::uint32_t n) {
    Machine m(paper_config(n));
    const Addr lock = 16;
    auto prog = [&](Processor& p) -> sim::Task {
      for (int k = 0; k < 5; ++k) {
        co_await p.write_lock(lock);
        co_await p.compute(50);
        co_await p.unlock(lock);
      }
    };
    std::deque<sim::Task> progs;
    for (NodeId i = 0; i < n; ++i) m.spawn(prog(m.processor(i)));
    m.run(50'000'000);
    const auto* h = m.stats().find_histogram("lat.lock_acquire");
    return h == nullptr ? 0.0 : h->mean();
  };
  const double solo = run_locks(1);
  const double contended = run_locks(8);
  EXPECT_GT(solo, 0.0);
  EXPECT_GT(contended, 3 * solo) << "queued waiters must show in acquire latency";
}

TEST(Latency, RmwAndReadUpdateHistogramsPopulate) {
  Machine m(paper_config(4));
  auto prog = [&](Processor& p) -> sim::Task {
    co_await p.fetch_add(200, 1);
    co_await p.read_update(204);
  };
  m.spawn(prog(m.processor(0)));
  run_all(m);
  ASSERT_NE(m.stats().find_histogram("lat.rmw"), nullptr);
  ASSERT_NE(m.stats().find_histogram("lat.read_update"), nullptr);
  EXPECT_EQ(m.stats().find_histogram("lat.rmw")->count(), 1u);
  EXPECT_EQ(m.stats().find_histogram("lat.read_update")->count(), 1u);
  // Latencies are round trips, not absolute timestamps.
  EXPECT_LT(m.stats().find_histogram("lat.read_update")->max(), 200u);
}

TEST(Csv, ExportContainsEveryStatistic) {
  Machine m(paper_config(2));
  auto prog = [&](Processor& p) -> sim::Task {
    co_await p.read(100);
    co_await p.write_global(104, 1);
    co_await p.flush_buffer();
  };
  m.spawn(prog(m.processor(0)));
  run_all(m);
  std::ostringstream os;
  m.stats().write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("kind,name,field,value"), std::string::npos);
  EXPECT_NE(csv.find("counter,net.messages,value,"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat.read_miss,mean,"), std::string::npos);
  EXPECT_NE(csv.find("histogram,net.latency,p99,"), std::string::npos);
}

}  // namespace
}  // namespace bcsim
