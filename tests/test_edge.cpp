// Boundary-condition suite: degenerate machines (one node, one-word
// blocks, direct-mapped single-set caches), extreme block sizes, and the
// corners of every workload's parameter space.
#include <gtest/gtest.h>

#include "core/sync/mutex.hpp"
#include "workload/fft_phases.hpp"
#include "workload/grid_stencil.hpp"
#include "workload/linear_solver.hpp"
#include "workload/stencil.hpp"
#include "workload/work_queue_model.hpp"
#include "test_util.hpp"

namespace bcsim {
namespace {

using core::Machine;
using core::MachineConfig;
using core::Processor;
using test::paper_config;
using test::run_all;
using test::small_config;

TEST(Edge, SingleNodeMachineRunsEveryPrimitive) {
  Machine m(paper_config(1));
  Word out = 0;
  auto prog = [&](Processor& p) -> sim::Task {
    co_await p.write_global(4, 10);
    co_await p.flush_buffer();
    out += co_await p.read_global(4);
    out += co_await p.read_update(4);
    co_await p.reset_update(4);
    co_await p.write_lock(16);
    co_await p.write(17, 1);
    co_await p.unlock(16);
    out += co_await p.fetch_add(8, 5);
    co_await p.barrier_arrive(24, 1);
    out += co_await p.read(17);
  };
  m.spawn(prog(m.processor(0)));
  run_all(m);
  EXPECT_EQ(out, 21u);  // 10 + 10 + 0 + 1
  EXPECT_EQ(m.peek_memory(17), 1u);
}

TEST(Edge, OneWordBlocks) {
  auto cfg = paper_config(4);
  cfg.block_words = 1;
  Machine m(cfg);
  const Addr lock = 7;
  auto prog = [&](Processor& p) -> sim::Task {
    for (int k = 0; k < 6; ++k) {
      co_await p.write_lock(lock);
      const Word v = co_await p.read(lock);
      co_await p.write(lock, v + 1);
      co_await p.unlock(lock);
    }
  };
  for (NodeId i = 0; i < 4; ++i) m.spawn(prog(m.processor(i)));
  run_all(m);
  EXPECT_EQ(m.peek_memory(lock), 24u);
}

TEST(Edge, MaximumBlockSize32Words) {
  auto cfg = paper_config(4);
  cfg.block_words = 32;
  Machine m(cfg);
  Word sum = 0;
  auto writer = [&](Processor& p) -> sim::Task {
    for (Addr w = 0; w < 32; ++w) co_await p.write_global(w, w + 1);
    co_await p.flush_buffer();
  };
  auto reader = [&](Processor& p) -> sim::Task {
    co_await p.compute(600);
    for (Addr w = 0; w < 32; ++w) sum += co_await p.read_update(w);
  };
  m.spawn(writer(m.processor(0)));
  m.spawn(reader(m.processor(1)));
  run_all(m);
  EXPECT_EQ(sum, 32u * 33 / 2);
}

TEST(Edge, DirectMappedSingleSetCache) {
  auto cfg = small_config(2);
  cfg.cache_blocks = 1;
  cfg.cache_assoc = 1;
  Machine m(cfg);
  auto prog = [&](Processor& p) -> sim::Task {
    // Every access evicts the previous line; correctness must survive.
    for (Addr a = 0; a < 64; a += 4) co_await p.write(a, a + 1);
    for (Addr a = 0; a < 64; a += 4) {
      const Word v = co_await p.read(a);
      EXPECT_EQ(v, a + 1);
    }
  };
  m.spawn(prog(m.processor(0)));
  run_all(m);
}

TEST(Edge, WorkQueueWithOneTask) {
  Machine m(paper_config(4));
  workload::WorkQueueConfig wq;
  wq.total_tasks = 1;
  wq.grain = 5;
  workload::WorkQueueWorkload w(m, wq);
  w.spawn_all(m);
  run_all(m);
  EXPECT_EQ(w.tasks_executed(m), 1u);
}

TEST(Edge, WorkQueueMoreProcessorsThanTasks) {
  Machine m(paper_config(16));
  workload::WorkQueueConfig wq;
  wq.total_tasks = 3;
  wq.grain = 5;
  workload::WorkQueueWorkload w(m, wq);
  w.spawn_all(m);
  run_all(m);
  EXPECT_EQ(w.tasks_executed(m), 3u);
}

TEST(Edge, SolverWithTwoProcessors) {
  Machine m(paper_config(2));
  workload::LinearSolverConfig sc;
  sc.iterations = 4;
  workload::LinearSolverWorkload w(m, sc);
  w.spawn_all(m);
  run_all(m);
  EXPECT_EQ(w.solution(m), w.reference());
}

TEST(Edge, GridStencilOneProcessorOwnsEverything) {
  Machine m(paper_config(1));
  workload::GridStencilConfig gc;
  gc.grid = 8;
  gc.sweeps = 3;
  workload::GridStencilWorkload w(m, gc);
  w.spawn_all(m);
  run_all(m);
  EXPECT_EQ(w.result(m), w.reference());
}

TEST(Edge, FftWithTwoNodes) {
  Machine m(paper_config(2));
  workload::FftPhasesWorkload w(m, {});
  w.spawn_all(m);
  run_all(m);
  EXPECT_EQ(w.actual(m), w.expected());
}

TEST(Edge, StencilMinimumChunk) {
  Machine m(paper_config(4));
  workload::StencilConfig sc;
  sc.cells_per_proc = 2;  // every cell is a chunk boundary
  sc.sweeps = 4;
  workload::StencilWorkload w(m, sc);
  w.spawn_all(m);
  run_all(m);
  EXPECT_EQ(w.result(m), w.reference());
}

TEST(Edge, LockWordZeroAddress) {
  Machine m(paper_config(2));
  auto prog = [&](Processor& p) -> sim::Task {
    co_await p.write_lock(0);
    co_await p.write(0, 9);
    co_await p.unlock(0);
  };
  m.spawn(prog(m.processor(0)));
  run_all(m);
  EXPECT_EQ(m.peek_memory(0), 9u);
}

TEST(Edge, MutexesAtEveryNodeCount) {
  for (std::uint32_t n : {1u, 2u, 3u}) {
    auto cfg = paper_config(n);
    Machine m(cfg);
    auto alloc = m.make_allocator(50);
    auto mtx = sync::make_mutex(core::LockImpl::kCbl, alloc, n);
    const Addr counter = mtx->lock_addr() + 1;
    struct Prog {
      sync::Mutex& mtx;
      Addr counter;
      sim::Task operator()(Processor& p) const {
        for (int k = 0; k < 4; ++k) {
          co_await mtx.acquire(p);
          const Word v = co_await p.read(counter);
          co_await p.write(counter, v + 1);
          co_await mtx.release(p);
        }
      }
    } prog{*mtx, counter};
    for (NodeId i = 0; i < n; ++i) m.spawn(prog(m.processor(i)));
    run_all(m);
    EXPECT_EQ(m.peek_memory(counter), static_cast<Word>(n) * 4) << n << " nodes";
  }
}

TEST(Edge, HugeAddressesInterleaveCorrectly) {
  Machine m(paper_config(4));
  const Addr far = (1ULL << 40) + 13;
  m.poke_memory(far, 5);
  Word v = 0;
  auto prog = [&](Processor& p) -> sim::Task { v = co_await p.read_global(far); };
  m.spawn(prog(m.processor(0)));
  run_all(m);
  EXPECT_EQ(v, 5u);
}

}  // namespace
}  // namespace bcsim
