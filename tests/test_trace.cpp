// Trace format and trace-driven replay tests.
#include <gtest/gtest.h>

#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <tuple>

#include "workload/trace.hpp"
#include "test_util.hpp"

namespace bcsim::workload {
namespace {

using core::Machine;
using test::paper_config;
using test::run_all;
using test::small_config;

TEST(TraceFormat, ParsesBasicRecords) {
  const auto t = Trace::parse_string(R"(# demo
0 r 16
0 w 16 7
1 rg 20
1 c 100
0 fl
)");
  ASSERT_EQ(t.size(), 5u);
  EXPECT_EQ(t.records()[0].op, TraceOp::kRead);
  EXPECT_EQ(t.records()[1].value, 7u);
  EXPECT_EQ(t.records()[2].proc, 1u);
  EXPECT_EQ(t.records()[3].op, TraceOp::kCompute);
  EXPECT_EQ(t.records()[3].addr, 100u);
  EXPECT_EQ(t.records()[4].op, TraceOp::kFlushBuffer);
}

TEST(TraceFormat, SkipsCommentsAndBlankLines) {
  const auto t = Trace::parse_string("\n   \n# comment only\n0 r 1\n");
  EXPECT_EQ(t.size(), 1u);
}

TEST(TraceFormat, RejectsMalformedInput) {
  EXPECT_THROW(Trace::parse_string("0 zz 1\n"), std::invalid_argument);
  EXPECT_THROW(Trace::parse_string("0 w 16\n"), std::invalid_argument);  // no value
  EXPECT_THROW(Trace::parse_string("garbage\n"), std::invalid_argument);
  EXPECT_THROW(Trace::parse_string("0 r\n"), std::invalid_argument);  // no addr
}

TEST(TraceFormat, WriteParseRoundTrip) {
  Trace t;
  t.append({0, TraceOp::kRead, 16, 0});
  t.append({1, TraceOp::kWriteGlobal, 20, 99});
  t.append({2, TraceOp::kFlushBuffer, 0, 0});
  t.append({0, TraceOp::kFetchAdd, 8, 3});
  std::ostringstream os;
  t.write(os);
  const auto t2 = Trace::parse_string(os.str());
  ASSERT_EQ(t2.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t2.records()[i].proc, t.records()[i].proc);
    EXPECT_EQ(t2.records()[i].op, t.records()[i].op);
    EXPECT_EQ(t2.records()[i].addr, t.records()[i].addr);
    EXPECT_EQ(t2.records()[i].value, t.records()[i].value);
  }
}

TEST(TraceFormat, PerProcessorSplitPreservesOrder) {
  const auto t = Trace::parse_string("0 r 1\n1 r 2\n0 r 3\n");
  const auto streams = t.per_processor(2);
  ASSERT_EQ(streams[0].size(), 2u);
  EXPECT_EQ(streams[0][1].addr, 3u);
  ASSERT_EQ(streams[1].size(), 1u);
  EXPECT_THROW(t.per_processor(1), std::invalid_argument);
}

TEST(TraceReplay, WbiWriteReadThroughTrace) {
  Machine m(small_config(2));
  const auto t = Trace::parse_string(R"(
0 w 16 41
0 c 50
1 r 16
)");
  TraceWorkload w(m, t);
  w.spawn_all(m);
  run_all(m);
  // The reader's GetS recalled the writer's dirty line to memory.
  EXPECT_EQ(m.peek_memory(16), 41u);
  EXPECT_EQ(w.checksums()[1], 41u) << "reader must have seen the write";
}

TEST(TraceReplay, PaperMachinePrimitivesThroughTrace) {
  Machine m(paper_config(2));
  const auto t = Trace::parse_string(R"(
1 ru 32
0 wg 32 9
0 fl
1 ru 32
)");
  TraceWorkload w(m, t);
  w.spawn_all(m);
  run_all(m);
  EXPECT_EQ(m.peek_memory(32), 9u);
  // The two streams race; each read-update independently saw 0 or 9, so
  // the reader's checksum is one of {0, 9, 18}.
  EXPECT_TRUE(w.checksums()[1] == 0u || w.checksums()[1] == 9u ||
              w.checksums()[1] == 18u)
      << "checksum " << w.checksums()[1];
}

TEST(TraceReplay, LocksThroughTrace) {
  Machine m(paper_config(2));
  const auto t = Trace::parse_string(R"(
0 wl 16
0 w 17 5
0 ul 16
1 wl 16
1 r 17
1 ul 16
)");
  TraceWorkload w(m, t);
  w.spawn_all(m);
  run_all(m);
  EXPECT_EQ(w.checksums()[1], 5u) << "data must ride the lock";
}

TEST(TraceCapture, RecordsPrimitiveStream) {
  Machine m(paper_config(2));
  workload::TraceRecorder rec(m);
  auto prog = [](core::Processor& p) -> sim::Task {
    co_await p.write_global(16, 5);
    co_await p.flush_buffer();
    co_await p.compute(10);
    co_await p.read_update(16);
  };
  m.spawn(prog(m.processor(0)));
  run_all(m);
  rec.detach();
  const auto& recs = rec.trace().records();
  ASSERT_EQ(recs.size(), 4u);
  EXPECT_EQ(recs[0].op, TraceOp::kWriteGlobal);
  EXPECT_EQ(recs[0].value, 5u);
  EXPECT_EQ(recs[1].op, TraceOp::kFlushBuffer);
  EXPECT_EQ(recs[2].op, TraceOp::kCompute);
  EXPECT_EQ(recs[2].addr, 10u);
  EXPECT_EQ(recs[3].op, TraceOp::kReadUpdate);
}

TEST(TraceCapture, CaptureReplayReproducesMemoryState) {
  // Record a lock-based program, then replay the captured trace on a
  // fresh machine: the final memory state must match. (Per-processor
  // program order is preserved; cross-processor interleaving may differ,
  // but this program's result is interleaving-independent.)
  auto run_original = [](workload::Trace* captured) {
    Machine m(paper_config(4));
    std::optional<workload::TraceRecorder> rec;
    if (captured) rec.emplace(m);
    const Addr lock = 16;
    auto prog = [&](core::Processor& p) -> sim::Task {
      for (int k = 0; k < 5; ++k) {
        co_await p.write_lock(lock);
        const Word v = co_await p.read(lock + 1);
        co_await p.write(lock + 1, v + 1);
        co_await p.unlock(lock);
      }
      co_await p.write_global(64 + p.id(), p.id() + 100);
      co_await p.flush_buffer();
    };
    for (NodeId i = 0; i < 4; ++i) m.spawn(prog(m.processor(i)));
    test::run_all(m);
    if (captured) *captured = rec->take();
    return std::tuple{m.peek_memory(17), m.peek_memory(64), m.peek_memory(67)};
  };
  workload::Trace captured;
  const auto orig = run_original(&captured);
  EXPECT_GT(captured.size(), 0u);

  Machine m2(paper_config(4));
  workload::TraceWorkload replay(m2, captured);
  replay.spawn_all(m2);
  test::run_all(m2);
  EXPECT_EQ(std::tuple(m2.peek_memory(17), m2.peek_memory(64), m2.peek_memory(67)), orig);
}

TEST(TraceCapture, RoundTripsThroughTextFormat) {
  Machine m(paper_config(2));
  workload::TraceRecorder rec(m);
  auto prog = [](core::Processor& p) -> sim::Task {
    co_await p.fetch_add(8, 3);
    co_await p.test_and_set(12);
    co_await p.write(20, 7);
  };
  m.spawn(prog(m.processor(1)));
  run_all(m);
  std::ostringstream os;
  rec.trace().write(os);
  const auto parsed = workload::Trace::parse_string(os.str());
  ASSERT_EQ(parsed.size(), rec.trace().size());
  EXPECT_EQ(parsed.records()[0].op, TraceOp::kFetchAdd);
  EXPECT_EQ(parsed.records()[1].op, TraceOp::kTestAndSet);
}

// ---------------------------------------------------------------------------
// Record round-trip: write → read → identical stream, for every opcode,
// plus the error paths a damaged trace file can take (truncation, binary
// junk where text was expected).
// ---------------------------------------------------------------------------

TEST(TraceFormat, EveryOpRoundTripsIdentically) {
  // One record per opcode. Fields an op does not carry stay 0 — the text
  // format drops them, so only then can the round-trip be identity.
  Trace t;
  NodeId proc = 0;
  for (const TraceOp op :
       {TraceOp::kRead, TraceOp::kWrite, TraceOp::kReadGlobal, TraceOp::kWriteGlobal,
        TraceOp::kReadUpdate, TraceOp::kResetUpdate, TraceOp::kFlushBuffer,
        TraceOp::kReadLock, TraceOp::kWriteLock, TraceOp::kUnlock, TraceOp::kCompute,
        TraceOp::kTestAndSet, TraceOp::kFetchAdd}) {
    TraceRecord r;
    r.proc = proc++ % 3;
    r.op = op;
    const bool has_addr = op != TraceOp::kFlushBuffer;
    const bool has_value = op == TraceOp::kWrite || op == TraceOp::kWriteGlobal ||
                           op == TraceOp::kFetchAdd;
    r.addr = has_addr ? 16 + 4 * proc : 0;
    r.value = has_value ? 100 + proc : 0;
    t.append(r);
    // The mnemonic itself must be a bijection.
    EXPECT_EQ(parse_trace_op(to_string(op)), op);
  }
  std::ostringstream os;
  t.write(os);
  const Trace back = Trace::parse_string(os.str());
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(back.records()[i].proc, t.records()[i].proc) << i;
    EXPECT_EQ(back.records()[i].op, t.records()[i].op) << i;
    EXPECT_EQ(back.records()[i].addr, t.records()[i].addr) << i;
    EXPECT_EQ(back.records()[i].value, t.records()[i].value) << i;
  }
  // A second trip through the text form is byte-identical — the writer is
  // a fixed point of parse∘write.
  std::ostringstream os2;
  back.write(os2);
  EXPECT_EQ(os2.str(), os.str());
}

TEST(TraceFormat, FileWriteReadRoundTrip) {
  Trace t;
  t.append({0, TraceOp::kWriteGlobal, 32, 9});
  t.append({1, TraceOp::kReadUpdate, 32, 0});
  t.append({0, TraceOp::kFlushBuffer, 0, 0});
  const std::string path = ::testing::TempDir() + "/trace_roundtrip.txt";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out);
    t.write(out);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in);
  const Trace back = Trace::parse(in);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back.records()[0].value, 9u);
  EXPECT_EQ(back.records()[1].op, TraceOp::kReadUpdate);
  EXPECT_EQ(back.records()[2].op, TraceOp::kFlushBuffer);
}

TEST(TraceFormat, TruncatedFileNamesTheBrokenLine) {
  // A file cut off mid-record (crash while writing, partial copy): the
  // parser must reject it and name the exact line, at every truncation
  // point that splits a record.
  const std::string full = "0 w 16 7\n1 ru 32\n0 fa 40 5\n";
  const auto expect_error_on_line = [](const std::string& text, const char* line) {
    try {
      (void)Trace::parse_string(text);
      FAIL() << "truncated trace accepted: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(std::string("line ") + line),
                std::string::npos)
          << e.what();
    }
  };
  expect_error_on_line("0 w 16 7\n1 ru 32\n0 fa 40\n", "3");  // value cut
  expect_error_on_line("0 w 16 7\n1 ru\n", "2");              // address cut
  expect_error_on_line("0 w 16 7\n1\n", "2");                 // op cut
  // Truncation at a record boundary is indistinguishable from a shorter
  // trace and parses fine.
  EXPECT_EQ(Trace::parse_string("0 w 16 7\n1 ru 32\n").size(), 2u);
  EXPECT_EQ(Trace::parse_string(full).size(), 3u);
}

TEST(TraceFormat, RejectsBinaryJunk) {
  // Wrong file handed to the parser (an ELF, a PNG, a gzip of the trace):
  // the magic bytes are not a <proc> integer, so line 1 is rejected
  // rather than silently yielding an empty or garbage stream.
  for (const std::string& magic :
       {std::string("\x7f""ELF\x02\x01\x01", 7), std::string("\x89PNG\r\n", 6),
        std::string("\x1f\x8b\x08", 3), std::string("BCTRACE-v2 0 r 16", 17)}) {
    EXPECT_THROW((void)Trace::parse_string(magic + "\n0 r 16\n"),
                 std::invalid_argument)
        << "accepted junk header: " << magic;
  }
}

TEST(TraceReplay, RmwThroughTrace) {
  Machine m(small_config(2));
  const auto t = Trace::parse_string(R"(
0 fa 40 5
0 fa 40 5
1 ts 44
)");
  TraceWorkload w(m, t);
  w.spawn_all(m);
  run_all(m);
  EXPECT_EQ(m.peek_memory(40), 10u);
  EXPECT_EQ(m.peek_memory(44), 1u);
}

}  // namespace
}  // namespace bcsim::workload
