// Linear equation solver (paper section 4.1 / Table 2 workload): the
// simulated machine must compute answers bit-identical to the host-side
// Jacobi reference, through every coherence scheme and x-vector layout.
#include <gtest/gtest.h>

#include <cmath>

#include "workload/linear_solver.hpp"
#include "test_util.hpp"

namespace bcsim {
namespace {

using core::Machine;
using core::MachineConfig;
using test::paper_config;
using test::run_all;
using test::small_config;

struct SolverParam {
  const char* name;
  bool paper_machine;
  bool separate_x;
};

class SolverCorrectness : public ::testing::TestWithParam<SolverParam> {};

TEST_P(SolverCorrectness, MatchesHostReferenceBitExactly) {
  auto cfg = GetParam().paper_machine ? paper_config(8) : small_config(8);
  cfg.network = core::NetworkKind::kOmega;
  cfg.cache_blocks = 256;
  Machine m(cfg);
  workload::LinearSolverConfig sc;
  sc.iterations = 6;
  sc.separate_x_blocks = GetParam().separate_x;
  workload::LinearSolverWorkload w(m, sc);
  w.spawn_all(m);
  run_all(m);
  const auto simulated = w.solution(m);
  const auto reference = w.reference();
  ASSERT_EQ(simulated.size(), reference.size());
  for (std::size_t i = 0; i < simulated.size(); ++i) {
    EXPECT_EQ(simulated[i], reference[i]) << "x[" << i << "] diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, SolverCorrectness,
    ::testing::Values(SolverParam{"WbiColocated", false, false},
                      SolverParam{"WbiSeparate", false, true},
                      SolverParam{"RuColocated", true, false},
                      SolverParam{"RuSeparate", true, true}),
    [](const auto& pinfo) { return std::string(pinfo.param.name); });

TEST(Solver, ConvergesTowardSolution) {
  auto cfg = paper_config(8);
  Machine m(cfg);
  workload::LinearSolverConfig sc;
  sc.iterations = 40;
  workload::LinearSolverWorkload w(m, sc);
  w.spawn_all(m);
  run_all(m);
  EXPECT_LT(w.residual(m), 1e-6) << "Jacobi on a diagonally dominant system must converge";
}

TEST(Solver, ReadUpdateTurnsIterationReadsIntoHits) {
  // The core Table 2 claim: after the first iteration, the read-update
  // machine's x-vector reads are local hits (updates are pushed), while
  // the WBI machine re-fetches invalidated lines every iteration.
  auto run_scheme = [](bool paper) {
    auto cfg = paper ? paper_config(8) : small_config(8);
    cfg.network = core::NetworkKind::kOmega;
    cfg.cache_blocks = 256;
    Machine m(cfg);
    workload::LinearSolverConfig sc;
    sc.iterations = 10;
    workload::LinearSolverWorkload w(m, sc);
    w.spawn_all(m);
    m.run(50'000'000);
    return m.stats().counter_value("cache.misses") +
           m.stats().counter_value("cache.read_update");
  };
  const auto ru_fetches = run_scheme(true);
  const auto wbi_fetches = run_scheme(false);
  EXPECT_LT(ru_fetches, wbi_fetches / 2)
      << "read-update must eliminate most re-fetches of the x vector";
}

TEST(Solver, SingleProcessorDegenerateCase) {
  auto cfg = paper_config(1);
  Machine m(cfg);
  workload::LinearSolverConfig sc;
  sc.iterations = 3;
  workload::LinearSolverWorkload w(m, sc);
  w.spawn_all(m);
  run_all(m);
  EXPECT_EQ(w.solution(m), w.reference());
}

}  // namespace
}  // namespace bcsim
