// Unit tests for the discrete-event kernel: event queue ordering,
// simulator semantics, the PRNG, statistics, and coroutine tasks.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/task.hpp"

namespace bcsim::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    q.push(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTickReportsEarliest) {
  EventQueue q;
  q.push(42, [] {});
  q.push(7, [] {});
  EXPECT_EQ(q.next_tick(), 7u);
  EXPECT_EQ(q.size(), 2u);
}

TEST(Simulator, AdvancesClockToEventTimes) {
  Simulator s;
  std::vector<Tick> seen;
  s.schedule(5, [&] { seen.push_back(s.now()); });
  s.schedule(2, [&] {
    seen.push_back(s.now());
    s.schedule(10, [&] { seen.push_back(s.now()); });
  });
  EXPECT_EQ(s.run(), RunResult::kIdle);
  EXPECT_EQ(seen, (std::vector<Tick>{2, 5, 12}));
}

TEST(Simulator, StopEndsLoop) {
  Simulator s;
  int fired = 0;
  s.schedule(1, [&] {
    ++fired;
    s.stop();
  });
  s.schedule(2, [&] { ++fired; });
  EXPECT_EQ(s.run(), RunResult::kStopped);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.run(), RunResult::kIdle);  // resumes where it left off
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, BudgetStopsRunawaySimulation) {
  Simulator s;
  std::function<void()> loop = [&] { s.schedule(10, loop); };
  s.schedule(0, loop);
  EXPECT_EQ(s.run(1000), RunResult::kBudget);
  EXPECT_LE(s.now(), 1000u);
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  Simulator s;
  s.schedule(10, [&] { EXPECT_THROW(s.schedule_at(5, [] {}), std::logic_error); });
  s.run();
}

TEST(Simulator, RunUntilAdvancesToBoundary) {
  Simulator s;
  int fired = 0;
  s.schedule(10, [&] { ++fired; });
  s.schedule(20, [&] { ++fired; });
  s.run_until(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 15u);
  s.run_until(25);
  EXPECT_EQ(fired, 2);
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  bool all_equal = true, any_diff = false;
  for (int i = 0; i < 1000; ++i) {
    const auto va = a.next_u64();
    all_equal = all_equal && (va == b.next_u64());
    any_diff = any_diff || (va != c.next_u64());
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff);
}

TEST(Rng, NextBelowIsInRangeAndCoversValues) {
  Rng r(7);
  std::map<std::uint64_t, int> histo;
  for (int i = 0; i < 30000; ++i) ++histo[r.next_below(10)];
  ASSERT_EQ(histo.size(), 10u);
  for (const auto& [v, count] : histo) {
    EXPECT_LT(v, 10u);
    EXPECT_GT(count, 2400) << "value " << v << " badly under-represented";
    EXPECT_LT(count, 3600) << "value " << v << " badly over-represented";
  }
}

TEST(Rng, ChanceMatchesProbabilityRoughly) {
  Rng r(99);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += r.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(Rng, NextBelowEdgeCases) {
  Rng r(1);
  EXPECT_EQ(r.next_below(0), 0u);
  EXPECT_EQ(r.next_below(1), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_LT(r.next_below(2), 2u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(5);
  Rng b = a.split();
  bool differs = false;
  for (int i = 0; i < 100; ++i) differs = differs || (a.next_u64() != b.next_u64());
  EXPECT_TRUE(differs);
}

TEST(Histogram, TracksMoments) {
  Histogram h;
  for (std::uint64_t v : {1u, 2u, 3u, 4u, 100u}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 110u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 22.0);
}

TEST(Histogram, QuantileApproximation) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.record(8);  // bit_width 4 -> bucket [8,15]
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 8.0);
  EXPECT_LE(p50, 15.0);
}

TEST(Histogram, EmptyIsSane) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(StatsRegistry, CountersAreStableAndNamed) {
  StatsRegistry reg;
  Counter& a = reg.counter("x.a");
  reg.counter("x.b").add(3);
  a.add(2);
  EXPECT_EQ(reg.counter_value("x.a"), 2u);
  EXPECT_EQ(reg.counter_value("x.b"), 3u);
  EXPECT_EQ(reg.counter_value("missing"), 0u);
  EXPECT_EQ(reg.sum_by_prefix("x."), 5u);
  EXPECT_EQ(reg.sum_by_prefix("y."), 0u);
}

TEST(StatsRegistry, ReportMentionsEverything) {
  StatsRegistry reg;
  reg.counter("alpha").add(1);
  reg.histogram("lat").record(5);
  std::ostringstream os;
  reg.report(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("lat"), std::string::npos);
}

TEST(Log, LevelsGateEmission) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError));
  set_log_level(LogLevel::kWarn);
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  set_log_level(LogLevel::kTrace);
  EXPECT_TRUE(log_enabled(LogLevel::kTrace));
  set_log_level(old);
}

TEST(Log, EmitDoesNotCrashOnEdgeInput) {
  log_emit(LogLevel::kError, "", 0, "");
  log_emit(LogLevel::kTrace, "component", ~0ULL, "tail message");
}

// --- coroutine tasks ---

Task trivial(int& out) {
  out = 42;
  co_return;
}

TEST(Task, LazyStart) {
  int out = 0;
  Task t = trivial(out);
  EXPECT_EQ(out, 0);  // initial_suspend: nothing ran yet
  t.start();
  EXPECT_EQ(out, 42);
  EXPECT_TRUE(t.done());
}

Task sleeper(Simulator& s, std::vector<Tick>& log) {
  log.push_back(s.now());
  co_await delay(s, 10);
  log.push_back(s.now());
  co_await delay(s, 5);
  log.push_back(s.now());
}

TEST(Task, DelayAwaitsSimTime) {
  Simulator s;
  std::vector<Tick> log;
  Task t = sleeper(s, log);
  s.schedule(0, [&t] { t.start(); });
  s.run();
  EXPECT_EQ(log, (std::vector<Tick>{0, 10, 15}));
  EXPECT_TRUE(t.done());
}

Task inner(Simulator& s, std::vector<int>& log) {
  log.push_back(1);
  co_await delay(s, 3);
  log.push_back(2);
}

Task outer(Simulator& s, std::vector<int>& log) {
  log.push_back(0);
  co_await inner(s, log);
  log.push_back(3);
}

TEST(Task, NestedAwaitResumesParent) {
  Simulator s;
  std::vector<int> log;
  Task t = outer(s, log);
  s.schedule(0, [&t] { t.start(); });
  s.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3}));
}

Task thrower() {
  throw std::runtime_error("boom");
  co_return;  // unreachable; marks this as a coroutine
}

TEST(Task, ExceptionIsCapturedAndRethrown) {
  Task t = thrower();
  t.start();
  EXPECT_TRUE(t.done());
  EXPECT_THROW(t.rethrow_if_failed(), std::runtime_error);
}

Task awaits_future(SimFuture<int> f, int& out) {
  out = co_await f;
}

TEST(SimFuture, ResolvesAcrossCallback) {
  SimFuture<int> f;
  int out = 0;
  Task t = awaits_future(f, out);
  t.start();
  EXPECT_EQ(out, 0);
  f.resolver()(7);
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(t.done());
}

TEST(SimFuture, ImmediateValueSkipsSuspension) {
  SimFuture<int> f;
  f.resolver()(3);
  int out = 0;
  Task t = awaits_future(f, out);
  t.start();
  EXPECT_EQ(out, 3);
}

}  // namespace
}  // namespace bcsim::sim
