// Direct unit tests for the thin sync wrappers: CblSharedMutex
// (core/sync/rw_lock.hpp) and CountingSemaphore (core/sync/semaphore.hpp).
// The lock and directory protocols underneath have their own suites
// (test_cbl, test_sync); these tests pin the wrapper-level contracts —
// reader concurrency, writer preference in the grant order, counting
// semantics, and the unsigned counter's underflow guard.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/machine.hpp"
#include "core/sync/rw_lock.hpp"
#include "core/sync/semaphore.hpp"
#include "test_util.hpp"

namespace bcsim {
namespace {

using core::Machine;
using core::Processor;
using test::paper_config;
using test::run_all;
using test::small_config;

core::MachineConfig cbl_config(std::uint32_t n_nodes) {
  auto cfg = small_config(n_nodes);
  cfg.lock_impl = core::LockImpl::kCbl;
  cfg.barrier_impl = core::BarrierImpl::kCbl;
  return cfg;
}

// ---------------------------------------------------------------------------
// CblSharedMutex
// ---------------------------------------------------------------------------

// Readers overlap: with N readers each holding the lock across a long
// compute, at least two must be inside simultaneously (a mutual-exclusion
// lock would serialize them).
TEST(CblSharedMutex, ReadersShareTheLock) {
  const auto cfg = cbl_config(4);
  Machine m(cfg);
  auto alloc = m.make_allocator();
  sync::CblSharedMutex rw(alloc);
  int inside = 0;
  int peak = 0;
  struct Reader {
    sync::CblSharedMutex& rw;
    int& inside;
    int& peak;
    sim::Task operator()(Processor& p) const {
      co_await rw.lock_shared(p);
      ++inside;
      peak = std::max(peak, inside);
      co_await p.compute(200);
      --inside;
      co_await rw.unlock(p);
    }
  } reader{rw, inside, peak};
  for (NodeId i = 0; i < cfg.n_nodes; ++i) m.spawn(reader(m.processor(i)));
  run_all(m);
  EXPECT_GE(peak, 2) << "read holders never overlapped";
  EXPECT_EQ(inside, 0);
}

// Writers exclude everyone: concurrent writers incrementing a word in the
// protected block must not lose updates, and no two may overlap.
TEST(CblSharedMutex, WritersAreExclusive) {
  const auto cfg = cbl_config(4);
  Machine m(cfg);
  auto alloc = m.make_allocator();
  sync::CblSharedMutex rw(alloc);
  const Addr counter = rw.lock_addr() + 1;
  constexpr int kIters = 5;
  int inside = 0;
  bool overlapped = false;
  struct Writer {
    sync::CblSharedMutex& rw;
    Addr counter;
    int& inside;
    bool& overlapped;
    sim::Task operator()(Processor& p) const {
      for (int k = 0; k < kIters; ++k) {
        co_await rw.lock(p);
        if (++inside > 1) overlapped = true;
        const Word v = co_await p.read(counter);
        co_await p.compute(3);
        co_await p.write(counter, v + 1);
        --inside;
        co_await rw.unlock(p);
      }
    }
  } writer{rw, counter, inside, overlapped};
  for (NodeId i = 0; i < cfg.n_nodes; ++i) m.spawn(writer(m.processor(i)));
  run_all(m);
  EXPECT_FALSE(overlapped);
  EXPECT_EQ(m.peek_memory(counter), static_cast<Word>(cfg.n_nodes) * kIters);
}

// Writer preference under contention: the CBL directory only lets a new
// reader join the current holder group while the whole waiting chain is
// read-mode — once a writer queues, later readers queue behind it rather
// than slipping into the active group (src/proto/directory_cbl.cpp's
// share condition). With readers holding the lock, a writer arriving
// before a late reader must run before that reader.
TEST(CblSharedMutex, QueuedWriterBlocksLaterReaders) {
  const auto cfg = cbl_config(4);
  Machine m(cfg);
  auto alloc = m.make_allocator();
  sync::CblSharedMutex rw(alloc);
  std::vector<int> order;  // 0 = early reader, 1 = writer, 2 = late reader
  struct EarlyReader {
    sync::CblSharedMutex& rw;
    std::vector<int>& order;
    sim::Task operator()(Processor& p) const {
      co_await rw.lock_shared(p);
      order.push_back(0);
      co_await p.compute(400);  // hold long enough for the others to queue
      co_await rw.unlock(p);
    }
  } early{rw, order};
  struct LockWriter {
    sync::CblSharedMutex& rw;
    std::vector<int>& order;
    sim::Task operator()(Processor& p) const {
      co_await p.compute(100);  // arrive while the early readers hold
      co_await rw.lock(p);
      order.push_back(1);
      co_await rw.unlock(p);
    }
  } writer{rw, order};
  struct LateReader {
    sync::CblSharedMutex& rw;
    std::vector<int>& order;
    sim::Task operator()(Processor& p) const {
      co_await p.compute(250);  // arrive after the writer queued
      co_await rw.lock_shared(p);
      order.push_back(2);
      co_await rw.unlock(p);
    }
  } late{rw, order};
  m.spawn(early(m.processor(0)));
  m.spawn(early(m.processor(1)));
  m.spawn(writer(m.processor(2)));
  m.spawn(late(m.processor(3)));
  run_all(m);
  ASSERT_EQ(order.size(), 4u);
  const auto writer_at = std::find(order.begin(), order.end(), 1);
  const auto late_at = std::find(order.begin(), order.end(), 2);
  EXPECT_LT(writer_at - order.begin(), late_at - order.begin())
      << "a reader that arrived after a queued writer ran before it";
}

// ---------------------------------------------------------------------------
// CountingSemaphore
// ---------------------------------------------------------------------------

// P blocks at zero and resumes on V; the count returns to its initial
// value once every P has been matched.
TEST(CountingSemaphore, PBlocksUntilV) {
  const auto cfg = paper_config(2);
  Machine m(cfg);
  auto alloc = m.make_allocator();
  sync::CountingSemaphore sem(cfg.lock_impl, alloc, cfg.n_nodes, 0);
  m.poke_memory(sem.count_addr(), 0);
  bool consumed = false;
  bool produced = false;
  struct Consumer {
    sync::CountingSemaphore& sem;
    bool& consumed;
    const bool& produced;
    sim::Task operator()(Processor& p) const {
      co_await sem.p_op(p);
      EXPECT_TRUE(produced) << "P returned before any V";
      consumed = true;
    }
  } consumer{sem, consumed, produced};
  struct Producer {
    sync::CountingSemaphore& sem;
    bool& produced;
    sim::Task operator()(Processor& p) const {
      co_await p.compute(500);
      produced = true;
      co_await sem.v_op(p);
    }
  } producer{sem, produced};
  m.spawn(consumer(m.processor(0)));
  m.spawn(producer(m.processor(1)));
  run_all(m);
  EXPECT_TRUE(consumed);
  EXPECT_EQ(m.peek_coherent(sem.count_addr()), 0u);
}

// The counting-V underflow guard: the count is an unsigned Word, and P
// only decrements behind the `c > 0` check inside the mutex — a throttle
// hammered by more waiters than permits must never wrap the counter.
// (An underflow would show up as a huge count and admit everyone.)
TEST(CountingSemaphore, ThrottleNeverUnderflows) {
  const auto cfg = paper_config(8);
  Machine m(cfg);
  auto alloc = m.make_allocator();
  constexpr Word kPermits = 2;
  sync::CountingSemaphore sem(cfg.lock_impl, alloc, cfg.n_nodes, kPermits);
  m.poke_memory(sem.count_addr(), kPermits);
  int inside = 0;
  int peak = 0;
  struct Worker {
    sync::CountingSemaphore& sem;
    int& inside;
    int& peak;
    sim::Task operator()(Processor& p) const {
      for (int k = 0; k < 2; ++k) {
        co_await sem.p_op(p);
        ++inside;
        peak = std::max(peak, inside);
        co_await p.compute(20 + 10 * (p.id() % 3));
        --inside;
        co_await sem.v_op(p);
      }
    }
  } worker{sem, inside, peak};
  for (NodeId i = 0; i < cfg.n_nodes; ++i) m.spawn(worker(m.processor(i)));
  run_all(m);
  EXPECT_LE(peak, static_cast<int>(kPermits)) << "more holders than permits";
  EXPECT_GE(peak, 1);
  EXPECT_EQ(m.peek_coherent(sem.count_addr()), kPermits)
      << "count did not return to the initial permit level";
}

// Counting semantics: V-ing k times before any P admits exactly k waiters.
TEST(CountingSemaphore, AccumulatesSignals) {
  const auto cfg = paper_config(4);
  Machine m(cfg);
  auto alloc = m.make_allocator();
  sync::CountingSemaphore sem(cfg.lock_impl, alloc, cfg.n_nodes, 0);
  m.poke_memory(sem.count_addr(), 0);
  int admitted = 0;
  struct Waiter {
    sync::CountingSemaphore& sem;
    int& admitted;
    sim::Task operator()(Processor& p) const {
      co_await sem.p_op(p);
      ++admitted;
    }
  } waiter{sem, admitted};
  struct Signaler {
    sync::CountingSemaphore& sem;
    sim::Task operator()(Processor& p) const {
      co_await sem.v_op(p);
      co_await sem.v_op(p);
      co_await sem.v_op(p);
    }
  } signaler{sem};
  for (NodeId i = 0; i < 3; ++i) m.spawn(waiter(m.processor(i)));
  m.spawn(signaler(m.processor(3)));
  run_all(m);
  EXPECT_EQ(admitted, 3);
  EXPECT_EQ(m.peek_coherent(sem.count_addr()), 0u);
}

}  // namespace
}  // namespace bcsim
