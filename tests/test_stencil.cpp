// Red-black stencil workload: bit-exact against the host reference on
// every machine variant and network — the nearest-neighbor counterpart of
// the all-to-all solver test.
#include <gtest/gtest.h>

#include "workload/grid_stencil.hpp"
#include "workload/stencil.hpp"
#include "test_util.hpp"

namespace bcsim {
namespace {

using core::Machine;
using core::MachineConfig;
using test::paper_config;
using test::run_all;
using test::small_config;

struct StencilParam {
  const char* name;
  bool paper;
  core::NetworkKind net;
};

class StencilCorrectness : public ::testing::TestWithParam<StencilParam> {};

TEST_P(StencilCorrectness, MatchesHostReferenceBitExactly) {
  auto cfg = GetParam().paper ? paper_config(8) : small_config(8);
  cfg.network = GetParam().net;
  Machine m(cfg);
  workload::StencilWorkload w(m, {});
  w.spawn_all(m);
  run_all(m);
  const auto sim_x = w.result(m);
  const auto ref_x = w.reference();
  ASSERT_EQ(sim_x.size(), ref_x.size());
  for (std::size_t i = 0; i < sim_x.size(); ++i) {
    EXPECT_EQ(sim_x[i], ref_x[i]) << "cell " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Machines, StencilCorrectness,
    ::testing::Values(StencilParam{"WbiOmega", false, core::NetworkKind::kOmega},
                      StencilParam{"WbiMesh", false, core::NetworkKind::kMesh},
                      StencilParam{"RuOmega", true, core::NetworkKind::kOmega},
                      StencilParam{"RuMesh", true, core::NetworkKind::kMesh}),
    [](const auto& pinfo) { return std::string(pinfo.param.name); });

TEST(Stencil, HaloTrafficIsNeighborLocalOnRuMachine) {
  // Only chunk-boundary cells are shared; the subscription lists should
  // stay tiny (at most one remote reader per halo cell), so RU update
  // propagations involve single-hop chains.
  auto cfg = paper_config(8);
  Machine m(cfg);
  workload::StencilConfig sc;
  sc.sweeps = 4;
  workload::StencilWorkload w(m, sc);
  w.spawn_all(m);
  run_all(m);
  const auto props = m.stats().counter_value("dir.ru_propagations");
  const auto received = m.stats().counter_value("cache.ru_updates_received");
  ASSERT_GT(props, 0u);
  // Each propagation reaches ~1 subscriber: received/propagations ~ 1.
  EXPECT_LE(received, 2 * props) << "subscription lists unexpectedly long";
}

TEST(Stencil, ScalesAcrossNodeCounts) {
  for (std::uint32_t n : {2u, 4u, 16u}) {
    auto cfg = paper_config(n);
    Machine m(cfg);
    workload::StencilWorkload w(m, {});
    w.spawn_all(m);
    run_all(m);
    EXPECT_EQ(w.result(m), w.reference()) << n << " nodes";
  }
}

class GridStencilCorrectness : public ::testing::TestWithParam<StencilParam> {};

TEST_P(GridStencilCorrectness, MatchesHostReferenceBitExactly) {
  auto cfg = GetParam().paper ? paper_config(8) : small_config(8);
  cfg.network = GetParam().net;
  cfg.cache_blocks = 128;
  Machine m(cfg);
  workload::GridStencilWorkload w(m, {});
  w.spawn_all(m);
  run_all(m);
  const auto sim_g = w.result(m);
  const auto ref_g = w.reference();
  ASSERT_EQ(sim_g.size(), ref_g.size());
  for (std::size_t i = 0; i < sim_g.size(); ++i) {
    EXPECT_EQ(sim_g[i], ref_g[i]) << "cell " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Machines, GridStencilCorrectness,
    ::testing::Values(StencilParam{"WbiOmega", false, core::NetworkKind::kOmega},
                      StencilParam{"WbiMesh", false, core::NetworkKind::kMesh},
                      StencilParam{"RuOmega", true, core::NetworkKind::kOmega},
                      StencilParam{"RuMesh", true, core::NetworkKind::kMesh}),
    [](const auto& pinfo) { return std::string(pinfo.param.name); });

TEST(GridStencil, OddProcessorCountsAndNonDividingGrids) {
  for (std::uint32_t n : {3u, 5u, 6u, 7u, 9u}) {
    auto cfg = paper_config(n);
    Machine m(cfg);
    workload::GridStencilConfig gc;
    gc.grid = 13;  // does not divide evenly into tiles
    gc.sweeps = 3;
    workload::GridStencilWorkload w(m, gc);
    w.spawn_all(m);
    run_all(m);
    EXPECT_EQ(w.result(m), w.reference()) << n << " nodes";
  }
}

TEST(GridStencil, EvictionPressureStillExact) {
  // A cache too small for the tile forces dirty evictions mid-sweep; the
  // uniprocessor-style PutM write-back path (read-update machine) must
  // preserve exactness.
  auto cfg = paper_config(4);
  cfg.cache_blocks = 8;
  cfg.cache_assoc = 2;
  Machine m(cfg);
  workload::GridStencilConfig gc;
  gc.grid = 16;
  gc.sweeps = 2;
  workload::GridStencilWorkload w(m, gc);
  w.spawn_all(m);
  run_all(m);
  EXPECT_GT(m.stats().counter_value("cache.writebacks"), 0u)
      << "test needs eviction pressure to mean anything";
  EXPECT_EQ(w.result(m), w.reference());
}

TEST(Stencil, LargerChunksReduceSharedFraction) {
  auto traffic = [](std::uint32_t cells) {
    auto cfg = paper_config(8);
    core::Machine m(cfg);
    workload::StencilConfig sc;
    sc.cells_per_proc = cells;
    sc.sweeps = 4;
    workload::StencilWorkload w(m, sc);
    w.spawn_all(m);
    m.run(100'000'000ULL);
    // Normalize by total cell updates.
    return static_cast<double>(m.stats().counter_value("net.messages")) /
           (static_cast<double>(cells) * 8);
  };
  EXPECT_LT(traffic(32), traffic(4))
      << "surface-to-volume: bigger chunks amortize halo traffic";
}

}  // namespace
}  // namespace bcsim
