// Workload model tests: the work-queue and sync models run to completion on
// every machine variant, execute exactly the configured work, and are
// deterministic for a given seed.
#include <gtest/gtest.h>

#include "workload/fft_phases.hpp"
#include "workload/sync_model.hpp"
#include "workload/work_queue_model.hpp"
#include "test_util.hpp"

namespace bcsim {
namespace {

using core::Machine;
using core::MachineConfig;
using test::paper_config;
using test::run_all;
using test::small_config;

MachineConfig wbi_machine(std::uint32_t n, core::LockImpl lock) {
  auto cfg = small_config(n);
  cfg.network = core::NetworkKind::kOmega;
  cfg.lock_impl = lock;
  cfg.cache_blocks = 256;
  return cfg;
}

struct WqParam {
  const char* name;
  bool paper;
  core::LockImpl lock;
};

class WorkQueueAllMachines : public ::testing::TestWithParam<WqParam> {};

TEST_P(WorkQueueAllMachines, ExecutesExactlyTheBudget) {
  auto cfg = GetParam().paper ? paper_config(8) : wbi_machine(8, GetParam().lock);
  cfg.network = core::NetworkKind::kOmega;
  Machine m(cfg);
  workload::WorkQueueConfig wq;
  wq.total_tasks = 64;
  wq.grain = 20;
  workload::WorkQueueWorkload w(m, wq);
  w.spawn_all(m);
  run_all(m);
  EXPECT_EQ(w.tasks_executed(m), 64u);
}

INSTANTIATE_TEST_SUITE_P(
    Machines, WorkQueueAllMachines,
    ::testing::Values(WqParam{"PaperCbl", true, core::LockImpl::kCbl},
                      WqParam{"WbiTts", false, core::LockImpl::kTts},
                      WqParam{"WbiBackoff", false, core::LockImpl::kTtsBackoff},
                      WqParam{"WbiMcs", false, core::LockImpl::kMcs},
                      WqParam{"WbiTicket", false, core::LockImpl::kTicket}),
    [](const auto& pinfo) { return std::string(pinfo.param.name); });

TEST(WorkQueue, DeterministicForSeed) {
  auto run_once = [](std::uint64_t seed) {
    auto cfg = paper_config(4);
    cfg.network = core::NetworkKind::kOmega;
    cfg.seed = seed;
    Machine m(cfg);
    workload::WorkQueueConfig wq;
    wq.total_tasks = 32;
    wq.grain = 10;
    workload::WorkQueueWorkload w(m, wq);
    w.spawn_all(m);
    return m.run(20'000'000);
  };
  EXPECT_EQ(run_once(7), run_once(7)) << "same seed must reproduce exactly";
  EXPECT_NE(run_once(7), run_once(8)) << "different seed should perturb timing";
}

TEST(WorkQueue, ScalesAcrossNodeCounts) {
  // More processors must not break correctness (completion may vary).
  for (std::uint32_t n : {2u, 4u, 16u}) {
    auto cfg = paper_config(n);
    cfg.network = core::NetworkKind::kOmega;
    Machine m(cfg);
    workload::WorkQueueConfig wq;
    wq.total_tasks = 48;
    wq.grain = 8;
    workload::WorkQueueWorkload w(m, wq);
    w.spawn_all(m);
    run_all(m);
    EXPECT_EQ(w.tasks_executed(m), 48u) << n << " nodes";
  }
}

TEST(SyncModel, RunsToCompletionOnBothMachines) {
  for (bool paper : {false, true}) {
    auto cfg = paper ? paper_config(8) : wbi_machine(8, core::LockImpl::kTts);
    Machine m(cfg);
    workload::SyncModelConfig sm;
    sm.tasks_per_proc = 6;
    sm.grain = 30;
    workload::SyncModelWorkload w(m, sm);
    w.spawn_all(m);
    const Tick t = run_all(m);
    EXPECT_GT(t, 0u);
  }
}

TEST(SyncModel, SharedRatioDrivesTraffic) {
  auto run_ratio = [](double ratio) {
    auto cfg = small_config(4);
    cfg.network = core::NetworkKind::kOmega;
    Machine m(cfg);
    workload::SyncModelConfig sm;
    sm.tasks_per_proc = 4;
    sm.grain = 200;
    sm.shared_ratio = ratio;
    workload::SyncModelWorkload w(m, sm);
    w.spawn_all(m);
    m.run(20'000'000);
    return m.stats().counter_value("net.messages");
  };
  EXPECT_GT(run_ratio(0.5), 2 * run_ratio(0.01))
      << "shared-access ratio must drive network traffic";
}

TEST(SyncModel, LockRatioZeroMeansOnlyBarriers) {
  auto cfg = paper_config(4);
  Machine m(cfg);
  workload::SyncModelConfig sm;
  sm.tasks_per_proc = 5;
  sm.grain = 10;
  sm.lock_ratio = 0.0;
  workload::SyncModelWorkload w(m, sm);
  w.spawn_all(m);
  run_all(m);
  EXPECT_EQ(m.stats().counter_value("dir.lock_req"), 0u);
  EXPECT_GT(m.stats().counter_value("dir.barrier_arrivals"), 0u);
}

TEST(FftPhases, ComputesExactButterflyOnBothMachines) {
  for (bool paper : {false, true}) {
    auto cfg = paper ? paper_config(8) : wbi_machine(8, core::LockImpl::kTts);
    Machine m(cfg);
    workload::FftPhasesWorkload w(m, {});
    w.spawn_all(m);
    run_all(m);
    EXPECT_EQ(w.actual(m), w.expected())
        << (paper ? "read-update machine" : "WBI machine");
  }
}

TEST(FftPhases, ResetUpdatePruneKeepsListsSmall) {
  // With RESET-UPDATE after each phase, subscription lists stay bounded:
  // the number of updates delivered should be far below the no-reset
  // upper bound of (subscribers x writes).
  auto cfg = paper_config(8);
  Machine m(cfg);
  workload::FftPhasesWorkload w(m, {});
  w.spawn_all(m);
  run_all(m);
  EXPECT_GT(m.stats().counter_value("dir.reset_update"), 0u);
}

TEST(FftPhases, NonPowerOfTwoNodeCountsUseLargestSubset) {
  auto cfg = paper_config(6);  // rounds down to 4 participants
  Machine m(cfg);
  workload::FftPhasesWorkload w(m, {});
  w.spawn_all(m);
  run_all(m);
  EXPECT_EQ(w.actual(m), w.expected());
}

}  // namespace
}  // namespace bcsim
