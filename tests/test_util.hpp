// Shared helpers for the bcsim test suite.
#pragma once

#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/machine.hpp"

namespace bcsim::test {

/// Small machine configuration with predictable timing (ideal network) for
/// protocol unit tests.
inline core::MachineConfig small_config(std::uint32_t n_nodes = 4) {
  core::MachineConfig cfg;
  cfg.n_nodes = n_nodes;
  cfg.block_words = 4;
  cfg.cache_blocks = 64;
  cfg.cache_assoc = 4;
  cfg.lock_cache_entries = 8;
  cfg.network = core::NetworkKind::kIdeal;
  cfg.ideal_latency = 4;
  return cfg;
}

/// Configuration of the paper's machine (read-update + CBL + buffered
/// consistency) at small scale.
inline core::MachineConfig paper_config(std::uint32_t n_nodes = 4) {
  auto cfg = small_config(n_nodes);
  cfg.data_protocol = core::DataProtocol::kReadUpdate;
  cfg.consistency = core::Consistency::kBuffered;
  cfg.lock_impl = core::LockImpl::kCbl;
  cfg.barrier_impl = core::BarrierImpl::kCbl;
  return cfg;
}

/// Runs the machine to completion with a generous safety budget and
/// asserts that every program finished and the system went quiescent.
inline Tick run_all(core::Machine& m, Tick budget = 20'000'000) {
  const Tick t = m.run(budget);
  EXPECT_TRUE(m.all_done()) << "programs stuck at tick " << t;
  EXPECT_TRUE(m.quiescent()) << "protocol activity still outstanding at tick " << t;
  return t;
}

}  // namespace bcsim::test
