// Synchronization library tests: every mutex implementation must provide
// mutual exclusion and eventual completion under contention; semaphores and
// the reader-writer lock compose correctly.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/sync/mutex.hpp"
#include "core/sync/rw_lock.hpp"
#include "core/sync/semaphore.hpp"
#include "test_util.hpp"

namespace bcsim {
namespace {

using core::LockImpl;
using core::Machine;
using core::MachineConfig;
using core::Processor;
using test::paper_config;
using test::run_all;
using test::small_config;

MachineConfig config_for(LockImpl impl, std::uint32_t n) {
  if (impl == LockImpl::kCbl) {
    // Exercise CBL on the paper's machine.
    auto cfg = paper_config(n);
    return cfg;
  }
  auto cfg = small_config(n);
  cfg.lock_impl = impl;
  cfg.network = core::NetworkKind::kOmega;
  return cfg;
}

// Critical-section data access helpers matching the machine mode.
sim::SimFuture<Word> workload_read(Processor& p, Addr a, bool rides) {
  if (p.config().data_protocol == core::DataProtocol::kReadUpdate && !rides) {
    return p.read_global(a);
  }
  return p.read(a);
}
sim::SimFuture<Word> workload_write(Processor& p, Addr a, Word v, bool rides) {
  if (p.config().data_protocol == core::DataProtocol::kReadUpdate && !rides) {
    return p.write_global(a, v);
  }
  return p.write(a, v);
}

class MutexExclusion : public ::testing::TestWithParam<LockImpl> {};

TEST_P(MutexExclusion, CounterIncrementsAreNotLost) {
  const LockImpl impl = GetParam();
  auto cfg = config_for(impl, 8);
  Machine m(cfg);
  auto alloc = m.make_allocator(/*start_block=*/100);
  auto mtx = sync::make_mutex(impl, alloc, m.n_nodes());
  // Counter placement: rides the CBL lock; separate coherent word otherwise.
  const Addr counter =
      mtx->data_rides_lock() ? mtx->lock_addr() + 1 : alloc.alloc_blocks(1);
  constexpr int kIters = 15;
  int in_cs = 0;
  bool overlap = false;
  auto prog = [&, counter](Processor& p) -> sim::Task {
    for (int k = 0; k < kIters; ++k) {
      co_await mtx->acquire(p);
      overlap = overlap || (in_cs != 0);
      ++in_cs;
      const Word v = co_await workload_read(p, counter, mtx->data_rides_lock());
      co_await p.compute(2);
      co_await workload_write(p, counter, v + 1, mtx->data_rides_lock());
      --in_cs;
      co_await mtx->release(p);
    }
  };
  for (NodeId i = 0; i < m.n_nodes(); ++i) m.spawn(prog(m.processor(i)));
  run_all(m);
  EXPECT_FALSE(overlap);
  EXPECT_EQ(m.peek_coherent(counter), static_cast<Word>(m.n_nodes()) * kIters);
}

INSTANTIATE_TEST_SUITE_P(AllImpls, MutexExclusion,
                         ::testing::Values(LockImpl::kCbl, LockImpl::kTts,
                                           LockImpl::kTtsBackoff, LockImpl::kTicket,
                                           LockImpl::kMcs),
                         [](const auto& pinfo) {
                           return std::string(core::to_string(pinfo.param)) == "tts-backoff"
                                      ? std::string("ttsBackoff")
                                      : std::string(core::to_string(pinfo.param));
                         });

class MutexFairness : public ::testing::TestWithParam<LockImpl> {};

TEST_P(MutexFairness, QueueLocksGrantInArrivalOrder) {
  // Queue-based locks (CBL, ticket, MCS) must grant in request order.
  const LockImpl impl = GetParam();
  auto cfg = config_for(impl, 6);
  Machine m(cfg);
  auto alloc = m.make_allocator(100);
  auto mtx = sync::make_mutex(impl, alloc, m.n_nodes());
  std::vector<NodeId> order;
  auto prog = [&](Processor& p, Tick stagger) -> sim::Task {
    co_await p.compute(stagger);
    co_await mtx->acquire(p);
    order.push_back(p.id());
    co_await p.compute(300);
    co_await mtx->release(p);
  };
  for (NodeId i = 0; i < 6; ++i) m.spawn(prog(m.processor(i), 40 * static_cast<Tick>(i)));
  run_all(m);
  ASSERT_EQ(order.size(), 6u);
  for (NodeId i = 0; i < 6; ++i) EXPECT_EQ(order[i], i);
}

INSTANTIATE_TEST_SUITE_P(QueueLocks, MutexFairness,
                         ::testing::Values(LockImpl::kCbl, LockImpl::kTicket, LockImpl::kMcs),
                         [](const auto& pinfo) {
                           return std::string(core::to_string(pinfo.param));
                         });

TEST(Semaphore, BoundsConcurrency) {
  auto cfg = config_for(LockImpl::kTts, 8);
  Machine m(cfg);
  auto alloc = m.make_allocator(100);
  sync::CountingSemaphore sem(cfg.lock_impl, alloc, m.n_nodes(), 3);
  int inside = 0, peak = 0;
  bool init_done = false;
  auto initp = [&](Processor& p) -> sim::Task {
    co_await sem.init(p);
    init_done = true;
  };
  m.spawn(initp(m.processor(0)));
  m.run();
  ASSERT_TRUE(init_done);
  auto prog = [&](Processor& p) -> sim::Task {
    for (int k = 0; k < 4; ++k) {
      co_await sem.p_op(p);
      ++inside;
      peak = std::max(peak, inside);
      // Long enough that admissions overlap despite lock-protocol latency.
      co_await p.compute(3000);
      --inside;
      co_await sem.v_op(p);
    }
  };
  for (NodeId i = 0; i < 8; ++i) m.spawn(prog(m.processor(i)));
  run_all(m);
  EXPECT_LE(peak, 3) << "semaphore admitted more than its count";
  EXPECT_GE(peak, 2) << "suspicious: no concurrency at all";
}

TEST(RwLock, ReadersConcurrentWritersExclusive) {
  Machine m(paper_config(6));
  auto alloc = m.make_allocator(100);
  sync::CblSharedMutex rw(alloc);
  int readers = 0, writers = 0, peak_readers = 0;
  bool violation = false;
  auto reader = [&](Processor& p) -> sim::Task {
    for (int k = 0; k < 5; ++k) {
      co_await rw.lock_shared(p);
      ++readers;
      peak_readers = std::max(peak_readers, readers);
      violation = violation || writers != 0;
      co_await p.compute(120);
      --readers;
      co_await rw.unlock(p);
      co_await p.compute(30);
    }
  };
  auto writer = [&](Processor& p) -> sim::Task {
    for (int k = 0; k < 5; ++k) {
      co_await rw.lock(p);
      ++writers;
      violation = violation || readers != 0 || writers != 1;
      co_await p.compute(60);
      --writers;
      co_await rw.unlock(p);
      co_await p.compute(40);
    }
  };
  for (NodeId i = 0; i < 4; ++i) m.spawn(reader(m.processor(i)));
  m.spawn(writer(m.processor(4)));
  m.spawn(writer(m.processor(5)));
  run_all(m);
  EXPECT_FALSE(violation);
  EXPECT_GE(peak_readers, 2);
}

TEST(RwLock, WriterDataVisibleToSubsequentReaders) {
  Machine m(paper_config(4));
  auto alloc = m.make_allocator(100);
  sync::CblSharedMutex rw(alloc);
  const Addr data = rw.lock_addr() + 2;
  std::vector<Word> seen;
  auto writer = [&](Processor& p) -> sim::Task {
    co_await rw.lock(p);
    co_await p.write(data, 7);
    co_await rw.unlock(p);
  };
  auto reader = [&](Processor& p) -> sim::Task {
    co_await p.compute(200);
    co_await rw.lock_shared(p);
    seen.push_back(co_await p.read(data));
    co_await rw.unlock(p);
  };
  m.spawn(writer(m.processor(0)));
  for (NodeId i = 1; i < 4; ++i) m.spawn(reader(m.processor(i)));
  run_all(m);
  ASSERT_EQ(seen.size(), 3u);
  for (Word w : seen) EXPECT_EQ(w, 7u);
}

TEST(MutexFactory, RejectsNothing) {
  auto cfg = small_config(2);
  Machine m(cfg);
  auto alloc = m.make_allocator(100);
  for (LockImpl impl : {LockImpl::kCbl, LockImpl::kTts, LockImpl::kTtsBackoff,
                        LockImpl::kTicket, LockImpl::kMcs}) {
    EXPECT_NE(sync::make_mutex(impl, alloc, 2), nullptr);
  }
}

}  // namespace
}  // namespace bcsim
