// Cross-cutting integration tests: whole-machine invariants, configuration
// validation, determinism under the Omega network, and protocol
// coexistence.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "workload/work_queue_model.hpp"
#include "test_util.hpp"

namespace bcsim {
namespace {

using core::Machine;
using core::MachineConfig;
using core::Processor;
using test::paper_config;
using test::run_all;
using test::small_config;

TEST(Config, ValidationCatchesNonsense) {
  MachineConfig cfg;
  cfg.n_nodes = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = MachineConfig{};
  cfg.block_words = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = MachineConfig{};
  cfg.block_words = 33;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = MachineConfig{};
  cfg.cache_blocks = 10;
  cfg.cache_assoc = 4;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = MachineConfig{};
  cfg.consistency = core::Consistency::kBuffered;  // on WBI: rejected
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = MachineConfig{};
  cfg.data_protocol = core::DataProtocol::kReadUpdate;
  cfg.lock_impl = core::LockImpl::kTts;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_NO_THROW(MachineConfig{}.validate());
}

TEST(Machine, PeekPokeRoundTrip) {
  Machine m(small_config(4));
  m.poke_memory(1234, 77);
  EXPECT_EQ(m.peek_memory(1234), 77u);
  EXPECT_EQ(m.peek_memory(1235), 0u);
}

TEST(Machine, RunWithNoProgramsReturnsImmediately) {
  Machine m(small_config(2));
  EXPECT_EQ(m.run(), 0u);
  EXPECT_TRUE(m.all_done());
  EXPECT_TRUE(m.quiescent());
}

TEST(Machine, ProgramExceptionSurfacesFromRun) {
  Machine m(small_config(2));
  auto bad = [](Processor& p) -> sim::Task {
    co_await p.compute(5);
    throw std::runtime_error("program bug");
  };
  m.spawn(bad(m.processor(0)));
  EXPECT_THROW(m.run(), std::runtime_error);
}

TEST(Machine, CycleBudgetDetectsLivelock) {
  Machine m(small_config(2));
  auto spin_forever = [](Processor& p) -> sim::Task {
    for (;;) co_await p.compute(100);
  };
  m.spawn(spin_forever(m.processor(0)));
  EXPECT_THROW(m.run(10'000), std::runtime_error);
}

TEST(Machine, DeterministicAcrossRuns) {
  // Full determinism: identical config + seed => identical completion time
  // and identical message counts, even with Omega contention.
  auto run_once = [] {
    auto cfg = paper_config(8);
    cfg.network = core::NetworkKind::kOmega;
    Machine m(cfg);
    workload::WorkQueueConfig wq;
    wq.total_tasks = 40;
    wq.grain = 15;
    workload::WorkQueueWorkload w(m, wq);
    w.spawn_all(m);
    const Tick t = m.run(50'000'000);
    return std::pair{t, m.stats().counter_value("net.messages")};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Machine, StatsReportCoversSubsystems) {
  Machine m(paper_config(4));
  workload::WorkQueueConfig wq;
  wq.total_tasks = 16;
  wq.grain = 10;
  workload::WorkQueueWorkload w(m, wq);
  w.spawn_all(m);
  run_all(m);
  EXPECT_GT(m.stats().counter_value("net.messages"), 0u);
  EXPECT_GT(m.stats().counter_value("dir.lock_req"), 0u);
  EXPECT_GT(m.stats().sum_by_prefix("cache."), 0u);
}

TEST(Machine, WbiDirectoryInvariantsAtQuiescence) {
  // After any WBI run: no entry busy, and a modified entry has exactly one
  // owner and no sharers.
  auto cfg = small_config(8);
  cfg.network = core::NetworkKind::kOmega;
  Machine m(cfg);
  auto prog = [](Processor& p) -> sim::Task {
    auto& rng = p.rng();
    for (int k = 0; k < 200; ++k) {
      const Addr a = rng.next_below(64);
      if (rng.chance(0.5)) {
        co_await p.read(a);
      } else {
        co_await p.write(a, p.id());
      }
    }
  };
  for (NodeId i = 0; i < 8; ++i) m.spawn(prog(m.processor(i)));
  run_all(m);
  for (BlockId b = 0; b < 16; ++b) {
    const auto* e = m.directory(m.address_map().home_of(b)).peek(b);
    if (e == nullptr) continue;
    EXPECT_FALSE(e->busy()) << "block " << b;
    if (e->state == mem::DirState::kModified) {
      EXPECT_NE(e->owner, kNoNode);
      EXPECT_TRUE(e->sharers.empty());
    }
    if (e->state == mem::DirState::kShared) {
      std::set<NodeId> uniq(e->sharers.begin(), e->sharers.end());
      EXPECT_EQ(uniq.size(), e->sharers.size()) << "duplicate sharer for block " << b;
    }
  }
}

TEST(Machine, WbiOwnerCacheMatchesDirectory) {
  auto cfg = small_config(4);
  Machine m(cfg);
  auto prog = [](Processor& p) -> sim::Task {
    for (Addr a = 0; a < 32; a += 4) co_await p.write(a, p.id() + 1);
  };
  for (NodeId i = 0; i < 4; ++i) m.spawn(prog(m.processor(i)));
  run_all(m);
  for (BlockId b = 0; b < 8; ++b) {
    const auto* e = m.directory(m.address_map().home_of(b)).peek(b);
    ASSERT_NE(e, nullptr);
    if (e->state != mem::DirState::kModified) continue;
    const auto* line = m.cache_controller(e->owner).data_cache().find(b);
    ASSERT_NE(line, nullptr) << "directory owner lost its line, block " << b;
    EXPECT_EQ(line->msi, cache::MsiState::kModified);
  }
}

TEST(Machine, MixedLockAndDataTrafficQuiesces) {
  // Locks, barriers, global writes, and coherent traffic all at once; the
  // machine must drain completely.
  Machine m(paper_config(8));
  const Addr lock = 16;
  auto prog = [&](Processor& p) -> sim::Task {
    auto& rng = p.rng();
    for (int k = 0; k < 10; ++k) {
      co_await p.write_lock(lock);
      const Word v = co_await p.read(lock + 1);
      co_await p.write(lock + 1, v + 1);
      co_await p.unlock(lock);
      co_await p.write_global(256 + p.id() * 4, k);
      if (rng.chance(0.3)) co_await p.read_update(512);
      co_await p.flush_buffer();
    }
  };
  for (NodeId i = 0; i < 8; ++i) m.spawn(prog(m.processor(i)));
  run_all(m);
  EXPECT_EQ(m.peek_memory(lock + 1), 80u);
}

// Full configuration-space sweep: every legal combination of data
// protocol, lock, barrier, and network must run the work-queue workload
// to completion with exact task accounting. This is the cartesian smoke
// screen that catches cross-feature interactions no focused test names.
struct ConfigPoint {
  core::DataProtocol proto;
  core::LockImpl lock;
  core::BarrierImpl barrier;
  core::NetworkKind net;
};

class ConfigCartesian : public ::testing::TestWithParam<ConfigPoint> {};

TEST_P(ConfigCartesian, WorkQueueRunsExactly) {
  const auto& pt = GetParam();
  core::MachineConfig cfg;
  cfg.n_nodes = 8;
  cfg.cache_blocks = 64;
  cfg.cache_assoc = 4;
  cfg.lock_cache_entries = 8;
  cfg.data_protocol = pt.proto;
  cfg.consistency = pt.proto == core::DataProtocol::kReadUpdate
                        ? core::Consistency::kBuffered
                        : core::Consistency::kSequential;
  cfg.lock_impl = pt.lock;
  cfg.barrier_impl = pt.barrier;
  cfg.network = pt.net;
  Machine m(cfg);
  workload::WorkQueueConfig wq;
  wq.total_tasks = 24;
  wq.grain = 8;
  workload::WorkQueueWorkload w(m, wq);
  w.spawn_all(m);
  run_all(m);
  EXPECT_EQ(w.tasks_executed(m), 24u);
}

std::vector<ConfigPoint> all_legal_points() {
  std::vector<ConfigPoint> pts;
  for (auto proto : {core::DataProtocol::kWbi, core::DataProtocol::kReadUpdate}) {
    for (auto lock : {core::LockImpl::kCbl, core::LockImpl::kTts, core::LockImpl::kTtsBackoff,
                      core::LockImpl::kTicket, core::LockImpl::kMcs}) {
      if (proto == core::DataProtocol::kReadUpdate && lock != core::LockImpl::kCbl) {
        continue;  // software spin locks need coherent READ/WRITE
      }
      for (auto barrier : {core::BarrierImpl::kCbl, core::BarrierImpl::kCentral,
                           core::BarrierImpl::kTree}) {
        for (auto net : {core::NetworkKind::kOmega, core::NetworkKind::kCrossbar,
                         core::NetworkKind::kMesh, core::NetworkKind::kIdeal}) {
          pts.push_back({proto, lock, barrier, net});
        }
      }
    }
  }
  return pts;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, ConfigCartesian,
                         ::testing::ValuesIn(all_legal_points()),
                         [](const auto& pinfo) {
                           const auto& pt = pinfo.param;
                           std::string name(core::to_string(pt.proto) ==
                                                    std::string_view("wbi")
                                                ? "wbi"
                                                : "ru");
                           name += "_";
                           for (char c : std::string(core::to_string(pt.lock))) {
                             if (c != '-') name += c;
                           }
                           name += "_";
                           name += std::string(core::to_string(pt.barrier));
                           name += "_";
                           name += std::string(core::to_string(pt.net));
                           return name;
                         });

// Systematic race-window sweep for the read-update protocol: a subscriber
// unsubscribes/resubscribes at every cycle offset around a writer's
// write-global; the system must quiesce with memory and subscriptions
// consistent at every offset.
TEST(Machine, RuSubscribeUnsubscribeRaceSweep) {
  for (Tick offset = 0; offset < 25; ++offset) {
    Machine m(paper_config(3));
    const Addr a = 8;
    auto writer = [&](Processor& p) -> sim::Task {
      co_await p.compute(10);
      co_await p.write_global(a, 77);
      co_await p.flush_buffer();
    };
    auto churner = [&](Processor& p) -> sim::Task {
      co_await p.read_update(a);
      co_await p.compute(offset);
      co_await p.reset_update(a);
      co_await p.compute(3);
      co_await p.read_update(a);
    };
    m.spawn(writer(m.processor(0)));
    m.spawn(churner(m.processor(1)));
    run_all(m);
    EXPECT_EQ(m.peek_memory(a), 77u) << "offset " << offset;
    // If still subscribed with a clean line, it must match memory.
    if (const auto* line = m.cache_controller(1).data_cache().find(2)) {
      if (line->update_bit) {
        EXPECT_EQ(line->data[0], 77u) << "stale resubscriber at offset " << offset;
      }
    }
  }
}

TEST(Machine, SyncTrafficDominatesUnderContention) {
  // The paper's opening observation: "synchronization accesses cause much
  // greater network contention than accesses to normal shared data."
  // On the CBL machine (where sync has dedicated message types, so the
  // classification is exact), a contended work-queue run must show a
  // large synchronization share despite sync ops being a small fraction
  // of program operations.
  auto cfg = paper_config(16);
  cfg.network = core::NetworkKind::kOmega;
  Machine m(cfg);
  workload::WorkQueueConfig wq;
  wq.total_tasks = 64;
  wq.grain = 30;
  workload::WorkQueueWorkload w(m, wq);
  w.spawn_all(m);
  run_all(m);
  const double sync_msgs = static_cast<double>(m.stats().counter_value("net.sync_messages"));
  const double data_msgs = static_cast<double>(m.stats().counter_value("net.data_messages"));
  ASSERT_GT(sync_msgs, 0.0);
  ASSERT_GT(data_msgs, 0.0);
  EXPECT_GT(sync_msgs / (sync_msgs + data_msgs), 0.25)
      << "synchronization should account for an outsized share of traffic";
}

TEST(Machine, LargeScaleSmoke64Nodes) {
  auto cfg = paper_config(64);
  cfg.network = core::NetworkKind::kOmega;
  Machine m(cfg);
  workload::WorkQueueConfig wq;
  wq.total_tasks = 128;
  wq.grain = 5;
  workload::WorkQueueWorkload w(m, wq);
  w.spawn_all(m);
  run_all(m);
  EXPECT_EQ(w.tasks_executed(m), 128u);
}

}  // namespace
}  // namespace bcsim
