// Validation of the analytical Omega-network model against the simulated
// network: zero-load latency exact, queueing growth within modeling
// tolerance at moderate load, hot-spot saturation ordering correct.
#include <gtest/gtest.h>

#include <cmath>

#include "analytic/network_model.hpp"
#include "net/network.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace bcsim {
namespace {

/// Drives the simulated Omega network with Bernoulli(rho) per-node uniform
/// traffic for `cycles` cycles and returns the mean delivered latency.
double simulate_uniform(std::uint32_t n, double rho, Tick cycles, std::uint64_t seed) {
  sim::Simulator simulator;
  sim::StatsRegistry stats;
  net::OmegaNetwork network(simulator, stats, n, 1);
  for (NodeId d = 0; d < n; ++d) {
    network.attach(d, net::Unit::kMemory, [](const net::Message&) {});
  }
  sim::Rng rng(seed);
  for (Tick t = 0; t < cycles; ++t) {
    simulator.run_until(t);
    for (NodeId s = 0; s < n; ++s) {
      if (!rng.chance(rho)) continue;
      net::Message m;
      m.src = s;
      m.dst = static_cast<NodeId>(rng.next_below(n));
      if (m.dst == s) continue;  // local traffic bypasses the network
      m.unit = net::Unit::kMemory;
      network.send(std::move(m));
    }
  }
  simulator.run();
  const auto* h = stats.find_histogram("net.latency");
  return h == nullptr || h->count() == 0 ? 0.0 : h->mean();
}

TEST(OmegaModel, ZeroLoadLatencyIsExact) {
  analytic::OmegaModel m;
  m.n_nodes = 64;
  m.switch_delay = 1.0;
  m.service = 1.0;
  EXPECT_EQ(m.stages(), 6u);
  EXPECT_DOUBLE_EQ(m.base_latency(), 6.0);
  // One lone message in the simulator must match exactly.
  const double sim_lat = simulate_uniform(64, 0.0005, 2000, 1);
  EXPECT_NEAR(sim_lat, m.base_latency(), 0.5);
}

TEST(OmegaModel, StagesRoundUpForNonPowersOfTwo) {
  analytic::OmegaModel m;
  m.n_nodes = 33;
  EXPECT_EQ(m.stages(), 6u);
  m.n_nodes = 2;
  EXPECT_EQ(m.stages(), 1u);
}

TEST(OmegaModel, QueueingGrowsWithLoadLikeTheSimulator) {
  analytic::OmegaModel m;
  m.n_nodes = 64;
  const double lat_lo = simulate_uniform(64, 0.05, 4000, 7);
  const double lat_hi = simulate_uniform(64, 0.40, 4000, 7);
  EXPECT_GT(lat_hi, lat_lo) << "simulated latency must grow with load";
  // Model tracks the simulated latency within modeling tolerance (the
  // M/D/1 stage independence assumption is approximate).
  EXPECT_NEAR(m.latency(0.05), lat_lo, 0.25 * lat_lo);
  EXPECT_NEAR(m.latency(0.40), lat_hi, 0.35 * lat_hi);
}

TEST(OmegaModel, SaturationIsInfinite) {
  analytic::OmegaModel m;
  EXPECT_TRUE(std::isinf(m.latency(1.0)));
  EXPECT_TRUE(std::isinf(m.stage_wait(1.0)));
}

TEST(OmegaModel, HotspotSaturationMatchesPfisterNorton) {
  analytic::OmegaModel m;
  m.n_nodes = 64;
  // No hot spot: saturates at rho = 1. Full hot spot: at 1/N.
  EXPECT_DOUBLE_EQ(m.hotspot_saturation(0.0), 1.0);
  EXPECT_DOUBLE_EQ(m.hotspot_saturation(1.0), 1.0 / 64);
  // 5% hot traffic on 64 nodes saturates at ~24% offered load — the
  // headline number from the hot-spot literature.
  EXPECT_NEAR(m.hotspot_saturation(0.05), 0.24, 0.01);
}

TEST(OmegaModel, HotspotLatencyDominatesUniform) {
  analytic::OmegaModel m;
  m.n_nodes = 64;
  const double rho = 0.1;
  EXPECT_GT(m.hotspot_latency(rho, 0.05), m.latency(rho));
  EXPECT_TRUE(std::isinf(m.hotspot_latency(0.5, 0.05)))
      << "beyond the saturation bound the model must report saturation";
}

}  // namespace
}  // namespace bcsim
