// Fuzz tests: randomly generated (but well-formed) programs across many
// seeds must always terminate, quiesce, and reproduce deterministically on
// both machines. Every fuzz run doubles as an invariant-checker workout:
// random programs execute under (program_seed, schedule_seed) pairs with
// full invariant checking, so both the program space and the same-tick
// event orderings get explored together (docs/TESTING.md). Plus exhaustive
// two-processor interleaving sweeps for the lock protocol — every
// (stagger_a, stagger_b) offset pair in a window.
#include <gtest/gtest.h>

#include <vector>

#include "sim/invariants.hpp"
#include "test_util.hpp"

namespace bcsim {
namespace {

using core::Machine;
using core::MachineConfig;
using core::Processor;
using test::paper_config;
using test::run_all;
using test::small_config;

// ---------------------------------------------------------------------------
// Random well-formed program generator. Locks are acquired and released in
// LIFO order (hierarchical: deadlock-free); every program ends with a
// flush. The generator consumes only its own RNG, so a (seed, machine)
// pair defines the run exactly.
// ---------------------------------------------------------------------------
struct FuzzProgram {
  std::vector<Addr> locks;  // block-aligned lock addresses, global order
  int steps;
  bool ru_machine;

  sim::Task operator()(Processor& p) const {
    auto& rng = p.rng();
    std::vector<std::size_t> held;  // indices into locks, ascending
    for (int s = 0; s < steps; ++s) {
      const double dice = rng.next_double();
      if (dice < 0.25) {
        // Acquire the next lock in the global order (hierarchical).
        const std::size_t next = held.empty() ? rng.next_below(2) : held.back() + 1;
        if (next < locks.size() && held.size() < 2) {
          co_await p.write_lock(locks[next]);
          held.push_back(next);
        } else {
          co_await p.compute(3);
        }
      } else if (dice < 0.45) {
        if (!held.empty()) {
          // Write into the held lock's block, then release (LIFO).
          const Addr a = locks[held.back()] + 1 + rng.next_below(2);
          const Word v = co_await p.read(a);
          co_await p.write(a, v + 1);
          co_await p.unlock(locks[held.back()]);
          held.pop_back();
        } else {
          co_await p.compute(2);
        }
      } else if (dice < 0.65) {
        const Addr a = 256 + rng.next_below(64);
        if (ru_machine) {
          if (rng.chance(0.5)) {
            co_await p.write_global(a, rng.next_u64());
          } else {
            co_await p.read_update(a);
          }
        } else {
          if (rng.chance(0.5)) {
            co_await p.write(a, rng.next_u64());
          } else {
            co_await p.read(a);
          }
        }
      } else if (dice < 0.75) {
        if (ru_machine && rng.chance(0.5)) {
          co_await p.reset_update(256 + rng.next_below(64));
        } else {
          co_await p.fetch_add(512 + rng.next_below(8), 1);
        }
      } else if (dice < 0.85) {
        co_await p.flush_buffer();
      } else {
        co_await p.compute(1 + rng.next_below(15));
      }
    }
    // Wind down: release everything, drain the buffer.
    while (!held.empty()) {
      co_await p.unlock(locks[held.back()]);
      held.pop_back();
    }
    co_await p.flush_buffer();
  }
};

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, RandomProgramsQuiesceOnBothMachines) {
  for (bool paper : {true, false}) {
    auto cfg = paper ? paper_config(6) : small_config(6);
    cfg.network = core::NetworkKind::kOmega;
    cfg.seed = GetParam();
    cfg.lock_cache_entries = 4;
    if (!paper) cfg.lock_impl = core::LockImpl::kCbl;  // CBL works on WBI too
    Machine m(cfg);
    FuzzProgram prog{{0, 16, 32}, 120, paper};
    for (NodeId i = 0; i < 6; ++i) m.spawn(prog(m.processor(i)));
    run_all(m);  // asserts all_done + quiescent
  }
}

TEST_P(FuzzSeeds, RandomProgramsAreDeterministic) {
  auto run_once = [&] {
    auto cfg = paper_config(4);
    cfg.network = core::NetworkKind::kOmega;
    cfg.seed = GetParam();
    Machine m(cfg);
    FuzzProgram prog{{0, 16}, 80, true};
    for (NodeId i = 0; i < 4; ++i) m.spawn(prog(m.processor(i)));
    const Tick t = m.run(100'000'000);
    return std::pair{t, m.stats().counter_value("net.messages")};
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Range<std::uint64_t>(1, 17));

// ---------------------------------------------------------------------------
// (program_seed, schedule_seed) pairs: the program generator picks what the
// processors do; the schedule seed picks how same-tick events interleave.
// Crossing the two explores far more protocol corners than either axis
// alone, and full invariant checking turns every run into an oracle.
// ---------------------------------------------------------------------------

void run_fuzz_pair(std::uint64_t program_seed, std::uint64_t schedule_seed) {
  for (bool paper : {true, false}) {
    auto cfg = paper ? paper_config(5) : small_config(5);
    cfg.network = core::NetworkKind::kOmega;
    cfg.seed = program_seed;
    cfg.schedule_seed = schedule_seed;
    cfg.invariants = sim::InvariantLevel::kFull;
    cfg.lock_cache_entries = 4;
    if (!paper) cfg.lock_impl = core::LockImpl::kCbl;
    Machine m(cfg);
    FuzzProgram prog{{0, 16, 32}, 90, paper};
    for (NodeId i = 0; i < 5; ++i) m.spawn(prog(m.processor(i)));
    SCOPED_TRACE(::testing::Message()
                 << (paper ? "paper" : "wbi") << " program_seed=" << program_seed
                 << " schedule_seed=" << schedule_seed);
    run_all(m);  // any invariant violation throws out of Machine::run
  }
}

class FuzzPairs
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {};

TEST_P(FuzzPairs, RandomProgramsHoldInvariantsUnderRandomSchedules) {
  run_fuzz_pair(std::get<0>(GetParam()), std::get<1>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Grid, FuzzPairs,
                         ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 5, 11),
                                            ::testing::Values<std::uint64_t>(0, 1, 7, 23)));

// Regression corpus: (program_seed, schedule_seed) pairs that once exposed
// bugs or stressed rare transitions. Grown over time — when `bcsim check`
// or a fuzz sweep finds a failing pair, it gets pinned here so the exact
// interleaving replays on every tier-1 run.
struct CorpusEntry {
  std::uint64_t program_seed;
  std::uint64_t schedule_seed;
  const char* why;
};

constexpr CorpusEntry kRegressionCorpus[] = {
    // Found while bringing up Network::send_at: a directory DataS reply and
    // a later same-tick invalidation swapped on the wire, leaving a cached
    // sharer missing from the directory's sharer set (wbi-sharers).
    {3, 3, "DataS/Inv same-tick send reorder at the directory"},
    // Lock-chain handoff with the releaser re-requesting before its unlock
    // notification lands: the chain transiently names the node twice.
    {1, 14, "CBL re-request while handoff-done notify in flight"},
    // Heavy reset_update traffic against a propagating update wave.
    {9, 5, "RESET-UPDATE racing update propagation down the chain"},
    // Seed 0 baseline: the corpus must also cover plain FIFO order.
    {7, 0, "FIFO baseline with three-level lock hierarchy"},
};

TEST(FuzzCorpus, PinnedSeedPairsStayClean) {
  for (const auto& c : kRegressionCorpus) {
    SCOPED_TRACE(c.why);
    run_fuzz_pair(c.program_seed, c.schedule_seed);
  }
}

// ---------------------------------------------------------------------------
// Exhaustive two-processor interleaving sweep: every (a, b) stagger pair in
// a 20x20 window around a lock handoff. Covers the enqueue/release/drain
// races at single-cycle resolution.
// ---------------------------------------------------------------------------
TEST(Exhaustive, TwoProcessorLockOffsets) {
  int checked = 0;
  for (Tick a = 0; a < 20; ++a) {
    for (Tick b = 0; b < 20; ++b) {
      Machine m(paper_config(2));
      const Addr lock = 16;
      struct Prog {
        Addr lock;
        Tick delay;
        sim::Task operator()(Processor& p) const {
          co_await p.compute(delay);
          for (int k = 0; k < 2; ++k) {
            co_await p.write_lock(lock);
            const Word v = co_await p.read(lock + 1);
            co_await p.write(lock + 1, v + 1);
            co_await p.unlock(lock);
          }
        }
      };
      Prog pa{lock, a}, pb{lock, b};
      m.spawn(pa(m.processor(0)));
      m.spawn(pb(m.processor(1)));
      m.run(10'000'000);
      if (m.peek_memory(lock + 1) == 4u && m.all_done() && m.quiescent()) {
        ++checked;
      } else {
        ADD_FAILURE() << "offsets (" << a << "," << b << "): counter "
                      << m.peek_memory(lock + 1);
      }
    }
  }
  EXPECT_EQ(checked, 400);
}

// Same exhaustive treatment for reader/writer mixes around a shared lock.
TEST(Exhaustive, ReaderWriterOffsets) {
  for (Tick a = 0; a < 12; ++a) {
    for (Tick b = 0; b < 12; ++b) {
      Machine m(paper_config(3));
      const Addr lock = 16;
      bool violation = false;
      int writers_in = 0, readers_in = 0;
      struct Reader {
        Addr lock;
        Tick delay;
        bool& violation;
        int& writers_in;
        int& readers_in;
        sim::Task operator()(Processor& p) const {
          co_await p.compute(delay);
          co_await p.read_lock(lock);
          ++readers_in;
          violation = violation || writers_in != 0;
          co_await p.compute(10);
          --readers_in;
          co_await p.unlock(lock);
        }
      };
      struct Writer {
        Addr lock;
        Tick delay;
        bool& violation;
        int& writers_in;
        int& readers_in;
        sim::Task operator()(Processor& p) const {
          co_await p.compute(delay);
          co_await p.write_lock(lock);
          ++writers_in;
          violation = violation || readers_in != 0 || writers_in != 1;
          co_await p.compute(8);
          --writers_in;
          co_await p.unlock(lock);
        }
      };
      Reader r1{lock, a, violation, writers_in, readers_in};
      Reader r2{lock, b, violation, writers_in, readers_in};
      Writer w{lock, (a + b) / 2, violation, writers_in, readers_in};
      m.spawn(r1(m.processor(0)));
      m.spawn(r2(m.processor(1)));
      m.spawn(w(m.processor(2)));
      m.run(10'000'000);
      EXPECT_TRUE(m.all_done()) << "offsets (" << a << "," << b << ")";
      EXPECT_FALSE(violation) << "offsets (" << a << "," << b << ")";
    }
  }
}

// The paper declares READ-UPDATE and lock use of a block mutually
// exclusive; mixing them is a software error the directory must reject
// loudly rather than corrupt its queue pointer.
TEST(UsageBit, LockAndSubscriptionConflictIsDetected) {
  {
    Machine m(paper_config(2));
    auto prog = [&](Processor& p) -> sim::Task {
      co_await p.write_lock(16);
      co_await p.unlock(16);  // lock chain empty again: block reusable
    };
    m.spawn(prog(m.processor(0)));
    run_all(m);
    // After full release the block may be used for subscriptions again.
    Word v = 0;
    auto sub = [&](Processor& p) -> sim::Task { v = co_await p.read_update(16); };
    m.spawn(sub(m.processor(1)));
    run_all(m);
  }
  {
    Machine m(paper_config(2));
    auto bad = [&](Processor& p) -> sim::Task {
      co_await p.read_update(16);
      co_await p.write_lock(16);  // conflict: subscription list active
    };
    m.spawn(bad(m.processor(0)));
    EXPECT_THROW(m.run(), std::logic_error);
  }
  {
    Machine m(paper_config(2));
    auto hold_and_sub = [&](Processor& p) -> sim::Task {
      co_await p.write_lock(16);
      co_await p.read_update(16);  // conflict: lock queue active
    };
    m.spawn(hold_and_sub(m.processor(0)));
    EXPECT_THROW(m.run(), std::logic_error);
  }
}

}  // namespace
}  // namespace bcsim
