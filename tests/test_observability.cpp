// The event-trace observability layer (docs/OBSERVABILITY.md) and the
// fixes that shipped with it: the write buffer's watermark FLUSH gate
// (paper section 4.2 — a flush must not wait for writes issued after it),
// the retire underflow guard, and the histogram quantile clamp.
#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "cache/write_buffer.hpp"
#include "sim/invariants.hpp"
#include "sim/stats.hpp"
#include "sim/trace_recorder.hpp"
#include "test_util.hpp"

namespace bcsim {
namespace {

using core::Machine;
using core::Processor;
using sim::TraceKind;
using sim::TraceRecorder;

// ---------------------------------------------------------------------------
// WriteBuffer flush semantics (watermark, not empty-buffer).
// ---------------------------------------------------------------------------

TEST(WriteBuffer, FlushFiresImmediatelyWhenNothingPrecedesIt) {
  cache::WriteBuffer wb;
  bool flushed = false;
  wb.on_drained([&] { flushed = true; });
  EXPECT_TRUE(flushed);
  EXPECT_EQ(wb.waiters(), 0u);
}

TEST(WriteBuffer, WritesEnteredAfterTheFlushDoNotDelayIt) {
  cache::WriteBuffer wb;  // unbounded
  wb.enter();
  bool flushed = false;
  wb.on_drained([&] { flushed = true; });
  wb.enter();  // issued after the flush: outside its watermark
  EXPECT_FALSE(flushed);
  wb.retire();  // the one preceding write completes
  EXPECT_TRUE(flushed);
  EXPECT_EQ(wb.pending(), 1u);  // the later write is still in flight
}

// The starvation scenario the empty-buffer gate gets wrong: a bounded
// buffer whose freed slots refill immediately from a backlogged writer is
// never empty, yet the flush only covers the writes that preceded it.
TEST(WriteBuffer, BoundedBufferRefillPressureCannotStarveAFlush) {
  cache::WriteBuffer wb(2);
  wb.enter();
  wb.enter();  // full
  // A writer with an endless backlog: every freed slot is taken at once.
  std::function<void()> refill = [&] {
    wb.enter();
    wb.on_slot(refill);
  };
  wb.on_slot(refill);  // parks (buffer is full)
  bool flushed = false;
  std::size_t pending_at_flush = 0;
  wb.on_drained([&] {
    flushed = true;
    pending_at_flush = wb.pending();
  });  // watermark: the 2 writes already entered
  wb.retire();
  EXPECT_FALSE(flushed);  // only 1 of the 2 preceding writes has retired
  wb.retire();
  EXPECT_TRUE(flushed);
  EXPECT_EQ(pending_at_flush, 2u);  // fired while the buffer was still full
  EXPECT_FALSE(wb.empty());
}

TEST(WriteBuffer, FlushWaitersFireInRegistrationOrder) {
  cache::WriteBuffer wb;
  wb.enter();
  std::string order;
  wb.on_drained([&] { order += 'a'; });
  wb.enter();
  wb.on_drained([&] { order += 'b'; });
  wb.retire();
  EXPECT_EQ(order, "a");
  wb.retire();
  EXPECT_EQ(order, "ab");
}

TEST(WriteBuffer, RetireWithoutMatchingEntryThrows) {
  cache::WriteBuffer wb;
  EXPECT_THROW(wb.retire(), std::logic_error);
  wb.enter();
  wb.retire();
  EXPECT_THROW(wb.retire(), std::logic_error);  // second ack for one write
}

// Machine-level litmus: with a 1-entry buffer and a backlogged writer
// sharing the node, FLUSH-BUFFER must complete once the writes preceding
// it are globally performed — not once the (never-empty) buffer drains.
TEST(WriteBuffer, FlushCompletesUnderABackloggedWriterOnTheSameNode) {
  auto cfg = test::paper_config(4);
  cfg.write_buffer_entries = 1;
  Machine m(cfg);
  Tick flush_done = 0;
  Tick writer_done = 0;
  struct Writer {
    Tick& done;
    sim::Task operator()(Processor& p) const {
      for (int k = 0; k < 48; ++k) {
        co_await p.write_global(256 + 4 * static_cast<Addr>(k), static_cast<Word>(k));
      }
      done = p.simulator().now();
    }
  } writer{writer_done};
  struct Flusher {
    Tick& done;
    sim::Task operator()(Processor& p) const {
      co_await p.write_global(1024, 7);
      co_await p.flush_buffer();
      done = p.simulator().now();
    }
  } flusher{flush_done};
  m.spawn(writer(m.processor(0)));
  m.spawn(flusher(m.processor(0)));
  test::run_all(m);
  EXPECT_GT(flush_done, 0u);
  EXPECT_LT(flush_done, writer_done)
      << "flush waited for writes issued after it (empty-buffer gate)";
  EXPECT_EQ(m.peek_memory(1024), 7u);
}

// ---------------------------------------------------------------------------
// Histogram quantile clamp.
// ---------------------------------------------------------------------------

TEST(HistogramQuantile, EstimateNeverLeavesTheObservedRange) {
  sim::Histogram h;
  h.record(5);  // bucket [4,7]; raw midpoint 5.5 would exceed the max
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 5.0);

  sim::Histogram h2;
  h2.record(4);
  h2.record(5);
  EXPECT_GE(h2.quantile(0.01), 4.0);
  EXPECT_LE(h2.quantile(0.99), 5.0);

  sim::Histogram h3;
  h3.record(1000);  // bucket [512,1023]; both bounds clamp to 1000
  EXPECT_DOUBLE_EQ(h3.quantile(0.5), 1000.0);
}

TEST(HistogramQuantile, ZeroAndEmptyEdgeCases) {
  sim::Histogram empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  sim::Histogram h;
  h.record(0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  h.record(1);
  EXPECT_LE(h.quantile(0.99), 1.0);
}

// ---------------------------------------------------------------------------
// Network counter handles: caching Counter* must not change what is counted.
// ---------------------------------------------------------------------------

TEST(NetworkCounters, PerTypeTotalsStillMatchTheMessageCount) {
  for (const bool paper : {true, false}) {
    auto cfg = paper ? test::paper_config(4) : test::small_config(4);
    cfg.lock_impl = core::LockImpl::kCbl;
    Machine m(cfg);
    struct Prog {
      bool ru;
      sim::Task operator()(Processor& p) const {
        co_await p.write_lock(16);
        const Word v = co_await p.read(17);
        co_await p.write(17, v + 1);
        co_await p.unlock(16);
        if (ru) {
          co_await p.read_update(0);
          co_await p.write_global(0, p.id());
          co_await p.flush_buffer();
        } else {
          co_await p.read(64);
          co_await p.write(64, p.id());
        }
        co_await p.fetch_add(128, 1);
      }
    } prog{paper};
    for (NodeId i = 0; i < cfg.n_nodes; ++i) m.spawn(prog(m.processor(i)));
    test::run_all(m);
    const std::uint64_t total = m.stats().counter_value("net.messages");
    EXPECT_GT(total, 0u);
    EXPECT_EQ(m.stats().sum_by_prefix("net.msg."), total);
    EXPECT_EQ(m.stats().counter_value("net.sync_messages") +
                  m.stats().counter_value("net.data_messages"),
              total);
  }
}

// ---------------------------------------------------------------------------
// TraceRecorder: ring bounds, disabled cost model, exports.
// ---------------------------------------------------------------------------

TEST(TraceRecorder, DisabledRecorderRetainsNothing) {
  TraceRecorder tr;
  EXPECT_FALSE(tr.enabled());
  tr.wb_event(TraceKind::kWbEnter, 1, 0, 1);
  tr.record(sim::TraceRecord{});
  EXPECT_EQ(tr.size(), 0u);
  EXPECT_EQ(tr.recorded(), 0u);
  std::ostringstream os;
  tr.dump_tail(os, 8);  // must not crash on an empty ring
  EXPECT_NE(os.str().find("0 of 0 recorded"), std::string::npos);
}

TEST(TraceRecorder, RingOverwritesOldestAndCountsDrops) {
  TraceRecorder tr;
  tr.enable(4);
  for (std::uint64_t v = 0; v < 10; ++v) {
    tr.wb_event(TraceKind::kWbEnter, static_cast<Tick>(v), 0, v);
  }
  EXPECT_EQ(tr.capacity(), 4u);
  EXPECT_EQ(tr.size(), 4u);
  EXPECT_EQ(tr.recorded(), 10u);
  EXPECT_EQ(tr.dropped(), 6u);
  std::uint64_t expect = 6;  // oldest retained record first
  tr.for_each([&](const sim::TraceRecord& r) { EXPECT_EQ(r.value, expect++); });
  EXPECT_EQ(expect, 10u);
  tr.enable(8);  // re-enabling clears
  EXPECT_EQ(tr.size(), 0u);
  EXPECT_EQ(tr.recorded(), 0u);
}

TEST(TraceRecorder, DumpTailShowsOnlyTheNewestRecords) {
  TraceRecorder tr;
  tr.enable(16);
  for (std::uint64_t v = 1; v <= 6; ++v) {
    tr.wb_event(TraceKind::kWbRetire, static_cast<Tick>(100 + v), 2, v);
  }
  std::ostringstream os;
  tr.dump_tail(os, 2);
  const std::string s = os.str();
  EXPECT_NE(s.find("2 of 6 recorded"), std::string::npos) << s;
  EXPECT_EQ(s.find("[103]"), std::string::npos) << s;
  EXPECT_NE(s.find("[105]"), std::string::npos) << s;
  EXPECT_NE(s.find("[106]"), std::string::npos) << s;
  EXPECT_NE(s.find("wb-retire"), std::string::npos) << s;
}

// ---------------------------------------------------------------------------
// End-to-end: a traced run touches all five instrumented subsystems, and
// the exports carry the records.
// ---------------------------------------------------------------------------

/// Locks, a barrier, subscriptions, buffered global writes, and an RMW:
/// one program that makes every subsystem leave records.
sim::Task traced_worker(Processor& p, std::uint32_t participants) {
  co_await p.write_lock(16);
  const Word v = co_await p.read(17);
  co_await p.write(17, v + 1);
  co_await p.unlock(16);
  co_await p.read_update(0);
  co_await p.write_global(4 * p.id(), p.id() + 1);
  co_await p.flush_buffer();
  co_await p.fetch_add(128, 1);
  co_await p.barrier_arrive(32, participants);
}

TEST(TraceE2E, TracedRunRecordsAllFiveSubsystems) {
  auto cfg = test::paper_config(4);
  cfg.trace = true;
  Machine m(cfg);
  ASSERT_TRUE(m.simulator().trace().enabled());
  for (NodeId i = 0; i < cfg.n_nodes; ++i) {
    m.spawn(traced_worker(m.processor(i), cfg.n_nodes));
  }
  test::run_all(m);

  const TraceRecorder& tr = m.simulator().trace();
  EXPECT_GT(tr.recorded(), 0u);
  std::set<TraceKind> kinds;
  tr.for_each([&](const sim::TraceRecord& r) { kinds.insert(r.kind); });
  // All five subsystems: network (send + deliver), cache, directory,
  // synchronization, write buffer (the full enter/retire/flush cycle).
  EXPECT_TRUE(kinds.count(TraceKind::kMsgSend));
  EXPECT_TRUE(kinds.count(TraceKind::kMsgDeliver));
  EXPECT_TRUE(kinds.count(TraceKind::kCacheState));
  EXPECT_TRUE(kinds.count(TraceKind::kDirState));
  EXPECT_TRUE(kinds.count(TraceKind::kSyncOp));
  EXPECT_TRUE(kinds.count(TraceKind::kWbEnter));
  EXPECT_TRUE(kinds.count(TraceKind::kWbRetire));
  EXPECT_TRUE(kinds.count(TraceKind::kWbFlushReq));
  EXPECT_TRUE(kinds.count(TraceKind::kWbFlushDone));
}

TEST(TraceE2E, ChromeJsonAndCsvExportsCarryTheRecords) {
  auto cfg = test::paper_config(4);
  cfg.trace = true;
  Machine m(cfg);
  for (NodeId i = 0; i < cfg.n_nodes; ++i) {
    m.spawn(traced_worker(m.processor(i), cfg.n_nodes));
  }
  test::run_all(m);

  std::ostringstream json;
  m.simulator().trace().write_chrome_json(json);
  const std::string j = json.str();
  EXPECT_EQ(j.rfind("{\"traceEvents\":[", 0), 0u) << j.substr(0, 80);
  EXPECT_EQ(j.back(), '}');
  EXPECT_NE(j.find("\"ph\":\"M\""), std::string::npos);  // track metadata
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);  // events
  EXPECT_NE(j.find("\"write-buffer\""), std::string::npos);
  EXPECT_NE(j.find("\"directory\""), std::string::npos);
  EXPECT_NE(j.find("\"network\""), std::string::npos);
  EXPECT_NE(j.find("\"recorded\":"), std::string::npos);

  std::ostringstream csv;
  m.simulator().trace().write_csv(csv);
  const std::string c = csv.str();
  EXPECT_EQ(c.rfind("tick,kind,name,node,peer,block,detail,detail2,value\n", 0), 0u);
  EXPECT_NE(c.find("msg-send"), std::string::npos);
  EXPECT_NE(c.find("dir-state"), std::string::npos);
}

TEST(TraceE2E, TracingDoesNotChangeTheSchedule) {
  auto run_once = [](bool trace) {
    auto cfg = test::paper_config(4);
    cfg.trace = trace;
    Machine m(cfg);
    for (NodeId i = 0; i < cfg.n_nodes; ++i) {
      m.spawn(traced_worker(m.processor(i), cfg.n_nodes));
    }
    const Tick t = test::run_all(m);
    return std::pair<Tick, std::uint64_t>{t, m.stats().counter_value("net.messages")};
  };
  const auto plain = run_once(false);
  const auto traced = run_once(true);
  EXPECT_EQ(plain.first, traced.first);
  EXPECT_EQ(plain.second, traced.second);
}

// ---------------------------------------------------------------------------
// Violation dump: an invariant diagnostic comes with the trace tail.
// ---------------------------------------------------------------------------

TEST(TraceE2E, InvariantViolationDumpsTheTraceTail) {
  auto cfg = test::small_config(4);
  cfg.lock_impl = core::LockImpl::kCbl;
  cfg.invariants = sim::InvariantLevel::kQuiesce;
  cfg.trace = true;
  Machine m(cfg);
  struct Prog {
    sim::Task operator()(Processor& p) const {
      co_await p.write_lock(16);
      const Word v = co_await p.read(17);
      co_await p.write(17, v + 1);
      co_await p.unlock(16);
    }
  } prog;
  for (NodeId i = 0; i < cfg.n_nodes; ++i) m.spawn(prog(m.processor(i)));
  test::run_all(m);

  // The aftermath of a lost unlock notification (same fault as
  // test_invariants.cpp): node 2 still chained as a write holder.
  const BlockId b = m.address_map().block_of(16);
  const NodeId home = m.address_map().home_of(b);
  auto& e = m.directory(home).mutable_entry(b);
  e.lock_chain.push_back({NodeId{2}, net::LockMode::kWrite});
  e.lock_holders = 1;
  e.usage_lock = true;

  testing::internal::CaptureStderr();
  EXPECT_THROW(m.check_invariants("fault-injection"), sim::InvariantViolation);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("--- trace"), std::string::npos) << err;
  EXPECT_NE(err.find("trace tail ("), std::string::npos) << err;
  EXPECT_NE(err.find("lock-req"), std::string::npos) << err;  // real records inside
}

TEST(TraceE2E, NoDumpWhenTracingIsOff) {
  auto cfg = test::small_config(2);
  Machine m(cfg);
  struct Prog {
    sim::Task operator()(Processor& p) const { co_await p.write(64, 1); }
  } prog;
  m.spawn(prog(m.processor(0)));
  test::run_all(m);
  auto& e = m.directory(m.address_map().home_of(m.address_map().block_of(64)))
                .mutable_entry(m.address_map().block_of(64));
  e.owner = 1;  // forged owner
  testing::internal::CaptureStderr();
  EXPECT_THROW(m.check_invariants("fault-injection"), sim::InvariantViolation);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("trace tail"), std::string::npos) << err;
}

}  // namespace
}  // namespace bcsim
