// Direct unit tests for cache::WriteBuffer — the retire-count watermark
// that implements FLUSH-BUFFER's ordering guarantee (paper section 4.2),
// its edge cases (capacity-1 buffers, the retire underflow guard), and
// the two injectable faults the differential oracle uses
// (docs/TESTING.md, "Differential testing").
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "cache/write_buffer.hpp"

namespace bcsim {
namespace {

using cache::WriteBuffer;

TEST(WriteBuffer, FlushOnEmptyFiresImmediately) {
  WriteBuffer wb;
  bool fired = false;
  wb.on_drained([&] { fired = true; });
  EXPECT_TRUE(fired);
  EXPECT_EQ(wb.waiters(), 0u);
}

TEST(WriteBuffer, WatermarkCoversOnlyPrecedingWrites) {
  WriteBuffer wb;
  wb.enter();
  wb.enter();
  bool fired = false;
  wb.on_drained([&] { fired = true; });
  // A write entered *after* the flush registered must not delay it.
  wb.enter();
  wb.retire();
  EXPECT_FALSE(fired) << "flush fired with a preceding write still pending";
  wb.retire();
  EXPECT_TRUE(fired) << "flush must fire once both preceding writes retired";
  EXPECT_EQ(wb.pending(), 1u);  // the late write is still in flight
}

TEST(WriteBuffer, FlushWaitersFireInRegistrationOrder) {
  WriteBuffer wb;
  std::vector<int> order;
  wb.enter();
  wb.on_drained([&] { order.push_back(1); });
  wb.enter();
  wb.on_drained([&] { order.push_back(2); });
  wb.retire();
  ASSERT_EQ(order.size(), 1u);  // first flush covers one write only
  wb.retire();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(WriteBuffer, RetireWithoutEntryThrows) {
  WriteBuffer wb;
  EXPECT_THROW(wb.retire(), std::logic_error);
  wb.enter();
  wb.retire();
  // The retire counter must guard the boundary on every revolution, not
  // just the first: an ack with no matching entry is always a bug.
  EXPECT_THROW(wb.retire(), std::logic_error);
}

TEST(WriteBuffer, CapacityOneAppliesBackpressure) {
  WriteBuffer wb(1);
  EXPECT_FALSE(wb.unbounded());
  int issued = 0;
  auto writer = [&] {
    wb.enter();
    ++issued;
  };
  wb.on_slot(writer);  // immediate: buffer empty
  EXPECT_EQ(issued, 1);
  EXPECT_TRUE(wb.full());
  wb.on_slot(writer);  // parks: the only slot is taken
  EXPECT_EQ(issued, 1);
  EXPECT_EQ(wb.waiters(), 1u);
  wb.retire();
  EXPECT_EQ(issued, 2) << "freed slot must wake the parked writer";
  EXPECT_TRUE(wb.full());
  wb.retire();
  EXPECT_TRUE(wb.empty());
}

// The ordering contract between the two waiter kinds on a capacity-1
// buffer: the slot waiter runs first (its write entered *after* the
// flush, so it must not delay the flush), and the flush still fires on
// the same retire — a refilling slot must not starve a watermark that
// has already been reached.
TEST(WriteBuffer, RefillingSlotDoesNotStarveTheFlush) {
  WriteBuffer wb(1);
  wb.on_slot([&] { wb.enter(); });  // fills the buffer
  bool flushed = false;
  wb.on_drained([&] { flushed = true; });  // watermark = 1
  bool refilled = false;
  wb.on_slot([&] {
    wb.enter();
    refilled = true;
  });
  EXPECT_FALSE(flushed);
  EXPECT_FALSE(refilled);
  wb.retire();
  EXPECT_TRUE(refilled) << "slot waiter must be woken by the retire";
  EXPECT_TRUE(flushed)
      << "flush starved: the refill raised pending above zero, but the "
         "watermark (all writes preceding the flush) was reached";
  EXPECT_EQ(wb.pending(), 1u);
}

// Fault kEagerFlush (the differential oracle's injected reordering bug):
// the gate disappears entirely — a flush completes with writes in flight.
TEST(WriteBuffer, EagerFlushFaultRemovesTheGate) {
  WriteBuffer wb;
  wb.inject_fault(WriteBuffer::Fault::kEagerFlush);
  wb.enter();
  bool fired = false;
  wb.on_drained([&] { fired = true; });
  EXPECT_TRUE(fired) << "kEagerFlush must complete the flush immediately";
  EXPECT_EQ(wb.pending(), 1u);
}

// Fault kEmptyGate (the pre-watermark bug): the flush waits for a fully
// empty buffer, so a write entered after the flush delays it — exactly
// the starvation the watermark fix removed.
TEST(WriteBuffer, EmptyGateFaultWaitsForAFullyEmptyBuffer) {
  WriteBuffer wb;
  wb.inject_fault(WriteBuffer::Fault::kEmptyGate);
  wb.enter();
  bool fired = false;
  wb.on_drained([&] { fired = true; });
  wb.enter();  // entered after the flush — must not matter, but does here
  wb.retire();
  EXPECT_FALSE(fired) << "empty-gate bug: pending == 1, so the gate holds";
  wb.retire();
  EXPECT_TRUE(fired);
}

// Faults apply to flushes registered after injection; pending() and the
// underflow guard are unaffected by either fault.
TEST(WriteBuffer, FaultsDoNotCorruptAccounting) {
  WriteBuffer wb;
  wb.inject_fault(WriteBuffer::Fault::kEagerFlush);
  wb.enter();
  wb.enter();
  EXPECT_EQ(wb.pending(), 2u);
  wb.retire();
  wb.retire();
  EXPECT_TRUE(wb.empty());
  EXPECT_THROW(wb.retire(), std::logic_error);
}

}  // namespace
}  // namespace bcsim
