#!/usr/bin/env python3
"""Compare two `bcsim bench` JSON files and fail on regressions.

Usage:
  bench_compare.py BASELINE.json NEW.json [--tolerance 0.15] [--exact-only]

Two kinds of checks (schema in docs/BENCHMARKS.md):

* Exact metrics ("exact": true) and the per-flavor stats digests are
  machine-independent simulation outputs — completion ticks, message
  counts, FNV digests of every statistic. They must match bit-for-bit;
  any difference means the simulation's behavior changed and the
  baseline must be regenerated deliberately (with the change explained
  in the commit that refreshes it).

* Timing metrics ("exact": false, ns/op, ticks/s, msgs/s, wall ms) are
  machine-dependent. They are compared direction-aware against
  --tolerance (default 15%): a "less is better" metric fails when
  new > baseline * (1 + tol); a "more is better" metric fails when
  new < baseline * (1 - tol). --exact-only skips them entirely, which
  is what the deterministic ctest gate uses (timing on a loaded CI
  runner is noise; the digests are not).

Exit status: 0 when every check passes, 1 on any regression or
missing metric, 2 on bad invocation/unreadable input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if data.get("schema") != 1 or "metrics" not in data:
        print(f"bench_compare: {path} is not a schema-1 bcsim bench file",
              file=sys.stderr)
        sys.exit(2)
    return data


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed relative slowdown for timing metrics "
                         "(default: 0.15)")
    ap.add_argument("--exact-only", action="store_true",
                    help="check only machine-independent metrics and digests")
    args = ap.parse_args()

    base = load(args.baseline)
    new = load(args.new)

    failures = []
    rows = []

    for name, bm in sorted(base["metrics"].items()):
        nm = new["metrics"].get(name)
        if nm is None:
            failures.append(f"metric '{name}' missing from {args.new}")
            continue
        exact = bool(bm.get("exact"))
        bv, nv = bm["value"], nm["value"]
        unit = bm.get("unit", "")
        if exact:
            ok = bv == nv
            note = "exact" if ok else "EXACT MISMATCH"
            if not ok:
                failures.append(
                    f"exact metric '{name}': baseline {bv:g} != new {nv:g} "
                    f"(simulation behavior changed; see docs/BENCHMARKS.md)")
        elif args.exact_only:
            continue
        else:
            more_is_better = bm.get("direction") == "more"
            if bv == 0:
                ok, rel = True, 0.0
            elif more_is_better:
                rel = (bv - nv) / bv  # positive = got slower
                ok = nv >= bv * (1.0 - args.tolerance)
            else:
                rel = (nv - bv) / bv
                ok = nv <= bv * (1.0 + args.tolerance)
            note = f"{rel:+.1%}" + ("" if ok else f" REGRESSION (> {args.tolerance:.0%})")
            if not ok:
                failures.append(f"timing metric '{name}': baseline {bv:.4g} "
                                f"-> new {nv:.4g} {unit} ({rel:+.1%})")
        rows.append((name, bv, nv, unit, note))

    base_digests = base.get("digests", {})
    new_digests = new.get("digests", {})
    for name, bd in sorted(base_digests.items()):
        nd = new_digests.get(name)
        if nd is None:
            failures.append(f"digest '{name}' missing from {args.new}")
        elif nd != bd:
            failures.append(f"digest '{name}': baseline {bd} != new {nd} "
                            f"(simulation behavior changed)")
        rows.append((f"digest.{name}", bd, nd, "",
                     "exact" if nd == bd else "EXACT MISMATCH"))

    w = max((len(r[0]) for r in rows), default=10)
    print(f"{'metric':<{w}}  {'baseline':>14}  {'new':>14}  note")
    for name, bv, nv, unit, note in rows:
        fmt = lambda v: v if isinstance(v, str) else f"{v:.6g}"
        print(f"{name:<{w}}  {fmt(bv):>14}  {fmt(nv):>14}  {note}")

    if failures:
        print(f"\nbench_compare: {len(failures)} failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nbench_compare: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
