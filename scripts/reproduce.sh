#!/usr/bin/env bash
# Reproduce every result in EXPERIMENTS.md: build, run the full test
# suite, and regenerate every table/figure/ablation into results/.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

mkdir -p results
ctest --test-dir build -j"$(nproc)" 2>&1 | tee results/tests.txt

for b in build/bench/*; do
  name="$(basename "$b")"
  echo "== $name =="
  "$b" 2>&1 | tee "results/${name}.txt"
done

echo
echo "All outputs in results/. Compare against EXPERIMENTS.md."
